# Shared warning and sanitizer configuration.
#
# Defines the INTERFACE target `eds_build_flags` that every component,
# test, bench and example links so the whole tree compiles with one
# consistent set of flags.
#
# Options (all cache variables, settable with -D at configure time):
#   EDS_WERROR  (ON)  - treat warnings as errors
#   EDS_ASAN    (OFF) - AddressSanitizer on everything
#   EDS_UBSAN   (OFF) - UndefinedBehaviorSanitizer on everything
#   EDS_TSAN    (OFF) - ThreadSanitizer on everything (for the engine's
#                       sharded round loop; incompatible with EDS_ASAN)

option(EDS_WERROR "Treat compiler warnings as errors" ON)
option(EDS_ASAN   "Enable AddressSanitizer"           OFF)
option(EDS_UBSAN  "Enable UndefinedBehaviorSanitizer" OFF)
option(EDS_TSAN   "Enable ThreadSanitizer"            OFF)

if(EDS_TSAN AND EDS_ASAN)
  message(FATAL_ERROR "EDS_TSAN and EDS_ASAN cannot be combined")
endif()

add_library(eds_build_flags INTERFACE)
target_compile_options(eds_build_flags INTERFACE -Wall -Wextra -Wshadow -Wpedantic)
if(EDS_WERROR)
  target_compile_options(eds_build_flags INTERFACE -Werror)
endif()

set(EDS_SANITIZER_FLAGS "")
if(EDS_ASAN)
  list(APPEND EDS_SANITIZER_FLAGS -fsanitize=address -fno-omit-frame-pointer)
endif()
if(EDS_UBSAN)
  list(APPEND EDS_SANITIZER_FLAGS -fsanitize=undefined -fno-omit-frame-pointer)
endif()
if(EDS_TSAN)
  list(APPEND EDS_SANITIZER_FLAGS -fsanitize=thread -fno-omit-frame-pointer)
endif()
if(EDS_SANITIZER_FLAGS)
  target_compile_options(eds_build_flags INTERFACE ${EDS_SANITIZER_FLAGS})
  target_link_options(eds_build_flags INTERFACE ${EDS_SANITIZER_FLAGS})
endif()
