# Shared warning and sanitizer configuration.
#
# Defines the INTERFACE target `eds_build_flags` that every component,
# test, bench and example links so the whole tree compiles with one
# consistent set of flags.
#
# Options (all cache variables, settable with -D at configure time):
#   EDS_WERROR  (ON)  - treat warnings as errors
#   EDS_ASAN    (OFF) - AddressSanitizer on everything
#   EDS_UBSAN   (OFF) - UndefinedBehaviorSanitizer on everything
#   EDS_TSAN    (OFF) - ThreadSanitizer on everything (for the engine's
#                       sharded round loop; incompatible with EDS_ASAN)
#   EDS_NATIVE  (OFF) - compile for the build host's CPU (-march=native):
#                       local perf numbers at full hardware speed without
#                       patching the build.  Never the default — the
#                       binaries stop being portable, and committed bench
#                       snapshots should stay comparable across machines.

option(EDS_WERROR "Treat compiler warnings as errors" ON)
option(EDS_ASAN   "Enable AddressSanitizer"           OFF)
option(EDS_UBSAN  "Enable UndefinedBehaviorSanitizer" OFF)
option(EDS_TSAN   "Enable ThreadSanitizer"            OFF)
option(EDS_NATIVE "Tune codegen for the build host (-march=native)" OFF)

if(EDS_TSAN AND EDS_ASAN)
  message(FATAL_ERROR "EDS_TSAN and EDS_ASAN cannot be combined")
endif()

add_library(eds_build_flags INTERFACE)
target_compile_options(eds_build_flags INTERFACE -Wall -Wextra -Wshadow -Wpedantic)
if(EDS_WERROR)
  target_compile_options(eds_build_flags INTERFACE -Werror)
endif()

if(EDS_NATIVE)
  include(CheckCXXCompilerFlag)
  check_cxx_compiler_flag("-march=native" EDS_HAVE_MARCH_NATIVE)
  if(EDS_HAVE_MARCH_NATIVE)
    target_compile_options(eds_build_flags INTERFACE -march=native)
  else()
    # Some toolchains (e.g. clang on certain AArch64 targets) spell it
    # -mcpu=native; fail loudly rather than silently benchmarking generic
    # codegen under a flag that claims otherwise.
    check_cxx_compiler_flag("-mcpu=native" EDS_HAVE_MCPU_NATIVE)
    if(EDS_HAVE_MCPU_NATIVE)
      target_compile_options(eds_build_flags INTERFACE -mcpu=native)
    else()
      message(FATAL_ERROR "EDS_NATIVE=ON but the compiler accepts neither "
                          "-march=native nor -mcpu=native")
    endif()
  endif()
endif()

set(EDS_SANITIZER_FLAGS "")
if(EDS_ASAN)
  list(APPEND EDS_SANITIZER_FLAGS -fsanitize=address -fno-omit-frame-pointer)
endif()
if(EDS_UBSAN)
  list(APPEND EDS_SANITIZER_FLAGS -fsanitize=undefined -fno-omit-frame-pointer)
endif()
if(EDS_TSAN)
  list(APPEND EDS_SANITIZER_FLAGS -fsanitize=thread -fno-omit-frame-pointer)
endif()
if(EDS_SANITIZER_FLAGS)
  target_compile_options(eds_build_flags INTERFACE ${EDS_SANITIZER_FLAGS})
  target_link_options(eds_build_flags INTERFACE ${EDS_SANITIZER_FLAGS})
endif()
