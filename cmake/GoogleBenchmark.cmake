# Locate Google Benchmark for the bench_micro_* targets.
#
# Prefers an installed CMake package; falls back to a bare library probe
# because Debian's libbenchmark-dev ships the library without a CMake
# config.  Sets benchmark_FOUND and, when found, provides the
# benchmark::benchmark imported target.  Benchmarks that need it are
# skipped (with a status message) when the library is absent — the
# default build must stay dependency-light.

find_package(benchmark QUIET)
if(NOT benchmark_FOUND)
  find_library(EDS_BENCHMARK_LIB benchmark)
  if(EDS_BENCHMARK_LIB)
    find_package(Threads REQUIRED)
    # UNKNOWN, not SHARED: find_library may resolve a static archive.
    add_library(benchmark::benchmark UNKNOWN IMPORTED)
    set_target_properties(benchmark::benchmark PROPERTIES
      IMPORTED_LOCATION "${EDS_BENCHMARK_LIB}"
      INTERFACE_LINK_LIBRARIES Threads::Threads)
    set(benchmark_FOUND TRUE)
  endif()
endif()
