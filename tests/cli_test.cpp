#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/cli.hpp"
#include "graph/io.hpp"
#include "port/io.hpp"
#include "runtime/shard.hpp"
#include "test_util.hpp"

namespace eds::cli {
namespace {

/// Points `sweep --shards` (which forks `$EDSIM_BIN worker`) at the real
/// edsim binary; run_cli executes in this test process, so /proc/self/exe
/// would resolve to cli_test itself.  test::edsim_binary() exports
/// EDSIM_BIN as a side effect, which is exactly what the sweep reads.
bool edsim_available() { return !test::edsim_binary().empty(); }

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun invoke(const std::vector<std::string>& args,
              const std::string& stdin_text = "") {
  std::istringstream in(stdin_text);
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, in, out, err);
  return {code, out.str(), err.str()};
}

TEST(Cli, HelpAndUnknown) {
  EXPECT_EQ(invoke({"help"}).code, 0);
  EXPECT_NE(invoke({"help"}).out.find("usage"), std::string::npos);
  EXPECT_EQ(invoke({}).code, 2);
  EXPECT_EQ(invoke({"frobnicate"}).code, 2);
}

TEST(Cli, GenerateCycleParses) {
  const auto run = invoke({"generate", "cycle", "6"});
  ASSERT_EQ(run.code, 0) << run.err;
  const auto g = graph::from_edge_list_string(run.out);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_TRUE(g.is_regular(2));
}

TEST(Cli, GenerateRegularRespectsSeed) {
  const auto a = invoke({"generate", "regular", "12", "3", "--seed", "5"});
  const auto b = invoke({"generate", "regular", "12", "3", "--seed", "5"});
  const auto c = invoke({"generate", "regular", "12", "3", "--seed", "6"});
  EXPECT_EQ(a.out, b.out);
  EXPECT_NE(a.out, c.out);
}

TEST(Cli, GenerateErrors) {
  EXPECT_EQ(invoke({"generate"}).code, 2);
  EXPECT_EQ(invoke({"generate", "nosuch", "4"}).code, 2);
  EXPECT_EQ(invoke({"generate", "cycle", "2"}).code, 1);  // n < 3
  EXPECT_EQ(invoke({"generate", "cycle"}).code, 2);       // missing n
}

TEST(Cli, SolvePipelineEndToEnd) {
  const auto gen = invoke({"generate", "petersen"});
  ASSERT_EQ(gen.code, 0);
  const auto solve =
      invoke({"solve", "--seed", "3", "--exact"}, gen.out);
  ASSERT_EQ(solve.code, 0) << solve.err;
  EXPECT_NE(solve.out.find("odd-regular"), std::string::npos);
  EXPECT_NE(solve.out.find("edge-dominating: yes"), std::string::npos);
  EXPECT_NE(solve.out.find("optimum: 3"), std::string::npos);
  EXPECT_NE(solve.out.find("ratio:"), std::string::npos);
}

TEST(Cli, SolveExplicitAlgorithmAndDot) {
  const auto gen = invoke({"generate", "torus", "3", "4"});
  const auto solve = invoke(
      {"solve", "--algorithm", "port-one", "--ports", "factor", "--dot"},
      gen.out);
  ASSERT_EQ(solve.code, 0) << solve.err;
  // Factor ports force a whole 2-factor: |D| = |V| = 12.
  EXPECT_NE(solve.out.find("solution: 12 edges"), std::string::npos);
  EXPECT_NE(solve.out.find("graph solution {"), std::string::npos);
}

TEST(Cli, SolveRejectsBadInput) {
  EXPECT_EQ(invoke({"solve"}, "garbage").code, 1);
  const auto gen = invoke({"generate", "cycle", "5"});
  EXPECT_EQ(invoke({"solve", "--algorithm", "nosuch"}, gen.out).code, 2);
  EXPECT_EQ(invoke({"solve", "--ports", "nosuch"}, gen.out).code, 2);
}

TEST(Cli, LowerBoundEmitsValidPortGraph) {
  const auto run = invoke({"lower-bound", "4"});
  ASSERT_EQ(run.code, 0) << run.err;
  const auto g = port::from_port_graph_string(run.out);
  EXPECT_EQ(g.num_nodes(), 7u);  // 2d - 1
  EXPECT_NE(run.out.find("forced ratio 7/2"), std::string::npos);
}

TEST(Cli, LowerBoundOddAndErrors) {
  const auto run = invoke({"lower-bound", "3"});
  ASSERT_EQ(run.code, 0);
  const auto g = port::from_port_graph_string(run.out);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_EQ(invoke({"lower-bound"}).code, 2);
  EXPECT_EQ(invoke({"lower-bound", "1"}).code, 1);
}

TEST(Cli, RunPortgraphOnLowerBoundInstance) {
  const auto lb = invoke({"lower-bound", "6"});
  ASSERT_EQ(lb.code, 0);
  const auto run = invoke(
      {"run-portgraph", "--algorithm", "port-one"}, lb.out);
  ASSERT_EQ(run.code, 0) << run.err;
  // Forced to a full 2-factor: |V| = 11 selected edges.
  EXPECT_NE(run.out.find("selected edges: 11"), std::string::npos);
}

TEST(Cli, RunPortgraphRequiresAlgorithm) {
  const auto lb = invoke({"lower-bound", "4"});
  EXPECT_EQ(invoke({"run-portgraph"}, lb.out).code, 2);
}

TEST(Cli, RunPortgraphTraceShowsTranscript) {
  const auto lb = invoke({"lower-bound", "2"});
  const auto run = invoke(
      {"run-portgraph", "--algorithm", "port-one", "--trace"}, lb.out);
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("--- round 1 ---"), std::string::npos);
  EXPECT_NE(run.out.find("tag="), std::string::npos);
}

TEST(Cli, ViewsOnLowerBoundInstance) {
  const auto lb = invoke({"lower-bound", "4"});
  const auto run = invoke({"views"}, lb.out);
  ASSERT_EQ(run.code, 0) << run.err;
  // Theorem 1 instance: all nodes are view-equivalent.
  EXPECT_NE(run.out.find("classes: 1"), std::string::npos);
}

TEST(Cli, Table1IsTight) {
  const auto run = invoke({"table1"});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_EQ(run.out.find("NO"), std::string::npos);
  EXPECT_NE(run.out.find("yes"), std::string::npos);
}

TEST(Cli, SolveThreadsDoesNotChangeTheResult) {
  const auto gen = invoke({"generate", "regular", "16", "4", "--seed", "3"});
  ASSERT_EQ(gen.code, 0);
  const auto seq = invoke(
      {"solve", "--algorithm", "port-one", "--seed", "9"}, gen.out);
  const auto par = invoke(
      {"solve", "--algorithm", "port-one", "--seed", "9", "--threads", "4"},
      gen.out);
  ASSERT_EQ(seq.code, 0) << seq.err;
  ASSERT_EQ(par.code, 0) << par.err;
  EXPECT_EQ(seq.out, par.out);
}

TEST(Cli, RunPortgraphThreadsDoesNotChangeTheResult) {
  const auto lb = invoke({"lower-bound", "6"});
  ASSERT_EQ(lb.code, 0);
  const auto seq = invoke(
      {"run-portgraph", "--algorithm", "port-one"}, lb.out);
  const auto par = invoke(
      {"run-portgraph", "--algorithm", "port-one", "--threads", "8"}, lb.out);
  ASSERT_EQ(seq.code, 0) << seq.err;
  ASSERT_EQ(par.code, 0) << par.err;
  EXPECT_EQ(seq.out, par.out);
}

TEST(Cli, SweepRunsEveryFamily) {
  const auto cycles =
      invoke({"sweep", "cycle", "--min", "8", "--max", "32"});
  ASSERT_EQ(cycles.code, 0) << cycles.err;
  EXPECT_NE(cycles.out.find("jobs=3"), std::string::npos);
  EXPECT_EQ(cycles.out.find("NO"), std::string::npos);

  const auto paths = invoke({"sweep", "path", "--min", "4", "--max", "16",
                             "--step", "4"});
  ASSERT_EQ(paths.code, 0) << paths.err;
  EXPECT_NE(paths.out.find("jobs=4"), std::string::npos);

  const auto regular = invoke({"sweep", "regular", "--min", "8", "--max",
                               "16", "--d", "3", "--seed", "11"});
  ASSERT_EQ(regular.code, 0) << regular.err;
  EXPECT_NE(regular.out.find("odd-regular"), std::string::npos);

  const auto multi = invoke({"sweep", "portgraph", "--min", "4", "--max",
                             "16", "--d", "4", "--seed", "11"});
  ASSERT_EQ(multi.code, 0) << multi.err;
  EXPECT_NE(multi.out.find("selected"), std::string::npos);
}

TEST(Cli, SweepIsDeterministicAcrossThreadCounts) {
  const std::vector<std::string> base{"sweep",  "regular", "--min", "8",
                                      "--max",  "64",      "--d",   "3",
                                      "--seed", "42"};
  auto one = base;
  one.insert(one.end(), {"--threads", "1"});
  auto many = base;
  many.insert(many.end(), {"--threads", "8"});
  const auto a = invoke(one);
  const auto b = invoke(many);
  ASSERT_EQ(a.code, 0) << a.err;
  ASSERT_EQ(b.code, 0) << b.err;
  EXPECT_EQ(a.out, b.out);
}

TEST(Cli, SweepNewFamiliesRun) {
  const auto torus = invoke({"sweep", "torus", "--min", "9", "--max", "36"});
  ASSERT_EQ(torus.code, 0) << torus.err;
  EXPECT_NE(torus.out.find("port-one"), std::string::npos)
      << "tori are 4-regular: auto picks port-one";

  const auto grid = invoke({"sweep", "grid", "--min", "9", "--max", "16"});
  ASSERT_EQ(grid.code, 0) << grid.err;
  EXPECT_EQ(grid.out.find("NO"), std::string::npos);

  const auto cat =
      invoke({"sweep", "caterpillar", "--min", "12", "--max", "24"});
  ASSERT_EQ(cat.code, 0) << cat.err;

  const auto pl = invoke({"sweep", "powerlaw", "--min", "16", "--max", "64",
                          "--seed", "5"});
  ASSERT_EQ(pl.code, 0) << pl.err;
  EXPECT_EQ(pl.out.find("NO"), std::string::npos);
}

TEST(Cli, SweepRepeatCompilesOnePlanPerInstance) {
  const auto run = invoke({"sweep", "cycle", "--min", "8", "--max", "8",
                           "--repeat", "5"});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("jobs=5"), std::string::npos);
  EXPECT_NE(run.out.find("plan-cache: compiled=1 hits=4"), std::string::npos)
      << run.out;

  // Two sizes x 3 repeats: 2 plans, 4 hits.
  const auto two = invoke({"sweep", "cycle", "--min", "8", "--max", "16",
                           "--repeat", "3"});
  ASSERT_EQ(two.code, 0) << two.err;
  EXPECT_NE(two.out.find("plan-cache: compiled=2 hits=4"), std::string::npos)
      << two.out;

  EXPECT_EQ(invoke({"sweep", "cycle", "--repeat", "0"}).code, 2);
}

TEST(Cli, SweepNdjsonStreamsOneObjectPerJob) {
  const auto run = invoke({"sweep", "cycle", "--min", "8", "--max", "32",
                           "--ndjson", "--repeat", "2"});
  ASSERT_EQ(run.code, 0) << run.err;
  std::istringstream lines(run.out);
  std::string line;
  std::size_t rows = 0;
  bool saw_summary = false;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    // Every object — jobs and summary — is versioned with the protocol.
    EXPECT_NE(line.find("\"schema\":2"), std::string::npos) << line;
    if (line.find("\"summary\"") != std::string::npos) {
      saw_summary = true;
      EXPECT_NE(line.find("\"plans_compiled\":3"), std::string::npos) << line;
      EXPECT_NE(line.find("\"plan_hits\":3"), std::string::npos) << line;
      EXPECT_NE(line.find("\"all_feasible\":true"), std::string::npos);
    } else {
      ++rows;
      EXPECT_NE(line.find("\"rounds\":"), std::string::npos);
      EXPECT_NE(line.find("\"feasible\":true"), std::string::npos);
    }
  }
  EXPECT_EQ(rows, 6u);  // 3 sizes x 2 repeats
  EXPECT_TRUE(saw_summary);

  // The portgraph family emits NDJSON too, with port-level fields.
  const auto multi = invoke({"sweep", "portgraph", "--min", "4", "--max", "8",
                             "--d", "3", "--ndjson"});
  ASSERT_EQ(multi.code, 0) << multi.err;
  EXPECT_EQ(multi.out.front(), '{');
  EXPECT_NE(multi.out.find("\"selected\":"), std::string::npos);
  EXPECT_NE(multi.out.find("\"summary\""), std::string::npos);
}

TEST(Cli, SweepNdjsonIsDeterministicAcrossThreadCounts) {
  const std::vector<std::string> base{"sweep", "regular", "--min", "8",
                                      "--max", "32",      "--d",   "3",
                                      "--seed", "13",     "--ndjson"};
  auto one = base;
  one.insert(one.end(), {"--threads", "1"});
  auto many = base;
  many.insert(many.end(), {"--threads", "8"});
  const auto a = invoke(one);
  const auto b = invoke(many);
  ASSERT_EQ(a.code, 0) << a.err;
  ASSERT_EQ(b.code, 0) << b.err;
  EXPECT_EQ(a.out, b.out);
}

TEST(Cli, SweepShardsAreByteIdenticalToThreadsAndSequential) {
  if (!edsim_available()) GTEST_SKIP() << "edsim binary not found";
  // The acceptance differential for the sharded backend: for each family,
  // sequential (--threads 1), pooled (--threads 8) and process-sharded
  // (--shards 3) sweeps must produce byte-identical NDJSON — rows,
  // summary, plan-cache counters and all.
  const std::vector<std::vector<std::string>> sweeps{
      {"sweep", "grid", "--min", "9", "--max", "36", "--repeat", "2",
       "--seed", "3", "--ndjson"},
      {"sweep", "powerlaw", "--min", "16", "--max", "64", "--seed", "5",
       "--ndjson"},
      {"sweep", "portgraph", "--min", "4", "--max", "16", "--d", "3",
       "--seed", "11", "--repeat", "2", "--ndjson"},
  };
  for (const auto& base : sweeps) {
    auto sequential = base;
    sequential.insert(sequential.end(), {"--threads", "1"});
    auto pooled = base;
    pooled.insert(pooled.end(), {"--threads", "8"});
    auto sharded = base;
    sharded.insert(sharded.end(), {"--shards", "3"});

    const auto a = invoke(sequential);
    const auto b = invoke(pooled);
    const auto c = invoke(sharded);
    ASSERT_EQ(a.code, 0) << base[1] << ": " << a.err;
    ASSERT_EQ(b.code, 0) << base[1] << ": " << b.err;
    ASSERT_EQ(c.code, 0) << base[1] << ": " << c.err;
    EXPECT_EQ(a.out, b.out) << base[1];
    EXPECT_EQ(a.out, c.out) << base[1] << ": shards must not change a byte";
  }
}

TEST(Cli, SweepShardsReportsADeadWorkerCommand) {
  // /bin/false exits immediately without speaking the protocol: the sweep
  // fails cleanly (exit 1, prefix rule) instead of hanging.
  const auto run = invoke({"sweep", "cycle", "--min", "8", "--max", "8",
                           "--shards", "2", "--worker-bin", "/bin/false"});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("sweep:"), std::string::npos) << run.err;
}

TEST(Cli, WorkerSpeaksTheWireProtocol) {
  // Two jobs on the same 2-node structure: two result lines (flushed in
  // order) plus a summary showing one compiled plan and one cache hit.
  runtime::WireJob job;
  job.algorithm = "all-edges";
  job.param = 0;
  job.threads = 1;
  job.max_rounds = 100;
  job.graph_text = "ports 2\ndeg 1 1\nconn 0 1 1 1\n";
  job.index = 0;
  const auto line0 = runtime::encode_wire_job(job);
  job.index = 1;
  const auto line1 = runtime::encode_wire_job(job);

  const auto run = invoke({"worker"}, line0 + "\n" + line1 + "\n");
  ASSERT_EQ(run.code, 0) << run.err;
  std::istringstream lines(run.out);
  std::string line;
  std::vector<runtime::WorkerLine> parsed;
  while (std::getline(lines, line)) {
    parsed.push_back(runtime::decode_worker_line(line));
  }
  ASSERT_EQ(parsed.size(), 3u) << run.out;
  ASSERT_EQ(parsed[0].kind, runtime::WorkerLine::Kind::kResult);
  EXPECT_EQ(parsed[0].index, 0u);
  // all-edges: both endpoints select their single port.
  const std::vector<std::vector<runtime::Port>> want{{1}, {1}};
  EXPECT_EQ(parsed[0].result.outputs, want);
  ASSERT_EQ(parsed[1].kind, runtime::WorkerLine::Kind::kResult);
  EXPECT_EQ(parsed[1].index, 1u);
  ASSERT_EQ(parsed[2].kind, runtime::WorkerLine::Kind::kSummary);
  EXPECT_EQ(parsed[2].summary.jobs, 2u);
  EXPECT_EQ(parsed[2].summary.plans_compiled, 1u);
  EXPECT_EQ(parsed[2].summary.plan_hits, 1u);
}

TEST(Cli, WorkerReportsJobFailuresAndDiesOnGarbage) {
  runtime::WireJob job;
  job.algorithm = "no-such-algorithm";
  job.graph_text = "ports 2\ndeg 1 1\nconn 0 1 1 1\n";
  job.max_rounds = 10;
  const auto run = invoke({"worker"}, runtime::encode_wire_job(job) + "\n");
  ASSERT_EQ(run.code, 0) << "a failed job is an error line, not a dead worker";
  EXPECT_NE(run.out.find("\"error\""), std::string::npos) << run.out;
  EXPECT_NE(run.out.find("\"worker_summary\""), std::string::npos);

  EXPECT_EQ(invoke({"worker"}, "garbage\n").code, 2);

  // The --fail-after test hook: one result, then a nonzero exit with no
  // summary — exactly what the worker-death tests simulate with.
  runtime::WireJob ok = job;
  ok.algorithm = "all-edges";
  const auto wire = runtime::encode_wire_job(ok);
  const auto killed =
      invoke({"worker", "--fail-after", "1"}, wire + "\n" + wire + "\n");
  EXPECT_EQ(killed.code, 7);
  EXPECT_EQ(killed.out.find("\"worker_summary\""), std::string::npos);
}

TEST(Cli, SweepErrors) {
  EXPECT_EQ(invoke({"sweep"}).code, 2);
  EXPECT_EQ(invoke({"sweep", "nosuch"}).code, 2);
  EXPECT_EQ(invoke({"sweep", "cycle", "--min", "0"}).code, 2);
  EXPECT_EQ(invoke({"sweep", "cycle", "--min", "9", "--max", "4"}).code, 2);
  EXPECT_EQ(
      invoke({"sweep", "cycle", "--algorithm", "nosuch"}).code, 2);
  // cycle(2) is invalid: the generator error surfaces as exit code 1.
  EXPECT_EQ(invoke({"sweep", "cycle", "--min", "2", "--max", "2"}).code, 1);
}

/// The value of `"key":` in a one-line JSON object ("" when absent).
/// Good enough for the flat objects the sweep emits — no nesting, no
/// escaped strings in the fields under test.
std::string json_field(const std::string& line, const std::string& key) {
  const auto pos = line.find('"' + key + "\":");
  if (pos == std::string::npos) return "";
  const auto start = pos + key.size() + 3;
  const auto end = line.find_first_of(",}", start);
  return line.substr(start, end - start);
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(Cli, SweepResilienceFlagsRequireShards) {
  // The whole resilience surface lives behind the sharded backend;
  // accepting the flags elsewhere would silently do nothing.
  const std::vector<std::vector<std::string>> extras{
      {"--retries", "1"},          {"--retry-backoff-ms", "5"},
      {"--job-timeout-ms", "10"},  {"--batch-timeout-ms", "10"},
      {"--breaker-deaths", "2"},   {"--fallback-inprocess"},
      {"--chaos", "crash:1"},
  };
  for (const auto& extra : extras) {
    std::vector<std::string> args{"sweep", "cycle", "--min", "8", "--max",
                                  "8"};
    args.insert(args.end(), extra.begin(), extra.end());
    const auto run = invoke(args);
    EXPECT_EQ(run.code, 2) << extra.front();
    EXPECT_NE(run.err.find("--shards"), std::string::npos) << run.err;
  }
}

TEST(Cli, SweepRejectsAMalformedChaosSpec) {
  // The spec is validated up front, in the parent — not discovered as a
  // worker that dies with a usage error on its first batch.
  const auto run = invoke({"sweep", "cycle", "--min", "8", "--max", "8",
                           "--shards", "1", "--chaos", "frobnicate:1"});
  EXPECT_EQ(run.code, 2);
  EXPECT_NE(run.err.find("chaos"), std::string::npos) << run.err;
}

TEST(Cli, SweepChaosSummaryReportsDegradedCountersAndIdenticalRows) {
  if (!edsim_available()) GTEST_SKIP() << "edsim binary not found";
  const std::vector<std::string> base{"sweep", "cycle",    "--min", "8",
                                      "--max", "8",        "--repeat", "3",
                                      "--seed", "3",       "--ndjson"};
  auto clean = base;
  clean.insert(clean.end(), {"--shards", "1"});
  auto chaotic = clean;
  // crash:2 kills the worker after its second answer, orphaning the
  // third repeat — exercised as a retry, visible only in the summary.
  chaotic.insert(chaotic.end(), {"--chaos", "crash:2",
                                 "--retry-backoff-ms", "1"});

  const auto a = invoke(clean);
  const auto b = invoke(chaotic);
  ASSERT_EQ(a.code, 0) << a.err;
  ASSERT_EQ(b.code, 0) << b.err;
  const auto clean_lines = lines_of(a.out);
  const auto chaos_lines = lines_of(b.out);
  ASSERT_EQ(clean_lines.size(), chaos_lines.size());
  // Every row is bit-identical — chaos may cost retries, never bytes.
  for (std::size_t i = 0; i + 1 < clean_lines.size(); ++i) {
    EXPECT_EQ(clean_lines[i], chaos_lines[i]) << "row " << i;
  }
  // The clean summary omits the resilience counters entirely (so it
  // stays byte-identical to in-process backends); the degraded one
  // carries the exact retry accounting.
  const auto& clean_summary = clean_lines.back();
  const auto& chaos_summary = chaos_lines.back();
  EXPECT_EQ(json_field(clean_summary, "jobs_retried"), "");
  EXPECT_EQ(json_field(chaos_summary, "jobs_retried"), "1");
  EXPECT_EQ(json_field(chaos_summary, "workers_respawned"), "1");
  EXPECT_EQ(json_field(chaos_summary, "jobs_poisoned"), "0");
  EXPECT_EQ(json_field(chaos_summary, "summaries_lost"), "1")
      << "the crashed worker died before reporting its batch delta";
  // The retried job recompiled its plan in a fresh worker, but the cache
  // accounting must stay coherent: same hits as the clean run reports.
  EXPECT_EQ(json_field(chaos_summary, "jobs"), json_field(clean_summary,
                                                          "jobs"));
}

TEST(Cli, SweepModelSyncDefaultIsByteIdentical) {
  // `--model sync` must be a no-op: same bytes as omitting the flag, in
  // both table and NDJSON mode.
  const std::vector<std::string> base{"sweep",  "cycle", "--min", "8",
                                      "--max",  "32",    "--seed", "3"};
  for (const bool ndjson : {false, true}) {
    auto plain = base;
    auto spelled = base;
    spelled.insert(spelled.end(), {"--model", "sync"});
    if (ndjson) {
      plain.push_back("--ndjson");
      spelled.push_back("--ndjson");
    }
    const auto a = invoke(plain);
    const auto b = invoke(spelled);
    ASSERT_EQ(a.code, 0) << a.err;
    EXPECT_EQ(b.code, a.code);
    EXPECT_EQ(b.out, a.out);
    EXPECT_EQ(b.err, a.err);
    // The sync rows never carry the async-only fields.
    EXPECT_EQ(a.out.find("\"model\""), std::string::npos);
    EXPECT_EQ(a.out.find("\"consistent\""), std::string::npos);
  }
}

TEST(Cli, SweepModelAsyncOracleRowsMatchSyncRows) {
  // The α-synchronizer differential oracle at the CLI layer: a fault-free
  // async sweep must report the same rounds/messages/solution/feasible as
  // the sync sweep, row by row, under an adversarial delay model.
  const std::vector<std::string> base{
      "sweep", "regular", "--min", "8",    "--max",  "32", "--d",
      "3",     "--seed",  "11",    "--ndjson"};
  auto async_args = base;
  async_args.insert(async_args.end(),
                    {"--model", "async", "--delay", "uniform:1:9"});
  const auto sync = invoke(base);
  const auto async = invoke(async_args);
  ASSERT_EQ(sync.code, 0) << sync.err;
  ASSERT_EQ(async.code, 0) << async.err;

  const auto sync_lines = lines_of(sync.out);
  const auto async_lines = lines_of(async.out);
  ASSERT_EQ(sync_lines.size(), async_lines.size());
  for (std::size_t i = 0; i + 1 < sync_lines.size(); ++i) {  // skip summary
    EXPECT_EQ(json_field(async_lines[i], "model"), "\"async\"");
    EXPECT_EQ(json_field(async_lines[i], "consistent"), "true");
    for (const char* key :
         {"n", "nodes", "edges", "rounds", "messages", "solution",
          "feasible", "algorithm"}) {
      EXPECT_EQ(json_field(async_lines[i], key), json_field(sync_lines[i], key))
          << "row " << i << " field " << key;
    }
  }
}

TEST(Cli, SweepModelAsyncEchoesConfigInSummary) {
  const auto run = invoke({"sweep", "cycle", "--min", "8", "--max", "8",
                           "--ndjson", "--model", "async", "--delay",
                           "geometric:3", "--loss", "0.1", "--crash", "1",
                           "--seed", "4"});
  ASSERT_EQ(run.code, 0) << run.err;
  const auto lines = lines_of(run.out);
  ASSERT_FALSE(lines.empty());
  const auto& summary = lines.back();
  ASSERT_NE(summary.find("\"summary\""), std::string::npos);
  EXPECT_NE(summary.find("\"model\":\"async\""), std::string::npos);
  EXPECT_NE(summary.find("\"delay\":\"geometric:3:24\""), std::string::npos);
  EXPECT_NE(summary.find("\"loss\":0.1"), std::string::npos);
  EXPECT_NE(summary.find("\"crash\":1"), std::string::npos);
  // Faults were requested, so the synchronizer defaulted off.
  EXPECT_NE(summary.find("\"synchronizer\":false"), std::string::npos);

  // The portgraph family carries the async fields too.
  const auto multi = invoke({"sweep", "portgraph", "--min", "4", "--max", "8",
                             "--d", "3", "--ndjson", "--model", "async"});
  ASSERT_EQ(multi.code, 0) << multi.err;
  EXPECT_NE(multi.out.find("\"model\":\"async\""), std::string::npos);
  EXPECT_NE(multi.out.find("\"consistent\":true"), std::string::npos);
}

TEST(Cli, SweepModelAsyncFaultyIsDeterministicAcrossThreadCounts) {
  // Fault injection draws from per-job seeds fixed at construction, so a
  // faulty sweep is byte-identical between --threads 1 and --threads 8.
  // port-one: the one protocol that tolerates fault-induced silence (the
  // handshake algorithms detect it and abort the job, by design).
  const std::vector<std::string> base{
      "sweep",   "regular", "--min",  "8",     "--max", "32",
      "--d",     "3",       "--seed", "7",     "--ndjson",
      "--algorithm", "port-one",
      "--model", "async",   "--delay", "uniform:1:6",
      "--loss",  "0.1",     "--dup",  "0.05",  "--crash", "2"};
  auto one = base;
  one.insert(one.end(), {"--threads", "1"});
  auto many = base;
  many.insert(many.end(), {"--threads", "8"});
  const auto a = invoke(one);
  const auto b = invoke(many);
  ASSERT_EQ(a.code, 0) << a.err;
  ASSERT_EQ(b.code, 0) << b.err;
  EXPECT_EQ(a.out, b.out);
}

TEST(Cli, SweepModelAsyncRejections) {
  const auto fails = [](std::vector<std::string> extra) {
    std::vector<std::string> args{"sweep", "cycle", "--min", "8", "--max",
                                  "8"};
    args.insert(args.end(), extra.begin(), extra.end());
    return invoke(args).code;
  };
  EXPECT_EQ(fails({"--model", "turbo"}), 2);
  // --model async + --shards is legal since schema 2; what stays out of
  // the wire is the adversary (schedules are an in-process artifact), and
  // --no-pool is meaningless without shards.
  EXPECT_EQ(fails({"--model", "async", "--adversary", "random", "--shards",
                   "2"}),
            2);
  EXPECT_EQ(fails({"--no-pool"}), 2);
  EXPECT_EQ(fails({"--model", "async", "--delay", "bogus:1"}), 2);
  EXPECT_EQ(fails({"--model", "async", "--delay", "uniform:9:1"}), 2);
  EXPECT_EQ(fails({"--model", "async", "--loss", "1.5"}), 2);
  EXPECT_EQ(fails({"--model", "async", "--loss", "nope"}), 2);
  EXPECT_EQ(
      fails({"--model", "async", "--loss", "0.5", "--synchronizer", "on"}),
      2);
  EXPECT_EQ(fails({"--model", "async", "--synchronizer", "sideways"}), 2);
}

TEST(Cli, SweepAdversaryEchoesConfigAndEmitsWorstCaseRows) {
  // One instance, one search: a row with the full worst-case metric set and
  // a summary echoing the adversary configuration.
  const auto run = invoke({"sweep", "cycle", "--min", "8", "--max", "8",
                           "--model", "async", "--adversary", "delay",
                           "--budget", "8", "--timeout", "3", "--seed", "4",
                           "--ndjson"});
  ASSERT_EQ(run.code, 0) << run.err;
  const auto lines = lines_of(run.out);
  ASSERT_EQ(lines.size(), 2u) << run.out;

  const auto& row = lines.front();
  EXPECT_EQ(json_field(row, "family"), "\"cycle\"");
  EXPECT_EQ(json_field(row, "adversary"), "\"delay\"");
  EXPECT_EQ(json_field(row, "budget"), "8");
  EXPECT_EQ(json_field(row, "evaluated"), "8");
  for (const char* key :
       {"failures", "worst_rounds", "worst_time", "worst_selected",
        "worst_inconsistent", "primary", "shrunk_changes",
        "shrunk_overrides"}) {
    EXPECT_NE(json_field(row, key), "") << "row missing " << key;
  }
  // cycle(8) has 8 <= 24 edges: the exact optimum and the worst-case
  // approximation ratio are part of the row.
  EXPECT_EQ(json_field(row, "optimum"), "3");
  EXPECT_NE(json_field(row, "worst_ratio"), "");

  const auto& summary = lines.back();
  ASSERT_NE(summary.find("\"summary\""), std::string::npos);
  EXPECT_EQ(json_field(summary, "adversary"), "\"delay\"");
  EXPECT_EQ(json_field(summary, "budget"), "8");
  // Adversaries imply free-running mode unless overridden.
  EXPECT_NE(summary.find("\"synchronizer\":false"), std::string::npos);
}

TEST(Cli, SweepAdversaryReplayRoundTripIsByteIdentical) {
  // The differential replay acceptance path end to end: search under
  // --threads 1 and --threads 8 (byte-identical reports and replay files),
  // then re-execute the serialized worst schedule — every recorded metric
  // must reproduce, again independent of the thread count.
  const auto dir = ::testing::TempDir() + "cli_adversary_replay";
  std::filesystem::create_directories(dir);
  const std::vector<std::string> base{
      "sweep", "cycle", "--min", "8", "--max", "8", "--model", "async",
      "--adversary", "delay", "--budget", "8", "--timeout", "3",
      "--seed", "4", "--ndjson", "--replay-out", dir};
  auto one = base;
  one.insert(one.end(), {"--threads", "1"});
  auto many = base;
  many.insert(many.end(), {"--threads", "8"});
  const auto a = invoke(one);
  const auto b = invoke(many);
  ASSERT_EQ(a.code, 0) << a.err;
  ASSERT_EQ(b.code, 0) << b.err;
  EXPECT_EQ(a.out, b.out);

  auto path = json_field(lines_of(a.out).front(), "replay");
  ASSERT_GE(path.size(), 2u);
  path = path.substr(1, path.size() - 2);  // strip the JSON quotes
  EXPECT_EQ(path, dir + "/worst-cycle-0.edsched");

  const auto replay_one = invoke({"sweep", "--replay", path, "--threads", "1"});
  const auto replay_many =
      invoke({"sweep", "--replay", path, "--threads", "8"});
  ASSERT_EQ(replay_one.code, 0) << replay_one.err;
  ASSERT_EQ(replay_many.code, 0) << replay_many.err;
  EXPECT_EQ(replay_one.out, replay_many.out);
  EXPECT_NE(replay_one.out.find("replay: schema=1 strategy=delay"),
            std::string::npos)
      << replay_one.out;
  EXPECT_NE(replay_one.out.find("--- transcript ---"), std::string::npos);
  EXPECT_NE(replay_one.out.find("--- fault log ---"), std::string::npos);
  EXPECT_NE(replay_one.out.find("reproduced"), std::string::npos);
  EXPECT_EQ(replay_one.out.find("DRIFT"), std::string::npos) << replay_one.out;
}

TEST(Cli, SweepAdversaryRejections) {
  const auto fails = [](std::vector<std::string> extra) {
    std::vector<std::string> args{"sweep", "cycle", "--min", "8", "--max",
                                  "8"};
    args.insert(args.end(), extra.begin(), extra.end());
    return invoke(args).code;
  };
  // The synchronous model has no schedules to attack.
  EXPECT_EQ(fails({"--adversary", "delay", "--budget", "4"}), 2);
  EXPECT_EQ(fails({"--model", "async", "--adversary", "chaos",
                   "--budget", "4"}), 2);
  EXPECT_EQ(fails({"--model", "async", "--adversary", "delay",
                   "--budget", "0"}), 2);
  // --budget / --replay-out are adversary-only knobs.
  EXPECT_EQ(fails({"--model", "async", "--budget", "4"}), 2);
  EXPECT_EQ(fails({"--budget", "4"}), 2);
  EXPECT_EQ(fails({"--model", "async", "--replay-out", "/tmp"}), 2);
  // The α-synchronizer absorbs every schedule: refuse the no-op search.
  EXPECT_EQ(fails({"--model", "async", "--adversary", "pct", "--budget", "4",
                   "--synchronizer", "on"}), 2);
  // Replay rejections: missing file, not a replay file.
  EXPECT_EQ(invoke({"sweep", "--replay", "/no/such/file.edsched"}).code, 2);
  const auto garbage = ::testing::TempDir() + "cli_garbage.edsched";
  {
    std::ofstream sink(garbage);
    sink << "not a replay\n";
  }
  EXPECT_EQ(invoke({"sweep", "--replay", garbage}).code, 2);
}

}  // namespace
}  // namespace eds::cli
