// PlanCache contract: plans are shared exactly when port structures are
// identical, the LRU bound holds, concurrent lookups build one plan per
// structure, and cached plans are bit-identical to fresh ones under every
// policy — the cache must be invisible except in its own counters.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "algo/bounded_degree.hpp"
#include "algo/driver.hpp"
#include "algo/port_one.hpp"
#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "port/random_port_graph.hpp"
#include "runtime/batch.hpp"
#include "runtime/engine.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/runner.hpp"
#include "util/rng.hpp"
#include "test_util.hpp"

namespace eds::runtime {
namespace {

using port::Port;
using port::PortGraph;
using test::EchoFactory;

TEST(PlanCache, HitsOnIdenticalStructureMissesOnDifferent) {
  auto rng = test::make_rng(0xCAC1);
  const auto a = test::random_ported_regular(12, 4, rng);
  const auto b = test::random_ported_regular(12, 4, rng);  // other numbering

  PlanCache cache;
  const auto plan_a1 = cache.get(a.ports());
  const auto plan_a2 = cache.get(a.ports());
  EXPECT_EQ(plan_a1.get(), plan_a2.get()) << "same structure must share";

  const auto plan_b = cache.get(b.ports());
  EXPECT_NE(plan_a1.get(), plan_b.get())
      << "a different port numbering is a different structure";
  EXPECT_TRUE(plan_b->matches(b.ports()));
  EXPECT_FALSE(plan_b->matches(a.ports()));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(PlanCache, StructurallyEqualGraphsShareAcrossObjects) {
  // Two *distinct* PortGraph objects with literally the same structure:
  // canonical ports of the same generator output.
  const auto a = port::with_canonical_ports(graph::cycle(10));
  const auto b = port::with_canonical_ports(graph::cycle(10));
  PlanCache cache;
  EXPECT_EQ(cache.get(a.ports()).get(), cache.get(b.ports()).get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCache, LruEvictionUnderCapacity) {
  const auto g1 = port::with_canonical_ports(graph::cycle(6));
  const auto g2 = port::with_canonical_ports(graph::cycle(8));
  const auto g3 = port::with_canonical_ports(graph::cycle(10));

  PlanCache cache(2);
  ASSERT_EQ(cache.capacity(), 2u);
  const auto p1 = cache.get(g1.ports());
  const auto p2 = cache.get(g2.ports());
  // Touch g1 so g2 becomes the LRU victim.
  EXPECT_EQ(cache.get(g1.ports()).get(), p1.get());
  const auto p3 = cache.get(g3.ports());

  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);

  // g1 and g3 are resident; g2 was evicted and recompiles.
  EXPECT_EQ(cache.get(g1.ports()).get(), p1.get());
  EXPECT_EQ(cache.get(g3.ports()).get(), p3.get());
  EXPECT_NE(cache.get(g2.ports()).get(), p2.get());
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 4u);  // g1, g2, g3, g2 again
  EXPECT_EQ(stats.evictions, 2u);

  // Evicted plans stay usable through their shared_ptr.
  EXPECT_TRUE(p2->matches(g2.ports()));
}

TEST(PlanCache, ByteAccountingShrinksOnClearAndEviction) {
  const auto g1 = port::with_canonical_ports(graph::cycle(6));
  const auto g2 = port::with_canonical_ports(graph::cycle(64));
  PlanCache cache(1);
  (void)cache.get(g1.ports());
  const auto small = cache.stats().bytes;
  (void)cache.get(g2.ports());  // evicts g1
  const auto big = cache.stats().bytes;
  EXPECT_GT(small, 0u);
  EXPECT_GT(big, small);
  cache.clear();
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(PlanCache, ByteBoundEvictsIndependentlyOfEntryBound) {
  const auto small = port::with_canonical_ports(graph::cycle(8));
  const auto big = port::with_canonical_ports(graph::cycle(512));

  // Generous entry bound, byte bound sized so `big` alone exceeds it: the
  // byte bound must evict `small` but always keep the newest plan.
  PlanCache cache(16, /*max_bytes=*/4096);
  const auto p_small = cache.get(small.ports());
  (void)cache.get(big.ports());
  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 1u) << "only the oversized newest plan remains";

  // The evicted plan recompiles on the next request.
  EXPECT_NE(cache.get(small.ports()).get(), p_small.get());
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(PlanCache, ConcurrentLookupsCompileOnePlanPerStructure) {
  // 8 threads x 32 lookups over 3 structures: exactly 3 compilations, and
  // every thread observes the same shared plan per structure.  Run under
  // TSan (EDS_TSAN=ON) this is the cache's race check.
  const auto g1 = port::with_canonical_ports(graph::cycle(9));
  const auto g2 = port::with_canonical_ports(graph::path(9));
  const auto g3 = port::with_canonical_ports(graph::complete(5));
  const PortGraph* graphs[] = {&g1.ports(), &g2.ports(), &g3.ports()};

  PlanCache cache;
  const auto baseline = ExecutionPlan::constructed_count();
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &graphs, &mismatches] {
      for (int i = 0; i < 32; ++i) {
        const auto& g = *graphs[i % 3];
        const auto plan = cache.get(g);
        if (!plan->matches(g)) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 8u * 32u - 3u);
  EXPECT_EQ(ExecutionPlan::constructed_count() - baseline, 3u);
}

TEST(PlanCache, ThousandJobSweepCompilesExactlyOnePlan) {
  // The acceptance point: a 1000-job sweep over one port-numbered graph —
  // the `edsim sweep --repeat 1000` shape — compiles exactly 1
  // ExecutionPlan; all 999 remaining jobs are cache hits.
  auto rng = test::make_rng(0x1000);
  const auto pg = test::random_ported_regular(16, 4, rng);
  const std::vector<algo::BatchItem> items(
      1000, algo::BatchItem{&pg, algo::Algorithm::kBoundedDegree, 4});

  PlanCache cache;
  const auto baseline = ExecutionPlan::constructed_count();
  const auto outcomes = algo::run_batch(items, 4, &cache);

  EXPECT_EQ(ExecutionPlan::constructed_count() - baseline, 1u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 999u);
  ASSERT_EQ(outcomes.size(), 1000u);
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.solution, outcomes.front().solution);
    EXPECT_TRUE(outcome.stats == outcomes.front().stats);
  }
}

TEST(PlanCache, CachedPlansAreBitIdenticalToFreshOnesUnderEveryPolicy) {
  // The differential guarantee extended to the cached-plan path: for every
  // policy, a run through the cache equals a fresh-plan run field by field
  // (outputs, stats, trace, message-log order).
  auto rng = test::make_rng(0xCAC2);
  std::vector<port::PortGraph> graphs;
  graphs.push_back(test::random_ported_regular(18, 4, rng).ports());
  std::vector<Port> degrees(10);
  for (auto& deg : degrees) deg = static_cast<Port>(rng.below(5));
  graphs.push_back(port::random_port_graph(degrees, rng));  // multigraph

  PlanCache cache;
  for (const auto& g : graphs) {
    Port max_degree = 1;
    for (std::size_t v = 0; v < g.num_nodes(); ++v) {
      max_degree = std::max(max_degree, g.degree(static_cast<port::NodeId>(v)));
    }
    const algo::BoundedDegreeFactory bounded(max_degree);
    const EchoFactory echo(3);
    for (const auto* factory :
         std::initializer_list<const ProgramFactory*>{&bounded, &echo}) {
      for (const unsigned threads : {1u, 2u, 8u}) {
        RunOptions fresh;
        fresh.collect_trace = true;
        fresh.collect_messages = true;
        fresh.exec.threads = threads;
        const auto expected = run_synchronous(g, *factory, fresh);

        RunOptions cached = fresh;
        cached.exec.plan_cache = &cache;
        // Twice: a cold (miss) and a warm (hit) pass must both match.
        const auto got_cold = run_synchronous(g, *factory, cached);
        const auto got_warm = run_synchronous(g, *factory, cached);
        EXPECT_TRUE(got_cold == expected) << "threads=" << threads;
        EXPECT_TRUE(got_warm == expected) << "threads=" << threads;
      }
    }
  }
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(PlanCache, GlobalCacheServesRunAlgorithm) {
  // run_algorithm defaults a null ExecOptions::plan_cache to the global
  // cache: back-to-back runs on one graph compile at most one plan (zero
  // when an earlier test already cached this structure).
  auto rng = test::make_rng(0x610B);
  const auto pg = test::random_ported_regular(20, 4, rng);
  const auto first =
      algo::run_algorithm(pg, algo::Algorithm::kPortOne);
  const auto baseline = ExecutionPlan::constructed_count();
  const auto second =
      algo::run_algorithm(pg, algo::Algorithm::kPortOne);
  EXPECT_EQ(ExecutionPlan::constructed_count(), baseline)
      << "the second run must reuse the globally cached plan";
  EXPECT_EQ(first.solution, second.solution);
}

}  // namespace
}  // namespace eds::runtime
