// Adversarial schedule search: the PCT-style scheduler, the search driver,
// the delta-debugging shrinker, and the versioned replay codec.
//
// The load-bearing guarantees:
//  * every strategy's report is a deterministic pure function of
//    (instance, base options, seed, budget) — thread counts are irrelevant;
//  * probe 0 is the unperturbed base, so each adversary's worst witness is
//    >= anything seed-random sampling finds at ANY budget on a fault-free
//    fixed-delay base (where random has nothing left to randomize) — the
//    acceptance bar checks a 10x random budget explicitly;
//  * a shrunk witness still exhibits the recorded worst metric, and its
//    serialized form replays bit-identically (result, transcript, fault
//    log) after an encode/decode round trip.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algo/driver.hpp"
#include "port/io.hpp"
#include "port/random_port_graph.hpp"
#include "runtime/async.hpp"
#include "runtime/outputs.hpp"
#include "runtime/sched.hpp"
#include "util/rng.hpp"
#include "invariants.hpp"
#include "test_util.hpp"

namespace eds::runtime {
namespace {

using algo::Algorithm;
using port::Port;
using port::PortGraph;
using port::PortGraphBuilder;

/// The environment under attack in the comparison tests: free-running,
/// fixed unit delays, a tight-but-clean round timeout (messages arrive at
/// +1, the deadline is +2), no faults.  Seed-random probes only re-draw the
/// delay matrix, which is degenerate here — so randomness is *exhausted*
/// and only genuine schedule perturbations can move a metric.
AsyncOptions attack_base() {
  AsyncOptions base;
  base.synchronizer = false;
  base.delay = {DelayKind::kFixed, 1, 1};
  base.round_timeout = 2;
  base.seed = 99;
  return base;
}

/// A fixed random multigraph (3-regular involution on 8 nodes, loops and
/// parallel edges possible) — the second committed fixture of the
/// acceptance table.  Fixed Rng: the comparisons are about this exact
/// instance, so it must not follow EDS_FUZZ_SEED.
PortGraph random_multigraph_fixture() {
  Rng rng(0xADF1C7ULL);
  return port::random_port_graph(std::vector<Port>(8, 3), rng, 0.1);
}

TEST(AdversaryTokens, StrategyTokensRoundTrip) {
  for (const auto s :
       {AdversaryStrategy::kRandom, AdversaryStrategy::kPct,
        AdversaryStrategy::kDelay, AdversaryStrategy::kClimb}) {
    EXPECT_EQ(adversary_from_token(adversary_token(s)), s);
  }
  EXPECT_FALSE(adversary_from_token("chaos").has_value());
  EXPECT_FALSE(adversary_from_token("").has_value());
}

TEST(AdversaryTokens, MetricTokensRoundTrip) {
  for (const auto m :
       {AdversaryMetric::kRounds, AdversaryMetric::kVirtualTime,
        AdversaryMetric::kSelected, AdversaryMetric::kInconsistent}) {
    EXPECT_EQ(metric_from_token(metric_token(m)), m);
  }
  EXPECT_FALSE(metric_from_token("latency").has_value());
  ScheduleMetrics metrics{3, 40, 5, 2};
  EXPECT_EQ(metric_value(metrics, AdversaryMetric::kRounds), 3u);
  EXPECT_EQ(metric_value(metrics, AdversaryMetric::kVirtualTime), 40u);
  EXPECT_EQ(metric_value(metrics, AdversaryMetric::kSelected), 5u);
  EXPECT_EQ(metric_value(metrics, AdversaryMetric::kInconsistent), 2u);
}

TEST(MeasureSchedule, CountsTwoSidedOneSidedAndLoops) {
  // Two connected degree-1 nodes plus a directed loop on a third.
  PortGraphBuilder b(std::vector<Port>{1, 1, 1});
  b.connect({0, 1}, {1, 1});
  b.fix({2, 1});
  const auto g = b.build();

  AsyncResult result;
  result.run.outputs = {{1}, {1}, {1}};
  auto m = measure_schedule(g, result);
  EXPECT_EQ(m.selected, 2u);  // the edge (counted once) + the loop
  EXPECT_EQ(m.inconsistent, 0u);

  result.run.outputs = {{1}, {}, {}};
  m = measure_schedule(g, result);
  EXPECT_EQ(m.selected, 0u);
  EXPECT_EQ(m.inconsistent, 1u);  // node 0's claim is unreciprocated
}

TEST(MeasureSchedule, RejectsNodeCountMismatch) {
  PortGraphBuilder b(std::vector<Port>{1, 1});
  b.connect({0, 1}, {1, 1});
  const auto g = b.build();
  AsyncResult result;
  result.run.outputs = {{1}};
  EXPECT_THROW((void)measure_schedule(g, result), InvalidArgument);
}

TEST(ReplayCodec, RoundTripsAllFields) {
  ReplayFile file;
  file.strategy = "pct";
  file.algorithm = "bounded";
  file.param = 3;
  file.options.synchronizer = false;
  file.options.delay = {DelayKind::kUniform, 1, 7};
  file.options.faults.loss = 0.125;
  file.options.faults.duplicate = 0.0625;
  file.options.faults.crashes = {{2, 9}, {5, 17}};
  file.options.round_timeout = 11;
  file.options.seed = 0xFEEDC0DEULL;
  file.options.schedule.prio_seed = 0x1234567'89ULL;
  file.options.schedule.demote_ticks = 4;
  file.options.schedule.change_points = {7, 31, 99};
  file.options.schedule.delay_overrides = {{3, 5}, {12, 2}};
  file.metrics = {{"rounds", 12}, {"inconsistent", 3}};
  file.graph_text = port::to_port_graph_string(random_multigraph_fixture());

  const auto decoded = decode_replay(encode_replay(file));
  EXPECT_EQ(decoded, file);
}

TEST(ReplayCodec, RejectsGarbageAndWrongSchema) {
  EXPECT_THROW((void)decode_replay(""), InvalidArgument);
  EXPECT_THROW((void)decode_replay("not a replay\n"), InvalidArgument);
  EXPECT_THROW(
      (void)decode_replay("edsched 99\nalgorithm x\ngraph\nports 0\n"),
      InvalidArgument);
  // Header fine, but no algorithm record.
  EXPECT_THROW((void)decode_replay("edsched 1\ngraph\nports 0\n"),
               InvalidArgument);
  // Unknown record key.
  EXPECT_THROW(
      (void)decode_replay(
          "edsched 1\nalgorithm x\nwibble 3\ngraph\nports 0\n"),
      InvalidArgument);
}

TEST(EngineSchedule, ValidationRejectsMalformedSchedules) {
  const auto g = random_multigraph_fixture();
  const test::EchoFactory factory(2);

  AsyncOptions orphan_change_points = attack_base();
  orphan_change_points.schedule.change_points = {5};  // no prio_seed
  EXPECT_THROW((void)run_asynchronous(g, factory, {}, orphan_change_points),
               InvalidArgument);

  AsyncOptions bad_port = attack_base();
  bad_port.schedule.delay_overrides = {
      {static_cast<std::uint32_t>(g.num_ports()), 2}};
  EXPECT_THROW((void)run_asynchronous(g, factory, {}, bad_port),
               InvalidArgument);

  AsyncOptions zero_ticks = attack_base();
  zero_ticks.schedule.delay_overrides = {{0, 0}};
  EXPECT_THROW((void)run_asynchronous(g, factory, {}, zero_ticks),
               InvalidArgument);
}

TEST(EngineSchedule, ScheduledRunsAreDeterministic) {
  const auto g = random_multigraph_fixture();
  const test::RelayFactory factory(3);

  AsyncOptions options = attack_base();
  options.schedule.prio_seed = 0xABCDEF12ULL;
  options.schedule.demote_ticks = 2;
  options.schedule.change_points = {3, 17};
  options.schedule.delay_overrides = {{1, 3}, {6, 2}};

  RunOptions run;
  run.collect_trace = true;
  run.collect_messages = true;
  const auto a = run_asynchronous(g, factory, run, options);
  const auto b = run_asynchronous(g, factory, run, options);
  EXPECT_EQ(a, b);
  EXPECT_EQ(format_transcript(a.run), format_transcript(b.run));
  EXPECT_EQ(format_fault_log(a.fault_log), format_fault_log(b.fault_log));
}

TEST(EngineSchedule, SynchronizerAbsorbsSchedules) {
  // The α-synchronizer's guarantee is delay-universal, and a schedule only
  // reorders and delays — so even an aggressive schedule must leave a
  // synchronized run bit-identical to the synchronous engine.  (This is
  // why adversary_search refuses synchronized bases: there is nothing to
  // find.)
  const auto h = test::figure2_graph_h();
  const auto factory = algo::make_factory(Algorithm::kBoundedDegree, 3);
  const auto sync = run_synchronous(h.ports(), *factory, {});

  AsyncOptions options;  // synchronizer on (default)
  options.delay = {DelayKind::kUniform, 1, 5};
  options.seed = 21;
  options.schedule.prio_seed = 0x5C4EDULL;
  options.schedule.demote_ticks = 9;
  options.schedule.change_points = {1, 2, 30};
  options.schedule.delay_overrides = {{0, 9}, {3, 7}, {8, 4}};
  const auto a = run_asynchronous(h.ports(), *factory, {}, options);
  EXPECT_EQ(a.run.outputs, sync.outputs);
  EXPECT_EQ(a.run.stats, sync.stats);
}

TEST(AdversarySearch, RejectsSynchronizedBaseAndZeroBudget) {
  const auto g = random_multigraph_fixture();
  const auto factory = algo::make_factory(Algorithm::kPortOne);
  AsyncOptions synchronized;  // default: synchronizer on
  EXPECT_THROW((void)adversary_search(g, *factory, AdversaryStrategy::kPct,
                                      synchronized, 4, 1),
               InvalidArgument);
  EXPECT_THROW((void)adversary_search(g, *factory, AdversaryStrategy::kPct,
                                      attack_base(), 0, 1),
               InvalidArgument);
}

TEST(AdversarySearch, DeterministicAndThreadIndependent) {
  const auto g = random_multigraph_fixture();
  const auto factory = algo::make_factory(Algorithm::kPortOne);
  RunOptions one;
  one.exec.threads = 1;
  RunOptions eight;
  eight.exec.threads = 8;
  for (const auto strategy :
       {AdversaryStrategy::kRandom, AdversaryStrategy::kPct,
        AdversaryStrategy::kDelay, AdversaryStrategy::kClimb}) {
    const auto a = adversary_search(g, *factory, strategy, attack_base(), 12,
                                    0xBEEF, one);
    const auto b = adversary_search(g, *factory, strategy, attack_base(), 12,
                                    0xBEEF, eight);
    EXPECT_EQ(a.evaluated, b.evaluated) << adversary_token(strategy);
    EXPECT_EQ(a.failures, b.failures) << adversary_token(strategy);
    EXPECT_EQ(a.primary().options, b.primary().options)
        << adversary_token(strategy);
    EXPECT_EQ(a.primary().metrics, b.primary().metrics)
        << adversary_token(strategy);
    EXPECT_EQ(a.primary().result, b.primary().result)
        << adversary_token(strategy);
  }
}

/// The acceptance bar on one instance: every adversary strategy's worst
/// witness dominates the best that seed-random sampling finds with 10x the
/// budget, on the primary badness axes.  (Probe 0 of every strategy is the
/// unperturbed base, and the base is randomness-free here, so >= is
/// guaranteed by construction; the EXPECT_GT assertions below pin the
/// strict wins the committed benchmark tables report.)
///
/// Strict inconsistency wins are asserted only for the strategies that can
/// reach round 1: kDelay forces per-link delays past the timeout and kClimb
/// carries delay-override moves.  kPct cannot touch port-one — round-1
/// sends leave at engine initialisation, before the first event pop, so a
/// change-point demotion lands only on round-2+ sends and halt notices,
/// which a 1-round algorithm never emits.
void expect_strategies_dominate_tenfold_random(const PortGraph& g,
                                               const ProgramFactory& factory,
                                               const std::string& label,
                                               bool expect_strict) {
  constexpr std::size_t kBudget = 24;
  const auto random = adversary_search(g, factory, AdversaryStrategy::kRandom,
                                       attack_base(), 10 * kBudget, 0xD1CE);
  for (const auto strategy :
       {AdversaryStrategy::kPct, AdversaryStrategy::kDelay,
        AdversaryStrategy::kClimb}) {
    const auto report = adversary_search(g, factory, strategy, attack_base(),
                                         kBudget, 0xD1CE);
    const auto context = label + "/" + adversary_token(strategy);
    EXPECT_GE(report.worst_rounds.metrics.rounds,
              random.worst_rounds.metrics.rounds)
        << context;
    EXPECT_GE(report.worst_time.metrics.virtual_time,
              random.worst_time.metrics.virtual_time)
        << context;
    EXPECT_GE(report.worst_inconsistent.metrics.inconsistent,
              random.worst_inconsistent.metrics.inconsistent)
        << context;
    if (expect_strict && strategy != AdversaryStrategy::kPct) {
      // Seed-random cannot produce a single endpoint inconsistency here
      // (no faults, degenerate delay matrix); the link-delay adversaries
      // must — a forced delay past the round timeout substitutes silence
      // for one endpoint's hello and yields a one-sided claim.
      EXPECT_EQ(random.worst_inconsistent.metrics.inconsistent, 0u) << context;
      EXPECT_GT(report.worst_inconsistent.metrics.inconsistent, 0u) << context;
    }
  }
}

TEST(AdversarySearch, BeatsTenfoldRandomOnFigure2H) {
  const auto h = test::figure2_graph_h();
  const auto factory = algo::make_factory(Algorithm::kPortOne);
  expect_strategies_dominate_tenfold_random(h.ports(), *factory, "figure2-H",
                                            /*expect_strict=*/true);
}

TEST(AdversarySearch, BeatsTenfoldRandomOnRandomMultigraph) {
  const auto g = random_multigraph_fixture();
  const auto factory = algo::make_factory(Algorithm::kPortOne);
  expect_strategies_dominate_tenfold_random(g, *factory, "multigraph",
                                            /*expect_strict=*/true);
}

TEST(AdversaryShrink, PreservesMetricAndReplaysBitIdentically) {
  const auto h = test::figure2_graph_h();
  const PortGraph& g = h.ports();
  const auto factory = algo::make_factory(Algorithm::kPortOne);

  // kDelay: the only strategy whose worst witness on a 1-round algorithm
  // carries endpoint inconsistency (see the dominance helper's note on why
  // kPct cannot reach round 1).
  const auto report = adversary_search(g, *factory, AdversaryStrategy::kDelay,
                                       attack_base(), 24, 0xD1CE);
  const auto metric = report.primary_metric();
  ASSERT_EQ(metric, AdversaryMetric::kInconsistent);
  const auto& worst = report.primary();
  const auto target = metric_value(worst.metrics, metric);
  ASSERT_GT(target, 0u);

  // Shrinking keeps the witness at or above the recorded metric with a
  // schedule no larger on any lane.
  const auto shrunk = shrink_witness(g, *factory, worst, metric);
  EXPECT_GE(metric_value(shrunk.metrics, metric), target);
  EXPECT_LE(shrunk.options.schedule.change_points.size(),
            worst.options.schedule.change_points.size());
  EXPECT_LE(shrunk.options.schedule.delay_overrides.size(),
            worst.options.schedule.delay_overrides.size());

  // Serialize -> decode -> re-execute: the replay file must reproduce the
  // shrunk witness bit-identically (the differential replay guarantee).
  ReplayFile file;
  file.strategy = "delay";
  file.algorithm = algo::algorithm_token(Algorithm::kPortOne);
  file.param = 0;
  file.options = shrunk.options;
  file.metrics = {{metric_token(metric), metric_value(shrunk.metrics, metric)}};
  file.graph_text = port::to_port_graph_string(g);

  const auto decoded = decode_replay(encode_replay(file));
  EXPECT_EQ(decoded.options, shrunk.options);
  const auto replayed_graph = port::from_port_graph_string(decoded.graph_text);
  const auto replayed =
      run_asynchronous(replayed_graph, *factory, {}, decoded.options);
  EXPECT_EQ(replayed, shrunk.result);
  EXPECT_EQ(format_transcript(replayed.run),
            format_transcript(shrunk.result.run));
  EXPECT_EQ(format_fault_log(replayed.fault_log),
            format_fault_log(shrunk.result.fault_log));
  EXPECT_EQ(measure_schedule(replayed_graph, replayed).inconsistent, target);
}

TEST(AdversaryInvariants, BaseRunsSatisfySharedHarness) {
  // The unperturbed base of the attack environment is fault-free and
  // timeout-clean, so the shared invariant harness must hold on it —
  // consistency on the raw multigraph run, the full suite on a driver
  // outcome of the same fixture.
  const auto h = test::figure2_graph_h();
  const auto factory = algo::make_factory(Algorithm::kPortOne);
  const auto base = run_asynchronous(h.ports(), *factory, {}, attack_base());
  test::check_eds_invariants(h.ports(), base.run, "figure2-H base");

  const auto outcome = algo::run_algorithm(h, Algorithm::kBoundedDegree, 3);
  test::check_eds_invariants(h, outcome, Algorithm::kBoundedDegree, 3,
                             "figure2-H driver");
}

}  // namespace
}  // namespace eds::runtime
