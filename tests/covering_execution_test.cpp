// The covering-map execution lemma (Section 2.3), verified empirically:
// if f : V_H -> V_G is a covering map, then for ANY deterministic anonymous
// algorithm, the output of node v in H equals the output of f(v) in G.
// This is the engine behind both lower-bound theorems, and running it
// against the real simulator is a strong end-to-end check of the runtime.
#include <gtest/gtest.h>

#include "algo/driver.hpp"
#include "graph/generators.hpp"
#include "lb/lower_bounds.hpp"
#include "port/covering.hpp"
#include "port/ported_graph.hpp"
#include "runtime/runner.hpp"
#include "util/rng.hpp"

namespace eds {
namespace {

/// Asserts the lifting property for one algorithm on (cover, base, f).
void expect_lifts(const port::PortGraph& cover, const port::PortGraph& base,
                  const std::vector<graph::NodeId>& f,
                  const runtime::ProgramFactory& factory) {
  ASSERT_TRUE(port::is_covering_map(cover, base, f));
  const auto on_cover = runtime::run_synchronous(cover, factory);
  const auto on_base = runtime::run_synchronous(base, factory);
  ASSERT_EQ(on_cover.outputs.size(), cover.num_nodes());
  for (graph::NodeId v = 0; v < cover.num_nodes(); ++v) {
    EXPECT_EQ(on_cover.outputs[v], on_base.outputs[f[v]])
        << "node " << v << " (image " << f[v] << ") diverged from its image";
  }
  // Round counts coincide as well: the executions are locally identical.
  EXPECT_EQ(on_cover.stats.rounds, on_base.stats.rounds);
}

TEST(CoveringExecution, PortOneOnTheorem1Construction) {
  for (const port::Port d : {2u, 4u, 6u, 8u}) {
    const auto inst = lb::even_lower_bound(d);
    const auto factory = algo::make_factory(algo::Algorithm::kPortOne);
    expect_lifts(inst.ported.ports(), inst.covering_base, inst.covering_map,
                 *factory);
  }
}

TEST(CoveringExecution, OddRegularOnTheorem2Construction) {
  for (const port::Port d : {3u, 5u}) {
    const auto inst = lb::odd_lower_bound(d);
    const auto factory = algo::make_factory(algo::Algorithm::kOddRegular, d);
    expect_lifts(inst.ported.ports(), inst.covering_base, inst.covering_map,
                 *factory);
  }
}

TEST(CoveringExecution, BoundedDegreeOnTheorem1Construction) {
  const auto inst = lb::even_lower_bound(4);
  const auto factory = algo::make_factory(algo::Algorithm::kBoundedDegree, 4);
  expect_lifts(inst.ported.ports(), inst.covering_base, inst.covering_map,
               *factory);
}

TEST(CoveringExecution, DoubleCoverOnTheorem1Construction) {
  const auto inst = lb::even_lower_bound(6);
  const auto factory = algo::make_factory(algo::Algorithm::kDoubleCover, 6);
  expect_lifts(inst.ported.ports(), inst.covering_base, inst.covering_map,
               *factory);
}

TEST(CoveringExecution, CycleCoversSmallerCycle) {
  // C_2n covers C_n when both carry the orientation-induced numbering
  // (port 1 forward, port 2 backward).
  auto oriented_cycle = [](std::size_t n) {
    auto g = graph::cycle(n);
    std::vector<std::vector<graph::EdgeId>> order(n, std::vector<graph::EdgeId>(2));
    for (graph::NodeId v = 0; v < n; ++v) {
      order[v][0] = *g.find_edge(v, static_cast<graph::NodeId>((v + 1) % n));
      order[v][1] =
          *g.find_edge(v, static_cast<graph::NodeId>((v + n - 1) % n));
    }
    return port::PortedGraph(std::move(g), order);
  };
  const auto big = oriented_cycle(12);
  const auto small = oriented_cycle(6);
  std::vector<graph::NodeId> f(12);
  for (graph::NodeId v = 0; v < 12; ++v) f[v] = v % 6;

  const auto factory = algo::make_factory(algo::Algorithm::kPortOne);
  expect_lifts(big.ports(), small.ports(), f, *factory);

  const auto dc = algo::make_factory(algo::Algorithm::kDoubleCover, 2);
  expect_lifts(big.ports(), small.ports(), f, *dc);
}

TEST(CoveringExecution, SymmetryForcesFactorSelection) {
  // On the Theorem 1 graph, whatever the algorithm does, its output on the
  // 1-node multigraph must pick some loop pair {2i-1, 2i} — and therefore
  // the full factor G(i) in the covering graph.  Verify the selected edge
  // count is a multiple of |V| (each factor has exactly |V| edges).
  const auto inst = lb::even_lower_bound(6);
  const auto outcome =
      algo::run_algorithm(inst.ported, algo::Algorithm::kPortOne);
  const auto n = inst.ported.graph().num_nodes();
  EXPECT_EQ(outcome.solution.size() % n, 0u);
  EXPECT_GE(outcome.solution.size(), n);
}

}  // namespace
}  // namespace eds
