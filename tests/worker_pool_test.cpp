// The warm worker pool behind ProcessShardExecutor's pooled mode: warm
// reuse (fork once, serve many batches, keep plan caches hot), transparent
// respawn after a mid-batch death, idle reaping, drain/destructor
// teardown, and the schema-2 framing + async payload codecs that carry it
// all.  The differential anchors: pooled, unpooled and in-process backends
// must be bit-identical, for sync and async jobs alike.
//
// Tests that fork real worker subprocesses resolve the edsim binary from
// the EDSIM_BIN_PATH compile definition (set by tests/CMakeLists.txt) with
// an EDSIM_BIN environment override, and skip when neither points at an
// executable.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "algo/driver.hpp"
#include "graph/generators.hpp"
#include "port/io.hpp"
#include "port/ported_graph.hpp"
#include "runtime/batch.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/shard.hpp"
#include "runtime/worker_pool.hpp"
#include "util/error.hpp"
#include "test_util.hpp"

namespace eds::runtime {
namespace {

#define REQUIRE_EDSIM_OR_SKIP(var)                                        \
  const std::string var = test::edsim_binary();                           \
  if (var.empty()) GTEST_SKIP() << "edsim binary not found (set EDSIM_BIN)"

/// A job any backend can run: factory for in-process execution, JobSpec
/// for process shards.  The factory must outlive the returned job.
BatchJob shippable_job(const port::PortGraph& g, const ProgramFactory& factory,
                       const std::string& token, Port param,
                       Round max_rounds = 100000) {
  BatchJob job;
  job.graph = &g;
  job.factory = &factory;
  job.options.max_rounds = max_rounds;
  JobSpec spec;
  spec.algorithm = token;
  spec.param = param;
  spec.group = structural_hash(g);
  job.spec = spec;
  return job;
}

std::vector<RunResult> collect(const Executor& executor,
                               const std::vector<BatchJob>& jobs) {
  std::vector<RunResult> got(jobs.size());
  std::size_t next = 0;
  executor.run_streaming(jobs, [&](std::size_t i, RunResult&& result) {
    EXPECT_EQ(i, next++) << "delivery must be in job order";
    got[i] = std::move(result);
  });
  EXPECT_EQ(next, jobs.size());
  return got;
}

// ---------------------------------------------------------------------------
// Schema-2 framing and async payload codecs.

TEST(WireCodecV2, BatchFramingRoundTrips) {
  const auto begin = decode_parent_line(encode_batch_begin(42));
  EXPECT_EQ(begin.kind, ParentLine::Kind::kBatchBegin);
  EXPECT_EQ(begin.schema, kWireSchemaVersion);
  EXPECT_EQ(begin.batch_id, 42u);

  const auto end = decode_parent_line(encode_batch_end(42));
  EXPECT_EQ(end.kind, ParentLine::Kind::kBatchEnd);
  EXPECT_EQ(end.batch_id, 42u);

  // Framing is a schema-2 construct; a schema-1 line claiming it is a
  // protocol error, as is any foreign schema.
  EXPECT_THROW((void)decode_parent_line("{\"schema\":1,\"batch_begin\":"
                                        "{\"batch\":1}}"),
               InvalidArgument);
  EXPECT_THROW((void)decode_parent_line("{\"schema\":9,\"batch_begin\":"
                                        "{\"batch\":1}}"),
               InvalidArgument);
}

TEST(WireCodecV2, AsyncJobRoundTripsBitExactly) {
  WireJob job;
  job.index = 3;
  job.algorithm = "port-one";
  job.param = 0;
  job.threads = 2;
  job.max_rounds = 500;
  job.graph_text = "ports 2\ndeg 1 1\nconn 0 1 1 1\n";
  AsyncOptions async;
  async.synchronizer = false;
  async.delay = {DelayKind::kUniform, 1, 6};
  async.seed = 0xDEADBEEFCAFEF00DULL;
  async.round_timeout = 9;
  // Probabilities chosen to not be exactly representable: the codec must
  // round-trip them bit-exactly (max_digits10), not "close enough".
  async.faults.loss = 0.1;
  async.faults.duplicate = 0.05;
  async.faults.crashes = {{2, 17}, {5, 3}};
  job.async = async;

  const auto line = encode_wire_job(job);
  const auto parsed = decode_parent_line(line);
  ASSERT_EQ(parsed.kind, ParentLine::Kind::kJob);
  const auto& back = parsed.job;
  ASSERT_TRUE(back.async.has_value());
  EXPECT_EQ(back.async->synchronizer, async.synchronizer);
  EXPECT_EQ(back.async->delay.kind, async.delay.kind);
  EXPECT_EQ(back.async->delay.a, async.delay.a);
  EXPECT_EQ(back.async->delay.b, async.delay.b);
  EXPECT_EQ(back.async->seed, async.seed);
  EXPECT_EQ(back.async->round_timeout, async.round_timeout);
  EXPECT_EQ(back.async->faults.loss, async.faults.loss);
  EXPECT_EQ(back.async->faults.duplicate, async.faults.duplicate);
  ASSERT_EQ(back.async->faults.crashes.size(), 2u);
  EXPECT_EQ(back.async->faults.crashes[0].node, 2u);
  EXPECT_EQ(back.async->faults.crashes[0].time, 17u);
  EXPECT_TRUE(back.async->schedule.empty());

  // The legacy schema carries no async payload — encoding one at schema 1
  // must refuse instead of silently dropping the options.
  EXPECT_THROW((void)encode_wire_job(job, kLegacyWireSchemaVersion),
               InvalidArgument);
}

TEST(WireCodecV2, SummaryCarriesBatchIdAndTotals) {
  WorkerSummary summary;
  summary.batch_id = 7;
  summary.jobs = 4;
  summary.plans_compiled = 1;
  summary.plan_hits = 3;
  summary.total_jobs = 12;
  summary.total_compiled = 2;
  summary.total_hits = 10;
  const auto parsed = decode_worker_line(encode_worker_summary(summary));
  ASSERT_EQ(parsed.kind, WorkerLine::Kind::kSummary);
  EXPECT_EQ(parsed.summary.batch_id, 7u);
  EXPECT_EQ(parsed.summary.jobs, 4u);
  EXPECT_EQ(parsed.summary.plans_compiled, 1u);
  EXPECT_EQ(parsed.summary.plan_hits, 3u);
  EXPECT_EQ(parsed.summary.total_jobs, 12u);
  EXPECT_EQ(parsed.summary.total_compiled, 2u);
  EXPECT_EQ(parsed.summary.total_hits, 10u);

  // A legacy summary has no totals; the decoder mirrors the per-batch
  // counters so schema-agnostic consumers see consistent numbers.
  const auto legacy = decode_worker_line(
      encode_worker_summary(summary, kLegacyWireSchemaVersion));
  EXPECT_EQ(legacy.schema, kLegacyWireSchemaVersion);
  EXPECT_EQ(legacy.summary.jobs, 4u);
  EXPECT_EQ(legacy.summary.total_jobs, 4u);
  EXPECT_EQ(legacy.summary.total_hits, 3u);
}

// ---------------------------------------------------------------------------
// Warm reuse: the point of the pool.

TEST(WorkerPool, SecondIdenticalBatchIsWarmAndAllHits) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  auto rng = test::make_rng(0x9001);
  const auto a = test::random_ported_regular(12, 3, rng);
  const auto b = test::random_ported_regular(16, 3, rng);
  const auto bounded = algo::make_factory(algo::Algorithm::kBoundedDegree, 3);
  std::vector<BatchJob> jobs{
      shippable_job(a.ports(), *bounded, "bounded-degree", 3),
      shippable_job(b.ports(), *bounded, "bounded-degree", 3),
      shippable_job(a.ports(), *bounded, "bounded-degree", 3),
  };

  const ProcessShardExecutor executor({bin, "worker"}, 2);
  const auto first = collect(executor, jobs);
  const auto cold = executor.stats();
  EXPECT_EQ(cold.batches_run, 1u);
  EXPECT_GE(cold.workers_spawned, 1u);
  EXPECT_EQ(cold.workers_respawned, 0u);
  EXPECT_EQ(cold.plans_compiled, 2u);
  EXPECT_EQ(cold.plan_hits, 1u);
  EXPECT_GE(executor.live_workers(), 1u) << "workers must stay warm";

  // Same batch again: no forks, no compilations — every job is a cache
  // hit inside a reused worker.  Results stay bit-identical.
  const auto second = collect(executor, jobs);
  const auto warm = executor.stats();
  EXPECT_EQ(warm.workers_spawned, cold.workers_spawned)
      << "a warm batch must not fork";
  EXPECT_EQ(warm.workers_respawned, 0u);
  EXPECT_EQ(warm.plans_compiled, cold.plans_compiled)
      << "warm caches compile nothing new";
  EXPECT_EQ(warm.plan_hits, cold.plan_hits + jobs.size());
  EXPECT_EQ(warm.batches_run, 2u);
  EXPECT_EQ(warm.jobs_shipped, 2 * jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_TRUE(first[i] == second[i]) << "warmth must not change results";
  }
}

TEST(WorkerPool, UnpooledModeForksPerBatch) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  const auto pg = port::with_canonical_ports(graph::cycle(8));
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  const std::vector<BatchJob> jobs(
      2, shippable_job(pg.ports(), *port_one, "port-one", 0));

  ProcessShardExecutor::Options options;
  options.pooled = false;
  const ProcessShardExecutor executor({bin, "worker"}, 1, options);
  (void)collect(executor, jobs);
  EXPECT_EQ(executor.live_workers(), 0u)
      << "unpooled batches drain their fleet before returning";
  (void)collect(executor, jobs);
  const auto stats = executor.stats();
  EXPECT_EQ(stats.workers_spawned, 2u) << "one fork per batch";
  EXPECT_EQ(stats.workers_respawned, 0u);
  // Each batch got a cold cache: one compile per batch, the repeat hits.
  EXPECT_EQ(stats.plans_compiled, 2u);
  EXPECT_EQ(stats.plan_hits, 2u);
}

// ---------------------------------------------------------------------------
// Bit-identity across backends and modes.

TEST(WorkerPool, PooledUnpooledAndInProcessAreBitIdentical) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  auto rng = test::make_rng(0x1D3A);
  const auto a = test::random_ported_regular(14, 4, rng);
  const auto b = port::with_canonical_ports(graph::cycle(9));
  const auto bounded = algo::make_factory(algo::Algorithm::kBoundedDegree, 4);
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);

  std::vector<BatchJob> jobs;
  for (int r = 0; r < 3; ++r) {
    jobs.push_back(shippable_job(a.ports(), *bounded, "bounded-degree", 4));
    jobs.push_back(shippable_job(b.ports(), *port_one, "port-one", 0));
  }

  const auto expected = InProcessExecutor(2).run(jobs);
  for (const unsigned shards : {1u, 3u}) {
    for (const bool pooled : {true, false}) {
      ProcessShardExecutor::Options options;
      options.pooled = pooled;
      const ProcessShardExecutor executor({bin, "worker"}, shards, options);
      // Two passes through one executor: the second is warm in pooled
      // mode and cold in unpooled mode, and neither may change a bit.
      for (int pass = 0; pass < 2; ++pass) {
        const auto got = collect(executor, jobs);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
          EXPECT_TRUE(got[i] == expected[i])
              << "job " << i << " differs at shards=" << shards
              << " pooled=" << pooled << " pass=" << pass;
        }
      }
    }
  }
}

TEST(WorkerPool, AsyncJobsCrossTheWireBitIdentically) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  auto rng = test::make_rng(0xA57C);
  const auto a = test::random_ported_regular(12, 3, rng);
  const auto b = port::with_canonical_ports(graph::cycle(7));
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);

  // Two flavours: a synchronized fault-free run (the α-synchronizer
  // oracle) and a free-running faulty one (loss + duplication), each with
  // its own per-job seed — exactly what `sweep --model async --shards`
  // ships.
  std::vector<BatchJob> jobs;
  for (int r = 0; r < 2; ++r) {
    auto oracle = shippable_job(a.ports(), *port_one, "port-one", 0);
    AsyncOptions sync_async;
    sync_async.delay = {DelayKind::kUniform, 1, 5};
    sync_async.seed = 0x5EED0000ULL + static_cast<std::uint64_t>(r);
    oracle.options.exec.async = sync_async;
    jobs.push_back(oracle);

    auto faulty = shippable_job(b.ports(), *port_one, "port-one", 0);
    AsyncOptions faulty_async;
    faulty_async.synchronizer = false;
    faulty_async.delay = {DelayKind::kGeometric, 3, 12};
    faulty_async.seed = 0xFA0170000ULL + static_cast<std::uint64_t>(r);
    faulty_async.round_timeout = 8;
    faulty_async.faults.loss = 0.1;
    faulty_async.faults.duplicate = 0.05;
    faulty.options.exec.async = faulty_async;
    jobs.push_back(faulty);
  }

  const auto expected = InProcessExecutor(2).run(jobs);
  for (const unsigned shards : {1u, 3u}) {
    const ProcessShardExecutor executor({bin, "worker"}, shards);
    const auto got = collect(executor, jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_TRUE(got[i] == expected[i])
          << "async job " << i << " differs at shards=" << shards;
    }
  }
}

// ---------------------------------------------------------------------------
// Death, respawn, reap, drain.

TEST(WorkerPool, MidBatchDeathRetriesTheOrphansAndTheBatchSucceeds) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  const auto pg = port::with_canonical_ports(graph::cycle(8));
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);

  // --fail-after 2 (an alias for --chaos crash:2) kills the worker after
  // its second result ever.  Under the resilient default the batch no
  // longer fails: the in-flight job is charged an attempt and re-queued
  // to a respawned worker — whose fresh crash counter is not yet
  // exhausted — so all three jobs are delivered, in order, with the
  // retry visible only in stats().
  ProcessShardExecutor::Options options;
  options.retry_backoff_ms = 1;
  const ProcessShardExecutor executor({bin, "worker", "--fail-after", "2"},
                                      1, options);
  const std::vector<BatchJob> batch1(
      3, shippable_job(pg.ports(), *port_one, "port-one", 0));
  std::vector<std::size_t> delivered;
  executor.run_streaming(batch1, [&](std::size_t i, RunResult&&) {
    delivered.push_back(i);
  });
  EXPECT_EQ(delivered, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(executor.live_workers(), 1u)
      << "the retry pass's respawned worker stays warm";

  auto stats = executor.stats();
  EXPECT_EQ(stats.workers_spawned, 2u);
  EXPECT_EQ(stats.workers_respawned, 1u)
      << "replacing a dead worker is a respawn";
  EXPECT_EQ(stats.jobs_retried, 1u) << "only the orphaned job is re-shipped";
  EXPECT_EQ(stats.jobs_shipped, 4u) << "3 jobs + 1 retry shipment";
  EXPECT_EQ(stats.jobs_poisoned, 0u);
  EXPECT_EQ(stats.summaries_lost, 1u)
      << "the dead worker's batch summary is gone; its totals are not";

  // The respawned worker answered one job; its next result is its second
  // ever, so it dies again — *after* delivering everything.  A
  // post-completion death is absorbed (summaries_lost), not fatal.
  const std::vector<BatchJob> batch2(
      1, shippable_job(pg.ports(), *port_one, "port-one", 0));
  EXPECT_NO_THROW((void)collect(executor, batch2))
      << "a post-completion death must not fail a fully delivered batch";
  stats = executor.stats();
  EXPECT_EQ(stats.summaries_lost, 2u);
  EXPECT_EQ(stats.jobs_retried, 1u) << "nothing was orphaned in batch 2";
}

TEST(WorkerPool, IdleReapRetiresWarmWorkersWithoutCountingRespawns) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  const auto pg = port::with_canonical_ports(graph::cycle(6));
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  const std::vector<BatchJob> jobs(
      2, shippable_job(pg.ports(), *port_one, "port-one", 0));

  WorkerPool pool({bin, "worker"}, 1, std::chrono::milliseconds(1));
  pool.run_batch(jobs, [](std::size_t, RunResult&&) {});
  EXPECT_EQ(pool.live_workers(), 1u);

  // Anything past the 1 ms timeout is idle; the reap is a *clean*
  // retirement, so the next batch's fork is a plain spawn, not a respawn.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pool.reap_idle();
  EXPECT_EQ(pool.live_workers(), 0u);
  auto stats = pool.stats();
  EXPECT_EQ(stats.workers_reaped, 1u);
  EXPECT_EQ(stats.workers_respawned, 0u);

  pool.run_batch(jobs, [](std::size_t, RunResult&&) {});
  stats = pool.stats();
  EXPECT_EQ(stats.workers_spawned, 2u);
  EXPECT_EQ(stats.workers_respawned, 0u)
      << "a reaped slot is empty, not dead — refilling it is not a respawn";
}

TEST(WorkerPool, DrainRetiresEverythingAndThePoolStaysUsable) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  const auto pg = port::with_canonical_ports(graph::cycle(6));
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  const std::vector<BatchJob> jobs(
      3, shippable_job(pg.ports(), *port_one, "port-one", 0));

  const ProcessShardExecutor executor({bin, "worker"}, 2);
  (void)collect(executor, jobs);
  EXPECT_GE(executor.live_workers(), 1u);
  executor.drain();
  EXPECT_EQ(executor.live_workers(), 0u);
  EXPECT_GE(executor.stats().workers_reaped, 1u);
  // Lazy respawn: the drained executor serves the next batch normally.
  (void)collect(executor, jobs);
  EXPECT_GE(executor.live_workers(), 1u);
  // Destructor teardown of the still-warm fleet runs at scope exit —
  // ASan/TSan CI verifies no fd or process leaks behind it.
}

// A long-haul dose of the steady state: many small batches through one
// pool must never respawn a worker, and the shared plan caches must only
// get hotter — cache hits strictly monotone, compilations frozen after
// the first batch.  The per-push run keeps a small dose; nightly CI
// raises EDS_POOL_SOAK_BATCHES to soak the pool for hundreds of batches.
TEST(WorkerPool, SoakManySmallBatchesZeroRespawnsMonotoneHits) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  std::size_t batches = 12;
  if (const char* env = std::getenv("EDS_POOL_SOAK_BATCHES")) {
    batches = static_cast<std::size_t>(std::stoull(env));
  }
  auto rng = test::make_rng(0x50AC);
  const auto a = test::random_ported_regular(10, 3, rng);
  const auto b = port::with_canonical_ports(graph::cycle(7));
  const auto bounded = algo::make_factory(algo::Algorithm::kBoundedDegree, 3);
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  const std::vector<BatchJob> jobs{
      shippable_job(a.ports(), *bounded, "bounded-degree", 3),
      shippable_job(b.ports(), *port_one, "port-one", 0),
  };

  const ProcessShardExecutor executor({bin, "worker"}, 2);
  const auto reference = collect(executor, jobs);
  const auto cold = executor.stats();
  auto previous = cold;
  for (std::size_t batch = 1; batch < batches; ++batch) {
    const auto got = collect(executor, jobs);
    const auto now = executor.stats();
    ASSERT_EQ(now.workers_respawned, 0u)
        << "soak batch " << batch << " respawned a worker";
    ASSERT_EQ(now.workers_spawned, cold.workers_spawned)
        << "soak batch " << batch << " forked";
    ASSERT_EQ(now.plans_compiled, cold.plans_compiled)
        << "soak batch " << batch << " recompiled a plan";
    ASSERT_GT(now.plan_hits, previous.plan_hits)
        << "cache hits must grow every batch";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_TRUE(reference[i] == got[i])
          << "soak batch " << batch << " drifted on job " << i;
    }
    previous = now;
  }
  EXPECT_EQ(previous.batches_run, batches);
  EXPECT_EQ(previous.jobs_shipped, batches * jobs.size());
}

}  // namespace
}  // namespace eds::runtime
