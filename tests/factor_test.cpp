#include <gtest/gtest.h>

#include <map>
#include <set>

#include "factor/bipartite_matching.hpp"
#include "factor/euler.hpp"
#include "factor/two_factor.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "port/covering.hpp"
#include "util/rng.hpp"

namespace eds::factor {
namespace {

using graph::SimpleGraph;

void expect_balanced_orientation(const SimpleGraph& g,
                                 const std::vector<DirectedEdge>& oriented) {
  ASSERT_EQ(oriented.size(), g.num_edges());
  std::vector<std::size_t> out_deg(g.num_nodes(), 0);
  std::vector<std::size_t> in_deg(g.num_nodes(), 0);
  std::set<graph::EdgeId> seen;
  for (const auto& de : oriented) {
    EXPECT_TRUE(seen.insert(de.edge).second);
    const auto& e = g.edge(de.edge);
    EXPECT_TRUE((de.from == e.u && de.to == e.v) ||
                (de.from == e.v && de.to == e.u));
    ++out_deg[de.from];
    ++in_deg[de.to];
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(out_deg[v], in_deg[v]) << "node " << v;
    EXPECT_EQ(out_deg[v], g.degree(v) / 2);
  }
}

TEST(Euler, CircuitOnCycle) {
  const auto g = graph::cycle(7);
  const auto circuit = euler_circuit(g, 0);
  ASSERT_EQ(circuit.size(), 7u);
  EXPECT_EQ(circuit.front().from, 0u);
  EXPECT_EQ(circuit.back().to, 0u);
  for (std::size_t i = 0; i + 1 < circuit.size(); ++i) {
    EXPECT_EQ(circuit[i].to, circuit[i + 1].from);
  }
}

TEST(Euler, CircuitCoversK5) {
  const auto g = graph::complete(5);
  const auto circuit = euler_circuit(g, 2);
  ASSERT_EQ(circuit.size(), 10u);
  std::set<graph::EdgeId> used;
  for (const auto& de : circuit) used.insert(de.edge);
  EXPECT_EQ(used.size(), 10u);
  EXPECT_EQ(circuit.front().from, 2u);
  EXPECT_EQ(circuit.back().to, 2u);
}

TEST(Euler, OddDegreeRejected) {
  EXPECT_THROW((void)euler_circuit(graph::path(3), 0), InvalidArgument);
  EXPECT_THROW((void)euler_orientation(graph::complete(4)), InvalidArgument);
}

TEST(Euler, IsolatedStartRejected) {
  const SimpleGraph g(3);
  EXPECT_THROW((void)euler_circuit(g, 0), InvalidArgument);
}

TEST(Euler, OrientationBalancedOnEvenGraphs) {
  Rng rng(3);
  expect_balanced_orientation(graph::cycle(9),
                              euler_orientation(graph::cycle(9)));
  expect_balanced_orientation(graph::complete(7),
                              euler_orientation(graph::complete(7)));
  expect_balanced_orientation(graph::torus(4, 4),
                              euler_orientation(graph::torus(4, 4)));
  const auto rr = graph::random_regular(18, 6, rng);
  expect_balanced_orientation(rr, euler_orientation(rr));
}

TEST(Euler, OrientationHandlesDisconnectedComponents) {
  const auto g = graph::disjoint_union(graph::cycle(4), graph::cycle(5));
  expect_balanced_orientation(g, euler_orientation(g));
}

TEST(HopcroftKarp, PerfectMatchingInCompleteBipartite) {
  BipartiteGraph b{4, 4, {}};
  for (std::uint32_t l = 0; l < 4; ++l) {
    for (std::uint32_t r = 0; r < 4; ++r) b.edges.push_back({l, r});
  }
  EXPECT_EQ(max_matching_size(b), 4u);
  const auto pm = perfect_matching(b);
  std::set<std::uint32_t> rights;
  for (const auto e : pm) rights.insert(b.edges[e].second);
  EXPECT_EQ(rights.size(), 4u);
}

TEST(HopcroftKarp, MaximumNotPerfect) {
  // A path l0-r0-l1: maximum matching 1.
  BipartiteGraph b{2, 1, {{0, 0}, {1, 0}}};
  EXPECT_EQ(max_matching_size(b), 1u);
  EXPECT_THROW((void)perfect_matching(BipartiteGraph{2, 2, {{0, 0}, {1, 0}}}),
               InvalidStructure);
}

TEST(HopcroftKarp, HandlesParallelEdges) {
  BipartiteGraph b{2, 2, {{0, 0}, {0, 0}, {1, 1}}};
  EXPECT_EQ(max_matching_size(b), 2u);
}

TEST(HopcroftKarp, EndpointRangeChecked) {
  BipartiteGraph b{1, 1, {{0, 1}}};
  EXPECT_THROW((void)hopcroft_karp(b), InvalidArgument);
}

TEST(HopcroftKarp, LargeRandomAgainstRegularBound) {
  Rng rng(5);
  // Regular bipartite graphs always have perfect matchings (König).
  for (const std::size_t d : {2u, 3u, 5u}) {
    const auto g = graph::random_bipartite_regular(20, d, rng);
    BipartiteGraph b{20, 20, {}};
    for (const auto& e : g.edges()) {
      b.edges.push_back({e.u, e.v - 20});
    }
    EXPECT_EQ(max_matching_size(b), 20u);
  }
}

TEST(Decompose, RegularBipartiteSplitsIntoPerfectMatchings) {
  Rng rng(6);
  const auto g = graph::random_bipartite_regular(12, 4, rng);
  BipartiteGraph b{12, 12, {}};
  for (const auto& e : g.edges()) b.edges.push_back({e.u, e.v - 12});
  const auto colours = decompose_regular_bipartite(b);
  ASSERT_EQ(colours.size(), 4u);
  std::set<std::size_t> all;
  for (const auto& colour : colours) {
    ASSERT_EQ(colour.size(), 12u);
    std::set<std::uint32_t> lefts;
    std::set<std::uint32_t> rights;
    for (const auto e : colour) {
      EXPECT_TRUE(all.insert(e).second);  // colours partition the edges
      lefts.insert(b.edges[e].first);
      rights.insert(b.edges[e].second);
    }
    EXPECT_EQ(lefts.size(), 12u);
    EXPECT_EQ(rights.size(), 12u);
  }
  EXPECT_EQ(all.size(), b.edges.size());
}

TEST(Decompose, RejectsIrregular) {
  BipartiteGraph b{2, 2, {{0, 0}, {0, 1}, {1, 0}}};
  EXPECT_THROW((void)decompose_regular_bipartite(b), InvalidArgument);
}

void expect_valid_two_factorisation(const SimpleGraph& g,
                                    const TwoFactorisation& tf) {
  const std::size_t k = g.num_nodes() == 0 ? 0 : g.degree(0) / 2;
  ASSERT_EQ(tf.k(), k);
  std::set<graph::EdgeId> all;
  for (const auto& factor : tf.factors) {
    ASSERT_EQ(factor.out.size(), g.num_nodes());
    std::vector<std::size_t> in_deg(g.num_nodes(), 0);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& de = factor.out[v];
      EXPECT_EQ(de.from, v);
      EXPECT_TRUE(all.insert(de.edge).second);
      ++in_deg[de.to];
      const auto& e = g.edge(de.edge);
      EXPECT_TRUE((de.from == e.u && de.to == e.v) ||
                  (de.from == e.v && de.to == e.u));
    }
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(in_deg[v], 1u);
    }
  }
  EXPECT_EQ(all.size(), g.num_edges());
}

TEST(TwoFactor, Cycle) {
  const auto g = graph::cycle(8);
  expect_valid_two_factorisation(g, two_factorise(g));
}

TEST(TwoFactor, K5) {
  const auto g = graph::complete(5);
  expect_valid_two_factorisation(g, two_factorise(g));
}

TEST(TwoFactor, Torus) {
  const auto g = graph::torus(3, 5);
  expect_valid_two_factorisation(g, two_factorise(g));
}

TEST(TwoFactor, RandomRegularSweep) {
  Rng rng(7);
  for (const std::size_t d : {2u, 4u, 6u, 8u}) {
    for (int trial = 0; trial < 3; ++trial) {
      const auto g = graph::random_regular(d + 7, d, rng);
      expect_valid_two_factorisation(g, two_factorise(g));
    }
  }
}

TEST(TwoFactor, DisconnectedEvenRegular) {
  const auto g = graph::disjoint_union(graph::cycle(4), graph::cycle(6));
  expect_valid_two_factorisation(g, two_factorise(g));
}

TEST(TwoFactor, RejectsOddRegular) {
  EXPECT_THROW((void)two_factorise(graph::petersen()), InvalidArgument);
}

TEST(TwoFactor, RejectsIrregular) {
  EXPECT_THROW((void)two_factorise(graph::grid(3, 3)), InvalidArgument);
}

TEST(TwoFactor, EdgeSetViewMatches) {
  const auto g = graph::complete(5);
  const auto tf = two_factorise(g);
  std::size_t total = 0;
  for (const auto& factor : tf.factors) {
    total += factor.edge_set(g.num_edges()).size();
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(FactorPorts, PairsPortsAsInThePaper) {
  // For each directed edge (u, v) of factor i: p(u, 2i-1) = (v, 2i).
  Rng rng(8);
  const auto g = graph::random_regular(11, 6, rng);
  const auto pg = with_factor_ports(g);
  pg.ports().validate();
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (port::Port i = 1; i <= 6; i += 2) {
      const auto there = pg.ports().partner(v, i);
      EXPECT_EQ(there.port, i + 1) << "odd ports must pair with even ports";
    }
  }
}

TEST(FactorPorts, InducedPortsCoverTheOneNodeMultigraph) {
  // Every even-regular graph with factor ports covers the one-node
  // multigraph with p(x, 2i-1) <-> (x, 2i): the heart of Theorem 1.
  const auto g = graph::torus(3, 4);
  const auto pg = with_factor_ports(g);
  port::PortGraphBuilder mb({4});
  mb.connect({0, 1}, {0, 2});
  mb.connect({0, 3}, {0, 4});
  const auto base = mb.build();
  const std::vector<graph::NodeId> f(g.num_nodes(), 0);
  EXPECT_TRUE(port::is_covering_map(pg.ports(), base, f));
}

}  // namespace
}  // namespace eds::factor
