// Randomised structural fuzzing: arbitrary port-numbered multigraphs
// (random involutions with loops and parallel edges) pushed through the
// runtime and the standalone algorithms.  Checks are structural — validity
// of involutions, internal consistency of outputs, graceful failure — since
// no centralised edge-set semantics exist on multigraphs.
//
// Deterministic by default: streams derive from test_util.hpp's fixed
// master seed.  Set EDS_FUZZ_SEED=<n> in the environment to explore new
// streams (e.g. `EDS_FUZZ_SEED=42 ctest -L fuzz`).
#include <gtest/gtest.h>

#include "algo/double_cover.hpp"
#include "algo/driver.hpp"
#include "algo/port_one.hpp"
#include "port/random_port_graph.hpp"
#include "port/views.hpp"
#include "runtime/outputs.hpp"
#include "runtime/runner.hpp"
#include "util/rng.hpp"
#include "invariants.hpp"
#include "test_util.hpp"

namespace eds {
namespace {

std::vector<port::Port> random_degrees(Rng& rng, std::size_t n,
                                       port::Port max_degree) {
  std::vector<port::Port> degrees(n);
  for (auto& d : degrees) {
    d = static_cast<port::Port>(rng.below(max_degree + 1));
  }
  return degrees;
}

TEST(Fuzz, RandomInvolutionsAlwaysValidate) {
  auto rng = test::make_rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto g = port::random_port_graph(random_degrees(rng, 12, 6), rng);
    EXPECT_NO_THROW(g.validate());
    // port_edges partitions the ports: every port appears exactly once.
    std::size_t accounted = 0;
    for (const auto& pe : g.port_edges()) {
      accounted += pe.directed_loop ? 1 : 2;
    }
    EXPECT_EQ(accounted, g.num_ports());
  }
}

TEST(Fuzz, DoubleCoverOnMultigraphsIsConsistent) {
  // The 2-matching algorithm runs on arbitrary port-numbered multigraphs;
  // outputs must be internally consistent at the port level.
  auto rng = test::make_rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    const auto g = port::random_port_graph(random_degrees(rng, 10, 5), rng);
    const algo::DoubleCoverFactory factory(5);
    const auto result = runtime::run_synchronous(g, factory);
    test::check_eds_invariants(g, result, "trial " + std::to_string(trial));
  }
}

TEST(Fuzz, PortOneOnRegularMultigraphsIsConsistent) {
  auto rng = test::make_rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    const auto degrees = std::vector<port::Port>(8, 4);  // 4-regular
    const auto g = port::random_port_graph(degrees, rng, 0.2);
    const algo::PortOneFactory factory;
    const auto result = runtime::run_synchronous(g, factory);
    test::check_eds_invariants(g, result, "trial " + std::to_string(trial));
    const auto selected = runtime::validated_selection_size(g, result);
    EXPECT_GE(selected, 1u);  // some port 1 always selects something
  }
}

TEST(Fuzz, ViewRefinementTerminatesOnArbitraryMultigraphs) {
  auto rng = test::make_rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const auto g = port::random_port_graph(random_degrees(rng, 14, 5), rng);
    const auto stable = port::stable_view_classes(g);
    EXPECT_EQ(stable.size(), g.num_nodes());
    EXPECT_LE(port::num_classes(stable), g.num_nodes());
    // Refining further cannot split classes.
    EXPECT_EQ(port::num_classes(port::view_classes(g, g.num_nodes() + 3)),
              port::num_classes(stable));
  }
}

TEST(Fuzz, ViewEqualityImpliesOutputEqualityOnMultigraphs) {
  auto rng = test::make_rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = port::random_port_graph(random_degrees(rng, 10, 4), rng);
    const auto stable = port::stable_view_classes(g);
    const algo::DoubleCoverFactory factory(4);
    const auto result = runtime::run_synchronous(g, factory);
    for (std::size_t v = 0; v < g.num_nodes(); ++v) {
      for (std::size_t u = v + 1; u < g.num_nodes(); ++u) {
        if (stable[v] == stable[u]) {
          EXPECT_EQ(result.outputs[v], result.outputs[u]);
        }
      }
    }
  }
}

TEST(Fuzz, DriverOutcomesSatisfyEdsInvariants) {
  // The full shared harness on driver outcomes: feasibility always, the
  // Table 1 bound wherever one applies (small instances get an exact
  // optimum).  Odd-regular instances exercise the regular-row bound,
  // bounded instances the bounded-degree row.
  auto rng = test::make_rng(6);
  for (int trial = 0; trial < 8; ++trial) {
    const auto regular = test::random_ported_regular(8, 3, rng);
    const auto odd = algo::run_algorithm(regular, algo::Algorithm::kOddRegular,
                                         3);
    test::check_eds_invariants(regular, odd, algo::Algorithm::kOddRegular, 3,
                               "odd trial " + std::to_string(trial));

    const auto bounded = test::random_ported_bounded(8, 3, 10, rng);
    for (const auto alg : {algo::Algorithm::kBoundedDegree,
                           algo::Algorithm::kDoubleCover}) {
      const auto outcome = algo::run_algorithm(bounded, alg, 3);
      test::check_eds_invariants(bounded, outcome, alg, 3,
                                 "bounded trial " + std::to_string(trial));
    }
  }
}

TEST(Fuzz, SelectionSizeDetectsInconsistentOutputs) {
  // Hand-craft an inconsistent result to prove the checker bites.
  port::PortGraphBuilder b({1, 1});
  b.connect({0, 1}, {1, 1});
  const auto g = b.build();
  runtime::RunResult result;
  result.outputs = {{1}, {}};  // node 0 claims the edge, node 1 does not
  EXPECT_THROW((void)runtime::validated_selection_size(g, result),
               ExecutionError);
}

TEST(Fuzz, DirectedLoopSelectionIsSelfConsistent) {
  port::PortGraphBuilder b({1});
  b.fix({0, 1});
  const auto g = b.build();
  runtime::RunResult result;
  result.outputs = {{1}};
  EXPECT_EQ(runtime::validated_selection_size(g, result), 1u);
}

}  // namespace
}  // namespace eds
