#include <gtest/gtest.h>

#include "algo/bounded_degree.hpp"
#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "exact/exact_eds.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "test_util.hpp"

namespace eds::algo {
namespace {

using analysis::approximation_ratio;
using analysis::is_edge_dominating_set;
using analysis::paper_bound_bounded;

graph::EdgeSet solve(const port::PortedGraph& pg, port::Port delta) {
  return run_algorithm(pg, Algorithm::kBoundedDegree, delta).solution;
}

/// Fixture parameterised by (max degree, seed).
class BoundedDegreeSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(BoundedDegreeSweep, SolutionIsAlwaysAnEds) {
  const auto [delta, seed] = GetParam();
  Rng rng(seed);
  const auto g = graph::random_bounded_degree(26, delta, 3 * 26, rng);
  if (g.num_edges() == 0) GTEST_SKIP() << "degenerate instance";
  const auto pg = port::with_random_ports(g, rng);
  const auto solution =
      solve(pg, static_cast<port::Port>(std::max<std::size_t>(
                    g.max_degree(), 2)));
  EXPECT_TRUE(is_edge_dominating_set(g, solution));
}

INSTANTIATE_TEST_SUITE_P(
    DeltaAndSeed, BoundedDegreeSweep,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 5u, 6u, 7u),
                       ::testing::Values(1u, 2u, 3u, 4u)));

TEST(BoundedDegree, RatioWithinBoundAgainstExactOptimum) {
  Rng rng(101);
  int tested = 0;
  for (int trial = 0; trial < 30 && tested < 12; ++trial) {
    const auto g = graph::random_bounded_degree(14, 4, 20, rng);
    if (g.num_edges() < 4) continue;
    const auto delta = g.max_degree();
    if (delta < 2) continue;
    ++tested;
    const auto pg = port::with_random_ports(g, rng);
    const auto solution = solve(pg, static_cast<port::Port>(delta));
    const auto optimum = exact::minimum_eds_size(g);
    EXPECT_LE(approximation_ratio(solution.size(), optimum),
              paper_bound_bounded(delta))
        << "trial " << trial << " delta=" << delta;
  }
  EXPECT_GE(tested, 8);
}

TEST(BoundedDegree, WorksOnStructuredFamilies) {
  Rng rng(102);
  const struct {
    graph::SimpleGraph g;
    const char* name;
  } cases[] = {
      {graph::grid(4, 5), "grid"},
      {graph::star(6), "star"},
      {graph::path(11), "path"},
      {graph::complete_bipartite(3, 5), "K35"},
      {graph::petersen(), "petersen"},
      {graph::random_tree(25, rng), "tree"},
  };
  for (const auto& c : cases) {
    const auto delta = static_cast<port::Port>(c.g.max_degree());
    const auto pg = port::with_random_ports(c.g, rng);
    const auto solution = solve(pg, delta);
    EXPECT_TRUE(is_edge_dominating_set(c.g, solution)) << c.name;
  }
}

TEST(BoundedDegree, MixedParityDegreesAreFine) {
  // Graphs mixing odd- and even-degree nodes exercise the "no DN" path.
  Rng rng(103);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = graph::random_bounded_degree(30, 5, 55, rng);
    if (g.num_edges() == 0) continue;
    const auto pg = port::with_random_ports(g, rng);
    const auto solution = solve(
        pg, static_cast<port::Port>(std::max<std::size_t>(g.max_degree(), 2)));
    EXPECT_TRUE(is_edge_dominating_set(g, solution));
  }
}

TEST(BoundedDegree, EvenDeltaUsesOddSchedule) {
  EXPECT_EQ(BoundedDegreeProgram::normalised_delta(4), 5u);
  EXPECT_EQ(BoundedDegreeProgram::normalised_delta(5), 5u);
  EXPECT_EQ(BoundedDegreeProgram::schedule_length(4),
            BoundedDegreeProgram::schedule_length(5));
}

TEST(BoundedDegree, AEvenEqualsAOddExactly) {
  // The paper *defines* A(2k) = A(2k+1); the two parameters must therefore
  // produce bit-identical executions on any max-degree-2k graph.
  Rng rng(999);
  for (int trial = 0; trial < 6; ++trial) {
    const auto g = graph::random_bounded_degree(22, 4, 38, rng);
    if (g.num_edges() == 0) continue;
    const auto pg = port::with_random_ports(g, rng);
    const auto even = run_algorithm(pg, Algorithm::kBoundedDegree, 4);
    const auto odd = run_algorithm(pg, Algorithm::kBoundedDegree, 5);
    EXPECT_EQ(even.solution, odd.solution);
    EXPECT_EQ(even.stats.rounds, odd.stats.rounds);
    EXPECT_EQ(even.stats.messages_sent, odd.stats.messages_sent);
  }
}

TEST(BoundedDegree, ScheduleLengthIsQuadratic) {
  // 3 + 3∆'² for the normalised (odd) ∆'.
  EXPECT_EQ(BoundedDegreeProgram::schedule_length(3), 30u);
  EXPECT_EQ(BoundedDegreeProgram::schedule_length(5), 78u);
  EXPECT_EQ(BoundedDegreeProgram::schedule_length(7), 150u);
}

TEST(BoundedDegree, RoundsIndependentOfN) {
  Rng rng(104);
  runtime::Round rounds[2] = {0, 0};
  int idx = 0;
  for (const std::size_t n : {16u, 64u}) {
    const auto g = graph::grid(4, n / 4);
    const auto pg = port::with_random_ports(g, rng);
    rounds[idx++] =
        run_algorithm(pg, Algorithm::kBoundedDegree, 4).stats.rounds;
  }
  EXPECT_EQ(rounds[0], rounds[1]);
}

TEST(BoundedDegree, RejectsOverDegreeNodes) {
  Rng rng(105);
  const auto g = graph::star(6);  // max degree 6
  const auto pg = port::with_random_ports(g, rng);
  EXPECT_THROW((void)run_algorithm(pg, Algorithm::kBoundedDegree, 3),
               ExecutionError);
}

TEST(BoundedDegree, DeltaOneRoutesToAllEdges) {
  const auto factory = make_factory(Algorithm::kBoundedDegree, 1);
  EXPECT_EQ(factory->name(), "all-edges");
}

TEST(BoundedDegree, ConstructorRejectsDeltaBelowTwo) {
  EXPECT_THROW(BoundedDegreeProgram{1}, InvalidArgument);
}

TEST(BoundedDegree, RegularGraphsAreAValidSpecialCase) {
  // Theorem 5 applies to regular graphs too (though Theorems 3/4 are
  // better); ratio must respect the *bounded-degree* bound.
  Rng rng(106);
  for (const port::Port d : {3u, 4u}) {
    const auto pg = test::random_ported_regular(10, d, rng);
    const auto& g = pg.graph();
    const auto solution = solve(pg, d);
    EXPECT_TRUE(is_edge_dominating_set(g, solution));
    const auto optimum = exact::minimum_eds_size(g);
    EXPECT_LE(approximation_ratio(solution.size(), optimum),
              paper_bound_bounded(d));
  }
}

TEST(BoundedDegree, PropertiesOfSection73) {
  // (a) M is a matching, P a 2-matching, node-disjoint from M;
  // (c) P edges join equal-degree nodes.  We recover M and P from the
  // solution: M edges have an endpoint of solution-degree 1 touching no
  // other solution edge... instead, verify the implied global facts:
  // the solution is a 3-matching at most (M: <=1 per node, P: <=2 per node,
  // and M/P node-disjoint means <=2 overall).
  Rng rng(107);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = graph::random_bounded_degree(24, 5, 45, rng);
    if (g.num_edges() == 0) continue;
    const auto pg = port::with_random_ports(g, rng);
    const auto solution = solve(
        pg, static_cast<port::Port>(std::max<std::size_t>(g.max_degree(), 2)));
    EXPECT_TRUE(analysis::is_k_matching(g, solution, 2))
        << "M ∪ P must be a 2-matching (M and P are node-disjoint)";
  }
}

TEST(BoundedDegree, LargeSparseInstance) {
  Rng rng(108);
  const auto pg = test::random_ported_bounded(400, 6, 900, rng);
  const auto& g = pg.graph();
  const auto solution = solve(
      pg, static_cast<port::Port>(std::max<std::size_t>(g.max_degree(), 2)));
  EXPECT_TRUE(is_edge_dominating_set(g, solution));
}

}  // namespace
}  // namespace eds::algo
