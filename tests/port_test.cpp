#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "port/covering.hpp"
#include "port/labels.hpp"
#include "port/port_graph.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "test_util.hpp"

namespace eds::port {
namespace {

using graph::EdgeId;
using graph::SimpleGraph;

// Figure 2 of the paper; shared with other suites via test_util.hpp.
using test::figure2_graph_h;
using test::figure2_multigraph_m;

TEST(PortGraphBuilder, Figure2MultigraphStructure) {
  const auto m = figure2_multigraph_m();
  EXPECT_EQ(m.num_nodes(), 2u);
  EXPECT_EQ(m.num_ports(), 7u);
  EXPECT_EQ(m.partner(0, 1), (PortRef{1, 2}));
  EXPECT_EQ(m.partner(1, 2), (PortRef{0, 1}));
  EXPECT_EQ(m.partner(0, 3), (PortRef{0, 3}));  // directed loop
  EXPECT_EQ(m.partner(1, 3), (PortRef{1, 4}));  // undirected loop

  const auto edges = m.port_edges();
  EXPECT_EQ(edges.size(), 4u);
  std::size_t loops = 0;
  std::size_t directed = 0;
  for (const auto& e : edges) {
    if (e.is_loop()) ++loops;
    if (e.directed_loop) ++directed;
  }
  EXPECT_EQ(loops, 2u);
  EXPECT_EQ(directed, 1u);
  EXPECT_FALSE(m.is_simple());
}

TEST(PortGraphBuilder, RejectsDoubleAssignment) {
  PortGraphBuilder b({2, 2});
  b.connect({0, 1}, {1, 1});
  EXPECT_THROW(b.connect({0, 1}, {1, 2}), InvalidStructure);
}

TEST(PortGraphBuilder, RejectsSelfConnect) {
  PortGraphBuilder b({2});
  EXPECT_THROW(b.connect({0, 1}, {0, 1}), InvalidArgument);
}

TEST(PortGraphBuilder, RejectsIncompleteBuild) {
  PortGraphBuilder b({2, 2});
  b.connect({0, 1}, {1, 1});
  EXPECT_THROW((void)b.build(), InvalidStructure);
}

TEST(PortGraphBuilder, RejectsOutOfRangePort) {
  PortGraphBuilder b({2});
  EXPECT_THROW(b.fix({0, 3}), InvalidArgument);
  EXPECT_THROW(b.fix({1, 1}), InvalidArgument);
}

TEST(PortedGraph, CanonicalPortsAreValid) {
  const auto pg = with_canonical_ports(graph::cycle(5));
  pg.ports().validate();
  EXPECT_TRUE(pg.ports().is_simple());
  EXPECT_EQ(pg.ports().num_ports(), 10u);
}

TEST(PortedGraph, RandomPortsAreValidPermutation) {
  Rng rng(1);
  const auto g = graph::complete(6);
  const auto pg = with_random_ports(g, rng);
  pg.ports().validate();
  for (graph::NodeId v = 0; v < 6; ++v) {
    std::vector<bool> seen(g.num_edges(), false);
    for (Port i = 1; i <= 5; ++i) {
      const auto e = pg.edge_at(v, i);
      EXPECT_FALSE(seen[e]);
      seen[e] = true;
    }
  }
}

TEST(PortedGraph, PortEdgeRoundTrip) {
  Rng rng(2);
  const auto pg = test::random_ported_regular(12, 3, rng);
  const auto& g = pg.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    EXPECT_EQ(pg.edge_at(edge.u, pg.port_of(edge.u, e)), e);
    EXPECT_EQ(pg.edge_at(edge.v, pg.port_of(edge.v, e)), e);
  }
}

TEST(PortedGraph, PortTowards) {
  const auto pg = figure2_graph_h();
  EXPECT_EQ(pg.port_towards(0, 2), 1u);  // a's port 1 points to c
  EXPECT_EQ(pg.port_towards(2, 0), 2u);  // c's port 2 points to a
  EXPECT_THROW((void)pg.port_towards(0, 3), InvalidArgument);  // no edge a-d
}

TEST(PortedGraph, RejectsNonPermutationOrder) {
  auto g = SimpleGraph::from_edges(3, {{0, 1}, {1, 2}});
  const std::vector<std::vector<EdgeId>> bad{{0}, {0, 0}, {1}};
  EXPECT_THROW((void)PortedGraph(std::move(g), bad), InvalidStructure);
}

TEST(PortedGraph, InvolutionMatchesPorts) {
  const auto pg = figure2_graph_h();
  // a: port1->c (c receives on its port 2).
  EXPECT_EQ(pg.ports().partner(0, 1), (PortRef{2, 2}));
  // b: port3->d (d receives on its port 2).
  EXPECT_EQ(pg.ports().partner(1, 3), (PortRef{3, 2}));
}

TEST(Labels, Figure2LabelPairs) {
  const auto pg = figure2_graph_h();
  const auto& g = pg.graph();
  // Edge cd carries label pair {1,1}; edge ab carries {1,2}.
  EXPECT_EQ(label_pair(pg, *g.find_edge(2, 3)), (LabelPair{1, 1}));
  EXPECT_EQ(label_pair(pg, *g.find_edge(0, 1)), (LabelPair{1, 2}));
}

TEST(Labels, Figure2DistinguishableNeighbours) {
  const auto pg = figure2_graph_h();
  // The paper's stated facts: a is the DN of b, d is the DN of c, and a has
  // no uniquely labelled edge (hence no DN).
  EXPECT_EQ(distinguishable_neighbour(pg, 1), graph::NodeId{0});
  EXPECT_EQ(distinguishable_neighbour(pg, 2), graph::NodeId{3});
  EXPECT_EQ(distinguishable_neighbour(pg, 0), std::nullopt);
  EXPECT_TRUE(uniquely_labelled_edges(pg, 0).empty());
}

TEST(Labels, Figure2MatchingsM) {
  const auto pg = figure2_graph_h();
  const auto& g = pg.graph();
  const auto m12 = matching_m(pg, 1, 2);
  EXPECT_EQ(m12.size(), 1u);
  EXPECT_TRUE(m12.contains(*g.find_edge(0, 1)));
  const auto m11 = matching_m(pg, 1, 1);
  EXPECT_EQ(m11.size(), 1u);
  EXPECT_TRUE(m11.contains(*g.find_edge(2, 3)));
}

TEST(Labels, Lemma1OddDegreeAlwaysHasDn) {
  // Property test over random odd-regular graphs and random numberings.
  Rng rng(7);
  for (const std::size_t d : {3u, 5u, 7u}) {
    for (int trial = 0; trial < 5; ++trial) {
      const auto pg =
          test::random_ported_regular(2 * d + 2, d, rng);
      for (graph::NodeId v = 0; v < pg.graph().num_nodes(); ++v) {
        EXPECT_TRUE(distinguishable_neighbour(pg, v).has_value())
            << "d=" << d << " v=" << v;
      }
    }
  }
}

TEST(Labels, Lemma1HoldsForOddDegreeNodesInIrregularGraphs) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pg = with_random_ports(
        graph::random_bounded_degree(30, 5, 50, rng), rng);
    for (graph::NodeId v = 0; v < pg.graph().num_nodes(); ++v) {
      if (pg.graph().degree(v) % 2 == 1) {
        EXPECT_TRUE(distinguishable_neighbour(pg, v).has_value());
      }
    }
  }
}

TEST(Labels, Lemma2EveryMijIsAMatching) {
  Rng rng(9);
  for (int trial = 0; trial < 6; ++trial) {
    const auto g = graph::random_regular(14, 4, rng);
    const auto pg = with_random_ports(g, rng);
    const auto d = static_cast<Port>(pg.graph().max_degree());
    for (Port i = 1; i <= d; ++i) {
      for (Port j = 1; j <= d; ++j) {
        const auto m = matching_m(pg, i, j);
        // Verify no two member edges share an endpoint.
        std::vector<int> deg(pg.graph().num_nodes(), 0);
        for (const auto e : m.to_vector()) {
          EXPECT_LE(++deg[pg.graph().edge(e).u], 1);
          EXPECT_LE(++deg[pg.graph().edge(e).v], 1);
        }
      }
    }
  }
}

TEST(Labels, UnionOfMijCoversOddDegreeNodes) {
  // Lemmas 1+2 together: the union of all M(i,j) covers each odd-degree node.
  Rng rng(10);
  const auto g = graph::random_regular(12, 5, rng);
  const auto pg = with_random_ports(g, rng);
  std::vector<bool> covered(g.num_nodes(), false);
  for (Port i = 1; i <= 5; ++i) {
    for (Port j = 1; j <= 5; ++j) {
      for (const auto e : matching_m(pg, i, j).to_vector()) {
        covered[g.edge(e).u] = true;
        covered[g.edge(e).v] = true;
      }
    }
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(covered[v]) << "node " << v;
  }
}

/// Oriented C_6 covering the single-node multigraph with p(x,1) <-> (x,2).
TEST(Covering, CycleCoversBouquet) {
  const std::size_t n = 6;
  auto g = graph::cycle(n);
  std::vector<std::vector<EdgeId>> order(n, std::vector<EdgeId>(2));
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto fwd = *g.find_edge(v, static_cast<graph::NodeId>((v + 1) % n));
    const auto bwd =
        *g.find_edge(v, static_cast<graph::NodeId>((v + n - 1) % n));
    order[v] = {fwd, bwd};
  }
  const PortedGraph pg(std::move(g), order);

  PortGraphBuilder mb({2});
  mb.connect({0, 1}, {0, 2});
  const auto base = mb.build();

  const std::vector<graph::NodeId> f(n, 0);
  EXPECT_TRUE(is_covering_map(pg.ports(), base, f));
}

TEST(Covering, DetectsNonSurjective) {
  PortGraphBuilder b1({1, 1});
  b1.connect({0, 1}, {1, 1});
  const auto cover = b1.build();
  PortGraphBuilder b2({1, 1});
  b2.connect({0, 1}, {1, 1});
  const auto base = b2.build();
  const auto check = check_covering_map(cover, base, {0, 0});
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.reason.find("surjective"), std::string::npos);
}

TEST(Covering, DetectsDegreeMismatch) {
  PortGraphBuilder b1({1, 1});
  b1.connect({0, 1}, {1, 1});
  const auto cover = b1.build();
  PortGraphBuilder b2({2});
  b2.connect({0, 1}, {0, 2});
  const auto base = b2.build();
  const auto check = check_covering_map(cover, base, {0, 0});
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.reason.find("degree"), std::string::npos);
}

TEST(Covering, DetectsConnectionMismatch) {
  // C_4 with ports 1/2 towards fixed directions vs a base expecting 1<->1.
  const std::size_t n = 4;
  auto g = graph::cycle(n);
  std::vector<std::vector<EdgeId>> order(n, std::vector<EdgeId>(2));
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto fwd = *g.find_edge(v, static_cast<graph::NodeId>((v + 1) % n));
    const auto bwd =
        *g.find_edge(v, static_cast<graph::NodeId>((v + n - 1) % n));
    order[v] = {fwd, bwd};
  }
  const PortedGraph pg(std::move(g), order);

  PortGraphBuilder mb({2});
  mb.connect({0, 1}, {0, 2});
  const auto base_ok = mb.build();
  EXPECT_TRUE(is_covering_map(pg.ports(), base_ok, {0, 0, 0, 0}));

  PortGraphBuilder mb2({2});
  mb2.fix({0, 1});
  mb2.fix({0, 2});
  const auto base_bad = mb2.build();
  const auto check = check_covering_map(pg.ports(), base_bad, {0, 0, 0, 0});
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.reason.find("connections"), std::string::npos);
}

TEST(Covering, IdentityIsACoveringMap) {
  const auto pg = figure2_graph_h();
  std::vector<graph::NodeId> id{0, 1, 2, 3};
  EXPECT_TRUE(is_covering_map(pg.ports(), pg.ports(), id));
}

TEST(PortGraph, SummaryMentionsLoops) {
  const auto m = figure2_multigraph_m();
  EXPECT_NE(m.summary().find("loops=2"), std::string::npos);
}

TEST(PortGraph, DegreeOutOfRangeThrows) {
  const auto m = figure2_multigraph_m();
  EXPECT_THROW((void)m.degree(5), InvalidArgument);
  EXPECT_THROW((void)m.partner(0, 9), InvalidArgument);
}

}  // namespace
}  // namespace eds::port
