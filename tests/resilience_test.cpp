// The resilience layer of the sharded backend: bounded job retries after
// a worker death, job/batch deadlines that kill hung workers, poison-job
// quarantine with per-attempt diagnostics, the crash-loop breaker with
// its optional in-process fallback, and the deterministic chaos harness
// (`edsim worker --chaos SPEC` / EDS_WORKER_CHAOS) that drives them all.
//
// The anchor throughout: however the chaos harness abuses the workers,
// every job that completes must complete bit-identically to an
// in-process run — retries route through the same reorder buffer, so a
// re-shipped job is indistinguishable from a first-try one.
//
// Tests that fork real worker subprocesses resolve the edsim binary from
// the EDSIM_BIN_PATH compile definition (set by tests/CMakeLists.txt)
// with an EDSIM_BIN environment override, and skip when neither points
// at an executable.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "algo/driver.hpp"
#include "graph/generators.hpp"
#include "port/io.hpp"
#include "port/ported_graph.hpp"
#include "runtime/batch.hpp"
#include "runtime/executor.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/shard.hpp"
#include "util/error.hpp"
#include "test_util.hpp"

namespace eds::runtime {
namespace {

#define REQUIRE_EDSIM_OR_SKIP(var)                                        \
  const std::string var = test::edsim_binary();                           \
  if (var.empty()) GTEST_SKIP() << "edsim binary not found (set EDSIM_BIN)"

/// A job any backend can run: factory for in-process execution, JobSpec
/// for process shards.  The factory must outlive the returned job.
BatchJob shippable_job(const port::PortGraph& g, const ProgramFactory& factory,
                       const std::string& token, Port param,
                       Round max_rounds = 100000) {
  BatchJob job;
  job.graph = &g;
  job.factory = &factory;
  job.options.max_rounds = max_rounds;
  JobSpec spec;
  spec.algorithm = token;
  spec.param = param;
  spec.group = structural_hash(g);
  job.spec = spec;
  return job;
}

std::vector<RunResult> collect(const Executor& executor,
                               const std::vector<BatchJob>& jobs) {
  std::vector<RunResult> got(jobs.size());
  std::size_t next = 0;
  executor.run_streaming(jobs, [&](std::size_t i, RunResult&& result) {
    EXPECT_EQ(i, next++) << "delivery must be in job order";
    got[i] = std::move(result);
  });
  EXPECT_EQ(next, jobs.size());
  return got;
}

/// Runs a batch expected to end in an ExecutionError, recording which job
/// indices were delivered before the failure stopped the prefix.
struct FailedRun {
  std::vector<std::size_t> delivered;
  std::string what;
};
FailedRun collect_failure(const Executor& executor,
                          const std::vector<BatchJob>& jobs) {
  FailedRun run;
  try {
    executor.run_streaming(jobs, [&](std::size_t i, RunResult&&) {
      run.delivered.push_back(i);
    });
    ADD_FAILURE() << "batch was expected to fail";
  } catch (const ExecutionError& e) {
    run.what = e.what();
  }
  return run;
}

/// Scoped setenv/unsetenv, so an env-route test can't leak chaos into the
/// suites that run after it.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

// ---------------------------------------------------------------------------
// Wire diagnostics: a decode error names the line, not just the parse.

TEST(WireDiagnostics, DescribeWireLineQuotesAndTruncates) {
  EXPECT_EQ(detail::describe_wire_line(7, "{\"bad\":"),
            "line 7 (\"{\\\"bad\\\":\")");
  // Long lines are cut at 80 characters so a megabyte of garbage from a
  // corrupted worker cannot balloon the error message.
  const std::string long_line(200, 'x');
  const auto described = detail::describe_wire_line(1, long_line);
  EXPECT_LT(described.size(), 120u);
  EXPECT_NE(described.find("…"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The chaos codec: a pure, deterministic spec → action function.

TEST(ChaosSpec, ParseAndFormatRoundTrip) {
  for (const char* text : {"crash:2", "hang:1:50", "garbage:3", "slow:2:5",
                           "exit-mid:1", "poison:4", "rand:123:60"}) {
    EXPECT_EQ(format_chaos_spec(parse_chaos_spec(text)), text);
  }
  EXPECT_EQ(parse_chaos_spec("").mode, ChaosSpec::Mode::kNone);
  EXPECT_EQ(format_chaos_spec(ChaosSpec{}), "");
}

TEST(ChaosSpec, ParseRejectsMalformedSpecs) {
  for (const char* bad : {
           "frobnicate:1",   // unknown mode
           "crash",          // missing field
           "crash:1:2",      // extra field
           "crash:0",        // ordinal modes are 1-based
           "crash:x",        // not a number
           "hang:1",         // hang needs a duration
           "rand:1:1001",    // permille > 1000
           "rand:1",         // rand needs both fields
       }) {
    EXPECT_THROW((void)parse_chaos_spec(bad), InvalidArgument) << bad;
  }
}

TEST(ChaosSpec, ActionsAreDeterministicFunctionsOfOrdinalAndIndex) {
  // crash:N fires on every ordinal >= N — the worker that replaces a
  // crashed one starts a fresh count, which is exactly the --fail-after
  // contract the flag aliases.
  const auto crash = parse_chaos_spec("crash:3");
  EXPECT_EQ(chaos_action(crash, 2, 0).mode, ChaosSpec::Mode::kNone);
  EXPECT_EQ(chaos_action(crash, 3, 0).mode, ChaosSpec::Mode::kCrash);
  EXPECT_EQ(chaos_action(crash, 4, 0).mode, ChaosSpec::Mode::kCrash);

  // One-shot ordinal modes fire exactly once per worker lifetime.
  const auto hang = parse_chaos_spec("hang:2:75");
  EXPECT_EQ(chaos_action(hang, 1, 0).mode, ChaosSpec::Mode::kNone);
  EXPECT_EQ(chaos_action(hang, 2, 0).mode, ChaosSpec::Mode::kHang);
  EXPECT_EQ(chaos_action(hang, 2, 0).ms, 75u);
  EXPECT_EQ(chaos_action(hang, 3, 0).mode, ChaosSpec::Mode::kNone);

  // poison keys on the *wire index*, not the ordinal: the job itself is
  // bad, so it fails on every worker it is retried to.
  const auto poison = parse_chaos_spec("poison:5");
  EXPECT_EQ(chaos_action(poison, 1, 5).mode, ChaosSpec::Mode::kPoison);
  EXPECT_EQ(chaos_action(poison, 9, 5).mode, ChaosSpec::Mode::kPoison);
  EXPECT_EQ(chaos_action(poison, 5, 4).mode, ChaosSpec::Mode::kNone);

  // rand is a pure function of (seed, ordinal): same inputs, same action;
  // permille 0 never fires, permille 1000 always does.
  const auto rand = parse_chaos_spec("rand:99:500");
  for (std::uint64_t o = 1; o <= 32; ++o) {
    EXPECT_EQ(chaos_action(rand, o, 0).mode, chaos_action(rand, o, 7).mode)
        << "wire index must not perturb rand draws";
  }
  const auto never = parse_chaos_spec("rand:99:0");
  const auto always = parse_chaos_spec("rand:99:1000");
  for (std::uint64_t o = 1; o <= 32; ++o) {
    EXPECT_EQ(chaos_action(never, o, 0).mode, ChaosSpec::Mode::kNone);
    EXPECT_NE(chaos_action(always, o, 0).mode, ChaosSpec::Mode::kNone);
  }
}

// ---------------------------------------------------------------------------
// Retry bit-identity: a chaos-ridden batch must match in-process exactly.

class ChaosRetry : public ::testing::TestWithParam<const char*> {};

TEST_P(ChaosRetry, BatchSurvivesChaosBitIdenticallyPooledAndUnpooled) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  auto rng = test::make_rng(0xC4A0);
  const auto a = test::random_ported_regular(12, 3, rng);
  const auto b = port::with_canonical_ports(graph::cycle(9));
  const auto bounded = algo::make_factory(algo::Algorithm::kBoundedDegree, 3);
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  const std::vector<BatchJob> jobs{
      shippable_job(a.ports(), *bounded, "bounded-degree", 3),
      shippable_job(b.ports(), *port_one, "port-one", 0),
      shippable_job(a.ports(), *bounded, "bounded-degree", 3),
      shippable_job(b.ports(), *port_one, "port-one", 0),
  };
  const auto expected = InProcessExecutor(1).run(jobs);

  for (const bool pooled : {true, false}) {
    ProcessShardExecutor::Options options;
    options.pooled = pooled;
    options.retry_backoff_ms = 1;
    const ProcessShardExecutor executor(
        {bin, "worker", "--chaos", GetParam()}, 1, options);
    const auto got = collect(executor, jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_TRUE(got[i] == expected[i])
          << "job " << i << " differs under --chaos " << GetParam()
          << " pooled=" << pooled;
    }
    const auto stats = executor.stats();
    EXPECT_EQ(stats.jobs_poisoned, 0u);
    EXPECT_EQ(stats.batch_timeouts, 0u);
    EXPECT_EQ(stats.pool_quarantines, 0u);
  }
}

// slow:2:10 is pure latency (no deaths, no retries); the others each kill
// a worker mid-batch in a different way — after answering (crash), by
// corrupting an answer (garbage) and by truncating one mid-line
// (exit-mid) — and all must come out bit-identical through the retry
// path.
INSTANTIATE_TEST_SUITE_P(Modes, ChaosRetry,
                         ::testing::Values("crash:2", "garbage:2",
                                           "exit-mid:2", "slow:2:10"));

TEST(Resilience, RetryCountersAreExact) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  const auto pg = port::with_canonical_ports(graph::cycle(8));
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  const std::vector<BatchJob> jobs(
      4, shippable_job(pg.ports(), *port_one, "port-one", 0));

  // garbage:2 corrupts every worker's second answer, so with one shard
  // the batch needs three passes: {0,1,2,3} loses job 1, {1,2,3} loses
  // job 2, {2,3} loses job 3, {3} completes.  Each pass charges exactly
  // the in-flight job and re-queues its unstarted siblings uncharged.
  ProcessShardExecutor::Options options;
  options.retry_backoff_ms = 1;
  const ProcessShardExecutor executor({bin, "worker", "--chaos", "garbage:2"},
                                      1, options);
  (void)collect(executor, jobs);
  const auto stats = executor.stats();
  EXPECT_EQ(stats.workers_respawned, 3u);
  EXPECT_EQ(stats.jobs_retried, 6u) << "3 + 2 + 1 re-shipments";
  EXPECT_EQ(stats.jobs_shipped, 10u) << "4 + 3 + 2 + 1 shipments";
  EXPECT_EQ(stats.jobs_poisoned, 0u) << "no job was charged twice";
  EXPECT_EQ(stats.summaries_lost, 3u);
}

// ---------------------------------------------------------------------------
// Deadlines: hung workers die; stuck batches fail instead of stalling.

TEST(Resilience, JobDeadlineKillsAHungWorkerAndTheBatchStillSucceeds) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  const auto pg = port::with_canonical_ports(graph::cycle(8));
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  const std::vector<BatchJob> jobs(
      3, shippable_job(pg.ports(), *port_one, "port-one", 0));

  // Every worker hangs 60 s on its second job; the job deadline turns
  // that into a SIGKILL + retry long before.  The hang recurs once on the
  // respawned worker (its second job is the batch's third), so the batch
  // costs two deadline kills — and still delivers everything.
  ProcessShardExecutor::Options options;
  options.retry_backoff_ms = 1;
  options.job_timeout_ms = 250;
  const ProcessShardExecutor executor(
      {bin, "worker", "--chaos", "hang:2:60000"}, 1, options);
  (void)collect(executor, jobs);
  const auto stats = executor.stats();
  EXPECT_EQ(stats.deadline_kills, 2u);
  EXPECT_EQ(stats.workers_respawned, 2u);
  EXPECT_EQ(stats.jobs_retried, 3u) << "{1,2} after the first kill, {2} after "
                                       "the second";
  EXPECT_EQ(stats.jobs_poisoned, 0u);
  EXPECT_EQ(stats.batch_timeouts, 0u);
}

TEST(Resilience, BatchDeadlineFailsTheBatchCleanly) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  const auto pg = port::with_canonical_ports(graph::cycle(8));
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  const std::vector<BatchJob> jobs(
      2, shippable_job(pg.ports(), *port_one, "port-one", 0));

  // No job deadline: only the batch-level bound stands between a worker
  // hanging on its first job and the sweep hanging forever.
  ProcessShardExecutor::Options options;
  options.retry_backoff_ms = 1;
  options.batch_timeout_ms = 300;
  const ProcessShardExecutor executor(
      {bin, "worker", "--chaos", "hang:1:60000"}, 1, options);
  const auto failed = collect_failure(executor, jobs);
  EXPECT_TRUE(failed.delivered.empty());
  EXPECT_NE(failed.what.find("batch deadline of 300 ms exceeded"),
            std::string::npos)
      << failed.what;
  EXPECT_EQ(executor.stats().batch_timeouts, 1u);

  // The deadline is per batch, not a latched failure: a healthy batch
  // afterwards runs normally on a respawned fleet.
  const ProcessShardExecutor healthy({bin, "worker"}, 1, options);
  EXPECT_NO_THROW((void)collect(healthy, jobs));
}

// ---------------------------------------------------------------------------
// Poison-job quarantine: a bad job fails alone, with its case history.

TEST(Resilience, PoisonJobFailsAloneWithPerAttemptDiagnostics) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  const auto pg = port::with_canonical_ports(graph::cycle(8));
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  const std::vector<BatchJob> jobs(
      4, shippable_job(pg.ports(), *port_one, "port-one", 0));

  // poison:2 kills any worker handed wire index 2, before it answers —
  // the job is bad everywhere, so retrying it cannot help.  Its attempt
  // budget (1 try + 2 retries) runs out and it fails alone; the jobs
  // before it were delivered, and no sibling was charged an attempt.
  ProcessShardExecutor::Options options;
  options.retry_backoff_ms = 1;
  const ProcessShardExecutor executor({bin, "worker", "--chaos", "poison:2"},
                                      1, options);
  const auto failed = collect_failure(executor, jobs);
  EXPECT_EQ(failed.delivered, (std::vector<std::size_t>{0, 1}));
  EXPECT_NE(failed.what.find("job 2 poisoned after 3 attempts"),
            std::string::npos)
      << failed.what;
  // The diagnostic carries one clause per attempt, each with the exit
  // status the chaos harness pins (13).
  EXPECT_NE(failed.what.find("attempt 1:"), std::string::npos) << failed.what;
  EXPECT_NE(failed.what.find("attempt 3:"), std::string::npos) << failed.what;
  EXPECT_NE(failed.what.find("exited with status 13"), std::string::npos)
      << failed.what;

  const auto stats = executor.stats();
  EXPECT_EQ(stats.jobs_poisoned, 1u);
  EXPECT_EQ(stats.workers_respawned, 3u) << "one death per attempt";
  EXPECT_EQ(stats.pool_quarantines, 0u)
      << "three deaths stay under the default breaker";
}

// ---------------------------------------------------------------------------
// The crash-loop breaker and the in-process fallback.

TEST(Resilience, BreakerQuarantinesACrashLoopingPool) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  const auto pg = port::with_canonical_ports(graph::cycle(8));
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  const std::vector<BatchJob> jobs(
      4, shippable_job(pg.ports(), *port_one, "port-one", 0));

  // crash:1 kills every worker after its first answer: one death per
  // pass.  With the breaker at 1 the second death trips it; the jobs
  // already answered were delivered and the rest fail with the
  // quarantine diagnostic instead of burning through retries.
  ProcessShardExecutor::Options options;
  options.retry_backoff_ms = 1;
  options.max_retries = 10;
  options.breaker_deaths = 1;
  const ProcessShardExecutor executor({bin, "worker", "--chaos", "crash:1"},
                                      1, options);
  const auto failed = collect_failure(executor, jobs);
  EXPECT_EQ(failed.delivered, (std::vector<std::size_t>{0, 1}));
  EXPECT_NE(failed.what.find("pool quarantined (2 worker deaths in one "
                             "batch)"),
            std::string::npos)
      << failed.what;
  EXPECT_TRUE(executor.quarantined());
  EXPECT_EQ(executor.live_workers(), 0u) << "quarantine retires the fleet";
  EXPECT_EQ(executor.stats().pool_quarantines, 1u);

  // Quarantine is sticky: the next batch fails fast, no forks.
  const auto refused = collect_failure(executor, jobs);
  EXPECT_TRUE(refused.delivered.empty());
  EXPECT_NE(refused.what.find("pool quarantined"), std::string::npos);
  EXPECT_EQ(executor.stats().workers_spawned, 2u)
      << "a quarantined pool must not fork";

  // drain() is the reset lever.  (The same chaos still crash-loops, so
  // prove the reset with counters, not a successful batch.)
  executor.drain();
  EXPECT_FALSE(executor.quarantined());
}

TEST(Resilience, FallbackInprocessDegradesGracefullyAndBitIdentically) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  auto rng = test::make_rng(0xFA11);
  const auto a = test::random_ported_regular(12, 3, rng);
  const auto bounded = algo::make_factory(algo::Algorithm::kBoundedDegree, 3);
  const std::vector<BatchJob> jobs(
      4, shippable_job(a.ports(), *bounded, "bounded-degree", 3));
  const auto expected = InProcessExecutor(1).run(jobs);

  ProcessShardExecutor::Options options;
  options.retry_backoff_ms = 1;
  options.max_retries = 10;
  options.breaker_deaths = 1;
  options.fallback_inprocess = true;
  const ProcessShardExecutor executor({bin, "worker", "--chaos", "crash:1"},
                                      1, options);
  // The breaker trips mid-batch, but with the fallback the batch still
  // completes — jobs 0..1 from workers, 2..3 in-process, byte for byte
  // what a healthy run produces.
  const auto got = collect(executor, jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_TRUE(got[i] == expected[i]) << "job " << i << " differs";
  }
  auto stats = executor.stats();
  EXPECT_EQ(stats.pool_quarantines, 1u);
  EXPECT_EQ(stats.fallback_jobs, 2u);
  EXPECT_TRUE(executor.quarantined());

  // While quarantined, whole batches reroute in-process — still
  // bit-identical, still no forks.
  const auto again = collect(executor, jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_TRUE(again[i] == expected[i]) << "fallback job " << i << " differs";
  }
  stats = executor.stats();
  EXPECT_EQ(stats.fallback_jobs, 6u);
  EXPECT_EQ(stats.workers_spawned, 2u) << "no forks while quarantined";
}

// ---------------------------------------------------------------------------
// The EDS_WORKER_CHAOS env route: chaos without touching the argv.

TEST(Resilience, EnvRouteInjectsChaosIntoForkedWorkers) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  const auto pg = port::with_canonical_ports(graph::cycle(8));
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  const std::vector<BatchJob> jobs(
      3, shippable_job(pg.ports(), *port_one, "port-one", 0));

  const ScopedEnv chaos("EDS_WORKER_CHAOS", "crash:2");
  ProcessShardExecutor::Options options;
  options.retry_backoff_ms = 1;
  const ProcessShardExecutor executor({bin, "worker"}, 1, options);
  (void)collect(executor, jobs);
  const auto stats = executor.stats();
  EXPECT_EQ(stats.jobs_retried, 1u)
      << "the forked worker must inherit EDS_WORKER_CHAOS";
  EXPECT_EQ(stats.workers_respawned, 1u);
}

// ---------------------------------------------------------------------------
// Chaos soak: many batches under seeded random faults, zero lost jobs.
// The per-push run keeps a small dose; nightly CI raises
// EDS_CHAOS_SOAK_BATCHES (and can override the spec via EDS_WORKER_CHAOS)
// to soak for hundreds of batches.

TEST(Resilience, ChaosSoakLosesNoJobsAndKeepsCountersMonotone) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  std::size_t batches = 6;
  if (const char* env = std::getenv("EDS_CHAOS_SOAK_BATCHES")) {
    batches = static_cast<std::size_t>(std::stoull(env));
  }
  // rand:1:60 faults ~6% of job ordinals (crash/garbage/exit-mid/slow,
  // never hang or poison).  One seed-dependent hazard needs screening: a
  // garbage/exit-mid draw at ordinal 1 would kill every fresh worker
  // before its first answer, so the retried job re-charges its budget
  // forever and poisons — a property of the seed, not a resilience bug.
  // Nightly CI rotates the seed by date, so sanitize deterministically:
  // bump the seed until ordinal 1 answers, and log the effective spec.
  std::string spec = "rand:1:60";
  if (const char* env = std::getenv("EDS_WORKER_CHAOS")) spec = env;
  {
    auto parsed = parse_chaos_spec(spec);
    if (parsed.mode == ChaosSpec::Mode::kRandom) {
      const auto unanswering = [](const ChaosSpec& s) {
        const auto mode = chaos_action(s, 1, 0).mode;
        return mode == ChaosSpec::Mode::kGarbage ||
               mode == ChaosSpec::Mode::kExitMid;
      };
      while (unanswering(parsed)) ++parsed.seed;
      spec = format_chaos_spec(parsed);
    }
  }
  std::cerr << "chaos soak spec: " << spec << ", " << batches << " batches\n";

  auto rng = test::make_rng(0x50C4);
  const auto a = test::random_ported_regular(10, 3, rng);
  const auto b = port::with_canonical_ports(graph::cycle(7));
  const auto bounded = algo::make_factory(algo::Algorithm::kBoundedDegree, 3);
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  std::vector<BatchJob> jobs;
  for (int r = 0; r < 3; ++r) {
    jobs.push_back(shippable_job(a.ports(), *bounded, "bounded-degree", 3));
    jobs.push_back(shippable_job(b.ports(), *port_one, "port-one", 0));
  }
  const auto expected = InProcessExecutor(1).run(jobs);

  ProcessShardExecutor::Options options;
  options.retry_backoff_ms = 1;
  options.max_retries = 10;
  // A hard stop under every job, so a chaos-harness bug can never turn
  // this soak into a CI hang: a stall becomes a kill + retry instead.
  options.job_timeout_ms = 10000;
  const ProcessShardExecutor executor({bin, "worker", "--chaos", spec}, 2,
                                      options);
  auto previous = executor.stats();
  for (std::size_t batch = 0; batch < batches; ++batch) {
    const auto got = collect(executor, jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_TRUE(got[i] == expected[i])
          << "soak batch " << batch << " drifted on job " << i;
    }
    const auto now = executor.stats();
    ASSERT_EQ(now.jobs_poisoned, 0u) << "soak batch " << batch;
    ASSERT_EQ(now.batch_timeouts, 0u) << "soak batch " << batch;
    ASSERT_EQ(now.pool_quarantines, 0u) << "soak batch " << batch;
    // Monotonicity across deaths: a worker that dies mid-batch must not
    // roll back the pool's cumulative cache counters (its credited
    // totals survive in the slot), and the core gauges only ever grow.
    ASSERT_GE(now.jobs_shipped, previous.jobs_shipped + jobs.size());
    ASSERT_GE(now.plan_hits + now.plans_compiled,
              previous.plan_hits + previous.plans_compiled)
        << "soak batch " << batch << " lost credited worker totals";
    ASSERT_GE(now.workers_spawned, previous.workers_spawned);
    ASSERT_GE(now.jobs_retried, previous.jobs_retried);
    previous = now;
  }
  EXPECT_EQ(previous.batches_run, batches);
}

}  // namespace
}  // namespace eds::runtime
