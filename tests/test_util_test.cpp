// The shared test utilities are load-bearing for every randomised suite,
// so they get a suite of their own: seeding must be stable, and the graph
// fixtures must match the facts the paper states about them.
#include <gtest/gtest.h>

#include "graph/properties.hpp"
#include "test_util.hpp"

namespace eds::test {
namespace {

TEST(TestUtil, BaseSeedIsStableAcrossCalls) {
  EXPECT_EQ(base_seed(), base_seed());
}

TEST(TestUtil, MakeRngIsDeterministicPerSalt) {
  auto a = make_rng(7);
  auto b = make_rng(7);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(TestUtil, MakeRngSaltsGiveIndependentStreams) {
  auto a = make_rng(1);
  auto b = make_rng(2);
  bool differs = false;
  for (int i = 0; i < 8; ++i) {
    differs = differs || (a.next_u64() != b.next_u64());
  }
  EXPECT_TRUE(differs);
}

TEST(TestUtil, RandomPortedRegularHasTheRequestedShape) {
  auto rng = make_rng(3);
  const auto pg = random_ported_regular(12, 3, rng);
  EXPECT_EQ(pg.graph().num_nodes(), 12u);
  EXPECT_TRUE(pg.graph().is_regular(3));
  EXPECT_NO_THROW(pg.ports().validate());
}

TEST(TestUtil, RandomPortedBoundedRespectsItsBounds) {
  auto rng = make_rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pg = random_ported_bounded(20, 4, 35, rng);
    EXPECT_EQ(pg.graph().num_nodes(), 20u);
    EXPECT_LE(pg.graph().max_degree(), 4u);
    EXPECT_LE(pg.graph().num_edges(), 35u);
    EXPECT_NO_THROW(pg.ports().validate());
  }
}

TEST(TestUtil, P4IsThePathOnFourNodes) {
  const auto g = p4();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(TestUtil, Figure2GraphHMatchesThePaper) {
  const auto pg = figure2_graph_h();
  EXPECT_EQ(pg.graph().num_nodes(), 4u);
  EXPECT_EQ(pg.graph().num_edges(), 5u);
  // The paper's port assignments: l(a, c) = 1, l(b, d) = 3, l(c, d) = 1.
  EXPECT_EQ(pg.port_towards(0, 2), 1u);
  EXPECT_EQ(pg.port_towards(1, 3), 3u);
  EXPECT_EQ(pg.port_towards(2, 3), 1u);
}

TEST(TestUtil, Figure2MultigraphMMatchesThePaper) {
  const auto m = figure2_multigraph_m();
  EXPECT_EQ(m.num_nodes(), 2u);
  EXPECT_EQ(m.num_ports(), 7u);
  EXPECT_NO_THROW(m.validate());
}

}  // namespace
}  // namespace eds::test
