// The execution engine's hard guarantee: every policy (sequential worklist,
// parallel sharded rounds, batch pool) produces bit-identical RunResults —
// outputs, stats, trace, and message-log order — and matches the seed
// semantics, reimplemented here as a policy-free oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "algo/bounded_degree.hpp"
#include "algo/double_cover.hpp"
#include "algo/driver.hpp"
#include "algo/port_one.hpp"
#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "port/random_port_graph.hpp"
#include "runtime/batch.hpp"
#include "runtime/engine.hpp"
#include "runtime/runner.hpp"
#include "util/rng.hpp"
#include "invariants.hpp"
#include "test_util.hpp"

namespace eds::runtime {
namespace {

using port::Port;
using port::PortGraph;
using port::PortGraphBuilder;

using test::EchoFactory;
using test::EchoProgram;
// The policy-free seed-semantics oracle and the thread-count sweep live in
// test_util.hpp so every differential suite (this one, engine_soa_test)
// holds the engine to the same bit-identity bar.
using test::policy_thread_counts;
using test::reference_run;

class NeverHaltFactory final : public ProgramFactory {
  class P final : public NodeProgram {
   public:
    void start(Port) override {}
    void send(Round, std::span<Message>) override {}
    void receive(Round, std::span<const Message>) override {}
    [[nodiscard]] bool halted() const override { return false; }
    [[nodiscard]] std::vector<Port> output() const override { return {}; }
  };

 public:
  [[nodiscard]] std::unique_ptr<NodeProgram> create() const override {
    return std::make_unique<P>();
  }
  [[nodiscard]] std::string name() const override { return "never-halt"; }
};

void expect_all_policies_match(const PortGraph& g,
                               const ProgramFactory& factory,
                               const char* label) {
  RunOptions options;
  options.collect_trace = true;
  options.collect_messages = true;
  const auto expected = reference_run(g, factory, options);
  // Synchronous runs must satisfy endpoint consistency (shared harness;
  // vacuous for outputs-free programs like echo and relay).
  test::check_eds_invariants(g, expected, label);
  for (const unsigned threads : policy_thread_counts()) {
    options.exec.threads = threads;
    const auto got = run_synchronous(g, factory, options);
    EXPECT_TRUE(got == expected)
        << label << ": policy with threads=" << threads
        << " diverged from the seed semantics (rounds " << got.stats.rounds
        << " vs " << expected.stats.rounds << ", messages "
        << got.stats.messages_sent << " vs " << expected.stats.messages_sent
        << ", log " << got.message_log.size() << " vs "
        << expected.message_log.size() << ")";
  }
}

TEST(Engine, DifferentialOnPaperFixtures) {
  const auto h = test::figure2_graph_h();
  const auto p4 = port::with_canonical_ports(test::p4());
  const auto m = test::figure2_multigraph_m();  // loops, parallel edges

  for (const Round rounds : {1u, 3u, 7u}) {
    const EchoFactory echo(rounds);
    expect_all_policies_match(h.ports(), echo, "figure-2 H");
    expect_all_policies_match(p4.ports(), echo, "p4");
    expect_all_policies_match(m, echo, "figure-2 M");
  }
  expect_all_policies_match(h.ports(), algo::PortOneFactory(), "figure-2 H");
  expect_all_policies_match(h.ports(), algo::DoubleCoverFactory(3),
                            "figure-2 H");
  expect_all_policies_match(h.ports(), algo::BoundedDegreeFactory(3),
                            "figure-2 H");
  expect_all_policies_match(m, algo::PortOneFactory(), "figure-2 M");
  expect_all_policies_match(m, algo::DoubleCoverFactory(4), "figure-2 M");
}

TEST(Engine, DifferentialOnRandomPortedGraphs) {
  auto rng = test::make_rng(0xE61);
  for (int trial = 0; trial < 4; ++trial) {
    const auto pg = test::random_ported_regular(20, 4, rng);
    expect_all_policies_match(pg.ports(), algo::PortOneFactory(),
                              "random 4-regular");
    expect_all_policies_match(pg.ports(), algo::BoundedDegreeFactory(4),
                              "random 4-regular");
    const auto bounded = test::random_ported_bounded(24, 5, 40, rng);
    expect_all_policies_match(bounded.ports(), algo::BoundedDegreeFactory(5),
                              "random bounded");
  }
}

TEST(Engine, DifferentialOnRandomMultigraphs) {
  // Uniform random involutions: parallel edges, undirected loops and
  // directed loops all appear — the full generality of the model.
  auto rng = test::make_rng(0xE62);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<Port> degrees(12);
    for (auto& d : degrees) d = static_cast<Port>(rng.below(5));
    const auto g = port::random_port_graph(degrees, rng);
    Port max_degree = 1;
    for (const auto d : degrees) max_degree = std::max(max_degree, d);
    expect_all_policies_match(g, EchoFactory(4), "random multigraph");
    expect_all_policies_match(g, algo::DoubleCoverFactory(max_degree),
                              "random multigraph");
  }
}

// The relay fixture (see test_util.hpp) is the adversarial probe for the
// fused exchange's silence bookkeeping: a halted node's feed slots are
// silenced exactly once, at halt time, and if a stale message ever
// "ghosted" past that point the relay would re-send it, diverging message
// counts, logs and traces from the seed-semantics oracle.
using test::RelayFactory;
using test::RelayProgram;

TEST(Engine, FusedExchangeOnLoopsWithStaggeredHalts) {
  // A handcrafted multigraph covering every involution case the fused
  // exchange must deliver directly: an undirected self-loop (two ports of
  // one node), directed self-loops (fixed points, where a node receives
  // its own message), parallel edges, a degree-0 node, and ordinary edges
  // between nodes of different degrees — which, under RelayFactory, halt
  // mid-run at different rounds.
  PortGraphBuilder b(std::vector<Port>{3, 2, 4, 1, 0, 2});
  b.connect({0, 1}, {0, 2});  // undirected loop at node 0
  b.fix({0, 3});              // directed loop at node 0
  b.connect({1, 1}, {2, 1});  // parallel edges between 1 and 2
  b.connect({1, 2}, {2, 2});
  b.connect({2, 3}, {3, 1});
  b.fix({2, 4});              // directed loop at node 2
  b.connect({5, 1}, {5, 2});  // undirected loop at node 5
  const auto g = b.build();

  for (const Round base : {1u, 2u, 5u}) {
    expect_all_policies_match(g, RelayFactory(base), "loops + stagger");
  }
}

TEST(Engine, FusedExchangeOnRandomMultigraphsWithStaggeredHalts) {
  // Random involutions (loops, parallel edges, irregular degrees) under
  // the relay probe: staggered halts on the full generality of the model.
  auto rng = test::make_rng(0xE64);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<Port> degrees(16);
    for (auto& d : degrees) d = static_cast<Port>(rng.below(6));
    const auto g = port::random_port_graph(degrees, rng);
    expect_all_policies_match(g, RelayFactory(2), "relay multigraph");
  }
}

TEST(Engine, MidRunHaltsWithPerNodePrograms) {
  // Per-node halt rounds decouple the stagger from node degrees: on a
  // cycle (uniform degree 2) node v halts after v % 7 + 2 + degree rounds,
  // so silence fronts sweep through the worklist while neighbours relay.
  // Policy identity is the contract here (run_synchronous_programs has no
  // factory for the oracle); the sequential run is the reference.
  const auto pg = port::with_canonical_ports(graph::cycle(48));
  const auto make_programs = [] {
    std::vector<std::unique_ptr<NodeProgram>> programs;
    for (std::size_t v = 0; v < 48; ++v) {
      programs.push_back(
          std::make_unique<RelayProgram>(static_cast<Round>(v % 7 + 2)));
    }
    return programs;
  };

  RunOptions options;
  options.collect_trace = true;
  options.collect_messages = true;
  const auto sequential =
      run_synchronous_programs(pg.ports(), make_programs(), options);
  for (const unsigned threads : policy_thread_counts()) {
    options.exec.threads = threads;
    const auto got =
        run_synchronous_programs(pg.ports(), make_programs(), options);
    EXPECT_TRUE(got == sequential) << "threads=" << threads;
  }
}

TEST(Engine, DoubleBufferWorkspaceFootprint) {
  // Deterministic, hardware-independent accounting for the double-buffered
  // transport: a fresh lane's pooled footprint for a P-port graph holds
  // exactly TWO P-slot Message buffers plus their two P-entry int32 tag
  // lanes (the price of the single-barrier round loop), plus small
  // worklist and scratch arrays.  A third ports-sized buffer — or lane
  // sets silently duplicated beyond the shadow pair — would bust the
  // upper bound asserted here.
  auto rng = test::make_rng(0xE65);
  const auto pg = test::random_ported_regular(1024, 4, rng);
  const std::size_t ports = pg.ports().num_ports();
  ASSERT_EQ(ports, 4096u);

  std::uint64_t delta = 0;
  std::thread fresh_lane([&] {
    const auto before = engine_alloc_stats().workspace_bytes;
    const auto result = run_synchronous(pg.ports(), EchoFactory(3));
    ASSERT_EQ(result.stats.rounds, 3u);
    delta = engine_alloc_stats().workspace_bytes - before;
  });
  fresh_lane.join();

  const std::size_t buffer_pair =
      2 * ports * (sizeof(Message) + sizeof(std::int32_t));
  EXPECT_GE(delta, buffer_pair)
      << "both outbox buffers and their tag lanes must be accounted";
  EXPECT_LT(delta, buffer_pair + ports * sizeof(Message))
      << "a third ports-sized message buffer is back in the workspace";
}

TEST(Engine, StageProfilingCountsRoundsAndStaysOffByDefault) {
  const auto pg = port::with_canonical_ports(graph::cycle(16));
  const auto before = engine_stage_stats();
  engine_stage_profiling(true);
  const auto result = run_synchronous(pg.ports(), EchoFactory(6));
  engine_stage_profiling(false);
  const auto after = engine_stage_stats();
  EXPECT_EQ(after.profiled_rounds - before.profiled_rounds,
            result.stats.rounds);
  EXPECT_GE(after.exchange_ns, before.exchange_ns);
  EXPECT_GE(after.receive_ns, before.receive_ns);

  // With profiling off again, runs leave the counters untouched.
  (void)run_synchronous(pg.ports(), EchoFactory(6));
  EXPECT_TRUE(engine_stage_stats() == after);
}

TEST(Engine, StageStatsResetZeroesCumulativeCounters) {
  // The counters are process-cumulative; per-run (or per-mode) attribution
  // needs a reset between measurements.
  const auto pg = port::with_canonical_ports(graph::cycle(8));
  engine_stage_profiling(true);
  (void)run_synchronous(pg.ports(), EchoFactory(4));
  engine_stage_profiling(false);
  EXPECT_GT(engine_stage_stats().profiled_rounds, 0u);

  engine_stage_stats_reset();
  const auto zeroed = engine_stage_stats();
  EXPECT_EQ(zeroed.exchange_ns, 0u);
  EXPECT_EQ(zeroed.receive_ns, 0u);
  EXPECT_EQ(zeroed.scatter_ns, 0u);
  EXPECT_EQ(zeroed.scan_ns, 0u);
  EXPECT_EQ(zeroed.profiled_rounds, 0u);

  // The counters keep working after a reset.
  engine_stage_profiling(true);
  const auto result = run_synchronous(pg.ports(), EchoFactory(4));
  engine_stage_profiling(false);
  EXPECT_EQ(engine_stage_stats().profiled_rounds, result.stats.rounds);
}

TEST(Engine, WorklistSkipsHaltedNodes) {
  // 90% of nodes halt in round 1; the long tail must not be charged for
  // them.  ports_served counts only non-halted nodes:
  // 2 ports x (90 nodes x 1 round + 10 nodes x 30 rounds) = 780.
  const auto pg = port::with_canonical_ports(graph::cycle(100));
  const auto make_programs = [] {
    std::vector<std::unique_ptr<NodeProgram>> programs;
    for (std::size_t v = 0; v < 100; ++v) {
      programs.push_back(
          std::make_unique<EchoProgram>(v % 10 == 0 ? 30 : 1));
    }
    return programs;
  };

  RunOptions options;
  options.collect_trace = true;
  options.collect_messages = true;
  const auto sequential =
      run_synchronous_programs(pg.ports(), make_programs(), options);
  EXPECT_EQ(sequential.stats.rounds, 30u);
  EXPECT_EQ(sequential.stats.ports_served, 780u);
  ASSERT_EQ(sequential.trace.size(), 30u);
  EXPECT_EQ(sequential.trace.front().halted_nodes, 90u);
  EXPECT_EQ(sequential.trace.back().halted_nodes, 100u);

  for (const unsigned threads : policy_thread_counts()) {
    options.exec.threads = threads;
    const auto got =
        run_synchronous_programs(pg.ports(), make_programs(), options);
    EXPECT_TRUE(got == sequential) << "threads=" << threads;
  }
}

TEST(Engine, PortsServedInvariantAcrossAlgorithms) {
  // ports_served == sum over nodes of degree x (rounds the node ran),
  // which for an algorithm where every node halts in the same round r is
  // r x total ports.
  const auto pg = port::with_canonical_ports(graph::cycle(6));
  const auto result = run_synchronous(pg.ports(), EchoFactory(5));
  EXPECT_EQ(result.stats.ports_served, 5u * 12u);
}

TEST(Engine, MoreThreadsThanNodes) {
  const auto pg = port::with_canonical_ports(graph::path(3));
  RunOptions options;
  options.collect_messages = true;
  options.collect_trace = true;
  const auto expected = reference_run(pg.ports(), EchoFactory(3), options);
  options.exec.threads = 16;
  const auto got = run_synchronous(pg.ports(), EchoFactory(3), options);
  EXPECT_TRUE(got == expected);
}

TEST(Engine, HardwareThreadsOptionRuns) {
  RunOptions options;
  options.exec.threads = 0;  // one lane per hardware thread
  const auto pg = port::with_canonical_ports(graph::cycle(12));
  const auto got = run_synchronous(pg.ports(), EchoFactory(2), options);
  EXPECT_EQ(got.stats.rounds, 2u);
}

TEST(Engine, EmptyGraphAndImmediateHalt) {
  const PortGraph empty = PortGraphBuilder(std::vector<Port>{}).build();
  for (const unsigned threads : policy_thread_counts()) {
    RunOptions options;
    options.exec.threads = threads;
    const auto result = run_synchronous(empty, EchoFactory(3), options);
    EXPECT_EQ(result.stats.rounds, 0u);
    EXPECT_TRUE(result.outputs.empty());
  }
}

TEST(Engine, RoundLimitThrowsUnderEveryPolicy) {
  const auto pg = port::with_canonical_ports(graph::cycle(3));
  for (const unsigned threads : policy_thread_counts()) {
    RunOptions options;
    options.max_rounds = 10;
    options.exec.threads = threads;
    EXPECT_THROW(
        (void)run_synchronous(pg.ports(), NeverHaltFactory(), options),
        ExecutionError);
  }
}

TEST(ExecutionPlan, MirrorsTheGraph) {
  auto rng = test::make_rng(0xE63);
  std::vector<Port> degrees{3, 0, 2, 5, 1, 4};
  const auto g = port::random_port_graph(degrees, rng);
  const ExecutionPlan plan(g);
  ASSERT_EQ(plan.num_nodes(), g.num_nodes());
  ASSERT_EQ(plan.total_ports(), g.num_ports());
  std::size_t off = 0;
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(plan.degree(v), g.degree(static_cast<port::NodeId>(v)));
    EXPECT_EQ(plan.offset(v), off);
    off += plan.degree(v);
    for (Port i = 1; i <= plan.degree(v); ++i) {
      const auto q = plan.offset(v) + i - 1;
      const auto dst = g.partner(static_cast<port::NodeId>(v), i);
      EXPECT_TRUE(plan.partner_ref(q) == dst);
      EXPECT_EQ(plan.partner_flat(q), plan.offset(dst.node) + dst.port - 1);
      // Involution: following the partner index twice returns home.
      EXPECT_EQ(plan.partner_flat(plan.partner_flat(q)), q);
    }
  }
}

TEST(BatchRunner, DeterministicAcrossThreadCounts) {
  auto rng = test::make_rng(0xBA7);
  const auto h = test::figure2_graph_h();
  const auto m = test::figure2_multigraph_m();
  const auto cycle = port::with_canonical_ports(graph::cycle(9));
  const auto regular = test::random_ported_regular(16, 4, rng);

  const EchoFactory echo(4);
  const algo::PortOneFactory port_one;
  const algo::BoundedDegreeFactory bounded(4);

  RunOptions traced;
  traced.collect_trace = true;
  traced.collect_messages = true;
  const std::vector<BatchJob> jobs{
      {&h.ports(), &echo, traced, {}},
      {&m, &echo, traced, {}},
      {&cycle.ports(), &port_one, {}, {}},
      {&regular.ports(), &bounded, traced, {}},
      {&regular.ports(), &port_one, {}, {}},
      {&h.ports(), &bounded, {}, {}},
  };

  // The per-job oracle: what each job yields when run on its own.
  std::vector<RunResult> expected;
  for (const auto& job : jobs) {
    expected.push_back(run_synchronous(*job.graph, *job.factory, job.options));
  }

  for (const unsigned threads : {1u, 2u, 8u}) {
    const BatchRunner runner(threads);
    const auto results = runner.run(jobs);
    ASSERT_EQ(results.size(), jobs.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_TRUE(results[i] == expected[i])
          << "threads=" << threads << " job=" << i;
    }
  }
}

TEST(BatchRunner, RejectsMalformedJobsUpFront) {
  const EchoFactory echo(1);
  const auto pg = port::with_canonical_ports(graph::cycle(3));
  const BatchRunner runner(2);
  EXPECT_THROW((void)runner.run({{nullptr, &echo, {}, {}}}), InvalidArgument);
  EXPECT_THROW((void)runner.run({{&pg.ports(), nullptr, {}, {}}}),
               InvalidArgument);
  EXPECT_TRUE(runner.run({}).empty());
}

TEST(BatchRunner, RethrowsLowestIndexedFailure) {
  const NeverHaltFactory never;
  const auto pg = port::with_canonical_ports(graph::cycle(3));
  RunOptions three;
  three.max_rounds = 3;
  RunOptions five;
  five.max_rounds = 5;
  const std::vector<BatchJob> jobs{
      {&pg.ports(), &never, three, {}},
      {&pg.ports(), &never, five, {}},
  };
  for (const unsigned threads : {1u, 4u}) {
    const BatchRunner runner(threads);
    try {
      (void)runner.run(jobs);
      FAIL() << "expected ExecutionError";
    } catch (const ExecutionError& e) {
      EXPECT_NE(std::string(e.what()).find("within 3 rounds"),
                std::string::npos)
          << "threads=" << threads << ": " << e.what();
    }
  }
}

TEST(BatchRunner, StreamingMatchesRunAndArrivesInOrder) {
  auto rng = test::make_rng(0x57E);
  std::vector<port::PortedGraph> graphs;
  for (int i = 0; i < 6; ++i) {
    graphs.push_back(test::random_ported_regular(12 + 2 * i, 4, rng));
  }
  const algo::BoundedDegreeFactory bounded(4);
  RunOptions traced;
  traced.collect_trace = true;
  traced.collect_messages = true;
  std::vector<BatchJob> jobs;
  for (const auto& pg : graphs) {
    jobs.push_back({&pg.ports(), &bounded, traced, {}});
  }

  for (const unsigned threads : {1u, 4u}) {
    const BatchRunner runner(threads);
    const auto expected = runner.run(jobs);
    std::vector<std::size_t> order;
    std::vector<RunResult> streamed(jobs.size());
    runner.run_streaming(jobs, [&](std::size_t i, RunResult&& result) {
      order.push_back(i);
      streamed[i] = std::move(result);
    });
    ASSERT_EQ(order.size(), jobs.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(order[i], i) << "delivery must follow job order";
      EXPECT_TRUE(streamed[i] == expected[i]) << "threads=" << threads;
    }
  }
}

TEST(BatchRunner, StreamingWithholdsResultsFromTheFailureOnward) {
  const NeverHaltFactory never;
  const EchoFactory echo(2);
  const auto pg = port::with_canonical_ports(graph::cycle(4));
  RunOptions capped;
  capped.max_rounds = 3;
  // Jobs 0 and 1 succeed, job 2 fails, job 3 would succeed but must be
  // withheld by the prefix rule.
  const std::vector<BatchJob> jobs{
      {&pg.ports(), &echo, {}, {}},
      {&pg.ports(), &echo, {}, {}},
      {&pg.ports(), &never, capped, {}},
      {&pg.ports(), &echo, {}, {}},
  };
  for (const unsigned threads : {1u, 4u}) {
    const BatchRunner runner(threads);
    std::vector<std::size_t> delivered;
    EXPECT_THROW(
        runner.run_streaming(jobs,
                             [&](std::size_t i, RunResult&&) {
                               delivered.push_back(i);
                             }),
        ExecutionError);
    EXPECT_EQ(delivered, (std::vector<std::size_t>{0, 1}))
        << "threads=" << threads;
  }
}

TEST(BatchRunner, StreamingRethrowsCallbackFailures) {
  const EchoFactory echo(1);
  const auto pg = port::with_canonical_ports(graph::cycle(3));
  const std::vector<BatchJob> jobs{
      {&pg.ports(), &echo, {}, {}},
      {&pg.ports(), &echo, {}, {}},
  };
  const BatchRunner runner(2);
  std::size_t calls = 0;
  EXPECT_THROW(runner.run_streaming(jobs,
                                    [&](std::size_t, RunResult&&) {
                                      ++calls;
                                      throw InvalidArgument("consumer burp");
                                    }),
               InvalidArgument);
  EXPECT_EQ(calls, 1u) << "delivery stops at the first callback failure";
}

TEST(BatchStream, NextPullsEveryResultInOrder) {
  auto rng = test::make_rng(0x57F);
  std::vector<port::PortedGraph> graphs;
  for (int i = 0; i < 5; ++i) {
    graphs.push_back(test::random_ported_regular(10 + 2 * i, 3, rng));
  }
  const algo::BoundedDegreeFactory bounded(3);
  std::vector<BatchJob> jobs;
  for (const auto& pg : graphs) {
    jobs.push_back({&pg.ports(), &bounded, {}, {}});
  }
  const BatchRunner runner(4);
  const auto expected = runner.run(jobs);

  auto stream = runner.stream(jobs);
  std::size_t count = 0;
  while (auto item = stream->next()) {
    ASSERT_LT(count, expected.size());
    EXPECT_EQ(item->index, count);
    EXPECT_TRUE(item->result == expected[count]);
    ++count;
  }
  EXPECT_EQ(count, jobs.size());
  EXPECT_FALSE(stream->next().has_value()) << "stream stays exhausted";
}

TEST(BatchStream, NextRethrowsTheFailedJobAndEnds) {
  const NeverHaltFactory never;
  const EchoFactory echo(2);
  const auto pg = port::with_canonical_ports(graph::cycle(4));
  RunOptions capped;
  capped.max_rounds = 3;
  const std::vector<BatchJob> jobs{
      {&pg.ports(), &echo, {}, {}},
      {&pg.ports(), &never, capped, {}},
      {&pg.ports(), &echo, {}, {}},
  };
  const BatchRunner runner(2);
  auto stream = runner.stream(jobs);
  const auto first = stream->next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->index, 0u);
  EXPECT_THROW((void)stream->next(), ExecutionError);
  EXPECT_FALSE(stream->next().has_value());
}

TEST(BatchStream, AbandoningTheStreamDrainsTheBatch) {
  const EchoFactory echo(3);
  const auto pg = port::with_canonical_ports(graph::cycle(12));
  const std::vector<BatchJob> jobs(8, BatchJob{&pg.ports(), &echo, {}, {}});
  const BatchRunner runner(2);
  {
    auto stream = runner.stream(jobs);
    const auto item = stream->next();
    ASSERT_TRUE(item.has_value());
    // Dropping the stream here must join the in-flight batch cleanly.
  }
  // The runner is reusable after the stream is gone.
  EXPECT_EQ(runner.run(jobs).size(), jobs.size());
}

TEST(BatchStream, DroppingAnUndrainedStreamReleasesWorkspaceBytes) {
  // The leak-check version of abandonment: every pool lane (and the
  // stream's driver thread) grows a pooled EngineWorkspace while the batch
  // runs; once the stream *and* the runner are gone, their threads have
  // joined and every pooled byte must be back off the gauge.  The calling
  // thread never executes a job in stream mode, so the gauge returns
  // exactly to its baseline.
  const auto baseline = engine_alloc_stats().workspace_bytes;
  const EchoFactory echo(4);
  const auto pg = port::with_canonical_ports(graph::cycle(64));
  const std::vector<BatchJob> jobs(12, BatchJob{&pg.ports(), &echo, {}, {}});
  {
    const BatchRunner runner(3);
    auto stream = runner.stream(jobs);
    ASSERT_TRUE(stream->next().has_value());
    // Drop the stream with 11 results unconsumed, then the runner.
  }
  EXPECT_EQ(engine_alloc_stats().workspace_bytes, baseline);
}

TEST(AlgoBatch, StreamingMatchesRunBatch) {
  auto rng = test::make_rng(0xA1C);
  std::vector<port::PortedGraph> graphs;
  graphs.push_back(test::random_ported_regular(14, 4, rng));
  graphs.push_back(test::random_ported_regular(12, 3, rng));
  std::vector<algo::BatchItem> items;
  items.push_back({&graphs[0], algo::Algorithm::kPortOne, 0});
  items.push_back({&graphs[1], algo::Algorithm::kOddRegular, 0});

  const auto expected = algo::run_batch(items, 2);
  std::vector<algo::EdsOutcome> streamed(items.size());
  std::vector<std::size_t> order;
  algo::run_batch_streaming(items, 2,
                            [&](std::size_t i, algo::EdsOutcome&& outcome) {
                              order.push_back(i);
                              streamed[i] = std::move(outcome);
                            });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1}));
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(streamed[i].solution, expected[i].solution);
    EXPECT_TRUE(streamed[i].stats == expected[i].stats);
  }
}

TEST(AlgoBatch, MatchesRunAlgorithm) {
  auto rng = test::make_rng(0xA1B);
  std::vector<port::PortedGraph> graphs;
  graphs.push_back(test::random_ported_regular(14, 4, rng));
  graphs.push_back(test::random_ported_regular(12, 3, rng));
  graphs.push_back(port::with_canonical_ports(graph::cycle(10)));

  std::vector<algo::BatchItem> items;
  items.push_back({&graphs[0], algo::Algorithm::kPortOne, 0});
  items.push_back({&graphs[1], algo::Algorithm::kOddRegular, 0});  // resolves 3
  items.push_back({&graphs[2], algo::Algorithm::kBoundedDegree, 0});

  const auto solo = {
      algo::run_algorithm(graphs[0], algo::Algorithm::kPortOne),
      algo::run_algorithm(graphs[1], algo::Algorithm::kOddRegular),
      algo::run_algorithm(graphs[2], algo::Algorithm::kBoundedDegree),
  };

  for (const unsigned threads : {1u, 3u}) {
    const auto outcomes = algo::run_batch(items, threads);
    ASSERT_EQ(outcomes.size(), items.size());
    std::size_t i = 0;
    for (const auto& expected : solo) {
      EXPECT_EQ(outcomes[i].solution, expected.solution);
      EXPECT_TRUE(outcomes[i].stats == expected.stats);
      ++i;
    }
  }
}

}  // namespace
}  // namespace eds::runtime
