#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "lb/lower_bounds.hpp"
#include "port/io.hpp"
#include "port/ported_graph.hpp"
#include "port/random_port_graph.hpp"
#include "util/rng.hpp"

namespace eds::port {
namespace {

void expect_same_structure(const PortGraph& a, const PortGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v));
    for (Port i = 1; i <= a.degree(v); ++i) {
      EXPECT_EQ(a.partner(v, i), b.partner(v, i));
    }
  }
}

TEST(PortIo, RoundTripSimple) {
  Rng rng(1);
  const auto pg = with_random_ports(graph::petersen(), rng);
  const auto text = to_port_graph_string(pg.ports());
  expect_same_structure(pg.ports(), from_port_graph_string(text));
}

TEST(PortIo, RoundTripMultigraphWithLoops) {
  PortGraphBuilder b({3, 4});
  b.connect({0, 1}, {1, 2});
  b.connect({0, 2}, {1, 1});
  b.fix({0, 3});
  b.connect({1, 3}, {1, 4});
  const auto g = b.build();
  expect_same_structure(g, from_port_graph_string(to_port_graph_string(g)));
}

TEST(PortIo, RoundTripRandomFuzz) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Port> degrees(8);
    for (auto& d : degrees) d = static_cast<Port>(rng.below(5));
    const auto g = random_port_graph(degrees, rng);
    expect_same_structure(g, from_port_graph_string(to_port_graph_string(g)));
  }
}

TEST(PortIo, RoundTripLowerBoundInstances) {
  for (const Port d : {2u, 4u, 3u, 5u}) {
    const auto inst =
        d % 2 == 0 ? lb::even_lower_bound(d) : lb::odd_lower_bound(d);
    const auto& g = inst.ported.ports();
    expect_same_structure(g, from_port_graph_string(to_port_graph_string(g)));
    // The covering bases contain loops; round-trip those too.
    expect_same_structure(
        inst.covering_base,
        from_port_graph_string(to_port_graph_string(inst.covering_base)));
  }
}

TEST(PortIo, CommentsAndBlanksIgnored) {
  const auto g = from_port_graph_string(
      "# adversarial instance\n"
      "ports 2\n"
      "\n"
      "deg 1 1\n"
      "# the single edge\n"
      "conn 0 1 1 1\n");
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.partner(0, 1), (PortRef{1, 1}));
}

TEST(PortIo, MalformedInputs) {
  EXPECT_THROW((void)from_port_graph_string(""), InvalidStructure);
  EXPECT_THROW((void)from_port_graph_string("deg 1\n"), InvalidStructure);
  EXPECT_THROW((void)from_port_graph_string("ports 1\nconn 0 1 0 2\n"),
               InvalidStructure);
  EXPECT_THROW((void)from_port_graph_string("ports 1\ndeg 2\nwhat 1\n"),
               InvalidStructure);
  // Incomplete involution.
  EXPECT_THROW((void)from_port_graph_string("ports 2\ndeg 1 1\n"),
               InvalidStructure);
  // Double assignment.
  EXPECT_THROW((void)from_port_graph_string(
                   "ports 2\ndeg 1 1\nconn 0 1 1 1\nloop 0 1\n"),
               InvalidStructure);
  // Out-of-range port.
  EXPECT_THROW((void)from_port_graph_string("ports 2\ndeg 1 1\nconn 0 1 1 9\n"),
               InvalidArgument);
}

}  // namespace
}  // namespace eds::port
