#include <gtest/gtest.h>

#include <set>

#include "algo/driver.hpp"
#include "algo/odd_regular.hpp"
#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "exact/exact_eds.hpp"
#include "graph/generators.hpp"
#include "lb/lower_bounds.hpp"
#include "port/ported_graph.hpp"
#include "runtime/outputs.hpp"
#include "util/rng.hpp"
#include "test_util.hpp"

namespace eds::algo {
namespace {

using analysis::approximation_ratio;
using analysis::is_edge_cover;
using analysis::is_edge_dominating_set;
using analysis::is_star_forest;
using analysis::paper_bound_regular;

/// Runs Theorem 4's algorithm and returns the validated solution.
graph::EdgeSet solve(const port::PortedGraph& pg, port::Port d) {
  return run_algorithm(pg, Algorithm::kOddRegular, d).solution;
}

TEST(OddRegular, FeasibleOnRandomOddRegularGraphs) {
  Rng rng(1);
  for (const port::Port d : {1u, 3u, 5u, 7u}) {
    for (int trial = 0; trial < 4; ++trial) {
      const auto pg = test::random_ported_regular(2 * d + 4, d, rng);
      const auto& g = pg.graph();
      const auto solution = solve(pg, d);
      EXPECT_TRUE(is_edge_dominating_set(g, solution)) << "d=" << d;
      EXPECT_TRUE(is_edge_cover(g, solution)) << "d=" << d;
    }
  }
}

TEST(OddRegular, ProducesAStarForest) {
  // After phase II, D is a forest of node-disjoint stars (proof of Thm 4).
  Rng rng(2);
  for (const port::Port d : {3u, 5u}) {
    for (int trial = 0; trial < 5; ++trial) {
      const auto pg = test::random_ported_regular(3 * d + 3, d, rng);
      const auto& g = pg.graph();
      const auto solution = solve(pg, d);
      EXPECT_TRUE(is_star_forest(g, solution)) << "d=" << d;
    }
  }
}

TEST(OddRegular, SizeBoundHolds) {
  // |D| <= d |V| / (d+1), the counting step of Theorem 4.
  Rng rng(3);
  for (const port::Port d : {3u, 5u, 7u}) {
    for (int trial = 0; trial < 4; ++trial) {
      const std::size_t n = 2 * d + 6;
      const auto pg = test::random_ported_regular(n, d, rng);
      const auto solution = solve(pg, d);
      EXPECT_LE(solution.size() * (d + 1), d * n) << "d=" << d;
    }
  }
}

TEST(OddRegular, RatioWithinBoundAgainstExactOptimum) {
  Rng rng(4);
  for (int trial = 0; trial < 6; ++trial) {
    const auto pg = test::random_ported_regular(10, 3, rng);
    const auto& g = pg.graph();
    const auto solution = solve(pg, 3);
    const auto optimum = exact::minimum_eds_size(g);
    EXPECT_LE(approximation_ratio(solution.size(), optimum),
              paper_bound_regular(3))
        << "trial " << trial;
  }
}

TEST(OddRegular, PetersenGraphAllNumberings) {
  Rng rng(5);
  const auto g = graph::petersen();
  const auto optimum = exact::minimum_eds_size(g);  // = 3
  for (int trial = 0; trial < 10; ++trial) {
    const auto pg = port::with_random_ports(g, rng);
    const auto solution = solve(pg, 3);
    EXPECT_TRUE(is_edge_dominating_set(g, solution));
    EXPECT_LE(approximation_ratio(solution.size(), optimum),
              paper_bound_regular(3));
  }
}

TEST(OddRegular, DegreeOneGraphsAreSolvedOptimally) {
  // d = 1: the schedule degenerates to M(1,1); output = all edges.
  const auto g = graph::circulant(8, {4});
  ASSERT_TRUE(g.is_regular(1));
  const auto pg = port::with_canonical_ports(g);
  const auto solution = solve(pg, 1);
  EXPECT_EQ(solution.size(), 4u);
}

TEST(OddRegular, ScheduleLengthIsQuadratic) {
  EXPECT_EQ(OddRegularProgram::schedule_length(1), 4u);
  EXPECT_EQ(OddRegularProgram::schedule_length(3), 20u);
  EXPECT_EQ(OddRegularProgram::schedule_length(5), 52u);
  EXPECT_EQ(OddRegularProgram::schedule_length(7), 100u);
}

TEST(OddRegular, RoundsMatchSchedule) {
  Rng rng(6);
  const auto pg = test::random_ported_regular(12, 5, rng);
  const auto outcome = run_algorithm(pg, Algorithm::kOddRegular, 5);
  EXPECT_EQ(outcome.stats.rounds, OddRegularProgram::schedule_length(5));
}

TEST(OddRegular, RoundsIndependentOfN) {
  // Locality: same d, different n — identical round count.
  Rng rng(7);
  runtime::Round rounds[2] = {0, 0};
  int idx = 0;
  for (const std::size_t n : {10u, 40u}) {
    const auto pg = test::random_ported_regular(n, 3, rng);
    rounds[idx++] = run_algorithm(pg, Algorithm::kOddRegular, 3).stats.rounds;
  }
  EXPECT_EQ(rounds[0], rounds[1]);
}

TEST(OddRegular, RejectsEvenParameter) {
  EXPECT_THROW(OddRegularProgram{4}, InvalidArgument);
}

TEST(OddRegular, PairScheduleVariantsArePermutations) {
  for (const auto order :
       {PairOrder::kLexicographic, PairOrder::kDiagonal, PairOrder::kReverse}) {
    const auto pairs = pair_schedule(5, order);
    EXPECT_EQ(pairs.size(), 25u);
    std::set<std::pair<port::Port, port::Port>> distinct(pairs.begin(),
                                                         pairs.end());
    EXPECT_EQ(distinct.size(), 25u);
  }
  // Spot-check the orders themselves.
  EXPECT_EQ(pair_schedule(3, PairOrder::kLexicographic).front(),
            (std::pair<port::Port, port::Port>{1, 1}));
  EXPECT_EQ(pair_schedule(3, PairOrder::kReverse).front(),
            (std::pair<port::Port, port::Port>{3, 3}));
  EXPECT_EQ(pair_schedule(3, PairOrder::kDiagonal)[1],
            (std::pair<port::Port, port::Port>{1, 2}));
}

TEST(OddRegular, GuaranteeHoldsUnderEveryPairOrder) {
  // "We consider each pair (i, j) sequentially (in an arbitrary order)" —
  // the guarantee must not depend on the order chosen.
  Rng rng(12);
  for (int trial = 0; trial < 4; ++trial) {
    const auto pg = test::random_ported_regular(12, 3, rng);
    const auto& g = pg.graph();
    const auto optimum = exact::minimum_eds_size(g);
    for (const auto order : {PairOrder::kLexicographic, PairOrder::kDiagonal,
                             PairOrder::kReverse}) {
      const OddRegularFactory factory(3, order);
      const auto raw = runtime::run_synchronous(pg.ports(), factory);
      const auto solution = runtime::validated_edge_set(pg, raw);
      EXPECT_TRUE(is_edge_dominating_set(g, solution));
      EXPECT_TRUE(is_star_forest(g, solution));
      EXPECT_LE(approximation_ratio(solution.size(), optimum),
                paper_bound_regular(3));
    }
  }
}

TEST(OddRegular, OrdersStillForceTheLowerBound) {
  // On the adversarial construction every order is forced to the bound —
  // the lower bound quantifies over all algorithms, including all orders.
  for (const auto order : {PairOrder::kDiagonal, PairOrder::kReverse}) {
    const auto inst = lb::odd_lower_bound(3);
    const OddRegularFactory factory(3, order);
    const auto raw = runtime::run_synchronous(inst.ported.ports(), factory);
    const auto solution = runtime::validated_edge_set(inst.ported, raw);
    EXPECT_EQ(approximation_ratio(solution.size(), inst.optimal.size()),
              paper_bound_regular(3));
  }
}

TEST(OddRegular, RejectsDegreeMismatch) {
  // Running the d=3 program on a 5-regular graph violates the model.
  Rng rng(8);
  const auto pg = test::random_ported_regular(12, 5, rng);
  EXPECT_THROW((void)run_algorithm(pg, Algorithm::kOddRegular, 3),
               ExecutionError);
}

TEST(OddRegular, WorksOnDisconnectedGraphs) {
  Rng rng(9);
  const auto g = graph::disjoint_union(graph::petersen(), graph::petersen());
  const auto pg = port::with_random_ports(g, rng);
  const auto solution = solve(pg, 3);
  EXPECT_TRUE(is_edge_dominating_set(g, solution));
}

TEST(OddRegular, CompleteGraphK4IsHandledByBoundedDegreeInstead) {
  // Sanity: even-regular graphs are out of scope for Theorem 4; the driver
  // has already been shown to reject a mismatched d.  K_4 with d=3... K_4 is
  // 3-regular, so it IS in scope: check it solves optimally enough.
  Rng rng(10);
  const auto g = graph::complete(4);
  const auto pg = port::with_random_ports(g, rng);
  const auto solution = solve(pg, 3);
  EXPECT_TRUE(is_edge_dominating_set(g, solution));
  const auto optimum = exact::minimum_eds_size(g);  // = 2
  EXPECT_LE(approximation_ratio(solution.size(), optimum),
            paper_bound_regular(3));
}

TEST(OddRegular, ManySeedsNeverViolateBoundOnK4Free) {
  // A broader randomised sweep on 3-regular instances with exact optima.
  Rng rng(11);
  for (int trial = 0; trial < 12; ++trial) {
    const auto pg = test::random_ported_regular(14, 3, rng);
    const auto& g = pg.graph();
    const auto solution = solve(pg, 3);
    const auto optimum = exact::minimum_eds_size(g);
    EXPECT_LE(approximation_ratio(solution.size(), optimum),
              paper_bound_regular(3))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace eds::algo
