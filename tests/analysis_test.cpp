#include <gtest/gtest.h>

#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "test_util.hpp"

namespace eds::analysis {
namespace {

using graph::EdgeSet;
using graph::SimpleGraph;
using test::p4;

TEST(Verify, DominatedEdges) {
  const auto g = p4();
  const EdgeSet middle(3, {1});
  EXPECT_EQ(dominated_edges(g, middle).size(), 3u);
  const EdgeSet end(3, {0});
  EXPECT_EQ(dominated_edges(g, end).size(), 2u);
}

TEST(Verify, EdgeDominatingSet) {
  const auto g = p4();
  EXPECT_TRUE(is_edge_dominating_set(g, EdgeSet(3, {1})));
  EXPECT_FALSE(is_edge_dominating_set(g, EdgeSet(3, {0})));
  EXPECT_TRUE(is_edge_dominating_set(g, EdgeSet(3, {0, 2})));
}

TEST(Verify, EmptySetDominatesEdgelessGraph) {
  const SimpleGraph g(4);
  EXPECT_TRUE(is_edge_dominating_set(g, EdgeSet(0)));
}

TEST(Verify, Matching) {
  const auto g = p4();
  EXPECT_TRUE(is_matching(g, EdgeSet(3, {0, 2})));
  EXPECT_FALSE(is_matching(g, EdgeSet(3, {0, 1})));
  EXPECT_TRUE(is_matching(g, EdgeSet(3)));
}

TEST(Verify, KMatching) {
  const auto g = graph::star(3);
  const EdgeSet all(3, {0, 1, 2});
  EXPECT_FALSE(is_k_matching(g, all, 2));
  EXPECT_TRUE(is_k_matching(g, all, 3));
  EXPECT_TRUE(is_k_matching(g, EdgeSet(3, {0, 1}), 2));
}

TEST(Verify, MaximalMatching) {
  const auto g = p4();
  EXPECT_TRUE(is_maximal_matching(g, EdgeSet(3, {1})));
  EXPECT_TRUE(is_maximal_matching(g, EdgeSet(3, {0, 2})));
  EXPECT_FALSE(is_maximal_matching(g, EdgeSet(3, {0})));   // extendable
  EXPECT_FALSE(is_maximal_matching(g, EdgeSet(3, {0, 1})));  // not a matching
}

TEST(Verify, EdgeCover) {
  const auto g = p4();
  EXPECT_TRUE(is_edge_cover(g, EdgeSet(3, {0, 2})));
  EXPECT_FALSE(is_edge_cover(g, EdgeSet(3, {1})));
}

TEST(Verify, Forest) {
  const auto g = graph::cycle(4);
  EdgeSet three(4, {0, 1, 2});
  EXPECT_TRUE(is_forest(g, three));
  EdgeSet four(4, {0, 1, 2, 3});
  EXPECT_FALSE(is_forest(g, four));
}

TEST(Verify, StarForest) {
  const auto g = p4();
  EXPECT_TRUE(is_star_forest(g, EdgeSet(3, {0, 1})));   // a 2-edge star
  EXPECT_TRUE(is_star_forest(g, EdgeSet(3, {0, 2})));   // two single edges
  EXPECT_FALSE(is_star_forest(g, EdgeSet(3, {0, 1, 2})));  // path of length 3
  const auto c3 = graph::cycle(3);
  EXPECT_FALSE(is_star_forest(c3, EdgeSet(3, {0, 1, 2})));  // a cycle
}

TEST(Verify, BigStarIsAStarForest) {
  const auto g = graph::star(6);
  EdgeSet all(6, {0, 1, 2, 3, 4, 5});
  EXPECT_TRUE(is_star_forest(g, all));
}

TEST(Verify, NodeDisjoint) {
  const auto g = p4();
  EXPECT_TRUE(node_disjoint(g, EdgeSet(3, {0}), EdgeSet(3, {2})));
  EXPECT_FALSE(node_disjoint(g, EdgeSet(3, {0}), EdgeSet(3, {1})));
  EXPECT_TRUE(node_disjoint(g, EdgeSet(3), EdgeSet(3, {1})));
}

TEST(Verify, MaximalMatchingIsAlwaysEds) {
  // Classic fact from Section 1.1, as a property test.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = graph::random_bounded_degree(25, 5, 45, rng);
    EdgeSet m(g.num_edges());
    std::vector<bool> matched(g.num_nodes(), false);
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& edge = g.edge(e);
      if (!matched[edge.u] && !matched[edge.v]) {
        matched[edge.u] = matched[edge.v] = true;
        m.insert(e);
      }
    }
    EXPECT_TRUE(is_maximal_matching(g, m));
    EXPECT_TRUE(is_edge_dominating_set(g, m));
  }
}

TEST(Ratio, Basics) {
  EXPECT_EQ(approximation_ratio(6, 2), Fraction(3));
  EXPECT_EQ(approximation_ratio(0, 0), Fraction(1));
  EXPECT_THROW((void)approximation_ratio(3, 0), InvalidArgument);
}

TEST(Ratio, PaperBoundRegularTable) {
  // Table 1, d-regular column.
  EXPECT_EQ(paper_bound_regular(1), Fraction(1));       // 4 - 6/2 = 1
  EXPECT_EQ(paper_bound_regular(2), Fraction(3));       // 4 - 2/2
  EXPECT_EQ(paper_bound_regular(3), Fraction(5, 2));    // 4 - 6/4
  EXPECT_EQ(paper_bound_regular(4), Fraction(7, 2));    // 4 - 2/4
  EXPECT_EQ(paper_bound_regular(5), Fraction(3));       // 4 - 6/6
  EXPECT_EQ(paper_bound_regular(6), Fraction(11, 3));   // 4 - 2/6
  EXPECT_EQ(paper_bound_regular(7), Fraction(13, 4));   // 4 - 6/8
  EXPECT_THROW((void)paper_bound_regular(0), InvalidArgument);
}

TEST(Ratio, PaperBoundBoundedTable) {
  // Table 1, bounded-degree column; α(2k) = α(2k+1) = 4 - 1/k.
  EXPECT_EQ(paper_bound_bounded(1), Fraction(1));
  EXPECT_EQ(paper_bound_bounded(2), Fraction(3));       // k=1: 4 - 1
  EXPECT_EQ(paper_bound_bounded(3), Fraction(3));       // 4 - 2/2
  EXPECT_EQ(paper_bound_bounded(4), Fraction(7, 2));    // k=2: 4 - 1/2
  EXPECT_EQ(paper_bound_bounded(5), Fraction(7, 2));    // 4 - 2/4
  EXPECT_EQ(paper_bound_bounded(6), Fraction(11, 3));   // k=3
  EXPECT_EQ(paper_bound_bounded(7), Fraction(11, 3));
  EXPECT_THROW((void)paper_bound_bounded(0), InvalidArgument);
}

TEST(Ratio, BoundedAndRegularAgreeOnEvenDegrees) {
  // α(2k) for bounded degree equals the even-regular bound 4 - 2/d at
  // d = 2k (Corollary 1's source).
  for (std::size_t k = 1; k <= 8; ++k) {
    EXPECT_EQ(paper_bound_bounded(2 * k), paper_bound_regular(2 * k));
  }
}

TEST(Ratio, MonotoneInDelta) {
  for (std::size_t d = 1; d < 12; ++d) {
    EXPECT_LE(paper_bound_bounded(d), paper_bound_bounded(d + 1));
  }
}

}  // namespace
}  // namespace eds::analysis
