#include <gtest/gtest.h>

#include "analysis/verify.hpp"
#include "exact/exact_eds.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace eds::exact {
namespace {

TEST(Exact, PathsHaveKnownOptima) {
  // Minimum maximal matching of a path P_n has ceil((n-1)/3) edges.
  for (std::size_t n = 2; n <= 12; ++n) {
    const auto g = graph::path(n);
    const auto expected = (n - 1 + 2) / 3;
    EXPECT_EQ(minimum_eds_size(g), expected) << "n=" << n;
  }
}

TEST(Exact, CyclesHaveKnownOptima) {
  // Minimum maximal matching of a cycle C_n has ceil(n/3) edges.
  for (std::size_t n = 3; n <= 12; ++n) {
    const auto g = graph::cycle(n);
    const auto expected = (n + 2) / 3;
    EXPECT_EQ(minimum_eds_size(g), expected) << "n=" << n;
  }
}

TEST(Exact, CompleteGraphOptimum) {
  // K_n needs floor(n/2) maximal-matching edges... no: a maximal matching of
  // K_n must match all but at most one node, so the minimum is floor(n/2).
  for (std::size_t n = 2; n <= 8; ++n) {
    EXPECT_EQ(minimum_eds_size(graph::complete(n)), n / 2) << "n=" << n;
  }
}

TEST(Exact, StarOptimumIsOne) {
  EXPECT_EQ(minimum_eds_size(graph::star(9)), 1u);
}

TEST(Exact, CompleteBipartiteOptimum) {
  // Any maximal matching of K_{a,b} (a <= b) has exactly a edges.
  EXPECT_EQ(minimum_eds_size(graph::complete_bipartite(3, 5)), 3u);
  EXPECT_EQ(minimum_eds_size(graph::complete_bipartite(4, 4)), 4u);
}

TEST(Exact, PetersenOptimum) {
  // The Petersen graph's minimum maximal matching has exactly 3 edges.
  EXPECT_EQ(minimum_eds_size(graph::petersen()), 3u);
}

TEST(Exact, ResultIsAlwaysAMaximalMatching) {
  Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    const auto g = graph::random_bounded_degree(16, 4, 24, rng);
    const auto m = minimum_maximal_matching(g);
    EXPECT_TRUE(analysis::is_maximal_matching(g, m));
    EXPECT_TRUE(analysis::is_edge_dominating_set(g, m));
  }
}

TEST(Exact, MatchesBruteForceOnSmallGraphs) {
  // Cross-check the branch-and-bound against exhaustive subset search.
  Rng rng(19);
  for (int trial = 0; trial < 30; ++trial) {
    const auto g = graph::random_bounded_degree(9, 4, 12, rng);
    if (g.num_edges() == 0 || g.num_edges() > 16) continue;
    const auto bb = minimum_maximal_matching(g);
    const auto bf = brute_force_minimum_eds(g);
    EXPECT_TRUE(analysis::is_edge_dominating_set(g, bf));
    // Minimum maximal matching size == minimum EDS size (Section 1.1).
    EXPECT_EQ(bb.size(), bf.size()) << "trial " << trial;
  }
}

TEST(Exact, BruteForceRejectsLargeInputs) {
  EXPECT_THROW((void)brute_force_minimum_eds(graph::complete(8)),
               InvalidArgument);
}

TEST(Exact, EmptyGraph) {
  EXPECT_EQ(minimum_eds_size(graph::SimpleGraph(5)), 0u);
  EXPECT_EQ(brute_force_minimum_eds(graph::SimpleGraph(5)).size(), 0u);
}

TEST(Exact, SearchBudgetEnforced) {
  ExactOptions options;
  options.max_search_nodes = 1;
  EXPECT_THROW((void)minimum_maximal_matching(graph::complete(8), options),
               ExecutionError);
}

TEST(Exact, HypercubeQ3) {
  // Q3's minimum maximal matching: 3 edges (known small value).
  EXPECT_EQ(minimum_eds_size(graph::hypercube(3)), 3u);
}

TEST(Exact, GridOptimaAreDominatingAndMinimal) {
  const auto g = graph::grid(3, 4);
  const auto m = minimum_maximal_matching(g);
  EXPECT_TRUE(analysis::is_maximal_matching(g, m));
  // Removing any edge from a *minimum* maximal matching must break
  // domination or maximality cannot be restored at equal size; weak check:
  // every strictly smaller subset of m is not an EDS.
  for (const auto e : m.to_vector()) {
    auto smaller = m;
    smaller.erase(e);
    EXPECT_FALSE(analysis::is_edge_dominating_set(g, smaller));
  }
}

}  // namespace
}  // namespace eds::exact
