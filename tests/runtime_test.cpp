#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "runtime/message.hpp"
#include "runtime/outputs.hpp"
#include "runtime/program.hpp"
#include "runtime/runner.hpp"
#include "util/rng.hpp"
#include "test_util.hpp"

namespace eds::runtime {
namespace {

using port::Port;
using port::PortGraphBuilder;

using test::EchoFactory;
using test::EchoProgram;

/// Outputs every port, for consistency testing.
class ClaimAllFactory final : public ProgramFactory {
  class P final : public NodeProgram {
   public:
    void start(Port degree) override { degree_ = degree; }
    void send(Round, std::span<Message>) override {}
    void receive(Round, std::span<const Message>) override { halted_ = true; }
    [[nodiscard]] bool halted() const override { return halted_; }
    [[nodiscard]] std::vector<Port> output() const override {
      std::vector<Port> out;
      for (Port i = 1; i <= degree_; ++i) out.push_back(i);
      return out;
    }

   private:
    Port degree_ = 0;
    bool halted_ = false;
  };

 public:
  [[nodiscard]] std::unique_ptr<NodeProgram> create() const override {
    return std::make_unique<P>();
  }
  [[nodiscard]] std::string name() const override { return "claim-all"; }
};

/// Outputs port 1 only (inconsistent unless the numbering is symmetric).
class ClaimPortOneOnlyFactory final : public ProgramFactory {
  class P final : public NodeProgram {
   public:
    void start(Port degree) override { degree_ = degree; }
    void send(Round, std::span<Message>) override {}
    void receive(Round, std::span<const Message>) override { halted_ = true; }
    [[nodiscard]] bool halted() const override { return halted_; }
    [[nodiscard]] std::vector<Port> output() const override {
      return degree_ >= 1 ? std::vector<Port>{1} : std::vector<Port>{};
    }

   private:
    Port degree_ = 0;
    bool halted_ = false;
  };

 public:
  [[nodiscard]] std::unique_ptr<NodeProgram> create() const override {
    return std::make_unique<P>();
  }
  [[nodiscard]] std::string name() const override { return "claim-port-one"; }
};

/// Never halts — exercises the round-limit guard.
class NeverHaltFactory final : public ProgramFactory {
  class P final : public NodeProgram {
   public:
    void start(Port) override {}
    void send(Round, std::span<Message>) override {}
    void receive(Round, std::span<const Message>) override {}
    [[nodiscard]] bool halted() const override { return false; }
    [[nodiscard]] std::vector<Port> output() const override { return {}; }
  };

 public:
  [[nodiscard]] std::unique_ptr<NodeProgram> create() const override {
    return std::make_unique<P>();
  }
  [[nodiscard]] std::string name() const override { return "never-halt"; }
};

/// Announces an out-of-range port.
class BadOutputFactory final : public ProgramFactory {
  class P final : public NodeProgram {
   public:
    void start(Port) override {}
    void send(Round, std::span<Message>) override {}
    void receive(Round, std::span<const Message>) override { halted_ = true; }
    [[nodiscard]] bool halted() const override { return halted_; }
    [[nodiscard]] std::vector<Port> output() const override { return {99}; }

   private:
    bool halted_ = false;
  };

 public:
  [[nodiscard]] std::unique_ptr<NodeProgram> create() const override {
    return std::make_unique<P>();
  }
  [[nodiscard]] std::string name() const override { return "bad-output"; }
};

TEST(Runner, RoundsCounted) {
  const auto pg = port::with_canonical_ports(graph::cycle(5));
  const auto result = run_synchronous(pg.ports(), EchoFactory(7));
  EXPECT_EQ(result.stats.rounds, 7u);
  EXPECT_EQ(result.stats.messages_sent, 7u * 10u);
  // ports_served counts the ports of non-halted nodes only; every node here
  // runs all 7 rounds, so it equals rounds x total ports.
  EXPECT_EQ(result.stats.ports_served, 7u * 10u);
}

TEST(Runner, PortsServedExcludesHaltedNodes) {
  // Nodes halt at different rounds: ports_served must charge each node only
  // for the rounds it actually ran (degree 2, halt rounds 1/2/4/4).
  const auto pg = port::with_canonical_ports(graph::cycle(4));
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (const Round rounds : {1u, 2u, 4u, 4u}) {
    programs.push_back(std::make_unique<EchoProgram>(rounds));
  }
  const auto result =
      run_synchronous_programs(pg.ports(), std::move(programs));
  EXPECT_EQ(result.stats.rounds, 4u);
  EXPECT_EQ(result.stats.ports_served, 2u * (1u + 2u + 4u + 4u));
}

TEST(Runner, ZeroMaxRoundsRejectedUpFront) {
  const auto pg = port::with_canonical_ports(graph::cycle(3));
  RunOptions options;
  options.max_rounds = 0;
  EXPECT_THROW((void)run_synchronous(pg.ports(), EchoFactory(1), options),
               InvalidArgument);
}

TEST(Runner, TraceRecordsEveryRound) {
  const auto pg = port::with_canonical_ports(graph::cycle(4));
  RunOptions options;
  options.collect_trace = true;
  const auto result = run_synchronous(pg.ports(), EchoFactory(3), options);
  ASSERT_EQ(result.trace.size(), 3u);
  EXPECT_EQ(result.trace.back().halted_nodes, 4u);
  EXPECT_EQ(result.trace.front().messages, 8u);
}

TEST(Runner, RoundLimitThrows) {
  const auto pg = port::with_canonical_ports(graph::cycle(3));
  RunOptions options;
  options.max_rounds = 10;
  EXPECT_THROW((void)run_synchronous(pg.ports(), NeverHaltFactory(), options),
               ExecutionError);
}

TEST(Runner, ImmediateHaltTakesZeroRounds) {
  // A program that halts in start() finishes before any round happens.
  class HaltAtStart final : public NodeProgram {
   public:
    void start(Port) override {}
    void send(Round, std::span<Message>) override {}
    void receive(Round, std::span<const Message>) override {}
    [[nodiscard]] bool halted() const override { return true; }
    [[nodiscard]] std::vector<Port> output() const override { return {}; }
  };
  class HaltAtStartFactory final : public ProgramFactory {
   public:
    [[nodiscard]] std::unique_ptr<NodeProgram> create() const override {
      return std::make_unique<HaltAtStart>();
    }
    [[nodiscard]] std::string name() const override { return "halt-at-start"; }
  };
  PortGraphBuilder b(std::vector<Port>{0, 0, 0});
  const auto g = b.build();
  const auto result = run_synchronous(g, HaltAtStartFactory());
  EXPECT_EQ(result.stats.rounds, 0u);

  // Degree-0 nodes under a program that never halts on its own still spin
  // send/receive rounds — the guard fires (nothing ever halts them).
  RunOptions options;
  options.max_rounds = 5;
  EXPECT_THROW((void)run_synchronous(g, NeverHaltFactory(), options),
               ExecutionError);
}

TEST(Runner, InvalidOutputPortRejected) {
  const auto pg = port::with_canonical_ports(graph::cycle(3));
  EXPECT_THROW((void)run_synchronous(pg.ports(), BadOutputFactory()),
               ExecutionError);
}

TEST(Runner, DirectedLoopDeliversToSelf) {
  // A single node with a fixed-point port: the node hears itself.
  class LoopProbe final : public NodeProgram {
   public:
    void start(Port) override {}
    void send(Round, std::span<Message> out) override { out[0] = msg(42); }
    void receive(Round, std::span<const Message> in) override {
      heard_self_ = in[0].tag == 42;
      halted_ = true;
    }
    [[nodiscard]] bool halted() const override { return halted_; }
    [[nodiscard]] std::vector<Port> output() const override {
      return heard_self_ ? std::vector<Port>{1} : std::vector<Port>{};
    }

   private:
    bool halted_ = false;
    bool heard_self_ = false;
  };
  class LoopFactory final : public ProgramFactory {
   public:
    [[nodiscard]] std::unique_ptr<NodeProgram> create() const override {
      return std::make_unique<LoopProbe>();
    }
    [[nodiscard]] std::string name() const override { return "loop-probe"; }
  };

  PortGraphBuilder b({1});
  b.fix({0, 1});
  const auto g = b.build();
  const auto result = run_synchronous(g, LoopFactory());
  EXPECT_EQ(result.outputs[0], std::vector<Port>{1});
}

TEST(Runner, UndirectedLoopRoutesBetweenOwnPorts) {
  // p(v,1) = (v,2): what v sends on port 1 arrives on its own port 2.
  class CrossProbe final : public NodeProgram {
   public:
    void start(Port) override {}
    void send(Round, std::span<Message> out) override {
      out[0] = msg(7);
      out[1] = msg(8);
    }
    void receive(Round, std::span<const Message> in) override {
      ok_ = in[0].tag == 8 && in[1].tag == 7;
      halted_ = true;
    }
    [[nodiscard]] bool halted() const override { return halted_; }
    [[nodiscard]] std::vector<Port> output() const override {
      return ok_ ? std::vector<Port>{1, 2} : std::vector<Port>{};
    }

   private:
    bool halted_ = false;
    bool ok_ = false;
  };
  class CrossFactory final : public ProgramFactory {
   public:
    [[nodiscard]] std::unique_ptr<NodeProgram> create() const override {
      return std::make_unique<CrossProbe>();
    }
    [[nodiscard]] std::string name() const override { return "cross-probe"; }
  };

  PortGraphBuilder b({2});
  b.connect({0, 1}, {0, 2});
  const auto g = b.build();
  const auto result = run_synchronous(g, CrossFactory());
  EXPECT_EQ(result.outputs[0], (std::vector<Port>{1, 2}));
}

TEST(Outputs, ValidatedEdgeSetAcceptsConsistent) {
  const auto pg = port::with_canonical_ports(graph::cycle(4));
  const auto result = run_synchronous(pg.ports(), ClaimAllFactory());
  const auto edges = validated_edge_set(pg, result);
  EXPECT_EQ(edges.size(), 4u);
}

TEST(Outputs, ValidatedEdgeSetRejectsOneSidedClaims) {
  // On a path, claiming "port 1" is not symmetric at internal nodes.
  const auto pg = port::with_canonical_ports(graph::path(3));
  const auto result = run_synchronous(pg.ports(), ClaimPortOneOnlyFactory());
  EXPECT_THROW((void)validated_edge_set(pg, result), ExecutionError);
}

TEST(Outputs, AllOutputsIdenticalDetectsSymmetry) {
  const auto pg = port::with_canonical_ports(graph::cycle(4));
  const auto all = run_synchronous(pg.ports(), ClaimAllFactory());
  EXPECT_TRUE(all_outputs_identical(all));
}

TEST(Runner, UnwrittenPortsSendSilenceEachRound) {
  // Regression: ports a program does not write in a round must carry
  // silence — the previous round's message must not "ghost" onward.
  class WriteOnceProbe final : public NodeProgram {
   public:
    void start(Port) override {}
    void send(Round round, std::span<Message> out) override {
      if (round == 1) {
        for (auto& m : out) m = msg(99);
      }
      // round 2: write nothing — the runner must deliver silence.
    }
    void receive(Round round, std::span<const Message> in) override {
      if (round == 1) {
        saw_message_ = !in.empty() && in[0].tag == 99;
      } else {
        for (const auto& m : in) saw_ghost_ = saw_ghost_ || !m.is_silence();
        halted_ = true;
      }
    }
    [[nodiscard]] bool halted() const override { return halted_; }
    [[nodiscard]] std::vector<Port> output() const override {
      std::vector<Port> out;
      if (saw_message_) out.push_back(1);
      if (saw_ghost_) out.push_back(2);
      return out;
    }

   private:
    bool halted_ = false;
    bool saw_message_ = false;
    bool saw_ghost_ = false;
  };
  class WriteOnceFactory final : public ProgramFactory {
   public:
    [[nodiscard]] std::unique_ptr<NodeProgram> create() const override {
      return std::make_unique<WriteOnceProbe>();
    }
    [[nodiscard]] std::string name() const override { return "write-once"; }
  };

  const auto pg = port::with_canonical_ports(graph::cycle(4));
  const auto result = run_synchronous(pg.ports(), WriteOnceFactory());
  for (const auto& output : result.outputs) {
    EXPECT_EQ(output, std::vector<Port>{1})
        << "round-1 message missing or a ghost message leaked into round 2";
  }
}

TEST(Runner, RunWithExplicitProgramsValidatesInput) {
  const auto pg = port::with_canonical_ports(graph::cycle(3));
  std::vector<std::unique_ptr<NodeProgram>> too_few;
  too_few.push_back(std::make_unique<EchoProgram>(1));
  EXPECT_THROW(
      (void)run_synchronous_programs(pg.ports(), std::move(too_few)),
      InvalidArgument);

  std::vector<std::unique_ptr<NodeProgram>> with_null;
  with_null.push_back(std::make_unique<EchoProgram>(1));
  with_null.push_back(nullptr);
  with_null.push_back(std::make_unique<EchoProgram>(1));
  EXPECT_THROW(
      (void)run_synchronous_programs(pg.ports(), std::move(with_null)),
      InvalidArgument);
}

TEST(Message, SilenceConvention) {
  EXPECT_TRUE(kSilence.is_silence());
  EXPECT_FALSE(msg(1).is_silence());
  EXPECT_EQ(msg(3, 1, 2, 3).arg[2], 3);
}

TEST(Transcript, RecordsDeliveredMessages) {
  const auto pg = port::with_canonical_ports(graph::path(2));
  RunOptions options;
  options.collect_messages = true;
  const auto result = run_synchronous(pg.ports(), EchoFactory(2), options);
  // 2 nodes x 1 port x 2 rounds = 4 delivered messages.
  ASSERT_EQ(result.message_log.size(), 4u);
  EXPECT_EQ(result.message_log.front().round, 1u);
  EXPECT_EQ(result.message_log.back().round, 2u);

  const auto text = format_transcript(result);
  EXPECT_NE(text.find("--- round 1 ---"), std::string::npos);
  EXPECT_NE(text.find("--- round 2 ---"), std::string::npos);
  EXPECT_NE(text.find("(0,1) -> (1,1)"), std::string::npos);
  EXPECT_NE(text.find("rounds: 2"), std::string::npos);
}

TEST(Transcript, OffByDefault) {
  const auto pg = port::with_canonical_ports(graph::path(2));
  const auto result = run_synchronous(pg.ports(), EchoFactory(2));
  EXPECT_TRUE(result.message_log.empty());
  EXPECT_FALSE(result.messages_collected);
}

TEST(Transcript, SaysSoWhenCollectionWasOff) {
  // An empty transcript must be distinguishable from "recording was off".
  const auto pg = port::with_canonical_ports(graph::path(2));
  const auto off = run_synchronous(pg.ports(), EchoFactory(2));
  const auto off_text = format_transcript(off);
  EXPECT_NE(off_text.find("without RunOptions::collect_messages"),
            std::string::npos);
  EXPECT_NE(off_text.find("rounds: 2"), std::string::npos);

  RunOptions options;
  options.collect_messages = true;
  const auto on = run_synchronous(pg.ports(), EchoFactory(2), options);
  EXPECT_EQ(format_transcript(on).find("without RunOptions::collect_messages"),
            std::string::npos);
}

}  // namespace
}  // namespace eds::runtime
