// Distributed executions vs centralised mirrors: the node programs and the
// global-visibility reimplementations must agree edge-for-edge on every
// instance.  Divergence would mean either a protocol bug (information a
// node should not have) or a schedule bug.
#include <gtest/gtest.h>

#include "algo/central.hpp"
#include "algo/driver.hpp"
#include "analysis/verify.hpp"
#include "graph/generators.hpp"
#include "lb/gadgets.hpp"
#include "port/labels.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "test_util.hpp"

namespace eds::algo {
namespace {

class OddMirrorSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(OddMirrorSweep, DistributedEqualsCentral) {
  const auto [d, seed] = GetParam();
  Rng rng(seed * 7919 + d);
  const auto pg = test::random_ported_regular(2 * d + 6, d, rng);
  const auto central = central_odd_regular(pg);
  const auto distributed =
      run_algorithm(pg, Algorithm::kOddRegular, static_cast<port::Port>(d));
  EXPECT_EQ(distributed.solution, central.after_phase2);
}

INSTANTIATE_TEST_SUITE_P(DegreeAndSeed, OddMirrorSweep,
                         ::testing::Combine(::testing::Values(1u, 3u, 5u, 7u),
                                            ::testing::Values(1u, 2u, 3u, 4u,
                                                              5u)));

class BoundedMirrorSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(BoundedMirrorSweep, DistributedEqualsCentral) {
  const auto [delta, seed] = GetParam();
  Rng rng(seed * 104729 + delta);
  const auto g = graph::random_bounded_degree(24, delta, 44, rng);
  if (g.num_edges() == 0) GTEST_SKIP();
  const auto used_delta = static_cast<port::Port>(
      std::max<std::size_t>(g.max_degree(), 2));
  const auto pg = port::with_random_ports(g, rng);
  const auto central = central_bounded_degree(pg, used_delta);
  const auto distributed = run_algorithm(pg, Algorithm::kBoundedDegree,
                                         used_delta);
  EXPECT_EQ(distributed.solution, central.solution);
}

INSTANTIATE_TEST_SUITE_P(DeltaAndSeed, BoundedMirrorSweep,
                         ::testing::Combine(::testing::Values(2u, 3u, 4u, 5u,
                                                              6u, 7u),
                                            ::testing::Values(1u, 2u, 3u, 4u)));

TEST(CentralMirror, PortOneAgreesEverywhere) {
  Rng rng(31337);
  for (const std::size_t d : {2u, 3u, 4u, 6u}) {
    for (int trial = 0; trial < 4; ++trial) {
      const auto pg = test::random_ported_regular(2 * d + 4, d, rng);
      EXPECT_EQ(run_algorithm(pg, Algorithm::kPortOne).solution,
                central_port_one(pg));
    }
  }
}

TEST(CentralMirror, OddRegularPhase1IsForestAndCover) {
  Rng rng(101);
  for (int trial = 0; trial < 8; ++trial) {
    const auto pg = test::random_ported_regular(16, 5, rng);
    const auto& g = pg.graph();
    const auto trace = central_odd_regular(pg);
    EXPECT_TRUE(analysis::is_forest(g, trace.after_phase1));
    EXPECT_TRUE(analysis::is_edge_cover(g, trace.after_phase1));
    EXPECT_TRUE(analysis::is_star_forest(g, trace.after_phase2));
    // Phase II only removes edges.
    EXPECT_EQ(trace.after_phase2.set_difference(trace.after_phase1).size(),
              0u);
  }
}

TEST(CentralMirror, BoundedPhasesSatisfySection73) {
  Rng rng(102);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = graph::random_bounded_degree(26, 5, 48, rng);
    if (g.num_edges() == 0) continue;
    const auto pg = port::with_random_ports(g, rng);
    const auto delta = static_cast<port::Port>(
        std::max<std::size_t>(g.max_degree(), 2));
    const auto trace = central_bounded_degree(pg, delta);

    // (a) M is a matching, P is a 2-matching, and they are node-disjoint.
    EXPECT_TRUE(analysis::is_matching(g, trace.m_after_phase2));
    EXPECT_TRUE(analysis::is_k_matching(g, trace.p, 2));
    EXPECT_TRUE(analysis::node_disjoint(g, trace.m_after_phase2, trace.p));

    // (b) every odd-degree node is covered by M or has an M-covered
    //     neighbour.
    std::vector<bool> m_covered(g.num_nodes(), false);
    for (const auto e : trace.m_after_phase2.to_vector()) {
      m_covered[g.edge(e).u] = m_covered[g.edge(e).v] = true;
    }
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.degree(v) % 2 == 0 || m_covered[v]) continue;
      bool neighbour_covered = false;
      for (const auto& inc : g.incidences(v)) {
        neighbour_covered = neighbour_covered || m_covered[inc.neighbour];
      }
      EXPECT_TRUE(neighbour_covered) << "node " << v;
    }

    // (c) every P edge joins nodes of equal degree.
    for (const auto e : trace.p.to_vector()) {
      EXPECT_EQ(g.degree(g.edge(e).u), g.degree(g.edge(e).v));
    }

    // Phase II only grows M; the final solution dominates.
    EXPECT_EQ(
        trace.m_after_phase1.set_difference(trace.m_after_phase2).size(), 0u);
    EXPECT_TRUE(analysis::is_edge_dominating_set(g, trace.solution));
  }
}

TEST(CentralMirror, SubdividedGadgetForcesPhaseTwo) {
  // On the subdivided-factor gadget no node has a distinguishable
  // neighbour, so phase I contributes nothing and phase II must build the
  // whole matching — the only systematic way to exercise that code path.
  Rng rng(900);
  for (const auto& base :
       {graph::torus(3, 4), graph::random_regular(12, 4, rng),
        graph::random_regular(10, 6, rng)}) {
    const auto pg = lb::subdivided_factor_gadget(base);
    const auto& g = pg.graph();

    // Sanity: the gadget really eliminates all distinguishable neighbours.
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(port::distinguishable_neighbour(pg, v), std::nullopt);
    }

    const auto delta = static_cast<port::Port>(g.max_degree());
    const auto trace = central_bounded_degree(pg, delta);
    EXPECT_EQ(trace.m_after_phase1.size(), 0u);
    EXPECT_EQ(trace.m_after_phase2.size(), base.num_nodes());
    EXPECT_TRUE(analysis::is_edge_dominating_set(g, trace.solution));

    // The distributed program must agree on this phase-II-heavy input too.
    const auto distributed =
        run_algorithm(pg, Algorithm::kBoundedDegree, delta);
    EXPECT_EQ(distributed.solution, trace.solution);
  }
}

TEST(CentralMirror, GadgetRejectsBadBases) {
  Rng rng(901);
  EXPECT_THROW((void)lb::subdivided_factor_gadget(graph::cycle(6)),
               InvalidArgument);  // k = 1
  EXPECT_THROW((void)lb::subdivided_factor_gadget(graph::petersen()),
               InvalidArgument);  // odd degree
  EXPECT_THROW((void)lb::subdivided_factor_gadget(graph::grid(3, 3)),
               InvalidArgument);  // irregular
}

TEST(CentralMirror, BoundedDegreeOnRegularLowerBoundGraph) {
  // On the Theorem 1 graph no node has a distinguishable neighbour and all
  // degrees are equal, so M stays empty and D = P = one full 2-factor.
  Rng rng(103);
  const auto g = graph::complete(5);  // placeholder sanity below uses lb
  (void)g;
  const auto pg = test::random_ported_regular(12, 4, rng);
  const auto trace = central_bounded_degree(pg, 4);
  EXPECT_TRUE(analysis::is_edge_dominating_set(pg.graph(), trace.solution));
}

}  // namespace
}  // namespace eds::algo
