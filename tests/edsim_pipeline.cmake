# Portable end-to-end smoke: generate the Petersen graph, solve it with the
# odd-regular algorithm, and verify the solution is edge-dominating against
# the exact optimum.  Runs as `cmake -DEDSIM=<path> -P edsim_pipeline.cmake`,
# so it needs no POSIX shell — execute_process pipes the two commands
# directly (this replaced an `sh -c` one-liner that could not run on
# shell-less targets).
if(NOT DEFINED EDSIM)
  message(FATAL_ERROR "pass -DEDSIM=<path to the edsim binary>")
endif()

execute_process(
  COMMAND "${EDSIM}" generate petersen
  COMMAND "${EDSIM}" solve --algorithm odd-regular --param 3 --exact --seed 7
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULTS_VARIABLE codes
)

message(STATUS "pipeline output:\n${out}")

# Both stages must exit 0: a crash (or sanitizer abort) in either half of
# the pipe fails the test even if the final output happens to look right.
foreach(code IN LISTS codes)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "pipeline stage failed (exit codes: ${codes})\n${err}")
  endif()
endforeach()

if(NOT out MATCHES "edge-dominating: yes")
  message(FATAL_ERROR "solution is not edge-dominating:\n${out}")
endif()
if(NOT out MATCHES "optimum: 3")
  message(FATAL_ERROR "exact optimum missing or wrong:\n${out}")
endif()
