// Broad parameterised sweeps: the Table 1 tightness claims and the model's
// indistinguishability guarantees, exercised across the full parameter
// ranges the benches report.
#include <gtest/gtest.h>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "factor/two_factor.hpp"
#include "graph/generators.hpp"
#include "lb/lower_bounds.hpp"
#include "port/ported_graph.hpp"
#include "port/views.hpp"
#include "runtime/runner.hpp"
#include "util/rng.hpp"
#include "test_util.hpp"

namespace eds {
namespace {

using analysis::approximation_ratio;

/// Theorem 1 + Theorem 3 tightness for every even d up to 16.
class EvenTightness : public ::testing::TestWithParam<unsigned> {};

TEST_P(EvenTightness, MeasuredRatioEqualsBound) {
  const port::Port d = GetParam();
  const auto inst = lb::even_lower_bound(d);
  const auto outcome =
      algo::run_algorithm(inst.ported, algo::Algorithm::kPortOne);
  EXPECT_EQ(approximation_ratio(outcome.solution.size(), inst.optimal.size()),
            analysis::paper_bound_regular(d));
  EXPECT_EQ(outcome.solution.size(), inst.ported.graph().num_nodes());
}

INSTANTIATE_TEST_SUITE_P(EvenDegrees, EvenTightness,
                         ::testing::Values(2u, 4u, 6u, 8u, 10u, 12u, 14u, 16u));

/// Theorem 2 + Theorem 4 tightness for every odd d up to 9.
class OddTightness : public ::testing::TestWithParam<unsigned> {};

TEST_P(OddTightness, MeasuredRatioEqualsBound) {
  const port::Port d = GetParam();
  const auto inst = lb::odd_lower_bound(d);
  const auto outcome =
      algo::run_algorithm(inst.ported, algo::Algorithm::kOddRegular, d);
  EXPECT_EQ(approximation_ratio(outcome.solution.size(), inst.optimal.size()),
            analysis::paper_bound_regular(d));
  EXPECT_EQ(outcome.solution.size(), (2u * d - 1) * d);
}

INSTANTIATE_TEST_SUITE_P(OddDegrees, OddTightness,
                         ::testing::Values(3u, 5u, 7u, 9u));

/// Corollary 1 tightness: A(∆) on the even-regular construction for ∆ up
/// to 12, both parities.
class BoundedTightness : public ::testing::TestWithParam<unsigned> {};

TEST_P(BoundedTightness, MeasuredRatioEqualsAlpha) {
  const port::Port delta = GetParam();
  const port::Port d = delta % 2 == 0 ? delta : delta - 1;
  const auto inst = lb::even_lower_bound(d);
  const auto outcome =
      algo::run_algorithm(inst.ported, algo::Algorithm::kBoundedDegree, delta);
  EXPECT_EQ(approximation_ratio(outcome.solution.size(), inst.optimal.size()),
            analysis::paper_bound_bounded(delta));
}

INSTANTIATE_TEST_SUITE_P(Deltas, BoundedTightness,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u,
                                           11u, 12u));

/// Radius-bounded indistinguishability: nodes sharing a radius-T view make
/// identical outputs under any algorithm that halts within T rounds.
TEST(RadiusViews, BoundedRadiusImpliesBoundedIndistinguishability) {
  Rng rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    const auto pg = test::random_ported_regular(14, 4, rng);
    const auto& g = pg.graph();

    // Port-one halts after exactly 1 round: radius-1 views decide outputs.
    const auto classes = port::view_classes(pg.ports(), 1);
    const auto factory = algo::make_factory(algo::Algorithm::kPortOne);
    const auto result = runtime::run_synchronous(pg.ports(), *factory);
    for (std::size_t v = 0; v < g.num_nodes(); ++v) {
      for (std::size_t u = v + 1; u < g.num_nodes(); ++u) {
        if (classes[v] == classes[u]) {
          EXPECT_EQ(result.outputs[v], result.outputs[u]);
        }
      }
    }
  }
}

/// All numbering strategies preserve the guarantee on the same graph.
TEST(NumberingStrategies, GuaranteeHoldsUnderAllStrategies) {
  Rng rng(78);
  const auto g = graph::random_regular(12, 4, rng);
  const auto exact_size = 3u;  // not needed exactly; use |E|/(2d-1) bound
  (void)exact_size;
  const port::PortedGraph strategies[] = {
      port::with_canonical_ports(g),
      port::with_random_ports(g, rng),
      factor::with_factor_ports(g),
  };
  for (const auto& pg : strategies) {
    const auto outcome = algo::run_algorithm(pg, algo::Algorithm::kPortOne);
    EXPECT_TRUE(analysis::is_edge_dominating_set(g, outcome.solution));
    // |D| <= |V| always (the counting step of Theorem 3).
    EXPECT_LE(outcome.solution.size(), g.num_nodes());
  }
}

/// Determinism: the same ported graph always yields the same output.
TEST(Determinism, RepeatedRunsAreIdentical) {
  Rng rng(79);
  const auto pg = test::random_ported_bounded(24, 5, 40, rng);
  const auto& g = pg.graph();
  const auto delta = static_cast<port::Port>(
      std::max<std::size_t>(g.max_degree(), 2));
  const auto a = algo::run_algorithm(pg, algo::Algorithm::kBoundedDegree, delta);
  const auto b = algo::run_algorithm(pg, algo::Algorithm::kBoundedDegree, delta);
  EXPECT_EQ(a.solution, b.solution);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
}

/// The odd construction's graph really is the worst case: random numberings
/// of the SAME graph can do no better than the adversarial one forces.
TEST(OddConstruction, AdversarialPortsAreEssential) {
  Rng rng(80);
  const auto inst = lb::odd_lower_bound(3);
  // Same underlying graph, random ports: ratio may improve.
  const auto random_pg = port::with_random_ports(inst.ported.graph(), rng);
  const auto adversarial =
      algo::run_algorithm(inst.ported, algo::Algorithm::kOddRegular, 3);
  const auto relaxed =
      algo::run_algorithm(random_pg, algo::Algorithm::kOddRegular, 3);
  EXPECT_TRUE(
      analysis::is_edge_dominating_set(inst.ported.graph(), relaxed.solution));
  EXPECT_LE(relaxed.solution.size(), adversarial.solution.size());
}

}  // namespace
}  // namespace eds
