#include <gtest/gtest.h>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "exact/vertex_cover.hpp"
#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"

namespace eds::exact {
namespace {

TEST(VertexCover, KnownOptima) {
  EXPECT_EQ(minimum_vertex_cover_size(graph::star(7)), 1u);
  EXPECT_EQ(minimum_vertex_cover_size(graph::complete(6)), 5u);
  EXPECT_EQ(minimum_vertex_cover_size(graph::cycle(6)), 3u);
  EXPECT_EQ(minimum_vertex_cover_size(graph::cycle(7)), 4u);
  EXPECT_EQ(minimum_vertex_cover_size(graph::path(5)), 2u);
  EXPECT_EQ(minimum_vertex_cover_size(graph::complete_bipartite(3, 9)), 3u);
  EXPECT_EQ(minimum_vertex_cover_size(graph::petersen()), 6u);
}

TEST(VertexCover, EmptyGraph) {
  EXPECT_TRUE(minimum_vertex_cover(graph::SimpleGraph(4)).empty());
}

TEST(VertexCover, KoenigOnBipartite) {
  // König: in bipartite graphs, min vertex cover = max matching.
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const auto g = graph::random_bipartite_regular(6, 3, rng);
    EXPECT_EQ(minimum_vertex_cover_size(g), 6u);  // perfect matching exists
  }
}

TEST(VertexCover, ResultIsAlwaysACover) {
  Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    const auto g = graph::random_bounded_degree(14, 4, 22, rng);
    const auto cover = minimum_vertex_cover(g);
    std::vector<bool> in(g.num_nodes(), false);
    for (const auto v : cover) in[v] = true;
    for (const auto& e : g.edges()) {
      EXPECT_TRUE(in[e.u] || in[e.v]);
    }
  }
}

TEST(VertexCoverCorollary, DoubleCoverGivesThreeApproxVc) {
  // [21] / phase III corollary: the P-nodes of the distributed 2-matching
  // form a vertex cover of size at most 3 OPT.
  Rng rng(5);
  int tested = 0;
  for (int trial = 0; trial < 25 && tested < 12; ++trial) {
    const auto g = graph::random_bounded_degree(16, 4, 26, rng);
    if (g.num_edges() < 3) continue;
    ++tested;
    const auto pg = port::with_random_ports(g, rng);
    const auto p =
        algo::run_algorithm(pg, algo::Algorithm::kDoubleCover).solution;
    const auto cover = vertex_cover_from_two_matching(g, p);
    const auto optimum = minimum_vertex_cover_size(g);
    ASSERT_GT(optimum, 0u);
    EXPECT_LE(analysis::approximation_ratio(cover.size(), optimum),
              Fraction(3))
        << "trial " << trial;
  }
  EXPECT_GE(tested, 8);
}

TEST(VertexCoverCorollary, RejectsNonDominatingInput) {
  const auto g = graph::path(5);
  EXPECT_THROW(
      (void)vertex_cover_from_two_matching(g, graph::EdgeSet(4, {0})),
      InvalidArgument);
}

TEST(VertexCoverCorollary, RejectsNonTwoMatching) {
  const auto g = graph::star(4);
  graph::EdgeSet all(4, {0, 1, 2, 3});
  EXPECT_THROW((void)vertex_cover_from_two_matching(g, all), InvalidArgument);
}

TEST(VertexCoverCorollary, TightOnTriangles) {
  // On a triangle the 2-matching can take all 3 edges -> cover of size 3,
  // optimum 2: ratio 3/2 <= 3.
  const auto g = graph::cycle(3);
  const auto pg = port::with_canonical_ports(g);
  const auto p =
      algo::run_algorithm(pg, algo::Algorithm::kDoubleCover).solution;
  const auto cover = vertex_cover_from_two_matching(g, p);
  EXPECT_LE(cover.size(), 3u);
  EXPECT_EQ(minimum_vertex_cover_size(g), 2u);
}

}  // namespace
}  // namespace eds::exact
