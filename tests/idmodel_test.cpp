#include <gtest/gtest.h>

#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "exact/exact_eds.hpp"
#include "graph/generators.hpp"
#include "idmodel/forest_matching.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "test_util.hpp"

namespace eds::idmodel {
namespace {

TEST(CvIterations, KnownValues) {
  EXPECT_EQ(cv_iterations(1), 0u);
  EXPECT_EQ(cv_iterations(3), 0u);
  EXPECT_EQ(cv_iterations(4), 1u);   // 4 bits -> colours < 8 after one step
  EXPECT_EQ(cv_iterations(8), 2u);   // 8 -> 4 -> 3
  EXPECT_EQ(cv_iterations(16), 3u);  // 16 -> 5 -> 4 -> 3
  EXPECT_EQ(cv_iterations(31), 3u);  // 31 -> 6 -> 4 -> 3
}

TEST(CvIterations, MonotoneAndLogStarFlat) {
  for (std::uint32_t b = 1; b < 31; ++b) {
    EXPECT_LE(cv_iterations(b), cv_iterations(b + 1));
  }
  // The log* hallmark: doubling the id space barely moves the count.
  EXPECT_LE(cv_iterations(31) - cv_iterations(8), 1u);
}

TEST(ForestMatching, ProducesMaximalMatchings) {
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    const auto pg = test::random_ported_bounded(30, 5, 60, rng);
    const auto& g = pg.graph();
    const auto outcome = run_forest_matching(pg);
    EXPECT_TRUE(analysis::is_maximal_matching(g, outcome.matching))
        << "trial " << trial;
  }
}

TEST(ForestMatching, TwoApproximation) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = graph::random_bounded_degree(14, 4, 22, rng);
    if (g.num_edges() == 0) continue;
    const auto pg = port::with_random_ports(g, rng);
    const auto outcome = run_forest_matching(pg);
    const auto optimum = exact::minimum_eds_size(g);
    if (optimum == 0) continue;
    EXPECT_LE(analysis::approximation_ratio(outcome.matching.size(), optimum),
              Fraction(2));
  }
}

TEST(ForestMatching, StructuredFamilies) {
  Rng rng(3);
  for (const auto& g :
       {graph::petersen(), graph::torus(4, 5), graph::complete(8),
        graph::grid(3, 6), graph::hypercube(4)}) {
    const auto pg = port::with_random_ports(g, rng);
    const auto outcome = run_forest_matching(pg);
    EXPECT_TRUE(analysis::is_maximal_matching(g, outcome.matching));
  }
}

TEST(ForestMatching, ArbitraryDistinctIdsWork) {
  Rng rng(4);
  const auto pg = test::random_ported_regular(16, 4, rng);
  const auto& g = pg.graph();
  // Non-contiguous, shuffled ids in a 20-bit space.
  std::vector<std::uint32_t> ids(g.num_nodes());
  for (std::size_t v = 0; v < ids.size(); ++v) {
    ids[v] = static_cast<std::uint32_t>(v * 37 + 11);
  }
  rng.shuffle(ids);
  const auto outcome = run_forest_matching(pg, ids, 20, 4);
  EXPECT_TRUE(analysis::is_maximal_matching(g, outcome.matching));
}

TEST(ForestMatching, RoundsDependOnIdSpace) {
  // The paper's Section 1.3 contrast: with IDs the round count grows with
  // the id space (the log* term), unlike the anonymous algorithms.
  Rng rng(5);
  const auto pg = test::random_ported_regular(12, 3, rng);
  const auto& g = pg.graph();
  std::vector<std::uint32_t> ids(g.num_nodes());
  for (std::size_t v = 0; v < ids.size(); ++v) {
    ids[v] = static_cast<std::uint32_t>(v);
  }
  const auto small = run_forest_matching(pg, ids, 4, 3);
  const auto large = run_forest_matching(pg, ids, 31, 3);
  EXPECT_LT(small.stats.rounds, large.stats.rounds);
  EXPECT_EQ(small.stats.rounds, forest_matching_schedule(3, 4));
  EXPECT_EQ(large.stats.rounds, forest_matching_schedule(3, 31));
}

TEST(ForestMatching, RejectsDuplicateIds) {
  const auto pg = port::with_canonical_ports(graph::path(3));
  const std::vector<std::uint32_t> ids{1, 1, 2};
  EXPECT_THROW((void)run_forest_matching(pg, ids, 8, 2), InternalError);
}

TEST(ForestMatching, RejectsOutOfSpaceIds) {
  const auto pg = port::with_canonical_ports(graph::path(3));
  const std::vector<std::uint32_t> ids{1, 2, 300};
  EXPECT_THROW((void)run_forest_matching(pg, ids, 8, 2), InvalidArgument);
}

TEST(ForestMatching, RejectsWrongIdCount) {
  const auto pg = port::with_canonical_ports(graph::path(3));
  EXPECT_THROW((void)run_forest_matching(pg, {1, 2}, 8, 2), InvalidArgument);
}

TEST(ForestMatching, EmptyAndTinyGraphs) {
  const auto empty = port::with_canonical_ports(graph::SimpleGraph(4));
  EXPECT_EQ(run_forest_matching(empty).matching.size(), 0u);

  const auto single = port::with_canonical_ports(graph::path(2));
  const auto outcome = run_forest_matching(single);
  EXPECT_EQ(outcome.matching.size(), 1u);
}

TEST(ForestMatching, IdPermutationChangesNothingStructural) {
  // Different id assignments may give different matchings, but always
  // maximal ones.
  Rng rng(6);
  const auto pg = test::random_ported_regular(14, 3, rng);
  const auto& g = pg.graph();
  for (int trial = 0; trial < 5; ++trial) {
    auto perm = rng.permutation(g.num_nodes());
    std::vector<std::uint32_t> ids(perm.size());
    for (std::size_t v = 0; v < perm.size(); ++v) {
      ids[v] = static_cast<std::uint32_t>(perm[v]);
    }
    const auto outcome = run_forest_matching(pg, ids, 8, 3);
    EXPECT_TRUE(analysis::is_maximal_matching(g, outcome.matching));
  }
}

}  // namespace
}  // namespace eds::idmodel
