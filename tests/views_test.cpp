#include <gtest/gtest.h>

#include "algo/driver.hpp"
#include "factor/two_factor.hpp"
#include "graph/generators.hpp"
#include "lb/lower_bounds.hpp"
#include "port/lift.hpp"
#include "port/ported_graph.hpp"
#include "port/views.hpp"
#include "runtime/runner.hpp"
#include "util/rng.hpp"
#include "test_util.hpp"

namespace eds::port {
namespace {

TEST(Views, RadiusZeroClassifiesByDegree) {
  const auto pg = with_canonical_ports(graph::star(4));
  const auto classes = view_classes(pg.ports(), 0);
  EXPECT_EQ(num_classes(classes), 2u);  // hub vs leaves
  EXPECT_EQ(classes[1], classes[2]);
  EXPECT_NE(classes[0], classes[1]);
}

TEST(Views, RefinementSeparatesPath) {
  // On a path with canonical ports, end nodes differ from internal nodes at
  // radius 0; deeper radii separate by distance to the ends.
  const auto pg = with_canonical_ports(graph::path(7));
  const auto r0 = view_classes(pg.ports(), 0);
  EXPECT_EQ(num_classes(r0), 2u);
  const auto stable = stable_view_classes(pg.ports());
  EXPECT_GT(num_classes(stable), 2u);
}

TEST(Views, FactorPortedRegularGraphIsViewHomogeneous) {
  // With factorisation ports every node looks identical at all radii —
  // this is exactly why Theorem 1's construction defeats every algorithm.
  const auto pg = factor::with_factor_ports(graph::torus(4, 5));
  const auto stable = stable_view_classes(pg.ports());
  EXPECT_EQ(num_classes(stable), 1u);
}

TEST(Views, LowerBoundConstructionClassesMatchCoveringMap) {
  for (const Port d : {3u, 5u}) {
    const auto inst = lb::odd_lower_bound(d);
    const auto stable = stable_view_classes(inst.ported.ports());
    // Nodes with the same covering image must have the same stable view.
    for (std::size_t v = 0; v < inst.covering_map.size(); ++v) {
      for (std::size_t u = v + 1; u < inst.covering_map.size(); ++u) {
        if (inst.covering_map[v] == inst.covering_map[u]) {
          EXPECT_EQ(stable[v], stable[u]);
        }
      }
    }
    // The class count is bounded by the number of covering images.
    EXPECT_LE(num_classes(stable), inst.covering_base.num_nodes());
  }
}

TEST(Views, EqualViewsForceEqualOutputs) {
  // The indistinguishability theorem, verified against the simulator: nodes
  // with equal stable views produce identical outputs under every algorithm.
  Rng rng(7);
  const auto pg = test::random_ported_regular(12, 3, rng);
  const auto& g = pg.graph();
  const auto stable = stable_view_classes(pg.ports());
  const auto factory = algo::make_factory(algo::Algorithm::kOddRegular, 3);
  const auto result = runtime::run_synchronous(pg.ports(), *factory);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    for (std::size_t u = v + 1; u < g.num_nodes(); ++u) {
      if (stable[v] == stable[u]) {
        EXPECT_EQ(result.outputs[v], result.outputs[u])
            << "nodes " << v << "," << u << " share a view but diverged";
      }
    }
  }
}

TEST(Views, CoveringMapsRespectViews) {
  for (const Port d : {2u, 4u}) {
    const auto inst = lb::even_lower_bound(d);
    EXPECT_TRUE(respects_views(inst.ported.ports(), inst.covering_base,
                               inst.covering_map));
  }
}

TEST(Views, MultigraphWithLoops) {
  PortGraphBuilder b({2, 2});
  b.connect({0, 1}, {1, 1});
  b.fix({0, 2});
  b.fix({1, 2});
  const auto g = b.build();
  const auto stable = stable_view_classes(g);
  EXPECT_EQ(num_classes(stable), 1u);  // perfectly symmetric
}

TEST(Lift, ProjectionIsACoveringMap) {
  Rng rng(11);
  const auto base = with_random_ports(graph::petersen(), rng).ports();
  for (const std::size_t layers : {1u, 2u, 3u, 5u}) {
    const auto lifted = cyclic_lift(base, layers, rng);
    lifted.validate();
    EXPECT_EQ(lifted.num_nodes(), 10 * layers);
    const auto f = lift_projection(base, layers);
    EXPECT_TRUE(is_covering_map(lifted, base, f));
  }
}

TEST(Lift, LiftsOfMultigraphsWork) {
  // Lift the Theorem 1 covering base (loops everywhere).
  Rng rng(12);
  const auto inst = lb::even_lower_bound(6);
  for (const std::size_t layers : {2u, 4u}) {
    const auto lifted = cyclic_lift(inst.covering_base, layers, rng);
    lifted.validate();
    EXPECT_TRUE(is_covering_map(lifted, inst.covering_base,
                                lift_projection(inst.covering_base, layers)));
  }
}

TEST(Lift, AlgorithmsLiftAlongLifts) {
  Rng rng(13);
  const auto base = test::random_ported_regular(8, 3, rng).ports();
  const auto lifted = cyclic_lift(base, 3, rng);
  const auto f = lift_projection(base, 3);
  const auto factory = algo::make_factory(algo::Algorithm::kOddRegular, 3);
  const auto on_base = runtime::run_synchronous(base, *factory);
  const auto on_lift = runtime::run_synchronous(lifted, *factory);
  for (std::size_t v = 0; v < lifted.num_nodes(); ++v) {
    EXPECT_EQ(on_lift.outputs[v], on_base.outputs[f[v]]);
  }
}

TEST(Lift, RejectsZeroLayers) {
  Rng rng(14);
  const auto base = with_canonical_ports(graph::cycle(4)).ports();
  EXPECT_THROW((void)cyclic_lift(base, 0, rng), InvalidArgument);
}

}  // namespace
}  // namespace eds::port
