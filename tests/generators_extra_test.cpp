#include <gtest/gtest.h>

#include <sstream>

#include "algo/driver.hpp"
#include "analysis/verify.hpp"
#include "exact/exact_eds.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"

namespace eds::graph {
namespace {

TEST(GeneratorsExtra, PrismIsThreeRegular) {
  for (const std::size_t n : {3u, 4u, 7u}) {
    const auto g = prism(n);
    EXPECT_EQ(g.num_nodes(), 2 * n);
    EXPECT_TRUE(g.is_regular(3));
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(is_bipartite(g), n % 2 == 0);
  }
  EXPECT_THROW((void)prism(2), InvalidArgument);
}

TEST(GeneratorsExtra, MoebiusLadder) {
  const auto k4 = moebius_ladder(2);
  EXPECT_TRUE(k4.is_regular(3));
  EXPECT_EQ(k4.num_edges(), 6u);  // K_4
  // A chord plus the n-edge arc between its endpoints closes an
  // (n+1)-cycle, so M_n is bipartite iff n is odd.
  const auto m5 = moebius_ladder(5);
  EXPECT_TRUE(m5.is_regular(3));
  EXPECT_TRUE(is_bipartite(m5));
  const auto m4 = moebius_ladder(4);
  EXPECT_FALSE(is_bipartite(m4));
  EXPECT_THROW((void)moebius_ladder(1), InvalidArgument);
}

TEST(GeneratorsExtra, Wheel) {
  const auto g = wheel(6);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.degree(6), 6u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_THROW((void)wheel(2), InvalidArgument);
}

TEST(GeneratorsExtra, CompleteMultipartite) {
  const auto g = complete_multipartite({2, 2, 2});  // K_{2,2,2}: octahedron
  EXPECT_TRUE(g.is_regular(4));
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_THROW((void)complete_multipartite({}), InvalidArgument);
  EXPECT_THROW((void)complete_multipartite({2, 0}), InvalidArgument);
}

TEST(GeneratorsExtra, Barbell) {
  const auto g = barbell(4, 3);
  EXPECT_EQ(g.num_nodes(), 10u);  // 2*4 cliques + 2 bridge nodes
  EXPECT_TRUE(is_connected(g));
  const auto direct = barbell(3, 1);  // cliques joined by a single edge
  EXPECT_EQ(direct.num_nodes(), 6u);
  EXPECT_TRUE(is_connected(direct));
  const auto disjoint = barbell(3, 0);
  EXPECT_EQ(num_components(disjoint), 2u);
}

TEST(GeneratorsExtra, OddRegularFamiliesSolveCleanly) {
  // Deterministic 3-regular families through the full pipeline.
  Rng rng(21);
  for (const auto& g :
       {prism(5), prism(6), moebius_ladder(4), moebius_ladder(6)}) {
    const auto pg = port::with_random_ports(g, rng);
    const auto outcome =
        algo::run_algorithm(pg, algo::Algorithm::kOddRegular, 3);
    EXPECT_TRUE(analysis::is_edge_dominating_set(g, outcome.solution));
    const auto optimum = exact::minimum_eds_size(g);
    EXPECT_LE(outcome.solution.size() * 2, optimum * 5);  // ratio <= 5/2
  }
}

TEST(GeneratorsExtra, WheelSolvesViaBoundedDegree) {
  Rng rng(22);
  const auto g = wheel(8);
  const auto pg = port::with_random_ports(g, rng);
  const auto outcome = algo::run_algorithm(
      pg, algo::Algorithm::kBoundedDegree, 8);
  EXPECT_TRUE(analysis::is_edge_dominating_set(g, outcome.solution));
}

TEST(GeneratorsExtra, RandomRegularIsWellMixed) {
  // The double-edge-swap randomiser must actually change the seed circulant.
  Rng rng(23);
  const auto a = random_regular(24, 4, rng);
  const auto b = random_regular(24, 4, rng);
  std::size_t common = 0;
  for (const auto& e : a.edges()) {
    if (b.has_edge(e.u, e.v)) ++common;
  }
  EXPECT_LT(common, a.num_edges());  // overwhelmingly unlikely to coincide
}

TEST(GeneratorsExtra, RandomRegularHighDegree) {
  // Degrees that defeat configuration-model rejection must still work.
  Rng rng(24);
  for (const std::size_t d : {6u, 8u, 10u, 12u}) {
    const auto g = random_regular(2 * d + 2, d, rng);
    EXPECT_TRUE(g.is_regular(d)) << "d=" << d;
  }
}

TEST(Dot, ExportContainsAllEdges) {
  const auto g = cycle(4);
  EdgeSet highlight(4, {0});
  std::ostringstream os;
  write_dot(os, g, &highlight, "C4");
  const auto text = os.str();
  EXPECT_NE(text.find("graph C4"), std::string::npos);
  EXPECT_NE(text.find("0 -- 1"), std::string::npos);
  EXPECT_NE(text.find("color=red"), std::string::npos);
}

TEST(Dot, NoHighlight) {
  std::ostringstream os;
  write_dot(os, path(3));
  EXPECT_EQ(os.str().find("color=red"), std::string::npos);
}

}  // namespace
}  // namespace eds::graph
