#include <gtest/gtest.h>

#include <sstream>

#include "algo/driver.hpp"
#include "analysis/verify.hpp"
#include "exact/exact_eds.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"

namespace eds::graph {
namespace {

TEST(GeneratorsExtra, CaterpillarShape) {
  // spine 4, 2 legs per spine node: 12 nodes, 3 spine edges + 8 leg edges.
  const auto g = caterpillar(4, 2);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 11u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));  // caterpillars are trees
  // Interior spine nodes: 2 spine neighbours + 2 legs.
  EXPECT_EQ(g.degree(1), 4u);
  EXPECT_EQ(g.degree(0), 3u);   // spine end
  EXPECT_EQ(g.degree(11), 1u);  // a leaf
  // Legless caterpillar degenerates to a path; single-node spine to a star.
  EXPECT_EQ(caterpillar(5, 0).num_edges(), 4u);
  EXPECT_EQ(caterpillar(1, 7).num_nodes(), 8u);
  EXPECT_THROW((void)caterpillar(0, 2), InvalidArgument);
}

TEST(GeneratorsExtra, RandomPowerLawRespectsCapAndDeterminism) {
  Rng rng(501);
  const auto g = random_power_law(200, 2.5, rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  EXPECT_GT(g.num_edges(), 0u);
  // Default cap: ceil(sqrt(200)) = 15.
  EXPECT_LE(g.max_degree(), 15u);

  Rng rng_a(77);
  Rng rng_b(77);
  const auto a = random_power_law(64, 2.0, rng_a, 8);
  const auto b = random_power_law(64, 2.0, rng_b, 8);
  std::ostringstream sa;
  std::ostringstream sb;
  write_edge_list(sa, a);
  write_edge_list(sb, b);
  EXPECT_EQ(sa.str(), sb.str()) << "same seed, same graph";
  EXPECT_LE(a.max_degree(), 8u);

  // The degree distribution is heavy-tailed: degree-1 nodes dominate
  // degree->=4 nodes by a wide margin at exponent 2.5.
  Rng rng_c(9);
  const auto big = random_power_law(2000, 2.5, rng_c);
  std::size_t ones = 0;
  std::size_t heavy = 0;
  for (NodeId v = 0; v < big.num_nodes(); ++v) {
    if (big.degree(v) <= 1) ++ones;
    if (big.degree(v) >= 4) ++heavy;
  }
  EXPECT_GT(ones, heavy * 2);

  EXPECT_THROW((void)random_power_law(1, 2.5, rng), InvalidArgument);
  EXPECT_THROW((void)random_power_law(10, 0.0, rng), InvalidArgument);
}

TEST(GeneratorsExtra, PowerLawAndCaterpillarSolveFeasibly) {
  Rng rng(502);
  for (const auto* family : {"powerlaw", "caterpillar"}) {
    const auto g = std::string(family) == "powerlaw"
                       ? random_power_law(80, 2.5, rng)
                       : caterpillar(26, 2);
    const auto pg = port::with_random_ports(g, rng);
    const auto rec = algo::recommended_for(g);
    const auto outcome = algo::run_algorithm(pg, rec.algorithm, rec.param);
    EXPECT_TRUE(analysis::is_edge_dominating_set(g, outcome.solution))
        << family;
  }
}

TEST(GeneratorsExtra, PrismIsThreeRegular) {
  for (const std::size_t n : {3u, 4u, 7u}) {
    const auto g = prism(n);
    EXPECT_EQ(g.num_nodes(), 2 * n);
    EXPECT_TRUE(g.is_regular(3));
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(is_bipartite(g), n % 2 == 0);
  }
  EXPECT_THROW((void)prism(2), InvalidArgument);
}

TEST(GeneratorsExtra, MoebiusLadder) {
  const auto k4 = moebius_ladder(2);
  EXPECT_TRUE(k4.is_regular(3));
  EXPECT_EQ(k4.num_edges(), 6u);  // K_4
  // A chord plus the n-edge arc between its endpoints closes an
  // (n+1)-cycle, so M_n is bipartite iff n is odd.
  const auto m5 = moebius_ladder(5);
  EXPECT_TRUE(m5.is_regular(3));
  EXPECT_TRUE(is_bipartite(m5));
  const auto m4 = moebius_ladder(4);
  EXPECT_FALSE(is_bipartite(m4));
  EXPECT_THROW((void)moebius_ladder(1), InvalidArgument);
}

TEST(GeneratorsExtra, Wheel) {
  const auto g = wheel(6);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.degree(6), 6u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_THROW((void)wheel(2), InvalidArgument);
}

TEST(GeneratorsExtra, CompleteMultipartite) {
  const auto g = complete_multipartite({2, 2, 2});  // K_{2,2,2}: octahedron
  EXPECT_TRUE(g.is_regular(4));
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_THROW((void)complete_multipartite({}), InvalidArgument);
  EXPECT_THROW((void)complete_multipartite({2, 0}), InvalidArgument);
}

TEST(GeneratorsExtra, Barbell) {
  const auto g = barbell(4, 3);
  EXPECT_EQ(g.num_nodes(), 10u);  // 2*4 cliques + 2 bridge nodes
  EXPECT_TRUE(is_connected(g));
  const auto direct = barbell(3, 1);  // cliques joined by a single edge
  EXPECT_EQ(direct.num_nodes(), 6u);
  EXPECT_TRUE(is_connected(direct));
  const auto disjoint = barbell(3, 0);
  EXPECT_EQ(num_components(disjoint), 2u);
}

TEST(GeneratorsExtra, OddRegularFamiliesSolveCleanly) {
  // Deterministic 3-regular families through the full pipeline.
  Rng rng(21);
  for (const auto& g :
       {prism(5), prism(6), moebius_ladder(4), moebius_ladder(6)}) {
    const auto pg = port::with_random_ports(g, rng);
    const auto outcome =
        algo::run_algorithm(pg, algo::Algorithm::kOddRegular, 3);
    EXPECT_TRUE(analysis::is_edge_dominating_set(g, outcome.solution));
    const auto optimum = exact::minimum_eds_size(g);
    EXPECT_LE(outcome.solution.size() * 2, optimum * 5);  // ratio <= 5/2
  }
}

TEST(GeneratorsExtra, WheelSolvesViaBoundedDegree) {
  Rng rng(22);
  const auto g = wheel(8);
  const auto pg = port::with_random_ports(g, rng);
  const auto outcome = algo::run_algorithm(
      pg, algo::Algorithm::kBoundedDegree, 8);
  EXPECT_TRUE(analysis::is_edge_dominating_set(g, outcome.solution));
}

TEST(GeneratorsExtra, RandomRegularIsWellMixed) {
  // The double-edge-swap randomiser must actually change the seed circulant.
  Rng rng(23);
  const auto a = random_regular(24, 4, rng);
  const auto b = random_regular(24, 4, rng);
  std::size_t common = 0;
  for (const auto& e : a.edges()) {
    if (b.has_edge(e.u, e.v)) ++common;
  }
  EXPECT_LT(common, a.num_edges());  // overwhelmingly unlikely to coincide
}

TEST(GeneratorsExtra, RandomRegularHighDegree) {
  // Degrees that defeat configuration-model rejection must still work.
  Rng rng(24);
  for (const std::size_t d : {6u, 8u, 10u, 12u}) {
    const auto g = random_regular(2 * d + 2, d, rng);
    EXPECT_TRUE(g.is_regular(d)) << "d=" << d;
  }
}

TEST(Dot, ExportContainsAllEdges) {
  const auto g = cycle(4);
  EdgeSet highlight(4, {0});
  std::ostringstream os;
  write_dot(os, g, &highlight, "C4");
  const auto text = os.str();
  EXPECT_NE(text.find("graph C4"), std::string::npos);
  EXPECT_NE(text.find("0 -- 1"), std::string::npos);
  EXPECT_NE(text.find("color=red"), std::string::npos);
}

TEST(Dot, NoHighlight) {
  std::ostringstream os;
  write_dot(os, path(3));
  EXPECT_EQ(os.str().find("color=red"), std::string::npos);
}

}  // namespace
}  // namespace eds::graph
