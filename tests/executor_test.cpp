// The executor layer: the backend contract shared by InProcessExecutor and
// ProcessShardExecutor, the NDJSON wire codecs, and the process-sharding
// failure modes (worker death, protocol violations) that the in-process
// backend can never hit.
//
// Tests that fork real worker subprocesses resolve the edsim binary from
// the EDSIM_BIN_PATH compile definition (set by tests/CMakeLists.txt) with
// an EDSIM_BIN environment override, and skip when neither points at an
// executable.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algo/driver.hpp"
#include "graph/generators.hpp"
#include "port/io.hpp"
#include "port/ported_graph.hpp"
#include "runtime/batch.hpp"
#include "runtime/executor.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/shard.hpp"
#include "util/error.hpp"
#include "test_util.hpp"

namespace eds::runtime {
namespace {

#define REQUIRE_EDSIM_OR_SKIP(var)                                        \
  const std::string var = test::edsim_binary();                           \
  if (var.empty()) GTEST_SKIP() << "edsim binary not found (set EDSIM_BIN)"

/// A job any backend can run: factory for in-process execution, JobSpec
/// for process shards.  The factory must outlive the returned job.
BatchJob shippable_job(const port::PortGraph& g, const ProgramFactory& factory,
                       const std::string& token, Port param,
                       Round max_rounds = 100000) {
  BatchJob job;
  job.graph = &g;
  job.factory = &factory;
  job.options.max_rounds = max_rounds;
  JobSpec spec;
  spec.algorithm = token;
  spec.param = param;
  spec.group = structural_hash(g);
  job.spec = spec;
  return job;
}

// ---------------------------------------------------------------------------
// Wire codecs.

TEST(WireCodec, JobRoundTripsIncludingGraphText) {
  const auto pg = port::with_canonical_ports(graph::cycle(5));
  WireJob job;
  job.index = 42;
  job.algorithm = "bounded-degree";
  job.param = 3;
  job.threads = 2;
  job.max_rounds = 12345;
  job.graph_text = port::to_port_graph_string(pg.ports());
  ASSERT_NE(job.graph_text.find('\n'), std::string::npos)
      << "the interesting case is multi-line text";

  const auto line = encode_wire_job(job);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "one job = one line";
  const auto back = decode_wire_job(line);
  EXPECT_EQ(back.index, job.index);
  EXPECT_EQ(back.algorithm, job.algorithm);
  EXPECT_EQ(back.param, job.param);
  EXPECT_EQ(back.threads, job.threads);
  EXPECT_EQ(back.max_rounds, job.max_rounds);
  EXPECT_EQ(back.graph_text, job.graph_text);

  // The text form still parses into the same structure.
  const auto g = port::from_port_graph_string(back.graph_text);
  EXPECT_EQ(g.num_nodes(), pg.ports().num_nodes());
  EXPECT_EQ(structural_hash(g), structural_hash(pg.ports()));
}

TEST(WireCodec, ResultRoundTripsOutputsAndStats) {
  RunResult result;
  result.outputs = {{1, 2}, {}, {3}};
  result.stats.rounds = 7;
  result.stats.messages_sent = 1234567890123ull;
  result.stats.ports_served = 42;

  const auto line = encode_wire_result(9, result);
  const auto parsed = decode_worker_line(line);
  ASSERT_EQ(parsed.kind, WorkerLine::Kind::kResult);
  EXPECT_EQ(parsed.index, 9u);
  EXPECT_TRUE(parsed.result == result);
}

TEST(WireCodec, ErrorAndSummaryRoundTrip) {
  const auto err =
      decode_worker_line(encode_wire_error(3, "bad \"quote\"\nand newline"));
  ASSERT_EQ(err.kind, WorkerLine::Kind::kError);
  EXPECT_EQ(err.index, 3u);
  EXPECT_EQ(err.message, "bad \"quote\"\nand newline");

  WorkerSummary summary;
  summary.jobs = 11;
  summary.plans_compiled = 4;
  summary.plan_hits = 7;
  const auto parsed = decode_worker_line(encode_worker_summary(summary));
  ASSERT_EQ(parsed.kind, WorkerLine::Kind::kSummary);
  EXPECT_EQ(parsed.summary.jobs, 11u);
  EXPECT_EQ(parsed.summary.plans_compiled, 4u);
  EXPECT_EQ(parsed.summary.plan_hits, 7u);
}

TEST(WireCodec, RejectsForeignSchemaAndMalformedLines) {
  WireJob job;
  job.algorithm = "port-one";
  job.graph_text = "ports 0\n";
  auto line = encode_wire_job(job);
  const auto pos = line.find("\"schema\":2");
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, 10, "\"schema\":9");
  EXPECT_THROW((void)decode_wire_job(line), InvalidArgument);

  EXPECT_THROW((void)decode_wire_job("not json"), InvalidArgument);
  EXPECT_THROW((void)decode_wire_job("{\"schema\":1,\"job\":{}}"),
               InvalidArgument);
  EXPECT_THROW((void)decode_worker_line("{\"schema\":1,\"what\":{}}"),
               InvalidArgument);
  EXPECT_THROW(
      (void)decode_worker_line(encode_wire_result(0, {}) + "trailing"),
      InvalidArgument);
}

// ---------------------------------------------------------------------------
// The in-process backend behind the Executor interface.

TEST(InProcessExecutor, MatchesBatchRunnerThroughTheInterface) {
  auto rng = test::make_rng(0xE8EC);
  const auto a = test::random_ported_regular(12, 3, rng);
  const auto b = port::with_canonical_ports(graph::cycle(9));
  const auto bounded = algo::make_factory(algo::Algorithm::kBoundedDegree, 3);
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  const std::vector<BatchJob> jobs{
      shippable_job(a.ports(), *bounded, "bounded-degree", 3),
      shippable_job(b.ports(), *port_one, "port-one", 0),
      shippable_job(a.ports(), *bounded, "bounded-degree", 3),
  };

  const InProcessExecutor executor(3);
  const Executor& backend = executor;  // the polymorphic surface
  const auto direct = backend.run(jobs);
  const auto via_runner = BatchRunner(&executor).run(jobs);
  ASSERT_EQ(direct.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_TRUE(direct[i] == via_runner[i]) << "job " << i;
  }

  std::vector<std::size_t> order;
  backend.run_streaming(jobs, [&](std::size_t i, RunResult&& result) {
    EXPECT_TRUE(result == direct[i]);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Process sharding: validation that needs no subprocess.

TEST(ProcessShardExecutor, RejectsUnshippableJobsUpFront) {
  const ProcessShardExecutor executor({"/bin/true"}, 2);
  const auto pg = port::with_canonical_ports(graph::cycle(4));
  const auto factory = algo::make_factory(algo::Algorithm::kPortOne);

  BatchJob no_spec;
  no_spec.graph = &pg.ports();
  no_spec.factory = factory.get();
  EXPECT_THROW(
      executor.run_streaming({no_spec}, [](std::size_t, RunResult&&) {}),
      InvalidArgument);

  auto traced = shippable_job(pg.ports(), *factory, "port-one", 0);
  traced.options.collect_trace = true;
  EXPECT_THROW(
      executor.run_streaming({traced}, [](std::size_t, RunResult&&) {}),
      InvalidArgument);
  // stream() consults the backend's validate() before the driver starts,
  // so the misconfiguration surfaces here and not from the first next().
  EXPECT_THROW((void)BatchRunner(&executor).stream({traced}),
               InvalidArgument);

  // An empty batch spawns nothing and succeeds.
  executor.run_streaming({}, [](std::size_t, RunResult&&) { FAIL(); });
  EXPECT_THROW(ProcessShardExecutor({}, 1), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Process sharding against the real worker binary.

TEST(ProcessShardExecutor, BitIdenticalToInProcessAcrossShardCounts) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  auto rng = test::make_rng(0x5A4D);
  const auto a = test::random_ported_regular(14, 4, rng);
  const auto b = port::with_canonical_ports(graph::cycle(10));
  const auto bounded = algo::make_factory(algo::Algorithm::kBoundedDegree, 4);
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);

  std::vector<BatchJob> jobs;
  for (int r = 0; r < 3; ++r) {
    jobs.push_back(shippable_job(a.ports(), *bounded, "bounded-degree", 4));
    jobs.push_back(shippable_job(b.ports(), *port_one, "port-one", 0));
  }

  const auto expected = InProcessExecutor(2).run(jobs);
  for (const unsigned shards : {1u, 3u}) {
    const ProcessShardExecutor executor({bin, "worker"}, shards);
    std::vector<std::size_t> order;
    std::vector<RunResult> got(jobs.size());
    executor.run_streaming(jobs, [&](std::size_t i, RunResult&& result) {
      order.push_back(i);
      got[i] = std::move(result);
    });
    ASSERT_EQ(order.size(), jobs.size()) << "shards=" << shards;
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(order[i], i) << "delivery must be in job order";
      EXPECT_TRUE(got[i] == expected[i])
          << "job " << i << " differs at shards=" << shards;
    }
  }
}

TEST(ProcessShardExecutor, GroupAffinityKeepsPlanCountersExact) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  auto rng = test::make_rng(0x6A0F);
  const auto a = test::random_ported_regular(12, 3, rng);
  const auto b = test::random_ported_regular(16, 3, rng);
  const auto bounded = algo::make_factory(algo::Algorithm::kBoundedDegree, 3);

  std::vector<BatchJob> jobs;
  for (int r = 0; r < 3; ++r) {
    jobs.push_back(shippable_job(a.ports(), *bounded, "bounded-degree", 3));
    jobs.push_back(shippable_job(b.ports(), *bounded, "bounded-degree", 3));
  }

  // More shards than structures: affinity must still send every repeat of
  // one structure to one worker, so exactly two plans are compiled overall
  // — the same counters a single in-process cache would report.
  const ProcessShardExecutor executor({bin, "worker"}, 4);
  (void)executor.run(jobs);
  const auto stats = executor.stats();
  EXPECT_EQ(stats.jobs_shipped, jobs.size());
  EXPECT_EQ(stats.plans_compiled, 2u);
  EXPECT_EQ(stats.plan_hits, jobs.size() - 2);
  EXPECT_GE(stats.workers_spawned, 1u);
  EXPECT_LE(stats.workers_spawned, 2u) << "only non-empty shards are forked";
}

TEST(ProcessShardExecutor, JobErrorInsideAWorkerFollowsThePrefixRule) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  const auto pg = port::with_canonical_ports(graph::cycle(6));
  const auto bounded = algo::make_factory(algo::Algorithm::kBoundedDegree, 2);

  // One shard, jobs in order; job 2's round cap is too tight and fails in
  // the worker, which reports it and keeps going.
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(shippable_job(pg.ports(), *bounded, "bounded-degree", 2,
                                 i == 2 ? 1 : 100000));
  }
  const ProcessShardExecutor executor({bin, "worker"}, 1);
  std::vector<std::size_t> delivered;
  try {
    executor.run_streaming(jobs, [&](std::size_t i, RunResult&&) {
      delivered.push_back(i);
    });
    FAIL() << "the failed job must be rethrown";
  } catch (const ExecutionError& e) {
    EXPECT_NE(std::string(e.what()).find("process shard"), std::string::npos);
  }
  EXPECT_EQ(delivered, (std::vector<std::size_t>{0, 1}));
}

TEST(ProcessShardExecutor, WorkerDeathFailsItsRemainingJobsWithTheExitStatus) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  const auto pg = port::with_canonical_ports(graph::cycle(8));
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  const std::vector<BatchJob> jobs(
      5, shippable_job(pg.ports(), *port_one, "port-one", 0));

  // The worker's --fail-after hook makes it exit 7 after two results.  In
  // strict mode (max_retries = 0 — the pre-resilience contract this test
  // pins; the default retries instead, see resilience_test.cpp) the
  // delivered prefix is exactly {0, 1} and the rethrow names the status.
  ProcessShardExecutor::Options strict;
  strict.max_retries = 0;
  const ProcessShardExecutor executor({bin, "worker", "--fail-after", "2"}, 1,
                                      strict);
  std::vector<std::size_t> delivered;
  try {
    executor.run_streaming(jobs, [&](std::size_t i, RunResult&&) {
      delivered.push_back(i);
    });
    FAIL() << "a dead worker must surface as a failure";
  } catch (const ExecutionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("status 7"), std::string::npos) << what;
  }
  EXPECT_EQ(delivered, (std::vector<std::size_t>{0, 1}));
}

TEST(ProcessShardExecutor, PostCompletionWorkerDeathStillFailsTheBatch) {
  REQUIRE_EDSIM_OR_SKIP(bin);
  const auto pg = port::with_canonical_ports(graph::cycle(5));
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  const std::vector<BatchJob> jobs(
      3, shippable_job(pg.ports(), *port_one, "port-one", 0));

  // --fail-after 3 lets the worker answer every job and *then* die
  // without a summary: all results are delivered (they were verified in
  // order), but in strict mode the batch must still fail — the counters
  // are incomplete and the worker broke protocol.  (The resilient default
  // absorbs this as summaries_lost; see resilience_test.cpp.)
  ProcessShardExecutor::Options strict;
  strict.max_retries = 0;
  const ProcessShardExecutor executor({bin, "worker", "--fail-after", "3"}, 1,
                                      strict);
  std::vector<std::size_t> delivered;
  try {
    executor.run_streaming(jobs, [&](std::size_t i, RunResult&&) {
      delivered.push_back(i);
    });
    FAIL() << "a post-completion death must surface as a failure";
  } catch (const ExecutionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("after completing its jobs"), std::string::npos)
        << what;
    EXPECT_NE(what.find("status 7"), std::string::npos) << what;
  }
  EXPECT_EQ(delivered, (std::vector<std::size_t>{0, 1, 2}))
      << "delivery itself is complete before the failure";
}

TEST(ProcessShardExecutor, NonsenseWorkerCommandFailsEveryJobCleanly) {
  const auto pg = port::with_canonical_ports(graph::cycle(4));
  const auto port_one = algo::make_factory(algo::Algorithm::kPortOne);
  const std::vector<BatchJob> jobs(
      3, shippable_job(pg.ports(), *port_one, "port-one", 0));

  // /bin/false speaks no protocol and exits immediately; nothing is
  // delivered and the death is reported, with no hang and no zombie.
  // Strict mode keeps this fail-fast (retrying /bin/false would only
  // burn backoff sleeps; the breaker path is covered in resilience_test).
  ProcessShardExecutor::Options strict;
  strict.max_retries = 0;
  const ProcessShardExecutor executor({"/bin/false"}, 2, strict);
  std::size_t delivered = 0;
  EXPECT_THROW(executor.run_streaming(
                   jobs, [&](std::size_t, RunResult&&) { ++delivered; }),
               ExecutionError);
  EXPECT_EQ(delivered, 0u);
}

}  // namespace
}  // namespace eds::runtime
