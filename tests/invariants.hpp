// The shared EDS invariant-checking harness.
//
// Three properties recur across the engine, async, fuzz, and adversary
// suites, previously re-asserted ad hoc in each:
//
//  1. Feasibility — the selected edge set is an edge dominating set of the
//     underlying simple graph.
//  2. Approximation bound — |D| / |D*| stays within the paper's Table 1
//     guarantee for the algorithm that produced it (checked only when an
//     exact optimum is computable and a bound applies).
//  3. Endpoint consistency — i ∈ X(v) with p(v, i) = (u, j) implies
//     j ∈ X(u): no edge is claimed from one side only.
//
// check_eds_invariants is the one entry point.  The PortedGraph overload
// runs all three on a driver outcome; the PortGraph overload runs the
// structural consistency check on a raw multigraph run (no centralised
// edge semantics exist there).  Both emit gtest EXPECT failures with
// context rather than throwing, so fuzz loops keep going and report every
// violation of a batch.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "exact/exact_eds.hpp"
#include "graph/simple_graph.hpp"
#include "port/port_graph.hpp"
#include "port/ported_graph.hpp"
#include "runtime/outputs.hpp"
#include "runtime/runner.hpp"
#include "util/fraction.hpp"

namespace eds::test {

/// Edge-count ceiling for computing the exact optimum inside an invariant
/// check: large enough for every fixture the suites use, small enough that
/// a fuzz batch stays fast.
inline constexpr std::size_t kInvariantExactEdgeLimit = 24;

/// The Table 1 guarantee applicable to `alg` on `pg`, if any.  `param` is
/// the algorithm parameter the run used (0 = derive from the graph: the
/// max degree).  Algorithms without a stated bound on general instances
/// (all-edges, port-one on irregular graphs) yield nullopt — feasibility
/// and consistency still apply to them.
inline std::optional<Fraction> applicable_paper_bound(
    const port::PortedGraph& pg, algo::Algorithm alg, port::Port param = 0) {
  const auto& g = pg.graph();
  std::size_t max_degree = 0;
  std::size_t min_degree = g.num_nodes() == 0 ? 0 : g.num_edges() * 2;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    max_degree = std::max<std::size_t>(max_degree, g.degree(v));
    min_degree = std::min<std::size_t>(min_degree, g.degree(v));
  }
  const bool regular = g.num_nodes() > 0 && max_degree == min_degree;
  switch (alg) {
    case algo::Algorithm::kOddRegular:
      if (regular && max_degree % 2 == 1) {
        return analysis::paper_bound_regular(max_degree);
      }
      return std::nullopt;
    case algo::Algorithm::kBoundedDegree:
    case algo::Algorithm::kDoubleCover: {
      const auto delta = param != 0 ? param : max_degree;
      if (delta == 0 || max_degree > delta) return std::nullopt;
      return analysis::paper_bound_bounded(delta);
    }
    default:
      return std::nullopt;
  }
}

/// Full invariant suite on a driver outcome: feasibility always,
/// approximation bound when one applies and the instance is small enough
/// to solve exactly.  (Consistency already held or the driver would have
/// thrown while converting outputs; the PortGraph overload is where raw
/// runs get that check.)
inline void check_eds_invariants(const port::PortedGraph& pg,
                                 const algo::EdsOutcome& outcome,
                                 algo::Algorithm alg, port::Port param = 0,
                                 const std::string& context = "") {
  const auto& g = pg.graph();
  EXPECT_TRUE(analysis::is_edge_dominating_set(g, outcome.solution))
      << context << ": " << algo::algorithm_token(alg)
      << " output is not an edge dominating set";
  if (g.num_edges() == 0 || g.num_edges() > kInvariantExactEdgeLimit) return;
  const auto optimum = exact::minimum_eds_size(g);
  if (optimum == 0) return;
  const auto ratio = analysis::approximation_ratio(outcome.solution.size(),
                                                   optimum);
  EXPECT_GE(ratio, Fraction(1))
      << context << ": solution smaller than the optimum — a verifier bug";
  if (const auto bound = applicable_paper_bound(pg, alg, param)) {
    EXPECT_LE(ratio, *bound)
        << context << ": " << algo::algorithm_token(alg) << " ratio "
        << ratio << " exceeds the paper bound " << *bound;
  }
}

/// Structural overload for raw multigraph runs: endpoint consistency via
/// validated_selection_size (throws on a one-sided claim, so the check is
/// an EXPECT_NO_THROW with context).  Intended for fault-free executions;
/// degraded runs should measure inconsistency (consistent_selection_size,
/// runtime::measure_schedule) instead of asserting its absence.
inline void check_eds_invariants(const port::PortGraph& g,
                                 const runtime::RunResult& result,
                                 const std::string& context = "") {
  EXPECT_NO_THROW((void)runtime::validated_selection_size(g, result))
      << context << ": output claims an edge from one side only";
}

}  // namespace eds::test
