// End-to-end integration sweeps: every algorithm x every graph family x
// several port numberings, checked for feasibility, guarantee and locality.
#include <gtest/gtest.h>

#include <set>

#include "algo/bounded_degree.hpp"
#include "algo/driver.hpp"
#include "algo/odd_regular.hpp"
#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "baseline/baseline.hpp"
#include "exact/exact_eds.hpp"
#include "factor/two_factor.hpp"
#include "graph/generators.hpp"
#include "lb/lower_bounds.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "test_util.hpp"

namespace eds {
namespace {

using algo::Algorithm;
using analysis::approximation_ratio;

/// (d, seed) sweep for the regular pipeline: the recommended algorithm on a
/// random d-regular graph with random ports is a valid EDS within the bound.
class RegularPipeline
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(RegularPipeline, RecommendedAlgorithmStaysWithinTable1) {
  const auto [d, seed] = GetParam();
  Rng rng(seed * 1000 + d);
  const std::size_t n = 2 * d + 6;
  const auto g = graph::random_regular(n, d, rng);
  const auto rec = algo::recommended_for(g);
  const auto pg = port::with_random_ports(g, rng);
  const auto outcome = algo::run_algorithm(pg, rec.algorithm, rec.param);
  ASSERT_TRUE(analysis::is_edge_dominating_set(g, outcome.solution));

  // Guarantee vs the exact optimum where the solver is comfortable.
  if (g.num_edges() <= 60) {
    const auto optimum = exact::minimum_eds_size(g);
    EXPECT_LE(approximation_ratio(outcome.solution.size(), optimum),
              analysis::paper_bound_regular(d))
        << "d=" << d << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DegreeAndSeed, RegularPipeline,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Integration, CanonicalVsRandomPortsBothFeasible) {
  Rng rng(55);
  const auto g = graph::random_regular(16, 3, rng);
  const auto canonical = port::with_canonical_ports(g);
  const auto random = port::with_random_ports(g, rng);
  for (const auto* pg : {&canonical, &random}) {
    const auto outcome = algo::run_algorithm(*pg, Algorithm::kOddRegular, 3);
    EXPECT_TRUE(analysis::is_edge_dominating_set(g, outcome.solution));
  }
}

TEST(Integration, FactorPortsAreTheAdversarialCaseForPortOne) {
  // Factor ports force port-one to select a whole 2-factor (|V| edges);
  // random ports typically do better.  Both stay within the bound.
  Rng rng(56);
  const auto g = graph::random_regular(14, 4, rng);
  const auto adversarial = factor::with_factor_ports(g);
  const auto friendly = port::with_random_ports(g, rng);
  const auto bad =
      algo::run_algorithm(adversarial, Algorithm::kPortOne).solution.size();
  const auto good =
      algo::run_algorithm(friendly, Algorithm::kPortOne).solution.size();
  EXPECT_EQ(bad, g.num_nodes());
  EXPECT_LE(good, bad);
}

TEST(Integration, DistributedNeverBeatsExactAndRespectsTwoMatchingShape) {
  Rng rng(57);
  for (int trial = 0; trial < 6; ++trial) {
    const auto g = graph::random_bounded_degree(15, 4, 22, rng);
    if (g.num_edges() < 3) continue;
    const auto pg = port::with_random_ports(g, rng);
    const auto delta = static_cast<port::Port>(
        std::max<std::size_t>(g.max_degree(), 2));
    const auto dist =
        algo::run_algorithm(pg, Algorithm::kBoundedDegree, delta).solution;
    const auto optimum = exact::minimum_eds_size(g);
    EXPECT_GE(dist.size(), optimum);
  }
}

TEST(Integration, BaselineComparisonOrdering) {
  // greedy maximal matching <= 2 OPT; distributed <= alpha(Delta) OPT.
  Rng rng(58);
  const auto g = graph::random_regular(12, 4, rng);
  const auto optimum = exact::minimum_eds_size(g);
  const auto greedy = baseline::greedy_maximal_matching(g).size();
  EXPECT_LE(approximation_ratio(greedy, optimum), Fraction(2));
}

TEST(Integration, MessageCountsAreBoundedByPortsTimesRounds) {
  Rng rng(59);
  const auto pg = test::random_ported_regular(20, 5, rng);
  const auto& g = pg.graph();
  const auto outcome = algo::run_algorithm(pg, Algorithm::kOddRegular, 5);
  const auto ports = 2 * g.num_edges();
  EXPECT_LE(outcome.stats.messages_sent,
            static_cast<std::uint64_t>(ports) * outcome.stats.rounds);
}

TEST(Integration, LocalityRoundsDependOnlyOnDegreeParameter) {
  // The running time O(d^2) is independent of n: Table 1's "Time" column.
  Rng rng(60);
  for (const port::Port d : {3u, 5u}) {
    std::set<runtime::Round> rounds;
    for (const std::size_t n : {2 * d + 2, 4 * d + 4, 8 * d + 8}) {
      const auto pg = test::random_ported_regular(n, d, rng);
      rounds.insert(
          algo::run_algorithm(pg, Algorithm::kOddRegular, d).stats.rounds);
    }
    EXPECT_EQ(rounds.size(), 1u) << "round count varied with n for d=" << d;
  }
}

TEST(Integration, MixedComponentGraph) {
  // Disconnected graph mixing a cycle, a tree and isolated nodes.
  Rng rng(61);
  auto mixed = graph::disjoint_union(graph::cycle(6), graph::random_tree(8, rng));
  mixed = graph::disjoint_union(mixed, graph::SimpleGraph(3));
  const auto pg = port::with_random_ports(mixed, rng);
  const auto delta = static_cast<port::Port>(mixed.max_degree());
  const auto outcome = algo::run_algorithm(pg, Algorithm::kBoundedDegree, delta);
  EXPECT_TRUE(analysis::is_edge_dominating_set(mixed, outcome.solution));
}

TEST(Integration, Table1RowByRowOnWorstCases) {
  // The whole Table 1, in one test: lower-bound instances + matching upper
  // bounds, compared as exact rationals.
  for (const port::Port d : {2u, 4u, 6u}) {
    const auto inst = lb::even_lower_bound(d);
    const auto outcome = algo::run_algorithm(inst.ported, Algorithm::kPortOne);
    EXPECT_EQ(approximation_ratio(outcome.solution.size(), inst.optimal.size()),
              analysis::paper_bound_regular(d));
  }
  for (const port::Port d : {3u, 5u}) {
    const auto inst = lb::odd_lower_bound(d);
    const auto outcome =
        algo::run_algorithm(inst.ported, Algorithm::kOddRegular, d);
    EXPECT_EQ(approximation_ratio(outcome.solution.size(), inst.optimal.size()),
              analysis::paper_bound_regular(d));
  }
}

}  // namespace
}  // namespace eds
