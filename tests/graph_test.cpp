#include <gtest/gtest.h>

#include <sstream>

#include "graph/edge_set.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "graph/simple_graph.hpp"

namespace eds::graph {
namespace {

TEST(SimpleGraph, EmptyGraph) {
  const SimpleGraph g(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_TRUE(g.is_regular(0));
}

TEST(SimpleGraph, FromEdgesNormalises) {
  const auto g = SimpleGraph::from_edges(3, {{2, 0}, {1, 2}});
  EXPECT_EQ(g.edge(0).u, 0u);
  EXPECT_EQ(g.edge(0).v, 2u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(SimpleGraph, RejectsLoops) {
  EXPECT_THROW((void)SimpleGraph::from_edges(2, {{1, 1}}), InvalidStructure);
}

TEST(SimpleGraph, RejectsParallelEdges) {
  EXPECT_THROW((void)SimpleGraph::from_edges(2, {{0, 1}, {1, 0}}),
               InvalidStructure);
}

TEST(SimpleGraph, RejectsOutOfRange) {
  EXPECT_THROW((void)SimpleGraph::from_edges(2, {{0, 2}}), InvalidStructure);
}

TEST(SimpleGraph, FindEdge) {
  const auto g = SimpleGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.find_edge(2, 1), EdgeId{1});
  EXPECT_EQ(g.find_edge(0, 3), std::nullopt);
  EXPECT_TRUE(g.has_edge(3, 2));
}

TEST(SimpleGraph, EdgeOther) {
  const Edge e{3, 7};
  EXPECT_EQ(e.other(3), 7u);
  EXPECT_EQ(e.other(7), 3u);
  EXPECT_THROW((void)e.other(5), InvalidArgument);
}

TEST(SimpleGraph, EdgeAdjacency) {
  const Edge e{1, 2};
  EXPECT_TRUE(e.adjacent_to(Edge{2, 3}));
  EXPECT_FALSE(e.adjacent_to(Edge{3, 4}));
}

TEST(SimpleGraph, IncidencesSorted) {
  const auto g = SimpleGraph::from_edges(4, {{0, 3}, {0, 1}, {0, 2}});
  const auto inc = g.incidences(0);
  ASSERT_EQ(inc.size(), 3u);
  EXPECT_EQ(inc[0].neighbour, 1u);
  EXPECT_EQ(inc[1].neighbour, 2u);
  EXPECT_EQ(inc[2].neighbour, 3u);
}

TEST(GraphBuilder, BoundsCheckedEagerly) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), InvalidArgument);
}

TEST(EdgeSet, InsertEraseContains) {
  EdgeSet s(5);
  EXPECT_TRUE(s.insert(2));
  EXPECT_FALSE(s.insert(2));
  EXPECT_TRUE(s.contains(2));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.erase(2));
  EXPECT_FALSE(s.erase(2));
  EXPECT_TRUE(s.empty());
}

TEST(EdgeSet, SetAlgebra) {
  EdgeSet a(4, {0, 1});
  EdgeSet b(4, {1, 2});
  EXPECT_EQ(a.set_union(b).to_vector(), (std::vector<EdgeId>{0, 1, 2}));
  EXPECT_EQ(a.set_intersection(b).to_vector(), (std::vector<EdgeId>{1}));
  EXPECT_EQ(a.set_difference(b).to_vector(), (std::vector<EdgeId>{0}));
}

TEST(EdgeSet, UniverseMismatchThrows) {
  EdgeSet a(4);
  EdgeSet b(5);
  EXPECT_THROW((void)a.set_union(b), InvalidArgument);
}

TEST(EdgeSet, DegreeAndCover) {
  const auto g = SimpleGraph::from_edges(3, {{0, 1}, {1, 2}});
  EdgeSet s(2, {0});
  EXPECT_EQ(degree_in_set(g, s, 1), 1u);
  EXPECT_TRUE(covers_node(g, s, 0));
  EXPECT_FALSE(covers_node(g, s, 2));
}

TEST(Generators, Path) {
  const auto g = path(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_forest(g));
}

TEST(Generators, Cycle) {
  const auto g = cycle(6);
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(is_forest(g));
  EXPECT_THROW((void)cycle(2), InvalidArgument);
}

TEST(Generators, Complete) {
  const auto g = complete(6);
  EXPECT_TRUE(g.is_regular(5));
  EXPECT_EQ(g.num_edges(), 15u);
}

TEST(Generators, CompleteBipartite) {
  const auto g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.degree(3), 3u);
}

TEST(Generators, Star) {
  const auto g = star(7);
  EXPECT_EQ(g.degree(0), 7u);
  EXPECT_EQ(g.max_degree(), 7u);
  EXPECT_TRUE(is_forest(g));
}

TEST(Generators, CrownIsRegularBipartite) {
  const auto g = crown(4);
  EXPECT_TRUE(g.is_regular(3));
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_FALSE(g.has_edge(0, 4));  // the removed perfect matching
}

TEST(Generators, Hypercube) {
  const auto g = hypercube(4);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_TRUE(g.is_regular(4));
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Grid) {
  const auto g = grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 17u);
  EXPECT_TRUE(is_bipartite(g));
}

TEST(Generators, TorusIsFourRegular) {
  const auto g = torus(4, 5);
  EXPECT_TRUE(g.is_regular(4));
  EXPECT_TRUE(is_connected(g));
  EXPECT_THROW((void)torus(2, 5), InvalidArgument);
}

TEST(Generators, Circulant) {
  const auto g = circulant(10, {1, 2});
  EXPECT_TRUE(g.is_regular(4));
  const auto h = circulant(10, {5});  // antipodal offset: degree 1
  EXPECT_TRUE(h.is_regular(1));
  EXPECT_THROW((void)circulant(10, {0}), InvalidArgument);
  EXPECT_THROW((void)circulant(10, {6}), InvalidArgument);
  EXPECT_THROW((void)circulant(10, {2, 2}), InvalidArgument);
}

TEST(Generators, Petersen) {
  const auto g = petersen();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_TRUE(g.is_regular(3));
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(is_bipartite(g));
}

TEST(Generators, RandomTree) {
  Rng rng(1);
  const auto g = random_tree(40, rng);
  EXPECT_EQ(g.num_edges(), 39u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_forest(g));
}

TEST(Generators, RandomRegularParities) {
  Rng rng(2);
  for (const std::size_t d : {2u, 3u, 4u, 5u, 6u}) {
    const std::size_t n = d % 2 == 0 ? 15 : 16;
    const auto g = random_regular(n, d, rng);
    EXPECT_TRUE(g.is_regular(d)) << "d=" << d;
  }
  EXPECT_THROW((void)random_regular(7, 3, rng), InvalidArgument);  // odd n*d
  EXPECT_THROW((void)random_regular(4, 4, rng), InvalidArgument);  // d >= n
}

TEST(Generators, RandomRegularZeroDegree) {
  Rng rng(3);
  const auto g = random_regular(5, 0, rng);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Generators, RandomBoundedDegreeRespectsCap) {
  Rng rng(4);
  const auto g = random_bounded_degree(60, 4, 100, rng);
  EXPECT_LE(g.max_degree(), 4u);
  EXPECT_GT(g.num_edges(), 50u);  // dense enough to be a useful workload
}

TEST(Generators, RandomBipartiteRegular) {
  Rng rng(5);
  const auto g = random_bipartite_regular(10, 3, rng);
  EXPECT_TRUE(g.is_regular(3));
  EXPECT_TRUE(is_bipartite(g));
}

TEST(Generators, DisjointUnion) {
  const auto g = disjoint_union(cycle(3), path(3));
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(num_components(g), 2u);
}

TEST(Properties, ComponentsAndConnectivity) {
  const auto g = disjoint_union(cycle(4), cycle(5));
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[3]);
  EXPECT_NE(comp[0], comp[4]);
  EXPECT_EQ(num_components(g), 2u);
  EXPECT_FALSE(is_connected(g));
}

TEST(Properties, BipartitionOddCycle) {
  EXPECT_FALSE(is_bipartite(cycle(5)));
  EXPECT_TRUE(is_bipartite(cycle(6)));
}

TEST(Properties, BipartitionIsProper) {
  const auto g = hypercube(3);
  const auto colour = bipartition(g);
  ASSERT_TRUE(colour.has_value());
  for (const auto& e : g.edges()) {
    EXPECT_NE((*colour)[e.u], (*colour)[e.v]);
  }
}

TEST(Properties, DegreeHistogram) {
  const auto g = star(4);
  const auto hist = degree_histogram(g);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[1], 4u);
  EXPECT_EQ(hist[4], 1u);
}

TEST(Io, RoundTrip) {
  Rng rng(6);
  const auto g = random_regular(12, 3, rng);
  const auto text = to_edge_list_string(g);
  const auto h = from_edge_list_string(text);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge(e), g.edge(e));
  }
}

TEST(Io, CommentsAndWhitespaceIgnored) {
  const auto g =
      from_edge_list_string("# a comment\n3 2\n\n0 1\n# another\n1 2\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, TruncatedInputThrows) {
  EXPECT_THROW((void)from_edge_list_string("3 2\n0 1\n"), InvalidStructure);
}

TEST(Io, MalformedHeaderThrows) {
  EXPECT_THROW((void)from_edge_list_string("nope\n"), InvalidStructure);
}

TEST(Io, OutOfRangeEndpointThrows) {
  EXPECT_THROW((void)from_edge_list_string("2 1\n0 5\n"), InvalidStructure);
}

}  // namespace
}  // namespace eds::graph
