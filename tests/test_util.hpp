// Shared test utilities: seeded RNG helpers and the graph fixtures that
// recur across suites (paper figures, small paths, random regular
// instances with random port numberings).
//
// Seeding: every randomised suite derives its streams from base_seed(),
// which defaults to a fixed constant so ctest runs are deterministic, and
// can be overridden with the EDS_FUZZ_SEED environment variable to explore
// new streams without a code change (used by the `fuzz` ctest label).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/simple_graph.hpp"
#include "port/port_graph.hpp"
#include "port/ported_graph.hpp"
#include "runtime/message.hpp"
#include "runtime/program.hpp"
#include "runtime/runner.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace eds::test {

/// Echo program: sends its degree on every port for `rounds` rounds,
/// records the sum it heard, then halts outputting nothing.  The standard
/// controlled-duration program of the runtime and engine suites.
class EchoProgram final : public runtime::NodeProgram {
 public:
  explicit EchoProgram(runtime::Round rounds) : rounds_(rounds) {}
  void start(port::Port degree) override { degree_ = degree; }
  void send(runtime::Round, std::span<runtime::Message> out) override {
    for (auto& m : out) {
      m = runtime::msg(1, static_cast<std::int32_t>(degree_));
    }
  }
  void receive(runtime::Round round,
               std::span<const runtime::Message> in) override {
    sum_ = 0;
    for (const auto& m : in) sum_ += m.arg[0];
    if (round >= rounds_) halted_ = true;
  }
  [[nodiscard]] bool halted() const override { return halted_; }
  [[nodiscard]] std::vector<port::Port> output() const override { return {}; }

  std::int64_t sum_ = 0;

 private:
  runtime::Round rounds_;
  port::Port degree_ = 0;
  bool halted_ = false;
};

class EchoFactory final : public runtime::ProgramFactory {
 public:
  explicit EchoFactory(runtime::Round rounds) : rounds_(rounds) {}
  [[nodiscard]] std::unique_ptr<runtime::NodeProgram> create()
      const override {
    return std::make_unique<EchoProgram>(rounds_);
  }
  [[nodiscard]] std::string name() const override { return "echo"; }

 private:
  runtime::Round rounds_;
};

/// Relay program: starts out sending a distinct tag-7 message per port,
/// then forwards whatever it received last round, halting after
/// base + degree rounds.  Every received bit feeds the next send, so any
/// delivery mix-up (wrong slot, stale message, wrong round) cascades into
/// the remaining rounds — the adversarial fixture of the engine and async
/// differential suites.
class RelayProgram final : public runtime::NodeProgram {
 public:
  explicit RelayProgram(runtime::Round base) : base_(base) {}
  void start(port::Port degree) override {
    degree_ = degree;
    last_.assign(degree, runtime::kSilence);
    for (port::Port i = 1; i <= degree; ++i) {
      last_[i - 1] = runtime::msg(7, static_cast<std::int32_t>(i));
    }
  }
  void send(runtime::Round, std::span<runtime::Message> out) override {
    std::copy(last_.begin(), last_.end(), out.begin());
  }
  void receive(runtime::Round round,
               std::span<const runtime::Message> in) override {
    last_.assign(in.begin(), in.end());
    if (round >= base_ + degree_) halted_ = true;
  }
  [[nodiscard]] bool halted() const override { return halted_; }
  [[nodiscard]] std::vector<port::Port> output() const override { return {}; }

 private:
  runtime::Round base_;
  port::Port degree_ = 0;
  std::vector<runtime::Message> last_;
  bool halted_ = false;
};

class RelayFactory final : public runtime::ProgramFactory {
 public:
  explicit RelayFactory(runtime::Round base) : base_(base) {}
  [[nodiscard]] std::unique_ptr<runtime::NodeProgram> create()
      const override {
    return std::make_unique<RelayProgram>(base_);
  }
  [[nodiscard]] std::string name() const override { return "relay"; }

 private:
  runtime::Round base_;
};

/// Fixed default master seed for randomised tests.
inline constexpr std::uint64_t kDefaultSeed = 0xED5D0517ULL;

/// Master seed: kDefaultSeed unless EDS_FUZZ_SEED is set in the
/// environment (parsed with strtoull, so decimal and 0x-hex both work).
inline std::uint64_t base_seed() {
  static const std::uint64_t seed = [] {
    if (const char* env = std::getenv("EDS_FUZZ_SEED")) {
      return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 0));
    }
    return kDefaultSeed;
  }();
  return seed;
}

/// Deterministic per-test RNG: mixes the master seed with a caller-chosen
/// salt so each test gets an independent stream.
inline Rng make_rng(std::uint64_t salt) {
  std::uint64_t state = base_seed() + salt;
  return Rng(splitmix64(state));
}

/// A random d-regular graph with an independent random port numbering at
/// every node — the standard randomised instance used across suites.
/// The underlying simple graph is available as `.graph()`.
inline port::PortedGraph random_ported_regular(std::size_t n, port::Port d,
                                               Rng& rng) {
  return port::with_random_ports(graph::random_regular(n, d, rng), rng);
}

/// A random graph with n nodes, max degree delta and (at most) m edges,
/// with an independent random port numbering at every node.
inline port::PortedGraph random_ported_bounded(std::size_t n, port::Port delta,
                                               std::size_t m, Rng& rng) {
  return port::with_random_ports(graph::random_bounded_degree(n, delta, m, rng),
                                 rng);
}

/// Path a-b-c-d: edges 0={0,1}, 1={1,2}, 2={2,3}.
inline graph::SimpleGraph p4() {
  return graph::SimpleGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
}

/// The simple graph H of Figure 2 (reconstructed to satisfy every fact the
/// paper states about it): nodes a=0, b=1, c=2, d=3 with
///   a: port1->c, port2->b        b: port1->a, port2->c, port3->d
///   c: port1->d, port2->a, port3->b   d: port1->c, port2->b
inline port::PortedGraph figure2_graph_h() {
  auto g = graph::SimpleGraph::from_edges(
      4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  // edge ids: 0 = ab, 1 = ac, 2 = bc, 3 = bd, 4 = cd
  const std::vector<std::vector<graph::EdgeId>> order{
      {1, 0}, {0, 2, 3}, {4, 1, 2}, {4, 3}};
  return port::PortedGraph(std::move(g), order);
}

/// The multigraph M of Figure 2: V = {s, t}, d(s) = 3, d(t) = 4,
/// p: (s,1)<->(t,2), (s,2)<->(t,1), (s,3) fixed, (t,3)<->(t,4).
inline port::PortGraph figure2_multigraph_m() {
  port::PortGraphBuilder b({3, 4});
  b.connect({0, 1}, {1, 2});
  b.connect({0, 2}, {1, 1});
  b.fix({0, 3});
  b.connect({1, 3}, {1, 4});
  return b.build();
}

/// Seed-semantics oracle: the pre-engine run loop — every node scanned
/// every round, no worklist, no sharding, a naive outbox -> inbox copy
/// per round — with ports_served counted for non-halted nodes per the
/// documented definition.  Every engine transport rewrite is held to
/// bit-identity against this function by the differential suites.
inline runtime::RunResult reference_run(const port::PortGraph& g,
                                        const runtime::ProgramFactory& factory,
                                        const runtime::RunOptions& options) {
  using runtime::kSilence;
  using runtime::Message;
  using runtime::Round;
  const std::size_t n = g.num_nodes();
  std::vector<std::unique_ptr<runtime::NodeProgram>> programs;
  for (std::size_t v = 0; v < n; ++v) programs.push_back(factory.create());

  std::vector<std::size_t> offset(n, 0);
  std::size_t total_ports = 0;
  for (std::size_t v = 0; v < n; ++v) {
    offset[v] = total_ports;
    total_ports += g.degree(static_cast<port::NodeId>(v));
  }
  std::vector<Message> outbox(total_ports, kSilence);
  std::vector<Message> inbox(total_ports, kSilence);

  std::vector<bool> halted(n, false);
  std::size_t halted_count = 0;
  for (std::size_t v = 0; v < n; ++v) {
    programs[v]->start(g.degree(static_cast<port::NodeId>(v)));
    if (programs[v]->halted()) {
      halted[v] = true;
      ++halted_count;
    }
  }

  runtime::RunResult result;
  result.messages_collected = options.collect_messages;
  Round round = 0;
  while (halted_count < n) {
    ++round;
    if (round > options.max_rounds) {
      throw ExecutionError("reference_run: round limit exceeded");
    }
    std::fill(outbox.begin(), outbox.end(), kSilence);
    for (std::size_t v = 0; v < n; ++v) {
      const auto deg = g.degree(static_cast<port::NodeId>(v));
      const std::span<Message> out(&outbox[offset[v]], deg);
      if (halted[v]) continue;
      programs[v]->send(round, out);
      result.stats.ports_served += deg;
      for (const auto& m : out) {
        if (!m.is_silence()) ++result.stats.messages_sent;
      }
    }
    std::uint64_t round_messages = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const auto deg = g.degree(static_cast<port::NodeId>(v));
      for (port::Port i = 1; i <= deg; ++i) {
        const auto dst = g.partner(static_cast<port::NodeId>(v), i);
        const Message& m = outbox[offset[v] + i - 1];
        inbox[offset[dst.node] + dst.port - 1] = m;
        if (!m.is_silence()) {
          ++round_messages;
          if (options.collect_messages) {
            result.message_log.push_back(
                {round, {static_cast<port::NodeId>(v), i}, dst, m});
          }
        }
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (halted[v]) continue;
      const auto deg = g.degree(static_cast<port::NodeId>(v));
      const std::span<const Message> in(&inbox[offset[v]], deg);
      programs[v]->receive(round, in);
      if (programs[v]->halted()) {
        halted[v] = true;
        ++halted_count;
      }
    }
    if (options.collect_trace) {
      result.trace.push_back({round, round_messages, halted_count});
    }
  }
  result.stats.rounds = round;
  result.outputs.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    auto ports = programs[v]->output();
    std::sort(ports.begin(), ports.end());
    result.outputs[v] = std::move(ports);
  }
  return result;
}

/// Thread counts every differential test sweeps: sequential, a small and a
/// large parallel pool, plus an optional extra count from EDS_TEST_THREADS
/// (the sanitizer CI job uses this to stress the sharded loop harder).
inline std::vector<unsigned> policy_thread_counts() {
  std::vector<unsigned> counts{1, 2, 8};
  if (const char* env = std::getenv("EDS_TEST_THREADS")) {
    const auto extra = static_cast<unsigned>(std::strtoul(env, nullptr, 0));
    if (extra > 0 &&
        std::find(counts.begin(), counts.end(), extra) == counts.end()) {
      counts.push_back(extra);
    }
  }
  return counts;
}

/// The `edsim` binary for suites that fork worker subprocesses: the
/// EDSIM_BIN environment variable wins, else the EDSIM_BIN_PATH compile
/// definition (set by tests/CMakeLists.txt for those suites); "" when
/// neither resolves to an existing file.  Also exports the result as
/// EDSIM_BIN so code that re-resolves at run time (`edsim sweep --shards`
/// inside an in-process run_cli) finds the same binary.
inline std::string edsim_binary() {
  std::string bin;
  if (const char* env = std::getenv("EDSIM_BIN")) bin = env;
#ifdef EDSIM_BIN_PATH
  if (bin.empty()) bin = EDSIM_BIN_PATH;
#endif
  if (bin.empty() || !std::ifstream(bin).good()) return "";
#if !defined(_WIN32)
  // overwrite=1: an *empty* exported EDSIM_BIN must be repaired too, or
  // code that re-resolves the binary (worker_binary in cli.cpp) would
  // fall through to /proc/self/exe — the test binary itself — and fork
  // the whole suite recursively.
  ::setenv("EDSIM_BIN", bin.c_str(), /*overwrite=*/1);
#endif
  return bin;
}

}  // namespace eds::test
