#include <gtest/gtest.h>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "exact/exact_eds.hpp"
#include "factor/two_factor.hpp"
#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "test_util.hpp"

namespace eds::algo {
namespace {

using analysis::approximation_ratio;
using analysis::is_edge_cover;
using analysis::is_edge_dominating_set;
using analysis::paper_bound_regular;

TEST(PortOne, SolutionDominatesOnRegularFamilies) {
  Rng rng(1);
  for (const std::size_t d : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const std::size_t n = 2 * d + 4;  // even, so n*d is even and n > d
    const auto pg = test::random_ported_regular(n, d, rng);
    const auto outcome = run_algorithm(pg, Algorithm::kPortOne);
    EXPECT_TRUE(is_edge_dominating_set(pg.graph(), outcome.solution))
        << "d=" << d;
    EXPECT_TRUE(is_edge_cover(pg.graph(), outcome.solution)) << "d=" << d;
  }
}

TEST(PortOne, RunsInExactlyOneRound) {
  Rng rng(2);
  const auto pg = test::random_ported_regular(20, 4, rng);
  const auto outcome = run_algorithm(pg, Algorithm::kPortOne);
  EXPECT_EQ(outcome.stats.rounds, 1u);
}

TEST(PortOne, RatioWithinPaperBoundOnSmallRegularGraphs) {
  Rng rng(3);
  for (const std::size_t d : {2u, 4u}) {
    for (int trial = 0; trial < 8; ++trial) {
      const auto pg = test::random_ported_regular(10, d, rng);
      const auto& g = pg.graph();
      const auto outcome = run_algorithm(pg, Algorithm::kPortOne);
      const auto optimum = exact::minimum_eds_size(g);
      EXPECT_LE(approximation_ratio(outcome.solution.size(), optimum),
                paper_bound_regular(d))
          << "d=" << d << " trial=" << trial;
    }
  }
}

TEST(PortOne, SizeNeverExceedsNodeCount) {
  // |D| <= |V| is the key counting step in the proof of Theorem 3.
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pg = test::random_ported_regular(16, 4, rng);
    const auto& g = pg.graph();
    const auto outcome = run_algorithm(pg, Algorithm::kPortOne);
    EXPECT_LE(outcome.solution.size(), g.num_nodes());
  }
}

TEST(PortOne, OnFactorPortsSelectsExactlyTheFirstFactor) {
  // With a factorisation-induced numbering, the port-1 edges are exactly
  // factor 1: a spanning set of cycles, so |D| = |V|.
  const auto g = graph::torus(4, 5);
  const auto pg = factor::with_factor_ports(g);
  const auto outcome = run_algorithm(pg, Algorithm::kPortOne);
  EXPECT_EQ(outcome.solution.size(), g.num_nodes());
}

TEST(PortOne, WorksOnCyclesAllNumberings) {
  Rng rng(5);
  const auto g = graph::cycle(9);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pg = port::with_random_ports(g, rng);
    const auto outcome = run_algorithm(pg, Algorithm::kPortOne);
    EXPECT_TRUE(is_edge_dominating_set(g, outcome.solution));
    // C_9: optimum 3, bound 3 for d=2: |D| <= 9.
    EXPECT_LE(approximation_ratio(outcome.solution.size(), 3),
              paper_bound_regular(2));
  }
}

TEST(PortOne, HandlesCompleteGraphs) {
  Rng rng(6);
  for (const std::size_t n : {4u, 6u, 9u}) {
    const auto g = graph::complete(n);
    const auto pg = port::with_random_ports(g, rng);
    const auto outcome = run_algorithm(pg, Algorithm::kPortOne);
    EXPECT_TRUE(is_edge_dominating_set(g, outcome.solution));
  }
}

TEST(AllEdges, OptimalOnMatchingGraphs) {
  // ∆ = 1: the trivial algorithm returns every edge, which is optimal.
  const auto g = graph::circulant(10, {5});  // five disjoint edges
  ASSERT_TRUE(g.is_regular(1));
  const auto pg = port::with_canonical_ports(g);
  const auto outcome = run_algorithm(pg, Algorithm::kAllEdges);
  EXPECT_EQ(outcome.solution.size(), 5u);
  EXPECT_EQ(outcome.stats.rounds, 0u);
  EXPECT_EQ(exact::minimum_eds_size(g), 5u);
}

TEST(Driver, RecommendationMatchesTable1) {
  Rng rng(7);
  EXPECT_EQ(recommended_for(graph::circulant(8, {4})).algorithm,
            Algorithm::kAllEdges);
  EXPECT_EQ(recommended_for(graph::cycle(5)).algorithm, Algorithm::kPortOne);
  EXPECT_EQ(recommended_for(graph::petersen()).algorithm,
            Algorithm::kOddRegular);
  EXPECT_EQ(recommended_for(graph::grid(3, 3)).algorithm,
            Algorithm::kBoundedDegree);
}

TEST(Driver, FactoryValidation) {
  EXPECT_THROW((void)make_factory(Algorithm::kOddRegular, 0), InvalidArgument);
  EXPECT_THROW((void)make_factory(Algorithm::kBoundedDegree, 0),
               InvalidArgument);
  EXPECT_NO_THROW((void)make_factory(Algorithm::kPortOne, 0));
}

TEST(Driver, OddRegularRejectsIrregularGraphs) {
  const auto pg = port::with_canonical_ports(graph::grid(2, 3));
  EXPECT_THROW((void)run_algorithm(pg, Algorithm::kOddRegular),
               InvalidArgument);
}

TEST(Driver, NamesAreStable) {
  EXPECT_EQ(algorithm_name(Algorithm::kPortOne), "port-one (Thm 3)");
  EXPECT_EQ(algorithm_name(Algorithm::kOddRegular), "odd-regular (Thm 4)");
}

}  // namespace
}  // namespace eds::algo
