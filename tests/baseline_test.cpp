#include <gtest/gtest.h>

#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "baseline/baseline.hpp"
#include "exact/exact_eds.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace eds::baseline {
namespace {

TEST(GreedyMaximalMatching, IsMaximal) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = graph::random_bounded_degree(30, 6, 60, rng);
    const auto m = greedy_maximal_matching(g);
    EXPECT_TRUE(analysis::is_maximal_matching(g, m));
  }
}

TEST(GreedyMaximalMatching, EmptyGraph) {
  EXPECT_TRUE(greedy_maximal_matching(graph::SimpleGraph(4)).empty());
}

TEST(RandomMaximalMatching, IsMaximalAndSeedStable) {
  Rng rng1(5);
  Rng rng2(5);
  const auto g = graph::complete(8);
  const auto a = random_maximal_matching(g, rng1);
  const auto b = random_maximal_matching(g, rng2);
  EXPECT_TRUE(analysis::is_maximal_matching(g, a));
  EXPECT_EQ(a, b);  // reproducible from the seed
}

TEST(MaximalMatching, TwoApproximationProperty) {
  // Section 1.1: any maximal matching 2-approximates the minimum EDS.
  Rng rng(29);
  for (int trial = 0; trial < 15; ++trial) {
    const auto g = graph::random_bounded_degree(14, 4, 22, rng);
    if (g.num_edges() == 0) continue;
    const auto optimum = exact::minimum_eds_size(g);
    if (optimum == 0) continue;
    const auto greedy = greedy_maximal_matching(g);
    EXPECT_LE(analysis::approximation_ratio(greedy.size(), optimum),
              Fraction(2));
    auto child = rng.split();
    const auto random = random_maximal_matching(g, child);
    EXPECT_LE(analysis::approximation_ratio(random.size(), optimum),
              Fraction(2));
  }
}

TEST(GreedyEds, ProducesDominatingSet) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = graph::random_bounded_degree(24, 5, 40, rng);
    const auto d = greedy_eds(g);
    EXPECT_TRUE(analysis::is_edge_dominating_set(g, d));
  }
}

TEST(GreedyEds, StarNeedsOneEdge) {
  EXPECT_EQ(greedy_eds(graph::star(7)).size(), 1u);
}

TEST(GreedyEds, NeverWorseThanAllEdges) {
  const auto g = graph::complete(7);
  EXPECT_LT(greedy_eds(g).size(), g.num_edges());
}

TEST(IndependentEdsFrom, ConvertsWithoutGrowing) {
  // The Section 1.1 conversion: EDS -> maximal matching of no greater size.
  Rng rng(37);
  for (int trial = 0; trial < 25; ++trial) {
    const auto g = graph::random_bounded_degree(20, 5, 35, rng);
    const auto d = greedy_eds(g);
    const auto m = independent_eds_from(g, d);
    EXPECT_TRUE(analysis::is_maximal_matching(g, m));
    EXPECT_LE(m.size(), d.size());
  }
}

TEST(IndependentEdsFrom, FixedPointOnMaximalMatchings) {
  Rng rng(41);
  const auto g = graph::random_regular(12, 3, rng);
  const auto m = greedy_maximal_matching(g);
  const auto m2 = independent_eds_from(g, m);
  EXPECT_EQ(m2, m);
}

TEST(IndependentEdsFrom, RejectsNonEds) {
  const auto g = graph::path(4);
  EXPECT_THROW((void)independent_eds_from(g, graph::EdgeSet(3, {0})),
               InvalidArgument);
}

TEST(IndependentEdsFrom, HandlesDenseOverlappingInput) {
  // Feed it the *entire* edge set (a valid but very redundant EDS).
  const auto g = graph::complete(6);
  graph::EdgeSet all(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) all.insert(e);
  const auto m = independent_eds_from(g, all);
  EXPECT_TRUE(analysis::is_maximal_matching(g, m));
  EXPECT_EQ(m.size(), 3u);  // perfect matching of K_6
}

TEST(MinimumMaximalMatchingEqualsMinimumEds, OnSmallGraphs) {
  // The equivalence the exact solver rests on, verified end to end: the
  // brute-force minimum EDS converts into a maximal matching of equal size.
  Rng rng(43);
  for (int trial = 0; trial < 15; ++trial) {
    const auto g = graph::random_bounded_degree(9, 3, 11, rng);
    if (g.num_edges() == 0 || g.num_edges() > 14) continue;
    const auto eds = exact::brute_force_minimum_eds(g);
    const auto m = independent_eds_from(g, eds);
    EXPECT_EQ(m.size(), eds.size());
  }
}

}  // namespace
}  // namespace eds::baseline
