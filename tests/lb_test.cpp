#include <gtest/gtest.h>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "exact/exact_eds.hpp"
#include "lb/lower_bounds.hpp"
#include "port/covering.hpp"
#include "runtime/outputs.hpp"

namespace eds::lb {
namespace {

using analysis::approximation_ratio;

TEST(EvenLowerBound, StructureMatchesTheorem1) {
  for (const port::Port d : {2u, 4u, 6u, 8u, 10u}) {
    const auto inst = even_lower_bound(d);
    const auto& g = inst.ported.graph();
    EXPECT_EQ(g.num_nodes(), 2u * d - 1);
    EXPECT_TRUE(g.is_regular(d));
    EXPECT_EQ(inst.optimal.size(), d / 2);
    EXPECT_EQ(g.num_edges(), (2u * d - 1) * (d / 2));
    EXPECT_TRUE(analysis::is_edge_dominating_set(g, inst.optimal));
    EXPECT_EQ(inst.covering_base.num_nodes(), 1u);
    EXPECT_TRUE(port::is_covering_map(inst.ported.ports(), inst.covering_base,
                                      inst.covering_map));
  }
}

TEST(EvenLowerBound, OptimalIsExactlyOptimal) {
  // For small d, confirm |S| against the exact solver.
  for (const port::Port d : {2u, 4u, 6u}) {
    const auto inst = even_lower_bound(d);
    EXPECT_EQ(exact::minimum_eds_size(inst.ported.graph()),
              inst.optimal.size())
        << "d=" << d;
  }
}

TEST(EvenLowerBound, RejectsBadParameters) {
  EXPECT_THROW((void)even_lower_bound(3), InvalidArgument);
  EXPECT_THROW((void)even_lower_bound(0), InvalidArgument);
}

TEST(EvenLowerBound, PortOneAlgorithmHitsTheBoundExactly) {
  // The tightness half of Table 1 (even d): measured ratio == 4 - 2/d.
  for (const port::Port d : {2u, 4u, 6u, 8u, 10u}) {
    const auto inst = even_lower_bound(d);
    const auto outcome =
        algo::run_algorithm(inst.ported, algo::Algorithm::kPortOne);
    const auto ratio =
        approximation_ratio(outcome.solution.size(), inst.optimal.size());
    EXPECT_EQ(ratio, inst.forced_ratio) << "d=" << d;
    EXPECT_EQ(ratio, analysis::paper_bound_regular(d)) << "d=" << d;
  }
}

TEST(EvenLowerBound, AllNodesProduceTheSameOutput) {
  // The covering-map argument: every node of G behaves like the single node
  // of M, so all outputs are identical.
  const auto inst = even_lower_bound(6);
  const auto factory = algo::make_factory(algo::Algorithm::kPortOne);
  const auto result = runtime::run_synchronous(inst.ported.ports(), *factory);
  EXPECT_TRUE(runtime::all_outputs_identical(result));
}

TEST(OddLowerBound, StructureMatchesTheorem2) {
  for (const port::Port d : {3u, 5u, 7u, 9u}) {
    const std::size_t k = (d - 1) / 2;
    const auto inst = odd_lower_bound(d);
    const auto& g = inst.ported.graph();
    EXPECT_EQ(g.num_nodes(), d * (4 * k + 1) + d + 2 * k);
    EXPECT_TRUE(g.is_regular(d));
    EXPECT_EQ(inst.optimal.size(), (k + 1) * d);
    EXPECT_TRUE(analysis::is_edge_dominating_set(g, inst.optimal));
    EXPECT_EQ(inst.covering_base.num_nodes(), d + 1u);
    EXPECT_TRUE(port::is_covering_map(inst.ported.ports(), inst.covering_base,
                                      inst.covering_map));
  }
}

TEST(OddLowerBound, OptimalIsExactlyOptimalForD3) {
  const auto inst = odd_lower_bound(3);
  EXPECT_EQ(exact::minimum_eds_size(inst.ported.graph()),
            inst.optimal.size());
}

TEST(OddLowerBound, RejectsBadParameters) {
  EXPECT_THROW((void)odd_lower_bound(2), InvalidArgument);
  EXPECT_THROW((void)odd_lower_bound(1), InvalidArgument);
}

TEST(OddLowerBound, OddRegularAlgorithmHitsTheBoundExactly) {
  // The tightness half of Table 1 (odd d): measured ratio == 4 - 6/(d+1).
  for (const port::Port d : {3u, 5u, 7u}) {
    const auto inst = odd_lower_bound(d);
    const auto outcome =
        algo::run_algorithm(inst.ported, algo::Algorithm::kOddRegular, d);
    const auto ratio =
        approximation_ratio(outcome.solution.size(), inst.optimal.size());
    EXPECT_EQ(ratio, inst.forced_ratio) << "d=" << d;
    EXPECT_EQ(ratio, analysis::paper_bound_regular(d)) << "d=" << d;
  }
}

TEST(OddLowerBound, ForcedSizeMatchesTheProof) {
  // |D| >= (2d-1) d: the algorithm is forced to select, per component,
  // either a full 2-factor or all external edges.
  for (const port::Port d : {3u, 5u}) {
    const auto inst = odd_lower_bound(d);
    const auto outcome =
        algo::run_algorithm(inst.ported, algo::Algorithm::kOddRegular, d);
    EXPECT_EQ(outcome.solution.size(), (2u * d - 1) * d) << "d=" << d;
  }
}

TEST(OddLowerBound, EquivalenceClassesBehaveIdentically) {
  // Nodes with the same covering image produce identical outputs.
  const auto inst = odd_lower_bound(5);
  const auto factory = algo::make_factory(algo::Algorithm::kOddRegular, 5);
  const auto result = runtime::run_synchronous(inst.ported.ports(), *factory);
  for (std::size_t v = 0; v < result.outputs.size(); ++v) {
    for (std::size_t u = v + 1; u < result.outputs.size(); ++u) {
      if (inst.covering_map[v] == inst.covering_map[u]) {
        EXPECT_EQ(result.outputs[v], result.outputs[u])
            << "nodes " << v << " and " << u;
      }
    }
  }
}

TEST(ForcedRatio, MatchesTable1) {
  EXPECT_EQ(forced_ratio_regular(2), Fraction(3));
  EXPECT_EQ(forced_ratio_regular(3), Fraction(5, 2));
  EXPECT_EQ(forced_ratio_regular(4), Fraction(7, 2));
  EXPECT_EQ(forced_ratio_regular(5), Fraction(3));
  EXPECT_EQ(forced_ratio_regular(6), Fraction(11, 3));
  EXPECT_THROW((void)forced_ratio_regular(0), InvalidArgument);
}

TEST(LowerBounds, BoundedDegreeAlgorithmAlsoRespectsItsBoundHere) {
  // Running A(∆) on the worst-case *regular* graphs: ratios stay within the
  // bounded-degree guarantee α(∆).
  for (const port::Port d : {4u, 6u}) {
    const auto inst = even_lower_bound(d);
    const auto outcome =
        algo::run_algorithm(inst.ported, algo::Algorithm::kBoundedDegree, d);
    EXPECT_TRUE(
        analysis::is_edge_dominating_set(inst.ported.graph(), outcome.solution));
    EXPECT_LE(approximation_ratio(outcome.solution.size(), inst.optimal.size()),
              analysis::paper_bound_bounded(d))
        << "d=" << d;
  }
}

}  // namespace
}  // namespace eds::lb
