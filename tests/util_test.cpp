#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/fraction.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace eds {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW((void)rng.below(0), InvalidArgument);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(Rng, RangeBadOrderThrows) {
  Rng rng(1);
  EXPECT_THROW((void)rng.range(3, 2), InvalidArgument);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(9);
  const auto perm = rng.permutation(50);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(13);
  std::vector<int> v{1, 1, 2, 3, 5, 8, 13};
  auto w = v;
  rng.shuffle(w);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(w.begin(), w.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Fraction, NormalisesToLowestTerms) {
  const Fraction f(6, 8);
  EXPECT_EQ(f.num(), 3);
  EXPECT_EQ(f.den(), 4);
}

TEST(Fraction, NormalisesSign) {
  const Fraction f(3, -9);
  EXPECT_EQ(f.num(), -1);
  EXPECT_EQ(f.den(), 3);
}

TEST(Fraction, ZeroDenominatorThrows) {
  EXPECT_THROW(Fraction(1, 0), InvalidArgument);
}

TEST(Fraction, Arithmetic) {
  const Fraction a(1, 2);
  const Fraction b(1, 3);
  EXPECT_EQ(a + b, Fraction(5, 6));
  EXPECT_EQ(a - b, Fraction(1, 6));
  EXPECT_EQ(a * b, Fraction(1, 6));
  EXPECT_EQ(a / b, Fraction(3, 2));
}

TEST(Fraction, DivisionByZeroThrows) {
  EXPECT_THROW((void)(Fraction(1, 2) / Fraction(0, 5)), InvalidArgument);
}

TEST(Fraction, Ordering) {
  EXPECT_LT(Fraction(1, 3), Fraction(1, 2));
  EXPECT_GT(Fraction(7, 2), Fraction(10, 3));
  EXPECT_EQ(Fraction(2, 4), Fraction(1, 2));
}

TEST(Fraction, PaperBoundExamples) {
  // 4 - 2/d for d = 6 is 11/3; 4 - 6/(d+1) for d = 5 is 3.
  EXPECT_EQ(Fraction(4) - Fraction(2, 6), Fraction(11, 3));
  EXPECT_EQ(Fraction(4) - Fraction(6, 6), Fraction(3));
}

TEST(Fraction, Printing) {
  std::ostringstream os;
  os << Fraction(11, 3) << ' ' << Fraction(4);
  EXPECT_EQ(os.str(), "11/3 4");
}

TEST(Fraction, ToDouble) {
  EXPECT_DOUBLE_EQ(Fraction(11, 4).to_double(), 2.75);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Summary, EmptyIsSafe) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Percentile, NearestRank) {
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 50), 2.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 0), 1.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW((void)percentile({}, 50), InvalidArgument);
}

TEST(TextTable, AlignsAndCounts) {
  TextTable t("demo");
  t.header({"a", "long-column"});
  t.row({"1", "2"});
  t.row({"333", "4"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("long-column"), std::string::npos);
}

TEST(TextTable, MismatchedRowThrows) {
  TextTable t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), InvalidArgument);
}

TEST(TextTable, CsvOutput) {
  TextTable t;
  t.header({"x", "y"});
  t.row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Ensure, ThrowsInternalError) {
  EXPECT_THROW(EDS_ENSURE(false, "boom"), InternalError);
  EXPECT_NO_THROW(EDS_ENSURE(true, "fine"));
}

TEST(Ensure, MessageContainsContext) {
  try {
    EDS_ENSURE(1 == 2, "the message");
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace eds
