// The asynchronous engine's differential oracle and fault-model suite.
//
// Core guarantee under test: with the α-synchronizer, AsyncPolicy produces
// bit-identical results to the synchronous engine — outputs, stats, trace,
// and (delivery-order-normalized) message log — for *every* delay matrix,
// on the paper fixtures, the relay adversarial multigraph, and ≥1000
// randomized multigraph × delay-matrix seeds across every algorithm behind
// algo::algorithm_token.  Secondary guarantees: same seed ⇒ byte-identical
// transcript and fault log regardless of batch thread count; duplicated
// delivery is idempotent; crashed-node runs still verify on the surviving
// subgraph; inconsistent option combinations are rejected up front.
//
// Deterministic by default (test_util.hpp master seed); EDS_FUZZ_SEED
// explores new streams, EDS_ASYNC_FUZZ_RUNS scales the fuzz count (nightly
// CI runs 10k), and EDS_FUZZ_ARTIFACT_DIR collects failing seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "algo/driver.hpp"
#include "analysis/verify.hpp"
#include "graph/edge_set.hpp"
#include "graph/simple_graph.hpp"
#include "port/random_port_graph.hpp"
#include "runtime/async.hpp"
#include "runtime/batch.hpp"
#include "runtime/outputs.hpp"
#include "runtime/runner.hpp"
#include "runtime/shard.hpp"
#include "util/rng.hpp"
#include "invariants.hpp"
#include "test_util.hpp"

namespace eds::runtime {
namespace {

using algo::Algorithm;
using port::Port;
using port::PortGraph;
using port::PortGraphBuilder;
using test::EchoFactory;
using test::RelayFactory;

/// Delay matrices the fixture oracles sweep: degenerate (collapses to the
/// synchronous schedule), skewed-fixed, high-variance uniform, heavy-tailed
/// geometric.
std::vector<DelayModel> oracle_delays() {
  return {
      {DelayKind::kFixed, 1, 1},
      {DelayKind::kFixed, 5, 5},
      {DelayKind::kUniform, 1, 9},
      {DelayKind::kGeometric, 3, 24},
  };
}

/// The handcrafted involution-zoo multigraph of the engine suite: an
/// undirected self-loop, directed self-loops (fixed points), parallel
/// edges, a degree-0 node, and edges between nodes of different degrees.
PortGraph loops_and_stagger_graph() {
  PortGraphBuilder b(std::vector<Port>{3, 2, 4, 1, 0, 2});
  b.connect({0, 1}, {0, 2});
  b.fix({0, 3});
  b.connect({1, 1}, {2, 1});
  b.connect({1, 2}, {2, 2});
  b.connect({2, 3}, {3, 1});
  b.fix({2, 4});
  b.connect({5, 1}, {5, 2});
  return b.build();
}

void sort_by_sender(std::vector<DeliveredMessage>& log) {
  std::sort(log.begin(), log.end(),
            [](const DeliveredMessage& x, const DeliveredMessage& y) {
              return std::tie(x.round, x.from.node, x.from.port) <
                     std::tie(y.round, y.from.node, y.from.port);
            });
}

/// The differential oracle: one synchronous run against one α-synchronized
/// asynchronous run under `async`.  The synchronous message log arrives in
/// (round, sender) order already; the async one arrives in delivery order
/// and is normalized to the same key (unique per message, so the
/// comparison is still exact).  Returns success for use in fuzz loops;
/// emits EXPECT failures either way.
[[nodiscard]] bool expect_async_matches_sync(const PortGraph& g,
                                             const ProgramFactory& factory,
                                             const AsyncOptions& async,
                                             const std::string& context,
                                             Round max_rounds = 100000) {
  RunOptions options;
  options.max_rounds = max_rounds;
  options.collect_trace = true;
  options.collect_messages = true;

  bool sync_threw = false;
  RunResult sync;
  try {
    sync = run_synchronous(g, factory, options);
  } catch (const ExecutionError&) {
    sync_threw = true;
  }
  if (sync_threw) {
    // Parity on the failure path too: an algorithm the round engine
    // rejects (round-limit, bad output) must be rejected asynchronously.
    bool async_threw = false;
    try {
      (void)run_asynchronous(g, factory, options, async);
    } catch (const ExecutionError&) {
      async_threw = true;
    }
    EXPECT_TRUE(async_threw)
        << context << ": the synchronous engine threw but the async one ran";
    return async_threw;
  }

  const AsyncResult a = run_asynchronous(g, factory, options, async);
  auto log = a.run.message_log;
  sort_by_sender(log);

  const bool ok = a.run.outputs == sync.outputs && a.run.stats == sync.stats &&
                  a.run.trace == sync.trace && log == sync.message_log &&
                  a.fault_log.empty();
  EXPECT_TRUE(ok) << context << ": async run diverged from the synchronous "
                  << "engine (rounds " << a.run.stats.rounds << " vs "
                  << sync.stats.rounds << ", messages "
                  << a.run.stats.messages_sent << " vs "
                  << sync.stats.messages_sent << ")";
  // Fault-free synchronized runs must also satisfy endpoint consistency
  // (the shared harness; vacuous for outputs-free programs like echo).
  test::check_eds_invariants(g, a.run, context);
  return ok;
}

TEST(AsyncOracle, PaperFixturesAllAlgorithms) {
  const auto h = test::figure2_graph_h();
  const auto m = test::figure2_multigraph_m();
  struct Case {
    const PortGraph* g;
    Algorithm alg;
    Port param;
    const char* label;
  };
  const PortGraph hp = h.ports();
  const std::vector<Case> cases = {
      {&hp, Algorithm::kAllEdges, 0, "H/all-edges"},
      {&hp, Algorithm::kPortOne, 0, "H/port-one"},
      {&hp, Algorithm::kBoundedDegree, 3, "H/bounded-degree"},
      {&hp, Algorithm::kDoubleCover, 3, "H/double-cover"},
      {&m, Algorithm::kAllEdges, 0, "M/all-edges"},
      {&m, Algorithm::kPortOne, 0, "M/port-one"},
      {&m, Algorithm::kBoundedDegree, 4, "M/bounded-degree"},
      {&m, Algorithm::kDoubleCover, 4, "M/double-cover"},
  };
  for (const auto& c : cases) {
    const auto factory = algo::make_factory(c.alg, c.param);
    for (const auto& delay : oracle_delays()) {
      for (const std::uint64_t seed : {1ULL, 99ULL}) {
        AsyncOptions async;
        async.delay = delay;
        async.seed = seed;
        (void)expect_async_matches_sync(
            *c.g, *factory, async,
            std::string(c.label) + " delay=" + format_delay_model(delay));
      }
    }
  }
}

TEST(AsyncOracle, RelayAdversarialMultigraph) {
  const auto g = loops_and_stagger_graph();
  for (const Round base : {1u, 2u, 5u}) {
    for (const auto& delay : oracle_delays()) {
      AsyncOptions async;
      async.delay = delay;
      async.seed = 7 * base;
      (void)expect_async_matches_sync(
          g, RelayFactory(base), async,
          "relay base=" + std::to_string(base) +
              " delay=" + format_delay_model(delay));
    }
  }
  // Echo with staggered durations: nodes outlive each other under delays.
  for (const Round rounds : {1u, 3u, 9u}) {
    AsyncOptions async;
    async.delay = {DelayKind::kUniform, 1, 7};
    async.seed = rounds;
    (void)expect_async_matches_sync(g, EchoFactory(rounds), async,
                                    "echo rounds=" + std::to_string(rounds));
  }
}

std::vector<Port> random_degrees(Rng& rng, std::size_t n, Port max_degree) {
  std::vector<Port> degrees(n);
  for (auto& d : degrees) {
    d = static_cast<Port>(rng.below(max_degree + 1));
  }
  return degrees;
}

DelayModel random_delay_model(Rng& rng) {
  switch (rng.below(3)) {
    case 0: {
      const std::uint64_t t = 1 + rng.below(5);
      return {DelayKind::kFixed, t, t};
    }
    case 1: {
      const std::uint64_t lo = 1 + rng.below(3);
      return {DelayKind::kUniform, lo, lo + rng.below(9)};
    }
    default: {
      const std::uint64_t mean = 2 + rng.below(4);
      return {DelayKind::kGeometric, mean, 8 * mean};
    }
  }
}

/// One fuzz case, a pure function of its run seed: instance, algorithm,
/// parameter, and async options all derive from Rng(run_seed), so a seed
/// recorded in a failure artifact reconstructs the *exact* case later —
/// the property the round-trip test below locks down.
struct FuzzCase {
  PortGraph graph;
  Algorithm alg;
  Port param;
  AsyncOptions async;
};

FuzzCase make_fuzz_case(std::uint64_t run_seed) {
  static const std::vector<Algorithm> algorithms = {
      Algorithm::kAllEdges, Algorithm::kPortOne, Algorithm::kOddRegular,
      Algorithm::kBoundedDegree, Algorithm::kDoubleCover};
  Rng local(run_seed);
  const Algorithm alg =
      algorithms[local.below(static_cast<std::uint64_t>(algorithms.size()))];

  std::vector<Port> degrees;
  Port param = 0;
  if (alg == Algorithm::kOddRegular) {
    const Port d = local.below(2) == 0 ? 1 : 3;
    degrees.assign(2 + local.below(10), d);
    param = d;
  } else {
    degrees = random_degrees(local, 2 + local.below(12), 4);
    if (alg == Algorithm::kBoundedDegree || alg == Algorithm::kDoubleCover) {
      param =
          std::max<Port>(1, *std::max_element(degrees.begin(), degrees.end()));
    }
  }
  auto g = port::random_port_graph(degrees, local, 0.15);

  AsyncOptions async;
  async.seed = local.next_u64();
  async.delay = random_delay_model(local);
  return {std::move(g), alg, param, async};
}

/// $EDS_FUZZ_ARTIFACT_DIR/async_failing_seeds.txt, one decimal seed per
/// line — the fuzz loop's failure artifact, uploaded by CI.
std::string artifact_file(const std::string& dir) {
  return dir + "/async_failing_seeds.txt";
}

void append_failing_seeds(const std::vector<std::uint64_t>& failing) {
  if (failing.empty()) return;
  if (const char* dir = std::getenv("EDS_FUZZ_ARTIFACT_DIR")) {
    std::ofstream out(artifact_file(dir), std::ios::app);
    for (const auto seed : failing) out << seed << '\n';
  }
}

std::vector<std::uint64_t> load_failing_seeds(const std::string& path) {
  std::vector<std::uint64_t> seeds;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    seeds.push_back(std::strtoull(line.c_str(), nullptr, 0));
  }
  return seeds;
}

/// ≥1000 seeded runs (EDS_ASYNC_FUZZ_RUNS overrides; the nightly CI job
/// raises it to 10000) of random multigraphs × random delay matrices,
/// drawing uniformly from every algorithm behind algo::algorithm_token.
/// Odd-regular draws a d-regular instance (d odd), the rest arbitrary
/// multigraphs with loops and parallel edges.  Failing run seeds are
/// appended to $EDS_FUZZ_ARTIFACT_DIR/async_failing_seeds.txt so CI can
/// upload them.
TEST(AsyncOracle, FuzzRandomMultigraphsRandomDelays) {
  std::size_t runs = 1000;
  if (const char* env = std::getenv("EDS_ASYNC_FUZZ_RUNS")) {
    runs = static_cast<std::size_t>(std::strtoull(env, nullptr, 0));
  }
  auto rng = test::make_rng(0xA51FC);
  std::vector<std::uint64_t> failing;
  for (std::size_t it = 0; it < runs; ++it) {
    const std::uint64_t run_seed = rng.next_u64();
    const auto c = make_fuzz_case(run_seed);
    const auto factory = algo::make_factory(c.alg, c.param);
    const bool ok = expect_async_matches_sync(
        c.graph, *factory, c.async,
        "fuzz it=" + std::to_string(it) +
            " alg=" + algo::algorithm_token(c.alg) +
            " seed=" + std::to_string(run_seed),
        /*max_rounds=*/1000);
    if (!ok) failing.push_back(run_seed);
  }
  append_failing_seeds(failing);
}

TEST(AsyncArtifacts, FailingSeedRoundTripReproducesTranscript) {
  // The artifact contract end to end: record a seed the way the fuzz loop
  // would, reload it from the file, rebuild the case, and verify the rerun
  // reproduces the originally recorded transcript and fault log
  // byte-for-byte.  A seed is only a faithful artifact because make_fuzz_case
  // derives *everything* (graph, algorithm, delays) from it.
  RunOptions options;
  options.max_rounds = 1000;
  options.collect_trace = true;
  options.collect_messages = true;

  // Deterministically pick a seed whose case runs to completion (sync
  // parity means a throwing case throws on both engines; skip those).
  std::uint64_t seed = 0;
  AsyncResult recorded;
  bool have = false;
  for (std::uint64_t candidate = 0xA57EFAC7; !have; ++candidate) {
    const auto c = make_fuzz_case(candidate);
    const auto factory = algo::make_factory(c.alg, c.param);
    try {
      recorded = run_asynchronous(c.graph, *factory, options, c.async);
      seed = candidate;
      have = true;
    } catch (const Error&) {
    }
  }

  const std::string dir = ::testing::TempDir();
  const std::string path = artifact_file(dir);
  std::remove(path.c_str());
  const char* old_dir = std::getenv("EDS_FUZZ_ARTIFACT_DIR");
  const std::string saved = old_dir != nullptr ? old_dir : "";
  ::setenv("EDS_FUZZ_ARTIFACT_DIR", dir.c_str(), /*overwrite=*/1);
  append_failing_seeds({seed});
  if (old_dir != nullptr) {
    ::setenv("EDS_FUZZ_ARTIFACT_DIR", saved.c_str(), /*overwrite=*/1);
  } else {
    ::unsetenv("EDS_FUZZ_ARTIFACT_DIR");
  }

  const auto seeds = load_failing_seeds(path);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], seed);

  const auto c = make_fuzz_case(seeds[0]);
  const auto factory = algo::make_factory(c.alg, c.param);
  const auto replayed = run_asynchronous(c.graph, *factory, options, c.async);
  EXPECT_EQ(format_transcript(replayed.run), format_transcript(recorded.run));
  EXPECT_EQ(format_fault_log(replayed.fault_log),
            format_fault_log(recorded.fault_log));
  EXPECT_EQ(replayed, recorded);
  std::remove(path.c_str());
}

TEST(AsyncDeterminism, SameSeedSameTranscriptAndFaultLog) {
  // A fixed Rng (not make_rng) so the crashed-node assertions below stay
  // valid under any EDS_FUZZ_SEED.
  Rng rng(0xDE7E121);
  const auto pg = test::random_ported_bounded(24, 4, 40, rng);

  AsyncOptions async;
  async.synchronizer = false;
  async.delay = {DelayKind::kUniform, 1, 6};
  async.seed = 0xC0FFEE;
  async.round_timeout = 8;
  async.faults.loss = 0.1;
  async.faults.duplicate = 0.05;
  async.faults.crashes = {{3, 5}, {11, 9}};

  RunOptions options;
  options.collect_trace = true;
  options.collect_messages = true;

  // Relay tolerates arbitrary fault-induced silence (it just forwards);
  // the paper's protocol algorithms would detect the violation and throw.
  const test::RelayFactory factory(3);
  const AsyncResult a = run_asynchronous(pg.ports(), factory, options, async);
  const AsyncResult b = run_asynchronous(pg.ports(), factory, options, async);
  EXPECT_EQ(a, b);  // full value equality: outputs, stats, fault log, ...
  EXPECT_EQ(format_transcript(a.run), format_transcript(b.run));
  EXPECT_EQ(format_fault_log(a.fault_log), format_fault_log(b.fault_log));
  EXPECT_FALSE(a.fault_log.empty());
  EXPECT_EQ(a.crashed[3], 1);
  EXPECT_EQ(a.crashed[11], 1);
}

TEST(AsyncDeterminism, ByteIdenticalAcrossBatchThreadCounts) {
  // The event loop is sequential; ExecOptions::threads parallelizes only
  // across jobs.  A faulty async batch must therefore be byte-identical
  // between --threads 1 and --threads 8.
  auto rng = test::make_rng(0xBA7C);
  std::vector<port::PortGraph> graphs;
  for (int i = 0; i < 6; ++i) {
    graphs.push_back(
        port::random_port_graph(random_degrees(rng, 14, 4), rng, 0.1));
  }
  const EchoFactory factory(4);

  std::vector<BatchJob> jobs;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    BatchJob job;
    job.graph = &graphs[i];
    job.factory = &factory;
    job.options.collect_messages = true;
    AsyncOptions async;
    async.synchronizer = false;
    async.delay = {DelayKind::kUniform, 1, 5};
    async.seed = 1000 + i;
    async.faults.loss = 0.05;
    async.faults.duplicate = 0.02;
    job.options.exec.async = async;
    jobs.push_back(std::move(job));
  }

  const auto one = BatchRunner(1).run(jobs);
  const auto eight = BatchRunner(8).run(jobs);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], eight[i]) << "job " << i;
    EXPECT_EQ(format_transcript(one[i]), format_transcript(eight[i]));
  }
}

TEST(AsyncFaults, CrashedRunsVerifyOnSurvivingSubgraph) {
  // Fixed Rng: the per-node crash assertions are about this exact
  // deterministic scenario, so the instance must not follow EDS_FUZZ_SEED.
  Rng rng(0xC4A5F1E1);
  const auto pg = test::random_ported_bounded(20, 4, 30, rng);
  const auto& sg = pg.graph();
  const std::size_t n = sg.num_nodes();

  AsyncOptions async;
  async.synchronizer = false;
  async.delay = {DelayKind::kFixed, 2, 2};
  async.seed = 0x5EED;
  // kPortOne runs exactly one communication round (its receive fires at
  // virtual time 2), so the victims crash at time 1 to be caught still
  // running.  Their round-1 messages are already in flight at that point
  // and still deliver; deliveries *to* them are dropped, so they never
  // halt and announce nothing.
  async.faults.crashes = {{0, 1}, {1, 1}, {7, 1}};

  const auto factory = algo::make_factory(Algorithm::kPortOne);
  const AsyncResult a = run_asynchronous(pg.ports(), *factory, {}, async);

  // Every time-1 victim died running (empty output), nobody else crashed.
  std::vector<char> alive(n, 1);
  for (const auto& c : async.faults.crashes) alive[c.node] = 0;
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(a.crashed[v] != 0, alive[v] == 0) << "node " << v;
    if (!alive[v]) {
      EXPECT_TRUE(a.run.outputs[v].empty()) << "node " << v;
    }
  }

  // Selected edges: claimed consistently from both (surviving) sides.
  const auto claims = [&](port::NodeId v, Port p) {
    return std::binary_search(a.run.outputs[v].begin(),
                              a.run.outputs[v].end(), p);
  };
  graph::EdgeSet selected(sg.num_edges());
  for (port::NodeId v = 0; v < n; ++v) {
    if (!alive[v]) continue;
    for (const Port i : a.run.outputs[v]) {
      const auto there = pg.ports().partner(v, i);
      if (alive[there.node] && claims(there.node, there.port)) {
        selected.insert(pg.edge_at(v, i));
      }
    }
  }

  // The surviving subgraph: same nodes, only edges between survivors.
  std::vector<graph::Edge> kept;
  std::vector<graph::EdgeId> kept_ids;
  for (graph::EdgeId e = 0; e < sg.num_edges(); ++e) {
    const auto& ed = sg.edge(e);
    if (alive[ed.u] && alive[ed.v]) {
      kept.push_back(ed);
      kept_ids.push_back(e);
    }
  }
  const auto sub = graph::SimpleGraph::from_edges(n, kept);
  graph::EdgeSet sub_selected(sub.num_edges());
  for (std::size_t idx = 0; idx < kept_ids.size(); ++idx) {
    if (selected.contains(kept_ids[idx])) {
      sub_selected.insert(static_cast<graph::EdgeId>(idx));
    }
  }
  // A fixed-seed regression, not a theorem: port-one's guarantee is for
  // fault-free runs, but on this deterministic scenario the survivors'
  // selection still dominates the surviving subgraph.
  EXPECT_TRUE(analysis::is_edge_dominating_set(sub, sub_selected));
}

TEST(AsyncFaults, ProtocolAlgorithmsDetectFaultInducedSilence) {
  // The paper's handshake protocols assume lock-step delivery; a crashed
  // neighbour feeds them silence where a structured message is expected.
  // They must fail loudly (their internal invariant checks fire) rather
  // than emit a garbage selection.
  Rng rng(0xC4A5F1E1);
  const auto pg = test::random_ported_bounded(20, 4, 30, rng);

  AsyncOptions async;
  async.synchronizer = false;
  async.delay = {DelayKind::kFixed, 2, 2};
  async.seed = 0x5EED;
  async.round_timeout = 6;
  async.faults.crashes = {{1, 9}, {7, 17}, {13, 3}};

  const auto factory = algo::make_factory(Algorithm::kBoundedDegree, 4);
  EXPECT_THROW((void)run_asynchronous(pg.ports(), *factory, {}, async),
               Error);
}

TEST(AsyncFaults, DuplicatedDeliveryIsIdempotent) {
  // duplicate = 1.0 doubles every transmission; suppression must keep the
  // execution identical to the synchronous run (no loss, no crashes).
  // Fixed Rng: duplicated > 0 needs an instance with real traffic.
  Rng rng(0xD0B71E);
  std::vector<Port> degrees = random_degrees(rng, 12, 4);
  degrees[0] = std::max<Port>(degrees[0], 1);
  const auto g = port::random_port_graph(degrees, rng);

  AsyncOptions async;
  async.synchronizer = false;
  async.delay = {DelayKind::kUniform, 1, 4};
  async.seed = 77;
  async.faults.duplicate = 1.0;

  const EchoFactory factory(5);
  const RunResult sync = run_synchronous(g, factory, {});
  const AsyncResult a = run_asynchronous(g, factory, {}, async);
  EXPECT_EQ(a.run.outputs, sync.outputs);
  EXPECT_EQ(a.run.stats, sync.stats);
  EXPECT_GT(a.async.duplicated, 0u);
  EXPECT_GT(a.async.stale, 0u);  // every duplicate was suppressed
}

TEST(AsyncFaults, LossIsInjectedAndLogged) {
  // Fixed Rng: lost > 0 is a property of this exact seeded scenario.
  Rng rng(0x1055E5);
  std::vector<Port> degrees = random_degrees(rng, 10, 3);
  degrees[0] = std::max<Port>(degrees[0], 1);
  const auto g = port::random_port_graph(degrees, rng);

  AsyncOptions async;
  async.synchronizer = false;
  async.delay = {DelayKind::kFixed, 1, 1};
  async.seed = 5;
  async.faults.loss = 0.5;
  async.round_timeout = 4;

  const AsyncResult a = run_asynchronous(g, EchoFactory(6), {}, async);
  EXPECT_GT(a.async.lost, 0u);
  EXPECT_GT(a.async.timeouts, 0u);
  std::size_t logged_losses = 0;
  for (const auto& e : a.fault_log) {
    logged_losses += e.kind == FaultKind::kLoss;
  }
  EXPECT_EQ(logged_losses, a.async.lost);
}

TEST(AsyncValidation, OptionCombinationsAreRejected) {
  const auto g = test::figure2_multigraph_m();
  const EchoFactory factory(2);

  AsyncOptions lossy;
  lossy.faults.loss = 0.1;  // synchronizer (default on) + loss
  EXPECT_THROW((void)run_asynchronous(g, factory, {}, lossy),
               InvalidArgument);

  AsyncOptions crashy;
  crashy.faults.crashes = {{0, 5}};
  EXPECT_THROW((void)run_asynchronous(g, factory, {}, crashy),
               InvalidArgument);

  AsyncOptions out_of_range;
  out_of_range.synchronizer = false;
  out_of_range.faults.crashes = {{9, 5}};  // M has two nodes
  EXPECT_THROW((void)run_asynchronous(g, factory, {}, out_of_range),
               InvalidArgument);

  AsyncOptions bad_probability;
  bad_probability.synchronizer = false;
  bad_probability.faults.loss = 1.5;
  EXPECT_THROW((void)run_asynchronous(g, factory, {}, bad_probability),
               InvalidArgument);

  RunOptions zero_rounds;
  zero_rounds.max_rounds = 0;
  EXPECT_THROW((void)run_asynchronous(g, factory, zero_rounds, {}),
               InvalidArgument);

  const AsyncOptions defaults;
  RunOptions tight;
  tight.max_rounds = 3;
  EXPECT_THROW((void)run_asynchronous(g, EchoFactory(10), tight, defaults),
               ExecutionError);  // round limit, mirroring the sync engine
}

TEST(AsyncValidation, DelaySpecsParseAndRoundTrip) {
  EXPECT_EQ(parse_delay_model("fixed:3"),
            (DelayModel{DelayKind::kFixed, 3, 3}));
  EXPECT_EQ(parse_delay_model("uniform:1:8"),
            (DelayModel{DelayKind::kUniform, 1, 8}));
  EXPECT_EQ(parse_delay_model("geometric:4"),
            (DelayModel{DelayKind::kGeometric, 4, 32}));
  EXPECT_EQ(parse_delay_model("geometric:4:10"),
            (DelayModel{DelayKind::kGeometric, 4, 10}));
  for (const auto& spec : oracle_delays()) {
    EXPECT_EQ(parse_delay_model(format_delay_model(spec)), spec);
  }
  for (const char* bad : {"", "fixed", "fixed:0", "uniform:5:2", "uniform:1",
                          "exponential:3", "fixed:abc", "fixed:1:2"}) {
    EXPECT_THROW((void)parse_delay_model(bad), InvalidArgument) << bad;
  }
}

TEST(AsyncValidation, MakeFaultPlanIsSeededAndClamped) {
  const auto a = make_fault_plan(0.1, 0.2, 3, 10, 50, 42);
  const auto b = make_fault_plan(0.1, 0.2, 3, 10, 50, 42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.crashes.size(), 3u);
  for (const auto& c : a.crashes) {
    EXPECT_LT(c.node, 10u);
    EXPECT_GE(c.time, 1u);
    EXPECT_LE(c.time, 50u);
  }
  const auto c = make_fault_plan(0.1, 0.2, 3, 10, 50, 43);
  EXPECT_NE(a, c);  // a different seed draws a different schedule
  EXPECT_EQ(make_fault_plan(0, 0, 99, 4, 10, 1).crashes.size(), 4u);
  EXPECT_TRUE(make_fault_plan(0, 0, 0, 10, 50, 1).empty());
}

TEST(AsyncDispatch, ExecOptionsRouteThroughRunSynchronous) {
  const auto pg = test::figure2_graph_h();
  const auto factory = algo::make_factory(Algorithm::kBoundedDegree, 3);

  RunOptions options;
  options.collect_trace = true;
  const RunResult plain = run_synchronous(pg.ports(), *factory, options);

  AsyncOptions async;
  async.delay = {DelayKind::kUniform, 1, 6};
  async.seed = 11;
  options.exec.async = async;
  const RunResult routed = run_synchronous(pg.ports(), *factory, options);
  EXPECT_EQ(routed, plain);

  // The driver layer inherits the dispatch via ExecOptions.
  ExecOptions exec;
  exec.async = async;
  const auto outcome =
      algo::run_algorithm(pg, Algorithm::kBoundedDegree, 3, exec);
  const auto baseline = algo::run_algorithm(pg, Algorithm::kBoundedDegree, 3);
  EXPECT_EQ(outcome.solution.to_vector(), baseline.solution.to_vector());
  EXPECT_EQ(outcome.stats, baseline.stats);
}

TEST(AsyncDispatch, ProcessShardExecutorAcceptsAsyncButNotSchedules) {
  const auto g = test::figure2_multigraph_m();
  const EchoFactory factory(2);
  BatchJob job;
  job.graph = &g;
  job.factory = &factory;
  JobSpec spec;
  spec.algorithm = "echo";
  job.spec = spec;
  job.options.exec.async = AsyncOptions{};

  // Since schema 2 plain async jobs cross the wire...
  const ProcessShardExecutor executor({"/nonexistent/edsim", "worker"}, 2);
  EXPECT_NO_THROW(executor.validate({job}));

  // ...but adversarial schedules are an in-process search artifact and
  // never do.
  BatchJob scheduled = job;
  scheduled.options.exec.async->schedule.prio_seed = 7;
  EXPECT_THROW(executor.validate({scheduled}), InvalidArgument);
}

TEST(AsyncStatsCounters, SynchronizerAccountsAcksAndVirtualTime) {
  const auto g = loops_and_stagger_graph();
  AsyncOptions async;
  async.delay = {DelayKind::kFixed, 2, 2};
  const AsyncResult a = run_asynchronous(g, EchoFactory(3), {}, async);
  EXPECT_GT(a.async.virtual_time, 0u);
  EXPECT_GT(a.async.delivered, 0u);
  EXPECT_GT(a.async.acks, 0u);
  EXPECT_EQ(a.async.lost, 0u);
  EXPECT_EQ(a.async.timeouts, 0u);
  EXPECT_TRUE(a.fault_log.empty());

  // Free-running mode with no faults uses no acks at all.
  async.synchronizer = false;
  const AsyncResult b = run_asynchronous(g, EchoFactory(3), {}, async);
  EXPECT_EQ(b.async.acks, 0u);
  EXPECT_EQ(b.run.outputs, a.run.outputs);
}

}  // namespace
}  // namespace eds::runtime
