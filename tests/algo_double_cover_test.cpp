#include <gtest/gtest.h>

#include "algo/double_cover.hpp"
#include "algo/driver.hpp"
#include "analysis/verify.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "test_util.hpp"

namespace eds::algo {
namespace {

using analysis::is_k_matching;

graph::EdgeSet solve(const port::PortedGraph& pg) {
  return run_algorithm(pg, Algorithm::kDoubleCover).solution;
}

TEST(DoubleCover, ProducesATwoMatching) {
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    const auto pg = test::random_ported_bounded(25, 5, 45, rng);
    const auto& g = pg.graph();
    const auto p = solve(pg);
    EXPECT_TRUE(is_k_matching(g, p, 2)) << "trial " << trial;
  }
}

TEST(DoubleCover, DominatesEveryEdge) {
  // The Polishchuk–Suomela guarantee: P dominates all edges (every edge has
  // a P-covered endpoint).
  Rng rng(2);
  for (int trial = 0; trial < 15; ++trial) {
    const auto g = graph::random_bounded_degree(25, 5, 45, rng);
    if (g.num_edges() == 0) continue;
    const auto pg = port::with_random_ports(g, rng);
    const auto p = solve(pg);
    EXPECT_TRUE(analysis::is_edge_dominating_set(g, p)) << "trial " << trial;
  }
}

TEST(DoubleCover, CoveredNodesFormAVertexCover) {
  // Corollary: P-nodes form a vertex cover (of size <= 3 OPT_VC; here we
  // verify coverage, not the ratio).
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pg = test::random_ported_bounded(20, 4, 35, rng);
    const auto& g = pg.graph();
    const auto p = solve(pg);
    std::vector<bool> covered(g.num_nodes(), false);
    for (const auto e : p.to_vector()) {
      covered[g.edge(e).u] = true;
      covered[g.edge(e).v] = true;
    }
    for (const auto& edge : g.edges()) {
      EXPECT_TRUE(covered[edge.u] || covered[edge.v]);
    }
  }
}

TEST(DoubleCover, PathGetsDominated) {
  const auto g = graph::path(10);
  const auto pg = port::with_canonical_ports(g);
  const auto p = solve(pg);
  EXPECT_TRUE(analysis::is_edge_dominating_set(g, p));
  EXPECT_TRUE(is_k_matching(g, p, 2));
}

TEST(DoubleCover, CycleSelectsAlternatingStructure) {
  Rng rng(4);
  const auto g = graph::cycle(12);
  const auto pg = port::with_random_ports(g, rng);
  const auto p = solve(pg);
  EXPECT_TRUE(analysis::is_edge_dominating_set(g, p));
}

TEST(DoubleCover, ScheduleIsLinearInDelta) {
  EXPECT_EQ(DoubleCoverProgram::schedule_length(4), 8u);
  EXPECT_EQ(DoubleCoverProgram::schedule_length(7), 14u);
}

TEST(DoubleCover, RoundsMatchSchedule) {
  Rng rng(5);
  const auto pg = test::random_ported_regular(14, 4, rng);
  const auto outcome = run_algorithm(pg, Algorithm::kDoubleCover, 4);
  EXPECT_EQ(outcome.stats.rounds, DoubleCoverProgram::schedule_length(4));
}

TEST(DoubleCover, SingleEdge) {
  const auto g = graph::path(2);
  const auto pg = port::with_canonical_ports(g);
  const auto p = solve(pg);
  EXPECT_EQ(p.size(), 1u);  // both endpoints propose; the edge is selected
}

TEST(DoubleCover, RejectsZeroDelta) {
  EXPECT_THROW(DoubleCoverProgram{0}, InvalidArgument);
}

TEST(DoubleCover, RejectsOverDegree) {
  Rng rng(6);
  const auto g = graph::star(5);
  const auto pg = port::with_random_ports(g, rng);
  EXPECT_THROW((void)run_algorithm(pg, Algorithm::kDoubleCover, 2),
               ExecutionError);
}

TEST(DoubleCover, StarGetsDominatedThroughTheCentre) {
  const auto g = graph::star(7);
  const auto pg = port::with_canonical_ports(g);
  const auto p = solve(pg);
  EXPECT_TRUE(analysis::is_edge_dominating_set(g, p));
  EXPECT_TRUE(is_k_matching(g, p, 2));
  EXPECT_LE(p.size(), 2u);  // centre can appear in at most 2 P edges
}

}  // namespace
}  // namespace eds::algo
