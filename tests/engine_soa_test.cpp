// The rebuilt message transport (sender-indexed double-buffered outbox,
// struct-of-arrays tag lane, degree-balanced shard boundaries) against the
// policy-free seed oracle: bit-identity across lane counts on the degree
// distributions that stress lane balancing hardest, byte-level accounting
// for the pooled buffers, and the profiling-flag epoch cache.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "port/random_port_graph.hpp"
#include "runtime/engine.hpp"
#include "runtime/message.hpp"
#include "runtime/runner.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "test_util.hpp"

namespace eds::runtime {
namespace {

using test::EchoFactory;
using test::reference_run;

/// Runs `g` under every lane count in `lane_counts` (plus the oracle) and
/// demands bit-identical RunResults.  The worst-case inputs here are
/// degree-skewed: balanced_shard_bounds hands lanes very different node
/// counts, and empty shards are possible — none of which may leak into
/// results.
void expect_lane_counts_match(const port::PortGraph& g,
                              const ProgramFactory& factory,
                              const char* label) {
  RunOptions options;
  options.collect_trace = true;
  options.collect_messages = true;
  const auto expected = reference_run(g, factory, options);
  for (const unsigned threads : {1u, 2u, 8u, 16u}) {
    options.exec.threads = threads;
    const auto got = run_synchronous(g, factory, options);
    EXPECT_TRUE(got == expected)
        << label << ": threads=" << threads
        << " diverged from the seed oracle (rounds " << got.stats.rounds
        << " vs " << expected.stats.rounds << ", messages "
        << got.stats.messages_sent << " vs " << expected.stats.messages_sent
        << ", log " << got.message_log.size() << " vs "
        << expected.message_log.size() << ")";
  }
}

TEST(EngineSoa, PowerLawDifferentialAcrossLaneCounts) {
  // Power-law degrees: a few heavy nodes absorb several port-balanced
  // boundary targets, so some shards come out empty and the rest carry
  // wildly uneven node counts.
  auto rng = test::make_rng(0x50A1);
  const auto pg =
      port::with_random_ports(graph::random_power_law(300, 2.1, rng), rng);
  expect_lane_counts_match(pg.ports(), EchoFactory(5), "power-law");
}

TEST(EngineSoa, StarDifferentialAcrossLaneCounts) {
  // The star is the extreme imbalance: the hub holds half of all ports, so
  // every port-balanced split puts it alone in one shard.
  auto rng = test::make_rng(0x57A2);
  const auto pg = port::with_random_ports(graph::star(64), rng);
  expect_lane_counts_match(pg.ports(), EchoFactory(4), "star");
}

TEST(EngineSoa, StarMultigraphDifferentialAcrossLaneCounts) {
  // A star-shaped multigraph built straight from a degree sequence: one
  // hub of degree 96 against 32 leaves of degree 3, wired by a random
  // involution — parallel edges, self-loops and fixed points included, so
  // the sender-segment transport is exercised on every port species.
  auto rng = test::make_rng(0x57A3);
  std::vector<port::Port> degrees(33, 3);
  degrees[0] = 96;
  const auto g = port::random_port_graph(degrees, rng);
  expect_lane_counts_match(g, EchoFactory(6), "star-multigraph");
}

TEST(EngineSoa, ProfiledRunsStayBitIdentical) {
  // Stage profiling drives shards as split sweeps instead of the fused
  // per-node loop; the differential bar applies to that path unchanged.
  auto rng = test::make_rng(0x50A4);
  const auto pg =
      port::with_random_ports(graph::random_power_law(200, 2.3, rng), rng);
  engine_stage_profiling(true);
  expect_lane_counts_match(pg.ports(), EchoFactory(5), "profiled power-law");
  engine_stage_profiling(false);
  const auto stats = engine_stage_stats();
  EXPECT_GT(stats.profiled_rounds, 0u);
  EXPECT_GE(stats.exchange_ns, stats.scatter_ns)
      << "the tag-shadow sweep is a component of the exchange time";
}

TEST(EngineSoa, BalancedShardBoundsEqualizePortCounts) {
  // Star worklist: hub (64 ports) first, then 64 leaves (1 port each).
  // Port-balanced bounds must give the hub its own shard and split the
  // leaves over the rest; equal-count bounds would put 16 leaves next to
  // the hub and starve the last shard.
  std::vector<std::uint64_t> weights{64};
  weights.insert(weights.end(), 64, 1);
  std::vector<std::size_t> bounds;
  balanced_shard_bounds(
      weights.size(), 4, [&](std::size_t i) { return weights[i]; }, bounds);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[1], 1u) << "the hub alone already fills shard 0's target";
  EXPECT_EQ(bounds[4], weights.size());
  // Every remaining shard's port total stays near 128 / 4 = 32.
  for (std::size_t s = 1; s < 4; ++s) {
    std::uint64_t total = 0;
    for (std::size_t i = bounds[s]; i < bounds[s + 1]; ++i) {
      total += weights[i];
    }
    EXPECT_LE(total, 33u) << "shard " << s;
  }

  // All-zero weights fall back to an equal-count split.
  balanced_shard_bounds(
      8, 4, [](std::size_t) { return std::uint64_t{0}; }, bounds);
  EXPECT_EQ(bounds, (std::vector<std::size_t>{0, 2, 4, 6, 8}));
}

TEST(EngineSoa, WorkspaceReturnsEveryPooledByteOnTeardown) {
  // Mirror of BatchStream.DroppingAnUndrainedStreamReleasesWorkspaceBytes
  // for the transport buffers themselves: a lane that ran the
  // double-buffered engine gives back every byte the gauge charged it —
  // outbox pairs, tag lanes and shard scratch included — when the thread
  // exits.
  const auto baseline = engine_alloc_stats().workspace_bytes;
  std::uint64_t charged = 0;
  std::thread lane([&] {
    auto rng = test::make_rng(0x50A6);
    const auto pg = test::random_ported_regular(256, 6, rng);
    RunOptions options;
    for (const unsigned threads : {1u, 8u}) {
      options.exec.threads = threads;
      (void)run_synchronous(pg.ports(), EchoFactory(4), options);
    }
    charged = engine_alloc_stats().workspace_bytes - baseline;
  });
  lane.join();
  EXPECT_GT(charged, 0u) << "the lane's workspace was never accounted";
  EXPECT_EQ(engine_alloc_stats().workspace_bytes, baseline)
      << "a dead lane left pooled transport bytes in the gauge";
}

TEST(EngineSoa, StatsResetResamplesProfilingFlag) {
  // Regression for the epoch cache: a lane that sampled "profiling off"
  // must pick up a later toggle even when the only intervening global
  // operation is a stats reset (the reset bumps the epoch too, so
  // back-to-back measurement windows in one process work on every lane).
  const auto pg = port::with_canonical_ports(graph::cycle(12));
  engine_stage_profiling(false);
  (void)run_synchronous(pg.ports(), EchoFactory(3));  // caches "off"

  engine_stage_profiling(true);
  engine_stage_stats_reset();
  const auto result = run_synchronous(pg.ports(), EchoFactory(3));
  engine_stage_profiling(false);
  EXPECT_EQ(engine_stage_stats().profiled_rounds, result.stats.rounds)
      << "the run after the reset still used the stale cached flag";

  engine_stage_stats_reset();
  EXPECT_EQ(engine_stage_stats().profiled_rounds, 0u);
  (void)run_synchronous(pg.ports(), EchoFactory(3));
  EXPECT_EQ(engine_stage_stats().profiled_rounds, 0u)
      << "profiling off must stick after a reset as well";
}

TEST(EngineSoa, CountNonsilenceMatchesNaiveSweep) {
  // The branch-free tag sweep against the obvious loop, on a lane with a
  // mixed silence pattern (including negative tags, which count).
  MessageLanes lanes;
  lanes.assign_silence(1000);
  auto rng = test::make_rng(0x50A7);
  std::uint64_t expected = 0;
  for (std::size_t q = 0; q < 1000; ++q) {
    const auto roll = rng.next_u64() % 4;
    const std::int32_t tag =
        roll == 0 ? 0 : (roll == 1 ? -7 : static_cast<std::int32_t>(q + 1));
    lanes.store(q, msg(tag, 1, 2, 3));
    if (tag != 0) ++expected;
  }
  EXPECT_EQ(count_nonsilence(lanes.tags(), lanes.size()), expected);
  EXPECT_EQ(lanes.load(5).arg[2], 3);
  lanes.silence(5);
  EXPECT_TRUE(lanes.load(5) == kSilence);
}

}  // namespace
}  // namespace eds::runtime
