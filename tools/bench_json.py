#!/usr/bin/env python3
"""Convert google-benchmark JSON into the BENCH_runtime.json schema, and
compare two such files for regressions.

Convert mode (default) reads a `--benchmark_format=json` report on stdin
(or a file argument) and writes one record per benchmark:

    {"name": ..., "n": ..., "rounds": ..., "ns_per_op": ..., "counters": {...}}

plus a `context` block (host, date, threads) so the perf trajectory is
comparable across CI runs.  `n`/`rounds` come from the benchmark's exported
counters and are null for benchmarks that don't export them; every *other*
user counter (plan_hits, ws_growths, lanes, ...) lands in `counters`;
`ns_per_op` is wall time per iteration in nanoseconds.

Compare mode diffs two converted files per benchmark and per counter, and
fails (exit 2) when wall time regresses beyond the threshold:

    tools/bench_json.py --compare old.json new.json [--threshold 0.10]

Usage:
    bench/bench_micro_runtime --benchmark_format=json | tools/bench_json.py \
        > BENCH_runtime.json
"""
import argparse
import json
import sys

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# google-benchmark's own per-benchmark JSON fields; everything else numeric
# is a user counter exported via state.counters.  (Benchmarks must not name
# a counter after a builtin — e.g. use `lanes`, not `threads`.)
BUILTIN_FIELDS = {
    "family_index", "per_family_instance_index", "repetition_index",
    "repetitions", "iterations", "real_time", "cpu_time", "threads",
    "time_unit",
    # Derived rate fields (SetItemsProcessed/SetBytesProcessed): pure
    # wall-clock restatements that would add a noise row to every
    # --compare report.
    "items_per_second", "bytes_per_second",
}


def convert(report: dict) -> dict:
    records = []
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        scale = UNIT_TO_NS.get(bench.get("time_unit", "ns"), 1.0)
        counters = {
            key: value
            for key, value in bench.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
            and key not in BUILTIN_FIELDS and key not in ("n", "rounds")
        }
        records.append({
            "name": bench["name"],
            "n": int(bench["n"]) if "n" in bench else None,
            "rounds": int(bench["rounds"]) if "rounds" in bench else None,
            "ns_per_op": bench["real_time"] * scale,
            "counters": counters,
        })
    context = report.get("context", {})
    return {
        "context": {
            "date": context.get("date"),
            "host_name": context.get("host_name"),
            "num_cpus": context.get("num_cpus"),
            # How the google-benchmark *library* was built, NOT this
            # project's CMAKE_BUILD_TYPE (distro packages often say
            # "debug" here even under a Release project build).
            "benchmark_library_build_type": context.get("library_build_type"),
            # "ON" when the bench binary was compiled with EDS_NATIVE
            # (-march=native).  Injected by bench_micro_runtime's main via
            # AddCustomContext; snapshots predating the field are portable
            # builds, so a missing key reads as "OFF" in --compare.
            "eds_native": context.get("eds_native", "OFF"),
        },
        "benchmarks": records,
    }


def _fmt_delta(old, new):
    if old in (None, 0) or new is None:
        return "n/a"
    return f"{(new - old) / old * 100.0:+.1f}%"


def compare(old_path: str, new_path: str, threshold: float) -> int:
    """Prints a markdown table of per-benchmark/per-counter deltas; returns
    2 when any benchmark's ns_per_op regressed by more than `threshold`.

    Wall-time across different hardware is not comparable, so the gate is
    only authoritative when both files were produced on the same CPU count
    (the cheapest context signal that survives CI's anonymized hostnames);
    otherwise regressions are reported but the exit code stays 0, and the
    gate becomes blocking once the committed snapshot is regenerated on
    hardware matching the runner's.  The same demotion applies when the two
    files disagree on the eds_native codegen flavor (-march=native vs
    portable; snapshots without the field count as portable): those numbers
    differ by design, not by regression."""
    with open(old_path) as f:
        old_report = json.load(f)
    with open(new_path) as f:
        new_report = json.load(f)
    old = {b["name"]: b for b in old_report["benchmarks"]}
    new = {b["name"]: b for b in new_report["benchmarks"]}
    old_ctx = old_report.get("context") or {}
    new_ctx = new_report.get("context") or {}
    old_cpus = old_ctx.get("num_cpus")
    new_cpus = new_ctx.get("num_cpus")
    old_native = old_ctx.get("eds_native") or "OFF"
    new_native = new_ctx.get("eds_native") or "OFF"
    cpus_match = old_cpus is not None and old_cpus == new_cpus
    native_match = old_native == new_native
    comparable = cpus_match and native_match

    regressions = []
    print(f"## Benchmark comparison (threshold {threshold * 100:.0f}%)")
    print()
    if not cpus_match:
        print(f"**Baseline is from different hardware "
              f"(num_cpus {old_cpus} vs {new_cpus}): wall-time deltas are "
              f"informational, not gating.**")
        print()
    if not native_match:
        print(f"**Codegen flavors differ (eds_native {old_native} vs "
              f"{new_native}): wall-time deltas are informational, not "
              f"gating.**")
        print()
    print("| benchmark | old ns/op | new ns/op | delta | counter deltas |")
    print("|---|---:|---:|---:|---|")
    for name in sorted(set(old) | set(new)):
        if name not in new:
            print(f"| {name} | {old[name]['ns_per_op']:.0f} | removed | | |")
            continue
        if name not in old:
            print(f"| {name} | new | {new[name]['ns_per_op']:.0f} | | |")
            continue
        o, n = old[name], new[name]
        delta = _fmt_delta(o["ns_per_op"], n["ns_per_op"])
        if o["ns_per_op"] > 0 and \
                n["ns_per_op"] > o["ns_per_op"] * (1.0 + threshold):
            delta += " REGRESSION"
            regressions.append(name)
        counter_bits = []
        old_counters = dict(o.get("counters") or {})
        for key in ("n", "rounds"):
            if o.get(key) is not None:
                old_counters[key] = o[key]
        new_counters = dict(n.get("counters") or {})
        for key in ("n", "rounds"):
            if n.get(key) is not None:
                new_counters[key] = n[key]
        for key in sorted(set(old_counters) | set(new_counters)):
            ov, nv = old_counters.get(key), new_counters.get(key)
            if ov == nv:
                continue
            # Wall-time counters (the engine's exchange_ns/receive_ns stage
            # split) jitter on every run; listing them would put a noise row
            # in every comparison.  They stay in the converted records —
            # read them from the artifacts — but the delta column tracks
            # only shape/count counters.
            if key.endswith("_ns"):
                continue
            counter_bits.append(f"{key}: {ov} -> {nv} ({_fmt_delta(ov, nv)})")
        print(f"| {name} | {o['ns_per_op']:.0f} | {n['ns_per_op']:.0f} "
              f"| {delta} | {'; '.join(counter_bits)} |")
    print()
    if regressions:
        print(f"**{len(regressions)} regression(s) beyond "
              f"{threshold * 100:.0f}%:** {', '.join(regressions)}")
        return 2 if comparable else 0
    print("No wall-time regressions beyond the threshold.")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="BENCH_runtime.json converter / comparator")
    parser.add_argument("input", nargs="?",
                        help="google-benchmark JSON (default: stdin)")
    parser.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                        help="diff two converted BENCH_runtime.json files")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative ns_per_op regression gate "
                             "(default 0.10 = 10%%)")
    args = parser.parse_args()

    if args.compare:
        return compare(args.compare[0], args.compare[1], args.threshold)

    source = open(args.input) if args.input else sys.stdin
    with source:
        report = json.load(source)
    json.dump(convert(report), sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
