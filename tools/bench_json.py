#!/usr/bin/env python3
"""Convert google-benchmark JSON into the BENCH_runtime.json schema.

Reads a `--benchmark_format=json` report on stdin (or a file argument) and
writes one record per benchmark:

    {"name": ..., "n": ..., "rounds": ..., "ns_per_op": ...}

plus a `context` block (host, date, threads) so the perf trajectory is
comparable across CI runs.  `n`/`rounds` come from the benchmark's exported
counters and are null for benchmarks that don't export them; `ns_per_op` is
wall time per iteration in nanoseconds.

Usage:
    bench/bench_micro_runtime --benchmark_format=json | tools/bench_json.py \
        > BENCH_runtime.json
"""
import json
import sys

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def convert(report: dict) -> dict:
    records = []
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        scale = UNIT_TO_NS.get(bench.get("time_unit", "ns"), 1.0)
        records.append({
            "name": bench["name"],
            "n": int(bench["n"]) if "n" in bench else None,
            "rounds": int(bench["rounds"]) if "rounds" in bench else None,
            "ns_per_op": bench["real_time"] * scale,
        })
    context = report.get("context", {})
    return {
        "context": {
            "date": context.get("date"),
            "host_name": context.get("host_name"),
            "num_cpus": context.get("num_cpus"),
            # How the google-benchmark *library* was built, NOT this
            # project's CMAKE_BUILD_TYPE (distro packages often say
            # "debug" here even under a Release project build).
            "benchmark_library_build_type": context.get("library_build_type"),
        },
        "benchmarks": records,
    }


def main() -> int:
    source = open(sys.argv[1]) if len(sys.argv) > 1 else sys.stdin
    with source:
        report = json.load(source)
    json.dump(convert(report), sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
