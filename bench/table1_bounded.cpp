// Reproduces Table 1, bounded-degree rows: the family A(∆) of Theorem 5.
//
// For each ∆ we report the paper bound α(∆) (= 1, 4−2/(∆−1) odd, 4−2/∆
// even), the measured worst case of A(∆) over worst-case-flavoured and
// random bounded-degree instances, and the O(∆²) round count.  The matching
// lower bound comes from the even-regular construction with d = ∆ (even) or
// d = ∆ − 1 embedded as a max-degree-∆ instance (Corollary 1).
#include <iostream>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "exact/exact_eds.hpp"
#include "graph/generators.hpp"
#include "lb/lower_bounds.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using eds::Fraction;
using eds::algo::Algorithm;

}  // namespace

int main() {
  eds::Rng rng(183);
  eds::TextTable table("Table 1 (bounded-degree rows): A(Delta) vs paper");
  table.header({"Delta", "paper alpha", "LB-graph measured", "tight?",
                "random worst", "<= bound?", "rounds", "feasible"});

  for (eds::port::Port delta = 1; delta <= 10; ++delta) {
    const auto bound = eds::analysis::paper_bound_bounded(delta);
    Fraction lb_measured(0);
    eds::runtime::Round rounds = 0;
    bool feasible = true;

    if (delta == 1) {
      const auto g = eds::graph::circulant(8, {4});
      const auto pg = eds::port::with_canonical_ports(g);
      const auto outcome = eds::algo::run_algorithm(pg, Algorithm::kAllEdges);
      lb_measured = eds::analysis::approximation_ratio(
          outcome.solution.size(), eds::exact::minimum_eds_size(g));
      rounds = outcome.stats.rounds;
    } else {
      // Corollary 1: the even-regular worst case at d = 2k is also the
      // bounded-degree worst case for ∆ ∈ {2k, 2k+1}.
      const eds::port::Port d = delta % 2 == 0 ? delta : delta - 1;
      const auto inst = eds::lb::even_lower_bound(d);
      const auto outcome =
          eds::algo::run_algorithm(inst.ported, Algorithm::kBoundedDegree,
                                   delta);
      lb_measured = eds::analysis::approximation_ratio(
          outcome.solution.size(), inst.optimal.size());
      rounds = outcome.stats.rounds;
      feasible = eds::analysis::is_edge_dominating_set(inst.ported.graph(),
                                                       outcome.solution);
    }

    // Random bounded-degree instances with exact optima, generated
    // sequentially (the RNG stream is the experiment) and executed as one
    // batch over the engine pool.
    Fraction random_worst(0);
    std::vector<eds::port::PortedGraph> numberings;
    std::vector<std::size_t> optima;
    for (int instance = 0; instance < 5; ++instance) {
      const auto g = eds::graph::random_bounded_degree(14, delta, 24, rng);
      if (g.num_edges() == 0 || g.max_degree() > delta) continue;
      const auto optimum = eds::exact::minimum_eds_size(g);
      if (optimum == 0) continue;
      numberings.push_back(eds::port::with_random_ports(g, rng));
      optima.push_back(optimum);
    }
    std::vector<eds::algo::BatchItem> items;
    items.reserve(numberings.size());
    for (const auto& pg : numberings) {
      items.push_back({&pg, Algorithm::kBoundedDegree, delta});
    }
    const auto outcomes = eds::algo::run_batch(items);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      feasible = feasible &&
                 eds::analysis::is_edge_dominating_set(numberings[i].graph(),
                                                       outcomes[i].solution);
      const auto ratio = eds::analysis::approximation_ratio(
          outcomes[i].solution.size(), optima[i]);
      if (ratio > random_worst) random_worst = ratio;
    }

    table.row({std::to_string(delta), bound.str(), lb_measured.str(),
               delta >= 2 && lb_measured == bound
                   ? "EQUAL"
                   : (delta == 1 ? "trivial" : "no"),
               random_worst.str(), random_worst <= bound ? "yes" : "VIOLATED",
               std::to_string(rounds), feasible ? "yes" : "NO"});
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: the LB-graph column equals alpha(Delta) for"
               " every Delta >= 2\n(Corollary 1 is tight via Theorem 5); note"
               " alpha(2k) = alpha(2k+1) = 4 - 1/k,\nso consecutive rows pair"
               " up.  Rounds grow as O(Delta^2).\n";
  return 0;
}
