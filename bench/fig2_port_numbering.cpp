// Figure 2: port-numbered graphs — the simple graph H and the multigraph M
// with parallel edges, an undirected loop and a directed loop — plus the
// Section 5 facts about distinguishable neighbours that the paper reads off
// of H.
#include <iostream>

#include "graph/simple_graph.hpp"
#include "port/labels.hpp"
#include "port/port_graph.hpp"
#include "port/ported_graph.hpp"
#include "util/table.hpp"

int main() {
  using eds::graph::EdgeId;
  using eds::graph::SimpleGraph;
  using eds::port::PortedGraph;
  using eds::port::PortGraphBuilder;

  // --- the multigraph M ---------------------------------------------------
  PortGraphBuilder mb({3, 4});
  mb.connect({0, 1}, {1, 2});
  mb.connect({0, 2}, {1, 1});
  mb.fix({0, 3});
  mb.connect({1, 3}, {1, 4});
  const auto m = mb.build();

  std::cout << "Multigraph M (V = {s, t}, d(s) = 3, d(t) = 4): "
            << m.summary() << "\n";
  for (const auto& pe : m.port_edges()) {
    std::cout << "  (" << (pe.a.node == 0 ? 's' : 't') << "," << pe.a.port
              << ")";
    if (pe.directed_loop) {
      std::cout << " -> itself (directed loop)\n";
    } else {
      std::cout << " <-> (" << (pe.b.node == 0 ? 's' : 't') << "," << pe.b.port
                << ")" << (pe.is_loop() ? " (undirected loop)" : "") << "\n";
    }
  }
  std::cout << "simple? " << (m.is_simple() ? "yes" : "no") << "\n\n";

  // --- the simple graph H -------------------------------------------------
  auto h = SimpleGraph::from_edges(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  const std::vector<std::vector<EdgeId>> order{{1, 0}, {0, 2, 3}, {4, 1, 2},
                                               {4, 3}};
  const PortedGraph pg(std::move(h), order);
  const char* names = "abcd";

  eds::TextTable table("Graph H: label pairs and distinguishable neighbours");
  table.header({"node", "degree", "label pairs (by port)", "DN"});
  for (eds::graph::NodeId v = 0; v < 4; ++v) {
    std::string pairs;
    for (eds::port::Port i = 1; i <= pg.graph().degree(v); ++i) {
      const auto lp = eds::port::label_pair(pg, pg.edge_at(v, i));
      pairs += '{';
      pairs += std::to_string(lp.lo);
      pairs += ',';
      pairs += std::to_string(lp.hi);
      pairs += "} ";
    }
    const auto dn = eds::port::distinguishable_neighbour(pg, v);
    table.row({std::string(1, names[v]),
               std::to_string(pg.graph().degree(v)), pairs,
               dn ? std::string(1, names[*dn]) : "none"});
  }
  table.print(std::cout);

  std::cout << "\nPaper's claims verified: a is the DN of b; d is the DN of "
               "c; a has no\nuniquely labelled edge (its two label pairs "
               "coincide), as only\neven-degree nodes can (Lemma 1).\n";
  return 0;
}
