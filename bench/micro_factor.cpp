// google-benchmark: the factorisation substrate — Euler orientation,
// Hopcroft–Karp, Petersen 2-factorisation, and lower-bound construction.
#include <benchmark/benchmark.h>

#include "factor/bipartite_matching.hpp"
#include "factor/euler.hpp"
#include "factor/two_factor.hpp"
#include "graph/generators.hpp"
#include "lb/lower_bounds.hpp"
#include "util/rng.hpp"

namespace {

void BM_EulerOrientation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  eds::Rng rng(1);
  const auto g = eds::graph::random_regular(n, 6, rng);
  for (auto _ : state) {
    auto oriented = eds::factor::euler_orientation(g);
    benchmark::DoNotOptimize(oriented.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_EulerOrientation)->Arg(128)->Arg(512)->Arg(2048);

void BM_HopcroftKarp(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  eds::Rng rng(2);
  const auto g = eds::graph::random_bipartite_regular(side, 5, rng);
  eds::factor::BipartiteGraph b{side, side, {}};
  for (const auto& e : g.edges()) {
    b.edges.push_back({e.u, static_cast<std::uint32_t>(e.v - side)});
  }
  for (auto _ : state) {
    auto matching = eds::factor::hopcroft_karp(b);
    benchmark::DoNotOptimize(matching.size());
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(128)->Arg(512)->Arg(2048);

void BM_TwoFactorise(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  eds::Rng rng(3);
  const auto g = eds::graph::random_regular(n, d, rng);
  for (auto _ : state) {
    auto tf = eds::factor::two_factorise(g);
    benchmark::DoNotOptimize(tf.k());
  }
}
BENCHMARK(BM_TwoFactorise)->Args({64, 4})->Args({256, 4})->Args({256, 8});

void BM_EvenLowerBoundConstruction(benchmark::State& state) {
  const auto d = static_cast<eds::port::Port>(state.range(0));
  for (auto _ : state) {
    auto inst = eds::lb::even_lower_bound(d);
    benchmark::DoNotOptimize(inst.optimal.size());
  }
}
BENCHMARK(BM_EvenLowerBoundConstruction)->Arg(4)->Arg(8)->Arg(16);

void BM_OddLowerBoundConstruction(benchmark::State& state) {
  const auto d = static_cast<eds::port::Port>(state.range(0));
  for (auto _ : state) {
    auto inst = eds::lb::odd_lower_bound(d);
    benchmark::DoNotOptimize(inst.optimal.size());
  }
}
BENCHMARK(BM_OddLowerBoundConstruction)->Arg(3)->Arg(7)->Arg(11);

}  // namespace

BENCHMARK_MAIN();
