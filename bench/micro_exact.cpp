// google-benchmark: exact solver scaling (branch-and-bound vs brute force)
// and the centralised baselines.
#include <benchmark/benchmark.h>

#include "baseline/baseline.hpp"
#include "exact/exact_eds.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

void BM_ExactBranchAndBound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  eds::Rng rng(1);
  const auto g = eds::graph::random_regular(n, 3, rng);
  for (auto _ : state) {
    auto size = eds::exact::minimum_eds_size(g);
    benchmark::DoNotOptimize(size);
  }
}
BENCHMARK(BM_ExactBranchAndBound)->Arg(10)->Arg(14)->Arg(18)->Arg(22);

void BM_BruteForce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  eds::Rng rng(2);
  const auto g = eds::graph::random_bounded_degree(n, 3, n + 2, rng);
  if (g.num_edges() > 24) {
    state.SkipWithError("instance too large for brute force");
    return;
  }
  for (auto _ : state) {
    auto solution = eds::exact::brute_force_minimum_eds(g);
    benchmark::DoNotOptimize(solution.size());
  }
}
BENCHMARK(BM_BruteForce)->Arg(8)->Arg(10)->Arg(12);

void BM_GreedyMaximalMatching(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  eds::Rng rng(3);
  const auto g = eds::graph::random_regular(n, 6, rng);
  for (auto _ : state) {
    auto m = eds::baseline::greedy_maximal_matching(g);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_GreedyMaximalMatching)->Arg(256)->Arg(1024)->Arg(4096);

void BM_GreedyEds(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  eds::Rng rng(4);
  const auto g = eds::graph::random_regular(n, 4, rng);
  for (auto _ : state) {
    auto d = eds::baseline::greedy_eds(g);
    benchmark::DoNotOptimize(d.size());
  }
}
BENCHMARK(BM_GreedyEds)->Arg(32)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
