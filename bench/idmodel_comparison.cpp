// Section 1.3 in numbers: the ID model vs the anonymous port-numbering
// model.  With unique identifiers a deterministic maximal matching (ratio
// 2) is computable, but the round count carries a log*-of-id-space term and
// a Ω(log* n) barrier applies below ratio 3; the paper's anonymous
// algorithms run in rounds independent of n at the price of the Table 1
// ratios.  Both trade-offs, measured side by side.
#include <iostream>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "exact/exact_eds.hpp"
#include "graph/generators.hpp"
#include "idmodel/forest_matching.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  eds::Rng rng(5150);

  // --- ratio comparison on instances with exact optima --------------------
  {
    eds::TextTable table(
        "Solution quality: ID-model maximal matching vs anonymous (3-regular)");
    table.header({"instance", "optimum", "ID-model |M|", "anonymous |D|",
                  "ID ratio", "anon ratio", "ID bound", "anon bound"});
    // The anonymous runs execute as one batch over the engine pool; the
    // ID-model runs stay inline (they are the comparison baseline).
    std::vector<eds::port::PortedGraph> instances;
    std::vector<std::size_t> optima;
    std::vector<eds::idmodel::IdMatchingOutcome> id_outcomes;
    for (int trial = 0; trial < 5; ++trial) {
      const auto g = eds::graph::random_regular(12, 3, rng);
      optima.push_back(eds::exact::minimum_eds_size(g));
      instances.push_back(eds::port::with_random_ports(g, rng));
      id_outcomes.push_back(eds::idmodel::run_forest_matching(instances.back()));
    }
    std::vector<eds::algo::BatchItem> items;
    for (const auto& pg : instances) {
      items.push_back({&pg, eds::algo::Algorithm::kOddRegular, 3});
    }
    const auto anons = eds::algo::run_batch(items);
    for (std::size_t trial = 0; trial < instances.size(); ++trial) {
      const auto optimum = optima[trial];
      const auto& id = id_outcomes[trial];
      const auto& anon = anons[trial];
      table.row({"rand-12-" + std::to_string(trial), std::to_string(optimum),
                 std::to_string(id.matching.size()),
                 std::to_string(anon.solution.size()),
                 eds::analysis::approximation_ratio(id.matching.size(), optimum)
                     .str(),
                 eds::analysis::approximation_ratio(anon.solution.size(),
                                                    optimum)
                     .str(),
                 "2", eds::analysis::paper_bound_regular(3).str()});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- round comparison: the n-dependence ---------------------------------
  {
    eds::TextTable table(
        "Rounds vs n (d = 3): the ID model pays a log*(id-space) term");
    table.header({"n", "id bits", "ID-model rounds", "anonymous rounds"});
    const std::vector<std::size_t> ns{8u, 32u, 128u, 512u};
    std::vector<eds::port::PortedGraph> instances;
    std::vector<eds::idmodel::IdMatchingOutcome> id_outcomes;
    for (const std::size_t n : ns) {
      const auto g = eds::graph::random_regular(n, 3, rng);
      instances.push_back(eds::port::with_random_ports(g, rng));
      id_outcomes.push_back(eds::idmodel::run_forest_matching(instances.back()));
    }
    std::vector<eds::algo::BatchItem> items;
    for (const auto& pg : instances) {
      items.push_back({&pg, eds::algo::Algorithm::kOddRegular, 3});
    }
    const auto anons = eds::algo::run_batch(items);
    for (std::size_t i = 0; i < ns.size(); ++i) {
      const auto n = ns[i];
      const auto bits = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(std::bit_width(n - 1)));
      table.row({std::to_string(n), std::to_string(bits),
                 std::to_string(id_outcomes[i].stats.rounds),
                 std::to_string(anons[i].stats.rounds)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- the id-space knob in isolation --------------------------------------
  {
    eds::TextTable table(
        "Rounds vs id-space size at fixed n = 16, d = 3 (pure log* term)");
    table.header({"id bits", "cv iterations", "ID-model rounds"});
    const auto g = eds::graph::random_regular(16, 3, rng);
    const auto pg = eds::port::with_random_ports(g, rng);
    std::vector<std::uint32_t> ids(g.num_nodes());
    for (std::size_t v = 0; v < ids.size(); ++v) {
      ids[v] = static_cast<std::uint32_t>(v);
    }
    for (const std::uint32_t bits : {4u, 8u, 16u, 31u}) {
      const auto outcome = eds::idmodel::run_forest_matching(pg, ids, bits, 3);
      table.row({std::to_string(bits),
                 std::to_string(eds::idmodel::cv_iterations(bits)),
                 std::to_string(outcome.stats.rounds)});
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: ID-model ratios sit at or below 2 while the"
               " anonymous\nalgorithm pays up to 4 - 6/(d+1); ID-model rounds"
               " grow (slowly — log*) with\nthe id space, anonymous rounds"
               " are exactly 2 + 2d^2 regardless of n.\n";
  return 0;
}
