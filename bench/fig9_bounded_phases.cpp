// Figure 9: the anatomy of Theorem 5's algorithm A(∆) — the matching M
// (phases I-II), the 2-matching P (phase III), their node-disjointness,
// and the final D = M ∪ P with its ratio against the exact optimum.
#include <iostream>
#include <memory>

#include "algo/bounded_degree.hpp"
#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "exact/exact_eds.hpp"
#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "runtime/outputs.hpp"
#include "runtime/runner.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  eds::Rng rng(99);
  eds::TextTable table("Figure 9: M / P decomposition of A(Delta)");
  table.header({"instance", "n", "m", "Delta", "|M|", "|P|", "|D|=|M|+|P|",
                "2-matching", "EDS", "ratio", "alpha(Delta)", "rounds"});

  const struct {
    eds::graph::SimpleGraph g;
    const char* name;
  } cases[] = {
      {eds::graph::grid(3, 5), "grid-3x5"},
      {eds::graph::star(6), "star-6"},
      {eds::graph::complete_bipartite(3, 4), "K34"},
      {eds::graph::random_bounded_degree(16, 5, 26, rng), "rand-16"},
      {eds::graph::random_bounded_degree(14, 4, 22, rng), "rand-14"},
      {eds::graph::random_tree(15, rng), "tree-15"},
  };

  for (const auto& c : cases) {
    const auto delta = static_cast<eds::port::Port>(
        std::max<std::size_t>(c.g.max_degree(), 2));
    const auto pg = eds::port::with_random_ports(c.g, rng);

    const auto sink = std::make_shared<eds::algo::BoundedPhaseStats>();
    const eds::algo::BoundedDegreeFactory factory(delta, sink);
    const auto raw = eds::runtime::run_synchronous(pg.ports(), factory);
    const auto solution = eds::runtime::validated_edge_set(pg, raw);

    const auto optimum = eds::exact::minimum_eds_size(c.g);
    const auto ratio =
        optimum > 0
            ? eds::analysis::approximation_ratio(solution.size(), optimum)
            : eds::Fraction(1);

    table.row({c.name, std::to_string(c.g.num_nodes()),
               std::to_string(c.g.num_edges()), std::to_string(delta),
               std::to_string(sink->matching_size()),
               std::to_string(sink->two_matching_size()),
               std::to_string(solution.size()),
               eds::analysis::is_k_matching(c.g, solution, 2) ? "yes" : "NO",
               eds::analysis::is_edge_dominating_set(c.g, solution) ? "yes"
                                                                     : "NO",
               ratio.str(),
               eds::analysis::paper_bound_bounded(delta).str(),
               std::to_string(raw.stats.rounds)});
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: M is a matching and P a node-disjoint"
               " 2-matching, so D is a\n2-matching (Section 7.3 property (a));"
               " D dominates every edge; the ratio stays\nwithin"
               " alpha(Delta) = 4 - 1/k; rounds depend only on Delta.\n";
  return 0;
}
