// Adversarial degradation: the committed BENCHMARKS.md acceptance table.
// On the two fixed attack fixtures — the Figure 2 graph H and an 8-node
// 3-regular random multigraph — each adversary strategy at budget B must
// find a worst case at least as bad, on every badness axis, as seed-random
// sampling with a 10x budget.  The base environment is free-running
// port-one with unit delays and a 2-tick round timeout: seed-random has no
// randomness left to exploit there (probe 0 already is the base), so every
// strict win in the table is a genuine schedule-perturbation find.
//
// Figure 2's H is a simple graph, so its rows also report the worst-case
// approximation ratio against the exact optimum; multigraphs have no exact
// solver, so those rows report the raw selected-edge count instead.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "exact/exact_eds.hpp"
#include "graph/simple_graph.hpp"
#include "port/ported_graph.hpp"
#include "port/random_port_graph.hpp"
#include "runtime/sched.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

// The Figure 2 graph H with the paper's port numbering (the same fixture
// the adversary test suite commits to).
eds::port::PortedGraph figure2_graph_h() {
  auto g = eds::graph::SimpleGraph::from_edges(
      4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  const std::vector<std::vector<eds::graph::EdgeId>> order{
      {1, 0}, {0, 2, 3}, {4, 1, 2}, {4, 3}};
  return eds::port::PortedGraph(std::move(g), order);
}

eds::runtime::AsyncOptions attack_base() {
  eds::runtime::AsyncOptions base;
  base.synchronizer = false;
  base.delay = {eds::runtime::DelayKind::kFixed, 1, 1};
  base.round_timeout = 2;
  base.seed = 99;
  return base;
}

}  // namespace

int main() {
  constexpr std::size_t kBudget = 24;
  constexpr std::uint64_t kSeed = 0xD1CE;

  eds::Rng rng(0xADF1C7ULL);
  const auto multigraph = eds::port::random_port_graph(
      std::vector<eds::port::Port>(8, 3), rng, 0.1);
  const auto h = figure2_graph_h();
  const auto h_optimum = eds::exact::minimum_eds_size(h.graph());

  struct Fixture {
    const char* name;
    const eds::port::PortGraph& ports;
    std::size_t optimum;  // 0: no exact solver (multigraph)
  };
  const Fixture fixtures[] = {
      {"figure2-H", h.ports(), h_optimum},
      {"multigraph-8x3", multigraph, 0},
  };
  const eds::runtime::AdversaryStrategy strategies[] = {
      eds::runtime::AdversaryStrategy::kRandom,
      eds::runtime::AdversaryStrategy::kPct,
      eds::runtime::AdversaryStrategy::kDelay,
      eds::runtime::AdversaryStrategy::kClimb,
  };

  const auto factory = eds::algo::make_factory(eds::algo::Algorithm::kPortOne);
  eds::TextTable table(
      "Worst case found per strategy (port-one, free-running, fixed:1 "
      "delays, timeout 2; random gets a 10x budget)");
  table.header({"fixture", "strategy", "budget", "rounds", "time", "selected",
                "inconsistent", "ratio"});
  for (const auto& fixture : fixtures) {
    for (const auto strategy : strategies) {
      const auto budget = strategy == eds::runtime::AdversaryStrategy::kRandom
                              ? 10 * kBudget
                              : kBudget;
      const auto report = eds::runtime::adversary_search(
          fixture.ports, *factory, strategy, attack_base(), budget, kSeed);
      std::string ratio = "-";
      if (fixture.optimum > 0) {
        std::ostringstream os;
        os << eds::analysis::approximation_ratio(
            static_cast<std::size_t>(report.worst_selected.metrics.selected),
            fixture.optimum);
        ratio = os.str();
      }
      table.row({fixture.name, eds::runtime::adversary_token(strategy),
                 std::to_string(budget),
                 std::to_string(report.worst_rounds.metrics.rounds),
                 std::to_string(report.worst_time.metrics.virtual_time),
                 std::to_string(report.worst_selected.metrics.selected),
                 std::to_string(report.worst_inconsistent.metrics.inconsistent),
                 ratio});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the base is randomness-free, so the random"
               "\nrows never move off the unperturbed run (inconsistent 0)"
               "\neven at a 10x budget; delay and climb force per-link"
               "\ndelays past the round timeout and find one-sided claims"
               "\n(inconsistent > 0); pct stretches virtual time but cannot"
               "\nreach a 1-round algorithm's sends, which all leave at"
               "\ninitialisation before the first scheduling decision.\n";
  return 0;
}
