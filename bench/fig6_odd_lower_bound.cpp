// Figures 5-7 / Theorem 2: the odd-degree lower-bound construction,
// swept over d.  We rebuild H(l), G and the covering multigraph M of
// Figure 7, verify the anatomy, and measure Theorem 4's algorithm being
// forced to (2d-1)d edges: ratio exactly 4 - 6/(d+1).
#include <iostream>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "lb/lower_bounds.hpp"
#include "port/covering.hpp"
#include "util/table.hpp"

int main() {
  eds::TextTable table(
      "Theorem 2 / Figures 5-7: odd-d lower bound, measured");
  table.header({"d", "k", "|V|", "|E|", "|D*|=(k+1)d", "|D| measured",
                "forced (2d-1)d", "ratio", "bound 4-6/(d+1)", "tight?",
                "covering ok"});

  for (eds::port::Port d = 3; d <= 9; d += 2) {
    const std::size_t k = (d - 1) / 2;
    const auto inst = eds::lb::odd_lower_bound(d);
    const auto& g = inst.ported.graph();

    const auto outcome = eds::algo::run_algorithm(
        inst.ported, eds::algo::Algorithm::kOddRegular, d);
    const auto ratio = eds::analysis::approximation_ratio(
        outcome.solution.size(), inst.optimal.size());
    const auto covering_ok = eds::port::is_covering_map(
        inst.ported.ports(), inst.covering_base, inst.covering_map);

    table.row({std::to_string(d), std::to_string(k),
               std::to_string(g.num_nodes()), std::to_string(g.num_edges()),
               std::to_string(inst.optimal.size()),
               std::to_string(outcome.solution.size()),
               std::to_string((2 * static_cast<std::size_t>(d) - 1) * d),
               ratio.str(), inst.forced_ratio.str(),
               ratio == inst.forced_ratio ? "EQUAL" : "no",
               covering_ok ? "yes" : "NO"});
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: |D| = (2d-1)d — per component H(l), the"
               " algorithm is forced to\ntake either a full 2-factor of H(l)"
               " or all 2d-1 external edges — and the ratio\nis exactly"
               " 4 - 6/(d+1) for every odd d.\n";
  return 0;
}
