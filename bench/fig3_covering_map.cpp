// Figure 3: covering graphs.  We build a simple port-numbered graph C that
// covers a 2-node multigraph M (in the spirit of the figure), verify the
// covering map mechanically, and then demonstrate the covering lemma of
// Section 2.3 by executing a real algorithm on both and comparing outputs.
#include <iostream>

#include "algo/driver.hpp"
#include "graph/simple_graph.hpp"
#include "port/covering.hpp"
#include "port/ported_graph.hpp"
#include "runtime/runner.hpp"

int main() {
  using eds::graph::EdgeId;
  using eds::graph::NodeId;
  using eds::graph::SimpleGraph;

  // Base M: two nodes {g, w} ("grey" and "white"), both of degree 3:
  //   p(g,1) <-> (w,2),  p(g,2) <-> (w,1),  p(g,3) <-> (w,3).
  eds::port::PortGraphBuilder mb({3, 3});
  mb.connect({0, 1}, {1, 2});
  mb.connect({0, 2}, {1, 1});
  mb.connect({0, 3}, {1, 3});
  const auto base = mb.build();

  // Cover C: the 6-cycle g0 w0 g1 w1 g2 w2 with a chord pattern making it
  // 3-regular = K_{3,3}; ports chosen to satisfy the covering conditions.
  // Grey nodes are 0,1,2; white nodes 3,4,5.  Edge (g_i, w_j) exists for all
  // i, j; g_i's port 1 -> w_i (which uses port 2), g_i's port 2 -> w_{i-1}
  // (which uses port 1), g_i's port 3 -> w_{i+1} (which uses port 3).
  eds::graph::GraphBuilder cb(6);
  for (NodeId i = 0; i < 3; ++i) {
    for (NodeId j = 0; j < 3; ++j) cb.add_edge(i, 3 + j);
  }
  auto cg = cb.build();
  std::vector<std::vector<EdgeId>> order(6, std::vector<EdgeId>(3));
  for (NodeId i = 0; i < 3; ++i) {
    order[i][0] = *cg.find_edge(i, 3 + i);
    order[i][1] = *cg.find_edge(i, 3 + (i + 2) % 3);
    order[i][2] = *cg.find_edge(i, 3 + (i + 1) % 3);
    order[3 + i][0] = *cg.find_edge(3 + i, (i + 1) % 3);
    order[3 + i][1] = *cg.find_edge(3 + i, i);
    order[3 + i][2] = *cg.find_edge(3 + i, (i + 2) % 3);
  }
  const eds::port::PortedGraph cover(std::move(cg), order);

  const std::vector<NodeId> f{0, 0, 0, 1, 1, 1};
  const auto check = eds::port::check_covering_map(cover.ports(), base, f);
  std::cout << "C (K_{3,3}, 6 nodes) covers M (2 nodes, 3 parallel edges): "
            << (check.ok ? "verified" : check.reason) << "\n\n";

  // Execute Theorem 4's d = 3 algorithm on both.
  const auto factory = eds::algo::make_factory(eds::algo::Algorithm::kOddRegular, 3);
  const auto on_cover = eds::runtime::run_synchronous(cover.ports(), *factory);
  const auto on_base = eds::runtime::run_synchronous(base, *factory);

  bool lifts = true;
  for (NodeId v = 0; v < 6; ++v) {
    std::cout << "node " << v << " of C outputs {";
    for (std::size_t i = 0; i < on_cover.outputs[v].size(); ++i) {
      std::cout << (i ? "," : "") << on_cover.outputs[v][i];
    }
    std::cout << "}  |  its image " << f[v] << " in M outputs {";
    for (std::size_t i = 0; i < on_base.outputs[f[v]].size(); ++i) {
      std::cout << (i ? "," : "") << on_base.outputs[f[v]][i];
    }
    std::cout << "}\n";
    lifts = lifts && on_cover.outputs[v] == on_base.outputs[f[v]];
  }
  std::cout << "\nSection 2.3 lemma (outputs lift along covering maps): "
            << (lifts ? "verified" : "VIOLATED") << "\n";
  return check.ok && lifts ? 0 : 1;
}
