// Figure 4 / Theorem 1: the even-degree lower-bound construction, swept
// over d.  For each even d we rebuild the graph of Figure 4, verify its
// anatomy (d-regular, |S| = d/2, covering map to the one-node multigraph),
// and measure the prescribed O(1) algorithm hitting the bound 4 - 2/d
// exactly.
#include <iostream>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "lb/lower_bounds.hpp"
#include "port/covering.hpp"
#include "runtime/outputs.hpp"
#include "runtime/runner.hpp"
#include "util/table.hpp"

int main() {
  eds::TextTable table("Theorem 1 / Figure 4: even-d lower bound, measured");
  table.header({"d", "|V|", "|E|", "|S| (opt)", "|D| measured", "ratio",
                "bound 4-2/d", "tight?", "covering ok", "symmetric outputs"});

  for (eds::port::Port d = 2; d <= 12; d += 2) {
    const auto inst = eds::lb::even_lower_bound(d);
    const auto& g = inst.ported.graph();

    const auto factory = eds::algo::make_factory(eds::algo::Algorithm::kPortOne);
    const auto raw = eds::runtime::run_synchronous(inst.ported.ports(), *factory);
    const auto solution = eds::runtime::validated_edge_set(inst.ported, raw);
    const auto ratio = eds::analysis::approximation_ratio(solution.size(),
                                                          inst.optimal.size());
    const auto covering_ok = eds::port::is_covering_map(
        inst.ported.ports(), inst.covering_base, inst.covering_map);

    table.row({std::to_string(d), std::to_string(g.num_nodes()),
               std::to_string(g.num_edges()), std::to_string(inst.optimal.size()),
               std::to_string(solution.size()), ratio.str(),
               inst.forced_ratio.str(),
               ratio == inst.forced_ratio ? "EQUAL" : "no",
               covering_ok ? "yes" : "NO",
               eds::runtime::all_outputs_identical(raw) ? "yes" : "no"});
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: |D| = |V| = 2d - 1 (one full 2-factor is"
               " forced), ratio == 4 - 2/d\nexactly for every even d, and all"
               " nodes emit identical outputs (the covering-map\nsymmetry that"
               " drives the proof).\n";
  return 0;
}
