// Ablations of the paper's design choices (the "why each ingredient
// matters" study DESIGN.md calls for):
//
//  A. Phase II of Theorem 4 (redundant-edge pruning): compare |D| after
//     phase I vs after phase II — the pruning is what turns the d|V|-ish
//     forest into the d|V|/(d+1) star forest.
//  B. The M(i, j) machinery on odd-regular graphs: compare Theorem 4
//     against running the even-d algorithm (port-one) on the same odd
//     instances — port-one is feasible but only 4 - 2/d, strictly worse
//     than 4 - 6/(d+1) in the worst case.
//  C. Phase II of Theorem 5 (degree-class proposals): run A(∆) with the
//     central mirror and report how much of M comes from phase I vs phase
//     II on degree-skewed instances — skipping phase II would leave
//     unequal-degree edges to the weaker 2-matching phase.
#include <iostream>

#include "algo/central.hpp"
#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "exact/exact_eds.hpp"
#include "graph/generators.hpp"
#include "lb/gadgets.hpp"
#include "lb/lower_bounds.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  eds::Rng rng(7777);

  // --- A: phase II pruning in Theorem 4 -----------------------------------
  {
    eds::TextTable table("Ablation A: Theorem 4 with and without phase II");
    table.header({"instance", "n", "|D| phase I only", "|D| with phase II",
                  "saved", "bound d*n/(d+1)"});
    const struct {
      eds::graph::SimpleGraph g;
      const char* name;
    } cases[] = {
        {eds::graph::petersen(), "petersen"},
        {eds::graph::prism(9), "prism-9"},
        {eds::graph::moebius_ladder(8), "moebius-8"},
        {eds::graph::random_regular(30, 3, rng), "rand-30-d3"},
        {eds::graph::random_regular(24, 5, rng), "rand-24-d5"},
        {eds::graph::random_regular(20, 7, rng), "rand-20-d7"},
    };
    for (const auto& c : cases) {
      const auto d = c.g.degree(0);
      const auto pg = eds::port::with_random_ports(c.g, rng);
      const auto trace = eds::algo::central_odd_regular(pg);
      table.row({c.name, std::to_string(c.g.num_nodes()),
                 std::to_string(trace.after_phase1.size()),
                 std::to_string(trace.after_phase2.size()),
                 std::to_string(trace.after_phase1.size() -
                                trace.after_phase2.size()),
                 std::to_string(d * c.g.num_nodes() / (d + 1))});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- B: Theorem 4 vs port-one on odd-regular instances ------------------
  {
    eds::TextTable table(
        "Ablation B: odd-regular (Thm 4) vs port-one (Thm 3) on odd d");
    table.header({"d", "instance", "optimum", "|D| Thm4", "|D| port-one",
                  "Thm4 ratio", "port-one ratio", "Thm4 bound",
                  "port-one bound"});
    for (const eds::port::Port d : {3u, 5u}) {
      for (int trial = 0; trial < 3; ++trial) {
        const auto g = eds::graph::random_regular(2 * d + 6, d, rng);
        const auto optimum = eds::exact::minimum_eds_size(g);
        const auto pg = eds::port::with_random_ports(g, rng);
        const auto thm4 =
            eds::algo::run_algorithm(pg, eds::algo::Algorithm::kOddRegular, d)
                .solution.size();
        const auto p1 =
            eds::algo::run_algorithm(pg, eds::algo::Algorithm::kPortOne)
                .solution.size();
        table.row({std::to_string(d), "rand-" + std::to_string(trial),
                   std::to_string(optimum), std::to_string(thm4),
                   std::to_string(p1),
                   eds::analysis::approximation_ratio(thm4, optimum).str(),
                   eds::analysis::approximation_ratio(p1, optimum).str(),
                   eds::analysis::paper_bound_regular(d).str(),
                   (eds::Fraction(4) -
                    eds::Fraction(2, static_cast<std::int64_t>(d)))
                       .str()});
      }
    }
    table.print(std::cout);
    std::cout << "\nport-one stays feasible on odd d but its guarantee is the"
                 " weaker 4 - 2/d;\nthe M(i,j) machinery buys the gap down to"
                 " 4 - 6/(d+1).\n\n";
  }

  // --- C: where M comes from in Theorem 5 ---------------------------------
  {
    eds::TextTable table(
        "Ablation C: A(Delta) matching growth by phase");
    table.header({"instance", "|M| after phase I", "|M| after phase II",
                  "|P|", "|D|", "EDS"});
    auto report = [&table](const char* name,
                           const eds::port::PortedGraph& pg) {
      const auto delta = static_cast<eds::port::Port>(
          std::max<std::size_t>(pg.graph().max_degree(), 2));
      const auto trace = eds::algo::central_bounded_degree(pg, delta);
      table.row({name, std::to_string(trace.m_after_phase1.size()),
                 std::to_string(trace.m_after_phase2.size()),
                 std::to_string(trace.p.size()),
                 std::to_string(trace.solution.size()),
                 eds::analysis::is_edge_dominating_set(pg.graph(),
                                                       trace.solution)
                     ? "yes"
                     : "NO"});
    };
    report("star-7", eds::port::with_random_ports(eds::graph::star(7), rng));
    report("wheel-8", eds::port::with_random_ports(eds::graph::wheel(8), rng));
    report("barbell-4-2",
           eds::port::with_random_ports(eds::graph::barbell(4, 2), rng));
    report("rand-24-skew",
           eds::port::with_random_ports(
               eds::graph::random_bounded_degree(24, 6, 40, rng), rng));
    // The engineered case: no distinguishable neighbours anywhere, so phase
    // I is empty and only phase II can match the hub-subdivision edges.
    report("subdiv-gadget(torus-3x4)",
           eds::lb::subdivided_factor_gadget(eds::graph::torus(3, 4)));
    report("subdiv-gadget(rand-10-d6)",
           eds::lb::subdivided_factor_gadget(
               eds::graph::random_regular(10, 6, rng)));
    table.print(std::cout);
    std::cout << "\nOn natural instances phase I (distinguishable"
                 " neighbours) does most of the\nwork.  The subdivided-factor"
                 " gadgets eliminate every uniquely labelled edge:\nphase I"
                 " finds nothing and the unequal-degree edges can only be"
                 " matched by\nphase II — the safety net that makes property"
                 " (c) (P edges join equal\ndegrees) and hence the 4 - 1/k"
                 " analysis go through.\n";
  }
  return 0;
}
