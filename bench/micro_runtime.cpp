// google-benchmark: simulator throughput — rounds/sec and full-algorithm
// wall time across n and d.
#include <benchmark/benchmark.h>

#include "algo/driver.hpp"
#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"

namespace {

void BM_PortOne(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  eds::Rng rng(1);
  const auto g = eds::graph::random_regular(n, 4, rng);
  const auto pg = eds::port::with_random_ports(g, rng);
  for (auto _ : state) {
    auto outcome = eds::algo::run_algorithm(pg, eds::algo::Algorithm::kPortOne);
    benchmark::DoNotOptimize(outcome.solution.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_PortOne)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_OddRegular(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<eds::port::Port>(state.range(1));
  eds::Rng rng(2);
  const auto g = eds::graph::random_regular(n, d, rng);
  const auto pg = eds::port::with_random_ports(g, rng);
  for (auto _ : state) {
    auto outcome =
        eds::algo::run_algorithm(pg, eds::algo::Algorithm::kOddRegular, d);
    benchmark::DoNotOptimize(outcome.stats.rounds);
  }
}
BENCHMARK(BM_OddRegular)
    ->Args({64, 3})
    ->Args({256, 3})
    ->Args({1024, 3})
    ->Args({64, 5})
    ->Args({64, 7});

void BM_BoundedDegree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  eds::Rng rng(3);
  const auto g = eds::graph::random_bounded_degree(n, 5, 2 * n, rng);
  const auto pg = eds::port::with_random_ports(g, rng);
  const auto delta = static_cast<eds::port::Port>(
      std::max<std::size_t>(g.max_degree(), 2));
  for (auto _ : state) {
    auto outcome = eds::algo::run_algorithm(
        pg, eds::algo::Algorithm::kBoundedDegree, delta);
    benchmark::DoNotOptimize(outcome.stats.rounds);
  }
}
BENCHMARK(BM_BoundedDegree)->Arg(64)->Arg(256)->Arg(1024);

void BM_RunnerRoundOverhead(benchmark::State& state) {
  // Pure routing cost: double-cover (2∆ rounds, light logic) on a big torus.
  const auto side = static_cast<std::size_t>(state.range(0));
  eds::Rng rng(4);
  const auto g = eds::graph::torus(side, side);
  const auto pg = eds::port::with_random_ports(g, rng);
  for (auto _ : state) {
    auto outcome =
        eds::algo::run_algorithm(pg, eds::algo::Algorithm::kDoubleCover, 4);
    benchmark::DoNotOptimize(outcome.stats.messages_sent);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()) * 8);
}
BENCHMARK(BM_RunnerRoundOverhead)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
