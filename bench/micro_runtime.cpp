// google-benchmark: simulator throughput — rounds/sec and full-algorithm
// wall time across n and d, plus the engine's parallel-policy and batch
// scaling points, plan-cache effectiveness and allocation pressure.
//
// Machine-readable output (the BENCH_runtime.json perf trajectory): every
// benchmark exports `n` and `rounds` counters (plus cache/allocation
// counters where relevant), so
//   bench_micro_runtime --benchmark_format=json
// piped through tools/bench_json.py yields records of
// {name, n, rounds, ns_per_op, counters}.  CI runs this once per push in
// Release, uploads the JSON as an artifact, and posts the delta against the
// committed snapshot via `tools/bench_json.py --compare`.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>

#include "algo/driver.hpp"
#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "runtime/batch.hpp"
#include "runtime/engine.hpp"
#include "runtime/message.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/shard.hpp"
#include "util/rng.hpp"
#include "test_util.hpp"  // test::edsim_binary (gtest-free)

namespace {

/// Exports the pooled-transport counter deltas accumulated across the
/// timed loop: healthy plateaus show reuses >> growths.
class AllocPressure {
 public:
  AllocPressure() : before_(eds::runtime::engine_alloc_stats()) {}

  void export_into(benchmark::State& state) const {
    const auto after = eds::runtime::engine_alloc_stats();
    state.counters["ws_reuses"] = static_cast<double>(
        after.workspace_reuses - before_.workspace_reuses);
    state.counters["ws_growths"] = static_cast<double>(
        after.workspace_growths - before_.workspace_growths);
    // Net pooled-byte growth across the timed loop, NOT the absolute
    // gauge: the gauge includes workspaces retained by *earlier*
    // benchmarks in the process (e.g. BM_Engine100k's 100k-node main
    // thread workspace), which would make the exported value depend on
    // benchmark order and --benchmark_filter.
    state.counters["ws_bytes"] =
        static_cast<double>(after.workspace_bytes) -
        static_cast<double>(before_.workspace_bytes);
  }

 private:
  eds::runtime::EngineAllocStats before_;
};

/// Exports the engine's per-round stage split — exchange (send sweep +
/// tag-lane shadow) vs receive (involution gather + merge), with the
/// tag-shadow (`scatter_ns`, a component of exchange) and the traffic scan
/// (`scan_ns`) broken out — as per-iteration nanosecond counters.
/// Profiling is a process-wide engine toggle; the helper scopes it to this
/// benchmark so every other benchmark keeps the timestamp-free hot loop.
class StageSplit {
 public:
  StageSplit() {
    eds::runtime::engine_stage_profiling(true);
    before_ = eds::runtime::engine_stage_stats();
  }
  ~StageSplit() { eds::runtime::engine_stage_profiling(false); }
  StageSplit(const StageSplit&) = delete;
  StageSplit& operator=(const StageSplit&) = delete;

  void export_into(benchmark::State& state) const {
    const auto after = eds::runtime::engine_stage_stats();
    const auto delta = [&](std::uint64_t EngineStageStats::* field) {
      return benchmark::Counter(
          static_cast<double>(after.*field - before_.*field),
          benchmark::Counter::kAvgIterations);
    };
    state.counters["exchange_ns"] =
        delta(&eds::runtime::EngineStageStats::exchange_ns);
    state.counters["receive_ns"] =
        delta(&eds::runtime::EngineStageStats::receive_ns);
    state.counters["scatter_ns"] =
        delta(&eds::runtime::EngineStageStats::scatter_ns);
    state.counters["scan_ns"] =
        delta(&eds::runtime::EngineStageStats::scan_ns);
  }

 private:
  using EngineStageStats = eds::runtime::EngineStageStats;
  eds::runtime::EngineStageStats before_;
};

void BM_PortOne(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  eds::Rng rng(1);
  const auto g = eds::graph::random_regular(n, 4, rng);
  const auto pg = eds::port::with_random_ports(g, rng);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    auto outcome = eds::algo::run_algorithm(pg, eds::algo::Algorithm::kPortOne);
    rounds = outcome.stats.rounds;
    benchmark::DoNotOptimize(outcome.solution.size());
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_PortOne)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_OddRegular(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<eds::port::Port>(state.range(1));
  eds::Rng rng(2);
  const auto g = eds::graph::random_regular(n, d, rng);
  const auto pg = eds::port::with_random_ports(g, rng);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    auto outcome =
        eds::algo::run_algorithm(pg, eds::algo::Algorithm::kOddRegular, d);
    rounds = outcome.stats.rounds;
    benchmark::DoNotOptimize(outcome.stats.rounds);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_OddRegular)
    ->Args({64, 3})
    ->Args({256, 3})
    ->Args({1024, 3})
    ->Args({64, 5})
    ->Args({64, 7});

void BM_BoundedDegree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  eds::Rng rng(3);
  const auto g = eds::graph::random_bounded_degree(n, 5, 2 * n, rng);
  const auto pg = eds::port::with_random_ports(g, rng);
  const auto delta = static_cast<eds::port::Port>(
      std::max<std::size_t>(g.max_degree(), 2));
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    auto outcome = eds::algo::run_algorithm(
        pg, eds::algo::Algorithm::kBoundedDegree, delta);
    rounds = outcome.stats.rounds;
    benchmark::DoNotOptimize(outcome.stats.rounds);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_BoundedDegree)->Arg(64)->Arg(256)->Arg(1024);

void BM_RunnerRoundOverhead(benchmark::State& state) {
  // Pure routing cost: double-cover (2∆ rounds, light logic) on a big torus.
  const auto side = static_cast<std::size_t>(state.range(0));
  eds::Rng rng(4);
  const auto g = eds::graph::torus(side, side);
  const auto pg = eds::port::with_random_ports(g, rng);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    auto outcome =
        eds::algo::run_algorithm(pg, eds::algo::Algorithm::kDoubleCover, 4);
    rounds = outcome.stats.rounds;
    benchmark::DoNotOptimize(outcome.stats.messages_sent);
  }
  state.counters["n"] = static_cast<double>(g.num_nodes());
  state.counters["rounds"] = static_cast<double>(rounds);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()) * 8);
}
BENCHMARK(BM_RunnerRoundOverhead)->Arg(8)->Arg(16)->Arg(32);

void BM_Engine100k(benchmark::State& state) {
  // The acceptance point for the engine: one 100k-node instance, A(4)
  // (51 rounds of real per-node logic), sequential vs sharded rounds.
  // threads == 1 selects SequentialPolicy; > 1 ParallelPolicy.
  const auto threads = static_cast<unsigned>(state.range(0));
  eds::Rng rng(5);
  const auto g = eds::graph::torus(320, 320);  // 102400 nodes, 4-regular
  const auto pg = eds::port::with_random_ports(g, rng);
  eds::runtime::ExecOptions exec;
  exec.threads = threads;
  std::uint64_t rounds = 0;
  const AllocPressure alloc;
  const StageSplit split;
  for (auto _ : state) {
    auto outcome = eds::algo::run_algorithm(
        pg, eds::algo::Algorithm::kBoundedDegree, 4, exec);
    rounds = outcome.stats.rounds;
    benchmark::DoNotOptimize(outcome.solution.size());
  }
  split.export_into(state);
  alloc.export_into(state);
  state.counters["n"] = static_cast<double>(g.num_nodes());
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["lanes"] = static_cast<double>(threads);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_nodes()) *
                          static_cast<std::int64_t>(rounds));
}
BENCHMARK(BM_Engine100k)->Arg(1)->Arg(2)->Arg(8)->UseRealTime();

void BM_EngineDense(benchmark::State& state) {
  // High-degree regular graph: at d = 64 a node's whole round is message
  // traffic, the case where the retired route stage's extra
  // total_ports-sized Message copy per round cost the most.  DoubleCover
  // runs 2d rounds of near-trivial per-node logic, so the measurement is
  // almost pure transport; the exchange/receive split shows where the
  // remaining time goes.
  const auto d = static_cast<eds::port::Port>(state.range(0));
  eds::Rng rng(9);
  const auto g = eds::graph::random_regular(512, d, rng);
  const auto pg = eds::port::with_random_ports(g, rng);
  std::uint64_t rounds = 0;
  const AllocPressure alloc;
  const StageSplit split;
  for (auto _ : state) {
    auto outcome = eds::algo::run_algorithm(
        pg, eds::algo::Algorithm::kDoubleCover, d);
    rounds = outcome.stats.rounds;
    benchmark::DoNotOptimize(outcome.stats.messages_sent);
  }
  split.export_into(state);
  alloc.export_into(state);
  state.counters["n"] = static_cast<double>(g.num_nodes());
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["degree"] = static_cast<double>(d);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges() * 2) *
                          static_cast<std::int64_t>(rounds));
}
BENCHMARK(BM_EngineDense)->Arg(16)->Arg(64);

void BM_SilenceScan(benchmark::State& state) {
  // The per-round traffic scan in isolation: count_nonsilence over a
  // contiguous int32 tag lane.  Arg 0 is the port count, arg 1 the halted
  // fraction in permille (a halted node's slots carry tag 0); the scan is
  // data-independent — same branch-free sweep whatever the mix — so the
  // three fractions should land on the same ns/op, and a divergence means
  // the compiler reintroduced a branch.  Exports the measured sweep as
  // scan_ns and the lane bytes each sweep touches.
  const auto ports = static_cast<std::size_t>(state.range(0));
  const auto halted_permille = static_cast<std::uint64_t>(state.range(1));
  eds::runtime::MessageLanes lanes;
  lanes.assign_silence(ports);
  eds::Rng rng(0x5CA7 + ports + halted_permille);
  for (std::size_t q = 0; q < ports; ++q) {
    const bool halted = rng.next_u64() % 1000 < halted_permille;
    if (!halted) {
      lanes.store(q, eds::runtime::msg(static_cast<std::int32_t>(q + 1)));
    }
  }
  std::uint64_t scan_ns = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto live = eds::runtime::count_nonsilence(lanes.tags(), ports);
    const auto t1 = std::chrono::steady_clock::now();
    scan_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    benchmark::DoNotOptimize(live);
  }
  state.counters["n"] = static_cast<double>(ports);
  state.counters["halted_permille"] = static_cast<double>(halted_permille);
  state.counters["scan_ns"] = benchmark::Counter(
      static_cast<double>(scan_ns), benchmark::Counter::kAvgIterations);
  // One int32 lane per sweep — the whole point of the tag shadow is that
  // the scan never touches the 16-byte Message slots.
  state.counters["lane_bytes"] =
      static_cast<double>(ports * sizeof(std::int32_t));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ports) *
                          static_cast<std::int64_t>(sizeof(std::int32_t)));
}
BENCHMARK(BM_SilenceScan)
    ->Args({4096, 0})
    ->Args({4096, 500})
    ->Args({4096, 900})
    ->Args({100000, 0})
    ->Args({100000, 500})
    ->Args({100000, 900});

void BM_BatchSweep(benchmark::State& state) {
  // Batch throughput: 32 independent jobs (random 4-regular, n = 512)
  // fanned across the BatchRunner pool.
  const auto threads = static_cast<unsigned>(state.range(0));
  eds::Rng rng(6);
  std::vector<eds::port::PortedGraph> instances;
  instances.reserve(32);
  for (int i = 0; i < 32; ++i) {
    instances.push_back(eds::port::with_random_ports(
        eds::graph::random_regular(512, 4, rng), rng));
  }
  std::vector<eds::algo::BatchItem> items;
  for (const auto& pg : instances) {
    items.push_back({&pg, eds::algo::Algorithm::kBoundedDegree, 4});
  }
  std::uint64_t rounds = 0;
  const AllocPressure alloc;
  for (auto _ : state) {
    auto outcomes = eds::algo::run_batch(items, threads);
    rounds = outcomes.back().stats.rounds;
    benchmark::DoNotOptimize(outcomes.size());
  }
  alloc.export_into(state);
  state.counters["n"] = 512.0 * 32.0;
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["lanes"] = static_cast<double>(threads);
}
BENCHMARK(BM_BatchSweep)->Arg(1)->Arg(2)->Arg(8)->UseRealTime();

void BM_PlanCacheSweep(benchmark::State& state) {
  // The --repeat workload: `jobs` batch runs on ONE 4-regular instance
  // (n = 1024).  With the shared cache the plan is compiled once per
  // process lifetime and every subsequent job is a hit — plan_misses stays
  // at 1 however many iterations the timer takes.
  const auto jobs = static_cast<std::size_t>(state.range(0));
  eds::Rng rng(7);
  const auto pg = eds::port::with_random_ports(
      eds::graph::random_regular(1024, 4, rng), rng);
  std::vector<eds::algo::BatchItem> items(
      jobs, {&pg, eds::algo::Algorithm::kBoundedDegree, 4});
  eds::runtime::PlanCache cache;
  std::uint64_t rounds = 0;
  const AllocPressure alloc;
  for (auto _ : state) {
    auto outcomes = eds::algo::run_batch(items, 1, &cache);
    rounds = outcomes.back().stats.rounds;
    benchmark::DoNotOptimize(outcomes.size());
  }
  alloc.export_into(state);
  const auto stats = cache.stats();
  state.counters["n"] = 1024.0;
  state.counters["rounds"] = static_cast<double>(rounds);
  // plan_misses is timer-independent (the one compile, however many
  // iterations ran); hits are normalized per iteration (~jobs) so the
  // exported counters are comparable across machines and --benchmark_min_time.
  state.counters["plan_hits"] = benchmark::Counter(
      static_cast<double>(stats.hits), benchmark::Counter::kAvgIterations);
  state.counters["plan_misses"] = static_cast<double>(stats.misses);
}
BENCHMARK(BM_PlanCacheSweep)->Arg(64)->Arg(256);

void BM_ShardedSweep(benchmark::State& state) {
  // The cold process-sharded batch point: 16 jobs over 4 instances (random
  // 4-regular, n = 256) shipped to `edsim worker` subprocesses over the
  // NDJSON pipes, with pooling OFF so every batch forks, warms and tears
  // down its own fleet — the spawn/exec/plan-compile cost a one-shot sweep
  // pays, and the baseline BM_WarmShardedSweep amortizes.  EDSIM_BIN
  // overrides the compiled-in binary path.
  const auto shards = static_cast<unsigned>(state.range(0));
  const std::string bin = eds::test::edsim_binary();
  if (bin.empty()) {
    state.SkipWithError("edsim binary not found (set EDSIM_BIN)");
    return;
  }

  eds::Rng rng(8);
  std::vector<eds::port::PortedGraph> instances;
  instances.reserve(4);
  for (int i = 0; i < 4; ++i) {
    instances.push_back(eds::port::with_random_ports(
        eds::graph::random_regular(256, 4, rng), rng));
  }
  const auto factory =
      eds::algo::make_factory(eds::algo::Algorithm::kBoundedDegree, 4);
  std::vector<eds::runtime::BatchJob> jobs;
  for (const auto& pg : instances) {
    eds::runtime::BatchJob job;
    job.graph = &pg.ports();
    job.factory = factory.get();
    eds::runtime::JobSpec spec;
    spec.algorithm = "bounded-degree";
    spec.param = 4;
    spec.group = eds::runtime::structural_hash(pg.ports());
    job.spec = spec;
    for (int r = 0; r < 4; ++r) jobs.push_back(job);
  }

  eds::runtime::ProcessShardExecutor::Options options;
  options.pooled = false;
  const eds::runtime::ProcessShardExecutor executor({bin, "worker"}, shards,
                                                    options);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    auto results = executor.run(jobs);
    rounds = results.back().stats.rounds;
    benchmark::DoNotOptimize(results.size());
  }
  const auto stats = executor.stats();
  state.counters["n"] = 256.0 * static_cast<double>(jobs.size());
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["shards"] = static_cast<double>(shards);
  // Timer-independent shape counters, normalized per iteration so they are
  // comparable across machines and --benchmark_min_time.
  state.counters["jobs_shipped"] = benchmark::Counter(
      static_cast<double>(stats.jobs_shipped),
      benchmark::Counter::kAvgIterations);
  state.counters["workers_spawned"] = benchmark::Counter(
      static_cast<double>(stats.workers_spawned),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ShardedSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_WarmShardedSweep(benchmark::State& state) {
  // The warm counterpart of BM_ShardedSweep: the same 16-job batch shape
  // through ONE pooled executor, so after the first iteration every batch
  // lands on live workers with hot plan caches.  The cold/warm gap is the
  // fork/exec + warmup cost the pool amortizes; the exported counters
  // prove the warmth (workers spawned ~0 per iteration, zero respawns,
  // every job a plan hit).
  const auto shards = static_cast<unsigned>(state.range(0));
  const std::string bin = eds::test::edsim_binary();
  if (bin.empty()) {
    state.SkipWithError("edsim binary not found (set EDSIM_BIN)");
    return;
  }

  eds::Rng rng(8);
  std::vector<eds::port::PortedGraph> instances;
  instances.reserve(4);
  for (int i = 0; i < 4; ++i) {
    instances.push_back(eds::port::with_random_ports(
        eds::graph::random_regular(256, 4, rng), rng));
  }
  const auto factory =
      eds::algo::make_factory(eds::algo::Algorithm::kBoundedDegree, 4);
  std::vector<eds::runtime::BatchJob> jobs;
  for (const auto& pg : instances) {
    eds::runtime::BatchJob job;
    job.graph = &pg.ports();
    job.factory = factory.get();
    eds::runtime::JobSpec spec;
    spec.algorithm = "bounded-degree";
    spec.param = 4;
    spec.group = eds::runtime::structural_hash(pg.ports());
    job.spec = spec;
    for (int r = 0; r < 4; ++r) jobs.push_back(job);
  }

  const eds::runtime::ProcessShardExecutor executor({bin, "worker"}, shards);
  // Warm the pool outside the timed loop: the steady-state number is the
  // per-batch cost once the fleet is up, which is what a --repeat sweep
  // or a long-lived service actually pays.
  (void)executor.run(jobs);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    auto results = executor.run(jobs);
    rounds = results.back().stats.rounds;
    benchmark::DoNotOptimize(results.size());
  }
  const auto stats = executor.stats();
  state.counters["n"] = 256.0 * static_cast<double>(jobs.size());
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["jobs_shipped"] = benchmark::Counter(
      static_cast<double>(stats.jobs_shipped),
      benchmark::Counter::kAvgIterations);
  // Spawns happened once, before timing: normalized per iteration this
  // tends to zero, which is exactly the claim being benchmarked.
  state.counters["workers_spawned"] = benchmark::Counter(
      static_cast<double>(stats.workers_spawned),
      benchmark::Counter::kAvgIterations);
  state.counters["workers_respawned"] =
      static_cast<double>(stats.workers_respawned);
  state.counters["plan_hits"] = benchmark::Counter(
      static_cast<double>(stats.plan_hits),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_WarmShardedSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

// Custom main so the benchmark context records whether this binary was
// built portable or with -march=native (EDS_NATIVE): tools/bench_json.py
// carries the flag into artifacts and demotes any native-vs-portable
// comparison to informational.
int main(int argc, char** argv) {
#ifdef EDS_NATIVE_BUILD
  benchmark::AddCustomContext("eds_native", "ON");
#else
  benchmark::AddCustomContext("eds_native", "OFF");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
