// The Polishchuk–Suomela corollary behind phase III ([21], IPL 2009): the
// nodes covered by the double-cover 2-matching form a 3-approximate vertex
// cover — measured against the exact minimum vertex cover.
#include <functional>
#include <iostream>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "exact/vertex_cover.hpp"
#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  eds::Rng rng(1729);
  eds::TextTable table(
      "Vertex cover via the distributed 2-matching (bound: 3x)");
  table.header({"family", "instances", "mean ratio", "worst ratio",
                "bound", "rounds"});

  struct Family {
    const char* name;
    std::function<eds::graph::SimpleGraph(eds::Rng&)> make;
  };
  const Family families[] = {
      {"3-regular n=12",
       [](eds::Rng& r) { return eds::graph::random_regular(12, 3, r); }},
      {"4-regular n=12",
       [](eds::Rng& r) { return eds::graph::random_regular(12, 4, r); }},
      {"max-deg-4 n=16",
       [](eds::Rng& r) {
         return eds::graph::random_bounded_degree(16, 4, 26, r);
       }},
      {"tree n=16",
       [](eds::Rng& r) { return eds::graph::random_tree(16, r); }},
      {"cycle n=15",
       [](eds::Rng& r) {
         (void)r;
         return eds::graph::cycle(15);
       }},
  };

  for (const auto& family : families) {
    eds::Summary ratios;
    eds::Fraction worst(0);
    eds::runtime::Round rounds = 0;
    int instances = 0;
    for (int trial = 0; trial < 15; ++trial) {
      const auto g = family.make(rng);
      if (g.num_edges() == 0) continue;
      const auto optimum = eds::exact::minimum_vertex_cover_size(g);
      if (optimum == 0) continue;
      ++instances;
      const auto pg = eds::port::with_random_ports(g, rng);
      const auto outcome =
          eds::algo::run_algorithm(pg, eds::algo::Algorithm::kDoubleCover);
      rounds = outcome.stats.rounds;
      const auto cover =
          eds::exact::vertex_cover_from_two_matching(g, outcome.solution);
      const auto ratio =
          eds::analysis::approximation_ratio(cover.size(), optimum);
      ratios.add(ratio.to_double());
      if (ratio > worst) worst = ratio;
    }
    table.row({family.name, std::to_string(instances),
               eds::fmt(ratios.mean()), worst.str(), "3",
               std::to_string(rounds)});
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: worst ratios stay at or below 3 (typically"
               " well below 2 on\nrandom instances); rounds are 2*Delta —"
               " independent of n.\n";
  return 0;
}
