// Reproduces Table 1, d-regular rows, empirically.
//
// For each d we report:
//   * the paper's tight ratio (lower bound = upper bound),
//   * the measured ratio of the prescribed algorithm on the matching
//     lower-bound construction (must EQUAL the bound, as exact rationals),
//   * the worst measured ratio over random d-regular instances and random
//     port numberings (must be <= the bound),
//   * the round count (O(1) for even d, O(d^2) for odd d, independent of n).
#include <iostream>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "exact/exact_eds.hpp"
#include "graph/generators.hpp"
#include "lb/lower_bounds.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using eds::Fraction;
using eds::algo::Algorithm;

struct Row {
  eds::port::Port d;
  Fraction bound;
  Fraction worst_case;     // on the lower-bound construction
  Fraction random_worst;   // max over random instances
  eds::runtime::Round rounds;
  bool all_feasible;
};

Row measure(eds::port::Port d, eds::Rng& rng) {
  Row row{d, eds::analysis::paper_bound_regular(d), Fraction(0), Fraction(0),
          0, true};
  const Algorithm alg =
      d % 2 == 0 ? Algorithm::kPortOne : Algorithm::kOddRegular;

  // Worst case: the matching lower-bound construction (d >= 2; d = 1 has no
  // construction — the trivial optimum is forced, ratio 1).
  if (d == 1) {
    row.worst_case = Fraction(1);
    const auto g = eds::graph::circulant(8, {4});
    const auto pg = eds::port::with_canonical_ports(g);
    const auto outcome = eds::algo::run_algorithm(pg, Algorithm::kOddRegular, 1);
    row.rounds = outcome.stats.rounds;
    row.worst_case = eds::analysis::approximation_ratio(
        outcome.solution.size(), eds::exact::minimum_eds_size(g));
  } else if (d % 2 == 0) {
    const auto inst = eds::lb::even_lower_bound(d);
    const auto outcome = eds::algo::run_algorithm(inst.ported, alg, 0);
    row.worst_case = eds::analysis::approximation_ratio(
        outcome.solution.size(), inst.optimal.size());
    row.rounds = outcome.stats.rounds;
  } else {
    const auto inst = eds::lb::odd_lower_bound(d);
    const auto outcome = eds::algo::run_algorithm(inst.ported, alg, d);
    row.worst_case = eds::analysis::approximation_ratio(
        outcome.solution.size(), inst.optimal.size());
    row.rounds = outcome.stats.rounds;
  }

  // Random d-regular instances (exact optimum; several numberings each).
  // Instance sizes keep the exact solver comfortable (m <= ~60 edges).
  // Generation stays sequential (the RNG stream defines the experiment);
  // the 12 runs then fan out as one batch over the engine pool.
  std::vector<eds::port::PortedGraph> numberings;
  std::vector<std::size_t> optima;
  for (int instance = 0; instance < 4; ++instance) {
    const std::size_t n = d >= 7 ? 12 : 2 * d + 6;
    const auto g = eds::graph::random_regular(n, d, rng);
    const auto optimum = eds::exact::minimum_eds_size(g);
    for (int numbering = 0; numbering < 3; ++numbering) {
      numberings.push_back(eds::port::with_random_ports(g, rng));
      optima.push_back(optimum);
    }
  }
  std::vector<eds::algo::BatchItem> items;
  items.reserve(numberings.size());
  for (const auto& pg : numberings) {
    items.push_back({&pg, alg, d % 2 ? d : eds::port::Port{0}});
  }
  const auto outcomes = eds::algo::run_batch(items);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    row.all_feasible =
        row.all_feasible &&
        eds::analysis::is_edge_dominating_set(numberings[i].graph(),
                                              outcomes[i].solution);
    const auto ratio = eds::analysis::approximation_ratio(
        outcomes[i].solution.size(), optima[i]);
    if (ratio > row.random_worst) row.random_worst = ratio;
  }
  return row;
}

}  // namespace

int main() {
  eds::Rng rng(20100725);  // PODC 2010's opening day
  eds::TextTable table(
      "Table 1 (d-regular rows): paper bound vs measured, all tight");
  table.header({"d", "parity", "paper ratio", "worst-case measured",
                "tight?", "random worst", "<= bound?", "rounds", "feasible"});

  for (eds::port::Port d = 1; d <= 10; ++d) {
    const auto row = measure(d, rng);
    table.row({std::to_string(d), d % 2 ? "odd" : "even", row.bound.str(),
               row.worst_case.str(),
               row.worst_case == row.bound ? "EQUAL" : "no",
               row.random_worst.str(),
               row.random_worst <= row.bound ? "yes" : "VIOLATED",
               std::to_string(row.rounds), row.all_feasible ? "yes" : "NO"});
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: worst-case measured == paper ratio for every"
               " d >= 2\n(the bounds are tight), random worst <= bound, and"
               " rounds grow as O(d^2)\nfor odd d while staying 1 for even d."
               "\n";
  return 0;
}
