// Section 1.1 / 1.3 context: how the anonymous distributed algorithms
// compare against the classical baselines — greedy / randomised maximal
// matchings (the 2-approximation any ID-based algorithm would emulate), the
// greedy EDS heuristic, and the exact optimum.
#include <functional>
#include <iostream>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "baseline/baseline.hpp"
#include "exact/exact_eds.hpp"
#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  eds::Rng rng(2718);
  eds::TextTable table(
      "Mean approximation ratio over 20 instances (exact optimum = 1.0)");
  table.header({"family", "distributed", "greedy-MM", "random-MM",
                "greedy-EDS", "worst distributed", "paper bound"});

  struct Family {
    const char* name;
    std::function<eds::graph::SimpleGraph(eds::Rng&)> make;
  };
  const Family families[] = {
      {"3-regular n=12",
       [](eds::Rng& r) { return eds::graph::random_regular(12, 3, r); }},
      {"4-regular n=12",
       [](eds::Rng& r) { return eds::graph::random_regular(12, 4, r); }},
      {"max-deg-4 n=14",
       [](eds::Rng& r) {
         return eds::graph::random_bounded_degree(14, 4, 22, r);
       }},
      {"tree n=14",
       [](eds::Rng& r) { return eds::graph::random_tree(14, r); }},
  };

  for (const auto& family : families) {
    eds::Summary dist, greedy, random, geds;
    eds::Fraction worst(0);
    eds::Fraction bound(0);  // the loosest Table 1 bound this family hit
    for (int trial = 0; trial < 20; ++trial) {
      const auto g = family.make(rng);
      if (g.num_edges() == 0) continue;
      const auto optimum = eds::exact::minimum_eds_size(g);
      if (optimum == 0) continue;

      const auto delta = g.max_degree();
      const auto inst_bound = g.is_regular(delta)
                                  ? eds::analysis::paper_bound_regular(delta)
                                  : eds::analysis::paper_bound_bounded(delta);
      if (inst_bound > bound) bound = inst_bound;

      const auto rec = eds::algo::recommended_for(g);
      const auto pg = eds::port::with_random_ports(g, rng);
      const auto outcome = eds::algo::run_algorithm(pg, rec.algorithm, rec.param);
      const auto r = eds::analysis::approximation_ratio(
          outcome.solution.size(), optimum);
      dist.add(r.to_double());
      if (r > worst) worst = r;

      greedy.add(eds::analysis::approximation_ratio(
                     eds::baseline::greedy_maximal_matching(g).size(), optimum)
                     .to_double());
      auto child = rng.split();
      random.add(eds::analysis::approximation_ratio(
                     eds::baseline::random_maximal_matching(g, child).size(),
                     optimum)
                     .to_double());
      geds.add(eds::analysis::approximation_ratio(
                   eds::baseline::greedy_eds(g).size(), optimum)
                   .to_double());
    }
    table.row({family.name, eds::fmt(dist.mean()), eds::fmt(greedy.mean()),
               eds::fmt(random.mean()), eds::fmt(geds.mean()), worst.str(),
               bound.str()});
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: centralised maximal matchings sit well"
               " below 2; the anonymous\ndistributed algorithms pay for the"
               " weaker model but never exceed their Table 1\nbound, even in"
               " the worst draw.\n";
  return 0;
}
