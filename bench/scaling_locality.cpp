// The locality claim of Section 1.5: the running time of the algorithms
// depends only on d (or ∆), never on n.  Two sweeps:
//   (1) rounds vs n at fixed d      -> flat series
//   (2) rounds vs d at fixed n-ish  -> O(1) / O(d^2) growth
// Instances are generated sequentially (the RNG stream is the experiment);
// each sweep's runs then execute as one batch over the engine pool.
#include <iostream>

#include "algo/bounded_degree.hpp"
#include "algo/driver.hpp"
#include "algo/odd_regular.hpp"
#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  eds::Rng rng(4242);

  eds::TextTable by_n("Rounds vs n at fixed degree (flat = local algorithm)");
  by_n.header({"n", "port-one d=4", "odd-regular d=3", "odd-regular d=5",
               "A(4) grid"});
  {
    std::vector<std::size_t> ns;
    std::vector<eds::port::PortedGraph> instances;  // 4 per n, in column order
    std::vector<eds::algo::BatchItem> items;
    for (const std::size_t scale : {1u, 2u, 4u, 8u, 16u}) {
      const std::size_t n = 16 * scale;
      ns.push_back(n);
      const auto g4 = eds::graph::random_regular(n, 4, rng);
      const auto g3 = eds::graph::random_regular(n, 3, rng);
      const auto g5 = eds::graph::random_regular(n, 5, rng);
      const auto grid = eds::graph::grid(4, n / 4);
      instances.push_back(eds::port::with_random_ports(g4, rng));
      instances.push_back(eds::port::with_random_ports(g3, rng));
      instances.push_back(eds::port::with_random_ports(g5, rng));
      instances.push_back(eds::port::with_random_ports(grid, rng));
    }
    items.reserve(instances.size());
    for (std::size_t i = 0; i < instances.size(); i += 4) {
      items.push_back({&instances[i], eds::algo::Algorithm::kPortOne, 0});
      items.push_back({&instances[i + 1], eds::algo::Algorithm::kOddRegular, 3});
      items.push_back({&instances[i + 2], eds::algo::Algorithm::kOddRegular, 5});
      items.push_back(
          {&instances[i + 3], eds::algo::Algorithm::kBoundedDegree, 4});
    }
    const auto outcomes = eds::algo::run_batch(items);
    for (std::size_t i = 0; i < ns.size(); ++i) {
      by_n.row({std::to_string(ns[i]),
                std::to_string(outcomes[4 * i].stats.rounds),
                std::to_string(outcomes[4 * i + 1].stats.rounds),
                std::to_string(outcomes[4 * i + 2].stats.rounds),
                std::to_string(outcomes[4 * i + 3].stats.rounds)});
    }
  }
  by_n.print(std::cout);
  std::cout << "\n";

  eds::TextTable by_d("Rounds vs degree parameter (O(1) even / O(d^2) odd / "
                      "O(Delta^2) bounded)");
  by_d.header({"d", "port-one (even d)", "odd-regular (odd d)",
               "A(Delta) schedule", "messages odd-regular"});
  {
    std::vector<eds::port::PortedGraph> instances;
    std::vector<eds::algo::BatchItem> items;
    for (eds::port::Port d = 1; d <= 9; ++d) {
      const std::size_t n = 2 * static_cast<std::size_t>(d) + 10;
      const auto g = eds::graph::random_regular(n, d, rng);
      instances.push_back(eds::port::with_random_ports(g, rng));
    }
    items.reserve(instances.size());
    for (eds::port::Port d = 1; d <= 9; ++d) {
      items.push_back({&instances[d - 1],
                       d % 2 == 0 ? eds::algo::Algorithm::kPortOne
                                  : eds::algo::Algorithm::kOddRegular,
                       d % 2 == 0 ? eds::port::Port{0} : d});
    }
    const auto outcomes = eds::algo::run_batch(items);
    for (eds::port::Port d = 1; d <= 9; ++d) {
      const auto& r = outcomes[d - 1];
      std::string even = "-";
      std::string odd = "-";
      std::string msgs = "-";
      if (d % 2 == 0) {
        even = std::to_string(r.stats.rounds);
      } else {
        odd = std::to_string(r.stats.rounds);
        msgs = std::to_string(r.stats.messages_sent);
      }
      by_d.row({std::to_string(d), even, odd,
                d >= 2 ? std::to_string(
                             eds::algo::BoundedDegreeProgram::schedule_length(d))
                       : "0",
                msgs});
    }
  }
  by_d.print(std::cout);
  std::cout << "\nExpected shape: the first table is constant down each"
               " column (independence\nfrom n); in the second, odd-regular"
               " rounds track 2 + 2d^2 and the A(Delta)\nschedule tracks"
               " 3 + 3 Delta'^2.\n";
  return 0;
}
