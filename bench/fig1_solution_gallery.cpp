// Figure 1: the four kinds of solutions on a small example graph —
// (a) an edge dominating set, (b) a maximal matching (hence an EDS),
// (c) a minimum edge dominating set, (d) a minimum maximal matching
// (hence another minimum EDS).  Sizes and verifier verdicts.
#include <iostream>

#include "analysis/verify.hpp"
#include "baseline/baseline.hpp"
#include "exact/exact_eds.hpp"
#include "graph/simple_graph.hpp"
#include "util/table.hpp"

int main() {
  using eds::graph::SimpleGraph;
  // A Figure-1-style example: two fused 4-cycles with a pendant path —
  // small enough to brute-force, rich enough that (a)-(d) all differ.
  const auto g = SimpleGraph::from_edges(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {2, 4}, {4, 5}, {5, 2},
          {5, 6}, {6, 7}});

  const auto eds_greedy = eds::baseline::greedy_eds(g);
  const auto mm_greedy = eds::baseline::greedy_maximal_matching(g);
  const auto min_eds = eds::exact::brute_force_minimum_eds(g);
  const auto min_mm = eds::exact::minimum_maximal_matching(g);

  auto verdicts = [&g](const eds::graph::EdgeSet& s) {
    std::string out;
    out += eds::analysis::is_edge_dominating_set(g, s) ? "EDS" : "not-EDS";
    out += eds::analysis::is_matching(g, s) ? "+matching" : "";
    out += eds::analysis::is_maximal_matching(g, s) ? "+maximal" : "";
    return out;
  };
  auto edges_of = [&g](const eds::graph::EdgeSet& s) {
    std::string out;
    for (const auto e : s.to_vector()) {
      out += '{';
      out += std::to_string(g.edge(e).u);
      out += ',';
      out += std::to_string(g.edge(e).v);
      out += '}';
    }
    return out;
  };

  eds::TextTable table("Figure 1: solution gallery on " + g.summary());
  table.header({"panel", "solution", "size", "verdicts", "edges"});
  table.row({"(a)", "greedy EDS", std::to_string(eds_greedy.size()),
             verdicts(eds_greedy), edges_of(eds_greedy)});
  table.row({"(b)", "maximal matching", std::to_string(mm_greedy.size()),
             verdicts(mm_greedy), edges_of(mm_greedy)});
  table.row({"(c)", "minimum EDS", std::to_string(min_eds.size()),
             verdicts(min_eds), edges_of(min_eds)});
  table.row({"(d)", "minimum maximal matching", std::to_string(min_mm.size()),
             verdicts(min_mm), edges_of(min_mm)});
  table.print(std::cout);

  std::cout << "\nSection 1.1 facts checked: |minimum maximal matching| == "
               "|minimum EDS| ("
            << min_mm.size() << " == " << min_eds.size()
            << "), and converting the minimum EDS via the Yannakakis–Gavril\n"
               "procedure yields a maximal matching of size "
            << eds::baseline::independent_eds_from(g, min_eds).size() << ".\n";
  return min_mm.size() == min_eds.size() ? 0 : 1;
}
