// google-benchmark: asynchronous-engine cost model — what the α-synchronizer
// charges over the round loop, how virtual completion time stretches with
// delay variance, and what loss does to a free-running execution.
//
// Three questions, one benchmark each:
//
//  * BM_AsyncSynchronizer vs BM_AsyncSyncBaseline — the oracle's price.
//    Same instance, same algorithm; the async run adds the timeline, the
//    per-edge delay matrix and one ack per payload.  The wall-time ratio is
//    the synchronizer overhead; `acks` and `virtual_time` counters expose
//    the extra traffic and the virtual-clock stretch.
//
//  * BM_AsyncTailLatency — delay variance, not mean, dominates completion
//    time.  fixed:5, uniform:1:9 and geometric:5 share a 5-tick mean but
//    export very different `virtual_time` (the synchronizer waits for the
//    slowest link of every round: a per-round max, which grows with the
//    distribution's tail).
//
//  * BM_AsyncLossDegradation — free-running mode under loss ∈ {0, 1%, 10%}
//    (the BENCHMARKS.md degradation table).  port-one is the one paper
//    algorithm that tolerates fault-induced silence, so it is the workload;
//    `lost`, `timeouts` and `delivered` counters quantify the damage and
//    `virtual_time` the timeout-driven slowdown.
//
// Counters follow the micro_runtime idiom: every benchmark exports `n` and
// `rounds`, async ones add their AsyncStats deltas, so
//   bench_micro_async --benchmark_format=json | tools/bench_json.py
// yields comparable {name, n, rounds, ns_per_op, counters} records.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "algo/driver.hpp"
#include "graph/generators.hpp"
#include "port/random_port_graph.hpp"
#include "port/ported_graph.hpp"
#include "runtime/async.hpp"
#include "runtime/fault.hpp"
#include "runtime/runner.hpp"
#include "runtime/sched.hpp"
#include "util/rng.hpp"

namespace {

// One shared workload for the baseline/synchronizer pair: double-cover on a
// torus runs 2∆ transport-heavy rounds of near-trivial node logic, so the
// measured delta is engine cost, not algorithm cost.
constexpr std::size_t kSide = 16;  // 256 nodes, 4-regular
constexpr eds::port::Port kDegree = 4;

eds::port::PortedGraph bench_instance() {
  eds::Rng rng(11);
  return eds::port::with_random_ports(eds::graph::torus(kSide, kSide), rng);
}

void export_async(benchmark::State& state,
                  const eds::runtime::AsyncStats& async) {
  state.counters["virtual_time"] = static_cast<double>(async.virtual_time);
  state.counters["delivered"] = static_cast<double>(async.delivered);
  state.counters["acks"] = static_cast<double>(async.acks);
  state.counters["lost"] = static_cast<double>(async.lost);
  state.counters["timeouts"] = static_cast<double>(async.timeouts);
}

void BM_AsyncSyncBaseline(benchmark::State& state) {
  const auto pg = bench_instance();
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    auto outcome = eds::algo::run_algorithm(
        pg, eds::algo::Algorithm::kDoubleCover, kDegree);
    rounds = outcome.stats.rounds;
    benchmark::DoNotOptimize(outcome.stats.messages_sent);
  }
  state.counters["n"] = static_cast<double>(pg.graph().num_nodes());
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_AsyncSyncBaseline);

// Delay models with the same 5-tick mean but increasing variance; Arg(i)
// indexes this table (benchmark names show the index, `delay_max` the cap).
const eds::runtime::DelayModel kDelayTable[] = {
    {eds::runtime::DelayKind::kFixed, 1, 1},
    {eds::runtime::DelayKind::kFixed, 5, 5},
    {eds::runtime::DelayKind::kUniform, 1, 9},
    {eds::runtime::DelayKind::kGeometric, 5, 40},
};

void BM_AsyncSynchronizer(benchmark::State& state) {
  const auto& delay = kDelayTable[static_cast<std::size_t>(state.range(0))];
  const auto pg = bench_instance();
  const auto factory =
      eds::algo::make_factory(eds::algo::Algorithm::kDoubleCover, kDegree);
  eds::runtime::AsyncOptions async;
  async.delay = delay;
  async.seed = 0xA5BE7C;
  std::uint64_t rounds = 0;
  eds::runtime::AsyncStats last;
  for (auto _ : state) {
    auto result = eds::runtime::run_asynchronous(pg.ports(), *factory,
                                                 eds::runtime::RunOptions{},
                                                 async);
    rounds = result.run.stats.rounds;
    last = result.async;
    benchmark::DoNotOptimize(result.run.stats.messages_sent);
  }
  export_async(state, last);
  state.counters["n"] = static_cast<double>(pg.graph().num_nodes());
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["delay_max"] = static_cast<double>(delay.max_delay());
}
BENCHMARK(BM_AsyncSynchronizer)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_AsyncFreeRunning(benchmark::State& state) {
  // Synchronizer off, no faults: the event loop and delay matrix without
  // the ack traffic.  The gap to BM_AsyncSynchronizer->Arg(0) is the pure
  // ack cost; the gap to BM_AsyncSyncBaseline is the timeline itself.
  const auto pg = bench_instance();
  const auto factory =
      eds::algo::make_factory(eds::algo::Algorithm::kDoubleCover, kDegree);
  eds::runtime::AsyncOptions async;
  async.synchronizer = false;
  async.delay = {eds::runtime::DelayKind::kFixed, 1, 1};
  async.seed = 0xF3EE;
  std::uint64_t rounds = 0;
  eds::runtime::AsyncStats last;
  for (auto _ : state) {
    auto result = eds::runtime::run_asynchronous(pg.ports(), *factory,
                                                 eds::runtime::RunOptions{},
                                                 async);
    rounds = result.run.stats.rounds;
    last = result.async;
    benchmark::DoNotOptimize(result.run.stats.messages_sent);
  }
  export_async(state, last);
  state.counters["n"] = static_cast<double>(pg.graph().num_nodes());
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_AsyncFreeRunning);

void BM_AsyncTailLatency(benchmark::State& state) {
  // Mean-5 delay models, increasing variance; `virtual_time` is the story.
  // Relay-free single-shot workload: port-one's one communication round
  // makes virtual_time ≈ the per-round max link delay, isolating the tail
  // effect from round-count amplification.
  const auto& delay = kDelayTable[static_cast<std::size_t>(state.range(0))];
  eds::Rng rng(12);
  const auto pg = eds::port::with_random_ports(
      eds::graph::random_regular(1024, 4, rng), rng);
  const auto factory = eds::algo::make_factory(eds::algo::Algorithm::kPortOne);
  eds::runtime::AsyncOptions async;
  async.delay = delay;
  async.seed = 0x7A11;
  eds::runtime::AsyncStats last;
  for (auto _ : state) {
    auto result = eds::runtime::run_asynchronous(pg.ports(), *factory,
                                                 eds::runtime::RunOptions{},
                                                 async);
    last = result.async;
    benchmark::DoNotOptimize(result.run.stats.messages_sent);
  }
  export_async(state, last);
  state.counters["n"] = static_cast<double>(pg.graph().num_nodes());
  state.counters["delay_max"] = static_cast<double>(delay.max_delay());
}
BENCHMARK(BM_AsyncTailLatency)->Arg(1)->Arg(2)->Arg(3);

void BM_AsyncLossDegradation(benchmark::State& state) {
  // Arg is loss in per-mille: 0, 10 (1%), 100 (10%).  Free-running mode,
  // uniform:1:6 delays, default timeout.  port-one reads fault-induced
  // silence as "partner selected nothing" — outputs degrade (the run may
  // no longer be a valid dominating set) but the execution completes, which
  // is exactly the degradation BENCHMARKS.md tabulates.
  const double loss = static_cast<double>(state.range(0)) / 1000.0;
  eds::Rng rng(13);
  const auto pg = eds::port::with_random_ports(
      eds::graph::random_regular(256, 4, rng), rng);
  const auto factory = eds::algo::make_factory(eds::algo::Algorithm::kPortOne);
  eds::runtime::AsyncOptions async;
  async.synchronizer = false;
  async.delay = {eds::runtime::DelayKind::kUniform, 1, 6};
  async.seed = 0x1055;
  async.faults.loss = loss;
  std::uint64_t rounds = 0;
  eds::runtime::AsyncStats last;
  for (auto _ : state) {
    auto result = eds::runtime::run_asynchronous(pg.ports(), *factory,
                                                 eds::runtime::RunOptions{},
                                                 async);
    rounds = result.run.stats.rounds;
    last = result.async;
    benchmark::DoNotOptimize(result.run.stats.messages_sent);
  }
  export_async(state, last);
  state.counters["n"] = static_cast<double>(pg.graph().num_nodes());
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["loss_permille"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AsyncLossDegradation)->Arg(0)->Arg(10)->Arg(100);

void BM_AdversaryOverhead(benchmark::State& state) {
  // Arg indexes the strategy (random, pct, delay, climb).  One iteration =
  // one budgeted adversary_search (probes + re-measures + bookkeeping) on
  // the BENCHMARKS.md attack fixture: an 8-node 3-regular multigraph under
  // free-running port-one with unit delays and a 2-tick round timeout.
  // `schedules_per_sec` is the search throughput (budget schedules per
  // search, iteration-invariant rate); the worst_* counters pin the found
  // worst case so a perf change that silently weakens the search shows up
  // in --compare as a counter delta, not just a wall-time delta.
  constexpr eds::runtime::AdversaryStrategy kStrategies[] = {
      eds::runtime::AdversaryStrategy::kRandom,
      eds::runtime::AdversaryStrategy::kPct,
      eds::runtime::AdversaryStrategy::kDelay,
      eds::runtime::AdversaryStrategy::kClimb,
  };
  constexpr std::size_t kBudget = 32;
  const auto strategy = kStrategies[static_cast<std::size_t>(state.range(0))];
  eds::Rng rng(0xADF1C7ULL);
  const auto g = eds::port::random_port_graph(
      std::vector<eds::port::Port>(8, 3), rng, 0.1);
  const auto factory = eds::algo::make_factory(eds::algo::Algorithm::kPortOne);
  eds::runtime::AsyncOptions base;
  base.synchronizer = false;
  base.delay = {eds::runtime::DelayKind::kFixed, 1, 1};
  base.round_timeout = 2;
  base.seed = 99;
  eds::runtime::AdversaryReport last;
  for (auto _ : state) {
    last = eds::runtime::adversary_search(g, *factory, strategy, base, kBudget,
                                          0xD1CE);
    benchmark::DoNotOptimize(last.evaluated);
  }
  state.counters["schedules_per_sec"] = benchmark::Counter(
      static_cast<double>(kBudget),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["worst_time"] =
      static_cast<double>(last.worst_time.metrics.virtual_time);
  state.counters["worst_selected"] =
      static_cast<double>(last.worst_selected.metrics.selected);
  state.counters["worst_inconsistent"] =
      static_cast<double>(last.worst_inconsistent.metrics.inconsistent);
  state.counters["n"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_AdversaryOverhead)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
