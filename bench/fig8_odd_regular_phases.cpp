// Figure 8: the matchings M(i, j) and the two phases of Theorem 4's
// algorithm on 3-regular port-numbered graphs.  Panel (b): the nine M(i, j)
// matchings; panels (c)/(d): D after phase I (spanning forest, edge cover)
// and after phase II (star forest).  We also confirm the distributed
// execution agrees with the centralised mirror edge-for-edge.
#include <iostream>

#include "algo/central.hpp"
#include "algo/driver.hpp"
#include "analysis/verify.hpp"
#include "graph/generators.hpp"
#include "port/labels.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  eds::Rng rng(88);

  // Panel (b): M(i, j) on one fixed 3-regular example.
  const auto g0 = eds::graph::petersen();
  const auto pg0 = eds::port::with_random_ports(g0, rng);
  eds::TextTable mtable("Figure 8(b): the matchings M(i,j) on the Petersen "
                        "graph (random ports)");
  mtable.header({"i\\j", "j=1", "j=2", "j=3"});
  for (eds::port::Port i = 1; i <= 3; ++i) {
    std::vector<std::string> row{"i=" + std::to_string(i)};
    for (eds::port::Port j = 1; j <= 3; ++j) {
      const auto m = eds::port::matching_m(pg0, i, j);
      row.push_back("|M|=" + std::to_string(m.size()) +
                    (eds::analysis::is_matching(g0, m) ? "" : " NOT-MATCHING"));
    }
    mtable.row(row);
  }
  mtable.print(std::cout);
  std::cout << "\n";

  // Panels (c)/(d): phase snapshots across instances.
  eds::TextTable table("Figure 8(c)-(d): phase I/II snapshots, 3-regular");
  table.header({"instance", "n", "|D| phase I", "forest", "edge cover",
                "|D| phase II", "star forest", "|D|<=dn/(d+1)",
                "distributed == central"});

  const struct {
    eds::graph::SimpleGraph g;
    const char* name;
  } cases[] = {
      {eds::graph::petersen(), "petersen"},
      {eds::graph::complete_bipartite(3, 3), "K33"},
      {eds::graph::random_regular(14, 3, rng), "rand-14"},
      {eds::graph::random_regular(26, 3, rng), "rand-26"},
      {eds::graph::circulant(12, {1, 6}), "circulant-12"},
  };
  for (const auto& c : cases) {
    const auto pg = eds::port::with_random_ports(c.g, rng);
    const auto trace = eds::algo::central_odd_regular(pg);
    const auto outcome =
        eds::algo::run_algorithm(pg, eds::algo::Algorithm::kOddRegular, 3);

    const auto n = c.g.num_nodes();
    table.row(
        {c.name, std::to_string(n), std::to_string(trace.after_phase1.size()),
         eds::analysis::is_forest(c.g, trace.after_phase1) ? "yes" : "NO",
         eds::analysis::is_edge_cover(c.g, trace.after_phase1) ? "yes" : "NO",
         std::to_string(trace.after_phase2.size()),
         eds::analysis::is_star_forest(c.g, trace.after_phase2) ? "yes" : "NO",
         trace.after_phase2.size() * 4 <= 3 * n ? "yes" : "NO",
         outcome.solution == trace.after_phase2 ? "yes" : "DIVERGED"});
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: phase I builds a spanning forest that covers"
               " every node;\nphase II prunes it to a star forest with"
               " |D| <= d|V|/(d+1) (d = 3: <= 3n/4);\nthe distributed run"
               " equals the centralised mirror exactly.\n";
  return 0;
}
