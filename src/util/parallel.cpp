#include "util/parallel.hpp"

#include <algorithm>
#include <cstdint>

namespace eds {

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw == 0 ? 1u : hw;
  }
  return std::min(requested, kMaxLanes);
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned lanes = resolve_threads(threads);
  workers_.reserve(lanes - 1);
  for (unsigned i = 1; i < lanes; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  wake_workers_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run(std::size_t tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (workers_.empty() || tasks == 1) {
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  {
    const std::lock_guard lock(mutex_);
    fn_ = &fn;
    tasks_ = tasks;
    next_task_ = 0;
    in_flight_ = 0;
    ++generation_;
  }
  wake_workers_.notify_all();
  work_through_current_batch();
  std::unique_lock lock(mutex_);
  batch_done_.wait(lock,
                   [this] { return next_task_ >= tasks_ && in_flight_ == 0; });
  fn_ = nullptr;
}

void ThreadPool::work_through_current_batch() {
  for (;;) {
    std::size_t index = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      const std::lock_guard lock(mutex_);
      if (next_task_ >= tasks_) return;
      index = next_task_++;
      ++in_flight_;
      fn = fn_;
    }
    (*fn)(index);
    {
      const std::lock_guard lock(mutex_);
      --in_flight_;
      if (next_task_ >= tasks_ && in_flight_ == 0) batch_done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      wake_workers_.wait(lock, [&] {
        return shutdown_ ||
               (generation_ != seen_generation && next_task_ < tasks_);
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    work_through_current_batch();
  }
}

}  // namespace eds
