#include "util/error.hpp"

#include <sstream>

namespace eds::detail {

void throw_internal(const char* expr, const char* file, int line,
                    const std::string& message) {
  std::ostringstream os;
  os << "internal invariant violated: " << message << " [" << expr << " at "
     << file << ":" << line << "]";
  throw InternalError(os.str());
}

}  // namespace eds::detail
