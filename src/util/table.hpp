// Plain-text table rendering for the bench harness.
//
// The reproduction benches print paper-style tables (rows of Table 1, series
// behind each figure).  TextTable collects rows of strings and renders them
// with aligned columns; it also emits CSV for downstream plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <initializer_list>
#include <string>
#include <vector>

namespace eds {

/// A simple column-aligned text table with an optional title and header.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row (column names).
  void header(std::vector<std::string> columns);

  /// Appends a data row; must match the header width if a header is set.
  void row(std::vector<std::string> cells);

  /// Number of data rows so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with aligned columns, a rule under the header, and the title.
  void print(std::ostream& os) const;

  /// Renders as CSV (header first if present); no quoting — callers must not
  /// put commas in cells.
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (default three decimals).
[[nodiscard]] std::string fmt(double value, int precision = 3);

}  // namespace eds
