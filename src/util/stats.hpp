// Small summary-statistics accumulator used by benches and experiments.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace eds {

/// Streaming summary of a sequence of doubles: count / min / max / mean /
/// sample standard deviation (Welford's algorithm; numerically stable).
class Summary {
 public:
  void add(double x) noexcept {
    ++count_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  [[nodiscard]] double stddev() const noexcept {
    if (count_ < 2) return 0.0;
    return std::sqrt(m2_ / static_cast<double>(count_ - 1));
  }

 private:
  std::size_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Percentile (nearest-rank) of a sample; p in [0, 100].
[[nodiscard]] double percentile(std::vector<double> sample, double p);

}  // namespace eds
