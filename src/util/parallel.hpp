// A minimal fork-join thread pool.
//
// Both parallel execution layers of the runtime are built on this one
// primitive: ParallelPolicy shards the nodes of a single round across lanes,
// and BatchRunner fans independent (graph, program, options) jobs across
// them.  The pool is deliberately tiny — persistent workers, one blocking
// run() that executes fn(0..tasks-1) with dynamic load balancing — because
// everything determinism-sensitive (merge order, result order) is handled by
// the callers, which always combine per-task results in task-index order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eds {

/// Number of lanes to use for `requested` threads: `requested` itself, or
/// std::thread::hardware_concurrency() (at least 1) when `requested` is 0.
/// Clamped to kMaxLanes — results never depend on the lane count, so a
/// huge request must not exhaust OS threads.
inline constexpr unsigned kMaxLanes = 256;
[[nodiscard]] unsigned resolve_threads(unsigned requested) noexcept;

/// Splits item indices [0, items) into `shards` contiguous ranges whose
/// weight totals are as equal as a contiguous split allows, writing the
/// shards + 1 ascending boundaries into `bounds` (bounds[0] = 0,
/// bounds[shards] = items; shard s is [bounds[s], bounds[s + 1])).  The
/// engine uses this with per-node port counts as weights, so lanes get
/// equal *work* rather than equal node counts — on a power-law degree
/// sequence an equal-count split can hand one lane most of the ports.
///
/// Boundary s lands after the first item whose weight prefix reaches
/// total * s / shards; a single heavy item can absorb several targets, in
/// which case the following shards come out empty (callers iterate empty
/// ranges harmlessly).  All-zero weights fall back to an equal-count
/// split.  `weight_of(i)` must be pure; it is evaluated at most twice per
/// item.  Determinism note: results depend only on (weights, shards) —
/// never on thread scheduling — and any contiguous partition preserves a
/// shard-order merge, so the split cannot affect results, only balance.
template <typename WeightFn>
void balanced_shard_bounds(std::size_t items, std::size_t shards,
                           WeightFn&& weight_of,
                           std::vector<std::size_t>& bounds) {
  if (shards == 0) shards = 1;
  bounds.assign(shards + 1, items);
  bounds[0] = 0;
  if (shards == 1 || items == 0) return;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < items; ++i) total += weight_of(i);
  if (total == 0) {
    for (std::size_t s = 1; s < shards; ++s) bounds[s] = items * s / shards;
    return;
  }
  std::uint64_t prefix = 0;
  std::size_t s = 1;
  for (std::size_t i = 0; i < items && s < shards; ++i) {
    prefix += weight_of(i);
    while (s < shards && prefix * shards >= total * s) {
      bounds[s] = i + 1;
      ++s;
    }
  }
}

/// Persistent fork-join pool with `lanes` concurrent lanes (the calling
/// thread is one of them, so `lanes - 1` workers are spawned).
class ThreadPool {
 public:
  /// `threads` as in resolve_threads(); a pool with one lane degenerates to
  /// running everything inline on the caller.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned lanes() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Executes fn(i) for every i in [0, tasks), distributing indices across
  /// all lanes (the caller participates), and blocks until every call has
  /// returned.  `fn` must be safe to invoke concurrently and must not throw —
  /// callers that can fail capture std::exception_ptr per task themselves.
  /// Not reentrant: run() must not be called from inside `fn`.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void work_through_current_batch();

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable batch_done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;  // current batch
  std::size_t tasks_ = 0;        // size of the current batch
  std::size_t next_task_ = 0;    // next unclaimed index
  std::size_t in_flight_ = 0;    // claimed but unfinished tasks
  std::uint64_t generation_ = 0; // bumped per batch so workers don't re-enter
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace eds
