// Error types and invariant-checking helpers shared across the library.
//
// The library follows a two-level policy (C++ Core Guidelines E.*):
//  * Preconditions violated by the *caller* and invalid external inputs throw
//    typed exceptions derived from eds::Error.
//  * Internal invariants that can only fail due to a bug in this library are
//    guarded with EDS_ENSURE, which throws eds::InternalError carrying the
//    failing expression and source location.
#pragma once

#include <stdexcept>
#include <string>

namespace eds {

/// Base class of all exceptions thrown by the edsim library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An argument violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A graph or port numbering failed structural validation.
class InvalidStructure : public Error {
 public:
  explicit InvalidStructure(const std::string& what) : Error(what) {}
};

/// A distributed execution violated the model (e.g. a node program produced
/// an inconsistent output, or the round limit was exceeded).
class ExecutionError : public Error {
 public:
  explicit ExecutionError(const std::string& what) : Error(what) {}
};

/// An internal invariant failed; indicates a bug in the library itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_internal(const char* expr, const char* file, int line,
                                 const std::string& message);
}  // namespace detail

}  // namespace eds

/// Check an internal invariant; throws eds::InternalError on failure.
/// Always enabled (the checks guard correctness arguments, not hot paths).
#define EDS_ENSURE(expr, message)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::eds::detail::throw_internal(#expr, __FILE__, __LINE__, (message)); \
    }                                                                   \
  } while (false)
