// Exact rational arithmetic for approximation-ratio bookkeeping.
//
// The paper's bounds (4 - 2/d, 4 - 6/(d+1), ...) are rationals, and the
// tightness results state that measured ratios on the lower-bound
// constructions are *exactly* these values.  Comparing floating-point
// approximations would make those assertions fragile; Fraction keeps the
// comparisons exact.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/error.hpp"

namespace eds {

/// An exact rational number with 64-bit numerator/denominator, always stored
/// in lowest terms with a positive denominator.
class Fraction {
 public:
  constexpr Fraction() noexcept = default;

  /// Constructs num/den; throws InvalidArgument if den == 0.
  Fraction(std::int64_t num, std::int64_t den);

  /// Implicit conversion from an integer (den = 1).
  constexpr Fraction(std::int64_t num) noexcept : num_(num), den_(1) {}  // NOLINT

  [[nodiscard]] constexpr std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const noexcept { return den_; }

  [[nodiscard]] double to_double() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// Renders as "a/b" (or "a" when b == 1).
  [[nodiscard]] std::string str() const;

  [[nodiscard]] Fraction operator+(const Fraction& rhs) const;
  [[nodiscard]] Fraction operator-(const Fraction& rhs) const;
  [[nodiscard]] Fraction operator*(const Fraction& rhs) const;
  [[nodiscard]] Fraction operator/(const Fraction& rhs) const;

  [[nodiscard]] bool operator==(const Fraction& rhs) const noexcept {
    return num_ == rhs.num_ && den_ == rhs.den_;
  }
  [[nodiscard]] std::strong_ordering operator<=>(const Fraction& rhs) const;

 private:
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Fraction& f);

}  // namespace eds
