#include "util/stats.hpp"

#include "util/error.hpp"

namespace eds {

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) throw InvalidArgument("percentile: empty sample");
  if (p < 0.0 || p > 100.0) {
    throw InvalidArgument("percentile: p must be in [0, 100]");
  }
  std::sort(sample.begin(), sample.end());
  const auto n = sample.size();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  return sample[rank == 0 ? 0 : rank - 1];
}

}  // namespace eds
