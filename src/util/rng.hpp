// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through eds::Rng so that every
// experiment is reproducible from a single 64-bit seed.  The generator is
// xoshiro256** (Blackman & Vigna) seeded via splitmix64; both are implemented
// here to avoid any dependence on the standard library's unspecified
// distributions (std::uniform_int_distribution is not portable across
// implementations, which would make recorded experiment outputs non-portable).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace eds {

/// splitmix64 step; used for seeding and as a cheap hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic xoshiro256** generator with portable distributions.
class Rng {
 public:
  /// Seeds the state from a single 64-bit value via splitmix64.
  explicit Rng(std::uint64_t seed = 0) noexcept { reseed(seed); }

  /// Resets the generator to the state derived from `seed`.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Next raw 64-bit output.
  [[nodiscard]] std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be positive.
  /// Uses Lemire-style rejection to avoid modulo bias.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) throw InvalidArgument("Rng::below: bound must be positive");
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw InvalidArgument("Rng::range: lo must be <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo);
    return lo + static_cast<std::int64_t>(below(span + 1));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  [[nodiscard]] bool chance(double p) { return uniform01() < p; }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// A random permutation of {0, 1, ..., n-1}.
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator (for parallel experiment arms).
  [[nodiscard]] Rng split() noexcept { return Rng(next_u64()); }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace eds
