#include "util/rng.hpp"

#include <numeric>

namespace eds {

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  shuffle(perm);
  return perm;
}

}  // namespace eds
