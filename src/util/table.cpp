#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace eds {

void TextTable::header(std::vector<std::string> columns) {
  header_ = std::move(columns);
}

void TextTable::row(std::vector<std::string> cells) {
  if (!header_.empty() && cells.size() != header_.size()) {
    throw InvalidArgument("TextTable::row: width does not match header");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i])) << cells[i];
      if (i + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    }
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace eds
