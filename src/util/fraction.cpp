#include "util/fraction.hpp"

#include <numeric>
#include <ostream>
#include <sstream>

namespace eds {

namespace {

// Checked multiply; the ratios handled here are tiny, so overflow means a bug.
std::int64_t mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw InternalError("Fraction arithmetic overflow");
  }
  return out;
}

std::int64_t add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    throw InternalError("Fraction arithmetic overflow");
  }
  return out;
}

}  // namespace

Fraction::Fraction(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  if (den_ == 0) throw InvalidArgument("Fraction: zero denominator");
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

std::string Fraction::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

Fraction Fraction::operator+(const Fraction& rhs) const {
  return Fraction(add(mul(num_, rhs.den_), mul(rhs.num_, den_)),
                  mul(den_, rhs.den_));
}

Fraction Fraction::operator-(const Fraction& rhs) const {
  return *this + Fraction(-rhs.num_, rhs.den_);
}

Fraction Fraction::operator*(const Fraction& rhs) const {
  return Fraction(mul(num_, rhs.num_), mul(den_, rhs.den_));
}

Fraction Fraction::operator/(const Fraction& rhs) const {
  if (rhs.num_ == 0) throw InvalidArgument("Fraction: division by zero");
  return Fraction(mul(num_, rhs.den_), mul(den_, rhs.num_));
}

std::strong_ordering Fraction::operator<=>(const Fraction& rhs) const {
  // Denominators are positive, so cross-multiplication preserves order.
  return mul(num_, rhs.den_) <=> mul(rhs.num_, den_);
}

std::ostream& operator<<(std::ostream& os, const Fraction& f) {
  os << f.num();
  if (f.den() != 1) os << '/' << f.den();
  return os;
}

}  // namespace eds
