#include "analysis/ratio.hpp"

#include "util/error.hpp"

namespace eds::analysis {

Fraction approximation_ratio(std::size_t solution, std::size_t optimum) {
  if (optimum == 0) {
    if (solution == 0) return Fraction(1);
    throw InvalidArgument("approximation_ratio: optimum is zero");
  }
  return Fraction(static_cast<std::int64_t>(solution),
                  static_cast<std::int64_t>(optimum));
}

Fraction paper_bound_regular(std::size_t d) {
  if (d == 0) throw InvalidArgument("paper_bound_regular: d must be positive");
  const auto dd = static_cast<std::int64_t>(d);
  if (d % 2 == 1) {
    return Fraction(4) - Fraction(6, dd + 1);
  }
  return Fraction(4) - Fraction(2, dd);
}

Fraction paper_bound_bounded(std::size_t max_degree) {
  if (max_degree == 0) {
    throw InvalidArgument("paper_bound_bounded: max degree must be positive");
  }
  if (max_degree == 1) return Fraction(1);
  const auto dd = static_cast<std::int64_t>(max_degree);
  if (max_degree % 2 == 1) {
    return Fraction(4) - Fraction(2, dd - 1);
  }
  return Fraction(4) - Fraction(2, dd);
}

}  // namespace eds::analysis
