// Approximation-ratio bookkeeping, kept exact.
//
// The paper's tightness results are equalities between rationals, so ratios
// are represented as eds::Fraction; paper_bound_* return the Table 1 values.
#pragma once

#include <cstddef>

#include "util/fraction.hpp"

namespace eds::analysis {

/// |solution| / |optimum| as an exact fraction; optimum must be positive
/// unless the solution is also empty (ratio 1 by convention).
[[nodiscard]] Fraction approximation_ratio(std::size_t solution,
                                           std::size_t optimum);

/// Table 1, d-regular row: 4 - 6/(d+1) for odd d, 4 - 2/d for even d.
[[nodiscard]] Fraction paper_bound_regular(std::size_t d);

/// Table 1, bounded-degree row: 1 for ∆ = 1, 4 - 2/(∆-1) for odd ∆ >= 3,
/// 4 - 2/∆ for even ∆.  (Equivalently α(2k) = α(2k+1) = 4 - 1/k.)
[[nodiscard]] Fraction paper_bound_bounded(std::size_t max_degree);

}  // namespace eds::analysis
