// Solution verifiers.
//
// Every solution produced anywhere in the library (distributed algorithms,
// baselines, exact solvers, constructions) is an EdgeSet; the predicates here
// check the structural claims the paper makes about them.  The verifiers are
// deliberately independent of the solvers — they recompute everything from
// the graph — so they double as test oracles.
#pragma once

#include "graph/edge_set.hpp"
#include "graph/simple_graph.hpp"

namespace eds::analysis {

using graph::EdgeSet;
using graph::SimpleGraph;

/// Edges dominated by `s`: members of `s` and edges adjacent to a member.
[[nodiscard]] EdgeSet dominated_edges(const SimpleGraph& g, const EdgeSet& s);

/// True when every edge of `g` is dominated by `s`.
[[nodiscard]] bool is_edge_dominating_set(const SimpleGraph& g,
                                          const EdgeSet& s);

/// True when no two members share an endpoint.
[[nodiscard]] bool is_matching(const SimpleGraph& g, const EdgeSet& s);

/// True when every node is incident to at most k members.
[[nodiscard]] bool is_k_matching(const SimpleGraph& g, const EdgeSet& s,
                                 std::size_t k);

/// True when `s` is a matching and no edge can be added to it.
[[nodiscard]] bool is_maximal_matching(const SimpleGraph& g, const EdgeSet& s);

/// True when every node of `g` is covered by some member edge.
[[nodiscard]] bool is_edge_cover(const SimpleGraph& g, const EdgeSet& s);

/// True when the subgraph (V, s) is acyclic.
[[nodiscard]] bool is_forest(const SimpleGraph& g, const EdgeSet& s);

/// True when every component of the subgraph (V, s) is a star (including
/// single edges); equivalently, s is a forest with no path of three edges.
[[nodiscard]] bool is_star_forest(const SimpleGraph& g, const EdgeSet& s);

/// True when the two sets share no node (no member of `a` touches a member
/// of `b`).
[[nodiscard]] bool node_disjoint(const SimpleGraph& g, const EdgeSet& a,
                                 const EdgeSet& b);

}  // namespace eds::analysis
