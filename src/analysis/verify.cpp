#include "analysis/verify.hpp"

#include <vector>

namespace eds::analysis {

EdgeSet dominated_edges(const SimpleGraph& g, const EdgeSet& s) {
  std::vector<bool> node_covered(g.num_nodes(), false);
  for (const auto e : s.to_vector()) {
    node_covered[g.edge(e).u] = true;
    node_covered[g.edge(e).v] = true;
  }
  EdgeSet out(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (node_covered[g.edge(e).u] || node_covered[g.edge(e).v]) out.insert(e);
  }
  return out;
}

bool is_edge_dominating_set(const SimpleGraph& g, const EdgeSet& s) {
  return dominated_edges(g, s).size() == g.num_edges();
}

bool is_matching(const SimpleGraph& g, const EdgeSet& s) {
  return is_k_matching(g, s, 1);
}

bool is_k_matching(const SimpleGraph& g, const EdgeSet& s, std::size_t k) {
  std::vector<std::size_t> deg(g.num_nodes(), 0);
  for (const auto e : s.to_vector()) {
    if (++deg[g.edge(e).u] > k) return false;
    if (++deg[g.edge(e).v] > k) return false;
  }
  return true;
}

bool is_maximal_matching(const SimpleGraph& g, const EdgeSet& s) {
  if (!is_matching(g, s)) return false;
  // A matching is maximal iff it dominates every edge.
  return is_edge_dominating_set(g, s);
}

bool is_edge_cover(const SimpleGraph& g, const EdgeSet& s) {
  std::vector<bool> node_covered(g.num_nodes(), false);
  for (const auto e : s.to_vector()) {
    node_covered[g.edge(e).u] = true;
    node_covered[g.edge(e).v] = true;
  }
  for (bool covered : node_covered) {
    if (!covered) return false;
  }
  return true;
}

bool is_forest(const SimpleGraph& g, const EdgeSet& s) {
  // Union-find over the member edges.
  std::vector<graph::NodeId> parent(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) parent[v] = v;
  auto find = [&parent](graph::NodeId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const auto e : s.to_vector()) {
    const auto ru = find(g.edge(e).u);
    const auto rv = find(g.edge(e).v);
    if (ru == rv) return false;
    parent[ru] = rv;
  }
  return true;
}

bool is_star_forest(const SimpleGraph& g, const EdgeSet& s) {
  if (!is_forest(g, s)) return false;
  // In a forest, "every component is a star" is equivalent to "every edge
  // has an endpoint of set-degree 1" (no path of three edges).
  std::vector<std::size_t> deg(g.num_nodes(), 0);
  for (const auto e : s.to_vector()) {
    ++deg[g.edge(e).u];
    ++deg[g.edge(e).v];
  }
  for (const auto e : s.to_vector()) {
    if (deg[g.edge(e).u] > 1 && deg[g.edge(e).v] > 1) return false;
  }
  return true;
}

bool node_disjoint(const SimpleGraph& g, const EdgeSet& a, const EdgeSet& b) {
  std::vector<bool> in_a(g.num_nodes(), false);
  for (const auto e : a.to_vector()) {
    in_a[g.edge(e).u] = true;
    in_a[g.edge(e).v] = true;
  }
  for (const auto e : b.to_vector()) {
    if (in_a[g.edge(e).u] || in_a[g.edge(e).v]) return false;
  }
  return true;
}

}  // namespace eds::analysis
