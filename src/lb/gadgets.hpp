// Phase-exercising gadget constructions.
//
// The random families rarely trigger every code path of Theorem 5's A(∆):
// on most inputs phase I (distinguishable neighbours) already covers what
// phase II (degree-class proposals) would.  The subdivided-factor gadget
// here is engineered so that *no* node has a distinguishable neighbour
// (phase I finds nothing), the only unequal-degree edges are hub-to-
// subdivision edges (phase II must act), and the remaining equal-degree
// edges are left to phase III — exercising all three phases, each
// non-trivially.
#pragma once

#include "port/ported_graph.hpp"

namespace eds::lb {

/// Takes a 2k-regular graph (k >= 2), 2-factorises it, subdivides every
/// factor-1 edge with a degree-2 node, and port-numbers the result so that
/// every label pair is duplicated at every node:
///   * original nodes keep ports 2i-1/2i per factor (mirror pairs),
///   * each subdivision node s on u -> v has p(s,1) = (v,2), p(s,2) = (u,1).
/// Hence no node has a uniquely labelled edge, phase I of A(∆) adds
/// nothing, and the hub-subdivision edges (degrees 2k vs 2) can only be
/// matched by phase II.
[[nodiscard]] port::PortedGraph subdivided_factor_gadget(
    const graph::SimpleGraph& base);

}  // namespace eds::lb
