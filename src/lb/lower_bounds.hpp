// The paper's lower-bound constructions (Sections 3 and 4).
//
// Each instance packages the adversarial port-numbered graph G, the known
// optimal edge dominating set, the covering multigraph M, and the covering
// map f — everything the tightness experiments need.  Construction
// self-checks (regularity, optimality structure, covering-map validity) run
// eagerly, so a successfully built instance is a machine-checked replica of
// the paper's figures 4–7.
#pragma once

#include <vector>

#include "graph/edge_set.hpp"
#include "port/covering.hpp"
#include "port/ported_graph.hpp"
#include "util/fraction.hpp"

namespace eds::lb {

/// One adversarial instance: the graph, its optimum, and its covering space.
struct LowerBoundInstance {
  port::PortedGraph ported;                 ///< G with adversarial ports
  graph::EdgeSet optimal;                   ///< a minimum EDS of G
  port::PortGraph covering_base;            ///< the multigraph M
  std::vector<graph::NodeId> covering_map;  ///< f : V_G -> V_M
  Fraction forced_ratio;                    ///< the Table 1 lower bound
};

/// Theorem 1 / Figure 4: the d-regular graph (d even >= 2) on A ∪ B with
/// S a perfect matching on A, T = K_{d,d-1}, and ports induced by a
/// 2-factorisation.  Any deterministic algorithm outputs a full 2-factor
/// (|V| = 2d−1 edges) while |S| = d/2, forcing ratio >= 4 − 2/d.
[[nodiscard]] LowerBoundInstance even_lower_bound(port::Port d);

/// Theorem 2 / Figures 5–7: the d-regular graph (d odd >= 3) made of d
/// components H(l) plus hubs P and Q; |D*| = (k+1)d with k = (d−1)/2, and
/// any algorithm is forced to pick (2d−1)d edges: ratio >= 4 − 6/(d+1).
[[nodiscard]] LowerBoundInstance odd_lower_bound(port::Port d);

/// The Table 1 lower-bound value for d-regular graphs (either parity).
[[nodiscard]] Fraction forced_ratio_regular(port::Port d);

}  // namespace eds::lb
