#include "lb/gadgets.hpp"

#include "factor/two_factor.hpp"
#include "util/error.hpp"

namespace eds::lb {

port::PortedGraph subdivided_factor_gadget(const graph::SimpleGraph& base) {
  const std::size_t n = base.num_nodes();
  const std::size_t deg = n == 0 ? 0 : base.degree(0);
  if (deg < 4 || deg % 2 != 0 || !base.is_regular(deg)) {
    throw InvalidArgument(
        "subdivided_factor_gadget: base must be 2k-regular with k >= 2");
  }
  const auto tf = factor::two_factorise(base);

  // New graph: original nodes 0..n-1; subdivision node n + u for the
  // factor-1 edge leaving u (one per node, since a factor is a permutation).
  graph::GraphBuilder builder(2 * n);
  const auto& factor1 = tf.factors.front();

  // Subdivided factor-1 edges.
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto& de = factor1.out[u];
    builder.add_edge(u, static_cast<graph::NodeId>(n + u));          // u - s_u
    builder.add_edge(static_cast<graph::NodeId>(n + u), de.to);      // s_u - v
  }
  // Remaining factors unchanged.
  for (std::size_t i = 1; i < tf.k(); ++i) {
    for (graph::NodeId u = 0; u < n; ++u) {
      const auto& de = tf.factors[i].out[u];
      builder.add_edge(de.from, de.to);
    }
  }
  auto g = builder.build();

  // Port orders.  Original node w: port 2i-1 = outgoing factor-i edge,
  // port 2i = incoming factor-i edge (factor 1 routed through subdivision
  // nodes).  Subdivision node s_u (on u -> v): port 1 -> v, port 2 -> u.
  std::vector<std::vector<graph::EdgeId>> order(2 * n);
  for (graph::NodeId w = 0; w < n; ++w) {
    order[w].resize(deg);
    // Factor 1: outgoing through s_w, incoming from s_x where x -> w.
    order[w][0] = *g.find_edge(w, static_cast<graph::NodeId>(n + w));
    graph::NodeId in_subdiv = 2 * static_cast<graph::NodeId>(n);
    for (graph::NodeId x = 0; x < n; ++x) {
      if (factor1.out[x].to == w) {
        in_subdiv = static_cast<graph::NodeId>(n + x);
        break;
      }
    }
    EDS_ENSURE(in_subdiv < 2 * n, "gadget: missing incoming factor-1 edge");
    order[w][1] = *g.find_edge(w, in_subdiv);
    for (std::size_t i = 1; i < tf.k(); ++i) {
      const auto& out_edge = tf.factors[i].out[w];
      order[w][2 * i] = *g.find_edge(w, out_edge.to);
      graph::NodeId in_from = 2 * static_cast<graph::NodeId>(n);
      for (graph::NodeId x = 0; x < n; ++x) {
        if (tf.factors[i].out[x].to == w) {
          in_from = x;
          break;
        }
      }
      EDS_ENSURE(in_from < 2 * n, "gadget: missing incoming factor edge");
      order[w][2 * i + 1] = *g.find_edge(w, in_from);
    }
  }
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto s = static_cast<graph::NodeId>(n + u);
    order[s].resize(2);
    order[s][0] = *g.find_edge(s, factor1.out[u].to);  // port 1 -> v
    order[s][1] = *g.find_edge(s, u);                  // port 2 -> u
  }
  return port::PortedGraph(std::move(g), order);
}

}  // namespace eds::lb
