#include "lb/lower_bounds.hpp"

#include <utility>

#include "analysis/verify.hpp"
#include "factor/two_factor.hpp"
#include "util/error.hpp"

namespace eds::lb {

namespace {

using graph::EdgeId;
using graph::GraphBuilder;
using graph::NodeId;
using graph::SimpleGraph;
using port::Port;
using port::PortGraphBuilder;
using port::PortRef;

NodeId nid(std::size_t v) { return static_cast<NodeId>(v); }

}  // namespace

Fraction forced_ratio_regular(Port d) {
  if (d == 0) throw InvalidArgument("forced_ratio_regular: d must be positive");
  const auto dd = static_cast<std::int64_t>(d);
  if (d % 2 == 0) return Fraction(4) - Fraction(2, dd);
  return Fraction(4) - Fraction(6, dd + 1);
}

LowerBoundInstance even_lower_bound(Port d) {
  if (d < 2 || d % 2 != 0) {
    throw InvalidArgument("even_lower_bound: d must be even and >= 2");
  }
  const std::size_t k = d / 2;

  // Nodes: A = {0..d-1}, B = {d..2d-2}.
  const std::size_t n = 2 * static_cast<std::size_t>(d) - 1;
  GraphBuilder builder(n);

  // S: a perfect matching on A — {a1,a2}, {a3,a4}, ...
  std::vector<EdgeId> s_edges;
  for (std::size_t i = 0; i + 1 < d; i += 2) {
    s_edges.push_back(static_cast<EdgeId>(builder.num_edges()));
    builder.add_edge(nid(i), nid(i + 1));
  }
  // T: the complete bipartite graph A x B.
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d - 1; ++j) {
      builder.add_edge(nid(i), nid(d + j));
    }
  }
  SimpleGraph g = builder.build();
  EDS_ENSURE(g.is_regular(d), "even_lower_bound: graph is not d-regular");

  graph::EdgeSet optimal(g.num_edges(), s_edges);
  EDS_ENSURE(analysis::is_edge_dominating_set(g, optimal),
             "even_lower_bound: S is not an EDS");
  EDS_ENSURE(optimal.size() == k, "even_lower_bound: |S| != d/2");
  // Optimality: |E| = (2d-1)|S| and one edge dominates at most 2d-1 edges.
  EDS_ENSURE(g.num_edges() == (2 * static_cast<std::size_t>(d) - 1) * k,
             "even_lower_bound: edge count mismatch");

  // Adversarial ports: factor i of a 2-factorisation pairs ports 2i-1 / 2i.
  auto ported = factor::with_factor_ports(std::move(g));

  // Covering multigraph M: one node of degree d, p(x, 2i-1) <-> (x, 2i).
  PortGraphBuilder mb({d});
  for (Port i = 1; i <= static_cast<Port>(k); ++i) {
    mb.connect(PortRef{0, static_cast<Port>(2 * i - 1)},
               PortRef{0, static_cast<Port>(2 * i)});
  }
  auto base = mb.build();

  std::vector<NodeId> f(n, 0);
  const auto check = port::check_covering_map(ported.ports(), base, f);
  EDS_ENSURE(check.ok, "even_lower_bound: covering map invalid: " + check.reason);

  return LowerBoundInstance{std::move(ported), std::move(optimal),
                            std::move(base), std::move(f),
                            forced_ratio_regular(d)};
}

LowerBoundInstance odd_lower_bound(Port d) {
  if (d < 3 || d % 2 != 1) {
    throw InvalidArgument("odd_lower_bound: d must be odd and >= 3");
  }
  const std::size_t k = (static_cast<std::size_t>(d) - 1) / 2;
  const std::size_t comp_size = 4 * k + 1;  // |A(l)| + |B(l)| + |C(l)|
  const std::size_t dd = d;

  // Global node layout:
  //   component l (0-based l = 0..d-1) occupies [l*comp_size, (l+1)*comp_size)
  //     a_{l,i} (1-based i in [1, 2k])  -> l*comp_size + (i-1)
  //     b_{l,i}                          -> l*comp_size + 2k + (i-1)
  //     c_l                              -> l*comp_size + 4k
  //   p_i (1-based i in [1, d])          -> d*comp_size + (i-1)
  //   q_i (1-based i in [1, 2k])         -> d*comp_size + d + (i-1)
  const std::size_t n = dd * comp_size + dd + 2 * k;
  auto a_node = [&](std::size_t l, std::size_t i) {
    return nid(l * comp_size + (i - 1));
  };
  auto b_node = [&](std::size_t l, std::size_t i) {
    return nid(l * comp_size + 2 * k + (i - 1));
  };
  auto c_node = [&](std::size_t l) { return nid(l * comp_size + 4 * k); };
  auto p_node = [&](std::size_t i) { return nid(dd * comp_size + (i - 1)); };
  auto q_node = [&](std::size_t i) {
    return nid(dd * comp_size + dd + (i - 1));
  };

  GraphBuilder builder(n);
  std::vector<EdgeId> optimal_edges;

  // Per-component local graphs (for the 2-factorisations) mirror the global
  // edges; local index = global index - l*comp_size.
  std::vector<GraphBuilder> local;
  local.reserve(dd);
  for (std::size_t l = 0; l < dd; ++l) local.emplace_back(comp_size);

  auto add_component_edge = [&](std::size_t l, NodeId gu, NodeId gv) {
    builder.add_edge(gu, gv);
    local[l].add_edge(nid(gu - l * comp_size), nid(gv - l * comp_size));
  };

  for (std::size_t l = 0; l < dd; ++l) {
    // R(l): the star around c_l.
    for (std::size_t i = 1; i <= 2 * k; ++i) {
      add_component_edge(l, c_node(l), b_node(l, i));
    }
    // S(l): the matching on A(l) — optimal edges.
    for (std::size_t i = 1; i + 1 <= 2 * k; i += 2) {
      optimal_edges.push_back(static_cast<EdgeId>(builder.num_edges()));
      add_component_edge(l, a_node(l, i), a_node(l, i + 1));
    }
    // T(l): the crown graph between A(l) and B(l) (i != j).
    for (std::size_t i = 1; i <= 2 * k; ++i) {
      for (std::size_t j = 1; j <= 2 * k; ++j) {
        if (i != j) {
          if (a_node(l, i) < b_node(l, j)) {
            add_component_edge(l, a_node(l, i), b_node(l, j));
          }
        }
      }
    }
  }

  // External edges.  Y = {p_l, c_l} edges are part of the optimum.
  for (std::size_t l = 1; l <= dd; ++l) {
    optimal_edges.push_back(static_cast<EdgeId>(builder.num_edges()));
    builder.add_edge(p_node(l), c_node(l - 1));
  }
  for (std::size_t l = 1; l <= dd; ++l) {
    for (std::size_t i = 1; i <= 2 * k; ++i) {
      if (i != l) builder.add_edge(p_node(i), b_node(l - 1, i));
    }
  }
  for (std::size_t l = 1; l <= 2 * k; ++l) {
    builder.add_edge(p_node(dd), b_node(l - 1, l));
  }
  for (std::size_t l = 1; l <= dd; ++l) {
    for (std::size_t i = 1; i <= 2 * k; ++i) {
      builder.add_edge(q_node(i), a_node(l - 1, i));
    }
  }

  SimpleGraph g = builder.build();
  EDS_ENSURE(g.is_regular(d), "odd_lower_bound: graph is not d-regular");

  graph::EdgeSet optimal(g.num_edges(), optimal_edges);
  EDS_ENSURE(optimal.size() == (k + 1) * dd,
             "odd_lower_bound: |D*| != (k+1)d");
  EDS_ENSURE(analysis::is_edge_dominating_set(g, optimal),
             "odd_lower_bound: D* is not an EDS");

  // Port numbering.  Components use factor ports 1..2k internally and port
  // d on the external edge; hubs use port l towards component l.
  std::vector<std::vector<EdgeId>> order(n);

  for (std::size_t l = 0; l < dd; ++l) {
    auto local_graph = local[l].build();
    EDS_ENSURE(local_graph.is_regular(2 * k),
               "odd_lower_bound: H(l) is not 2k-regular");
    const auto factorisation = factor::two_factorise(local_graph);
    const auto local_ported =
        factor::with_factor_ports(std::move(local_graph), factorisation);
    // Translate local port order into global edge ids.
    for (std::size_t lv = 0; lv < comp_size; ++lv) {
      const auto gv = nid(l * comp_size + lv);
      auto& slots = order[gv];
      slots.resize(dd);
      for (Port i = 1; i <= static_cast<Port>(2 * k); ++i) {
        const auto le = local_ported.edge_at(nid(lv), i);
        const auto& lge = local_ported.graph().edge(le);
        const auto ge = g.find_edge(nid(l * comp_size + lge.u),
                                    nid(l * comp_size + lge.v));
        EDS_ENSURE(ge.has_value(), "odd_lower_bound: lost component edge");
        slots[i - 1] = *ge;
      }
      // Port d: the unique external edge (towards P or Q).
      const auto no_edge = static_cast<EdgeId>(g.num_edges());
      EdgeId external = no_edge;
      for (const auto& inc : g.incidences(gv)) {
        if (inc.neighbour >= dd * comp_size) {
          EDS_ENSURE(external == no_edge,
                     "odd_lower_bound: multiple external edges at a node");
          external = inc.edge;
        }
      }
      EDS_ENSURE(external != no_edge,
                 "odd_lower_bound: missing external edge at a node");
      slots[dd - 1] = external;
    }
  }

  // Hubs: port l of u in P ∪ Q carries its edge into component l.
  for (NodeId v = nid(dd * comp_size); v < n; ++v) {
    auto& slots = order[v];
    slots.resize(dd);
    std::vector<bool> filled(dd, false);
    for (const auto& inc : g.incidences(v)) {
      const std::size_t l = inc.neighbour / comp_size;  // component index
      EDS_ENSURE(l < dd, "odd_lower_bound: hub joined to a non-component");
      EDS_ENSURE(!filled[l], "odd_lower_bound: hub port collision");
      slots[l] = inc.edge;
      filled[l] = true;
    }
  }

  port::PortedGraph ported(std::move(g), order);

  // Covering multigraph M: nodes x_1..x_d (indices 0..d-1) and y (index d).
  PortGraphBuilder mb(std::vector<Port>(dd + 1, d));
  for (std::size_t l = 0; l < dd; ++l) {
    for (std::size_t i = 1; i <= k; ++i) {
      mb.connect(PortRef{nid(l), static_cast<Port>(2 * i - 1)},
                 PortRef{nid(l), static_cast<Port>(2 * i)});
    }
    mb.connect(PortRef{nid(dd), static_cast<Port>(l + 1)},
               PortRef{nid(l), d});
  }
  auto base = mb.build();

  std::vector<NodeId> f(n);
  for (std::size_t v = 0; v < n; ++v) {
    f[v] = v < dd * comp_size ? nid(v / comp_size) : nid(dd);
  }
  const auto check = port::check_covering_map(ported.ports(), base, f);
  EDS_ENSURE(check.ok, "odd_lower_bound: covering map invalid: " + check.reason);

  return LowerBoundInstance{std::move(ported), std::move(optimal),
                            std::move(base), std::move(f),
                            forced_ratio_regular(d)};
}

}  // namespace eds::lb
