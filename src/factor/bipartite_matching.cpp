#include "factor/bipartite_matching.hpp"

#include <limits>
#include <queue>

namespace eds::factor {

namespace {

constexpr std::int64_t kFree = -1;
constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

// Internal Hopcroft–Karp state over an adjacency-by-edge-index view.
class Matcher {
 public:
  explicit Matcher(const BipartiteGraph& g) : g_(g), adj_(g.left) {
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
      const auto [l, r] = g.edges[e];
      if (l >= g.left || r >= g.right) {
        throw InvalidArgument("bipartite matching: endpoint out of range");
      }
      adj_[l].push_back(e);
    }
    match_left_.assign(g.left, kFree);
    match_right_.assign(g.right, kFree);
  }

  std::vector<std::int64_t> run() {
    while (bfs()) {
      for (std::uint32_t l = 0; l < g_.left; ++l) {
        if (match_left_[l] == kFree) {
          (void)dfs(l);
        }
      }
    }
    return match_left_;
  }

 private:
  // Layered BFS from free left nodes; returns true when an augmenting path
  // exists.
  bool bfs() {
    std::queue<std::uint32_t> q;
    dist_.assign(g_.left, kInf);
    for (std::uint32_t l = 0; l < g_.left; ++l) {
      if (match_left_[l] == kFree) {
        dist_[l] = 0;
        q.push(l);
      }
    }
    bool reachable_free_right = false;
    while (!q.empty()) {
      const auto l = q.front();
      q.pop();
      for (const auto e : adj_[l]) {
        const auto r = g_.edges[e].second;
        const auto back = match_right_[r];
        if (back == kFree) {
          reachable_free_right = true;
        } else {
          const auto l2 = g_.edges[static_cast<std::size_t>(back)].first;
          if (dist_[l2] == kInf) {
            dist_[l2] = dist_[l] + 1;
            q.push(l2);
          }
        }
      }
    }
    return reachable_free_right;
  }

  bool dfs(std::uint32_t l) {
    for (const auto e : adj_[l]) {
      const auto r = g_.edges[e].second;
      const auto back = match_right_[r];
      if (back == kFree) {
        match_left_[l] = static_cast<std::int64_t>(e);
        match_right_[r] = static_cast<std::int64_t>(e);
        return true;
      }
      const auto l2 = g_.edges[static_cast<std::size_t>(back)].first;
      if (dist_[l2] == dist_[l] + 1 && dfs(l2)) {
        match_left_[l] = static_cast<std::int64_t>(e);
        match_right_[r] = static_cast<std::int64_t>(e);
        return true;
      }
    }
    dist_[l] = kInf;
    return false;
  }

  const BipartiteGraph& g_;
  std::vector<std::vector<std::size_t>> adj_;
  std::vector<std::int64_t> match_left_;
  std::vector<std::int64_t> match_right_;
  std::vector<std::uint32_t> dist_;
};

}  // namespace

std::vector<std::int64_t> hopcroft_karp(const BipartiteGraph& g) {
  return Matcher(g).run();
}

std::size_t max_matching_size(const BipartiteGraph& g) {
  std::size_t size = 0;
  for (const auto m : hopcroft_karp(g)) {
    if (m != kFree) ++size;
  }
  return size;
}

std::vector<std::size_t> perfect_matching(const BipartiteGraph& g) {
  if (g.left != g.right) {
    throw InvalidArgument("perfect_matching: sides must have equal size");
  }
  const auto match = hopcroft_karp(g);
  std::vector<std::size_t> out;
  out.reserve(g.left);
  for (std::size_t l = 0; l < g.left; ++l) {
    if (match[l] == kFree) {
      throw InvalidStructure("perfect_matching: graph has no perfect matching");
    }
    out.push_back(static_cast<std::size_t>(match[l]));
  }
  return out;
}

std::vector<std::vector<std::size_t>> decompose_regular_bipartite(
    const BipartiteGraph& g) {
  if (g.left != g.right) {
    throw InvalidArgument("decompose_regular_bipartite: sides must match");
  }
  std::vector<std::size_t> deg_left(g.left, 0);
  std::vector<std::size_t> deg_right(g.right, 0);
  for (const auto& [l, r] : g.edges) {
    ++deg_left[l];
    ++deg_right[r];
  }
  std::size_t k = g.left == 0 ? 0 : deg_left[0];
  for (std::size_t v = 0; v < g.left; ++v) {
    if (deg_left[v] != k || deg_right[v] != k) {
      throw InvalidArgument("decompose_regular_bipartite: graph not regular");
    }
  }

  // Repeatedly peel a perfect matching (exists by König/Hall for every
  // regular bipartite multigraph).  Edge indices refer to g.edges.
  std::vector<std::vector<std::size_t>> colours;
  std::vector<bool> removed(g.edges.size(), false);
  for (std::size_t round = 0; round < k; ++round) {
    BipartiteGraph rest{g.left, g.right, {}};
    std::vector<std::size_t> index_map;  // rest edge -> original edge
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
      if (!removed[e]) {
        rest.edges.push_back(g.edges[e]);
        index_map.push_back(e);
      }
    }
    const auto matched = perfect_matching(rest);
    std::vector<std::size_t> colour;
    colour.reserve(g.left);
    for (const auto rest_edge : matched) {
      const auto original = index_map[rest_edge];
      removed[original] = true;
      colour.push_back(original);
    }
    colours.push_back(std::move(colour));
  }
  return colours;
}

}  // namespace eds::factor
