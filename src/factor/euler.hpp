// Euler orientations via Hierholzer circuits.
//
// Petersen's 2-factorisation theorem (1891) rests on this step: walking an
// Euler circuit of each component of an even-degree graph and orienting
// edges along the walk yields an orientation where every node has
// in-degree = out-degree = degree/2.
#pragma once

#include <vector>

#include "graph/simple_graph.hpp"

namespace eds::factor {

using graph::EdgeId;
using graph::NodeId;
using graph::SimpleGraph;

/// An edge together with a chosen direction.
struct DirectedEdge {
  NodeId from = 0;
  NodeId to = 0;
  EdgeId edge = 0;

  [[nodiscard]] bool operator==(const DirectedEdge&) const = default;
};

/// Orients every edge of `g` along Euler circuits of its components so that
/// every node ends with in-degree = out-degree.  Requires every degree even;
/// throws InvalidArgument otherwise.  Output is indexed by edge id.
[[nodiscard]] std::vector<DirectedEdge> euler_orientation(const SimpleGraph& g);

/// The Euler circuit of the component containing `start`, as a sequence of
/// directed edges (each consecutive pair shares a node; the walk returns to
/// `start`; every component edge appears exactly once).  Requires every
/// degree in the component even and `start` non-isolated.
[[nodiscard]] std::vector<DirectedEdge> euler_circuit(const SimpleGraph& g,
                                                      NodeId start);

}  // namespace eds::factor
