#include "factor/two_factor.hpp"

#include <utility>

#include "factor/bipartite_matching.hpp"

namespace eds::factor {

graph::EdgeSet OrientedFactor::edge_set(std::size_t num_edges) const {
  graph::EdgeSet s(num_edges);
  for (const auto& de : out) s.insert(de.edge);
  return s;
}

TwoFactorisation two_factorise(const graph::SimpleGraph& g) {
  const std::size_t n = g.num_nodes();
  const std::size_t deg = n == 0 ? 0 : g.degree(0);
  if (deg % 2 != 0 || !g.is_regular(deg)) {
    throw InvalidArgument("two_factorise: graph must be 2k-regular");
  }
  const std::size_t k = deg / 2;
  TwoFactorisation out;
  if (k == 0) return out;

  // Step 1 (Euler): orient so that in-degree = out-degree = k everywhere.
  const auto oriented = euler_orientation(g);

  // Step 2 (König): the bipartite graph on out-copies vs in-copies is
  // k-regular; split it into k perfect matchings.  Each matching picks one
  // outgoing and one incoming directed edge per node: a union of directed
  // cycles spanning V, i.e. an oriented 2-factor.
  BipartiteGraph b{n, n, {}};
  b.edges.reserve(g.num_edges());
  for (const auto& de : oriented) {
    b.edges.push_back({de.from, de.to});
  }
  const auto colours = decompose_regular_bipartite(b);
  EDS_ENSURE(colours.size() == k, "two_factorise: wrong number of factors");

  out.factors.reserve(k);
  for (const auto& colour : colours) {
    OrientedFactor factor;
    factor.out.assign(n, DirectedEdge{});
    for (const auto bip_edge : colour) {
      const auto& de = oriented[bip_edge];  // b.edges parallels `oriented`
      factor.out[de.from] = de;
    }
    out.factors.push_back(std::move(factor));
  }
  return out;
}

port::PortedGraph with_factor_ports(graph::SimpleGraph g) {
  const auto factorisation = two_factorise(g);
  return with_factor_ports(std::move(g), factorisation);
}

port::PortedGraph with_factor_ports(graph::SimpleGraph g,
                                    const TwoFactorisation& factorisation) {
  const std::size_t n = g.num_nodes();
  const std::size_t k = factorisation.k();
  std::vector<std::vector<graph::EdgeId>> order(
      n, std::vector<graph::EdgeId>(2 * k));
  for (std::size_t i = 0; i < k; ++i) {
    const auto& factor = factorisation.factors[i];
    EDS_ENSURE(factor.out.size() == n,
               "with_factor_ports: factor does not span the node set");
    for (graph::NodeId v = 0; v < n; ++v) {
      const auto& de = factor.out[v];
      EDS_ENSURE(de.from == v, "with_factor_ports: misdirected factor edge");
      order[v][2 * i] = de.edge;      // port 2i+1 (1-based 2i-1): outgoing
      order[de.to][2 * i + 1] = de.edge;  // port 2i+2 (1-based 2i): incoming
    }
  }
  return port::PortedGraph(std::move(g), order);
}

}  // namespace eds::factor
