#include "factor/euler.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace eds::factor {

namespace {

// Hierholzer's algorithm with an explicit stack; O(m) using per-node cursors
// into the adjacency lists and a global used-edge mask.
std::vector<DirectedEdge> hierholzer(const SimpleGraph& g, NodeId start,
                                     std::vector<bool>& used,
                                     std::vector<std::size_t>& cursor) {
  std::vector<NodeId> stack{start};
  std::vector<NodeId> walk;  // node sequence of the circuit, reversed at end
  while (!stack.empty()) {
    const NodeId v = stack.back();
    const auto inc = g.incidences(v);
    while (cursor[v] < inc.size() && used[inc[cursor[v]].edge]) ++cursor[v];
    if (cursor[v] == inc.size()) {
      walk.push_back(v);
      stack.pop_back();
    } else {
      const auto& step = inc[cursor[v]];
      used[step.edge] = true;
      stack.push_back(step.neighbour);
    }
  }
  std::reverse(walk.begin(), walk.end());

  std::vector<DirectedEdge> circuit;
  circuit.reserve(walk.size() > 0 ? walk.size() - 1 : 0);
  for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
    const auto e = g.find_edge(walk[i], walk[i + 1]);
    EDS_ENSURE(e.has_value(), "Euler walk uses a non-edge");
    circuit.push_back({walk[i], walk[i + 1], *e});
  }
  return circuit;
}

}  // namespace

std::vector<DirectedEdge> euler_circuit(const SimpleGraph& g, NodeId start) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) % 2 != 0) {
      throw InvalidArgument("euler_circuit: all degrees must be even");
    }
  }
  if (start >= g.num_nodes() || g.degree(start) == 0) {
    throw InvalidArgument("euler_circuit: start must be a non-isolated node");
  }
  std::vector<bool> used(g.num_edges(), false);
  std::vector<std::size_t> cursor(g.num_nodes(), 0);
  return hierholzer(g, start, used, cursor);
}

std::vector<DirectedEdge> euler_orientation(const SimpleGraph& g) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) % 2 != 0) {
      throw InvalidArgument("euler_orientation: all degrees must be even");
    }
  }
  std::vector<DirectedEdge> oriented(g.num_edges());
  std::vector<bool> used(g.num_edges(), false);
  std::vector<std::size_t> cursor(g.num_nodes(), 0);
  std::size_t assigned = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (g.degree(s) == 0 || cursor[s] > 0) continue;
    // cursor[s] > 0 means s was already swept by an earlier circuit; a fresh
    // component is detected by an untouched non-isolated node.
    bool untouched = true;
    for (const auto& inc : g.incidences(s)) {
      if (used[inc.edge]) {
        untouched = false;
        break;
      }
    }
    if (!untouched) continue;
    for (const auto& step : hierholzer(g, s, used, cursor)) {
      oriented[step.edge] = step;
      ++assigned;
    }
  }
  EDS_ENSURE(assigned == g.num_edges(),
             "euler_orientation: some edges were not oriented");
  return oriented;
}

}  // namespace eds::factor
