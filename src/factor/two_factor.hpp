// Petersen's theorem, constructively: every 2k-regular graph splits into k
// edge-disjoint 2-factors.  Each factor comes with an orientation into
// directed cycles, which is exactly what the paper's lower-bound
// constructions need to define their adversarial port numberings
// ("for each (u, v) in the oriented factor i, set p(u, 2i-1) = (v, 2i)").
#pragma once

#include <vector>

#include "factor/euler.hpp"
#include "graph/edge_set.hpp"
#include "port/ported_graph.hpp"

namespace eds::factor {

/// One 2-factor: a spanning set of directed cycles, one directed edge per
/// (node, factor) leaving the node and one entering it.
struct OrientedFactor {
  /// out[v] = the directed edge leaving v in this factor.
  std::vector<DirectedEdge> out;

  /// The factor's edges as a set over the host graph's edge ids.
  [[nodiscard]] graph::EdgeSet edge_set(std::size_t num_edges) const;
};

/// A complete 2-factorisation of a 2k-regular graph.
struct TwoFactorisation {
  std::vector<OrientedFactor> factors;  // size k

  [[nodiscard]] std::size_t k() const noexcept { return factors.size(); }
};

/// Computes a 2-factorisation of a 2k-regular graph (Petersen 1891):
/// Euler-orient every component, then split the resulting k-regular
/// bipartite out/in graph into k perfect matchings.  Throws InvalidArgument
/// unless every node has the same even degree.
[[nodiscard]] TwoFactorisation two_factorise(const graph::SimpleGraph& g);

/// Port numbering induced by a 2-factorisation: for each directed edge
/// (u, v) of factor i (1-based), port 2i-1 of u and port 2i of v carry the
/// edge.  This is the numbering used in the proofs of Theorems 1 and 2.
[[nodiscard]] port::PortedGraph with_factor_ports(graph::SimpleGraph g);

/// Same, but reusing an existing factorisation of `g`.
[[nodiscard]] port::PortedGraph with_factor_ports(
    graph::SimpleGraph g, const TwoFactorisation& factorisation);

}  // namespace eds::factor
