// Maximum bipartite matching (Hopcroft–Karp) and the decomposition of
// k-regular bipartite graphs into k perfect matchings (König's theorem,
// constructive form).
//
// These are centralised substrate algorithms: the 2-factorisation of
// Petersen's theorem reduces to them, and the lower-bound constructions of
// the paper reduce to the 2-factorisation.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace eds::factor {

/// A bipartite graph given by left/right part sizes and explicit edges
/// (indices into each side).  Parallel edges are allowed — the regular
/// decomposition of multigraph Euler quotients needs them.
struct BipartiteGraph {
  std::size_t left = 0;
  std::size_t right = 0;
  /// edges[e] = {left endpoint, right endpoint}
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
};

/// Maximum matching; result[l] is the matched *edge index* for left node l,
/// or -1 when l is unmatched.  O(E sqrt(V)).
[[nodiscard]] std::vector<std::int64_t> hopcroft_karp(const BipartiteGraph& g);

/// Size of a maximum matching.
[[nodiscard]] std::size_t max_matching_size(const BipartiteGraph& g);

/// A perfect matching of a bipartite graph with left == right; throws
/// InvalidStructure when none exists.  Returns one edge index per left node.
[[nodiscard]] std::vector<std::size_t> perfect_matching(
    const BipartiteGraph& g);

/// Splits a k-regular bipartite graph into k perfect matchings
/// (edge-colouring); each result entry is a list of edge indices, one per
/// left node.  Throws InvalidArgument when the graph is not regular.
[[nodiscard]] std::vector<std::vector<std::size_t>>
decompose_regular_bipartite(const BipartiteGraph& g);

}  // namespace eds::factor
