#include "exact/exact_eds.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "analysis/verify.hpp"
#include "baseline/baseline.hpp"
#include "util/error.hpp"

namespace eds::exact {

namespace {

class BranchAndBound {
 public:
  BranchAndBound(const SimpleGraph& g, const ExactOptions& options)
      : g_(g),
        options_(options),
        matched_(g.num_nodes(), false),
        chosen_(),
        denominator_(2 * std::max<std::size_t>(g.max_degree(), 1) - 1) {
    // Greedy seed gives both the initial upper bound and a feasible witness.
    best_set_ = baseline::greedy_maximal_matching(g_);
    best_ = best_set_.size();
  }

  EdgeSet solve() {
    chosen_.reserve(best_);
    recurse();
    return best_set_;
  }

 private:
  /// First edge (lowest id) with both endpoints unmatched, or m when none.
  [[nodiscard]] graph::EdgeId first_free_edge() const {
    for (graph::EdgeId e = 0; e < g_.num_edges(); ++e) {
      const auto& edge = g_.edge(e);
      if (!matched_[edge.u] && !matched_[edge.v]) return e;
    }
    return static_cast<graph::EdgeId>(g_.num_edges());
  }

  /// Number of edges not dominated by the current partial matching.
  [[nodiscard]] std::size_t undominated_count() const {
    std::size_t count = 0;
    for (const auto& edge : g_.edges()) {
      if (!matched_[edge.u] && !matched_[edge.v]) ++count;
    }
    return count;
  }

  void recurse() {
    if (options_.max_search_nodes != 0 &&
        ++search_nodes_ > options_.max_search_nodes) {
      throw ExecutionError("minimum_maximal_matching: search-node budget exceeded");
    }

    const auto e = first_free_edge();
    if (e == g_.num_edges()) {
      // Every edge has a matched endpoint: the current matching is maximal.
      if (chosen_.size() < best_) {
        best_ = chosen_.size();
        best_set_ = EdgeSet(g_.num_edges(), chosen_);
      }
      return;
    }

    // Bound: each further matching edge dominates at most 2∆ - 1 edges.
    const std::size_t lower =
        chosen_.size() + (undominated_count() + denominator_ - 1) / denominator_;
    if (lower >= best_) return;

    // Some maximal matching extending `chosen_` must dominate edge e, i.e.
    // contain an edge incident to e's endpoints whose endpoints are free.
    const auto& edge = g_.edge(e);
    std::vector<graph::EdgeId> branches;
    branches.push_back(e);
    for (const auto endpoint : {edge.u, edge.v}) {
      for (const auto& inc : g_.incidences(endpoint)) {
        if (inc.edge == e) continue;
        const auto& f = g_.edge(inc.edge);
        if (!matched_[f.u] && !matched_[f.v]) branches.push_back(inc.edge);
      }
    }

    for (const auto f : branches) {
      const auto& fe = g_.edge(f);
      matched_[fe.u] = matched_[fe.v] = true;
      chosen_.push_back(f);
      recurse();
      chosen_.pop_back();
      matched_[fe.u] = matched_[fe.v] = false;
    }
  }

  const SimpleGraph& g_;
  const ExactOptions& options_;
  std::vector<bool> matched_;
  std::vector<graph::EdgeId> chosen_;
  std::size_t denominator_;
  std::size_t best_ = 0;
  EdgeSet best_set_;
  std::size_t search_nodes_ = 0;
};

}  // namespace

EdgeSet minimum_maximal_matching(const SimpleGraph& g,
                                 const ExactOptions& options) {
  if (g.num_edges() == 0) return EdgeSet(0);
  auto result = BranchAndBound(g, options).solve();
  EDS_ENSURE(analysis::is_maximal_matching(g, result),
             "exact solver produced a non-maximal matching");
  return result;
}

std::size_t minimum_eds_size(const SimpleGraph& g,
                             const ExactOptions& options) {
  return minimum_maximal_matching(g, options).size();
}

EdgeSet brute_force_minimum_eds(const SimpleGraph& g) {
  const std::size_t m = g.num_edges();
  if (m > 24) {
    throw InvalidArgument("brute_force_minimum_eds: too many edges (max 24)");
  }
  if (m == 0) return EdgeSet(0);

  std::uint32_t best_mask = 0;
  int best_count = static_cast<int>(m) + 1;
  const std::uint32_t limit = static_cast<std::uint32_t>(1u << m);
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    const int count = std::popcount(mask);
    if (count >= best_count) continue;
    EdgeSet candidate(m);
    for (std::size_t e = 0; e < m; ++e) {
      if (mask & (1u << e)) candidate.insert(static_cast<graph::EdgeId>(e));
    }
    if (analysis::is_edge_dominating_set(g, candidate)) {
      best_mask = mask;
      best_count = count;
    }
  }
  EdgeSet out(m);
  for (std::size_t e = 0; e < m; ++e) {
    if (best_mask & (1u << e)) out.insert(static_cast<graph::EdgeId>(e));
  }
  return out;
}

}  // namespace eds::exact
