// Exact minimum edge dominating sets.
//
// Section 1.1 of the paper: a minimum maximal matching is a minimum edge
// dominating set (Yannakakis–Gavril / Allan–Laskar), so the exact solver
// searches over maximal matchings with branch-and-bound.  The search
// branches on the first edge whose endpoints are both unmatched: in any
// maximal matching extending the current one, *some* edge incident to that
// edge's endpoints (possibly itself) must be picked.  The bound combines the
// greedy seed with ⌈undominated / (2∆ − 1)⌉, the paper's own counting bound.
//
// The solver is exponential in the worst case; it is intended for the
// instance sizes the experiment harness uses for ground truth (up to roughly
// 60–80 edges in practice).
#pragma once

#include <cstddef>

#include "graph/edge_set.hpp"
#include "graph/simple_graph.hpp"

namespace eds::exact {

using graph::EdgeSet;
using graph::SimpleGraph;

/// Options for the branch-and-bound search.
struct ExactOptions {
  /// Abort with ExecutionError after this many search nodes (0 = unlimited).
  std::size_t max_search_nodes = 50'000'000;
};

/// A minimum maximal matching of `g` (equivalently, a minimum EDS).
[[nodiscard]] EdgeSet minimum_maximal_matching(const SimpleGraph& g,
                                               const ExactOptions& options = {});

/// Size of a minimum edge dominating set of `g`.
[[nodiscard]] std::size_t minimum_eds_size(const SimpleGraph& g,
                                           const ExactOptions& options = {});

/// Reference solver: enumerates *all* edge subsets in increasing size order
/// and returns a smallest edge dominating set.  Exponential in m; requires
/// m <= 24.  Used to cross-check the branch-and-bound solver in tests.
[[nodiscard]] EdgeSet brute_force_minimum_eds(const SimpleGraph& g);

}  // namespace eds::exact
