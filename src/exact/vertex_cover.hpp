// Exact minimum vertex cover, plus the vertex-cover corollary of the
// double-cover 2-matching (Polishchuk–Suomela 2009, the paper's phase III
// subroutine): the nodes covered by a 2-matching that dominates all edges
// form a vertex cover of size at most 3 OPT_VC.
#pragma once

#include <vector>

#include "graph/edge_set.hpp"
#include "graph/simple_graph.hpp"

namespace eds::exact {

/// A minimum vertex cover of `g`, found by branch-and-bound (branch on an
/// uncovered edge: one of its endpoints must join the cover).  Intended for
/// ground truth on small instances.
[[nodiscard]] std::vector<graph::NodeId> minimum_vertex_cover(
    const graph::SimpleGraph& g);

/// Size of a minimum vertex cover.
[[nodiscard]] std::size_t minimum_vertex_cover_size(
    const graph::SimpleGraph& g);

/// The nodes covered by `two_matching` — when the 2-matching dominates all
/// edges (as phase III guarantees on its subgraph H), this is a vertex
/// cover of size at most 3 OPT (each 2-matching component is a path or
/// cycle; chargeable against any cover).  Throws InvalidArgument when the
/// input does not dominate every edge.
[[nodiscard]] std::vector<graph::NodeId> vertex_cover_from_two_matching(
    const graph::SimpleGraph& g, const graph::EdgeSet& two_matching);

}  // namespace eds::exact
