#include "exact/vertex_cover.hpp"

#include <algorithm>

#include "analysis/verify.hpp"
#include "util/error.hpp"

namespace eds::exact {

namespace {

using graph::NodeId;
using graph::SimpleGraph;

class VcSearch {
 public:
  explicit VcSearch(const SimpleGraph& g) : g_(g), in_cover_(g.num_nodes()) {
    // Greedy 2-approximation seeds the upper bound: take both endpoints of
    // a maximal matching.
    std::vector<bool> matched(g.num_nodes(), false);
    for (const auto& e : g.edges()) {
      if (!matched[e.u] && !matched[e.v]) {
        matched[e.u] = matched[e.v] = true;
        best_.push_back(e.u);
        best_.push_back(e.v);
      }
    }
  }

  std::vector<NodeId> solve() {
    recurse(0);
    std::sort(best_.begin(), best_.end());
    return best_;
  }

 private:
  [[nodiscard]] bool edge_uncovered(const graph::Edge& e) const {
    return !in_cover_[e.u] && !in_cover_[e.v];
  }

  void recurse(std::size_t chosen) {
    if (chosen >= best_.size()) return;  // bound
    // Find an uncovered edge; if none, the current set is a cover.
    const graph::Edge* branch = nullptr;
    std::size_t uncovered = 0;
    for (const auto& e : g_.edges()) {
      if (edge_uncovered(e)) {
        ++uncovered;
        if (branch == nullptr) branch = &e;
      }
    }
    if (branch == nullptr) {
      best_.clear();
      for (NodeId v = 0; v < g_.num_nodes(); ++v) {
        if (in_cover_[v]) best_.push_back(v);
      }
      return;
    }
    // Bound: each added node covers at most max_degree uncovered edges.
    const auto delta = std::max<std::size_t>(g_.max_degree(), 1);
    if (chosen + (uncovered + delta - 1) / delta >= best_.size()) return;

    for (const auto endpoint : {branch->u, branch->v}) {
      in_cover_[endpoint] = true;
      recurse(chosen + 1);
      in_cover_[endpoint] = false;
    }
  }

  const SimpleGraph& g_;
  std::vector<bool> in_cover_;
  std::vector<NodeId> best_;
};

}  // namespace

std::vector<NodeId> minimum_vertex_cover(const SimpleGraph& g) {
  if (g.num_edges() == 0) return {};
  auto cover = VcSearch(g).solve();
  // Verify before returning: the solver is ground truth for tests.
  std::vector<bool> in(g.num_nodes(), false);
  for (const auto v : cover) in[v] = true;
  for (const auto& e : g.edges()) {
    EDS_ENSURE(in[e.u] || in[e.v], "minimum_vertex_cover: result not a cover");
  }
  return cover;
}

std::size_t minimum_vertex_cover_size(const SimpleGraph& g) {
  return minimum_vertex_cover(g).size();
}

std::vector<NodeId> vertex_cover_from_two_matching(
    const SimpleGraph& g, const graph::EdgeSet& two_matching) {
  if (!analysis::is_k_matching(g, two_matching, 2)) {
    throw InvalidArgument(
        "vertex_cover_from_two_matching: input is not a 2-matching");
  }
  if (!analysis::is_edge_dominating_set(g, two_matching)) {
    throw InvalidArgument(
        "vertex_cover_from_two_matching: input does not dominate all edges");
  }
  std::vector<bool> in(g.num_nodes(), false);
  for (const auto e : two_matching.to_vector()) {
    in[g.edge(e).u] = true;
    in[g.edge(e).v] = true;
  }
  std::vector<NodeId> cover;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in[v]) cover.push_back(v);
  }
  // Domination of every edge by the 2-matching means every edge has a
  // covered endpoint: a vertex cover.
  for (const auto& e : g.edges()) {
    EDS_ENSURE(in[e.u] || in[e.v],
               "vertex_cover_from_two_matching: corollary violated");
  }
  return cover;
}

}  // namespace eds::exact
