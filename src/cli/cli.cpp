#include "cli/cli.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "exact/exact_eds.hpp"
#include "factor/two_factor.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "lb/lower_bounds.hpp"
#include "port/io.hpp"
#include "port/ported_graph.hpp"
#include "port/random_port_graph.hpp"
#include "port/views.hpp"
#include "runtime/batch.hpp"
#include "runtime/fault.hpp"
#include "runtime/outputs.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/sched.hpp"
#include "runtime/shard.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace eds::cli {

namespace {

/// Minimal argument cracker: positional args plus --key [value] options.
class Args {
 public:
  explicit Args(const std::vector<std::string>& raw) {
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i].rfind("--", 0) == 0) {
        const auto key = raw[i].substr(2);
        if (i + 1 < raw.size() && raw[i + 1].rfind("--", 0) != 0) {
          options_[key] = raw[i + 1];
          ++i;
        } else {
          options_[key] = "";
        }
      } else {
        positional_.push_back(raw[i]);
      }
    }
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return options_.count(key) > 0;
  }
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    return std::stoull(it->second);
  }

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
};

void usage(std::ostream& out) {
  out << "edsim — distributed edge dominating sets (Suomela, PODC 2010)\n"
         "\n"
         "usage: edsim <command> [options]\n"
         "\n"
         "commands:\n"
         "  generate <family> [args] [--seed S]\n"
         "      families: cycle N | path N | complete N | regular N D |\n"
         "                grid R C | torus R C | hypercube DIM | petersen |\n"
         "                tree N | bounded N DELTA M\n"
         "      emits an edge list ('N M' header, one edge per line)\n"
         "  solve [--algorithm auto|all-edges|port-one|odd-regular|\n"
         "         bounded-degree|double-cover] [--param P]\n"
         "        [--ports random|canonical|factor] [--seed S]\n"
         "        [--threads N] [--exact] [--dot]\n"
         "      reads an edge list from stdin, runs the algorithm, prints\n"
         "      the solution, round/message counts, and (with --exact) the\n"
         "      approximation ratio; --dot appends Graphviz output;\n"
         "      --threads N runs the engine's parallel policy (same result)\n"
         "  sweep <family> [--min N] [--max N] [--step S] [--d D]\n"
         "        [--algorithm A] [--param P] [--seed S] [--threads N]\n"
         "        [--shards N] [--no-pool] [--repeat R] [--ndjson]\n"
         "        [--retries K] [--retry-backoff-ms B] [--job-timeout-ms T]\n"
         "        [--batch-timeout-ms T] [--breaker-deaths D]\n"
         "        [--fallback-inprocess] [--chaos SPEC]\n"
         "        [--model sync|async] [--delay SPEC] [--loss P] [--dup P]\n"
         "        [--crash K] [--timeout T] [--synchronizer on|off]\n"
         "        [--adversary random|pct|delay|climb] [--budget N]\n"
         "        [--replay-out DIR] | [--replay FILE]\n"
         "      families: path | cycle | regular | grid | torus |\n"
         "                caterpillar | powerlaw | portgraph\n"
         "      fans one instance per size across the batch engine's thread\n"
         "      pool (--threads N workers, 0 = all hardware threads) and\n"
         "      prints one row per instance, in order, independent of N;\n"
         "      sizes run --min..--max doubling, or by +S with --step S;\n"
         "      regular/portgraph use degree --d (portgraph instances are\n"
         "      random port-numbered multigraphs: loops, parallel edges);\n"
         "      grid/torus round n to a square side, caterpillar grows a\n"
         "      2-leg spine, powerlaw samples P(deg) ~ deg^-2.5;\n"
         "      --repeat R runs each instance R times (the shared plan is\n"
         "      compiled once per instance and reused via the plan cache);\n"
         "      --ndjson streams one JSON object per job as results arrive\n"
         "      (in job order, no full-batch barrier) plus a summary line\n"
         "      with the plan-cache counters; every object carries\n"
         "      \"schema\":2;\n"
         "      --shards N fans the jobs across N `edsim worker`\n"
         "      subprocesses instead of threads (0 = one per hardware\n"
         "      thread; output is byte-identical either way; workers are\n"
         "      pooled — they stay warm between batches with per-shard\n"
         "      plan caches, summed in the summary — and --no-pool\n"
         "      restores the fork-per-batch behaviour); sharded sweeps are\n"
         "      resilient: a job orphaned by a worker death is retried up\n"
         "      to --retries K times (default 2, 0 = strict fail-fast) with\n"
         "      exponential backoff from --retry-backoff-ms B (default 10),\n"
         "      --job-timeout-ms T kills a worker stuck on one job and\n"
         "      --batch-timeout-ms T bounds the whole batch (0 = off),\n"
         "      --breaker-deaths D quarantines the pool after D worker\n"
         "      deaths in one batch (default 8, 0 = off) and\n"
         "      --fallback-inprocess degrades a quarantined pool to\n"
         "      in-process execution instead of failing; retry/deadline/\n"
         "      quarantine counters appear in the summary when non-zero;\n"
         "      --chaos crash:N|hang:N:MS|garbage:N|slow:N:MS|exit-mid:N|\n"
         "      poison:I|rand:SEED:PERMILLE injects deterministic worker\n"
         "      misbehaviour (test hook; also via EDS_WORKER_CHAOS);\n"
         "      --model async runs the event-driven asynchronous engine:\n"
         "      --delay fixed:T|uniform:LO:HI|geometric:MEAN[:CAP] is the\n"
         "      per-link delay model, the α-synchronizer (--synchronizer,\n"
         "      default on) makes results bit-identical to --model sync,\n"
         "      and with --synchronizer off (the default once any fault is\n"
         "      requested) --loss P / --dup P / --crash K inject message\n"
         "      loss, duplication and K crashed nodes per instance while\n"
         "      --timeout T bounds how long a round waits (0 = auto);\n"
         "      rows gain \"model\"/\"consistent\" fields, degradation is\n"
         "      reported, not fatal; async runs cross the --shards wire\n"
         "      (schema 2 carries the async options) but --adversary does\n"
         "      not — schedules are an in-process search artifact;\n"
         "      --adversary STRATEGY searches --budget N schedules per\n"
         "      instance for worst-case behaviour (random = seed-random\n"
         "      baseline, pct = random-priority change points, delay =\n"
         "      bounded delay-matrix perturbation, climb = greedy\n"
         "      hill-climb), requires --model async with the synchronizer\n"
         "      off, shrinks each instance's worst schedule to a minimal\n"
         "      reproducer, and with --replay-out DIR serializes it as a\n"
         "      versioned replay file; `sweep --replay FILE` re-executes a\n"
         "      replay file bit-identically (transcript, fault log and\n"
         "      outputs) and verifies its recorded metrics\n"
         "  lower-bound <d>\n"
         "      emits the Theorem 1 (even d) / Theorem 2 (odd d) adversarial\n"
         "      instance in port-graph format, with its optimum\n"
         "  run-portgraph --algorithm A [--param P] [--threads N]\n"
         "      reads a port graph (multigraphs allowed) from stdin and\n"
         "      prints each node's output port set\n"
         "  views [--radius T]\n"
         "      reads a port graph and prints view equivalence classes\n"
         "  table1\n"
         "      prints the measured Table 1 (worst-case tightness)\n"
         "  help\n";
}

std::optional<algo::Algorithm> parse_algorithm(const std::string& name) {
  // One vocabulary everywhere: the CLI flags and the worker wire protocol
  // both speak algo::algorithm_token's tokens.
  return algo::algorithm_from_token(name);
}

/// The binary to fork as `<bin> worker` for --shards: an explicit
/// --worker-bin wins, then the EDSIM_BIN environment variable (how tests
/// point an in-process run_cli at the real edsim), then this executable
/// itself.  Empty when nothing resolves — the caller must fail loudly
/// rather than guess from PATH, because a different-version `edsim`
/// would silently break the byte-identical contract between backends.
std::string worker_binary(const Args& args) {
  if (args.has("worker-bin")) return args.get("worker-bin");
  if (const char* env = std::getenv("EDSIM_BIN")) {
    if (*env != '\0') return env;
  }
#if defined(__linux__)
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof self - 1);
  if (n > 0) return std::string(self, static_cast<std::size_t>(n));
#endif
  return "";
}

int cmd_generate(const Args& args, std::ostream& out, std::ostream& err) {
  const auto& pos = args.positional();
  if (pos.size() < 2) {
    err << "generate: missing family\n";
    return 2;
  }
  Rng rng(args.get_u64("seed", 1));
  const auto& family = pos[1];
  auto num = [&pos, &err](std::size_t index) -> std::optional<std::size_t> {
    if (index >= pos.size()) {
      err << "generate: missing numeric argument\n";
      return std::nullopt;
    }
    return std::stoull(pos[index]);
  };

  graph::SimpleGraph g;
  try {
    if (family == "cycle") {
      const auto n = num(2);
      if (!n) return 2;
      g = graph::cycle(*n);
    } else if (family == "path") {
      const auto n = num(2);
      if (!n) return 2;
      g = graph::path(*n);
    } else if (family == "complete") {
      const auto n = num(2);
      if (!n) return 2;
      g = graph::complete(*n);
    } else if (family == "regular") {
      const auto n = num(2);
      const auto d = num(3);
      if (!n || !d) return 2;
      g = graph::random_regular(*n, *d, rng);
    } else if (family == "grid") {
      const auto r = num(2);
      const auto c = num(3);
      if (!r || !c) return 2;
      g = graph::grid(*r, *c);
    } else if (family == "torus") {
      const auto r = num(2);
      const auto c = num(3);
      if (!r || !c) return 2;
      g = graph::torus(*r, *c);
    } else if (family == "hypercube") {
      const auto dim = num(2);
      if (!dim) return 2;
      g = graph::hypercube(*dim);
    } else if (family == "petersen") {
      g = graph::petersen();
    } else if (family == "tree") {
      const auto n = num(2);
      if (!n) return 2;
      g = graph::random_tree(*n, rng);
    } else if (family == "bounded") {
      const auto n = num(2);
      const auto delta = num(3);
      const auto m = num(4);
      if (!n || !delta || !m) return 2;
      g = graph::random_bounded_degree(*n, *delta, *m, rng);
    } else {
      err << "generate: unknown family '" << family << "'\n";
      return 2;
    }
  } catch (const Error& e) {
    err << "generate: " << e.what() << '\n';
    return 1;
  }
  graph::write_edge_list(out, g);
  return 0;
}

int cmd_solve(const Args& args, std::istream& in, std::ostream& out,
              std::ostream& err) {
  graph::SimpleGraph g;
  try {
    g = graph::read_edge_list(in);
  } catch (const Error& e) {
    err << "solve: cannot read graph: " << e.what() << '\n';
    return 1;
  }

  Rng rng(args.get_u64("seed", 1));
  const auto ports_kind = args.get("ports", "random");
  std::optional<port::PortedGraph> pg;
  try {
    if (ports_kind == "random") {
      pg.emplace(port::with_random_ports(g, rng));
    } else if (ports_kind == "canonical") {
      pg.emplace(port::with_canonical_ports(g));
    } else if (ports_kind == "factor") {
      pg.emplace(factor::with_factor_ports(g));
    } else {
      err << "solve: unknown port strategy '" << ports_kind << "'\n";
      return 2;
    }
  } catch (const Error& e) {
    err << "solve: cannot number ports: " << e.what() << '\n';
    return 1;
  }

  algo::Algorithm algorithm;
  port::Port param = 0;
  const auto algo_name = args.get("algorithm", "auto");
  if (algo_name == "auto") {
    const auto rec = algo::recommended_for(g);
    algorithm = rec.algorithm;
    param = rec.param;
  } else {
    const auto parsed = parse_algorithm(algo_name);
    if (!parsed) {
      err << "solve: unknown algorithm '" << algo_name << "'\n";
      return 2;
    }
    algorithm = *parsed;
    param = static_cast<port::Port>(args.get_u64("param", 0));
  }

  runtime::ExecOptions exec;
  exec.threads = static_cast<unsigned>(args.get_u64("threads", 1));

  try {
    const auto outcome = algo::run_algorithm(*pg, algorithm, param, exec);
    out << "graph: " << g.summary() << '\n';
    out << "algorithm: " << algo::algorithm_name(algorithm) << '\n';
    out << "rounds: " << outcome.stats.rounds
        << "  messages: " << outcome.stats.messages_sent << '\n';
    out << "solution: " << outcome.solution.size() << " edges\n";
    for (const auto e : outcome.solution.to_vector()) {
      out << "  " << g.edge(e).u << ' ' << g.edge(e).v << '\n';
    }
    const bool feasible = analysis::is_edge_dominating_set(g, outcome.solution);
    out << "edge-dominating: " << (feasible ? "yes" : "NO") << '\n';
    if (args.has("exact")) {
      const auto optimum = exact::minimum_eds_size(g);
      out << "optimum: " << optimum << '\n';
      if (optimum > 0) {
        out << "ratio: "
            << analysis::approximation_ratio(outcome.solution.size(), optimum)
            << '\n';
      }
    }
    if (args.has("dot")) {
      graph::write_dot(out, g, &outcome.solution, "solution");
    }
    return feasible ? 0 : 1;
  } catch (const Error& e) {
    err << "solve: " << e.what() << '\n';
    return 1;
  }
}

int cmd_lower_bound(const Args& args, std::ostream& out, std::ostream& err) {
  const auto& pos = args.positional();
  if (pos.size() < 2) {
    err << "lower-bound: missing degree\n";
    return 2;
  }
  const auto d = static_cast<port::Port>(std::stoul(pos[1]));
  try {
    const auto inst =
        d % 2 == 0 ? lb::even_lower_bound(d) : lb::odd_lower_bound(d);
    out << "# Theorem " << (d % 2 == 0 ? 1 : 2) << " construction, d = " << d
        << '\n';
    out << "# optimum " << inst.optimal.size() << ", forced ratio "
        << inst.forced_ratio << '\n';
    port::write_port_graph(out, inst.ported.ports());
    return 0;
  } catch (const Error& e) {
    err << "lower-bound: " << e.what() << '\n';
    return 1;
  }
}

int cmd_run_portgraph(const Args& args, std::istream& in, std::ostream& out,
                      std::ostream& err) {
  const auto parsed = parse_algorithm(args.get("algorithm", ""));
  if (!parsed) {
    err << "run-portgraph: --algorithm required (see 'edsim help')\n";
    return 2;
  }
  try {
    const auto g = port::read_port_graph(in);
    auto param = static_cast<port::Port>(args.get_u64("param", 0));
    if (param == 0) {
      for (port::NodeId v = 0; v < g.num_nodes(); ++v) {
        param = std::max(param, g.degree(v));
      }
      param = std::max<port::Port>(param, 1);
    }
    const auto factory = algo::make_factory(*parsed, param);
    runtime::RunOptions options;
    options.collect_messages = args.has("trace");
    options.exec.threads = static_cast<unsigned>(args.get_u64("threads", 1));
    const auto result = runtime::run_synchronous(g, *factory, options);
    const auto selected = runtime::validated_selection_size(g, result);
    if (args.has("trace")) out << runtime::format_transcript(result);
    out << "nodes: " << g.num_nodes() << "  rounds: " << result.stats.rounds
        << "  selected edges: " << selected << '\n';
    for (port::NodeId v = 0; v < g.num_nodes(); ++v) {
      out << v << ':';
      for (const auto p : result.outputs[v]) out << ' ' << p;
      out << '\n';
    }
    return 0;
  } catch (const Error& e) {
    err << "run-portgraph: " << e.what() << '\n';
    return 1;
  }
}

/// `sweep --replay FILE`: re-executes a serialized adversarial schedule
/// bit-identically and verifies the recorded metrics.  Everything printed
/// is a pure function of the file contents — independent of --threads and
/// of the sweep flags, which are ignored on purpose (the file *is* the
/// configuration).  Exit 2 on a bad file (unreadable, schema mismatch,
/// malformed records, unknown algorithm), exit 1 when the rerun drifts
/// from the recorded metrics — the determinism alarm.
int cmd_sweep_replay(const Args& args, std::ostream& out, std::ostream& err) {
  const auto path = args.get("replay");
  if (path.empty()) {
    err << "sweep: --replay needs a file path\n";
    return 2;
  }
  std::ifstream file(path);
  if (!file) {
    err << "sweep: cannot open replay file '" << path << "'\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  runtime::ReplayFile replay;
  try {
    replay = runtime::decode_replay(buffer.str());
  } catch (const Error& e) {
    err << "sweep: " << e.what() << '\n';
    return 2;
  }
  const auto algorithm = algo::algorithm_from_token(replay.algorithm);
  if (!algorithm) {
    err << "sweep: replay file names unknown algorithm '" << replay.algorithm
        << "'\n";
    return 2;
  }
  port::PortGraph g;
  try {
    g = port::from_port_graph_string(replay.graph_text);
  } catch (const Error& e) {
    err << "sweep: replay graph: " << e.what() << '\n';
    return 2;
  }
  const auto factory =
      algo::make_factory(*algorithm, static_cast<port::Port>(replay.param));
  runtime::RunOptions options;
  options.collect_messages = true;
  runtime::AsyncResult result;
  try {
    result = runtime::run_asynchronous(g, *factory, options, replay.options);
  } catch (const Error& e) {
    err << "sweep: replay run failed: " << e.what() << '\n';
    return 1;
  }
  const auto metrics = runtime::measure_schedule(g, result);
  out << "replay: schema=" << runtime::kReplaySchemaVersion
      << " strategy=" << replay.strategy << " algorithm=" << replay.algorithm
      << " param=" << replay.param << " nodes=" << g.num_nodes()
      << " synchronizer=" << (replay.options.synchronizer ? "on" : "off")
      << '\n';
  out << "metrics: rounds=" << metrics.rounds
      << " time=" << metrics.virtual_time << " selected=" << metrics.selected
      << " inconsistent=" << metrics.inconsistent << '\n';
  bool drift = false;
  for (const auto& [name, value] : replay.metrics) {
    const auto metric = runtime::metric_from_token(name);
    if (!metric) {
      err << "sweep: replay file records unknown metric '" << name << "'\n";
      return 2;
    }
    const auto measured = runtime::metric_value(metrics, *metric);
    const bool match = measured == value;
    drift = drift || !match;
    out << "recorded: " << name << '=' << value
        << (match ? " reproduced" : " DRIFT") << '\n';
  }
  out << "--- transcript ---\n" << runtime::format_transcript(result.run);
  out << "--- fault log ---\n"
      << runtime::format_fault_log(result.fault_log);
  out << "outputs:\n";
  for (port::NodeId v = 0; v < g.num_nodes(); ++v) {
    out << v << ':';
    for (const auto p : result.run.outputs[v]) out << ' ' << p;
    out << '\n';
  }
  if (drift) {
    err << "sweep: replay drifted from its recorded metrics (determinism "
           "regression or a hand-edited file)\n";
    return 1;
  }
  return 0;
}

int cmd_sweep(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.has("replay")) return cmd_sweep_replay(args, out, err);
  const auto& pos = args.positional();
  if (pos.size() < 2) {
    err << "sweep: missing family (path|cycle|regular|grid|torus|"
           "caterpillar|powerlaw|portgraph)\n";
    return 2;
  }
  const auto& family = pos[1];
  const auto min_n = static_cast<std::size_t>(args.get_u64("min", 8));
  const auto max_n = static_cast<std::size_t>(args.get_u64("max", 128));
  const auto step = static_cast<std::size_t>(args.get_u64("step", 0));
  const auto d = static_cast<std::size_t>(args.get_u64("d", 3));
  const auto threads = static_cast<unsigned>(args.get_u64("threads", 0));
  const auto repeat = static_cast<std::size_t>(args.get_u64("repeat", 1));
  const bool ndjson = args.has("ndjson");
  if (min_n == 0 || max_n < min_n) {
    err << "sweep: need 0 < --min <= --max\n";
    return 2;
  }
  if (repeat == 0) {
    err << "sweep: need --repeat >= 1\n";
    return 2;
  }

  // --model async swaps the round engine for the event-driven asynchronous
  // engine (runtime/async.hpp).  All validation happens here so misuse is
  // a clean exit 2, not a mid-sweep throw.  The default --model sync path
  // below is untouched — byte-identical to a build without this flag.
  const auto model = args.get("model", "sync");
  if (model != "sync" && model != "async") {
    err << "sweep: unknown --model '" << model << "' (sync|async)\n";
    return 2;
  }
  const bool async_model = model == "async";
  runtime::AsyncOptions async_base;
  double loss = 0.0;
  double dup = 0.0;
  std::size_t crash_k = 0;
  std::optional<runtime::AdversaryStrategy> adversary;
  std::size_t budget = 0;
  const auto replay_out = args.get("replay-out", "");
  if (!async_model) {
    if (args.has("adversary")) {
      err << "sweep: --adversary needs --model async (the synchronous "
             "engine has no schedule to perturb)\n";
      return 2;
    }
    if (args.has("budget") || !replay_out.empty()) {
      err << "sweep: --budget/--replay-out only make sense with "
             "--adversary\n";
      return 2;
    }
  }
  if (async_model) {
    try {
      async_base.delay =
          runtime::parse_delay_model(args.get("delay", "fixed:1"));
    } catch (const Error& e) {
      err << "sweep: " << e.what() << '\n';
      return 2;
    }
    try {
      loss = std::stod(args.get("loss", "0"));
      dup = std::stod(args.get("dup", "0"));
    } catch (const std::exception&) {
      err << "sweep: --loss/--dup must be numbers in [0, 1]\n";
      return 2;
    }
    if (loss < 0.0 || loss > 1.0 || dup < 0.0 || dup > 1.0) {
      err << "sweep: --loss/--dup must be numbers in [0, 1]\n";
      return 2;
    }
    crash_k = static_cast<std::size_t>(args.get_u64("crash", 0));
    async_base.round_timeout = args.get_u64("timeout", 0);
    if (args.has("adversary")) {
      adversary = runtime::adversary_from_token(args.get("adversary"));
      if (!adversary) {
        err << "sweep: unknown --adversary '" << args.get("adversary")
            << "' (random|pct|delay|climb)\n";
        return 2;
      }
      budget = static_cast<std::size_t>(args.get_u64("budget", 32));
      if (budget == 0) {
        err << "sweep: need --budget >= 1\n";
        return 2;
      }
    } else if (args.has("budget") || !replay_out.empty()) {
      err << "sweep: --budget/--replay-out only make sense with "
             "--adversary\n";
      return 2;
    }
    const bool have_faults = loss > 0.0 || dup > 0.0 || crash_k > 0;
    // An adversary search implies free-running mode: the α-synchronizer is
    // schedule-oblivious by construction, so defaulting it off is the only
    // sensible reading, and asking for it explicitly is a user error.
    const auto sync_flag = args.get(
        "synchronizer", (have_faults || adversary) ? "off" : "on");
    if (sync_flag != "on" && sync_flag != "off") {
      err << "sweep: --synchronizer takes on|off\n";
      return 2;
    }
    async_base.synchronizer = sync_flag == "on";
    if (async_base.synchronizer && adversary) {
      err << "sweep: --adversary cannot attack the α-synchronizer (its "
             "outputs are schedule-independent by construction); drop "
             "--synchronizer on\n";
      return 2;
    }
    if (async_base.synchronizer && have_faults) {
      err << "sweep: the α-synchronizer requires a fault-free network; "
             "drop --loss/--dup/--crash or pass --synchronizer off\n";
      return 2;
    }
  }

  // --shards N swaps the in-process pool for `edsim worker` subprocesses;
  // everything downstream (row printing, summary, exit code) is backend
  // agnostic, which is what makes the outputs byte-identical.  Since
  // schema 2 async jobs cross the wire too; adversarial searches stay
  // in-process (their schedules are a search artifact, not wire payload).
  std::unique_ptr<runtime::ProcessShardExecutor> shard_exec;
  if (args.has("no-pool") && !args.has("shards")) {
    err << "sweep: --no-pool only makes sense with --shards\n";
    return 2;
  }
  for (const char* flag :
       {"retries", "retry-backoff-ms", "job-timeout-ms", "batch-timeout-ms",
        "breaker-deaths", "fallback-inprocess", "chaos"}) {
    if (args.has(flag) && !args.has("shards")) {
      err << "sweep: --" << flag << " only makes sense with --shards\n";
      return 2;
    }
  }
  if (args.has("shards")) {
    if (adversary) {
      err << "sweep: --adversary cannot run under --shards (adversarial "
             "schedules do not cross the wire); drop one of the two\n";
      return 2;
    }
    const auto bin = worker_binary(args);
    if (bin.empty()) {
      err << "sweep: cannot resolve the edsim binary for --shards "
             "(pass --worker-bin PATH or set EDSIM_BIN)\n";
      return 2;
    }
    runtime::ProcessShardExecutor::Options pool_options;
    pool_options.pooled = !args.has("no-pool");
    pool_options.max_retries =
        static_cast<unsigned>(args.get_u64("retries", 2));
    pool_options.retry_backoff_ms = args.get_u64("retry-backoff-ms", 10);
    pool_options.job_timeout_ms = args.get_u64("job-timeout-ms", 0);
    pool_options.batch_timeout_ms = args.get_u64("batch-timeout-ms", 0);
    pool_options.breaker_deaths = args.get_u64("breaker-deaths", 8);
    pool_options.fallback_inprocess = args.has("fallback-inprocess");
    std::vector<std::string> worker_command{bin, "worker"};
    if (args.has("chaos")) {
      const auto spec = args.get("chaos");
      try {
        (void)runtime::parse_chaos_spec(spec);  // reject bad specs up front
      } catch (const Error& e) {
        err << "sweep: " << e.what() << '\n';
        return 2;
      }
      worker_command.push_back("--chaos");
      worker_command.push_back(spec);
    }
    try {
      shard_exec = std::make_unique<runtime::ProcessShardExecutor>(
          std::move(worker_command),
          static_cast<unsigned>(args.get_u64("shards", 0)), pool_options);
    } catch (const Error& e) {
      err << "sweep: " << e.what() << '\n';
      return 2;
    }
  }

  // Sizes: doubling from --min by default, arithmetic with --step S.
  std::vector<std::size_t> sizes;
  for (std::size_t n = min_n;;) {
    sizes.push_back(n);
    const std::size_t next = step == 0 ? n * 2 : n + step;
    if (next <= n || next > max_n) break;
    n = next;
  }

  const auto algo_name = args.get("algorithm", "auto");
  std::optional<algo::Algorithm> fixed;
  if (algo_name != "auto") {
    fixed = parse_algorithm(algo_name);
    if (!fixed) {
      err << "sweep: unknown algorithm '" << algo_name << "'\n";
      return 2;
    }
  }
  const auto param = static_cast<port::Port>(args.get_u64("param", 0));
  Rng rng(args.get_u64("seed", 1));

  // Every job in the sweep shares one plan cache, so --repeat compiles one
  // ExecutionPlan per instance regardless of R; the summary counters below
  // make the reuse visible (and assertable from tests).
  // `all_feasible` is only emitted when the family actually verifies edge
  // domination (the simple-graph branch); the portgraph branch checks
  // output well-formedness, not feasibility, so it omits the field rather
  // than hardcoding a claim nobody computed.
  // Under --shards the parent-side cache is idle; the workers' per-shard
  // caches report their counters through the wire summaries instead, and
  // group-affinity routing keeps the aggregated numbers identical to the
  // single-cache run.
  runtime::PlanCache plan_cache;
  const auto summarize = [&](std::size_t jobs,
                             std::optional<bool> all_feasible) {
    std::uint64_t compiled = 0;
    std::uint64_t hits = 0;
    runtime::ProcessShardExecutor::Stats shard_stats;
    if (shard_exec != nullptr) {
      shard_stats = shard_exec->stats();
      // Jobs the resilience layer rerouted in-process compiled against the
      // parent-side cache; add its counters so degraded runs still account
      // for every plan.  A clean sharded run adds zeros.
      const auto parent = plan_cache.stats();
      compiled = shard_stats.plans_compiled + parent.misses;
      hits = shard_stats.plan_hits + parent.hits;
    } else {
      const auto stats = plan_cache.stats();
      compiled = stats.misses;
      hits = stats.hits;
    }
    // Emitted only when something degraded, so a clean run's summary stays
    // byte-identical across backends and to the pre-resilience format.
    const bool degraded =
        shard_stats.jobs_retried != 0 || shard_stats.jobs_poisoned != 0 ||
        shard_stats.deadline_kills != 0 || shard_stats.batch_timeouts != 0 ||
        shard_stats.workers_respawned != 0 ||
        shard_stats.pool_quarantines != 0 ||
        shard_stats.fallback_jobs != 0 || shard_stats.summaries_lost != 0;
    if (ndjson) {
      out << "{\"schema\":" << runtime::kWireSchemaVersion
          << ",\"summary\":{\"jobs\":" << jobs
          << ",\"plans_compiled\":" << compiled
          << ",\"plan_hits\":" << hits;
      if (degraded) {
        out << ",\"jobs_retried\":" << shard_stats.jobs_retried
            << ",\"jobs_poisoned\":" << shard_stats.jobs_poisoned
            << ",\"deadline_kills\":" << shard_stats.deadline_kills
            << ",\"batch_timeouts\":" << shard_stats.batch_timeouts
            << ",\"workers_respawned\":" << shard_stats.workers_respawned
            << ",\"pool_quarantines\":" << shard_stats.pool_quarantines
            << ",\"fallback_jobs\":" << shard_stats.fallback_jobs
            << ",\"summaries_lost\":" << shard_stats.summaries_lost;
      }
      if (all_feasible.has_value()) {
        out << ",\"all_feasible\":" << (*all_feasible ? "true" : "false");
      }
      if (async_model) {
        out << ",\"model\":\"async\",\"delay\":\""
            << runtime::format_delay_model(async_base.delay)
            << "\",\"loss\":" << loss << ",\"dup\":" << dup
            << ",\"crash\":" << crash_k << ",\"synchronizer\":"
            << (async_base.synchronizer ? "true" : "false")
            << ",\"timeout\":" << async_base.round_timeout;
        if (adversary) {
          out << ",\"adversary\":\"" << runtime::adversary_token(*adversary)
              << "\",\"budget\":" << budget;
        }
      }
      out << "}}\n";
    } else {
      if (async_model) {
        out << "model: async delay="
            << runtime::format_delay_model(async_base.delay)
            << " loss=" << loss << " dup=" << dup << " crash=" << crash_k
            << " synchronizer=" << (async_base.synchronizer ? "on" : "off")
            << " timeout=" << async_base.round_timeout << '\n';
        if (adversary) {
          out << "adversary: strategy="
              << runtime::adversary_token(*adversary) << " budget=" << budget
              << '\n';
        }
      }
      out << "plan-cache: compiled=" << compiled
          << " hits=" << hits << '\n';
      if (degraded) {
        out << "resilience: retried=" << shard_stats.jobs_retried
            << " poisoned=" << shard_stats.jobs_poisoned
            << " deadline-kills=" << shard_stats.deadline_kills
            << " batch-timeouts=" << shard_stats.batch_timeouts
            << " respawned=" << shard_stats.workers_respawned
            << " quarantines=" << shard_stats.pool_quarantines
            << " fallback-jobs=" << shard_stats.fallback_jobs
            << " summaries-lost=" << shard_stats.summaries_lost << '\n';
        // A lost summary is a worker that died before reporting its batch
        // delta: the plan-cache line above under-counts that worker's
        // compiles/hits (the wire only carries counters in the batch-end
        // summary), which this counter makes attributable.
      }
    }
  };

  // Per-job async configuration, derived at job-construction time so the
  // result is independent of scheduling: every (instance, repeat) pair gets
  // its own delay-matrix/fault seed, and the crash schedule is drawn for
  // the instance's node count over a horizon scaled to the delay bound.
  const auto async_for_job = [&](std::size_t job_index,
                                 std::size_t num_nodes) {
    runtime::AsyncOptions a = async_base;
    std::uint64_t state =
        args.get_u64("seed", 1) ^ (0xA51DC0DEULL + job_index);
    a.seed = splitmix64(state);
    a.faults.loss = loss;
    a.faults.duplicate = dup;
    if (crash_k > 0) {
      const std::uint64_t horizon = 32 * a.delay.max_delay();
      a.faults.crashes = runtime::make_fault_plan(0, 0, crash_k, num_nodes,
                                                  horizon, splitmix64(state))
                             .crashes;
    }
    return a;
  };

  // One adversary search per (instance, repeat): run the strategy for
  // --budget probes, shrink the headline witness to a minimal reproducer,
  // optionally serialize it under --replay-out, and print one row.  The
  // loop is sequential on purpose — the report is a pure function of
  // (instance, seed, budget), so --threads cannot change a single byte.
  std::size_t adversary_jobs = 0;
  const auto adversary_row =
      [&](const std::string& fam, std::size_t n_label,
          const port::PortGraph& ports, const runtime::ProgramFactory& factory,
          const std::string& algo_token, port::Port resolved,
          std::optional<std::size_t> optimum, TextTable& table) -> int {
    const std::size_t job_index = adversary_jobs++;
    const auto base = async_for_job(job_index, ports.num_nodes());
    std::uint64_t state =
        args.get_u64("seed", 1) ^ (0xBADC0FFEULL + job_index);
    const auto search_seed = splitmix64(state);
    runtime::RunOptions run_opts;
    run_opts.exec.plan_cache = &plan_cache;
    const auto report = runtime::adversary_search(
        ports, factory, *adversary, base, budget, search_seed, run_opts);
    const auto metric = report.primary_metric();
    const auto shrunk = runtime::shrink_witness(ports, factory,
                                                report.primary(), metric,
                                                run_opts);
    std::optional<Fraction> ratio;
    if (optimum.has_value() && *optimum > 0) {
      ratio = analysis::approximation_ratio(
          static_cast<std::size_t>(report.worst_selected.metrics.selected),
          *optimum);
    }
    std::string replay_path;
    if (!replay_out.empty()) {
      runtime::ReplayFile file;
      file.strategy = runtime::adversary_token(*adversary);
      file.algorithm = algo_token;
      file.param = resolved;
      file.options = shrunk.options;
      file.metrics = {
          {"rounds", shrunk.metrics.rounds},
          {"time", shrunk.metrics.virtual_time},
          {"selected", shrunk.metrics.selected},
          {"inconsistent", shrunk.metrics.inconsistent},
      };
      file.graph_text = port::to_port_graph_string(ports);
      replay_path = replay_out + "/worst-" + fam + "-" +
                    std::to_string(job_index) + ".edsched";
      std::ofstream sink(replay_path);
      sink << runtime::encode_replay(file);
      if (!sink) {
        err << "sweep: cannot write replay file '" << replay_path << "'\n";
        return 2;
      }
    }
    if (ndjson) {
      out << "{\"schema\":" << runtime::kWireSchemaVersion
          << ",\"index\":" << job_index << ",\"family\":\"" << fam << '"'
          << ",\"n\":" << n_label << ",\"algorithm\":\"" << algo_token << '"'
          << ",\"adversary\":\"" << runtime::adversary_token(*adversary)
          << "\",\"budget\":" << budget
          << ",\"evaluated\":" << report.evaluated
          << ",\"failures\":" << report.failures
          << ",\"worst_rounds\":" << report.worst_rounds.metrics.rounds
          << ",\"worst_time\":" << report.worst_time.metrics.virtual_time
          << ",\"worst_selected\":" << report.worst_selected.metrics.selected
          << ",\"worst_inconsistent\":"
          << report.worst_inconsistent.metrics.inconsistent
          << ",\"primary\":\"" << runtime::metric_token(metric)
          << "\",\"shrunk_changes\":"
          << shrunk.options.schedule.change_points.size()
          << ",\"shrunk_overrides\":"
          << shrunk.options.schedule.delay_overrides.size();
      if (optimum.has_value()) out << ",\"optimum\":" << *optimum;
      if (ratio.has_value()) out << ",\"worst_ratio\":\"" << *ratio << '"';
      if (!replay_path.empty()) out << ",\"replay\":\"" << replay_path << '"';
      out << "}\n";
      out.flush();
    } else {
      std::ostringstream ratio_text;
      if (ratio.has_value()) ratio_text << *ratio;
      table.row({std::to_string(n_label), std::to_string(report.evaluated),
                 std::to_string(report.failures),
                 std::to_string(report.worst_rounds.metrics.rounds),
                 std::to_string(report.worst_time.metrics.virtual_time),
                 std::to_string(report.worst_selected.metrics.selected),
                 std::to_string(report.worst_inconsistent.metrics.inconsistent),
                 ratio.has_value() ? ratio_text.str() : "-"});
    }
    return 0;
  };
  const auto adversary_header = [] {
    TextTable table("");
    table.header({"n", "evaluated", "failures", "rounds", "time", "selected",
                  "inconsistent", "ratio"});
    return table;
  };

  try {
    if (family == "portgraph") {
      // Random port-numbered multigraphs (loops and parallel edges): the
      // fixed-algorithm path; `auto` means the bounded-degree family A(d).
      std::vector<port::PortGraph> instances;
      instances.reserve(sizes.size());
      for (const auto n : sizes) {
        instances.push_back(port::random_port_graph(
            std::vector<port::Port>(n, static_cast<port::Port>(d)), rng));
      }
      const auto algorithm = fixed.value_or(algo::Algorithm::kBoundedDegree);
      const auto resolved_param =
          param != 0 ? param
                     : static_cast<port::Port>(std::max<std::size_t>(d, 1));
      const auto factory = algo::make_factory(algorithm, resolved_param);
      if (adversary) {
        if (!ndjson) {
          out << "sweep: family=portgraph d=" << d
              << " algorithm=" << algo::algorithm_name(algorithm)
              << " adversary=" << runtime::adversary_token(*adversary)
              << " budget=" << budget << '\n';
        }
        auto table = adversary_header();
        for (std::size_t k = 0; k < instances.size(); ++k) {
          for (std::size_t r = 0; r < repeat; ++r) {
            // Multigraphs (loops, parallel edges) have no exact solver, so
            // the optimum/ratio columns stay empty for this family.
            const int rc = adversary_row(
                "portgraph", sizes[k], instances[k], *factory,
                algo::algorithm_token(algorithm), resolved_param,
                std::nullopt, table);
            if (rc != 0) return rc;
          }
        }
        if (!ndjson) table.print(out);
        summarize(adversary_jobs, std::nullopt);
        return 0;
      }
      std::vector<runtime::BatchJob> jobs;
      jobs.reserve(instances.size() * repeat);
      for (const auto& g : instances) {
        runtime::RunOptions options;
        options.exec.plan_cache = &plan_cache;
        runtime::JobSpec spec;
        spec.algorithm = algo::algorithm_token(algorithm);
        spec.param = resolved_param;
        // One O(ports) hash walk per instance, shared by all --repeat
        // jobs below (the simple-graph families get the same guarantee
        // from prepare_batch's StructuralHashMemo).
        spec.group = runtime::structural_hash(g);
        for (std::size_t r = 0; r < repeat; ++r) {
          runtime::RunOptions job_options = options;
          if (async_model) {
            job_options.exec.async =
                async_for_job(jobs.size(), g.num_nodes());
          }
          jobs.push_back({&g, factory.get(), job_options, spec});
        }
      }
      const runtime::BatchRunner runner =
          shard_exec != nullptr ? runtime::BatchRunner(shard_exec.get())
                                : runtime::BatchRunner(threads);

      if (!ndjson) {
        out << "sweep: family=portgraph d=" << d
            << " algorithm=" << algo::algorithm_name(algorithm)
            << " jobs=" << jobs.size() << '\n';
      }
      TextTable table("");
      table.header({"n", "ports", "rounds", "messages", "selected"});
      // Streaming delivery: rows arrive in job order as their prefix
      // completes; NDJSON mode prints (and flushes) each immediately.
      runner.run_streaming(
          jobs, [&](std::size_t i, runtime::RunResult&& result) {
            const auto& g = instances[i / repeat];
            // Under faults a one-sided selection is a measured outcome, so
            // the async model tolerates inconsistency instead of throwing.
            const auto selected =
                async_model
                    ? runtime::consistent_selection_size(g, result)
                    : std::optional<std::size_t>(
                          runtime::validated_selection_size(g, result));
            if (ndjson) {
              out << "{\"schema\":" << runtime::kWireSchemaVersion
                  << ",\"index\":" << i << ",\"family\":\"portgraph\""
                  << ",\"n\":" << sizes[i / repeat]
                  << ",\"ports\":" << g.num_ports();
              if (async_model) {
                out << ",\"model\":\"async\",\"consistent\":"
                    << (selected.has_value() ? "true" : "false");
              }
              out << ",\"rounds\":" << result.stats.rounds
                  << ",\"messages\":" << result.stats.messages_sent;
              if (selected.has_value()) {
                out << ",\"selected\":" << *selected;
              }
              out << "}\n";
              out.flush();
            } else {
              table.row({std::to_string(sizes[i / repeat]),
                         std::to_string(g.num_ports()),
                         std::to_string(result.stats.rounds),
                         std::to_string(result.stats.messages_sent),
                         selected.has_value() ? std::to_string(*selected)
                                              : "inconsistent"});
            }
          });
      if (!ndjson) table.print(out);
      summarize(jobs.size(), std::nullopt);
      return 0;
    }

    // Simple-graph families: generate sequentially (the RNG stream is the
    // determinism contract), then fan the runs across the pool.
    std::vector<port::PortedGraph> instances;
    instances.reserve(sizes.size());
    for (const auto n : sizes) {
      graph::SimpleGraph g;
      if (family == "path") {
        g = graph::path(n);
      } else if (family == "cycle") {
        g = graph::cycle(n);
      } else if (family == "regular") {
        g = graph::random_regular(n, d, rng);
      } else if (family == "grid") {
        // Round the size to a square side; n stays the *requested* size.
        const auto side = std::max<std::size_t>(
            2, static_cast<std::size_t>(std::lround(
                   std::sqrt(static_cast<double>(n)))));
        g = graph::grid(side, side);
      } else if (family == "torus") {
        const auto side = std::max<std::size_t>(
            3, static_cast<std::size_t>(std::lround(
                   std::sqrt(static_cast<double>(n)))));
        g = graph::torus(side, side);
      } else if (family == "caterpillar") {
        // A 2-leg caterpillar: spine of n/3 nodes, ~n nodes total — the
        // worklist's favourite long-tail shape (leaves halt early).
        g = graph::caterpillar(std::max<std::size_t>(1, n / 3), 2);
      } else if (family == "powerlaw") {
        g = graph::random_power_law(n, 2.5, rng);
      } else {
        err << "sweep: unknown family '" << family << "'\n";
        return 2;
      }
      instances.push_back(port::with_random_ports(std::move(g), rng));
    }

    if (async_model) {
      // Raw runtime jobs instead of algo::BatchItems: the async model
      // bypasses run_batch's validated-EdsOutcome path on purpose, because
      // under faults a one-sided selection is a measured outcome the sweep
      // must report, not an exception.  Factories are built exactly as
      // run_algorithm would (same resolved parameter), so the fault-free
      // synchronized rows are field-identical to the sync model's.
      std::vector<algo::Algorithm> algorithms(instances.size());
      std::vector<port::Port> params(instances.size());
      std::vector<std::unique_ptr<runtime::ProgramFactory>> factories;
      factories.reserve(instances.size());
      std::vector<runtime::BatchJob> jobs;
      jobs.reserve(instances.size() * repeat);
      for (std::size_t k = 0; k < instances.size(); ++k) {
        const auto& pg = instances[k];
        port::Port item_param = param;
        if (fixed) {
          algorithms[k] = *fixed;
        } else {
          const auto rec = algo::recommended_for(pg.graph());
          algorithms[k] = rec.algorithm;
          item_param = rec.param;
        }
        params[k] = algo::resolved_param(pg, algorithms[k], item_param);
        factories.push_back(algo::make_factory(algorithms[k], params[k]));
        if (adversary) continue;
        runtime::JobSpec spec;
        spec.algorithm = algo::algorithm_token(algorithms[k]);
        spec.param = params[k];
        // One hash walk per instance, as in the portgraph branch: group
        // routing is what keeps the per-shard caches equivalent to the
        // single in-process cache.
        spec.group = runtime::structural_hash(pg.ports());
        for (std::size_t r = 0; r < repeat; ++r) {
          runtime::RunOptions options;
          options.exec.plan_cache = &plan_cache;
          options.exec.async =
              async_for_job(jobs.size(), pg.graph().num_nodes());
          jobs.push_back(
              {&pg.ports(), factories.back().get(), options, spec});
        }
      }

      if (adversary) {
        if (!ndjson) {
          out << "sweep: family=" << family << " algorithm=" << algo_name
              << " adversary=" << runtime::adversary_token(*adversary)
              << " budget=" << budget << '\n';
        }
        auto table = adversary_header();
        for (std::size_t k = 0; k < instances.size(); ++k) {
          const auto& pg = instances[k];
          // The exact solver is exponential in m; only small instances get
          // the optimum/ratio columns (the degradation tables use those).
          std::optional<std::size_t> optimum;
          if (pg.graph().num_edges() <= 24) {
            optimum = exact::minimum_eds_size(pg.graph());
          }
          for (std::size_t r = 0; r < repeat; ++r) {
            const int rc = adversary_row(
                family, sizes[k], pg.ports(), *factories[k],
                algo::algorithm_token(algorithms[k]), params[k], optimum,
                table);
            if (rc != 0) return rc;
          }
        }
        if (!ndjson) table.print(out);
        summarize(adversary_jobs, std::nullopt);
        return 0;
      }

      if (!ndjson) {
        out << "sweep: family=" << family << " algorithm=" << algo_name
            << " jobs=" << jobs.size() << '\n';
      }
      TextTable table("");
      table.header(
          {"n", "edges", "algorithm", "rounds", "messages", "|D|", "ok"});
      const runtime::BatchRunner async_runner =
          shard_exec != nullptr ? runtime::BatchRunner(shard_exec.get())
                                : runtime::BatchRunner(threads);
      async_runner.run_streaming(
          jobs, [&](std::size_t i, runtime::RunResult&& result) {
            const auto& pg = instances[i / repeat];
            const auto& g = pg.graph();
            const auto selected =
                runtime::consistent_selection_size(pg.ports(), result);
            std::optional<bool> feasible;
            if (selected.has_value()) {
              feasible = analysis::is_edge_dominating_set(
                  g, runtime::validated_edge_set(pg, result));
            }
            if (ndjson) {
              out << "{\"schema\":" << runtime::kWireSchemaVersion
                  << ",\"index\":" << i << ",\"family\":\"" << family << '"'
                  << ",\"n\":" << sizes[i / repeat]
                  << ",\"nodes\":" << g.num_nodes()
                  << ",\"edges\":" << g.num_edges() << ",\"algorithm\":\""
                  << algo::algorithm_name(algorithms[i / repeat]) << '"'
                  << ",\"model\":\"async\",\"consistent\":"
                  << (selected.has_value() ? "true" : "false")
                  << ",\"rounds\":" << result.stats.rounds
                  << ",\"messages\":" << result.stats.messages_sent;
              if (selected.has_value()) {
                out << ",\"solution\":" << *selected << ",\"feasible\":"
                    << (*feasible ? "true" : "false");
              }
              out << "}\n";
              out.flush();
            } else {
              table.row({std::to_string(sizes[i / repeat]),
                         std::to_string(g.num_edges()),
                         algo::algorithm_name(algorithms[i / repeat]),
                         std::to_string(result.stats.rounds),
                         std::to_string(result.stats.messages_sent),
                         selected.has_value() ? std::to_string(*selected)
                                              : "-",
                         !selected.has_value() ? "inconsistent"
                         : *feasible          ? "yes"
                                              : "NO"});
            }
          });
      if (!ndjson) table.print(out);
      // Degradation is the measurement here: inconsistent or infeasible
      // rows are data, not a failed sweep.
      summarize(jobs.size(), std::nullopt);
      return 0;
    }

    std::vector<algo::BatchItem> items;
    items.reserve(instances.size() * repeat);
    for (const auto& pg : instances) {
      algo::BatchItem item;
      item.graph = &pg;
      if (fixed) {
        item.algorithm = *fixed;
        item.param = param;
      } else {
        const auto rec = algo::recommended_for(pg.graph());
        item.algorithm = rec.algorithm;
        item.param = rec.param;
      }
      for (std::size_t r = 0; r < repeat; ++r) items.push_back(item);
    }

    if (!ndjson) {
      out << "sweep: family=" << family << " algorithm=" << algo_name
          << " jobs=" << items.size() << '\n';
    }
    TextTable table("");
    table.header({"n", "edges", "algorithm", "rounds", "messages", "|D|",
                  "feasible"});
    bool all_feasible = true;
    runtime::ExecOptions batch_exec;
    batch_exec.threads = threads;
    batch_exec.executor = shard_exec.get();
    algo::run_batch_streaming(
        items, batch_exec,
        [&](std::size_t i, algo::EdsOutcome&& outcome) {
          const auto& g = items[i].graph->graph();
          const bool feasible =
              analysis::is_edge_dominating_set(g, outcome.solution);
          all_feasible = all_feasible && feasible;
          if (ndjson) {
            out << "{\"schema\":" << runtime::kWireSchemaVersion
                << ",\"index\":" << i << ",\"family\":\"" << family << '"'
                << ",\"n\":" << sizes[i / repeat]
                << ",\"nodes\":" << g.num_nodes()
                << ",\"edges\":" << g.num_edges() << ",\"algorithm\":\""
                << algo::algorithm_name(items[i].algorithm) << '"'
                << ",\"rounds\":" << outcome.stats.rounds
                << ",\"messages\":" << outcome.stats.messages_sent
                << ",\"solution\":" << outcome.solution.size()
                << ",\"feasible\":" << (feasible ? "true" : "false") << "}\n";
            out.flush();
          } else {
            table.row({std::to_string(sizes[i / repeat]),
                       std::to_string(g.num_edges()),
                       algo::algorithm_name(items[i].algorithm),
                       std::to_string(outcome.stats.rounds),
                       std::to_string(outcome.stats.messages_sent),
                       std::to_string(outcome.solution.size()),
                       feasible ? "yes" : "NO"});
          }
        },
        &plan_cache);
    if (!ndjson) table.print(out);
    summarize(items.size(), all_feasible);
    return all_feasible ? 0 : 1;
  } catch (const Error& e) {
    err << "sweep: " << e.what() << '\n';
    return 1;
  }
}

/// Hidden subcommand behind `edsim sweep --shards`: one shard of a
/// ProcessShardExecutor pool.  Speaks the framed schema-2 NDJSON protocol
/// of runtime/shard.hpp on stdin/stdout: batches arrive as batch_begin /
/// job lines / batch_end, each job answers with one result (or error)
/// line, flushed per job so the parent can stream, and each batch_end
/// answers with one worker_summary carrying the batch's cache-counter
/// deltas plus the process-lifetime totals.  The PlanCache (the per-shard
/// cache of the design) and the engine workspaces behind it live for the
/// *process*, not the batch — that persistence is the whole point of the
/// warm pool.  Stdin EOF between batches ends the worker cleanly.
///
/// Back-compat: when the *first* stdin line is a job line (schema 1 or an
/// unframed schema-2 line) the worker runs the legacy single-batch
/// protocol instead — jobs until EOF, then one summary in the first
/// line's schema.  A job that fails its run produces an error line and
/// the worker carries on: draining the batch is the parent's prefix-rule
/// contract.  Malformed or out-of-frame lines are protocol failures:
/// exit 2, loudly.
///
/// Chaos hooks (the deterministic misbehaviour injectors behind the
/// resilience layer's tests): `--chaos SPEC` wins, then the historical
/// `--fail-after K` (an alias for `crash:K`: exit 7 without a summary
/// after K cumulative result lines), then the EDS_WORKER_CHAOS
/// environment variable — the route a test or the chaos-soak CI job uses
/// to garble a whole fleet without touching the parent's command line.
int cmd_worker(const Args& args, std::istream& in, std::ostream& out,
               std::ostream& err) {
  runtime::ChaosSpec chaos;
  try {
    if (args.has("chaos")) {
      chaos = runtime::parse_chaos_spec(args.get("chaos"));
    } else if (args.has("fail-after")) {
      chaos.mode = runtime::ChaosSpec::Mode::kCrash;
      chaos.n = args.get_u64("fail-after", 0);
      if (chaos.n == 0) chaos.mode = runtime::ChaosSpec::Mode::kNone;
    } else if (const char* env = std::getenv("EDS_WORKER_CHAOS")) {
      chaos = runtime::parse_chaos_spec(env);
    }
  } catch (const Error& e) {
    err << "worker: " << e.what() << '\n';
    return 2;
  }

  runtime::PlanCache cache;
  std::uint64_t total_jobs = 0;

  // Runs one job under the persistent cache, answering at `schema`.
  // Returns 0 to keep serving, or the exit code a chaos action demands.
  // Chaos actions *return* instead of _exit so the in-process run_cli
  // tests observe them exactly like a forked worker's exit status.
  const auto run_job = [&](const runtime::WireJob& job, int schema) -> int {
    const auto action = runtime::chaos_action(chaos, total_jobs + 1, job.index);
    if (action.mode == runtime::ChaosSpec::Mode::kPoison) {
      return 13;  // die on sight: no answer, no summary, every time
    }
    if (action.mode == runtime::ChaosSpec::Mode::kHang) {
      std::this_thread::sleep_for(std::chrono::milliseconds(action.ms));
    }
    std::string answer;
    try {
      const auto g = port::from_port_graph_string(job.graph_text);
      const auto algorithm = algo::algorithm_from_token(job.algorithm);
      if (!algorithm) {
        throw InvalidArgument("worker: unknown algorithm token '" +
                              job.algorithm + "'");
      }
      const auto factory = algo::make_factory(*algorithm, job.param);
      runtime::RunOptions options;
      options.max_rounds = job.max_rounds;
      options.exec.threads = job.threads;
      options.exec.plan_cache = &cache;
      options.exec.async = job.async;
      const auto result = runtime::run_synchronous(g, *factory, options);
      answer = runtime::encode_wire_result(job.index, result, schema);
    } catch (const std::exception& e) {
      // Any job failure — eds::Error or std::bad_alloc alike — becomes an
      // error line for exactly that job, matching the in-process backend's
      // catch-everything per-job semantics.
      answer = runtime::encode_wire_error(job.index, e.what(), schema);
    }
    ++total_jobs;
    switch (action.mode) {
      case runtime::ChaosSpec::Mode::kGarbage:
        // The real answer is swallowed; the parent reads a non-protocol
        // line, kills this worker, and retries the job elsewhere.
        out << "!! chaos garbage in place of job " << job.index << '\n';
        out.flush();
        break;
      case runtime::ChaosSpec::Mode::kSlow: {
        // One answer, two flushes: exercises the parent's partial-line
        // buffering without breaking protocol.
        const std::size_t half = answer.size() / 2;
        out << answer.substr(0, half);
        out.flush();
        std::this_thread::sleep_for(std::chrono::milliseconds(action.ms));
        out << answer.substr(half) << '\n';
        out.flush();
        break;
      }
      case runtime::ChaosSpec::Mode::kExitMid:
        // Half a frame, then death: the parent sees a truncated trailing
        // line at EOF and reports it in the retry diagnostics.
        out << answer.substr(0, answer.size() / 2);
        out.flush();
        return 11;
      default:
        out << answer << '\n';
        out.flush();
        break;
    }
    if (action.mode == runtime::ChaosSpec::Mode::kCrash) {
      return 7;  // historical --fail-after status: die without a summary
    }
    return 0;
  };

  std::string line;
  std::size_t line_no = 0;
  int mode_schema = 0;  ///< locked by the first line (0 = nothing seen yet)
  bool framed = false;
  bool batch_open = false;
  std::uint64_t batch_id = 0;
  std::uint64_t batch_jobs = 0;
  runtime::PlanCache::Stats batch_base;  // cache counters at batch_begin
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    runtime::ParentLine parsed;
    try {
      parsed = runtime::decode_parent_line(line);
    } catch (const Error& e) {
      // A malformed line is a protocol failure, not a job failure: die
      // loudly — naming the line and a snippet of what arrived — and let
      // the parent handle this shard's unfinished jobs.
      err << "worker: malformed parent "
          << runtime::detail::describe_wire_line(line_no, line) << ": "
          << e.what() << '\n';
      return 2;
    }
    if (mode_schema == 0) {
      mode_schema = parsed.schema;
      framed = parsed.kind == runtime::ParentLine::Kind::kBatchBegin;
    }
    switch (parsed.kind) {
      case runtime::ParentLine::Kind::kBatchBegin:
        if (!framed || batch_open) {
          err << "worker: unexpected batch_begin\n";
          return 2;
        }
        batch_open = true;
        batch_id = parsed.batch_id;
        batch_jobs = 0;
        batch_base = cache.stats();
        break;
      case runtime::ParentLine::Kind::kJob:
        if (framed && !batch_open) {
          err << "worker: job line outside a batch\n";
          return 2;
        }
        if (const int rc = run_job(parsed.job, framed
                                                   ? runtime::kWireSchemaVersion
                                                   : mode_schema);
            rc != 0) {
          return rc;  // a chaos action fired: die as instructed
        }
        ++batch_jobs;
        break;
      case runtime::ParentLine::Kind::kBatchEnd: {
        if (!framed || !batch_open || parsed.batch_id != batch_id) {
          err << "worker: unexpected batch_end\n";
          return 2;
        }
        const auto now = cache.stats();
        runtime::WorkerSummary summary;
        summary.batch_id = batch_id;
        summary.jobs = batch_jobs;
        summary.plans_compiled = now.misses - batch_base.misses;
        summary.plan_hits = now.hits - batch_base.hits;
        summary.total_jobs = total_jobs;
        summary.total_compiled = now.misses;
        summary.total_hits = now.hits;
        out << runtime::encode_worker_summary(summary) << '\n';
        out.flush();
        batch_open = false;
        break;
      }
    }
  }
  // Framed workers end on EOF with no trailing line (every batch already
  // got its summary); legacy single-batch workers summarize at EOF, in
  // the schema the parent spoke.
  if (framed) return 0;
  const auto stats = cache.stats();
  runtime::WorkerSummary summary;
  summary.jobs = total_jobs;
  summary.plans_compiled = stats.misses;
  summary.plan_hits = stats.hits;
  summary.total_jobs = total_jobs;
  summary.total_compiled = stats.misses;
  summary.total_hits = stats.hits;
  out << runtime::encode_worker_summary(
             summary,
             mode_schema == 0 ? runtime::kWireSchemaVersion : mode_schema)
      << '\n';
  out.flush();
  return 0;
}

int cmd_views(const Args& args, std::istream& in, std::ostream& out,
              std::ostream& err) {
  try {
    const auto g = port::read_port_graph(in);
    const auto classes =
        args.has("radius")
            ? port::view_classes(g, args.get_u64("radius", 0))
            : port::stable_view_classes(g);
    out << "classes: " << port::num_classes(classes) << '\n';
    for (port::NodeId v = 0; v < g.num_nodes(); ++v) {
      out << v << ": " << classes[v] << '\n';
    }
    return 0;
  } catch (const Error& e) {
    err << "views: " << e.what() << '\n';
    return 1;
  }
}

int cmd_table1(std::ostream& out) {
  out << "d  bound  measured(worst-case)  tight\n";
  for (port::Port d = 2; d <= 10; ++d) {
    const auto inst =
        d % 2 == 0 ? lb::even_lower_bound(d) : lb::odd_lower_bound(d);
    const auto algorithm = d % 2 == 0 ? algo::Algorithm::kPortOne
                                      : algo::Algorithm::kOddRegular;
    const auto outcome = algo::run_algorithm(inst.ported, algorithm,
                                             d % 2 == 0 ? 0 : d);
    const auto ratio = analysis::approximation_ratio(outcome.solution.size(),
                                                     inst.optimal.size());
    out << d << "  " << inst.forced_ratio << "  " << ratio << "  "
        << (ratio == inst.forced_ratio ? "yes" : "NO") << '\n';
  }
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::istream& in,
            std::ostream& out, std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    usage(out);
    return args.empty() ? 2 : 0;
  }
  const Args parsed(args);
  const auto& command = args[0];
  try {
    if (command == "generate") return cmd_generate(parsed, out, err);
    if (command == "solve") return cmd_solve(parsed, in, out, err);
    if (command == "lower-bound") return cmd_lower_bound(parsed, out, err);
    if (command == "run-portgraph") {
      return cmd_run_portgraph(parsed, in, out, err);
    }
    if (command == "sweep") return cmd_sweep(parsed, out, err);
    if (command == "worker") return cmd_worker(parsed, in, out, err);
    if (command == "views") return cmd_views(parsed, in, out, err);
    if (command == "table1") return cmd_table1(out);
  } catch (const std::exception& e) {
    err << command << ": " << e.what() << '\n';
    return 1;
  }
  err << "unknown command '" << command << "' (try 'edsim help')\n";
  return 2;
}

}  // namespace eds::cli
