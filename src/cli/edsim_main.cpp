// Entry point of the `edsim` command-line tool.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return eds::cli::run_cli(args, std::cin, std::cout, std::cerr);
}
