// The `edsim` command-line tool, as a testable library function.
//
// Subcommands:
//   generate <family> [args] [--seed S]      emit an edge list
//   solve [--algorithm A] [--ports P]
//         [--seed S] [--threads N]
//         [--exact] [--dot]                  read an edge list, run an
//                                            algorithm, report the solution
//   sweep <family> [--min N] [--max N]
//         [--d D] [--threads N]              fan a generator family across
//                                            the batch engine's thread pool
//   lower-bound <d>                          emit a Theorem 1/2 instance
//                                            (port-graph format + summary)
//   run-portgraph --algorithm A --param P    run on a raw port graph
//                 [--threads N]              (multigraphs welcome)
//   views [--radius t]                       view equivalence classes of a
//                                            port graph
//   table1                                   print the measured Table 1
//   help                                     usage
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace eds::cli {

/// Runs one CLI invocation; `args` excludes the program name.  Reads graph
/// input from `in`, writes results to `out` and diagnostics to `err`.
/// Returns the process exit code.
[[nodiscard]] int run_cli(const std::vector<std::string>& args,
                          std::istream& in, std::ostream& out,
                          std::ostream& err);

}  // namespace eds::cli
