#include "algo/port_one.hpp"

namespace eds::algo {

void PortOneProgram::start(port::Port degree) {
  degree_ = degree;
  if (degree_ == 0) halted_ = true;  // isolated node: empty output
}

void PortOneProgram::send(runtime::Round, std::span<runtime::Message> out) {
  for (port::Port i = 1; i <= degree_; ++i) {
    out[i - 1] = runtime::msg(kTagHello, static_cast<std::int32_t>(i),
                              static_cast<std::int32_t>(degree_));
  }
}

void PortOneProgram::receive(runtime::Round,
                             std::span<const runtime::Message> in) {
  for (port::Port i = 1; i <= degree_; ++i) {
    const auto remote = static_cast<port::Port>(in[i - 1].arg[0]);
    if (i == 1 || remote == 1) output_.push_back(i);
  }
  halted_ = true;
}

}  // namespace eds::algo
