#include "algo/central.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "util/error.hpp"

namespace eds::algo {

OddRegularTrace central_odd_regular(const port::PortedGraph& pg) {
  const auto& g = pg.graph();
  const auto d = static_cast<port::Port>(g.max_degree());
  graph::EdgeSet dset(g.num_edges());
  std::vector<bool> covered(g.num_nodes(), false);

  // Phase I: for each (i, j) lexicographically, add every e in M(i, j)
  // unless both endpoints are covered.
  for (port::Port i = 1; i <= d; ++i) {
    for (port::Port j = 1; j <= d; ++j) {
      const auto mij = port::matching_m(pg, i, j);
      // Snapshot semantics: decisions within a step read the pre-step state;
      // M(i, j) is a matching, so reading live state is equivalent.
      for (const auto e : mij.to_vector()) {
        const auto& edge = g.edge(e);
        if (covered[edge.u] && covered[edge.v]) continue;
        dset.insert(e);
        covered[edge.u] = covered[edge.v] = true;
      }
    }
  }
  OddRegularTrace trace{dset, dset};

  // Phase II: remove e in D ∩ M(i, j) when both endpoints are covered by
  // D \ {e}.  Within a step, members of a matching have disjoint endpoints,
  // so the pre-step snapshot equals the live state for the tested nodes.
  auto set_degree = [&](graph::NodeId v) {
    std::size_t deg = 0;
    for (const auto& inc : g.incidences(v)) {
      if (trace.after_phase2.contains(inc.edge)) ++deg;
    }
    return deg;
  };
  for (port::Port i = 1; i <= d; ++i) {
    for (port::Port j = 1; j <= d; ++j) {
      const auto mij = port::matching_m(pg, i, j);
      std::vector<graph::EdgeId> to_remove;
      for (const auto e : mij.to_vector()) {
        if (!trace.after_phase2.contains(e)) continue;
        const auto& edge = g.edge(e);
        if (set_degree(edge.u) >= 2 && set_degree(edge.v) >= 2) {
          to_remove.push_back(e);
        }
      }
      for (const auto e : to_remove) trace.after_phase2.erase(e);
    }
  }
  return trace;
}

graph::EdgeSet central_port_one(const port::PortedGraph& pg) {
  const auto& g = pg.graph();
  graph::EdgeSet out(g.num_edges());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) >= 1) out.insert(pg.edge_at(v, 1));
  }
  return out;
}

namespace {

/// One proposer/acceptor sweep shared by the phase II and phase III mirrors.
/// `eligible[v]` lists v's proposal ports in increasing order (empty when v
/// does not propose); `may_accept(v)` gates the acceptor role; `on_match`
/// commits an accepted proposal (proposer, proposer_port).  Runs `slots`
/// slots, mirroring the distributed 2-rounds-per-slot schedule.
void proposal_sweep(
    const port::PortedGraph& pg,
    std::vector<std::vector<port::Port>> eligible, port::Port slots,
    const std::function<bool(graph::NodeId)>& may_accept,
    const std::function<void(graph::NodeId, port::Port)>& on_match) {
  const auto& g = pg.graph();
  const std::size_t n = g.num_nodes();
  std::vector<std::size_t> cursor(n, 0);
  std::vector<bool> accepted_out(n, false);
  std::vector<bool> accepted_in(n, false);

  for (port::Port slot = 1; slot <= slots; ++slot) {
    // Propose half: collect (proposer, proposer_port) per target node.
    struct Incoming {
      graph::NodeId from;
      port::Port from_port;
      port::Port at_port;  // the target's own port towards the proposer
    };
    std::vector<std::vector<Incoming>> inbox(n);
    std::vector<graph::NodeId> proposers;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (accepted_out[v] || cursor[v] >= eligible[v].size()) continue;
      const auto p = eligible[v][cursor[v]];
      const auto partner = pg.ports().partner(v, p);
      inbox[partner.node].push_back({v, p, partner.port});
      proposers.push_back(v);
    }

    // Respond half: each eligible acceptor takes its smallest-port proposal.
    std::vector<bool> accepted_this_slot(n, false);
    for (graph::NodeId u = 0; u < n; ++u) {
      if (inbox[u].empty() || accepted_in[u] || !may_accept(u)) continue;
      const auto best = std::min_element(
          inbox[u].begin(), inbox[u].end(),
          [](const Incoming& a, const Incoming& b) {
            return a.at_port < b.at_port;
          });
      accepted_in[u] = true;
      accepted_out[best->from] = true;
      accepted_this_slot[best->from] = true;
      on_match(best->from, best->from_port);
    }
    // Rejected proposers advance to their next eligible port.
    for (const auto v : proposers) {
      if (!accepted_out[v]) {
        ++cursor[v];
      } else if (!accepted_this_slot[v]) {
        // accepted in an earlier slot: unreachable (such nodes don't propose)
        EDS_ENSURE(false, "proposal_sweep: stale proposer state");
      }
    }
  }
}

}  // namespace

BoundedDegreeTrace central_bounded_degree(const port::PortedGraph& pg,
                                          port::Port max_degree) {
  const auto& g = pg.graph();
  const port::Port delta =
      max_degree % 2 == 1 ? max_degree : max_degree + 1;  // A(2k) = A(2k+1)
  const std::size_t n = g.num_nodes();

  BoundedDegreeTrace trace{graph::EdgeSet(g.num_edges()),
                           graph::EdgeSet(g.num_edges()),
                           graph::EdgeSet(g.num_edges()),
                           graph::EdgeSet(g.num_edges())};
  std::vector<bool> m_covered(n, false);

  // Phase I: M(i, j) sweep; add only when *neither* endpoint is covered.
  for (port::Port i = 1; i <= delta; ++i) {
    for (port::Port j = 1; j <= delta; ++j) {
      for (const auto e : port::matching_m(pg, i, j).to_vector()) {
        const auto& edge = g.edge(e);
        if (m_covered[edge.u] || m_covered[edge.v]) continue;
        trace.m_after_phase1.insert(e);
        m_covered[edge.u] = m_covered[edge.v] = true;
      }
    }
  }
  trace.m_after_phase2 = trace.m_after_phase1;

  // Phase II: for each degree class i, a proposal-based maximal matching on
  // B_i (edges {u, v}: deg u < deg v = i, both M-free at the step's start
  // and live during it — identical to the distributed semantics).
  for (port::Port i = 2; i <= delta; ++i) {
    std::vector<std::vector<port::Port>> eligible(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (g.degree(v) != i || m_covered[v]) continue;
      for (port::Port p = 1; p <= g.degree(v); ++p) {
        const auto u = g.edge(pg.edge_at(v, p)).other(v);
        if (g.degree(u) < i) eligible[v].push_back(p);
      }
    }
    proposal_sweep(
        pg, std::move(eligible), delta,
        [&m_covered](graph::NodeId u) { return !m_covered[u]; },
        [&](graph::NodeId v, port::Port p) {
          const auto e = pg.edge_at(v, p);
          trace.m_after_phase2.insert(e);
          m_covered[g.edge(e).u] = m_covered[g.edge(e).v] = true;
        });
  }

  // Phase III: double-cover 2-matching on H (both endpoints M-free).
  // Every H-node plays both roles; the acceptor role always accepts.
  std::vector<std::vector<port::Port>> eligible(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (m_covered[v]) continue;
    for (port::Port p = 1; p <= g.degree(v); ++p) {
      const auto u = g.edge(pg.edge_at(v, p)).other(v);
      if (!m_covered[u]) eligible[v].push_back(p);
    }
  }
  proposal_sweep(
      pg, std::move(eligible), delta,
      [&m_covered](graph::NodeId u) { return !m_covered[u]; },
      [&](graph::NodeId v, port::Port p) { trace.p.insert(pg.edge_at(v, p)); });

  trace.solution = trace.m_after_phase2.set_union(trace.p);
  return trace;
}

}  // namespace eds::algo
