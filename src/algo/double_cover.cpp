#include "algo/double_cover.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace eds::algo {

void DoubleCoverEngine::init(port::Port degree,
                             std::vector<port::Port> eligible) {
  degree_ = degree;
  eligible_ = std::move(eligible);
  EDS_ENSURE(std::is_sorted(eligible_.begin(), eligible_.end()),
             "DoubleCoverEngine: eligible ports must be sorted");
  cursor_ = 0;
  proposal_outstanding_ = false;
  accepted_out_ = false;
  accepted_in_ = 0;
  p_ports_.clear();
}

void DoubleCoverEngine::send_propose(std::span<runtime::Message> out) {
  proposal_outstanding_ = false;
  if (accepted_out_ || cursor_ >= eligible_.size()) return;
  const port::Port target = eligible_[cursor_];
  out[target - 1] = runtime::msg(kTagPropose);
  proposal_outstanding_ = true;
}

void DoubleCoverEngine::receive_propose(
    std::span<const runtime::Message> in) {
  proposals_in_.clear();
  for (port::Port p = 1; p <= degree_; ++p) {
    if (in[p - 1].tag == kTagPropose) proposals_in_.push_back(p);
  }
}

void DoubleCoverEngine::send_respond(std::span<runtime::Message> out) {
  for (const port::Port p : proposals_in_) {
    out[p - 1] = runtime::msg(kTagReject);
  }
  if (accepted_in_ == 0 && !proposals_in_.empty()) {
    // Accept the first proposal, breaking ties with port numbers.
    const port::Port chosen = proposals_in_.front();  // ports are ascending
    out[chosen - 1] = runtime::msg(kTagAccept);
    accepted_in_ = chosen;
    p_ports_.insert(chosen);
  }
}

void DoubleCoverEngine::receive_respond(
    std::span<const runtime::Message> in) {
  if (!proposal_outstanding_) return;
  const port::Port target = eligible_[cursor_];
  const auto& reply = in[target - 1];
  EDS_ENSURE(reply.tag == kTagAccept || reply.tag == kTagReject,
             "DoubleCoverEngine: proposal received no response");
  if (reply.tag == kTagAccept) {
    accepted_out_ = true;
    p_ports_.insert(target);
  } else {
    ++cursor_;
  }
  proposal_outstanding_ = false;
}

DoubleCoverProgram::DoubleCoverProgram(port::Port max_degree)
    : max_degree_(max_degree) {
  if (max_degree_ == 0) {
    throw InvalidArgument("DoubleCoverProgram: max degree must be positive");
  }
}

void DoubleCoverProgram::start(port::Port degree) {
  if (degree > max_degree_) {
    throw ExecutionError(
        "DoubleCoverProgram: node degree exceeds the family parameter");
  }
  std::vector<port::Port> all(degree);
  for (port::Port i = 1; i <= degree; ++i) all[i - 1] = i;
  engine_.init(degree, std::move(all));
  if (degree == 0) halted_ = true;
}

void DoubleCoverProgram::send(runtime::Round round,
                              std::span<runtime::Message> out) {
  if (round % 2 == 1) {
    engine_.send_propose(out);
  } else {
    engine_.send_respond(out);
  }
}

void DoubleCoverProgram::receive(runtime::Round round,
                                 std::span<const runtime::Message> in) {
  if (round % 2 == 1) {
    engine_.receive_propose(in);
  } else {
    engine_.receive_respond(in);
  }
  if (round >= schedule_length(max_degree_)) halted_ = true;
}

std::vector<port::Port> DoubleCoverProgram::output() const {
  return {engine_.p_ports().begin(), engine_.p_ports().end()};
}

}  // namespace eds::algo
