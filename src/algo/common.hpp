// Shared machinery for the distributed EDS algorithms.
//
// Message tags, and the local label bookkeeping every node performs in the
// first two rounds: learning the remote port number (and degree) behind each
// of its ports, deriving label pairs, its distinguishable neighbour
// (Section 5), and the per-step role in the M(i, j) schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/message.hpp"
#include "runtime/program.hpp"

namespace eds::algo {

using port::Port;
using runtime::Message;
using runtime::Round;

/// Message tags shared by the algorithms (0 is reserved for silence).
enum Tag : std::int32_t {
  kTagHello = 1,    ///< arg0 = sender's port number, arg1 = sender's degree
  kTagDnClaim = 2,  ///< "you are my distinguishable neighbour"
  kTagStatus = 3,   ///< arg0 = covered bit for the current schedule step
  kTagMStatus = 4,  ///< arg0 = 1 when the sender is covered by M
  kTagPropose = 5,  ///< matching proposal
  kTagAccept = 6,   ///< proposal accepted
  kTagReject = 7,   ///< proposal rejected
};

/// Per-node label bookkeeping (the local view of Section 5).
struct LabelView {
  Port degree = 0;
  std::vector<Port> remote_port;   ///< remote_port[i-1] = l_G(u, v) for port i
  std::vector<Port> remote_degree; ///< remote_degree[i-1] = d_G(u) for port i
  Port dn_port = 0;                ///< my port to my distinguishable
                                   ///< neighbour; 0 when I have none
  std::vector<bool> dn_claimed;    ///< dn_claimed[i-1]: the neighbour behind
                                   ///< port i declared me its DN

  /// Record the hello message received from port i.
  void record_hello(Port i, const Message& m);

  /// Record the (possible) DN claim received from port i.
  void record_claim(Port i, const Message& m);

  /// Computes dn_port from the remote ports: the lowest port carrying a
  /// label pair that no other incident edge shares (0 when none exists —
  /// possible only for even degree, by Lemma 1).
  void compute_dn();

  /// My active port for schedule step (i, j) of the M(i, j) sweep, or 0 when
  /// I am not an endpoint of an M(i, j) edge.  A node is active either as
  /// the "v" side (my DN edge uses my port i and the remote port is j) or as
  /// the "u" side (the neighbour behind my port j declared me its DN and its
  /// port is i).  Lemma 2 guarantees the two cannot name different ports;
  /// violation throws InternalError.
  [[nodiscard]] Port mij_active_port(Port i, Port j) const;
};

}  // namespace eds::algo
