// Centralised mirrors of the distributed algorithms.
//
// These run the exact same schedules as the node programs but with global
// visibility, exposing intermediate state (the phase snapshots of Figures 8
// and 9).  They serve two purposes: figure regeneration, and as independent
// oracles — the test suite asserts that the distributed executions produce
// bit-identical solutions.
#pragma once

#include "graph/edge_set.hpp"
#include "port/labels.hpp"
#include "port/ported_graph.hpp"

namespace eds::algo {

/// Intermediate and final state of Theorem 4's algorithm.
struct OddRegularTrace {
  graph::EdgeSet after_phase1;  ///< the spanning forest / edge cover
  graph::EdgeSet after_phase2;  ///< the final star forest D
};

/// Centralised mirror of Theorem 4 (phases I and II over the M(i, j)
/// schedule in lexicographic order).  Matches OddRegularProgram exactly.
[[nodiscard]] OddRegularTrace central_odd_regular(const port::PortedGraph& pg);

/// Centralised mirror of Theorem 3: all edges touching a port number 1.
[[nodiscard]] graph::EdgeSet central_port_one(const port::PortedGraph& pg);

/// Intermediate and final state of Theorem 5's algorithm.
struct BoundedDegreeTrace {
  graph::EdgeSet m_after_phase1;  ///< the matching M after the M(i,j) sweep
  graph::EdgeSet m_after_phase2;  ///< M after the B_i proposal rounds
  graph::EdgeSet p;               ///< the 2-matching P from phase III
  graph::EdgeSet solution;        ///< D = M ∪ P
};

/// Centralised mirror of Theorem 5's A(∆) (the family parameter is
/// normalised to odd internally, matching BoundedDegreeProgram).
[[nodiscard]] BoundedDegreeTrace central_bounded_degree(
    const port::PortedGraph& pg, port::Port max_degree);

}  // namespace eds::algo
