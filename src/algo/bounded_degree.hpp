// Theorem 5: the family A(∆) achieving α(2k) = α(2k+1) = 4 − 1/k for
// graphs of maximum degree ∆, in O(∆²) rounds.
//
// The factory normalises the family parameter to ∆' = 2k+1 (the paper sets
// A(2k) = A(2k+1)); ∆ = 1 is served by AllEdgesProgram instead.  All nodes
// derive the same round schedule from ∆':
//
//   round 1                     — hello: remote ports and degrees
//   round 2                     — distinguishable-neighbour claims
//   rounds 3 … 2+∆'²            — phase I: M(i, j) sweep; add e to the
//                                 matching M iff *neither* endpoint is
//                                 covered by M
//   next 2∆'(∆'−1) rounds       — phase II: for i = 2 … ∆' sequentially,
//                                 proposal-based maximal matching on the
//                                 bipartite graph B_i of edges {u, v} with
//                                 deg u < deg v = i and both ends M-free
//                                 (degree-i nodes propose in increasing port
//                                 order, smaller-degree nodes accept their
//                                 first proposal); ∆' slots of 2 rounds each
//   one round                   — M-coverage broadcast
//   final 2∆' rounds            — phase III: double-cover 2-matching P on
//                                 the subgraph H of edges with both ends
//                                 M-free
//
// Output: D = M ∪ P (my M port, if any, plus my P ports).
#pragma once

#include <memory>
#include <vector>

#include "algo/common.hpp"
#include "algo/double_cover.hpp"
#include "runtime/program.hpp"

namespace eds::algo {

/// Aggregate phase statistics collected across all nodes of one execution
/// (for the Figure 9 phase portrait).  Each M edge is reported twice (once
/// per endpoint), as is each P edge, so |M| = m_port_claims / 2 and
/// |P| = p_port_claims / 2.
struct BoundedPhaseStats {
  std::size_t m_port_claims = 0;
  std::size_t p_port_claims = 0;

  [[nodiscard]] std::size_t matching_size() const { return m_port_claims / 2; }
  [[nodiscard]] std::size_t two_matching_size() const {
    return p_port_claims / 2;
  }
};

class BoundedDegreeProgram final : public runtime::NodeProgram {
 public:
  /// `max_degree` is the family parameter ∆ >= 2 (for ∆ = 1 use
  /// AllEdgesProgram); it is normalised to the next odd value internally.
  /// `sink`, when set, receives per-node phase statistics at halt time.
  explicit BoundedDegreeProgram(
      port::Port max_degree,
      std::shared_ptr<BoundedPhaseStats> sink = nullptr);

  void start(port::Port degree) override;
  void send(runtime::Round round, std::span<runtime::Message> out) override;
  void receive(runtime::Round round,
               std::span<const runtime::Message> in) override;
  [[nodiscard]] bool halted() const override { return halted_; }
  [[nodiscard]] std::vector<port::Port> output() const override;

  /// The normalised (odd) parameter ∆' = 2k+1.
  [[nodiscard]] static port::Port normalised_delta(port::Port max_degree) {
    return max_degree % 2 == 1 ? max_degree : max_degree + 1;
  }

  /// Total schedule length for the (normalised) parameter.
  [[nodiscard]] static runtime::Round schedule_length(port::Port max_degree) {
    const auto d = static_cast<runtime::Round>(normalised_delta(max_degree));
    return 3 + 3 * d * d;  // 2 + d² + 2d(d−1) + 1 + 2d
  }

 private:
  // Round classification.
  struct Step {
    enum class Kind {
      kHello,
      kClaim,
      kPhase1,
      kPhase2,
      kMStatus,
      kPhase3,
    };
    Kind kind = Kind::kHello;
    port::Port i = 0;  // phase I: pair row;  phase II: degree class
    port::Port j = 0;  // phase I: pair column
    bool respond_half = false;  // phases II/III: propose vs respond half
    bool block_start = false;   // phase II: first round of a degree block
  };
  [[nodiscard]] Step step_for(runtime::Round round) const;

  void phase2_send(const Step& step, std::span<runtime::Message> out);
  void phase2_receive(const Step& step, std::span<const runtime::Message> in);

  port::Port delta_;        // normalised ∆' (odd)
  LabelView view_;
  port::Port m_port_ = 0;   // my M edge's port (0 = M-free)
  port::Port active_port_ = 0;  // phase I step state

  // Phase II proposer state (valid within one degree block).
  std::vector<port::Port> p2_eligible_;
  std::size_t p2_cursor_ = 0;
  bool p2_outstanding_ = false;
  std::vector<port::Port> p2_proposals_in_;

  // Phase III.
  std::vector<bool> remote_m_covered_;
  DoubleCoverEngine engine_;
  bool engine_ready_ = false;

  std::shared_ptr<BoundedPhaseStats> sink_;
  bool halted_ = false;
};

class BoundedDegreeFactory final : public runtime::ProgramFactory {
 public:
  explicit BoundedDegreeFactory(
      port::Port max_degree,
      std::shared_ptr<BoundedPhaseStats> sink = nullptr)
      : max_degree_(max_degree), sink_(std::move(sink)) {}
  [[nodiscard]] std::unique_ptr<runtime::NodeProgram> create() const override {
    return std::make_unique<BoundedDegreeProgram>(max_degree_, sink_);
  }
  [[nodiscard]] std::string name() const override {
    return "bounded-degree(delta=" + std::to_string(max_degree_) + ")";
  }

 private:
  port::Port max_degree_;
  std::shared_ptr<BoundedPhaseStats> sink_;
};

}  // namespace eds::algo
