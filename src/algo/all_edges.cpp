#include "algo/all_edges.hpp"

// Header-only implementation; this translation unit anchors the vtable.
