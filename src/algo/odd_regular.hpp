// Theorem 4: the O(d²)-time factor 4 − 6/(d+1) algorithm for d-regular
// graphs with d odd.
//
// Schedule (all nodes compute it locally from d, so no termination
// detection is needed):
//   round 1            — hello: learn the remote port behind each port
//                        (label pairs), then pick the distinguishable
//                        neighbour (DN; exists for every node since d is
//                        odd — Lemma 1)
//   round 2            — tell the DN it was chosen
//   rounds 3 … 2+d²    — phase I: sweep pairs (i, j) lexicographically; the
//                        two endpoints of each M(i, j) edge exchange covered
//                        bits and add the edge unless both are covered
//                        (the growing D is a forest and an edge cover)
//   rounds 3+d² … 2+2d² — phase II: same sweep; an edge e ∈ D ∩ M(i, j) is
//                        removed when both endpoints are covered by D∖{e}
//                        (afterwards D is a star forest, |D| ≤ d|V|/(d+1))
// Both endpoints decide from the same exchanged bits, so membership of D
// stays consistent; within one step M(i, j) is a matching (Lemma 2), so the
// parallel decisions do not interfere.
#pragma once

#include <set>
#include <vector>

#include "algo/common.hpp"
#include "runtime/program.hpp"

namespace eds::algo {

/// The order in which the (i, j) pairs are swept.  The paper processes them
/// "in an arbitrary order" — correctness must not depend on the choice, and
/// the test suite verifies the guarantee under every order here.  All nodes
/// must of course agree on the order (it is a family parameter).
enum class PairOrder {
  kLexicographic,  ///< (1,1), (1,2), ..., (d,d)
  kDiagonal,       ///< sorted by (i+j, i): the anti-diagonal sweep
  kReverse,        ///< (d,d), (d,d-1), ..., (1,1)
};

/// The d² pairs (i, j) in the given order.
[[nodiscard]] std::vector<std::pair<port::Port, port::Port>> pair_schedule(
    port::Port d, PairOrder order);

class OddRegularProgram final : public runtime::NodeProgram {
 public:
  /// `d` is the family parameter; every node's degree must equal it and it
  /// must be odd.
  explicit OddRegularProgram(port::Port d,
                             PairOrder order = PairOrder::kLexicographic);

  void start(port::Port degree) override;
  void send(runtime::Round round, std::span<runtime::Message> out) override;
  void receive(runtime::Round round,
               std::span<const runtime::Message> in) override;
  [[nodiscard]] bool halted() const override { return halted_; }
  [[nodiscard]] std::vector<port::Port> output() const override;

  /// Total rounds the schedule takes for parameter d.
  [[nodiscard]] static runtime::Round schedule_length(port::Port d) {
    return 2 + 2 * static_cast<runtime::Round>(d) * d;
  }

 private:
  struct Step {
    enum class Phase { kSetup, kAdd, kRemove, kDone };
    Phase phase = Phase::kSetup;
    port::Port i = 0;
    port::Port j = 0;
  };
  [[nodiscard]] Step step_for(runtime::Round round) const;

  port::Port d_;
  std::vector<std::pair<port::Port, port::Port>> schedule_;
  LabelView view_;
  std::set<port::Port> d_ports_;  // ports of my incident D edges
  bool covered_ = false;          // incident to some D edge
  port::Port active_port_ = 0;    // active port of the current step
  bool halted_ = false;
};

class OddRegularFactory final : public runtime::ProgramFactory {
 public:
  explicit OddRegularFactory(port::Port d,
                             PairOrder order = PairOrder::kLexicographic)
      : d_(d), order_(order) {}
  [[nodiscard]] std::unique_ptr<runtime::NodeProgram> create() const override {
    return std::make_unique<OddRegularProgram>(d_, order_);
  }
  [[nodiscard]] std::string name() const override {
    return "odd-regular(d=" + std::to_string(d_) + ")";
  }

 private:
  port::Port d_;
  PairOrder order_;
};

}  // namespace eds::algo
