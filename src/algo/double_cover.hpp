// The bipartite-double-cover 2-matching algorithm (Polishchuk–Suomela,
// IPL 2009), used as phase III of the Theorem 5 algorithm and exposed here
// as a standalone distributed algorithm.
//
// Conceptually each node v is split into a proposer copy and an acceptor
// copy (the bipartite double cover), and a maximal matching of the double
// cover is computed by proposing: on odd rounds every unsatisfied proposer
// offers its next port in increasing order; on even rounds every acceptor
// that has never accepted takes the smallest-port proposal it received and
// rejects the rest.  Mapping the matching back to the original graph yields
// a 2-matching P that dominates every edge; the P-covered nodes form a
// 3-approximate vertex cover.
#pragma once

#include <set>
#include <vector>

#include "algo/common.hpp"
#include "runtime/program.hpp"

namespace eds::algo {

/// The per-node proposer/acceptor state machine.  The host program maps its
/// global rounds onto proposal slots: slot s = rounds (2s−1, 2s) of the
/// engine, s = 1, 2, ..., slots().  Eligibility of ports is fixed at init.
class DoubleCoverEngine {
 public:
  /// `eligible` lists the ports this node may propose on / accept from, in
  /// increasing order.  `degree` is the node degree (output array width).
  void init(port::Port degree, std::vector<port::Port> eligible);

  /// Number of slots needed to exhaust every proposal list of width <= cap.
  [[nodiscard]] static runtime::Round slots_for(port::Port cap) {
    return cap;
  }

  /// Round 2s−1 (propose half), send side.
  void send_propose(std::span<runtime::Message> out);

  /// Round 2s−1, receive side: remember the incoming proposals.
  void receive_propose(std::span<const runtime::Message> in);

  /// Round 2s (respond half), send side: accept one proposal, reject rest.
  void send_respond(std::span<runtime::Message> out);

  /// Round 2s, receive side: learn the fate of my outstanding proposal.
  void receive_respond(std::span<const runtime::Message> in);

  /// Ports of my P edges (proposals of mine that were accepted, plus the
  /// proposal I accepted); at most two entries.
  [[nodiscard]] const std::set<port::Port>& p_ports() const noexcept {
    return p_ports_;
  }

 private:
  port::Port degree_ = 0;
  std::vector<port::Port> eligible_;
  std::size_t cursor_ = 0;          // next eligible port to propose on
  bool proposal_outstanding_ = false;
  bool accepted_out_ = false;       // one of my proposals was accepted
  port::Port accepted_in_ = 0;      // the port whose proposal I accepted
  std::vector<port::Port> proposals_in_;  // proposals seen this slot
  std::set<port::Port> p_ports_;
};

/// Standalone 2-matching algorithm: runs the engine over all ports.  The
/// family parameter ∆ (max degree) fixes the common schedule length.
class DoubleCoverProgram final : public runtime::NodeProgram {
 public:
  explicit DoubleCoverProgram(port::Port max_degree);

  void start(port::Port degree) override;
  void send(runtime::Round round, std::span<runtime::Message> out) override;
  void receive(runtime::Round round,
               std::span<const runtime::Message> in) override;
  [[nodiscard]] bool halted() const override { return halted_; }
  [[nodiscard]] std::vector<port::Port> output() const override;

  [[nodiscard]] static runtime::Round schedule_length(port::Port max_degree) {
    return 2 * DoubleCoverEngine::slots_for(max_degree);
  }

 private:
  port::Port max_degree_;
  DoubleCoverEngine engine_;
  bool halted_ = false;
};

class DoubleCoverFactory final : public runtime::ProgramFactory {
 public:
  explicit DoubleCoverFactory(port::Port max_degree)
      : max_degree_(max_degree) {}
  [[nodiscard]] std::unique_ptr<runtime::NodeProgram> create() const override {
    return std::make_unique<DoubleCoverProgram>(max_degree_);
  }
  [[nodiscard]] std::string name() const override {
    return "double-cover-2-matching(max_deg=" + std::to_string(max_degree_) +
           ")";
  }

 private:
  port::Port max_degree_;
};

}  // namespace eds::algo
