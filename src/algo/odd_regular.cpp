#include "algo/odd_regular.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace eds::algo {

std::vector<std::pair<port::Port, port::Port>> pair_schedule(port::Port d,
                                                             PairOrder order) {
  std::vector<std::pair<port::Port, port::Port>> pairs;
  pairs.reserve(static_cast<std::size_t>(d) * d);
  for (port::Port i = 1; i <= d; ++i) {
    for (port::Port j = 1; j <= d; ++j) pairs.emplace_back(i, j);
  }
  switch (order) {
    case PairOrder::kLexicographic:
      break;
    case PairOrder::kDiagonal:
      std::sort(pairs.begin(), pairs.end(),
                [](const auto& a, const auto& b) {
                  return std::pair(a.first + a.second, a.first) <
                         std::pair(b.first + b.second, b.first);
                });
      break;
    case PairOrder::kReverse:
      std::reverse(pairs.begin(), pairs.end());
      break;
  }
  return pairs;
}

OddRegularProgram::OddRegularProgram(port::Port d, PairOrder order)
    : d_(d), schedule_(pair_schedule(d, order)) {
  if (d_ % 2 == 0) {
    throw InvalidArgument("OddRegularProgram: d must be odd");
  }
}

void OddRegularProgram::start(port::Port degree) {
  if (degree != d_) {
    throw ExecutionError(
        "OddRegularProgram: node degree differs from the family parameter d");
  }
  view_.degree = degree;
  view_.remote_port.assign(degree, 0);
  view_.remote_degree.assign(degree, 0);
  view_.dn_claimed.assign(degree, false);
}

OddRegularProgram::Step OddRegularProgram::step_for(
    runtime::Round round) const {
  const auto d = static_cast<runtime::Round>(d_);
  if (round <= 2) return {Step::Phase::kSetup, 0, 0};
  if (round <= 2 + d * d) {
    const auto& [i, j] = schedule_[round - 3];  // 0-based step index
    return {Step::Phase::kAdd, i, j};
  }
  if (round <= 2 + 2 * d * d) {
    const auto& [i, j] = schedule_[round - 3 - d * d];
    return {Step::Phase::kRemove, i, j};
  }
  return {Step::Phase::kDone, 0, 0};
}

void OddRegularProgram::send(runtime::Round round,
                             std::span<runtime::Message> out) {
  const auto step = step_for(round);
  active_port_ = 0;
  if (round == 1) {
    for (port::Port i = 1; i <= view_.degree; ++i) {
      out[i - 1] = runtime::msg(kTagHello, static_cast<std::int32_t>(i),
                                static_cast<std::int32_t>(view_.degree));
    }
    return;
  }
  if (round == 2) {
    // By Lemma 1 every odd-degree node has a distinguishable neighbour.
    EDS_ENSURE(view_.dn_port != 0,
               "odd-degree node without distinguishable neighbour");
    out[view_.dn_port - 1] = runtime::msg(kTagDnClaim);
    return;
  }

  if (step.phase == Step::Phase::kAdd) {
    active_port_ = view_.mij_active_port(step.i, step.j);
    if (active_port_ != 0) {
      out[active_port_ - 1] = runtime::msg(kTagStatus, covered_ ? 1 : 0);
    }
    return;
  }

  if (step.phase == Step::Phase::kRemove) {
    const auto candidate = view_.mij_active_port(step.i, step.j);
    if (candidate != 0 && d_ports_.count(candidate) > 0) {
      active_port_ = candidate;
      // Covered by D \ {e} iff I have another incident D edge.
      const bool covered_without = d_ports_.size() >= 2;
      out[active_port_ - 1] = runtime::msg(kTagStatus, covered_without ? 1 : 0);
    }
    return;
  }
}

void OddRegularProgram::receive(runtime::Round round,
                                std::span<const runtime::Message> in) {
  const auto step = step_for(round);
  if (round == 1) {
    for (port::Port i = 1; i <= view_.degree; ++i) {
      view_.record_hello(i, in[i - 1]);
    }
    view_.compute_dn();
    return;
  }
  if (round == 2) {
    for (port::Port i = 1; i <= view_.degree; ++i) {
      view_.record_claim(i, in[i - 1]);
    }
    return;
  }

  if (step.phase == Step::Phase::kAdd && active_port_ != 0) {
    const auto& their = in[active_port_ - 1];
    EDS_ENSURE(their.tag == kTagStatus,
               "phase I: expected a status message from the partner");
    const bool their_covered = their.arg[0] != 0;
    // "If both endpoints of e are already covered by D, we ignore e,
    //  otherwise we add e to D."
    if (!(covered_ && their_covered)) {
      d_ports_.insert(active_port_);
      covered_ = true;
    }
  }

  if (step.phase == Step::Phase::kRemove && active_port_ != 0) {
    const auto& their = in[active_port_ - 1];
    EDS_ENSURE(their.tag == kTagStatus,
               "phase II: expected a status message from the partner");
    const bool mine = d_ports_.size() >= 2;
    const bool theirs = their.arg[0] != 0;
    // "If both endpoints of e are covered by D \ {e}, remove e from D."
    if (mine && theirs) {
      d_ports_.erase(active_port_);
    }
  }

  if (round >= schedule_length(d_)) halted_ = true;
}

std::vector<port::Port> OddRegularProgram::output() const {
  return {d_ports_.begin(), d_ports_.end()};
}

}  // namespace eds::algo
