// The trivial algorithm for ∆ = 1 (Table 1, first bounded-degree row).
//
// In a graph of maximum degree 1 every component is an isolated node or a
// single edge, and the only edge dominating set containing each edge's
// component is the edge itself: outputting every port is optimal (ratio 1)
// and requires no communication.
#pragma once

#include "runtime/program.hpp"

namespace eds::algo {

class AllEdgesProgram final : public runtime::NodeProgram {
 public:
  void start(port::Port degree) override {
    degree_ = degree;
    halted_ = true;  // no communication needed
  }
  void send(runtime::Round, std::span<runtime::Message>) override {}
  void receive(runtime::Round, std::span<const runtime::Message>) override {}
  [[nodiscard]] bool halted() const override { return halted_; }
  [[nodiscard]] std::vector<port::Port> output() const override {
    std::vector<port::Port> out;
    for (port::Port i = 1; i <= degree_; ++i) out.push_back(i);
    return out;
  }

 private:
  port::Port degree_ = 0;
  bool halted_ = false;
};

class AllEdgesFactory final : public runtime::ProgramFactory {
 public:
  [[nodiscard]] std::unique_ptr<runtime::NodeProgram> create() const override {
    return std::make_unique<AllEdgesProgram>();
  }
  [[nodiscard]] std::string name() const override { return "all-edges"; }
};

}  // namespace eds::algo
