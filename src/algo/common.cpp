#include "algo/common.hpp"

#include <map>
#include <utility>

#include "util/error.hpp"

namespace eds::algo {

void LabelView::record_hello(Port i, const Message& m) {
  if (remote_port.size() != degree) {
    remote_port.assign(degree, 0);
    remote_degree.assign(degree, 0);
    dn_claimed.assign(degree, false);
  }
  EDS_ENSURE(m.tag == kTagHello, "LabelView: expected hello message");
  remote_port[i - 1] = static_cast<Port>(m.arg[0]);
  remote_degree[i - 1] = static_cast<Port>(m.arg[1]);
}

void LabelView::record_claim(Port i, const Message& m) {
  if (m.tag == kTagDnClaim) dn_claimed[i - 1] = true;
}

void LabelView::compute_dn() {
  // Label pair of the edge on port i is {i, remote_port[i-1]} (unordered).
  std::map<std::pair<Port, Port>, int> multiplicity;
  for (Port i = 1; i <= degree; ++i) {
    Port a = i;
    Port b = remote_port[i - 1];
    if (a > b) std::swap(a, b);
    ++multiplicity[{a, b}];
  }
  dn_port = 0;
  for (Port i = 1; i <= degree; ++i) {
    Port a = i;
    Port b = remote_port[i - 1];
    if (a > b) std::swap(a, b);
    if (multiplicity[{a, b}] == 1) {
      dn_port = i;
      break;
    }
  }
}

Port LabelView::mij_active_port(Port i, Port j) const {
  Port active = 0;
  // "v" side: my DN edge leaves through port i and arrives at remote port j.
  if (i <= degree && dn_port == i && remote_port[i - 1] == j) {
    active = i;
  }
  // "u" side: the edge on my port j comes from the claimant's port i.
  if (j <= degree && dn_claimed[j - 1] && remote_port[j - 1] == i) {
    EDS_ENSURE(active == 0 || active == j,
               "M(i,j) is not a matching at this node (Lemma 2 violated)");
    active = j;
  }
  return active;
}

}  // namespace eds::algo
