// High-level entry points: pick an algorithm, run it on a ported graph,
// validate the output, and return the solution with execution statistics.
//
// This is the public API a downstream user of the library is expected to
// call; everything else (programs, runner, verifiers) is available for
// finer-grained use.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/edge_set.hpp"
#include "port/ported_graph.hpp"
#include "runtime/outputs.hpp"
#include "runtime/runner.hpp"

namespace eds::algo {

/// The algorithms of the paper (plus the standalone phase III subroutine).
enum class Algorithm {
  kAllEdges,      ///< trivial ∆ = 1 algorithm (Table 1 row 3)
  kPortOne,       ///< Theorem 3: O(1), 4 − 2/d on d-regular graphs
  kOddRegular,    ///< Theorem 4: O(d²), 4 − 6/(d+1) on odd-d-regular graphs
  kBoundedDegree, ///< Theorem 5: O(∆²), 4 − 1/k on max-degree-∆ graphs
  kDoubleCover,   ///< Polishchuk–Suomela 2-matching (not an EDS by itself
                  ///< in general; dominates all edges and is a 2-matching)
};

[[nodiscard]] std::string algorithm_name(Algorithm a);

/// Stable machine-readable token for `a` ("port-one", "bounded-degree",
/// ...).  This is the CLI's --algorithm vocabulary and the `algorithm`
/// field of the process-shard wire protocol, so a worker subprocess can
/// rebuild the factory the parent meant.
[[nodiscard]] std::string algorithm_token(Algorithm a);

/// Inverse of algorithm_token; nullopt for an unknown token.
[[nodiscard]] std::optional<Algorithm> algorithm_from_token(
    const std::string& token);

/// Result of one distributed execution.
struct EdsOutcome {
  graph::EdgeSet solution;   ///< validated, internally consistent edge set
  runtime::RunStats stats;   ///< rounds and message counts
};

/// Builds the factory for `algorithm`; `param` is d for kOddRegular and ∆
/// for kBoundedDegree / kDoubleCover (ignored for the others).
[[nodiscard]] std::unique_ptr<runtime::ProgramFactory> make_factory(
    Algorithm algorithm, port::Port param = 0);

/// Resolves the `param == 0` default from the graph, exactly as
/// run_algorithm does internally: the d-regular degree for kOddRegular
/// (throws InvalidArgument when the graph is not regular), the max degree
/// for kBoundedDegree / kDoubleCover, `param` unchanged otherwise.  Callers
/// that build raw runtime::BatchJobs (e.g. the CLI's async sweep) use this
/// to construct the same factory run_algorithm would.
[[nodiscard]] port::Port resolved_param(const port::PortedGraph& pg,
                                        Algorithm algorithm,
                                        port::Port param = 0);

/// Runs `algorithm` on `pg` and returns the validated solution.
/// `param` defaults (0) resolve from the graph: d-regular degree for
/// kOddRegular, max degree for kBoundedDegree / kDoubleCover.  `exec`
/// selects the engine policy (ExecOptions{.threads = N}); the solution is
/// identical for every policy.  When `exec.plan_cache` is null the
/// process-wide `runtime::PlanCache::global()` is used, so repeated runs
/// on one graph compile its ExecutionPlan once.
[[nodiscard]] EdsOutcome run_algorithm(const port::PortedGraph& pg,
                                       Algorithm algorithm,
                                       port::Port param = 0,
                                       const runtime::ExecOptions& exec = {});

/// One job of a batch sweep; `graph` is non-owning and must outlive the
/// run_batch call.  `param` resolves exactly as in run_algorithm.
struct BatchItem {
  const port::PortedGraph* graph = nullptr;
  Algorithm algorithm = Algorithm::kBoundedDegree;
  port::Port param = 0;
};

/// Runs every item concurrently over a BatchRunner pool with `threads`
/// workers (0 = one per hardware thread) and returns the validated outcomes
/// in item order — deterministically identical for every thread count.
/// Plans are shared through `plan_cache` (null = PlanCache::global()), so
/// repeated items on one graph compile a single ExecutionPlan.
[[nodiscard]] std::vector<EdsOutcome> run_batch(
    const std::vector<BatchItem>& items, unsigned threads = 0,
    runtime::PlanCache* plan_cache = nullptr);

/// Backend-selecting run_batch: `exec.executor` (when set) replaces the
/// in-process pool — e.g. a runtime::ProcessShardExecutor fans the items
/// across worker subprocesses — while `exec.threads` sizes the in-process
/// pool otherwise.  Every job is prepared with a serializable JobSpec
/// (algorithm token, resolved parameter, structural-hash group), so any
/// backend can ship it.  Outcomes are identical for every backend.
[[nodiscard]] std::vector<EdsOutcome> run_batch(
    const std::vector<BatchItem>& items, const runtime::ExecOptions& exec,
    runtime::PlanCache* plan_cache = nullptr);

/// Streaming run_batch: `on_outcome` receives each item's validated
/// outcome as soon as its whole prefix has completed (serialized, strictly
/// increasing item order — see BatchRunner::run_streaming), so long sweeps
/// can emit output incrementally.  Blocks until the batch drains; rethrows
/// the lowest-indexed failure after withholding outcomes from it onward.
void run_batch_streaming(
    const std::vector<BatchItem>& items, unsigned threads,
    const std::function<void(std::size_t index, EdsOutcome&& outcome)>&
        on_outcome,
    runtime::PlanCache* plan_cache = nullptr);

/// Backend-selecting run_batch_streaming (see the ExecOptions overload of
/// run_batch for the backend rules).
void run_batch_streaming(
    const std::vector<BatchItem>& items, const runtime::ExecOptions& exec,
    const std::function<void(std::size_t index, EdsOutcome&& outcome)>&
        on_outcome,
    runtime::PlanCache* plan_cache = nullptr);

/// The Table 1 row selector: the algorithm (and parameter) the paper
/// prescribes for `g` — kAllEdges for max degree <= 1, kPortOne for
/// even-regular, kOddRegular for odd-regular, kBoundedDegree otherwise.
struct Recommendation {
  Algorithm algorithm = Algorithm::kBoundedDegree;
  port::Port param = 0;
};
[[nodiscard]] Recommendation recommended_for(const graph::SimpleGraph& g);

}  // namespace eds::algo
