// Theorem 3: the O(1)-time factor 4 − 2/d algorithm for d-regular graphs
// (d even; the guarantee holds for every d).
//
// "The algorithm outputs all edges that are connected to a port with port
// number 1."  One round suffices: each node announces its port number on
// every port; node v then outputs port i iff i = 1 or the remote port is 1.
// The output covers every node (every node has a port 1), hence dominates
// every edge; |D| <= |V| = 2|E|/d and |E| <= (2d−1)|D*| give the ratio.
#pragma once

#include "algo/common.hpp"
#include "runtime/program.hpp"

namespace eds::algo {

class PortOneProgram final : public runtime::NodeProgram {
 public:
  void start(port::Port degree) override;
  void send(runtime::Round round, std::span<runtime::Message> out) override;
  void receive(runtime::Round round,
               std::span<const runtime::Message> in) override;
  [[nodiscard]] bool halted() const override { return halted_; }
  [[nodiscard]] std::vector<port::Port> output() const override {
    return output_;
  }

 private:
  port::Port degree_ = 0;
  bool halted_ = false;
  std::vector<port::Port> output_;
};

class PortOneFactory final : public runtime::ProgramFactory {
 public:
  [[nodiscard]] std::unique_ptr<runtime::NodeProgram> create() const override {
    return std::make_unique<PortOneProgram>();
  }
  [[nodiscard]] std::string name() const override { return "port-one"; }
};

}  // namespace eds::algo
