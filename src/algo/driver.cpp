#include "algo/driver.hpp"

#include "algo/all_edges.hpp"
#include "algo/bounded_degree.hpp"
#include "algo/double_cover.hpp"
#include "algo/odd_regular.hpp"
#include "algo/port_one.hpp"
#include "runtime/batch.hpp"
#include "runtime/plan_cache.hpp"
#include "util/error.hpp"

namespace eds::algo {

std::string algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kAllEdges:
      return "all-edges";
    case Algorithm::kPortOne:
      return "port-one (Thm 3)";
    case Algorithm::kOddRegular:
      return "odd-regular (Thm 4)";
    case Algorithm::kBoundedDegree:
      return "bounded-degree (Thm 5)";
    case Algorithm::kDoubleCover:
      return "double-cover 2-matching";
  }
  throw InvalidArgument("algorithm_name: unknown algorithm");
}

std::string algorithm_token(Algorithm a) {
  switch (a) {
    case Algorithm::kAllEdges:
      return "all-edges";
    case Algorithm::kPortOne:
      return "port-one";
    case Algorithm::kOddRegular:
      return "odd-regular";
    case Algorithm::kBoundedDegree:
      return "bounded-degree";
    case Algorithm::kDoubleCover:
      return "double-cover";
  }
  throw InvalidArgument("algorithm_token: unknown algorithm");
}

std::optional<Algorithm> algorithm_from_token(const std::string& token) {
  if (token == "all-edges") return Algorithm::kAllEdges;
  if (token == "port-one") return Algorithm::kPortOne;
  if (token == "odd-regular") return Algorithm::kOddRegular;
  if (token == "bounded-degree") return Algorithm::kBoundedDegree;
  if (token == "double-cover") return Algorithm::kDoubleCover;
  return std::nullopt;
}

std::unique_ptr<runtime::ProgramFactory> make_factory(Algorithm algorithm,
                                                      port::Port param) {
  switch (algorithm) {
    case Algorithm::kAllEdges:
      return std::make_unique<AllEdgesFactory>();
    case Algorithm::kPortOne:
      return std::make_unique<PortOneFactory>();
    case Algorithm::kOddRegular:
      if (param == 0) {
        throw InvalidArgument("make_factory: kOddRegular needs d");
      }
      return std::make_unique<OddRegularFactory>(param);
    case Algorithm::kBoundedDegree:
      if (param == 0) {
        throw InvalidArgument("make_factory: kBoundedDegree needs max degree");
      }
      if (param == 1) return std::make_unique<AllEdgesFactory>();
      return std::make_unique<BoundedDegreeFactory>(param);
    case Algorithm::kDoubleCover:
      if (param == 0) {
        throw InvalidArgument("make_factory: kDoubleCover needs max degree");
      }
      return std::make_unique<DoubleCoverFactory>(param);
  }
  throw InvalidArgument("make_factory: unknown algorithm");
}

namespace {

/// Resolves the `param == 0` default from the graph (d-regular degree for
/// kOddRegular, max degree for kBoundedDegree / kDoubleCover).
port::Port resolve_param(const port::PortedGraph& pg, Algorithm algorithm,
                         port::Port param) {
  if (param != 0) return param;
  const auto& g = pg.graph();
  switch (algorithm) {
    case Algorithm::kOddRegular: {
      const auto d = g.max_degree();
      if (!g.is_regular(d)) {
        throw InvalidArgument("run_algorithm: graph is not regular");
      }
      return static_cast<port::Port>(d);
    }
    case Algorithm::kBoundedDegree:
    case Algorithm::kDoubleCover:
      return static_cast<port::Port>(std::max<std::size_t>(
          g.max_degree(), 1));
    default:
      return param;
  }
}

}  // namespace

port::Port resolved_param(const port::PortedGraph& pg, Algorithm algorithm,
                          port::Port param) {
  return resolve_param(pg, algorithm, param);
}

EdsOutcome run_algorithm(const port::PortedGraph& pg, Algorithm algorithm,
                         port::Port param, const runtime::ExecOptions& exec) {
  param = resolve_param(pg, algorithm, param);
  const auto factory = make_factory(algorithm, param);
  runtime::RunOptions options;
  options.exec = exec;
  if (options.exec.plan_cache == nullptr) {
    options.exec.plan_cache = &runtime::PlanCache::global();
  }
  const auto result = runtime::run_synchronous(pg.ports(), *factory, options);
  EdsOutcome outcome;
  outcome.solution = runtime::validated_edge_set(pg, result);
  outcome.stats = result.stats;
  return outcome;
}

namespace {

/// The shared front half of run_batch / run_batch_streaming: factories are
/// built up front (and kept alive for the whole batch) and every job is
/// pointed at the plan cache.
struct PreparedBatch {
  std::vector<std::unique_ptr<runtime::ProgramFactory>> factories;
  std::vector<runtime::BatchJob> jobs;
};

PreparedBatch prepare_batch(const std::vector<BatchItem>& items,
                            runtime::PlanCache* plan_cache) {
  if (plan_cache == nullptr) plan_cache = &runtime::PlanCache::global();
  PreparedBatch batch;
  batch.factories.reserve(items.size());
  batch.jobs.reserve(items.size());
  // Sweeps with --repeat enqueue the same instance many times; the memo
  // pays the O(ports) structural-hash walk once per distinct graph, not
  // once per job.
  runtime::StructuralHashMemo hash_memo;
  for (const auto& item : items) {
    if (item.graph == nullptr) {
      throw InvalidArgument("run_batch: item requires a graph");
    }
    const auto param = resolve_param(*item.graph, item.algorithm, item.param);
    batch.factories.push_back(make_factory(item.algorithm, param));
    runtime::RunOptions options;
    options.exec.plan_cache = plan_cache;
    runtime::JobSpec spec;
    spec.algorithm = algorithm_token(item.algorithm);
    spec.param = param;
    spec.group = hash_memo.get(item.graph->ports());
    batch.jobs.push_back({&item.graph->ports(), batch.factories.back().get(),
                          options, std::move(spec)});
  }
  return batch;
}

}  // namespace

std::vector<EdsOutcome> run_batch(const std::vector<BatchItem>& items,
                                  unsigned threads,
                                  runtime::PlanCache* plan_cache) {
  return run_batch(items, runtime::ExecOptions{.threads = threads},
                   plan_cache);
}

std::vector<EdsOutcome> run_batch(const std::vector<BatchItem>& items,
                                  const runtime::ExecOptions& exec,
                                  runtime::PlanCache* plan_cache) {
  std::vector<EdsOutcome> outcomes(items.size());
  run_batch_streaming(
      items, exec,
      [&outcomes](std::size_t i, EdsOutcome&& outcome) {
        outcomes[i] = std::move(outcome);
      },
      plan_cache);
  return outcomes;
}

void run_batch_streaming(
    const std::vector<BatchItem>& items, unsigned threads,
    const std::function<void(std::size_t index, EdsOutcome&& outcome)>&
        on_outcome,
    runtime::PlanCache* plan_cache) {
  run_batch_streaming(items, runtime::ExecOptions{.threads = threads},
                      on_outcome, plan_cache);
}

void run_batch_streaming(
    const std::vector<BatchItem>& items, const runtime::ExecOptions& exec,
    const std::function<void(std::size_t index, EdsOutcome&& outcome)>&
        on_outcome,
    runtime::PlanCache* plan_cache) {
  const auto batch = prepare_batch(items, plan_cache);
  // `exec.threads` sizes the in-process pool; `exec.executor` replaces it
  // wholesale (the job-level options stay sequential either way, so the
  // two levels of parallelism never multiply).
  const runtime::BatchRunner runner =
      exec.executor != nullptr ? runtime::BatchRunner(exec.executor)
                               : runtime::BatchRunner(exec.threads);
  runner.run_streaming(
      batch.jobs, [&](std::size_t i, runtime::RunResult&& result) {
        EdsOutcome outcome;
        outcome.solution = runtime::validated_edge_set(*items[i].graph, result);
        outcome.stats = result.stats;
        on_outcome(i, std::move(outcome));
      });
}

Recommendation recommended_for(const graph::SimpleGraph& g) {
  const auto delta = g.max_degree();
  if (delta <= 1) return {Algorithm::kAllEdges, 0};
  if (g.is_regular(delta)) {
    if (delta % 2 == 0) return {Algorithm::kPortOne, 0};
    return {Algorithm::kOddRegular, static_cast<port::Port>(delta)};
  }
  return {Algorithm::kBoundedDegree, static_cast<port::Port>(delta)};
}

}  // namespace eds::algo
