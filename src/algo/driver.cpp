#include "algo/driver.hpp"

#include "algo/all_edges.hpp"
#include "algo/bounded_degree.hpp"
#include "algo/double_cover.hpp"
#include "algo/odd_regular.hpp"
#include "algo/port_one.hpp"
#include "util/error.hpp"

namespace eds::algo {

std::string algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kAllEdges:
      return "all-edges";
    case Algorithm::kPortOne:
      return "port-one (Thm 3)";
    case Algorithm::kOddRegular:
      return "odd-regular (Thm 4)";
    case Algorithm::kBoundedDegree:
      return "bounded-degree (Thm 5)";
    case Algorithm::kDoubleCover:
      return "double-cover 2-matching";
  }
  throw InvalidArgument("algorithm_name: unknown algorithm");
}

std::unique_ptr<runtime::ProgramFactory> make_factory(Algorithm algorithm,
                                                      port::Port param) {
  switch (algorithm) {
    case Algorithm::kAllEdges:
      return std::make_unique<AllEdgesFactory>();
    case Algorithm::kPortOne:
      return std::make_unique<PortOneFactory>();
    case Algorithm::kOddRegular:
      if (param == 0) {
        throw InvalidArgument("make_factory: kOddRegular needs d");
      }
      return std::make_unique<OddRegularFactory>(param);
    case Algorithm::kBoundedDegree:
      if (param == 0) {
        throw InvalidArgument("make_factory: kBoundedDegree needs max degree");
      }
      if (param == 1) return std::make_unique<AllEdgesFactory>();
      return std::make_unique<BoundedDegreeFactory>(param);
    case Algorithm::kDoubleCover:
      if (param == 0) {
        throw InvalidArgument("make_factory: kDoubleCover needs max degree");
      }
      return std::make_unique<DoubleCoverFactory>(param);
  }
  throw InvalidArgument("make_factory: unknown algorithm");
}

EdsOutcome run_algorithm(const port::PortedGraph& pg, Algorithm algorithm,
                         port::Port param) {
  if (param == 0) {
    const auto& g = pg.graph();
    switch (algorithm) {
      case Algorithm::kOddRegular: {
        const auto d = g.max_degree();
        if (!g.is_regular(d)) {
          throw InvalidArgument("run_algorithm: graph is not regular");
        }
        param = static_cast<port::Port>(d);
        break;
      }
      case Algorithm::kBoundedDegree:
      case Algorithm::kDoubleCover:
        param = static_cast<port::Port>(std::max<std::size_t>(
            g.max_degree(), 1));
        break;
      default:
        break;
    }
  }
  const auto factory = make_factory(algorithm, param);
  const auto result = runtime::run_synchronous(pg.ports(), *factory);
  EdsOutcome outcome;
  outcome.solution = runtime::validated_edge_set(pg, result);
  outcome.stats = result.stats;
  return outcome;
}

Recommendation recommended_for(const graph::SimpleGraph& g) {
  const auto delta = g.max_degree();
  if (delta <= 1) return {Algorithm::kAllEdges, 0};
  if (g.is_regular(delta)) {
    if (delta % 2 == 0) return {Algorithm::kPortOne, 0};
    return {Algorithm::kOddRegular, static_cast<port::Port>(delta)};
  }
  return {Algorithm::kBoundedDegree, static_cast<port::Port>(delta)};
}

}  // namespace eds::algo
