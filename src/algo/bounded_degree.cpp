#include "algo/bounded_degree.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace eds::algo {

BoundedDegreeProgram::BoundedDegreeProgram(
    port::Port max_degree, std::shared_ptr<BoundedPhaseStats> sink)
    : delta_(normalised_delta(max_degree)), sink_(std::move(sink)) {
  if (max_degree < 2) {
    throw InvalidArgument(
        "BoundedDegreeProgram: use AllEdgesProgram for max degree 1");
  }
}

void BoundedDegreeProgram::start(port::Port degree) {
  if (degree > delta_) {
    throw ExecutionError(
        "BoundedDegreeProgram: node degree exceeds the family parameter");
  }
  view_.degree = degree;
  view_.remote_port.assign(degree, 0);
  view_.remote_degree.assign(degree, 0);
  view_.dn_claimed.assign(degree, false);
  remote_m_covered_.assign(degree, false);
}

BoundedDegreeProgram::Step BoundedDegreeProgram::step_for(
    runtime::Round round) const {
  const auto d = static_cast<runtime::Round>(delta_);
  if (round == 1) return {Step::Kind::kHello, 0, 0, false, false};
  if (round == 2) return {Step::Kind::kClaim, 0, 0, false, false};

  runtime::Round base = 2;
  if (round <= base + d * d) {
    const auto s = round - base - 1;  // 0-based
    return {Step::Kind::kPhase1, static_cast<port::Port>(s / d + 1),
            static_cast<port::Port>(s % d + 1), false, false};
  }
  base += d * d;

  if (round <= base + 2 * d * (d - 1)) {
    const auto rr = round - base - 1;  // 0-based within phase II
    const auto block = rr / (2 * d);   // degree class index: i = block + 2
    const auto within = rr % (2 * d);
    return {Step::Kind::kPhase2, static_cast<port::Port>(block + 2), 0,
            within % 2 == 1, within == 0};
  }
  base += 2 * d * (d - 1);

  if (round == base + 1) return {Step::Kind::kMStatus, 0, 0, false, false};
  base += 1;

  const auto rr = round - base - 1;  // 0-based within phase III
  return {Step::Kind::kPhase3, 0, 0, rr % 2 == 1, false};
}

void BoundedDegreeProgram::send(runtime::Round round,
                                std::span<runtime::Message> out) {
  const auto step = step_for(round);
  switch (step.kind) {
    case Step::Kind::kHello:
      for (port::Port i = 1; i <= view_.degree; ++i) {
        out[i - 1] = runtime::msg(kTagHello, static_cast<std::int32_t>(i),
                                  static_cast<std::int32_t>(view_.degree));
      }
      return;

    case Step::Kind::kClaim:
      // Even-degree nodes may legitimately have no distinguishable
      // neighbour; they simply make no claim.
      if (view_.dn_port != 0) {
        out[view_.dn_port - 1] = runtime::msg(kTagDnClaim);
      }
      return;

    case Step::Kind::kPhase1:
      active_port_ = view_.mij_active_port(step.i, step.j);
      if (active_port_ != 0) {
        out[active_port_ - 1] =
            runtime::msg(kTagStatus, m_port_ != 0 ? 1 : 0);
      }
      return;

    case Step::Kind::kPhase2:
      phase2_send(step, out);
      return;

    case Step::Kind::kMStatus:
      for (port::Port i = 1; i <= view_.degree; ++i) {
        out[i - 1] = runtime::msg(kTagMStatus, m_port_ != 0 ? 1 : 0);
      }
      return;

    case Step::Kind::kPhase3:
      if (!engine_ready_) {
        // Edges of H: both endpoints M-free.
        std::vector<port::Port> eligible;
        if (m_port_ == 0) {
          for (port::Port i = 1; i <= view_.degree; ++i) {
            if (!remote_m_covered_[i - 1]) eligible.push_back(i);
          }
        }
        engine_.init(view_.degree, std::move(eligible));
        engine_ready_ = true;
      }
      if (!step.respond_half) {
        engine_.send_propose(out);
      } else {
        engine_.send_respond(out);
      }
      return;
  }
}

void BoundedDegreeProgram::phase2_send(const Step& step,
                                       std::span<runtime::Message> out) {
  if (step.block_start) {
    // I am a proposer ("black") in this block iff my degree equals the
    // block's degree class i and I am still M-free; eligible targets are the
    // neighbours of strictly smaller degree, in increasing port order.
    p2_eligible_.clear();
    p2_cursor_ = 0;
    if (view_.degree == step.i && m_port_ == 0) {
      for (port::Port p = 1; p <= view_.degree; ++p) {
        if (view_.remote_degree[p - 1] < step.i) p2_eligible_.push_back(p);
      }
    }
  }
  if (!step.respond_half) {
    // Propose half.
    p2_outstanding_ = false;
    if (m_port_ == 0 && p2_cursor_ < p2_eligible_.size()) {
      out[p2_eligible_[p2_cursor_] - 1] = runtime::msg(kTagPropose);
      p2_outstanding_ = true;
    }
  } else {
    // Respond half ("white" side): accept the smallest-port proposal if
    // still M-free, reject everything else.
    for (const port::Port p : p2_proposals_in_) {
      out[p - 1] = runtime::msg(kTagReject);
    }
    if (m_port_ == 0 && !p2_proposals_in_.empty()) {
      const port::Port chosen = p2_proposals_in_.front();
      out[chosen - 1] = runtime::msg(kTagAccept);
      m_port_ = chosen;  // the accepted proposal joins M
    }
  }
}

void BoundedDegreeProgram::phase2_receive(
    const Step& step, std::span<const runtime::Message> in) {
  if (!step.respond_half) {
    p2_proposals_in_.clear();
    for (port::Port p = 1; p <= view_.degree; ++p) {
      if (in[p - 1].tag == kTagPropose) p2_proposals_in_.push_back(p);
    }
  } else {
    if (p2_outstanding_) {
      const port::Port target = p2_eligible_[p2_cursor_];
      const auto& reply = in[target - 1];
      EDS_ENSURE(reply.tag == kTagAccept || reply.tag == kTagReject,
                 "phase II: proposal received no response");
      if (reply.tag == kTagAccept) {
        m_port_ = target;  // my proposal was accepted: edge joins M
      } else {
        ++p2_cursor_;
      }
      p2_outstanding_ = false;
    }
  }
}

void BoundedDegreeProgram::receive(runtime::Round round,
                                   std::span<const runtime::Message> in) {
  const auto step = step_for(round);
  switch (step.kind) {
    case Step::Kind::kHello:
      for (port::Port i = 1; i <= view_.degree; ++i) {
        view_.record_hello(i, in[i - 1]);
      }
      view_.compute_dn();
      break;

    case Step::Kind::kClaim:
      for (port::Port i = 1; i <= view_.degree; ++i) {
        view_.record_claim(i, in[i - 1]);
      }
      break;

    case Step::Kind::kPhase1:
      if (active_port_ != 0) {
        const auto& their = in[active_port_ - 1];
        EDS_ENSURE(their.tag == kTagStatus,
                   "phase I: expected a status message from the partner");
        // "If neither u nor v is covered by M, we add e to M."
        if (m_port_ == 0 && their.arg[0] == 0) {
          m_port_ = active_port_;
        }
        active_port_ = 0;
      }
      break;

    case Step::Kind::kPhase2:
      phase2_receive(step, in);
      break;

    case Step::Kind::kMStatus:
      for (port::Port i = 1; i <= view_.degree; ++i) {
        EDS_ENSURE(in[i - 1].tag == kTagMStatus,
                   "expected an M-coverage broadcast");
        remote_m_covered_[i - 1] = in[i - 1].arg[0] != 0;
      }
      break;

    case Step::Kind::kPhase3:
      if (!step.respond_half) {
        engine_.receive_propose(in);
      } else {
        engine_.receive_respond(in);
      }
      break;
  }

  if (round >= schedule_length(delta_)) {
    halted_ = true;
    if (sink_) {
      sink_->m_port_claims += m_port_ != 0 ? 1 : 0;
      sink_->p_port_claims += engine_.p_ports().size();
    }
  }
}

std::vector<port::Port> BoundedDegreeProgram::output() const {
  std::vector<port::Port> out;
  if (m_port_ != 0) out.push_back(m_port_);
  for (const port::Port p : engine_.p_ports()) out.push_back(p);
  return out;
}

}  // namespace eds::algo
