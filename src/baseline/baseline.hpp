// Centralised baselines and the classical reductions of Section 1.1.
//
// * Any maximal matching is a 2-approximate minimum EDS — greedy and
//   randomised maximal matchings are the standard comparators.
// * Given any EDS D, a maximal matching of size at most |D| can be
//   constructed (Yannakakis–Gavril / Allan–Laskar); independent_eds_from
//   implements that conversion, which is also how "minimum maximal matching
//   = minimum EDS" is proved.
#pragma once

#include "graph/edge_set.hpp"
#include "graph/simple_graph.hpp"
#include "util/rng.hpp"

namespace eds::baseline {

using graph::EdgeSet;
using graph::SimpleGraph;

/// Maximal matching built by scanning edges in id order.
[[nodiscard]] EdgeSet greedy_maximal_matching(const SimpleGraph& g);

/// Maximal matching built by scanning edges in a seeded random order.
[[nodiscard]] EdgeSet random_maximal_matching(const SimpleGraph& g, Rng& rng);

/// Greedy EDS heuristic: repeatedly add the edge that dominates the most
/// currently-undominated edges (ties by edge id).
[[nodiscard]] EdgeSet greedy_eds(const SimpleGraph& g);

/// Converts an arbitrary edge dominating set into a maximal matching of no
/// greater size (Section 1.1 of the paper).  Throws InvalidArgument if
/// `eds` is not an edge dominating set.
[[nodiscard]] EdgeSet independent_eds_from(const SimpleGraph& g,
                                           const EdgeSet& eds);

}  // namespace eds::baseline
