#include "baseline/baseline.hpp"

#include <algorithm>
#include <vector>

#include "analysis/verify.hpp"
#include "util/error.hpp"

namespace eds::baseline {

namespace {

EdgeSet maximal_matching_in_order(const SimpleGraph& g,
                                  const std::vector<graph::EdgeId>& order) {
  std::vector<bool> matched(g.num_nodes(), false);
  EdgeSet out(g.num_edges());
  for (const auto e : order) {
    const auto& edge = g.edge(e);
    if (!matched[edge.u] && !matched[edge.v]) {
      matched[edge.u] = matched[edge.v] = true;
      out.insert(e);
    }
  }
  return out;
}

}  // namespace

EdgeSet greedy_maximal_matching(const SimpleGraph& g) {
  std::vector<graph::EdgeId> order(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
  return maximal_matching_in_order(g, order);
}

EdgeSet random_maximal_matching(const SimpleGraph& g, Rng& rng) {
  std::vector<graph::EdgeId> order(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
  rng.shuffle(order);
  return maximal_matching_in_order(g, order);
}

EdgeSet greedy_eds(const SimpleGraph& g) {
  EdgeSet out(g.num_edges());
  std::vector<bool> node_covered(g.num_nodes(), false);
  auto edge_dominated = [&](graph::EdgeId e) {
    return node_covered[g.edge(e).u] || node_covered[g.edge(e).v];
  };

  for (;;) {
    // Count, for each candidate edge, the undominated edges it would newly
    // dominate (including itself).
    graph::EdgeId best_edge = 0;
    std::size_t best_gain = 0;
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& edge = g.edge(e);
      std::size_t gain = edge_dominated(e) ? 0 : 1;
      for (const auto endpoint : {edge.u, edge.v}) {
        if (node_covered[endpoint]) continue;
        for (const auto& inc : g.incidences(endpoint)) {
          if (inc.edge != e && !edge_dominated(inc.edge)) ++gain;
        }
      }
      // Adjacent undominated edges joining the two endpoints of e are not
      // double counted: the inner loops skip e itself and any common edge
      // would be e.  Edges between N(u) and N(v) are distinct.
      if (gain > best_gain) {
        best_gain = gain;
        best_edge = e;
      }
    }
    if (best_gain == 0) break;
    out.insert(best_edge);
    node_covered[g.edge(best_edge).u] = true;
    node_covered[g.edge(best_edge).v] = true;
  }
  EDS_ENSURE(analysis::is_edge_dominating_set(g, out),
             "greedy_eds produced a non-dominating set");
  return out;
}

EdgeSet independent_eds_from(const SimpleGraph& g, const EdgeSet& eds) {
  if (!analysis::is_edge_dominating_set(g, eds)) {
    throw InvalidArgument("independent_eds_from: input is not an EDS");
  }
  EdgeSet d = eds;
  std::vector<std::size_t> set_degree(g.num_nodes(), 0);
  for (const auto e : d.to_vector()) {
    ++set_degree[g.edge(e).u];
    ++set_degree[g.edge(e).v];
  }

  // While some node v has two member edges e = {v,a}, f = {v,b}: drop f.
  // Node v stays covered by e.  Node b may become uncovered; if it has an
  // uncovered neighbour c, add {b,c} (both endpoints were uncovered, so the
  // addition creates no new conflicts); otherwise all edges at b remain
  // dominated through their other endpoints.  The total endpoint excess
  // Σ max(0, deg_D(v) − 1) strictly decreases, so the loop terminates, and
  // the set size never grows.
  const auto no_node = static_cast<graph::NodeId>(g.num_nodes());
  const auto no_edge = static_cast<graph::EdgeId>(g.num_edges());
  for (;;) {
    graph::NodeId centre = no_node;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (set_degree[v] >= 2) {
        centre = v;
        break;
      }
    }
    if (centre == no_node) break;

    graph::EdgeId f = no_edge;
    bool skipped_first = false;
    for (const auto& inc : g.incidences(centre)) {
      if (!d.contains(inc.edge)) continue;
      if (!skipped_first) {
        skipped_first = true;  // keep the first member edge at the centre
        continue;
      }
      f = inc.edge;
      break;
    }
    EDS_ENSURE(f != no_edge, "independent_eds_from: lost member edge");

    const auto b = g.edge(f).other(centre);
    d.erase(f);
    --set_degree[centre];
    --set_degree[b];

    if (set_degree[b] == 0) {
      // b lost its only cover; re-cover it if some neighbour is uncovered.
      for (const auto& inc : g.incidences(b)) {
        if (set_degree[inc.neighbour] == 0) {
          d.insert(inc.edge);
          ++set_degree[b];
          ++set_degree[inc.neighbour];
          break;
        }
      }
    }
  }

  EDS_ENSURE(analysis::is_maximal_matching(g, d),
             "independent_eds_from: result is not a maximal matching");
  EDS_ENSURE(d.size() <= eds.size(),
             "independent_eds_from: result grew beyond the input EDS");
  return d;
}

}  // namespace eds::baseline
