// The ID-model reference point of Section 1.3: deterministic distributed
// maximal matching with unique identifiers, hence a 2-approximate EDS.
//
// The paper contrasts its anonymous algorithms against ID-model maximal
// matching (Hańćkowiak–Karoński–Panconesi, Panconesi–Rizzi): with unique
// IDs one gets ratio 2, but the running time must grow with n — and
// Ω(log* n) is unavoidable for ratios below 3.  This module implements the
// classic pseudoforest-decomposition algorithm:
//
//   1. orient every edge towards the larger ID and split the out-edges of
//      each node by rank into ∆ classes — each class is a forest (IDs
//      increase along directed edges);
//   2. for each class: colour the forest with < 8 colours by Cole–Vishkin
//      bit reduction in log*-many rounds (each node reduces against its
//      parent's colour), then run 8 colour-synchronised propose/accept
//      slots: an unmatched node whose colour is on turn proposes to its
//      unmatched parent, parents accept one proposal;
//   3. the union over classes is a maximal matching of G.
//
// Round complexity O(∆ · (log* N + 1)) where N is the ID-space size —
// deliberately n-dependent, unlike the paper's anonymous algorithms.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/edge_set.hpp"
#include "port/ported_graph.hpp"
#include "runtime/runner.hpp"

namespace eds::idmodel {

/// Number of Cole–Vishkin iterations needed to reduce `id_bits`-bit colours
/// below 8 (the log* term, computed on the colour-count recurrence
/// b -> bits(2b - 1)).
[[nodiscard]] runtime::Round cv_iterations(std::uint32_t id_bits);

/// Schedule length for parameters (∆, id_bits).
[[nodiscard]] runtime::Round forest_matching_schedule(port::Port max_degree,
                                                      std::uint32_t id_bits);

/// Result of one ID-model execution.
struct IdMatchingOutcome {
  graph::EdgeSet matching;  ///< a maximal matching of pg.graph()
  runtime::RunStats stats;
};

/// Runs the forest-decomposition maximal-matching algorithm on `pg` with
/// the given unique identifiers (`ids[v]` < 2^id_bits, pairwise distinct)
/// and family parameter `max_degree` >= the true maximum degree.
[[nodiscard]] IdMatchingOutcome run_forest_matching(
    const port::PortedGraph& pg, const std::vector<std::uint32_t>& ids,
    std::uint32_t id_bits, port::Port max_degree);

/// Convenience: ids 0..n-1 with the tightest id_bits.
[[nodiscard]] IdMatchingOutcome run_forest_matching(
    const port::PortedGraph& pg);

}  // namespace eds::idmodel
