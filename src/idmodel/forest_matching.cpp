#include "idmodel/forest_matching.hpp"

#include <algorithm>
#include <bit>

#include "runtime/outputs.hpp"
#include "util/error.hpp"

namespace eds::idmodel {

namespace {

using port::Port;
using runtime::Message;
using runtime::Round;

enum Tag : std::int32_t {
  kTagId = 1,
  kTagClass = 2,
  kTagColor = 3,
  kTagPropose = 4,
  kTagAccept = 5,
  kTagReject = 6,
};

constexpr Round kSlotRounds = 16;  // 8 colours x (propose + respond)

/// One node of the pseudoforest maximal-matching algorithm.
class ForestMatchingProgram final : public runtime::NodeProgram {
 public:
  ForestMatchingProgram(std::uint32_t id, std::uint32_t id_bits,
                        Port max_degree)
      : id_(id), id_bits_(id_bits), delta_(max_degree) {
    if (id_bits_ < 1 || id_bits_ > 31) {
      throw InvalidArgument("ForestMatchingProgram: id_bits must be 1..31");
    }
    if (id_ >> id_bits_ != 0) {
      throw InvalidArgument("ForestMatchingProgram: id exceeds the id space");
    }
  }

  void start(Port degree) override {
    if (degree > delta_) {
      throw ExecutionError(
          "ForestMatchingProgram: node degree exceeds the family parameter");
    }
    degree_ = degree;
    remote_id_.assign(degree_, 0);
    child_class_.assign(degree_, 0);
    cv_iters_ = cv_iterations(id_bits_);
    if (degree_ == 0) halted_ = true;
  }

  void send(Round round, std::span<Message> out) override;
  void receive(Round round, std::span<const Message> in) override;

  [[nodiscard]] bool halted() const override { return halted_; }
  [[nodiscard]] std::vector<Port> output() const override {
    return matched_port_ == 0 ? std::vector<Port>{}
                              : std::vector<Port>{matched_port_};
  }

 private:
  struct Step {
    enum class Kind { kId, kClass, kColour, kPropose, kRespond };
    Kind kind = Kind::kId;
    Port klass = 0;    // 1-based class index for per-class steps
    std::int32_t colour_slot = 0;  // 0..7 within the matching slots
  };
  [[nodiscard]] Step step_for(Round round) const {
    if (round == 1) return {Step::Kind::kId, 0, 0};
    if (round == 2) return {Step::Kind::kClass, 0, 0};
    const Round block_len = cv_iters_ + kSlotRounds;
    const Round r = round - 3;  // 0-based within the class blocks
    const auto klass = static_cast<Port>(r / block_len + 1);
    const Round within = r % block_len;
    if (within < cv_iters_) return {Step::Kind::kColour, klass, 0};
    const Round slot = within - cv_iters_;
    return {slot % 2 == 0 ? Step::Kind::kPropose : Step::Kind::kRespond,
            klass, static_cast<std::int32_t>(slot / 2)};
  }

  /// My parent port in class c (the c-th outgoing port), or 0.
  [[nodiscard]] Port parent_port(Port klass) const {
    return klass <= out_ports_.size() ? out_ports_[klass - 1] : 0;
  }

  void begin_class(Port klass) {
    current_class_ = klass;
    colour_ = static_cast<std::int32_t>(id_);
  }

  std::uint32_t id_;
  std::uint32_t id_bits_;
  Port delta_;
  Port degree_ = 0;
  Round cv_iters_ = 0;

  std::vector<std::uint32_t> remote_id_;
  std::vector<Port> out_ports_;        // my outgoing ports, ascending
  std::vector<Port> child_class_;      // incoming port -> class (0 = none)

  Port current_class_ = 0;
  std::int32_t colour_ = 0;
  Port matched_port_ = 0;
  bool proposed_ = false;
  std::vector<Port> proposals_in_;
  bool halted_ = false;
};

void ForestMatchingProgram::send(Round round, std::span<Message> out) {
  const auto step = step_for(round);
  switch (step.kind) {
    case Step::Kind::kId:
      for (Port p = 1; p <= degree_; ++p) {
        out[p - 1] = runtime::msg(kTagId, static_cast<std::int32_t>(id_));
      }
      return;

    case Step::Kind::kClass:
      for (std::size_t c = 0; c < out_ports_.size(); ++c) {
        out[out_ports_[c] - 1] =
            runtime::msg(kTagClass, static_cast<std::int32_t>(c + 1));
      }
      return;

    case Step::Kind::kColour:
      if (step.klass != current_class_) begin_class(step.klass);
      for (Port p = 1; p <= degree_; ++p) {
        out[p - 1] = runtime::msg(kTagColor, colour_);
      }
      return;

    case Step::Kind::kPropose: {
      // With a tiny id space cv_iterations can be 0: ids are then already
      // valid colours and the colour rounds are skipped entirely.
      if (step.klass != current_class_) begin_class(step.klass);
      EDS_ENSURE(colour_ >= 0 && colour_ < 8,
                 "colour reduction did not reach < 8 colours");
      proposed_ = false;
      const auto parent = parent_port(step.klass);
      if (parent != 0 && matched_port_ == 0 && colour_ == step.colour_slot) {
        out[parent - 1] = runtime::msg(kTagPropose);
        proposed_ = true;
      }
      return;
    }

    case Step::Kind::kRespond: {
      for (const Port p : proposals_in_) {
        out[p - 1] = runtime::msg(kTagReject);
      }
      if (matched_port_ == 0 && !proposals_in_.empty()) {
        const Port chosen = proposals_in_.front();  // ascending: min port
        out[chosen - 1] = runtime::msg(kTagAccept);
        matched_port_ = chosen;
      }
      return;
    }
  }
}

void ForestMatchingProgram::receive(Round round,
                                    std::span<const Message> in) {
  const auto step = step_for(round);
  switch (step.kind) {
    case Step::Kind::kId:
      for (Port p = 1; p <= degree_; ++p) {
        EDS_ENSURE(in[p - 1].tag == kTagId, "expected an id broadcast");
        remote_id_[p - 1] = static_cast<std::uint32_t>(in[p - 1].arg[0]);
        EDS_ENSURE(remote_id_[p - 1] != id_, "ids must be unique");
      }
      for (Port p = 1; p <= degree_; ++p) {
        if (remote_id_[p - 1] > id_) out_ports_.push_back(p);
      }
      EDS_ENSURE(out_ports_.size() <= delta_, "out-degree exceeds delta");
      break;

    case Step::Kind::kClass:
      for (Port p = 1; p <= degree_; ++p) {
        if (in[p - 1].tag == kTagClass) {
          child_class_[p - 1] = static_cast<Port>(in[p - 1].arg[0]);
        }
      }
      break;

    case Step::Kind::kColour: {
      // Cole–Vishkin step against my class parent; roots reduce against the
      // complement of their own colour (bit 0 always differs).
      const auto parent = parent_port(step.klass);
      const std::int32_t parent_colour =
          parent == 0 ? ~colour_ : in[parent - 1].arg[0];
      EDS_ENSURE(parent == 0 || in[parent - 1].tag == kTagColor,
                 "expected a colour broadcast from the parent");
      const std::uint32_t diff = static_cast<std::uint32_t>(colour_) ^
                                 static_cast<std::uint32_t>(parent_colour);
      EDS_ENSURE(diff != 0, "proper colouring lost during Cole-Vishkin");
      const int i = std::countr_zero(diff);
      const std::int32_t bit = (colour_ >> i) & 1;
      colour_ = static_cast<std::int32_t>(2 * i + bit);
      break;
    }

    case Step::Kind::kPropose:
      proposals_in_.clear();
      for (Port p = 1; p <= degree_; ++p) {
        if (in[p - 1].tag == kTagPropose) {
          // Only class-`klass` children propose to me in this block.
          EDS_ENSURE(child_class_[p - 1] == step.klass,
                     "proposal from outside the current class");
          proposals_in_.push_back(p);
        }
      }
      break;

    case Step::Kind::kRespond:
      if (proposed_) {
        const auto parent = parent_port(step.klass);
        const auto& reply = in[parent - 1];
        EDS_ENSURE(reply.tag == kTagAccept || reply.tag == kTagReject,
                   "proposal received no response");
        if (reply.tag == kTagAccept) matched_port_ = parent;
        proposed_ = false;
      }
      break;
  }

  if (round >= forest_matching_schedule(delta_, id_bits_)) halted_ = true;
}

}  // namespace

Round cv_iterations(std::uint32_t id_bits) {
  // Colour-count recurrence: b-bit colours become (2b - 1)-valued, i.e.
  // bits(2b - 1) bits; iterate until at most 3 bits (colours < 8).
  Round iters = 0;
  std::uint32_t bits = std::max(id_bits, 1u);
  while (bits > 3) {
    const std::uint32_t max_colour = 2 * bits - 1;
    bits = std::bit_width(max_colour);
    ++iters;
    EDS_ENSURE(iters < 64, "cv_iterations failed to converge");
  }
  return iters;
}

Round forest_matching_schedule(Port max_degree, std::uint32_t id_bits) {
  return 2 + max_degree * (cv_iterations(id_bits) + kSlotRounds);
}

IdMatchingOutcome run_forest_matching(const port::PortedGraph& pg,
                                      const std::vector<std::uint32_t>& ids,
                                      std::uint32_t id_bits,
                                      port::Port max_degree) {
  const auto& g = pg.graph();
  if (ids.size() != g.num_nodes()) {
    throw InvalidArgument("run_forest_matching: one id per node required");
  }
  std::vector<std::unique_ptr<runtime::NodeProgram>> programs;
  programs.reserve(ids.size());
  for (const auto id : ids) {
    programs.push_back(
        std::make_unique<ForestMatchingProgram>(id, id_bits, max_degree));
  }
  const auto result = runtime::run_synchronous_programs(
      pg.ports(), std::move(programs), {}, "id-forest-matching");
  IdMatchingOutcome outcome{runtime::validated_edge_set(pg, result),
                            result.stats};
  return outcome;
}

IdMatchingOutcome run_forest_matching(const port::PortedGraph& pg) {
  const auto n = pg.graph().num_nodes();
  std::vector<std::uint32_t> ids(n);
  for (std::size_t v = 0; v < n; ++v) ids[v] = static_cast<std::uint32_t>(v);
  const auto bits = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::bit_width(n == 0 ? 1 : n - 1)));
  const auto delta = static_cast<port::Port>(
      std::max<std::size_t>(pg.graph().max_degree(), 1));
  return run_forest_matching(pg, ids, bits, delta);
}

}  // namespace eds::idmodel
