// The node-program abstraction: what one anonymous node runs.
//
// The interface enforces the port-numbering model of Section 2.2:
//  * a program is created by a factory with no node identity;
//  * at start it learns exactly one thing — its own degree;
//  * each round it emits one message per port and then consumes one message
//    per port;
//  * at any point after a receive it may halt and expose its output
//    X(v) ⊆ {1, ..., degree} (the ports of its chosen edges).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "port/port_graph.hpp"
#include "runtime/message.hpp"

namespace eds::runtime {

using port::Port;

/// 1-based round counter.
using Round = std::uint32_t;

/// One anonymous node's state machine.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once, before the first round.  `degree` is the only initial
  /// knowledge a node has about the graph.
  virtual void start(Port degree) = 0;

  /// Produce the message for every port: `out[i - 1]` goes to port i.
  /// `out.size()` equals the node degree.  Called only while not halted.
  virtual void send(Round round, std::span<Message> out) = 0;

  /// Consume the received messages: `in[i - 1]` arrived from port i.
  /// May set the halted state.  Called only while not halted.
  virtual void receive(Round round, std::span<const Message> in) = 0;

  /// True once the node has stopped and announced its output.
  [[nodiscard]] virtual bool halted() const = 0;

  /// The announced output X(v): a set of 1-based port numbers.
  /// Only meaningful once halted() is true.
  [[nodiscard]] virtual std::vector<Port> output() const = 0;
};

/// Creates identical programs for every node — anonymity means the factory
/// cannot specialise per node.
class ProgramFactory {
 public:
  virtual ~ProgramFactory() = default;
  [[nodiscard]] virtual std::unique_ptr<NodeProgram> create() const = 0;

  /// Short human-readable algorithm name (for tables and traces).
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace eds::runtime
