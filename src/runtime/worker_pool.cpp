#include "runtime/worker_pool.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/parallel.hpp"

#if defined(_WIN32)

namespace eds::runtime {

WorkerPool::WorkerPool(std::vector<std::string>, unsigned,
                       std::chrono::milliseconds) {
  throw InvalidArgument(
      "WorkerPool: process sharding requires a POSIX platform");
}

WorkerPool::~WorkerPool() = default;

void WorkerPool::run_batch(const std::vector<BatchJob>&,
                           const Executor::ResultCallback&) {
  throw InvalidArgument(
      "WorkerPool: process sharding requires a POSIX platform");
}

void WorkerPool::reap_idle() {}
void WorkerPool::drain() {}
std::size_t WorkerPool::live_workers() const { return 0; }
WorkerPool::Stats WorkerPool::stats() const { return {}; }

}  // namespace eds::runtime

#else  // POSIX

#include <cerrno>
#include <thread>
#include <unordered_map>

#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "port/io.hpp"
#include "runtime/reorder.hpp"

namespace eds::runtime {

namespace {

/// Runs a cleanup action when the scope unwinds, exception or not.
template <typename Fn>
class ScopeExit {
 public:
  explicit ScopeExit(Fn fn) : fn_(std::move(fn)) {}
  ~ScopeExit() { fn_(); }
  ScopeExit(const ScopeExit&) = delete;
  ScopeExit& operator=(const ScopeExit&) = delete;

 private:
  Fn fn_;
};

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// A blocked SIGPIPE turns a write to a dead worker into EPIPE instead of
/// killing the parent; the pending signal dies with the writer thread.
void block_sigpipe_on_this_thread() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGPIPE);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

[[nodiscard]] bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE et al.: the reader reports the death
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

[[nodiscard]] std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return "worker exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "worker killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "worker ended abnormally";
}

[[nodiscard]] bool exited_cleanly(int status) {
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

}  // namespace

/// Parent-side bookkeeping for one slot's service of one batch.  The
/// process itself (pid + pipes) lives in the Slot and survives the batch;
/// this is only the per-checkout state.
struct WorkerPool::BatchTask {
  Slot* slot = nullptr;
  const std::vector<std::size_t>* assigned = nullptr;  ///< global indices
  std::size_t completed = 0;   ///< result/error lines accepted so far
  std::string violation;       ///< protocol-violation description, if any
  bool dead = false;           ///< EOF observed (worker exited in service)
  int wait_status = 0;         ///< raw waitpid status (valid when dead)
  WorkerSummary summary;
  bool summary_seen = false;
  std::thread writer;
  std::thread reader;

  /// A shard that answered all its batch jobs can still have broken
  /// protocol afterwards — extra output, an unexpected exit, a missing
  /// summary.  The delivered results are trustworthy (each was verified
  /// in arrival order), but the batch must not report success: the
  /// summary counters are incomplete and the worker is not behaving as
  /// specified.  Returns the failure description, or "" for a fully
  /// clean shard.
  [[nodiscard]] std::string residual_failure() const {
    if (completed < assigned->size()) return "";  // job errors cover it
    if (!violation.empty()) {
      return "process shard: " + violation + " after its last job";
    }
    if (dead) {
      if (!exited_cleanly(wait_status)) {
        return "process shard: " + describe_exit(wait_status) +
               " after completing its jobs";
      }
      return "process shard: worker exited without a batch summary";
    }
    if (!summary_seen) {
      return "process shard: worker went silent without a batch summary";
    }
    return "";
  }
};

WorkerPool::WorkerPool(std::vector<std::string> worker_command,
                       unsigned shards, std::chrono::milliseconds idle_timeout)
    : worker_command_(std::move(worker_command)),
      shards_(resolve_threads(shards)),
      idle_timeout_(idle_timeout),
      slots_(shards_) {
  if (worker_command_.empty()) {
    throw InvalidArgument("WorkerPool: worker command must not be empty");
  }
}

WorkerPool::~WorkerPool() {
  const std::lock_guard<std::mutex> lock(batch_mutex_);
  for (auto& slot : slots_) {
    if (slot.pid >= 0) retire_locked(slot, /*count_reaped=*/false);
  }
}

void WorkerPool::retire_locked(Slot& slot, bool count_reaped) {
  // Clean shutdown with the PR-4 no-hang ordering: stdin EOF first (an
  // idle worker exits 0 on it), then stdout — a worker somehow blocked
  // writing results dies on EPIPE instead of stalling the reap — then a
  // blocking reap so no zombie outlives the pool.
  if (slot.in_fd >= 0) {
    ::close(slot.in_fd);
    slot.in_fd = -1;
  }
  if (slot.out_fd >= 0) {
    ::close(slot.out_fd);
    slot.out_fd = -1;
  }
  if (slot.pid >= 0) {
    int status = 0;
    ::waitpid(static_cast<pid_t>(slot.pid), &status, 0);
    slot.pid = -1;
  }
  slot.died_dirty = false;  // a deliberate retirement is not a death
  if (count_reaped) {
    const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.workers_reaped;
  }
}

void WorkerPool::reap_idle_locked(std::chrono::steady_clock::time_point now) {
  if (idle_timeout_.count() == 0) return;
  for (auto& slot : slots_) {
    if (slot.pid >= 0 && now - slot.last_used >= idle_timeout_) {
      retire_locked(slot, /*count_reaped=*/true);
    }
  }
}

void WorkerPool::reap_idle() {
  const std::lock_guard<std::mutex> lock(batch_mutex_);
  reap_idle_locked(std::chrono::steady_clock::now());
}

void WorkerPool::drain() {
  const std::lock_guard<std::mutex> lock(batch_mutex_);
  for (auto& slot : slots_) {
    if (slot.pid >= 0) retire_locked(slot, /*count_reaped=*/true);
  }
}

std::size_t WorkerPool::live_workers() const {
  const std::lock_guard<std::mutex> lock(batch_mutex_);
  std::size_t live = 0;
  for (const auto& slot : slots_) {
    if (slot.pid >= 0) ++live;
  }
  return live;
}

WorkerPool::Stats WorkerPool::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void WorkerPool::ensure_worker_locked(Slot& slot) {
  // Health check: a worker that died while idle (crash, OOM kill, …) is
  // detected here, before any frame is written, and replaced silently.
  if (slot.pid >= 0) {
    int status = 0;
    const pid_t reaped =
        ::waitpid(static_cast<pid_t>(slot.pid), &status, WNOHANG);
    if (reaped != 0) {
      if (slot.in_fd >= 0) ::close(slot.in_fd);
      if (slot.out_fd >= 0) ::close(slot.out_fd);
      slot.in_fd = slot.out_fd = -1;
      slot.pid = -1;
      slot.died_dirty = true;
    }
  }
  if (slot.pid >= 0) return;

  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
    if (to_child[0] >= 0) {
      ::close(to_child[0]);
      ::close(to_child[1]);
    }
    throw ExecutionError("WorkerPool: pipe() failed");
  }
  // Parent-side ends never leak into later workers' exec; the child's ends
  // are re-homed onto fds 0/1 (dup2 clears FD_CLOEXEC on the duplicate).
  for (const int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
    set_cloexec(fd);
  }

  std::vector<char*> argv;
  argv.reserve(worker_command_.size() + 1);
  for (const auto& arg : worker_command_) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      ::close(fd);
    }
    throw ExecutionError("WorkerPool: fork() failed");
  }
  if (pid == 0) {
    // Child: wire stdin/stdout to the pipes and become the worker.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::execvp(argv[0], argv.data());
    _exit(127);  // exec failed; the parent reports it via the exit status
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  slot.pid = pid;
  slot.in_fd = to_child[1];
  slot.out_fd = from_child[0];
  slot.last_used = std::chrono::steady_clock::now();

  {
    const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.workers_spawned;
    if (slot.died_dirty) ++stats_.workers_respawned;
  }
  slot.died_dirty = false;
}

void WorkerPool::run_batch(const std::vector<BatchJob>& jobs,
                           const Executor::ResultCallback& on_result) {
  if (jobs.empty()) return;
  const std::lock_guard<std::mutex> lock(batch_mutex_);

  const std::uint64_t batch_id = ++next_batch_id_;
  const auto now = std::chrono::steady_clock::now();
  reap_idle_locked(now);

  // Group-affinity routing: equal groups share a worker (and therefore a
  // plan-cache entry); within a shard, jobs keep ascending index order.
  std::vector<std::vector<std::size_t>> assigned(shards_);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    assigned[jobs[i].spec->group % shards_].push_back(i);
  }

  detail::ReorderBuffer buffer(jobs.size());
  std::vector<std::unique_ptr<BatchTask>> tasks;

  {
    // Returns every checked-out worker at scope exit — even when a later
    // spawn or std::thread constructor throws mid-loop.  Order matters on
    // the partial-start paths: a task whose reader never started gets its
    // worker's stdout closed *first*, so a worker blocked writing results
    // dies on SIGPIPE and can neither stall the writer join nor the final
    // reap; a worker touched by such a path is retired as dead (the next
    // batch respawns the slot).  On the normal path both threads exist
    // and this is a plain join/join; healthy workers stay warm.
    const ScopeExit return_workers([&tasks] {
      for (const auto& t : tasks) {
        Slot* slot = t->slot;
        const bool reader_started = t->reader.joinable();
        if (!reader_started && slot->out_fd >= 0) {
          ::close(slot->out_fd);
          slot->out_fd = -1;
        }
        if (t->writer.joinable()) t->writer.join();
        if (reader_started) t->reader.join();
        if (t->dead || !reader_started) {
          // The reader already reaped a dead worker; a never-read worker
          // is reaped here.  Either way the slot is empty and dirty.
          if (slot->in_fd >= 0) {
            ::close(slot->in_fd);
            slot->in_fd = -1;
          }
          if (slot->out_fd >= 0) {
            ::close(slot->out_fd);
            slot->out_fd = -1;
          }
          if (slot->pid >= 0) {
            if (!t->dead) {
              int status = 0;
              ::waitpid(static_cast<pid_t>(slot->pid), &status, 0);
            }
            slot->pid = -1;
          }
          slot->died_dirty = true;
        } else {
          slot->last_used = std::chrono::steady_clock::now();
        }
      }
    });

    for (unsigned s = 0; s < shards_; ++s) {
      if (assigned[s].empty()) continue;  // never fork an idle shard
      ensure_worker_locked(slots_[s]);
      auto t = std::make_unique<BatchTask>();
      t->slot = &slots_[s];
      t->assigned = &assigned[s];
      tasks.push_back(std::move(t));  // visible to return_workers pre-start
    }

    for (const auto& t_ptr : tasks) {
      BatchTask* t = t_ptr.get();

      t->writer = std::thread([t, &jobs, batch_id] {
        block_sigpipe_on_this_thread();
        const int fd = t->slot->in_fd;
        if (!write_all(fd, encode_batch_begin(batch_id) + "\n")) return;
        // Serialize-and-escape each distinct graph lazily, once, right
        // here: group routing sends every repeat of a structure to one
        // shard, so per-writer caching never duplicates work across
        // shards — and it parallelizes the text encoding and frees it
        // when this writer exits, instead of a serial up-front pass whose
        // escaped copies would live until the whole batch drained.
        std::unordered_map<const port::PortGraph*, std::string> escaped;
        for (const std::size_t idx : *t->assigned) {
          const auto& job = jobs[idx];
          auto it = escaped.find(job.graph);
          if (it == escaped.end()) {
            const auto text = port::to_port_graph_string(*job.graph);
            std::string esc;
            esc.reserve(text.size() + text.size() / 16);
            detail::wire_escape(esc, text);
            it = escaped.emplace(job.graph, std::move(esc)).first;
          }
          WireJob wire;
          wire.index = idx;
          wire.algorithm = job.spec->algorithm;
          wire.param = job.spec->param;
          wire.threads = job.options.exec.threads;
          wire.max_rounds = job.options.max_rounds;
          wire.async = job.options.exec.async;
          std::string line =
              detail::encode_wire_job_preescaped(wire, it->second);
          line += '\n';
          if (!write_all(fd, line)) return;
        }
        // The frame stays open: no stdin close.  The worker answers the
        // batch_end with its summary and waits for the next batch.
        (void)write_all(fd, encode_batch_end(batch_id) + "\n");
      });

      t->reader = std::thread([t, &buffer, &on_result, batch_id] {
        const int fd = t->slot->out_fd;
        const auto violate = [t](std::string why) {
          t->violation = std::move(why);
          // A live worker that broke protocol will never send the summary
          // this reader is waiting for — kill it and drain to EOF (never
          // block it on a full stdout pipe); its unfinished jobs fail at
          // EOF and the next batch respawns the slot.
          ::kill(static_cast<pid_t>(t->slot->pid), SIGKILL);
        };
        std::string pending;
        char chunk[1 << 16];
        bool at_eof = false;
        while (!t->summary_seen && !at_eof) {
          const ssize_t n = ::read(fd, chunk, sizeof chunk);
          if (n < 0 && errno == EINTR) continue;
          if (n <= 0) {
            at_eof = true;
            break;
          }
          pending.append(chunk, static_cast<std::size_t>(n));
          std::size_t nl;
          while ((nl = pending.find('\n')) != std::string::npos) {
            const std::string line = pending.substr(0, nl);
            pending.erase(0, nl + 1);
            if (!t->violation.empty()) continue;  // draining to EOF
            try {
              WorkerLine parsed = decode_worker_line(line);
              if (parsed.kind == WorkerLine::Kind::kSummary) {
                if (parsed.summary.batch_id != batch_id) {
                  violate("worker summarized the wrong batch");
                  continue;
                }
                if (t->completed < t->assigned->size()) {
                  violate("worker summarized before answering its jobs");
                  continue;
                }
                if (!pending.empty()) {
                  violate("worker wrote past its batch summary");
                  continue;
                }
                t->summary = parsed.summary;
                t->summary_seen = true;
                break;  // batch served; the worker stays warm
              }
              // Workers execute their jobs strictly in arrival order; any
              // other index is a protocol violation.
              if (t->completed >= t->assigned->size() ||
                  parsed.index != (*t->assigned)[t->completed]) {
                violate("worker answered for an unexpected job index");
                continue;
              }
              const std::size_t idx = parsed.index;
              if (parsed.kind == WorkerLine::Kind::kResult) {
                buffer.results[idx] = std::move(parsed.result);
              } else {
                buffer.errors[idx] = std::make_exception_ptr(
                    ExecutionError("process shard: " + parsed.message));
              }
              ++t->completed;
              buffer.deposit_and_flush(idx, on_result);
            } catch (const Error& e) {
              violate(std::string("malformed worker line: ") + e.what());
            }
          }
        }
        if (!at_eof) return;  // healthy: summary received, worker warm

        // EOF: the worker is gone (its own death, or our SIGKILL after a
        // violation).  Reap it and apply the prefix rule: every job this
        // shard never finished fails with a description of why.
        t->dead = true;
        ::waitpid(static_cast<pid_t>(t->slot->pid), &t->wait_status, 0);
        if (t->completed < t->assigned->size()) {
          std::string why = describe_exit(t->wait_status);
          if (!t->violation.empty()) why += " (" + t->violation + ")";
          for (std::size_t k = t->completed; k < t->assigned->size(); ++k) {
            const std::size_t idx = (*t->assigned)[k];
            buffer.errors[idx] = std::make_exception_ptr(ExecutionError(
                "process shard: " + why + " before job " +
                std::to_string(idx) + " completed"));
            buffer.deposit_and_flush(idx, on_result);
          }
        }
      });
    }
  }  // return_workers: every thread joined, every dead worker reaped

  {
    const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.jobs_shipped += jobs.size();
    ++stats_.batches_run;
    for (const auto& t : tasks) {
      if (t->summary_seen) {
        stats_.plans_compiled += t->summary.plans_compiled;
        stats_.plan_hits += t->summary.plan_hits;
      }
    }
  }

  // Job-level failures win (lowest index, as documented); a shard that
  // finished its jobs but then broke protocol or died still fails the
  // batch — after full delivery, so the prefix rule is unaffected.
  buffer.rethrow_failures();
  for (const auto& t : tasks) {
    const auto residual = t->residual_failure();
    if (!residual.empty()) throw ExecutionError(residual);
  }
}

}  // namespace eds::runtime

#endif  // defined(_WIN32)
