#include "runtime/worker_pool.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/parallel.hpp"

#if defined(_WIN32)

namespace eds::runtime {

WorkerPool::WorkerPool(std::vector<std::string>, unsigned, Options) {
  throw InvalidArgument(
      "WorkerPool: process sharding requires a POSIX platform");
}

WorkerPool::WorkerPool(std::vector<std::string>, unsigned,
                       std::chrono::milliseconds) {
  throw InvalidArgument(
      "WorkerPool: process sharding requires a POSIX platform");
}

WorkerPool::~WorkerPool() = default;

void WorkerPool::run_batch(const std::vector<BatchJob>&,
                           const Executor::ResultCallback&) {
  throw InvalidArgument(
      "WorkerPool: process sharding requires a POSIX platform");
}

void WorkerPool::reap_idle() {}
void WorkerPool::drain() {}
bool WorkerPool::quarantined() const { return false; }
std::size_t WorkerPool::live_workers() const { return 0; }
WorkerPool::Stats WorkerPool::stats() const { return {}; }

}  // namespace eds::runtime

#else  // POSIX

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <memory>
#include <thread>
#include <unordered_map>

#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "port/io.hpp"
#include "runtime/reorder.hpp"
#include "runtime/runner.hpp"

namespace eds::runtime {

namespace {

/// Runs a cleanup action when the scope unwinds, exception or not.
template <typename Fn>
class ScopeExit {
 public:
  explicit ScopeExit(Fn fn) : fn_(std::move(fn)) {}
  ~ScopeExit() { fn_(); }
  ScopeExit(const ScopeExit&) = delete;
  ScopeExit& operator=(const ScopeExit&) = delete;

 private:
  Fn fn_;
};

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// A blocked SIGPIPE turns a write to a dead worker into EPIPE instead of
/// killing the parent; the pending signal dies with the writer thread.
void block_sigpipe_on_this_thread() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGPIPE);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

[[nodiscard]] bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE et al.: the reader reports the death
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

[[nodiscard]] std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return "worker exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "worker killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "worker ended abnormally";
}

[[nodiscard]] bool exited_cleanly(int status) {
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

[[nodiscard]] std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Parent-side bookkeeping for one slot's service of one retry pass.  The
/// process itself (pid + pipes) lives in the Slot and survives the pass;
/// this is only the per-checkout state.
struct WorkerPool::PassTask {
  Slot* slot = nullptr;
  std::vector<std::size_t> assigned;  ///< global job indices (owned: the
                                      ///< task outlives the pass locals)
  long pid = -1;               ///< pid snapshot: stable for kill decisions
  std::size_t completed = 0;   ///< result/error lines accepted so far
  std::string violation;       ///< protocol-violation description, if any
  std::string trailing;        ///< truncated partial line left at EOF
  bool dead = false;           ///< EOF observed (worker exited in service)
  int wait_status = 0;         ///< raw waitpid status (valid when dead)
  WorkerSummary summary;
  bool summary_seen = false;

  /// The kill protocol between reader and monitor.  The reader marks
  /// `reaped` *before* its waitpid and `settled` once the summary lands;
  /// the monitor SIGKILLs only a task that is neither — so a deadline
  /// kill can never hit a recycled pid or a worker that already finished
  /// its batch.
  std::mutex kill_mutex;
  bool reaped = false;          ///< kill_mutex
  bool settled = false;         ///< kill_mutex: summary seen, worker warm
  bool kill_sent = false;       ///< kill_mutex
  bool deadline_killed = false; ///< kill_mutex; read after the joins
  /// steady_clock ns of the last completed worker line — the monitor's
  /// definition of "stuck on one job".
  std::atomic<std::int64_t> last_progress_ns{0};

  std::thread writer;
  std::thread reader;

  /// Strict mode (max_retries == 0) only.  A shard that answered all its
  /// batch jobs can still have broken protocol afterwards — extra output,
  /// an unexpected exit, a missing summary.  The delivered results are
  /// trustworthy (each was verified in arrival order), but the batch must
  /// not report success: the summary counters are incomplete and the
  /// worker is not behaving as specified.  Returns the failure
  /// description, or "" for a fully clean shard.
  [[nodiscard]] std::string residual_failure() const {
    if (completed < assigned.size()) return "";  // job errors cover it
    if (!violation.empty()) {
      return "process shard: " + violation + " after its last job";
    }
    if (dead) {
      if (!exited_cleanly(wait_status)) {
        return "process shard: " + describe_exit(wait_status) +
               " after completing its jobs";
      }
      return "process shard: worker exited without a batch summary";
    }
    if (!summary_seen) {
      return "process shard: worker went silent without a batch summary";
    }
    return "";
  }
};

/// What one retry pass leaves behind: the per-shard tasks (for failure
/// classification) and whether the batch deadline fired during the pass.
struct WorkerPool::PassOutcome {
  std::vector<std::unique_ptr<PassTask>> tasks;
  bool batch_expired = false;
};

WorkerPool::WorkerPool(std::vector<std::string> worker_command,
                       unsigned shards, Options options)
    : worker_command_(std::move(worker_command)),
      shards_(resolve_threads(shards)),
      options_(options),
      slots_(shards_) {
  if (worker_command_.empty()) {
    throw InvalidArgument("WorkerPool: worker command must not be empty");
  }
}

WorkerPool::WorkerPool(std::vector<std::string> worker_command,
                       unsigned shards, std::chrono::milliseconds idle_timeout)
    : WorkerPool(std::move(worker_command), shards,
                 Options{.idle_timeout = idle_timeout}) {}

WorkerPool::~WorkerPool() {
  const std::lock_guard<std::mutex> lock(batch_mutex_);
  for (auto& slot : slots_) {
    if (slot.pid >= 0) retire_locked(slot, /*count_reaped=*/false);
  }
}

void WorkerPool::retire_locked(Slot& slot, bool count_reaped) {
  // Clean shutdown with the PR-4 no-hang ordering: stdin EOF first (an
  // idle worker exits 0 on it), then stdout — a worker somehow blocked
  // writing results dies on EPIPE instead of stalling the reap — then a
  // blocking reap so no zombie outlives the pool.
  if (slot.in_fd >= 0) {
    ::close(slot.in_fd);
    slot.in_fd = -1;
  }
  if (slot.out_fd >= 0) {
    ::close(slot.out_fd);
    slot.out_fd = -1;
  }
  if (slot.pid >= 0) {
    int status = 0;
    ::waitpid(static_cast<pid_t>(slot.pid), &status, 0);
    slot.pid = -1;
  }
  slot.died_dirty = false;  // a deliberate retirement is not a death
  // The credited summary (last_summary) deliberately survives retirement:
  // stats() keeps counting it until the slot respawns and folds it.
  if (count_reaped) {
    const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.workers_reaped;
  }
}

void WorkerPool::fold_slot_summary_locked(Slot& slot) {
  const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  if (!slot.has_summary) return;
  stats_.plans_compiled += slot.last_summary.total_compiled;
  stats_.plan_hits += slot.last_summary.total_hits;
  slot.has_summary = false;
  slot.last_summary = {};
}

void WorkerPool::reap_idle_locked(std::chrono::steady_clock::time_point now) {
  if (options_.idle_timeout.count() == 0) return;
  for (auto& slot : slots_) {
    if (slot.pid >= 0 && now - slot.last_used >= options_.idle_timeout) {
      retire_locked(slot, /*count_reaped=*/true);
    }
  }
}

void WorkerPool::reap_idle() {
  const std::lock_guard<std::mutex> lock(batch_mutex_);
  reap_idle_locked(std::chrono::steady_clock::now());
}

void WorkerPool::drain() {
  const std::lock_guard<std::mutex> lock(batch_mutex_);
  for (auto& slot : slots_) {
    if (slot.pid >= 0) retire_locked(slot, /*count_reaped=*/true);
  }
  quarantined_ = false;
  quarantine_reason_.clear();
}

bool WorkerPool::quarantined() const {
  const std::lock_guard<std::mutex> lock(batch_mutex_);
  return quarantined_;
}

std::size_t WorkerPool::live_workers() const {
  const std::lock_guard<std::mutex> lock(batch_mutex_);
  std::size_t live = 0;
  for (const auto& slot : slots_) {
    if (slot.pid >= 0) ++live;
  }
  return live;
}

WorkerPool::Stats WorkerPool::stats() const {
  // Aggregates = folded totals of every ended worker + the credited
  // cumulative totals of the current occupants.  A worker that dies
  // before its final worker_summary still contributes its last-seen
  // snapshot, so the counters are monotone across deaths (satellite:
  // nothing is lost but the final batch's delta, which summaries_lost
  // makes visible).
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  Stats merged = stats_;
  for (const auto& slot : slots_) {
    if (slot.has_summary) {
      merged.plans_compiled += slot.last_summary.total_compiled;
      merged.plan_hits += slot.last_summary.total_hits;
    }
  }
  return merged;
}

void WorkerPool::ensure_worker_locked(Slot& slot) {
  // Health check: a worker that died while idle (crash, OOM kill, …) is
  // detected here, before any frame is written, and replaced silently.
  if (slot.pid >= 0) {
    int status = 0;
    const pid_t reaped =
        ::waitpid(static_cast<pid_t>(slot.pid), &status, WNOHANG);
    if (reaped != 0) {
      if (slot.in_fd >= 0) ::close(slot.in_fd);
      if (slot.out_fd >= 0) ::close(slot.out_fd);
      slot.in_fd = slot.out_fd = -1;
      slot.pid = -1;
      slot.died_dirty = true;
    }
  }
  if (slot.pid >= 0) return;

  // The previous occupant (if any) is gone for good: move its credited
  // cumulative counters into the folded aggregates before the fresh
  // worker starts counting from zero.
  fold_slot_summary_locked(slot);

  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
    if (to_child[0] >= 0) {
      ::close(to_child[0]);
      ::close(to_child[1]);
    }
    throw ExecutionError("WorkerPool: pipe() failed");
  }
  // Parent-side ends never leak into later workers' exec; the child's ends
  // are re-homed onto fds 0/1 (dup2 clears FD_CLOEXEC on the duplicate).
  for (const int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
    set_cloexec(fd);
  }

  std::vector<char*> argv;
  argv.reserve(worker_command_.size() + 1);
  for (const auto& arg : worker_command_) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      ::close(fd);
    }
    throw ExecutionError("WorkerPool: fork() failed");
  }
  if (pid == 0) {
    // Child: wire stdin/stdout to the pipes and become the worker.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::execvp(argv[0], argv.data());
    _exit(127);  // exec failed; the parent reports it via the exit status
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  slot.pid = pid;
  slot.in_fd = to_child[1];
  slot.out_fd = from_child[0];
  slot.last_used = std::chrono::steady_clock::now();

  {
    const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.workers_spawned;
    if (slot.died_dirty) ++stats_.workers_respawned;
  }
  slot.died_dirty = false;
}

WorkerPool::PassOutcome WorkerPool::run_pass(
    const std::vector<BatchJob>& jobs,
    const std::vector<std::size_t>& runnable,
    detail::ReorderBuffer& buffer, const Executor::ResultCallback& on_result,
    std::chrono::steady_clock::time_point batch_start) {
  // Each pass is its own wire batch frame: a retried job reaches its
  // (possibly respawned) worker inside a fresh batch_begin/batch_end
  // envelope, so the worker-side protocol never sees a partial batch.
  const std::uint64_t batch_id = ++next_batch_id_;

  // Group-affinity routing: equal groups share a worker (and therefore a
  // plan-cache entry); within a shard, jobs keep ascending index order —
  // `runnable` is sorted, so retries preserve the deterministic order too.
  std::vector<std::vector<std::size_t>> assigned(shards_);
  for (const std::size_t i : runnable) {
    assigned[jobs[i].spec->group % shards_].push_back(i);
  }

  PassOutcome outcome;
  auto& tasks = outcome.tasks;

  std::atomic<bool> expired{false};
  std::thread monitor;
  std::mutex monitor_mutex;
  std::condition_variable monitor_cv;
  bool monitor_stop = false;
  const auto stop_monitor_now = [&] {
    if (!monitor.joinable()) return;
    {
      const std::lock_guard<std::mutex> lk(monitor_mutex);
      monitor_stop = true;
    }
    monitor_cv.notify_one();
    monitor.join();
  };
  // On the exception path the monitor must outlive return_workers (a
  // reader blocked on a hung worker needs it) but die before the locals
  // it captures; declared here, it unwinds right after the inner block.
  const ScopeExit stop_monitor(stop_monitor_now);

  {
    // Returns every checked-out worker at scope exit — even when a later
    // spawn or std::thread constructor throws mid-loop.  Order matters on
    // the partial-start paths: a task whose reader never started gets its
    // worker's stdout closed *first*, so a worker blocked writing results
    // dies on SIGPIPE and can neither stall the writer join nor the final
    // reap; a worker touched by such a path is retired as dead (the next
    // pass respawns the slot).  On the normal path both threads exist
    // and this is a plain join/join; healthy workers stay warm.
    const ScopeExit return_workers([&tasks] {
      for (const auto& t : tasks) {
        Slot* slot = t->slot;
        const bool reader_started = t->reader.joinable();
        if (!reader_started && slot->out_fd >= 0) {
          ::close(slot->out_fd);
          slot->out_fd = -1;
        }
        if (t->writer.joinable()) t->writer.join();
        if (reader_started) t->reader.join();
        if (t->dead || !reader_started) {
          // The reader already reaped a dead worker; a never-read worker
          // is reaped here.  Either way the slot is empty and dirty.
          if (slot->in_fd >= 0) {
            ::close(slot->in_fd);
            slot->in_fd = -1;
          }
          if (slot->out_fd >= 0) {
            ::close(slot->out_fd);
            slot->out_fd = -1;
          }
          if (slot->pid >= 0) {
            if (!t->dead) {
              int status = 0;
              ::waitpid(static_cast<pid_t>(slot->pid), &status, 0);
            }
            slot->pid = -1;
          }
          slot->died_dirty = true;
        } else {
          slot->last_used = std::chrono::steady_clock::now();
        }
      }
    });

    const std::int64_t start_ns = steady_now_ns();
    for (unsigned s = 0; s < shards_; ++s) {
      if (assigned[s].empty()) continue;  // never fork an idle shard
      ensure_worker_locked(slots_[s]);
      auto t = std::make_unique<PassTask>();
      t->slot = &slots_[s];
      t->assigned = std::move(assigned[s]);
      t->pid = slots_[s].pid;
      t->last_progress_ns.store(start_ns, std::memory_order_relaxed);
      tasks.push_back(std::move(t));  // visible to return_workers pre-start
    }

    for (const auto& t_ptr : tasks) {
      PassTask* t = t_ptr.get();

      t->writer = std::thread([t, &jobs, batch_id] {
        block_sigpipe_on_this_thread();
        const int fd = t->slot->in_fd;
        if (!write_all(fd, encode_batch_begin(batch_id) + "\n")) return;
        // Serialize-and-escape each distinct graph lazily, once, right
        // here: group routing sends every repeat of a structure to one
        // shard, so per-writer caching never duplicates work across
        // shards — and it parallelizes the text encoding and frees it
        // when this writer exits, instead of a serial up-front pass whose
        // escaped copies would live until the whole batch drained.
        std::unordered_map<const port::PortGraph*, std::string> escaped;
        for (const std::size_t idx : t->assigned) {
          const auto& job = jobs[idx];
          auto it = escaped.find(job.graph);
          if (it == escaped.end()) {
            const auto text = port::to_port_graph_string(*job.graph);
            std::string esc;
            esc.reserve(text.size() + text.size() / 16);
            detail::wire_escape(esc, text);
            it = escaped.emplace(job.graph, std::move(esc)).first;
          }
          WireJob wire;
          wire.index = idx;
          wire.algorithm = job.spec->algorithm;
          wire.param = job.spec->param;
          wire.threads = job.options.exec.threads;
          wire.max_rounds = job.options.max_rounds;
          wire.async = job.options.exec.async;
          std::string line =
              detail::encode_wire_job_preescaped(wire, it->second);
          line += '\n';
          if (!write_all(fd, line)) return;
        }
        // The frame stays open: no stdin close.  The worker answers the
        // batch_end with its summary and waits for the next batch.
        (void)write_all(fd, encode_batch_end(batch_id) + "\n");
      });

      t->reader = std::thread([t, &buffer, &on_result, batch_id] {
        const int fd = t->slot->out_fd;
        std::size_t line_no = 0;
        const auto violate = [t](std::string why) {
          t->violation = std::move(why);
          // A live worker that broke protocol will never send the summary
          // this reader is waiting for — kill it and drain to EOF (never
          // block it on a full stdout pipe); the pass classifies the
          // unfinished jobs after EOF and the next pass respawns the slot.
          const std::lock_guard<std::mutex> lk(t->kill_mutex);
          if (!t->reaped && !t->kill_sent && t->pid >= 0) {
            ::kill(static_cast<pid_t>(t->pid), SIGKILL);
            t->kill_sent = true;
          }
        };
        std::string pending;
        char chunk[1 << 16];
        bool at_eof = false;
        while (!t->summary_seen && !at_eof) {
          const ssize_t n = ::read(fd, chunk, sizeof chunk);
          if (n < 0 && errno == EINTR) continue;
          if (n <= 0) {
            at_eof = true;
            break;
          }
          pending.append(chunk, static_cast<std::size_t>(n));
          std::size_t nl;
          while ((nl = pending.find('\n')) != std::string::npos) {
            const std::string line = pending.substr(0, nl);
            pending.erase(0, nl + 1);
            ++line_no;
            if (!t->violation.empty()) continue;  // draining to EOF
            try {
              WorkerLine parsed = decode_worker_line(line);
              t->last_progress_ns.store(steady_now_ns(),
                                        std::memory_order_relaxed);
              if (parsed.kind == WorkerLine::Kind::kSummary) {
                if (parsed.summary.batch_id != batch_id) {
                  violate("worker summarized the wrong batch");
                  continue;
                }
                if (t->completed < t->assigned.size()) {
                  violate("worker summarized before answering its jobs");
                  continue;
                }
                if (!pending.empty()) {
                  violate("worker wrote past its batch summary");
                  continue;
                }
                t->summary = parsed.summary;
                {
                  // From here the worker is warm and off-batch: the
                  // deadline monitor must never touch it again.
                  const std::lock_guard<std::mutex> lk(t->kill_mutex);
                  t->settled = true;
                }
                t->summary_seen = true;
                break;  // batch served; the worker stays warm
              }
              // Workers execute their jobs strictly in arrival order; any
              // other index is a protocol violation.
              if (t->completed >= t->assigned.size() ||
                  parsed.index != t->assigned[t->completed]) {
                violate("worker answered for job index " +
                        std::to_string(parsed.index) +
                        (t->completed < t->assigned.size()
                             ? " while job " +
                                   std::to_string(t->assigned[t->completed]) +
                                   " was expected"
                             : " after finishing its batch"));
                continue;
              }
              const std::size_t idx = parsed.index;
              if (parsed.kind == WorkerLine::Kind::kResult) {
                buffer.results[idx] = std::move(parsed.result);
              } else {
                buffer.errors[idx] = std::make_exception_ptr(
                    ExecutionError("process shard: " + parsed.message));
              }
              ++t->completed;
              buffer.deposit_and_flush(idx, on_result);
            } catch (const Error& e) {
              violate("malformed worker " +
                      detail::describe_wire_line(line_no, line) + ": " +
                      e.what());
            }
          }
        }
        if (!at_eof) return;  // healthy: summary received, worker warm

        // EOF: the worker is gone (its own death, our SIGKILL after a
        // violation, or a deadline kill).  Record what it left behind and
        // reap it; the pass classifies the unfinished jobs afterwards.
        t->dead = true;
        if (!pending.empty()) {
          t->trailing = detail::describe_wire_line(line_no + 1, pending);
        }
        {
          // reaped-before-waitpid: once set, the monitor never SIGKILLs
          // this task, so the kill can never land on a recycled pid.
          const std::lock_guard<std::mutex> lk(t->kill_mutex);
          t->reaped = true;
        }
        ::waitpid(static_cast<pid_t>(t->pid), &t->wait_status, 0);
      });
    }

    if (options_.job_timeout.count() > 0 || options_.batch_timeout.count() > 0) {
      monitor = std::thread([this, &tasks, &expired, &monitor_mutex,
                             &monitor_cv, &monitor_stop, batch_start] {
        const auto kill_task = [this](PassTask& t, bool deadline) {
          const std::lock_guard<std::mutex> lk(t.kill_mutex);
          if (t.reaped || t.settled || t.kill_sent || t.pid < 0) return;
          ::kill(static_cast<pid_t>(t.pid), SIGKILL);
          t.kill_sent = true;
          if (deadline) {
            t.deadline_killed = true;
            const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            ++stats_.deadline_kills;
          }
        };
        std::unique_lock<std::mutex> lk(monitor_mutex);
        for (;;) {
          auto tick = std::chrono::milliseconds(20);
          if (options_.job_timeout.count() > 0) {
            tick = std::min(tick, std::chrono::milliseconds(std::max<
                                      std::int64_t>(
                                      1, options_.job_timeout.count() / 4)));
          }
          if (monitor_cv.wait_for(lk, tick, [&] { return monitor_stop; })) {
            return;
          }
          const auto now = std::chrono::steady_clock::now();
          if (options_.batch_timeout.count() > 0 &&
              now - batch_start >= options_.batch_timeout) {
            expired.store(true);
            for (const auto& t : tasks) kill_task(*t, /*deadline=*/false);
            return;
          }
          if (options_.job_timeout.count() > 0) {
            const std::int64_t now_ns = steady_now_ns();
            for (const auto& t : tasks) {
              const std::int64_t last =
                  t->last_progress_ns.load(std::memory_order_relaxed);
              if (now_ns - last >=
                  options_.job_timeout.count() * 1'000'000) {
                kill_task(*t, /*deadline=*/true);
              }
            }
          }
        }
      });
    }
  }  // return_workers: every thread joined, every dead worker reaped

  // Stop the monitor before reading `expired` so the verdict is final
  // (the ScopeExit covers the throw paths and no-ops after this).
  stop_monitor_now();
  outcome.batch_expired = expired.load();

  {
    const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.jobs_shipped += runnable.size();
    for (const auto& t : tasks) {
      if (t->summary_seen) {
        // Credit, don't fold: the worker is alive and its cumulative
        // totals keep superseding this snapshot batch after batch.
        t->slot->last_summary = t->summary;
        t->slot->has_summary = true;
      }
    }
  }
  return outcome;
}

void WorkerPool::run_fallback(const std::vector<BatchJob>& jobs,
                              const std::vector<std::size_t>& indices,
                              detail::ReorderBuffer& buffer,
                              const Executor::ResultCallback& on_result) {
  // Graceful degradation runs the exact run_synchronous the workers call,
  // so a rerouted job's result is bit-identical to its sharded twin.
  // Validate (base Executor) guarantees graph and factory are non-null.
  for (const std::size_t idx : indices) {
    const auto& job = jobs[idx];
    try {
      buffer.results[idx] =
          run_synchronous(*job.graph, *job.factory, job.options);
    } catch (...) {
      buffer.errors[idx] = std::current_exception();
    }
    buffer.deposit_and_flush(idx, on_result);
  }
  const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  stats_.fallback_jobs += indices.size();
}

void WorkerPool::run_batch(const std::vector<BatchJob>& jobs,
                           const Executor::ResultCallback& on_result) {
  if (jobs.empty()) return;
  const std::lock_guard<std::mutex> lock(batch_mutex_);

  const auto batch_start = std::chrono::steady_clock::now();
  reap_idle_locked(batch_start);
  {
    const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.batches_run;
  }

  detail::ReorderBuffer buffer(jobs.size());

  if (quarantined_) {
    if (options_.fallback_inprocess) {
      std::vector<std::size_t> all(jobs.size());
      for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
      run_fallback(jobs, all, buffer, on_result);
      buffer.rethrow_failures();
      return;
    }
    throw ExecutionError("process shard: pool quarantined (" +
                         quarantine_reason_ +
                         "); drain() resets it, or enable the in-process "
                         "fallback to degrade gracefully");
  }

  // Per-job attempt bookkeeping for the retry loop.  `attempts` is the
  // number of the try currently (or last) in flight, 1-based; `history`
  // collects one clause per failed attempt for the poison diagnostic.
  struct JobTracker {
    unsigned attempts = 1;
    std::string history;
  };
  std::vector<JobTracker> trackers(jobs.size());

  std::vector<std::size_t> runnable(jobs.size());
  for (std::size_t i = 0; i < runnable.size(); ++i) runnable[i] = i;

  const bool strict = options_.max_retries == 0;
  std::vector<std::string> residuals;  // strict-mode post-completion failures
  std::uint64_t deaths_this_batch = 0;
  unsigned retry_pass = 0;

  while (!runnable.empty()) {
    const PassOutcome outcome =
        run_pass(jobs, runnable, buffer, on_result, batch_start);
    std::vector<std::size_t> requeue;

    for (const auto& tp : outcome.tasks) {
      PassTask& t = *tp;
      if (!t.summary_seen) {
        // This pass's per-batch delta died with the worker; the credited
        // cumulative totals from earlier batches are safe in the slot.
        const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.summaries_lost;
      }
      if (t.summary_seen && !t.dead && t.violation.empty()) continue;
      if (t.dead) ++deaths_this_batch;

      std::string why;
      if (t.dead) {
        why = describe_exit(t.wait_status);
        if (t.deadline_killed) {
          why = "job deadline of " +
                std::to_string(options_.job_timeout.count()) +
                " ms exceeded; " + why;
        }
        if (!t.violation.empty()) why += " (" + t.violation + ")";
      } else {
        why = "protocol violation: " + (t.violation.empty()
                                            ? std::string("worker went silent")
                                            : t.violation);
      }
      if (!t.trailing.empty()) {
        why += "; truncated trailing output at " + t.trailing;
      }

      const auto& asg = t.assigned;
      if (t.completed >= asg.size()) {
        // Post-completion deviation: every job was delivered.  Strict
        // mode still fails the batch (the historical contract); resilient
        // mode retires the worker dirty and moves on — the deviation is
        // visible in summaries_lost / workers_respawned, not in results.
        if (strict) {
          const auto residual = t.residual_failure();
          if (!residual.empty()) residuals.push_back(residual);
        }
        continue;
      }

      if (outcome.batch_expired) {
        for (std::size_t k = t.completed; k < asg.size(); ++k) {
          const std::size_t idx = asg[k];
          buffer.errors[idx] = std::make_exception_ptr(ExecutionError(
              "process shard: batch deadline of " +
              std::to_string(options_.batch_timeout.count()) +
              " ms exceeded before job " + std::to_string(idx) +
              " completed (" + why + ")"));
          buffer.deposit_and_flush(idx, on_result);
        }
        continue;
      }

      if (strict) {
        for (std::size_t k = t.completed; k < asg.size(); ++k) {
          const std::size_t idx = asg[k];
          buffer.errors[idx] = std::make_exception_ptr(ExecutionError(
              "process shard: " + why + " before job " + std::to_string(idx) +
              " completed"));
          buffer.deposit_and_flush(idx, on_result);
        }
        continue;
      }

      // Charge the in-flight job one attempt; its shard siblings were
      // never started and are re-queued uncharged — that asymmetry is
      // what lets a poison job exhaust its own budget without dragging
      // the innocent jobs behind it into the quarantine.
      const std::size_t inflight = asg[t.completed];
      auto& tracker = trackers[inflight];
      if (!tracker.history.empty()) tracker.history += "; ";
      tracker.history +=
          "attempt " + std::to_string(tracker.attempts) + ": " + why;
      if (tracker.attempts > options_.max_retries) {
        buffer.errors[inflight] = std::make_exception_ptr(ExecutionError(
            "process shard: job " + std::to_string(inflight) +
            " poisoned after " + std::to_string(tracker.attempts) +
            " attempts (" + tracker.history + ")"));
        buffer.deposit_and_flush(inflight, on_result);
        const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.jobs_poisoned;
      } else {
        ++tracker.attempts;
        requeue.push_back(inflight);
      }
      for (std::size_t k = t.completed + 1; k < asg.size(); ++k) {
        requeue.push_back(asg[k]);
      }
    }

    if (outcome.batch_expired) {
      const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.batch_timeouts;
      break;
    }
    if (requeue.empty()) break;
    std::sort(requeue.begin(), requeue.end());

    if (options_.breaker_deaths != 0 &&
        deaths_this_batch > options_.breaker_deaths) {
      // Crash-loop breaker: the fleet is dying faster than retrying is
      // worth.  Quarantine (sticky until drain()) and either degrade to
      // in-process execution or fail the remaining jobs cleanly.
      quarantined_ = true;
      quarantine_reason_ =
          std::to_string(deaths_this_batch) + " worker deaths in one batch";
      {
        const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.pool_quarantines;
      }
      for (auto& slot : slots_) {
        if (slot.pid >= 0) retire_locked(slot, /*count_reaped=*/false);
      }
      if (options_.fallback_inprocess) {
        run_fallback(jobs, requeue, buffer, on_result);
      } else {
        for (const std::size_t idx : requeue) {
          buffer.errors[idx] = std::make_exception_ptr(ExecutionError(
              "process shard: pool quarantined (" + quarantine_reason_ +
              ") before job " + std::to_string(idx) + " completed"));
          buffer.deposit_and_flush(idx, on_result);
        }
      }
      break;
    }

    {
      const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      stats_.jobs_retried += requeue.size();
    }
    auto backoff = options_.retry_backoff * (1u << std::min(retry_pass, 6u));
    backoff = std::min(backoff, std::chrono::milliseconds(1000));
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    ++retry_pass;
    runnable = std::move(requeue);
  }

  // Job-level failures win (lowest index, as documented); in strict mode
  // a shard that finished its jobs but then broke protocol or died still
  // fails the batch — after full delivery, so the prefix rule holds.
  buffer.rethrow_failures();
  for (const auto& r : residuals) throw ExecutionError(r);
}

}  // namespace eds::runtime

#endif  // defined(_WIN32)
