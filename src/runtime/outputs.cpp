#include "runtime/outputs.hpp"

#include <algorithm>
#include <sstream>

namespace eds::runtime {

graph::EdgeSet validated_edge_set(const port::PortedGraph& pg,
                                  const RunResult& result) {
  const auto& g = pg.graph();
  if (result.outputs.size() != g.num_nodes()) {
    throw ExecutionError("validated_edge_set: node count mismatch");
  }

  // Membership lookup: claimed[v] is the sorted port list of v.
  const auto& claimed = result.outputs;
  auto claims = [&claimed](port::NodeId v, port::Port p) {
    return std::binary_search(claimed[v].begin(), claimed[v].end(), p);
  };

  graph::EdgeSet out(g.num_edges());
  for (port::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const port::Port i : claimed[v]) {
      const auto there = pg.ports().partner(v, i);
      if (!claims(there.node, there.port)) {
        std::ostringstream os;
        os << "validated_edge_set: inconsistent output — node " << v
           << " claims port " << i << " but node " << there.node
           << " does not claim port " << there.port;
        throw ExecutionError(os.str());
      }
      out.insert(pg.edge_at(v, i));
    }
  }
  return out;
}

bool all_outputs_identical(const RunResult& result) {
  if (result.outputs.empty()) return true;
  const auto& first = result.outputs.front();
  return std::all_of(result.outputs.begin(), result.outputs.end(),
                     [&first](const auto& x) { return x == first; });
}

std::size_t validated_selection_size(const port::PortGraph& g,
                                     const RunResult& result) {
  if (result.outputs.size() != g.num_nodes()) {
    throw ExecutionError("validated_selection_size: node count mismatch");
  }
  const auto& claimed = result.outputs;
  auto claims = [&claimed](port::NodeId v, port::Port p) {
    return std::binary_search(claimed[v].begin(), claimed[v].end(), p);
  };

  std::size_t selected = 0;
  for (port::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const port::Port i : claimed[v]) {
      const auto there = g.partner(v, i);
      if (!claims(there.node, there.port)) {
        std::ostringstream os;
        os << "validated_selection_size: inconsistent output at node " << v
           << " port " << i;
        throw ExecutionError(os.str());
      }
      // Count each structural edge once: from its lexicographically first
      // port (fixed points count from themselves).
      if (std::pair(v, i) <= std::pair(there.node, there.port)) ++selected;
    }
  }
  return selected;
}

std::optional<std::size_t> consistent_selection_size(const port::PortGraph& g,
                                                     const RunResult& result) {
  if (result.outputs.size() != g.num_nodes()) {
    throw ExecutionError("consistent_selection_size: node count mismatch");
  }
  const auto& claimed = result.outputs;
  auto claims = [&claimed](port::NodeId v, port::Port p) {
    return std::binary_search(claimed[v].begin(), claimed[v].end(), p);
  };

  std::size_t selected = 0;
  for (port::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const port::Port i : claimed[v]) {
      const auto there = g.partner(v, i);
      if (!claims(there.node, there.port)) return std::nullopt;
      if (std::pair(v, i) <= std::pair(there.node, there.port)) ++selected;
    }
  }
  return selected;
}

}  // namespace eds::runtime
