#include "runtime/executor.hpp"

#include "runtime/batch.hpp"
#include "runtime/reorder.hpp"
#include "util/error.hpp"

namespace eds::runtime {

Executor::~Executor() = default;

void Executor::validate(const std::vector<BatchJob>& jobs) const {
  for (const auto& job : jobs) {
    if (job.graph == nullptr || job.factory == nullptr) {
      throw InvalidArgument("Executor: job requires a graph and a factory");
    }
  }
}

std::vector<RunResult> Executor::run(const std::vector<BatchJob>& jobs) const {
  std::vector<RunResult> results(jobs.size());
  run_streaming(jobs, [&results](std::size_t i, RunResult&& result) {
    results[i] = std::move(result);
  });
  return results;
}

InProcessExecutor::InProcessExecutor(unsigned threads) : pool_(threads) {}

InProcessExecutor::~InProcessExecutor() = default;

void InProcessExecutor::run_streaming(const std::vector<BatchJob>& jobs,
                                      const ResultCallback& on_result) const {
  validate(jobs);
  detail::ReorderBuffer buffer(jobs.size());
  pool_.run(jobs.size(), [&](std::size_t i) {
    try {
      buffer.results[i] =
          run_synchronous(*jobs[i].graph, *jobs[i].factory, jobs[i].options);
    } catch (...) {
      buffer.errors[i] = std::current_exception();
    }
    buffer.deposit_and_flush(i, on_result);
  });
  buffer.rethrow_failures();
}

}  // namespace eds::runtime
