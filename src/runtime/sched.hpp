// Adversarial schedule search for the asynchronous engine.
//
// The paper's guarantees are worst-case over all port numberings and all
// executions; seed-random sampling of the async engine explores executions
// blindly.  AdversarialScheduler turns that into a directed search: it
// generates Schedule perturbations (runtime/fault.hpp) for AsyncPolicy's
// timeline — which orders events by (time, priority, node, port, seq) and
// honours per-link delay overrides — runs them, and keeps the worst witness
// per metric.  Four strategies:
//
//  * kRandom — seed-random sampling, the baseline the adversaries are
//    measured against: each probe re-seeds the run (fresh delay matrix and
//    fault draws), no Schedule at all.
//  * kPct — PCT-style random priorities with d change points: every probe
//    draws a fresh priority seed and d event-count change points; crossing
//    one demotes the node that crossed it (its sends then take demote_ticks
//    extra latency), the virtual-time analogue of PCT's depth-d priority
//    lowering.
//  * kDelay — delay-bounded perturbation of the per-link delay matrix:
//    each probe forces a random subset of links to adversarially chosen
//    latencies within a bound derived from the delay model and the round
//    timeout (large enough to blow an explicit timeout, never unbounded).
//  * kClimb — greedy hill-climb: mutate the best schedule found so far
//    (flip overrides, add/drop change points, re-seed priorities) and keep
//    the mutant whenever its lexicographic badness score does not regress.
//
// Every probe is a pure function of (base options, schedule), so any
// witness serializes into a ReplayFile and re-executes bit-identically;
// shrink_witness delta-debugs a witness schedule down to a minimal
// reproducer that still exhibits the recorded metric.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "runtime/async.hpp"

namespace eds::runtime {

/// The search strategies (see the header comment).
enum class AdversaryStrategy : std::uint8_t {
  kRandom,  ///< seed-random sampling (the baseline)
  kPct,     ///< random priorities + d change-point demotions
  kDelay,   ///< bounded perturbation of the delay matrix
  kClimb,   ///< greedy hill-climb over schedule mutations
};

/// CLI/wire token for `strategy` ("random", "pct", "delay", "climb").
[[nodiscard]] std::string adversary_token(AdversaryStrategy strategy);

/// Inverse of adversary_token; nullopt for an unknown token.
[[nodiscard]] std::optional<AdversaryStrategy> adversary_from_token(
    const std::string& token);

/// The observables the search maximizes, extracted from one AsyncResult.
/// `selected` counts structural edges claimed from *both* endpoints (the
/// approximation-ratio numerator); `inconsistent` counts one-sided port
/// claims — the endpoint-inconsistency metric of the degradation story.
struct ScheduleMetrics {
  Round rounds = 0;                ///< rounds-to-halt (max fired round)
  std::uint64_t virtual_time = 0;  ///< ticks-to-halt (virtual clock)
  std::uint64_t selected = 0;      ///< edges selected consistently
  std::uint64_t inconsistent = 0;  ///< one-sided selection claims

  [[nodiscard]] bool operator==(const ScheduleMetrics&) const = default;
};

/// The metric axes, for shrink targets and replay verification.
enum class AdversaryMetric : std::uint8_t {
  kRounds,
  kVirtualTime,
  kSelected,
  kInconsistent,
};

/// Stable token for a metric ("rounds", "time", "selected", "inconsistent")
/// — the vocabulary of ReplayFile::metrics.
[[nodiscard]] std::string metric_token(AdversaryMetric metric);

/// Inverse of metric_token; nullopt for an unknown token.
[[nodiscard]] std::optional<AdversaryMetric> metric_from_token(
    const std::string& token);

/// Reads one axis out of a ScheduleMetrics.
[[nodiscard]] std::uint64_t metric_value(const ScheduleMetrics& metrics,
                                         AdversaryMetric metric);

/// Computes the metrics of one finished run on `g`.
[[nodiscard]] ScheduleMetrics measure_schedule(const port::PortGraph& g,
                                               const AsyncResult& result);

/// One evaluated schedule the search decided to keep: the exact options
/// that produced it (including the Schedule), its metrics, and the full
/// result for downstream feasibility/ratio analysis.
struct ScheduleWitness {
  AsyncOptions options;
  ScheduleMetrics metrics;
  AsyncResult result;
};

/// Outcome of one search: the worst witness per metric (ties keep the
/// earliest probe, so reports are deterministic), plus accounting.
struct AdversaryReport {
  ScheduleWitness worst_rounds;
  ScheduleWitness worst_time;
  ScheduleWitness worst_selected;
  ScheduleWitness worst_inconsistent;
  std::size_t evaluated = 0;  ///< probes that ran to completion
  std::size_t failures = 0;   ///< probes whose run threw (crash witnesses)

  /// The headline witness: inconsistency when any probe produced one-sided
  /// claims, otherwise the largest selection (the ratio numerator),
  /// otherwise the slowest run — the precedence the hill-climb score uses.
  [[nodiscard]] const ScheduleWitness& primary() const;

  /// The metric axis primary() was chosen on.
  [[nodiscard]] AdversaryMetric primary_metric() const;
};

/// The pluggable schedule generator: one instance per (instance, strategy)
/// search.  propose() yields the schedule for probe `step`; observe() feeds
/// the measured outcome back (the hill-climb's fitness signal; a no-op for
/// the stateless strategies).  Deterministic in (strategy, base, seed) —
/// two searches with equal inputs propose identical schedule sequences.
class AdversarialScheduler {
 public:
  /// `total_ports` is the instance's flat port count (the delay-matrix
  /// width); `horizon` an event-count estimate for change-point placement —
  /// pass the unperturbed run's AsyncStats::events.
  AdversarialScheduler(AdversaryStrategy strategy, AsyncOptions base,
                       std::uint64_t seed, std::size_t total_ports,
                       std::uint64_t horizon);

  /// Options for probe `step` (step 0 is always the unperturbed base, so
  /// every report's worst is at least the base run).
  [[nodiscard]] AsyncOptions propose(std::size_t step) const;

  /// Feeds probe `step`'s outcome back into the strategy state.
  void observe(std::size_t step, const AsyncOptions& options,
               const ScheduleMetrics& metrics);

 private:
  AdversaryStrategy strategy_;
  AsyncOptions base_;
  std::uint64_t seed_ = 0;
  std::size_t total_ports_ = 0;
  std::uint64_t horizon_ = 0;
  std::uint64_t delay_bound_ = 1;
  // Hill-climb state: the incumbent and its score.
  AsyncOptions best_;
  std::array<std::uint64_t, 4> best_score_{};
  bool have_best_ = false;
};

/// Runs `budget` probes of `strategy` against one instance and returns the
/// worst witness per metric.  `seed` drives the search (probe seeds,
/// priorities, mutations); `base` is the environment under attack (delay
/// model, faults, timeout).  Throws InvalidArgument when `base` runs the
/// α-synchronizer: that mode is schedule-oblivious by construction (its
/// outputs are bit-identical to the synchronous engine for every delay
/// matrix), so searching it is a user error.  Probes that throw (an algorithm
/// driven past max_rounds, say) are counted in `failures` and skipped.
/// Deterministic: equal arguments give equal reports, independent of
/// thread count (the loop is sequential by design).
[[nodiscard]] AdversaryReport adversary_search(const port::PortGraph& g,
                                               const ProgramFactory& factory,
                                               AdversaryStrategy strategy,
                                               const AsyncOptions& base,
                                               std::size_t budget,
                                               std::uint64_t seed,
                                               const RunOptions& run_options = {});

/// Delta-debugging shrink: reduces `witness.options.schedule` to a minimal
/// reproducer whose `metric` is still >= the witness's recorded value —
/// first dropping whole lanes (change points, overrides, the priority
/// seed), then ddmin-style chunk removal over the change-point and
/// override lists.  Returns a fresh witness for the shrunk schedule with
/// its *own* measured metrics (>= the target on `metric` by construction),
/// so serializing it records exactly what a replay will reproduce.
[[nodiscard]] ScheduleWitness shrink_witness(const port::PortGraph& g,
                                             const ProgramFactory& factory,
                                             const ScheduleWitness& witness,
                                             AdversaryMetric metric,
                                             const RunOptions& run_options = {});

}  // namespace eds::runtime
