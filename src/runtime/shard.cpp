#include "runtime/shard.hpp"

#include <iomanip>
#include <limits>
#include <sstream>
#include <utility>

#include "runtime/worker_pool.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace eds::runtime {

namespace {

// ---------------------------------------------------------------------------
// Wire codecs.  The protocol is NDJSON with a *fixed field order* (the
// shapes in shard.hpp): encoders and decoders are two halves of one
// implementation, so a strict sequential parser is both sufficient and the
// cheapest way to reject malformed input loudly.

void append_escaped(std::string& out, const std::string& s) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
}

/// Strict sequential scanner over one wire line.
class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) {}

  /// Consumes the exact literal `text` or throws.
  void lit(const char* text) {
    for (const char* p = text; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) {
        throw InvalidArgument("wire: expected '" + std::string(text) +
                              "' at offset " + std::to_string(pos_));
      }
      ++pos_;
    }
  }

  [[nodiscard]] bool peek(char c) const {
    return pos_ < s_.size() && s_[pos_] == c;
  }

  /// Consumes `text` if it is next; returns whether it did.
  [[nodiscard]] bool try_lit(const char* text) {
    std::size_t p = pos_;
    for (const char* t = text; *t != '\0'; ++t, ++p) {
      if (p >= s_.size() || s_[p] != *t) return false;
    }
    pos_ = p;
    return true;
  }

  [[nodiscard]] std::uint64_t uint() {
    if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
      throw InvalidArgument("wire: expected digit at offset " +
                            std::to_string(pos_));
    }
    std::uint64_t value = 0;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(s_[pos_] - '0');
      if (value > (UINT64_MAX - digit) / 10) {
        throw InvalidArgument("wire: integer overflow");
      }
      value = value * 10 + digit;
      ++pos_;
    }
    return value;
  }

  /// A JSON boolean literal.
  [[nodiscard]] bool boolean() {
    if (try_lit("true")) return true;
    if (try_lit("false")) return false;
    throw InvalidArgument("wire: expected boolean at offset " +
                          std::to_string(pos_));
  }

  /// A non-negative real as std::ostream writes doubles at max_digits10
  /// (plain or scientific notation) — the loss/duplication probabilities
  /// round-trip bit-exactly through this.
  [[nodiscard]] double real() {
    const std::size_t start = pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      const bool numeric = (c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                           c == 'E' || c == '+' || c == '-';
      if (!numeric) break;
      ++pos_;
    }
    if (pos_ == start) {
      throw InvalidArgument("wire: expected number at offset " +
                            std::to_string(pos_));
    }
    try {
      std::size_t used = 0;
      const double value = std::stod(s_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) throw std::invalid_argument("trailing");
      return value;
    } catch (const std::exception&) {
      throw InvalidArgument("wire: malformed number at offset " +
                            std::to_string(start));
    }
  }

  [[nodiscard]] std::string str() {
    lit("\"");
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) throw InvalidArgument("wire: unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) throw InvalidArgument("wire: dangling escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            throw InvalidArgument("wire: truncated \\u escape");
          }
          unsigned value = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else throw InvalidArgument("wire: bad \\u escape");
          }
          if (value > 0xFF) {
            throw InvalidArgument("wire: non-latin \\u escape unsupported");
          }
          out += static_cast<char>(value);
          break;
        }
        default:
          throw InvalidArgument("wire: unknown escape");
      }
    }
  }

  void end() const {
    if (pos_ != s_.size()) {
      throw InvalidArgument("wire: trailing bytes after object");
    }
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

void check_schema_encodable(int schema) {
  if (schema < kLegacyWireSchemaVersion || schema > kWireSchemaVersion) {
    throw InvalidArgument("wire: cannot encode schema version " +
                          std::to_string(schema));
  }
}

void append_prefix(std::string& out, int schema) {
  out += "{\"schema\":";
  out += std::to_string(schema);
  out += ',';
}

/// Consumes the versioned line prefix and returns the schema spoken.
/// Anything outside [legacy, current] is rejected loudly, never misparsed.
int consume_prefix(Cursor& c) {
  c.lit("{\"schema\":");
  const auto schema = c.uint();
  if (schema < static_cast<std::uint64_t>(kLegacyWireSchemaVersion) ||
      schema > static_cast<std::uint64_t>(kWireSchemaVersion)) {
    throw InvalidArgument("wire: unsupported schema version " +
                          std::to_string(schema));
  }
  c.lit(",");
  return static_cast<int>(schema);
}

/// Writes a probability exactly as the replay codec does — max_digits10,
/// so decode's std::stod recovers the identical bits.
std::string format_prob(double value) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << value;
  return os.str();
}

/// The fixed-order `"async":{…}` segment of a schema-2 job line.
void append_async(std::string& out, const AsyncOptions& async) {
  out += "\"async\":{\"synchronizer\":";
  out += async.synchronizer ? "true" : "false";
  out += ",\"delay\":\"";
  append_escaped(out, format_delay_model(async.delay));
  out += "\",\"seed\":";
  out += std::to_string(async.seed);
  out += ",\"timeout\":";
  out += std::to_string(async.round_timeout);
  out += ",\"loss\":";
  out += format_prob(async.faults.loss);
  out += ",\"dup\":";
  out += format_prob(async.faults.duplicate);
  out += ",\"crashes\":[";
  for (std::size_t k = 0; k < async.faults.crashes.size(); ++k) {
    if (k != 0) out += ',';
    out += '[';
    out += std::to_string(async.faults.crashes[k].node);
    out += ',';
    out += std::to_string(async.faults.crashes[k].time);
    out += ']';
  }
  out += "]},";
}

/// Parses the async segment after its `"synchronizer":` key literal.
AsyncOptions decode_async(Cursor& c) {
  AsyncOptions async;
  async.synchronizer = c.boolean();
  c.lit(",\"delay\":");
  async.delay = parse_delay_model(c.str());
  c.lit(",\"seed\":");
  async.seed = c.uint();
  c.lit(",\"timeout\":");
  async.round_timeout = c.uint();
  c.lit(",\"loss\":");
  async.faults.loss = c.real();
  c.lit(",\"dup\":");
  async.faults.duplicate = c.real();
  for (const double p : {async.faults.loss, async.faults.duplicate}) {
    if (p < 0.0 || p > 1.0) {
      throw InvalidArgument("wire: fault probability outside [0, 1]");
    }
  }
  c.lit(",\"crashes\":[");
  if (!c.peek(']')) {
    while (true) {
      CrashEvent crash;
      c.lit("[");
      crash.node = static_cast<port::NodeId>(c.uint());
      c.lit(",");
      crash.time = c.uint();
      c.lit("]");
      async.faults.crashes.push_back(crash);
      if (c.peek(',')) {
        c.lit(",");
        continue;
      }
      break;
    }
  }
  c.lit("]},");
  return async;
}

/// Job-line body with the graph segment already escaped — the writer
/// threads escape each distinct graph once and reuse it across every
/// repeat, instead of re-scanning the (potentially large) text per job.
std::string encode_job_line(std::size_t index, const std::string& algorithm,
                            Port param, unsigned threads, Round max_rounds,
                            const std::optional<AsyncOptions>& async,
                            const std::string& escaped_graph, int schema) {
  check_schema_encodable(schema);
  if (async.has_value() && schema < 2) {
    throw InvalidArgument("wire: schema 1 carries no AsyncOptions");
  }
  std::string out;
  out.reserve(escaped_graph.size() + algorithm.size() + 160);
  append_prefix(out, schema);
  out += "\"job\":{\"index\":";
  out += std::to_string(index);
  out += ",\"algorithm\":\"";
  append_escaped(out, algorithm);
  out += "\",\"param\":";
  out += std::to_string(param);
  out += ",\"threads\":";
  out += std::to_string(threads);
  out += ",\"max_rounds\":";
  out += std::to_string(max_rounds);
  out += ',';
  if (async.has_value()) append_async(out, *async);
  out += "\"graph\":\"";
  out += escaped_graph;
  out += "\"}}";
  return out;
}

/// Parses a job body after its `"job":{"index":` key literal.
WireJob decode_job_body(Cursor& c, int schema) {
  WireJob job;
  job.index = static_cast<std::size_t>(c.uint());
  c.lit(",\"algorithm\":");
  job.algorithm = c.str();
  c.lit(",\"param\":");
  job.param = static_cast<Port>(c.uint());
  c.lit(",\"threads\":");
  job.threads = static_cast<unsigned>(c.uint());
  c.lit(",\"max_rounds\":");
  job.max_rounds = static_cast<Round>(c.uint());
  c.lit(",");
  if (schema >= 2 && c.try_lit("\"async\":{\"synchronizer\":")) {
    job.async = decode_async(c);
  }
  c.lit("\"graph\":");
  job.graph_text = c.str();
  c.lit("}}");
  c.end();
  return job;
}

}  // namespace

std::string encode_wire_job(const WireJob& job, int schema) {
  std::string escaped;
  escaped.reserve(job.graph_text.size());
  append_escaped(escaped, job.graph_text);
  return encode_job_line(job.index, job.algorithm, job.param, job.threads,
                         job.max_rounds, job.async, escaped, schema);
}

WireJob decode_wire_job(const std::string& line) {
  Cursor c(line);
  const int schema = consume_prefix(c);
  c.lit("\"job\":{\"index\":");
  return decode_job_body(c, schema);
}

std::string encode_batch_begin(std::uint64_t batch_id) {
  std::string out;
  append_prefix(out, kWireSchemaVersion);
  out += "\"batch_begin\":{\"batch\":";
  out += std::to_string(batch_id);
  out += "}}";
  return out;
}

std::string encode_batch_end(std::uint64_t batch_id) {
  std::string out;
  append_prefix(out, kWireSchemaVersion);
  out += "\"batch_end\":{\"batch\":";
  out += std::to_string(batch_id);
  out += "}}";
  return out;
}

ParentLine decode_parent_line(const std::string& line) {
  Cursor c(line);
  ParentLine parsed;
  parsed.schema = consume_prefix(c);
  if (c.try_lit("\"batch_begin\":{\"batch\":")) {
    if (parsed.schema < 2) {
      throw InvalidArgument("wire: batch framing requires schema 2");
    }
    parsed.kind = ParentLine::Kind::kBatchBegin;
    parsed.batch_id = c.uint();
    c.lit("}}");
    c.end();
    return parsed;
  }
  if (c.try_lit("\"batch_end\":{\"batch\":")) {
    if (parsed.schema < 2) {
      throw InvalidArgument("wire: batch framing requires schema 2");
    }
    parsed.kind = ParentLine::Kind::kBatchEnd;
    parsed.batch_id = c.uint();
    c.lit("}}");
    c.end();
    return parsed;
  }
  c.lit("\"job\":{\"index\":");
  parsed.kind = ParentLine::Kind::kJob;
  parsed.job = decode_job_body(c, parsed.schema);
  return parsed;
}

std::string encode_wire_result(std::size_t index, const RunResult& result,
                               int schema) {
  check_schema_encodable(schema);
  std::string out;
  out.reserve(64 + result.outputs.size() * 4);
  append_prefix(out, schema);
  out += "\"result\":{\"index\":";
  out += std::to_string(index);
  out += ",\"rounds\":";
  out += std::to_string(result.stats.rounds);
  out += ",\"messages\":";
  out += std::to_string(result.stats.messages_sent);
  out += ",\"ports_served\":";
  out += std::to_string(result.stats.ports_served);
  out += ",\"outputs\":[";
  for (std::size_t v = 0; v < result.outputs.size(); ++v) {
    if (v != 0) out += ',';
    out += '[';
    for (std::size_t k = 0; k < result.outputs[v].size(); ++k) {
      if (k != 0) out += ',';
      out += std::to_string(result.outputs[v][k]);
    }
    out += ']';
  }
  out += "]}}";
  return out;
}

std::string encode_wire_error(std::size_t index, const std::string& message,
                              int schema) {
  check_schema_encodable(schema);
  std::string out;
  append_prefix(out, schema);
  out += "\"error\":{\"index\":";
  out += std::to_string(index);
  out += ",\"message\":\"";
  append_escaped(out, message);
  out += "\"}}";
  return out;
}

std::string encode_worker_summary(const WorkerSummary& summary, int schema) {
  check_schema_encodable(schema);
  std::string out;
  append_prefix(out, schema);
  out += "\"worker_summary\":{";
  if (schema >= 2) {
    out += "\"batch\":";
    out += std::to_string(summary.batch_id);
    out += ',';
  }
  out += "\"jobs\":";
  out += std::to_string(summary.jobs);
  out += ",\"plans_compiled\":";
  out += std::to_string(summary.plans_compiled);
  out += ",\"plan_hits\":";
  out += std::to_string(summary.plan_hits);
  if (schema >= 2) {
    out += ",\"total_jobs\":";
    out += std::to_string(summary.total_jobs);
    out += ",\"total_compiled\":";
    out += std::to_string(summary.total_compiled);
    out += ",\"total_hits\":";
    out += std::to_string(summary.total_hits);
  }
  out += "}}";
  return out;
}

WorkerLine decode_worker_line(const std::string& line) {
  Cursor c(line);
  WorkerLine parsed;
  parsed.schema = consume_prefix(c);
  if (c.try_lit("\"result\":{\"index\":")) {
    parsed.kind = WorkerLine::Kind::kResult;
    parsed.index = static_cast<std::size_t>(c.uint());
    c.lit(",\"rounds\":");
    parsed.result.stats.rounds = static_cast<Round>(c.uint());
    c.lit(",\"messages\":");
    parsed.result.stats.messages_sent = c.uint();
    c.lit(",\"ports_served\":");
    parsed.result.stats.ports_served = c.uint();
    c.lit(",\"outputs\":[");
    if (!c.peek(']')) {
      while (true) {
        c.lit("[");
        std::vector<Port> ports;
        if (!c.peek(']')) {
          while (true) {
            ports.push_back(static_cast<Port>(c.uint()));
            if (c.peek(',')) {
              c.lit(",");
              continue;
            }
            break;
          }
        }
        c.lit("]");
        parsed.result.outputs.push_back(std::move(ports));
        if (c.peek(',')) {
          c.lit(",");
          continue;
        }
        break;
      }
    }
    c.lit("]}}");
    c.end();
    return parsed;
  }
  if (c.try_lit("\"error\":{\"index\":")) {
    parsed.kind = WorkerLine::Kind::kError;
    parsed.index = static_cast<std::size_t>(c.uint());
    c.lit(",\"message\":");
    parsed.message = c.str();
    c.lit("}}");
    c.end();
    return parsed;
  }
  c.lit("\"worker_summary\":{");
  parsed.kind = WorkerLine::Kind::kSummary;
  if (parsed.schema >= 2) {
    c.lit("\"batch\":");
    parsed.summary.batch_id = c.uint();
    c.lit(",");
  }
  c.lit("\"jobs\":");
  parsed.summary.jobs = c.uint();
  c.lit(",\"plans_compiled\":");
  parsed.summary.plans_compiled = c.uint();
  c.lit(",\"plan_hits\":");
  parsed.summary.plan_hits = c.uint();
  if (parsed.schema >= 2) {
    c.lit(",\"total_jobs\":");
    parsed.summary.total_jobs = c.uint();
    c.lit(",\"total_compiled\":");
    parsed.summary.total_compiled = c.uint();
    c.lit(",\"total_hits\":");
    parsed.summary.total_hits = c.uint();
  } else {
    // A single-batch legacy worker's lifetime IS the batch: mirror the
    // counters so consumers can read the cumulative fields uniformly.
    parsed.summary.total_jobs = parsed.summary.jobs;
    parsed.summary.total_compiled = parsed.summary.plans_compiled;
    parsed.summary.total_hits = parsed.summary.plan_hits;
  }
  c.lit("}}");
  c.end();
  return parsed;
}

namespace detail {

// Writer-thread fast path shared with worker_pool.cpp: escape each
// distinct graph once, then stamp job lines around the cached segment.
void wire_escape(std::string& out, const std::string& text) {
  append_escaped(out, text);
}

std::string encode_wire_job_preescaped(const WireJob& job,
                                       const std::string& escaped_graph) {
  return encode_job_line(job.index, job.algorithm, job.param, job.threads,
                         job.max_rounds, job.async, escaped_graph,
                         kWireSchemaVersion);
}

std::string describe_wire_line(std::size_t line_no, const std::string& line) {
  // Keep the snippet one error-message-sized line no matter what arrived:
  // escape the control characters a garbled frame tends to carry and cut
  // at 80 chars — enough to recognize the line, never a log bomb.
  constexpr std::size_t kMaxSnippet = 80;
  std::string snippet;
  append_escaped(snippet, line.size() > kMaxSnippet
                              ? line.substr(0, kMaxSnippet)
                              : line);
  if (line.size() > kMaxSnippet) snippet += "…";
  return "line " + std::to_string(line_no) + " (\"" + snippet + "\")";
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Chaos spec codec + action function.  Pure and deterministic so every
// test failure replays: the worker's behaviour is a function of (spec,
// job ordinal, wire index) and nothing else.

namespace {

[[nodiscard]] std::uint64_t parse_chaos_uint(const std::string& spec,
                                             const std::string& field) {
  if (field.empty() ||
      field.find_first_not_of("0123456789") != std::string::npos) {
    throw InvalidArgument("chaos: expected a number in \"" + spec + "\"");
  }
  return std::stoull(field);
}

/// splitmix64: the same tiny deterministic mixer the fault layer uses —
/// full-period, seedable, identical on every platform.
[[nodiscard]] std::uint64_t chaos_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ChaosSpec parse_chaos_spec(const std::string& spec) {
  ChaosSpec parsed;
  if (spec.empty()) return parsed;

  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      fields.push_back(spec.substr(start));
      break;
    }
    fields.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }

  const auto want = [&](std::size_t n) {
    if (fields.size() != n) {
      throw InvalidArgument("chaos: \"" + spec + "\" takes " +
                            std::to_string(n - 1) + " argument(s), got " +
                            std::to_string(fields.size() - 1));
    }
  };
  const std::string& mode = fields[0];
  if (mode == "crash") {
    want(2);
    parsed.mode = ChaosSpec::Mode::kCrash;
    parsed.n = parse_chaos_uint(spec, fields[1]);
  } else if (mode == "hang") {
    want(3);
    parsed.mode = ChaosSpec::Mode::kHang;
    parsed.n = parse_chaos_uint(spec, fields[1]);
    parsed.ms = parse_chaos_uint(spec, fields[2]);
  } else if (mode == "garbage") {
    want(2);
    parsed.mode = ChaosSpec::Mode::kGarbage;
    parsed.n = parse_chaos_uint(spec, fields[1]);
  } else if (mode == "slow") {
    want(3);
    parsed.mode = ChaosSpec::Mode::kSlow;
    parsed.n = parse_chaos_uint(spec, fields[1]);
    parsed.ms = parse_chaos_uint(spec, fields[2]);
  } else if (mode == "exit-mid") {
    want(2);
    parsed.mode = ChaosSpec::Mode::kExitMid;
    parsed.n = parse_chaos_uint(spec, fields[1]);
  } else if (mode == "poison") {
    want(2);
    parsed.mode = ChaosSpec::Mode::kPoison;
    parsed.n = parse_chaos_uint(spec, fields[1]);
  } else if (mode == "rand") {
    want(3);
    parsed.mode = ChaosSpec::Mode::kRandom;
    parsed.seed = parse_chaos_uint(spec, fields[1]);
    parsed.permille = parse_chaos_uint(spec, fields[2]);
    if (parsed.permille > 1000) {
      throw InvalidArgument("chaos: rand permille must be <= 1000, got " +
                            fields[2]);
    }
  } else {
    throw InvalidArgument(
        "chaos: unknown mode \"" + mode +
        "\" (expected crash, hang, garbage, slow, exit-mid, poison, rand)");
  }
  // The deterministic modes trigger on a 1-based ordinal/index; "the 0th
  // job" never exists for ordinals but poison:0 targets wire index 0.
  if (parsed.mode != ChaosSpec::Mode::kPoison &&
      parsed.mode != ChaosSpec::Mode::kRandom && parsed.n == 0) {
    throw InvalidArgument("chaos: job ordinal must be >= 1 in \"" + spec +
                          "\"");
  }
  return parsed;
}

std::string format_chaos_spec(const ChaosSpec& spec) {
  switch (spec.mode) {
    case ChaosSpec::Mode::kNone:
      return "";
    case ChaosSpec::Mode::kCrash:
      return "crash:" + std::to_string(spec.n);
    case ChaosSpec::Mode::kHang:
      return "hang:" + std::to_string(spec.n) + ":" + std::to_string(spec.ms);
    case ChaosSpec::Mode::kGarbage:
      return "garbage:" + std::to_string(spec.n);
    case ChaosSpec::Mode::kSlow:
      return "slow:" + std::to_string(spec.n) + ":" + std::to_string(spec.ms);
    case ChaosSpec::Mode::kExitMid:
      return "exit-mid:" + std::to_string(spec.n);
    case ChaosSpec::Mode::kPoison:
      return "poison:" + std::to_string(spec.n);
    case ChaosSpec::Mode::kRandom:
      return "rand:" + std::to_string(spec.seed) + ":" +
             std::to_string(spec.permille);
  }
  return "";
}

ChaosAction chaos_action(const ChaosSpec& spec, std::uint64_t job_ordinal,
                         std::size_t wire_index) {
  ChaosAction action;
  switch (spec.mode) {
    case ChaosSpec::Mode::kNone:
      break;
    case ChaosSpec::Mode::kCrash:
      // Triggers at the Nth job and stays armed past it, so a worker that
      // somehow survives (it should not) keeps trying to die.
      if (job_ordinal >= spec.n) action.mode = spec.mode;
      break;
    case ChaosSpec::Mode::kHang:
    case ChaosSpec::Mode::kGarbage:
    case ChaosSpec::Mode::kSlow:
    case ChaosSpec::Mode::kExitMid:
      if (job_ordinal == spec.n) {
        action.mode = spec.mode;
        action.ms = spec.ms;
      }
      break;
    case ChaosSpec::Mode::kPoison:
      if (wire_index == spec.n) action.mode = spec.mode;
      break;
    case ChaosSpec::Mode::kRandom: {
      const std::uint64_t draw = chaos_mix(spec.seed ^ chaos_mix(job_ordinal));
      if (draw % 1000 < spec.permille) {
        // Recoverable faults only — no hang (deadline-tuning territory)
        // and no poison (it would defeat a retry budget by design).
        switch ((draw >> 32) % 4) {
          case 0:
            action.mode = ChaosSpec::Mode::kCrash;
            break;
          case 1:
            action.mode = ChaosSpec::Mode::kGarbage;
            break;
          case 2:
            action.mode = ChaosSpec::Mode::kExitMid;
            break;
          default:
            action.mode = ChaosSpec::Mode::kSlow;
            action.ms = 2;
        }
      }
      break;
    }
  }
  return action;
}

// ---------------------------------------------------------------------------
// The executor itself: validation + stats surface over a WorkerPool.  The
// process machinery (fork/exec, framing, reader/writer threads, teardown)
// lives in worker_pool.cpp; unpooled mode simply runs each batch through
// an ephemeral single-batch pool, so both modes share one code path.

ProcessShardExecutor::ProcessShardExecutor(
    std::vector<std::string> worker_command, unsigned shards)
    : ProcessShardExecutor(std::move(worker_command), shards, Options()) {}

ProcessShardExecutor::ProcessShardExecutor(
    std::vector<std::string> worker_command, unsigned shards, Options options)
    : worker_command_(std::move(worker_command)),
      shards_(resolve_threads(shards)),
      options_(options) {
  if (worker_command_.empty()) {
    throw InvalidArgument(
        "ProcessShardExecutor: worker command must not be empty");
  }
#if defined(_WIN32)
  throw InvalidArgument(
      "ProcessShardExecutor: process sharding requires a POSIX platform");
#endif
}

ProcessShardExecutor::~ProcessShardExecutor() = default;

namespace {

void accumulate(ProcessShardExecutor::Stats& into,
                const ProcessShardExecutor::Stats& from) {
  into.jobs_shipped += from.jobs_shipped;
  into.batches_run += from.batches_run;
  into.workers_spawned += from.workers_spawned;
  into.workers_respawned += from.workers_respawned;
  into.workers_reaped += from.workers_reaped;
  into.plans_compiled += from.plans_compiled;
  into.plan_hits += from.plan_hits;
  into.jobs_retried += from.jobs_retried;
  into.jobs_poisoned += from.jobs_poisoned;
  into.deadline_kills += from.deadline_kills;
  into.batch_timeouts += from.batch_timeouts;
  into.pool_quarantines += from.pool_quarantines;
  into.fallback_jobs += from.fallback_jobs;
  into.summaries_lost += from.summaries_lost;
}

/// The executor's *_ms knobs, as the pool's chrono Options.
[[nodiscard]] WorkerPool::Options pool_options_from(
    const ProcessShardExecutor::Options& options, bool pooled) {
  WorkerPool::Options pool_options;
  pool_options.idle_timeout = std::chrono::milliseconds(
      pooled ? options.idle_timeout_ms : 0);  // ephemeral pools never reap
  pool_options.max_retries = options.max_retries;
  pool_options.retry_backoff =
      std::chrono::milliseconds(options.retry_backoff_ms);
  pool_options.job_timeout = std::chrono::milliseconds(options.job_timeout_ms);
  pool_options.batch_timeout =
      std::chrono::milliseconds(options.batch_timeout_ms);
  pool_options.breaker_deaths = options.breaker_deaths;
  pool_options.fallback_inprocess = options.fallback_inprocess;
  return pool_options;
}

}  // namespace

ProcessShardExecutor::Stats ProcessShardExecutor::stats() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  Stats merged = retired_;
  if (pool_) accumulate(merged, pool_->stats());
  return merged;
}

std::size_t ProcessShardExecutor::live_workers() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  return pool_ ? pool_->live_workers() : 0;
}

void ProcessShardExecutor::drain() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  if (pool_) pool_->drain();
}

bool ProcessShardExecutor::quarantined() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  return pool_ && pool_->quarantined();
}

void ProcessShardExecutor::validate(const std::vector<BatchJob>& jobs) const {
  Executor::validate(jobs);
  for (const auto& job : jobs) {
    if (!job.spec.has_value()) {
      throw InvalidArgument(
          "ProcessShardExecutor: job carries no JobSpec and cannot cross a "
          "process boundary");
    }
    if (job.options.collect_trace || job.options.collect_messages) {
      throw InvalidArgument(
          "ProcessShardExecutor: trace/message collection does not cross "
          "the wire");
    }
    if (job.options.exec.async.has_value() &&
        !job.options.exec.async->schedule.empty()) {
      throw InvalidArgument(
          "ProcessShardExecutor: adversarial schedules do not cross the "
          "wire; run scheduled jobs on the in-process backend");
    }
  }
}

#if defined(_WIN32)

void ProcessShardExecutor::run_streaming(const std::vector<BatchJob>&,
                                         const ResultCallback&) const {
  throw InvalidArgument(
      "ProcessShardExecutor: process sharding requires a POSIX platform");
}

#else

void ProcessShardExecutor::run_streaming(const std::vector<BatchJob>& jobs,
                                         const ResultCallback& on_result) const {
  validate(jobs);
  if (jobs.empty()) return;

  if (options_.pooled) {
    WorkerPool* pool = nullptr;
    {
      const std::lock_guard<std::mutex> lock(pool_mutex_);
      if (!pool_) {
        pool_ = std::make_unique<WorkerPool>(
            worker_command_, shards_,
            pool_options_from(options_, /*pooled=*/true));
      }
      pool = pool_.get();
    }
    // The pool serializes batches internally; holding pool_mutex_ across
    // the batch would deadlock stats() calls made from the callback.
    pool->run_batch(jobs, on_result);
    return;
  }

  // Unpooled: the pre-pool behaviour — a fresh fleet per batch, drained
  // before returning.  Counters merge into retired_ even when the batch
  // throws (jobs were shipped and workers forked either way).  The
  // resilience knobs apply within the batch; a quarantine dies with the
  // ephemeral pool.
  WorkerPool ephemeral(worker_command_, shards_,
                       pool_options_from(options_, /*pooled=*/false));
  try {
    ephemeral.run_batch(jobs, on_result);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    accumulate(retired_, ephemeral.stats());
    throw;
  }
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  accumulate(retired_, ephemeral.stats());
}

#endif  // defined(_WIN32)

}  // namespace eds::runtime
