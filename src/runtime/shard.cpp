#include "runtime/shard.hpp"

#include <cerrno>
#include <thread>
#include <unordered_map>
#include <utility>

#include "port/io.hpp"
#include "runtime/reorder.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace eds::runtime {

namespace {

// ---------------------------------------------------------------------------
// Wire codecs.  The protocol is NDJSON with a *fixed field order* (the
// shapes in shard.hpp): encoders and decoders are two halves of one
// implementation, so a strict sequential parser is both sufficient and the
// cheapest way to reject malformed input loudly.

void append_escaped(std::string& out, const std::string& s) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
}

/// Strict sequential scanner over one wire line.
class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) {}

  /// Consumes the exact literal `text` or throws.
  void lit(const char* text) {
    for (const char* p = text; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) {
        throw InvalidArgument("wire: expected '" + std::string(text) +
                              "' at offset " + std::to_string(pos_));
      }
      ++pos_;
    }
  }

  [[nodiscard]] bool peek(char c) const {
    return pos_ < s_.size() && s_[pos_] == c;
  }

  /// Consumes `text` if it is next; returns whether it did.
  [[nodiscard]] bool try_lit(const char* text) {
    std::size_t p = pos_;
    for (const char* t = text; *t != '\0'; ++t, ++p) {
      if (p >= s_.size() || s_[p] != *t) return false;
    }
    pos_ = p;
    return true;
  }

  [[nodiscard]] std::uint64_t uint() {
    if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
      throw InvalidArgument("wire: expected digit at offset " +
                            std::to_string(pos_));
    }
    std::uint64_t value = 0;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(s_[pos_] - '0');
      if (value > (UINT64_MAX - digit) / 10) {
        throw InvalidArgument("wire: integer overflow");
      }
      value = value * 10 + digit;
      ++pos_;
    }
    return value;
  }

  [[nodiscard]] std::string str() {
    lit("\"");
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) throw InvalidArgument("wire: unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) throw InvalidArgument("wire: dangling escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            throw InvalidArgument("wire: truncated \\u escape");
          }
          unsigned value = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else throw InvalidArgument("wire: bad \\u escape");
          }
          if (value > 0xFF) {
            throw InvalidArgument("wire: non-latin \\u escape unsupported");
          }
          out += static_cast<char>(value);
          break;
        }
        default:
          throw InvalidArgument("wire: unknown escape");
      }
    }
  }

  void end() const {
    if (pos_ != s_.size()) {
      throw InvalidArgument("wire: trailing bytes after object");
    }
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

void append_prefix(std::string& out) {
  out += "{\"schema\":";
  out += std::to_string(kWireSchemaVersion);
  out += ',';
}

void consume_prefix(Cursor& c) {
  c.lit("{\"schema\":");
  const auto schema = c.uint();
  if (schema != static_cast<std::uint64_t>(kWireSchemaVersion)) {
    throw InvalidArgument("wire: unsupported schema version " +
                          std::to_string(schema));
  }
  c.lit(",");
}

/// Job-line body with the graph segment already escaped — the writer
/// threads escape each distinct graph once and reuse it across every
/// repeat, instead of re-scanning the (potentially large) text per job.
std::string encode_job_line(std::size_t index, const std::string& algorithm,
                            Port param, unsigned threads, Round max_rounds,
                            const std::string& escaped_graph) {
  std::string out;
  out.reserve(escaped_graph.size() + algorithm.size() + 96);
  append_prefix(out);
  out += "\"job\":{\"index\":";
  out += std::to_string(index);
  out += ",\"algorithm\":\"";
  append_escaped(out, algorithm);
  out += "\",\"param\":";
  out += std::to_string(param);
  out += ",\"threads\":";
  out += std::to_string(threads);
  out += ",\"max_rounds\":";
  out += std::to_string(max_rounds);
  out += ",\"graph\":\"";
  out += escaped_graph;
  out += "\"}}";
  return out;
}

}  // namespace

std::string encode_wire_job(const WireJob& job) {
  std::string escaped;
  escaped.reserve(job.graph_text.size());
  append_escaped(escaped, job.graph_text);
  return encode_job_line(job.index, job.algorithm, job.param, job.threads,
                         job.max_rounds, escaped);
}

WireJob decode_wire_job(const std::string& line) {
  Cursor c(line);
  consume_prefix(c);
  WireJob job;
  c.lit("\"job\":{\"index\":");
  job.index = static_cast<std::size_t>(c.uint());
  c.lit(",\"algorithm\":");
  job.algorithm = c.str();
  c.lit(",\"param\":");
  job.param = static_cast<Port>(c.uint());
  c.lit(",\"threads\":");
  job.threads = static_cast<unsigned>(c.uint());
  c.lit(",\"max_rounds\":");
  job.max_rounds = static_cast<Round>(c.uint());
  c.lit(",\"graph\":");
  job.graph_text = c.str();
  c.lit("}}");
  c.end();
  return job;
}

std::string encode_wire_result(std::size_t index, const RunResult& result) {
  std::string out;
  out.reserve(64 + result.outputs.size() * 4);
  append_prefix(out);
  out += "\"result\":{\"index\":";
  out += std::to_string(index);
  out += ",\"rounds\":";
  out += std::to_string(result.stats.rounds);
  out += ",\"messages\":";
  out += std::to_string(result.stats.messages_sent);
  out += ",\"ports_served\":";
  out += std::to_string(result.stats.ports_served);
  out += ",\"outputs\":[";
  for (std::size_t v = 0; v < result.outputs.size(); ++v) {
    if (v != 0) out += ',';
    out += '[';
    for (std::size_t k = 0; k < result.outputs[v].size(); ++k) {
      if (k != 0) out += ',';
      out += std::to_string(result.outputs[v][k]);
    }
    out += ']';
  }
  out += "]}}";
  return out;
}

std::string encode_wire_error(std::size_t index, const std::string& message) {
  std::string out;
  append_prefix(out);
  out += "\"error\":{\"index\":";
  out += std::to_string(index);
  out += ",\"message\":\"";
  append_escaped(out, message);
  out += "\"}}";
  return out;
}

std::string encode_worker_summary(const WorkerSummary& summary) {
  std::string out;
  append_prefix(out);
  out += "\"worker_summary\":{\"jobs\":";
  out += std::to_string(summary.jobs);
  out += ",\"plans_compiled\":";
  out += std::to_string(summary.plans_compiled);
  out += ",\"plan_hits\":";
  out += std::to_string(summary.plan_hits);
  out += "}}";
  return out;
}

WorkerLine decode_worker_line(const std::string& line) {
  Cursor c(line);
  consume_prefix(c);
  WorkerLine parsed;
  if (c.try_lit("\"result\":{\"index\":")) {
    parsed.kind = WorkerLine::Kind::kResult;
    parsed.index = static_cast<std::size_t>(c.uint());
    c.lit(",\"rounds\":");
    parsed.result.stats.rounds = static_cast<Round>(c.uint());
    c.lit(",\"messages\":");
    parsed.result.stats.messages_sent = c.uint();
    c.lit(",\"ports_served\":");
    parsed.result.stats.ports_served = c.uint();
    c.lit(",\"outputs\":[");
    if (!c.peek(']')) {
      while (true) {
        c.lit("[");
        std::vector<Port> ports;
        if (!c.peek(']')) {
          while (true) {
            ports.push_back(static_cast<Port>(c.uint()));
            if (c.peek(',')) {
              c.lit(",");
              continue;
            }
            break;
          }
        }
        c.lit("]");
        parsed.result.outputs.push_back(std::move(ports));
        if (c.peek(',')) {
          c.lit(",");
          continue;
        }
        break;
      }
    }
    c.lit("]}}");
    c.end();
    return parsed;
  }
  if (c.try_lit("\"error\":{\"index\":")) {
    parsed.kind = WorkerLine::Kind::kError;
    parsed.index = static_cast<std::size_t>(c.uint());
    c.lit(",\"message\":");
    parsed.message = c.str();
    c.lit("}}");
    c.end();
    return parsed;
  }
  c.lit("\"worker_summary\":{\"jobs\":");
  parsed.kind = WorkerLine::Kind::kSummary;
  parsed.summary.jobs = c.uint();
  c.lit(",\"plans_compiled\":");
  parsed.summary.plans_compiled = c.uint();
  c.lit(",\"plan_hits\":");
  parsed.summary.plan_hits = c.uint();
  c.lit("}}");
  c.end();
  return parsed;
}

// ---------------------------------------------------------------------------
// The executor itself.

ProcessShardExecutor::ProcessShardExecutor(
    std::vector<std::string> worker_command, unsigned shards)
    : worker_command_(std::move(worker_command)),
      shards_(resolve_threads(shards)) {
  if (worker_command_.empty()) {
    throw InvalidArgument(
        "ProcessShardExecutor: worker command must not be empty");
  }
#if defined(_WIN32)
  throw InvalidArgument(
      "ProcessShardExecutor: process sharding requires a POSIX platform");
#endif
}

ProcessShardExecutor::~ProcessShardExecutor() = default;

ProcessShardExecutor::Stats ProcessShardExecutor::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

#if defined(_WIN32)

void ProcessShardExecutor::validate(const std::vector<BatchJob>&) const {
  throw InvalidArgument(
      "ProcessShardExecutor: process sharding requires a POSIX platform");
}

void ProcessShardExecutor::run_streaming(const std::vector<BatchJob>&,
                                         const ResultCallback&) const {
  throw InvalidArgument(
      "ProcessShardExecutor: process sharding requires a POSIX platform");
}

#else

namespace {

/// One forked worker and the parent-side bookkeeping for it.
struct Worker {
  pid_t pid = -1;
  int in_fd = -1;   ///< parent writes job lines here (worker stdin)
  int out_fd = -1;  ///< parent reads result lines here (worker stdout)
  const std::vector<std::size_t>* assigned = nullptr;  ///< global indices
  std::size_t completed = 0;   ///< result/error lines accepted so far
  std::string violation;       ///< protocol-violation description, if any
  int wait_status = 0;         ///< raw waitpid status
  WorkerSummary summary;
  bool summary_seen = false;
  std::thread writer;
  std::thread reader;
};

/// Runs a cleanup action when the scope unwinds, exception or not.
template <typename Fn>
class ScopeExit {
 public:
  explicit ScopeExit(Fn fn) : fn_(std::move(fn)) {}
  ~ScopeExit() { fn_(); }
  ScopeExit(const ScopeExit&) = delete;
  ScopeExit& operator=(const ScopeExit&) = delete;

 private:
  Fn fn_;
};

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// A blocked SIGPIPE turns a write to a dead worker into EPIPE instead of
/// killing the parent; the pending signal dies with the writer thread.
void block_sigpipe_on_this_thread() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGPIPE);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

[[nodiscard]] bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE et al.: the reader reports the death
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void spawn(Worker& w, const std::vector<std::string>& command) {
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
    if (to_child[0] >= 0) {
      ::close(to_child[0]);
      ::close(to_child[1]);
    }
    throw ExecutionError("ProcessShardExecutor: pipe() failed");
  }
  // Parent-side ends never leak into later workers' exec; the child's ends
  // are re-homed onto fds 0/1 (dup2 clears FD_CLOEXEC on the duplicate).
  for (const int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
    set_cloexec(fd);
  }

  std::vector<char*> argv;
  argv.reserve(command.size() + 1);
  for (const auto& arg : command) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      ::close(fd);
    }
    throw ExecutionError("ProcessShardExecutor: fork() failed");
  }
  if (pid == 0) {
    // Child: wire stdin/stdout to the pipes and become the worker.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::execvp(argv[0], argv.data());
    _exit(127);  // exec failed; the parent reports it via the exit status
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  w.pid = pid;
  w.in_fd = to_child[1];
  w.out_fd = from_child[0];
}

[[nodiscard]] std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return "worker exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "worker killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "worker ended abnormally";
}

[[nodiscard]] bool exited_cleanly(int status) {
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

/// A shard that answered all its jobs can still have broken protocol
/// afterwards — an extra line, a nonzero exit, a missing summary.  The
/// delivered results are trustworthy (each was verified in arrival
/// order), but the run must not report success: the summary counters are
/// incomplete and the worker is not behaving as specified.  Returns the
/// failure description, or "" for a fully clean shard.
[[nodiscard]] std::string residual_failure(const Worker& w) {
  if (w.completed < w.assigned->size()) return "";  // job-level errors cover it
  if (!w.violation.empty()) {
    return "process shard: " + w.violation + " after its last job";
  }
  if (!exited_cleanly(w.wait_status)) {
    return "process shard: " + describe_exit(w.wait_status) +
           " after completing its jobs";
  }
  if (!w.summary_seen) {
    return "process shard: worker exited without a summary line";
  }
  return "";
}

}  // namespace

void ProcessShardExecutor::validate(const std::vector<BatchJob>& jobs) const {
  Executor::validate(jobs);
  for (const auto& job : jobs) {
    if (!job.spec.has_value()) {
      throw InvalidArgument(
          "ProcessShardExecutor: job carries no JobSpec and cannot cross a "
          "process boundary");
    }
    if (job.options.collect_trace || job.options.collect_messages) {
      throw InvalidArgument(
          "ProcessShardExecutor: trace/message collection does not cross "
          "the wire");
    }
    if (job.options.exec.async.has_value()) {
      throw InvalidArgument(
          "ProcessShardExecutor: the asynchronous execution model does not "
          "cross the wire (schema 1 carries no AsyncOptions); run async "
          "jobs on the in-process backend");
    }
  }
}

void ProcessShardExecutor::run_streaming(const std::vector<BatchJob>& jobs,
                                         const ResultCallback& on_result) const {
  validate(jobs);
  if (jobs.empty()) return;

  // Group-affinity routing: equal groups share a worker (and therefore a
  // plan-cache entry); within a shard, jobs keep ascending index order.
  std::vector<std::vector<std::size_t>> assigned(shards_);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    assigned[jobs[i].spec->group % shards_].push_back(i);
  }

  detail::ReorderBuffer buffer(jobs.size());
  std::vector<std::unique_ptr<Worker>> workers;

  {
    // Tears every worker down at scope exit — even when a later spawn()
    // or std::thread constructor throws mid-loop.  Order matters for the
    // no-hang guarantee on the partial-start paths: a worker whose reader
    // never started gets its stdout closed *first*, so a worker blocked
    // writing results dies on EPIPE and can neither stall the writer join
    // nor the final reap; then a never-started writer's stdin is closed
    // (EOF tells an idle worker to exit).  On the normal path both
    // threads exist and this is a plain join/join.
    const ScopeExit join_workers([&workers] {
      for (const auto& w : workers) {
        if (!w->reader.joinable() && w->out_fd >= 0) {
          ::close(w->out_fd);
          w->out_fd = -1;
        }
        if (w->writer.joinable()) {
          w->writer.join();
        } else if (w->in_fd >= 0) {
          ::close(w->in_fd);
          w->in_fd = -1;
        }
        if (w->reader.joinable()) {
          w->reader.join();  // closes out_fd and reaps the worker itself
        } else if (w->pid >= 0) {
          ::waitpid(w->pid, &w->wait_status, 0);
        }
      }
    });

    for (const auto& shard_jobs : assigned) {
      if (shard_jobs.empty()) continue;  // never fork an idle shard
      auto w = std::make_unique<Worker>();
      w->assigned = &shard_jobs;
      workers.push_back(std::move(w));  // visible to join_workers pre-spawn
      spawn(*workers.back(), worker_command_);
    }

    for (const auto& w_ptr : workers) {
      Worker* w = w_ptr.get();

      w->writer = std::thread([w, &jobs] {
        block_sigpipe_on_this_thread();
        // Serialize-and-escape each distinct graph lazily, once, right
        // here: group routing sends every repeat of a structure to one
        // shard, so per-writer caching never duplicates work across
        // shards — and it parallelizes the text encoding and frees it
        // when this writer exits, instead of a serial up-front pass whose
        // escaped copies would live until the whole batch drained.
        std::unordered_map<const port::PortGraph*, std::string> escaped;
        for (const std::size_t idx : *w->assigned) {
          const auto& job = jobs[idx];
          auto it = escaped.find(job.graph);
          if (it == escaped.end()) {
            const auto text = port::to_port_graph_string(*job.graph);
            std::string esc;
            esc.reserve(text.size() + text.size() / 16);
            append_escaped(esc, text);
            it = escaped.emplace(job.graph, std::move(esc)).first;
          }
          std::string line = encode_job_line(
              idx, job.spec->algorithm, job.spec->param,
              job.options.exec.threads, job.options.max_rounds, it->second);
          line += '\n';
          if (!write_all(w->in_fd, line)) break;
        }
        ::close(w->in_fd);  // stdin EOF tells the worker to summarize + exit
        w->in_fd = -1;
      });

      w->reader = std::thread([w, &buffer, &on_result] {
        std::string pending;
        char chunk[1 << 16];
        while (true) {
          const ssize_t n = ::read(w->out_fd, chunk, sizeof chunk);
          if (n < 0 && errno == EINTR) continue;
          if (n <= 0) break;
          pending.append(chunk, static_cast<std::size_t>(n));
          std::size_t nl;
          while ((nl = pending.find('\n')) != std::string::npos) {
            const std::string line = pending.substr(0, nl);
            pending.erase(0, nl + 1);
            // A poisoned worker is only drained (never block it on a full
            // stdout pipe) — its unfinished jobs fail at EOF.
            if (!w->violation.empty()) continue;
            try {
              WorkerLine parsed = decode_worker_line(line);
              if (parsed.kind == WorkerLine::Kind::kSummary) {
                w->summary = parsed.summary;
                w->summary_seen = true;
                continue;
              }
              // Workers execute their jobs strictly in arrival order; any
              // other index is a protocol violation.
              if (w->completed >= w->assigned->size() ||
                  parsed.index != (*w->assigned)[w->completed]) {
                w->violation = "worker answered for an unexpected job index";
                continue;
              }
              const std::size_t idx = parsed.index;
              if (parsed.kind == WorkerLine::Kind::kResult) {
                buffer.results[idx] = std::move(parsed.result);
              } else {
                buffer.errors[idx] = std::make_exception_ptr(
                    ExecutionError("process shard: " + parsed.message));
              }
              ++w->completed;
              buffer.deposit_and_flush(idx, on_result);
            } catch (const Error& e) {
              w->violation = std::string("malformed worker line: ") + e.what();
            }
          }
        }
        ::close(w->out_fd);
        w->out_fd = -1;
        ::waitpid(w->pid, &w->wait_status, 0);

        // The prefix rule on worker death: every job this shard never
        // finished fails with a description of why the worker stopped.
        if (w->completed < w->assigned->size()) {
          std::string why = describe_exit(w->wait_status);
          if (!w->violation.empty()) why += " (" + w->violation + ")";
          for (std::size_t k = w->completed; k < w->assigned->size(); ++k) {
            const std::size_t idx = (*w->assigned)[k];
            buffer.errors[idx] = std::make_exception_ptr(ExecutionError(
                "process shard: " + why + " before job " +
                std::to_string(idx) + " completed"));
            buffer.deposit_and_flush(idx, on_result);
          }
        }
      });
    }
  }  // join_workers: every thread joined, every worker reaped

  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.jobs_shipped += jobs.size();
    stats_.workers_spawned += workers.size();
    for (const auto& w : workers) {
      if (w->summary_seen) {
        stats_.plans_compiled += w->summary.plans_compiled;
        stats_.plan_hits += w->summary.plan_hits;
      }
    }
  }

  // Job-level failures win (lowest index, as documented); a shard that
  // finished its jobs but then broke protocol or died still fails the
  // batch — after full delivery, so the prefix rule is unaffected.
  buffer.rethrow_failures();
  for (const auto& w : workers) {
    const auto residual = residual_failure(*w);
    if (!residual.empty()) throw ExecutionError(residual);
  }
}

#endif  // !defined(_WIN32)

}  // namespace eds::runtime
