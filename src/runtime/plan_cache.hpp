// PlanCache: one immutable ExecutionPlan shared across every run on the
// same port-graph structure.
//
// Sweep-style workloads (Table 1, scaling benches, `edsim sweep --repeat`)
// execute hundreds to thousands of jobs on a handful of distinct graphs.
// Compiling an ExecutionPlan is O(total ports) time *and* four array
// allocations per run; at 100k+ nodes the compilation churn rivals the
// round loop itself.  The cache keys plans by a structural hash of the
// graph (degree sequence + involution) and verifies candidates field by
// field before sharing them, so two graphs ever share a plan only when
// their port structure is literally identical — a different port numbering
// of the same underlying graph changes the involution and therefore gets
// its own plan.  Sharing is safe because ExecutionPlan is deeply immutable
// and run_plan only reads it.
//
// Concurrency: all operations are serialized on an internal mutex —
// BatchRunner jobs race get() freely, and a plan is constructed exactly
// once per structure (construction happens under the lock; the counters
// make that assertable).  Both an entry count and a byte total are
// LRU-bounded, so long-lived processes cannot accumulate unbounded plan
// memory even when individual plans are tens of megabytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "port/port_graph.hpp"
#include "runtime/engine.hpp"

namespace eds::runtime {

/// Thread-safe, LRU-bounded cache of shared ExecutionPlans.
class PlanCache {
 public:
  /// Counters (monotonic except `size`/`bytes`): one `miss` per plan
  /// actually compiled, one `hit` per reuse, one `eviction` per LRU drop.
  struct Stats {
    std::uint64_t hits = 0;       ///< get() calls served by a cached plan
    std::uint64_t misses = 0;     ///< get() calls that compiled a new plan
    std::uint64_t evictions = 0;  ///< plans dropped by the LRU bound
    std::size_t size = 0;         ///< plans currently cached
    std::size_t bytes = 0;        ///< approximate bytes held by cached plans

    [[nodiscard]] bool operator==(const Stats&) const = default;
  };

  /// `capacity` is the maximum number of cached plans (>= 1) and
  /// `max_bytes` the maximum bytes they may hold together; after a miss,
  /// least-recently-used plans are evicted until both bounds hold (the
  /// newest plan is always kept, so a single oversized plan still caches).
  /// The byte bound is what keeps one-shot runs on huge graphs from
  /// pinning plan memory: a 100k-node plan is ~11 MB, so the default cap
  /// retains a handful of those, not `capacity` of them.
  explicit PlanCache(std::size_t capacity = kDefaultCapacity,
                     std::size_t max_bytes = kDefaultMaxBytes);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The plan for `g`: a cached one when an identical structure is
  /// resident, a freshly compiled (and cached) one otherwise.  The
  /// returned plan stays valid even after eviction — eviction only drops
  /// the cache's own reference.
  [[nodiscard]] std::shared_ptr<const ExecutionPlan> get(
      const port::PortGraph& g);

  /// Snapshot of the counters.
  [[nodiscard]] Stats stats() const;

  /// Drops every cached plan (outstanding shared_ptrs stay valid) and
  /// leaves the hit/miss/eviction counters untouched.
  void clear();

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t max_bytes() const noexcept { return max_bytes_; }

  /// The process-wide cache used by `algo::run_algorithm` / `run_batch`
  /// when the caller does not supply one.
  [[nodiscard]] static PlanCache& global();

  static constexpr std::size_t kDefaultCapacity = 32;
  static constexpr std::size_t kDefaultMaxBytes = 64u << 20;  // 64 MiB

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::shared_ptr<const ExecutionPlan> plan;
  };

  // Recency list (front = most recent) plus a hash index into it.  The
  // index maps to *lists* of iterators because distinct structures may
  // collide on the 64-bit hash; candidates are verified structurally.
  mutable std::mutex mutex_;
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>>
      index_;
  std::size_t capacity_;
  std::size_t max_bytes_;
  Stats stats_;
};

/// The cache key: a 64-bit hash over the degree sequence and the flat
/// involution of `g`.  Collisions are possible (and handled by structural
/// verification in the cache); equal structures always hash equal.
[[nodiscard]] std::uint64_t structural_hash(const port::PortGraph& g);

/// Memoizes structural_hash by graph *object* for the duration of one
/// batch-construction pass: a `--repeat R` sweep enqueues the same
/// instance R times, and the O(ports) hash walk should be paid once per
/// instance, not once per job.  Keyed by address, so the memo is valid
/// only while the graphs outlive it (PortGraphs are immutable, so a live
/// address can never alias a different structure).  Not thread-safe;
/// batch construction is single-threaded by design.
class StructuralHashMemo {
 public:
  [[nodiscard]] std::uint64_t get(const port::PortGraph& g);

 private:
  std::unordered_map<const port::PortGraph*, std::uint64_t> hashes_;
};

}  // namespace eds::runtime
