#include "runtime/plan_cache.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace eds::runtime {

std::uint64_t structural_hash(const port::PortGraph& g) {
  // splitmix64 as a mixing function over the canonical structure walk:
  // node count, then the flat degree sequence, then the flat involution
  // table.  Equal structures produce equal walks by definition; the walk
  // reads the graph's contiguous arrays, so hashing costs one linear scan
  // (the cache's hit path must stay well under a plan compilation).
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto mix = [&state](std::uint64_t value) {
    state ^= value + 0x9e3779b97f4a7c15ULL + (state << 6) + (state >> 2);
    std::uint64_t sm = state;
    state = splitmix64(sm);
  };
  mix(g.num_nodes());
  for (const auto deg : g.degree_sequence()) mix(deg);
  for (const auto& dst : g.partner_table()) {
    mix((static_cast<std::uint64_t>(dst.node) << 32) | dst.port);
  }
  return state;
}

std::uint64_t StructuralHashMemo::get(const port::PortGraph& g) {
  const auto [it, inserted] = hashes_.try_emplace(&g, 0);
  if (inserted) it->second = structural_hash(g);
  return it->second;
}

PlanCache::PlanCache(std::size_t capacity, std::size_t max_bytes)
    : capacity_(std::max<std::size_t>(capacity, 1)), max_bytes_(max_bytes) {}

std::shared_ptr<const ExecutionPlan> PlanCache::get(const port::PortGraph& g) {
  const std::uint64_t hash = structural_hash(g);
  const std::lock_guard<std::mutex> lock(mutex_);

  if (const auto bucket = index_.find(hash); bucket != index_.end()) {
    for (const auto it : bucket->second) {
      if (it->plan->matches(g)) {
        lru_.splice(lru_.begin(), lru_, it);  // touch: move to front
        ++stats_.hits;
        return it->plan;
      }
    }
  }

  // Miss: compile under the lock, so concurrent get() calls on the same
  // structure build exactly one plan (the counters are load-bearing for
  // tests; serializing compilation is cheap next to the runs themselves).
  ++stats_.misses;
  auto plan = std::make_shared<const ExecutionPlan>(g);
  stats_.bytes += plan->memory_bytes();
  lru_.push_front({hash, std::move(plan)});
  index_[hash].push_back(lru_.begin());

  while (lru_.size() > capacity_ ||
         (stats_.bytes > max_bytes_ && lru_.size() > 1)) {
    const auto victim = std::prev(lru_.end());
    auto& bucket = index_[victim->hash];
    bucket.erase(std::find(bucket.begin(), bucket.end(), victim));
    if (bucket.empty()) index_.erase(victim->hash);
    stats_.bytes -= victim->plan->memory_bytes();
    lru_.erase(victim);
    ++stats_.evictions;
  }

  stats_.size = lru_.size();
  return lru_.front().plan;
}

PlanCache::Stats PlanCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_.size = 0;
  stats_.bytes = 0;
}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

}  // namespace eds::runtime
