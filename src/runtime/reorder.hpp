// Internal: the in-order reorder buffer shared by every Executor backend.
//
// Workers (pool lanes, shard reader threads) deposit per-job outcomes out
// of order; the delivery cursor only ever advances over completed slots in
// index order, which is what makes every backend's delivery deterministic.
// Not part of the public API — include only from runtime/*.cpp.
#pragma once

#include <cstddef>
#include <exception>
#include <mutex>
#include <vector>

#include "runtime/executor.hpp"
#include "runtime/runner.hpp"

namespace eds::runtime::detail {

struct ReorderBuffer {
  explicit ReorderBuffer(std::size_t jobs)
      : results(jobs), errors(jobs), done(jobs, 0) {}

  std::mutex mutex;
  std::vector<RunResult> results;
  std::vector<std::exception_ptr> errors;
  std::vector<char> done;
  std::size_t cursor = 0;  // first index not yet delivered
  bool stopped = false;    // delivery halted (job failure or callback throw)
  bool delivering = false;  // one worker is draining the ready prefix
  std::exception_ptr delivery_error;  // first exception from a callback

  /// After job `i`'s outcome has been stored in results[i]/errors[i]:
  /// deliver the ready prefix through `on_result`.  The `delivering` flag
  /// makes exactly one depositor the deliverer at a time, so callbacks
  /// never interleave and observe strictly increasing indices — but each
  /// callback runs *outside* the mutex, so a slow consumer never blocks
  /// other workers from depositing results and pulling their next jobs.
  void deposit_and_flush(std::size_t i,
                         const Executor::ResultCallback& on_result) {
    std::unique_lock<std::mutex> lock(mutex);
    done[i] = 1;
    if (delivering) return;  // the current deliverer will pick this up
    delivering = true;
    while (!stopped && cursor < done.size() && done[cursor] != 0) {
      if (errors[cursor]) {
        stopped = true;  // the prefix rule: nothing at or past a failure
        break;
      }
      const std::size_t idx = cursor++;
      RunResult result = std::move(results[idx]);
      lock.unlock();
      std::exception_ptr thrown;
      try {
        on_result(idx, std::move(result));
      } catch (...) {
        thrown = std::current_exception();
      }
      lock.lock();
      if (thrown) {
        delivery_error = thrown;
        stopped = true;
        break;
      }
    }
    delivering = false;
  }

  /// The post-drain rethrow: the callback's own failure wins (it is the
  /// earliest in delivery order by construction), else the lowest-indexed
  /// job failure.
  void rethrow_failures() const {
    if (delivery_error) std::rethrow_exception(delivery_error);
    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }
};

}  // namespace eds::runtime::detail
