// The execution engine: a compiled per-graph plan plus pluggable policies
// that decide *how* the synchronous rounds are driven.
//
// The paper's algorithms are local — O(1) or O(∆²) rounds — so essentially
// all wall-clock time in this reproduction is simulator overhead, not
// algorithm logic.  This layer attacks that overhead twice over:
//
//  * ExecutionPlan precomputes everything the round loop needs as flat
//    arrays (degrees, port offsets, the involution as flat indices), so the
//    inner loops never pay PortGraph's bounds-checked lookups.
//
//  * Policies schedule the round loop over an *active-node worklist*:
//    nodes that halted are removed, so a long tail of halted nodes costs
//    zero per round.  SequentialPolicy runs the shards inline;
//    ParallelPolicy spreads them across a thread pool.  Shard boundaries
//    equalize *port* counts, not node counts (balanced_shard_bounds), so
//    power-law degree sequences cannot starve all lanes but one.
//
//  * Message transport is sender-indexed and double-buffered: each buffer
//    holds one round's messages at their *senders'* flat ports (programs
//    write straight into their own contiguous segment — sequential stores,
//    no staging copy, single-writer by construction) plus a flat
//    struct-of-arrays tag lane shadowing the slot tags.  Each round runs
//    ONE sharded stage behind ONE barrier: a node gathers its round-r
//    input from the current buffer *through the involution* (delivery IS
//    the gather — the permutation is applied on the read side, where loads
//    pipeline, instead of as scattered stores), then — unless it halted —
//    writes round r+1 into its own segment of the next buffer; the buffers
//    swap after the barrier.  The per-round traffic count is a branch-free
//    count_nonsilence sweep over the tag lane, and a halting node is
//    silenced with two contiguous fills of its own segment.  (A full
//    four-lane SoA split of Message storage was measured and rejected: the
//    permutation step then touches four cache lines per message instead of
//    one, ~4x slower on dense graphs — see ARCHITECTURE.md.)
//
// Hard guarantee, enforced by differential tests: every policy produces
// bit-identical RunResults — outputs, stats, trace, and message-log order.
// Parallel merges always combine per-shard results in shard (= node-range)
// order, which is exactly the sequential order; see ARCHITECTURE.md for
// the full double-buffer determinism argument.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "port/port_graph.hpp"
#include "runtime/program.hpp"
#include "runtime/runner.hpp"
#include "util/parallel.hpp"

namespace eds::runtime {

/// Immutable, flat-array view of a PortGraph, precomputed once per run (or
/// shared across many runs on the same graph).  All accessors are unchecked
/// hot-path lookups; the constructor performs no validation of its own and
/// relies on the PortGraph invariants (PortGraphBuilder::build and
/// read_port_graph both verify the involution before a graph exists).
class ExecutionPlan {
 public:
  explicit ExecutionPlan(const port::PortGraph& g);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return degrees_.size();
  }
  [[nodiscard]] std::size_t total_ports() const noexcept {
    return partner_flat_.size();
  }
  /// Degree of node v (unchecked).
  [[nodiscard]] Port degree(std::size_t v) const noexcept {
    return degrees_[v];
  }
  /// Flat index of port (v, 1); port (v, i) lives at offset(v) + i - 1.
  [[nodiscard]] std::size_t offset(std::size_t v) const noexcept {
    return offsets_[v];
  }
  /// Flat index of the involution partner of flat port q (unchecked).
  /// Stored as uint32 — the table is swept once per round by the receive
  /// gather, so halving its bytes is a straight hot-loop bandwidth win
  /// (total_ports above 2^32 is far beyond this simulator's reach).
  [[nodiscard]] std::size_t partner_flat(std::size_t q) const noexcept {
    return partner_flat_[q];
  }
  /// The involution partner of flat port q as a (node, port) pair.
  [[nodiscard]] port::PortRef partner_ref(std::size_t q) const noexcept {
    return partner_ref_[q];
  }

  /// True when this plan was compiled from a graph with exactly the same
  /// structure as `g` (degree sequence and involution).  This is the
  /// PlanCache's collision guard: a 64-bit structural hash narrows the
  /// candidates, matches() proves the identification.
  [[nodiscard]] bool matches(const port::PortGraph& g) const;

  /// Approximate heap footprint of the flat arrays, for cache accounting.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return degrees_.capacity() * sizeof(Port) +
           offsets_.capacity() * sizeof(std::size_t) +
           partner_flat_.capacity() * sizeof(std::size_t) +
           partner_ref_.capacity() * sizeof(port::PortRef);
  }

  /// Process-wide count of plan compilations (the graph-converting
  /// constructor only).  Tests assert cache effectiveness through deltas
  /// of this counter: a 1000-job sweep over one graph must raise it by 1.
  [[nodiscard]] static std::uint64_t constructed_count() noexcept {
    return constructed_.load(std::memory_order_relaxed);
  }

 private:
  static inline std::atomic<std::uint64_t> constructed_{0};

  std::vector<Port> degrees_;
  std::vector<std::size_t> offsets_;        // prefix sums of degrees
  std::vector<std::uint32_t> partner_flat_; // involution over flat indices
  std::vector<port::PortRef> partner_ref_;  // involution as (node, port)
};

/// How the per-round stages are scheduled.  A policy is reusable across
/// runs but not safe for concurrent use by multiple runs.
class ExecutionPolicy {
 public:
  virtual ~ExecutionPolicy() = default;

  /// Number of lanes the stages are sharded across (1 = sequential).
  [[nodiscard]] virtual unsigned lanes() const noexcept = 0;

  /// Executes fn(s) for every shard s in [0, shards) and returns when all
  /// calls have finished (the once-per-round barrier).  `fn` must not
  /// throw.
  virtual void for_each_shard(
      std::size_t shards, const std::function<void(std::size_t)>& fn) = 0;
};

/// The seed semantics, stage by stage on one thread — plus the worklist.
class SequentialPolicy final : public ExecutionPolicy {
 public:
  [[nodiscard]] unsigned lanes() const noexcept override { return 1; }
  void for_each_shard(
      std::size_t shards,
      const std::function<void(std::size_t)>& fn) override {
    for (std::size_t s = 0; s < shards; ++s) fn(s);
  }
};

/// Shards each stage's worklist range across a persistent thread pool with
/// a barrier per stage.  `threads` as in ExecOptions (0 = hardware lanes).
class ParallelPolicy final : public ExecutionPolicy {
 public:
  explicit ParallelPolicy(unsigned threads = 0) : pool_(threads) {}

  [[nodiscard]] unsigned lanes() const noexcept override {
    return pool_.lanes();
  }
  void for_each_shard(
      std::size_t shards,
      const std::function<void(std::size_t)>& fn) override {
    pool_.run(shards, fn);
  }

 private:
  ThreadPool pool_;
};

/// The policy ExecOptions selects: SequentialPolicy for threads == 1,
/// ParallelPolicy otherwise.
[[nodiscard]] std::unique_ptr<ExecutionPolicy> make_policy(
    const ExecOptions& exec);

/// Drives `programs` (one per node, already constructed, not yet started)
/// over the plan's graph until every node halts, scheduling stages with
/// `policy`.  This is the engine core under run_synchronous; call it
/// directly to reuse a plan or a policy (and its thread pool) across runs.
///
/// Message transport is pooled: both outbox buffers (message slots + tag
/// lane each), the worklist and the per-shard scratch all live in a
/// per-thread workspace that is reset (not reallocated) between rounds and
/// reused across runs, so repeated executions on one lane perform no
/// per-run buffer allocation once the workspace has grown to the largest
/// graph seen.  The double buffer costs a second total_ports-sized slot
/// array + tag lane of pooled bytes — the price of running each round
/// behind a single barrier.
[[nodiscard]] RunResult run_plan(
    const ExecutionPlan& plan,
    std::vector<std::unique_ptr<NodeProgram>>& programs,
    const RunOptions& options, const std::string& name,
    ExecutionPolicy& policy);

/// Allocation-pressure counters for the pooled message transport
/// (process-wide, monotonic except `workspace_bytes`).  A healthy steady
/// state shows `workspace_reuses` ~ runs and `workspace_growths` ~ the
/// number of distinct lanes times the number of times a strictly larger
/// graph appeared; bench_micro_runtime exports the deltas per benchmark.
struct EngineAllocStats {
  std::uint64_t workspace_reuses = 0;   ///< runs served without growing
  std::uint64_t workspace_growths = 0;  ///< runs that grew a pooled buffer
  std::uint64_t workspace_bytes = 0;    ///< bytes currently pooled, all lanes

  [[nodiscard]] bool operator==(const EngineAllocStats&) const = default;
};

/// Snapshot of the pooled-transport counters.
[[nodiscard]] EngineAllocStats engine_alloc_stats() noexcept;

/// Round-stage wall-time split, accumulated by run_plan while profiling is
/// enabled (process-wide, monotonic).  `exchange_ns` covers the send sweep
/// (outbox segment writes) + the tag-lane shadow sweep (including the
/// round barrier under ParallelPolicy); `scatter_ns` is the tag-lane
/// shadow sweep alone — the cost of maintaining the struct-of-arrays tag
/// lane — a subset of `exchange_ns`; `receive_ns` covers the involution
/// gather + receive sweep plus the shard-order merge and worklist
/// maintenance; `scan_ns` is the per-round traffic count over the tag lane
/// (in none of the others).  Per profiled round, exchange_ns + receive_ns
/// + scan_ns ≈ wall time.
///
/// Timing the split at shard granularity requires per-stage sweeps, so a
/// profiled run drives each shard as receive -> send -> tag-shadow passes
/// instead of the fused per-node loop — bit-identical results, roughly ten
/// percent of overhead on dense graphs (the split sweeps re-traverse the
/// outbox once more).  bench_micro_runtime exports the deltas per
/// benchmark.
struct EngineStageStats {
  std::uint64_t exchange_ns = 0;       ///< send + tag-shadow sweeps
  std::uint64_t receive_ns = 0;        ///< gather+receive sweep + merge
  std::uint64_t scatter_ns = 0;        ///< tag-shadow sweep (⊂ exchange_ns)
  std::uint64_t scan_ns = 0;           ///< per-round tag-lane traffic scan
  std::uint64_t profiled_rounds = 0;   ///< rounds timed while enabled

  [[nodiscard]] bool operator==(const EngineStageStats&) const = default;
};

/// Toggles stage profiling (default off).  The hot loop samples the flag
/// once per run (through a per-thread epoch cache), so enabling it mid-run
/// affects the *next* run; when off, the round loop takes no timestamps at
/// all.
void engine_stage_profiling(bool enabled) noexcept;

/// Snapshot of the stage-timing counters.
[[nodiscard]] EngineStageStats engine_stage_stats() noexcept;

/// Zeroes the stage-timing counters.  They are process-wide and cumulative
/// across runs, so per-run (or per-mode, e.g. sync vs async) attribution
/// needs a reset between measurements; callers that prefer deltas can keep
/// snapshotting instead.  The reset also invalidates every lane's cached
/// sample of the profiling flag, so a toggle followed by a reset is picked
/// up by the very next run on any thread.
void engine_stage_stats_reset() noexcept;

}  // namespace eds::runtime
