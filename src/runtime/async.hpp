// Event-driven asynchronous execution of port-numbering algorithms.
//
// The synchronous engine advances every node in lock-step; AsyncPolicy
// replaces the global round with a virtual clock and a timeline: every
// transmission becomes an event that arrives after the per-link delay drawn
// from the run's delay matrix, and nodes fire their receive step when their
// local round's inputs are in.  Two modes:
//
//  * α-synchronizer (AsyncOptions::synchronizer, default).  The classic
//    simulation layer: every payload is acknowledged by the receiving
//    transport, and a node enters round r+1 only once (a) it holds a
//    round-r message (or a halt notice) for every port and (b) all of its
//    round-r sends are acknowledged.  Per-round buffering keeps early
//    messages until their round fires, so each node observes *exactly* the
//    message sequence of the synchronous execution — outputs, stats, trace
//    and (order-normalized) message log are bit-identical to the round
//    engine for every delay matrix.  This is the differential oracle: any
//    divergence is an engine bug, not an algorithm property.
//
//  * Free-running (synchronizer off).  No acknowledgements: a node waits at
//    most AsyncOptions::round_timeout ticks for a round's inputs, then
//    substitutes silence for the missing ports and fires anyway.  This mode
//    admits the FaultPlan (loss, duplication, crashes) and exists to
//    measure how the paper's algorithms degrade off the synchronous model.
//
// Determinism: the event loop is sequential and pops a strict weak order —
// (time, priority, node, port, seq) with seq a global monotone counter —
// and every random draw is a pure function of the seed and structural
// coordinates (see runtime/fault.hpp).  Equal inputs give byte-identical
// AsyncResults, including the fault log, regardless of ExecOptions::threads
// (which only parallelizes *across* runs at the batch layer, never within
// one).
//
// The ordering hook: AsyncOptions::schedule (runtime/fault.hpp) injects an
// adversarial perturbation into that order.  A non-empty Schedule stamps
// each event with a PCT-style per-node priority (splicing ahead of the
// structural node/port tie-break), demotes nodes at its change points —
// demoted nodes' sends take Schedule::demote_ticks extra latency — and
// forces entries of the delay matrix via its overrides.  With an empty
// schedule every priority is zero and the engine is bit-identical to a
// build without schedules.  Schedules are pure data, so (options, schedule)
// fully determine the run — the property runtime/sched.hpp's searcher and
// the replay file format rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/fault.hpp"
#include "runtime/runner.hpp"

namespace eds::runtime {

/// Counters specific to the asynchronous engine (RunStats covers the
/// model-independent ones).
struct AsyncStats {
  std::uint64_t virtual_time = 0;  ///< clock value of the last event
  std::uint64_t delivered = 0;     ///< payloads accepted into a round buffer
  std::uint64_t acks = 0;          ///< acknowledgements delivered (synchronizer)
  std::uint64_t lost = 0;          ///< transmissions dropped by the FaultPlan
  std::uint64_t duplicated = 0;    ///< transmissions delivered twice
  std::uint64_t stale = 0;         ///< late/duplicate arrivals discarded
  std::uint64_t timeouts = 0;      ///< rounds fired with inputs missing
  std::uint64_t events = 0;        ///< timeline pops (the change-point axis)

  [[nodiscard]] bool operator==(const AsyncStats&) const = default;
};

/// Outcome of an asynchronous run.  `run` carries exactly what the
/// synchronous engine would produce (and is what the dispatching
/// run_synchronous returns); the remaining fields are the async-only
/// observables.  Crashed nodes never halt, so their `run.outputs` entry is
/// empty and `crashed[v]` distinguishes "crashed" from "selected nothing".
struct AsyncResult {
  RunResult run;
  AsyncStats async;
  std::vector<FaultEvent> fault_log;  ///< injected faults, in event order
  std::vector<std::uint8_t> crashed;  ///< crashed[v] != 0: node v crashed

  [[nodiscard]] bool operator==(const AsyncResult&) const = default;
};

/// The event-driven execution policy.  Stateless apart from its options;
/// safe to share across threads and reuse across plans.
class AsyncPolicy {
 public:
  explicit AsyncPolicy(AsyncOptions options);

  [[nodiscard]] const AsyncOptions& options() const noexcept {
    return options_;
  }

  /// Executes `programs` (one per plan node) under the event loop.  Throws
  /// InvalidArgument for inconsistent options (synchronizer with a non-empty
  /// FaultPlan, probabilities outside [0, 1], crash of an out-of-range
  /// node, zero max_rounds) and ExecutionError when a node exceeds
  /// RunOptions::max_rounds, mirroring the synchronous engine's contract.
  [[nodiscard]] AsyncResult run(
      const ExecutionPlan& plan,
      std::vector<std::unique_ptr<NodeProgram>>& programs,
      const RunOptions& options, const std::string& name) const;

 private:
  AsyncOptions options_;
};

/// Runs `factory`'s program on every node of `g` under the asynchronous
/// engine.  The RunOptions' ExecOptions::async field is ignored here — the
/// explicit `async` argument wins (this *is* the async entry point).
[[nodiscard]] AsyncResult run_asynchronous(const port::PortGraph& g,
                                           const ProgramFactory& factory,
                                           const RunOptions& options,
                                           const AsyncOptions& async);

/// Caller-provided per-node programs, asynchronous counterpart of
/// run_synchronous_programs.
[[nodiscard]] AsyncResult run_asynchronous_programs(
    const port::PortGraph& g,
    std::vector<std::unique_ptr<NodeProgram>> programs,
    const RunOptions& options, const AsyncOptions& async,
    const std::string& name = "custom");

}  // namespace eds::runtime
