#include "runtime/batch.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "util/error.hpp"

namespace eds::runtime {

BatchRunner::BatchRunner(unsigned threads)
    : owned_(std::make_unique<InProcessExecutor>(threads)),
      executor_(owned_.get()) {}

BatchRunner::BatchRunner(const Executor* executor) : executor_(executor) {
  if (executor_ == nullptr) {
    throw InvalidArgument("BatchRunner: executor must not be null");
  }
}

BatchRunner::~BatchRunner() = default;

std::vector<RunResult> BatchRunner::run(
    const std::vector<BatchJob>& jobs) const {
  return executor_->run(jobs);
}

void BatchRunner::run_streaming(const std::vector<BatchJob>& jobs,
                                const ResultCallback& on_result) const {
  executor_->run_streaming(jobs, on_result);
}

/// The pull adapter: a driver thread pumps the backend's run_streaming and
/// pushes each in-order result into a queue; next() pops.  Because the
/// backend already delivers a strictly increasing prefix and withholds
/// everything from the lowest failure onward, the queue inherits the whole
/// determinism contract — this adapter never reorders or filters.
struct BatchStream::Impl {
  Impl(std::vector<BatchJob> jobs_in, const Executor* executor)
      : jobs(std::move(jobs_in)) {
    driver = std::thread([this, executor] {
      try {
        executor->run_streaming(
            jobs, [this](std::size_t i, RunResult&& result) {
              {
                const std::lock_guard<std::mutex> lock(mutex);
                queue.push_back(Item{i, std::move(result)});
              }
              ready.notify_all();
            });
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        error = std::current_exception();
      }
      {
        const std::lock_guard<std::mutex> lock(mutex);
        finished = true;
      }
      ready.notify_all();
    });
  }

  ~Impl() {
    if (driver.joinable()) driver.join();
  }

  std::vector<BatchJob> jobs;
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<Item> queue;
  std::exception_ptr error;  // the backend's post-drain rethrow, if any
  bool finished = false;     // driver has returned from run_streaming
  bool stopped = false;      // next() already rethrew; stream is over
  std::thread driver;
};

BatchStream::BatchStream(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

BatchStream::~BatchStream() = default;

std::optional<BatchStream::Item> BatchStream::next() {
  Impl& impl = *impl_;
  std::unique_lock<std::mutex> lock(impl.mutex);
  if (impl.stopped) return std::nullopt;
  impl.ready.wait(lock, [&impl] { return !impl.queue.empty() || impl.finished; });
  if (!impl.queue.empty()) {
    Item item = std::move(impl.queue.front());
    impl.queue.pop_front();
    return item;
  }
  // Queue exhausted and the batch has drained: surface the failure (once)
  // or signal completion.  The driver has already returned, so the backend
  // is quiescent when the caller unwinds.
  impl.stopped = true;
  if (impl.error) {
    const auto error = impl.error;
    lock.unlock();
    if (impl.driver.joinable()) impl.driver.join();
    std::rethrow_exception(error);
  }
  return std::nullopt;
}

std::unique_ptr<BatchStream> BatchRunner::stream(
    std::vector<BatchJob> jobs) const {
  // Backend-aware validation up front: a misconfigured job must fail here,
  // not from the first next() after the driver has already drained.
  executor_->validate(jobs);
  return std::unique_ptr<BatchStream>(new BatchStream(
      std::make_unique<BatchStream::Impl>(std::move(jobs), executor_)));
}

}  // namespace eds::runtime
