#include "runtime/batch.hpp"

#include <exception>

#include "util/error.hpp"

namespace eds::runtime {

BatchRunner::BatchRunner(unsigned threads) : pool_(threads) {}

BatchRunner::~BatchRunner() = default;

std::vector<RunResult> BatchRunner::run(
    const std::vector<BatchJob>& jobs) const {
  for (const auto& job : jobs) {
    if (job.graph == nullptr || job.factory == nullptr) {
      throw InvalidArgument("BatchRunner: job requires a graph and a factory");
    }
  }

  std::vector<RunResult> results(jobs.size());
  std::vector<std::exception_ptr> errors(jobs.size());

  pool_.run(jobs.size(), [&](std::size_t i) {
    try {
      const BatchJob& job = jobs[i];
      results[i] = run_synchronous(*job.graph, *job.factory, job.options);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });

  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

}  // namespace eds::runtime
