#include "runtime/batch.hpp"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "util/error.hpp"

namespace eds::runtime {

namespace {

void validate_jobs(const std::vector<BatchJob>& jobs) {
  for (const auto& job : jobs) {
    if (job.graph == nullptr || job.factory == nullptr) {
      throw InvalidArgument("BatchRunner: job requires a graph and a factory");
    }
  }
}

/// The in-order reorder buffer shared by every consumption style: workers
/// deposit results out of order, the delivery cursor only ever advances
/// over completed slots in index order.
struct ReorderBuffer {
  explicit ReorderBuffer(std::size_t jobs)
      : results(jobs), errors(jobs), done(jobs, 0) {}

  std::mutex mutex;
  std::condition_variable ready;
  std::vector<RunResult> results;
  std::vector<std::exception_ptr> errors;
  std::vector<char> done;
  std::size_t cursor = 0;  // first index not yet delivered
  bool stopped = false;    // delivery halted (job failure or callback throw)
  bool delivering = false;  // one worker is draining the ready prefix
  std::exception_ptr delivery_error;  // first exception from a callback

  /// Runs one job and deposits its outcome; never throws.
  void execute(const BatchJob& job, std::size_t i) noexcept {
    try {
      results[i] = run_synchronous(*job.graph, *job.factory, job.options);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  }

  /// After job `i` lands: deliver the ready prefix through `on_result`.
  /// The `delivering` flag makes exactly one worker the deliverer at a
  /// time, so callbacks never interleave and observe strictly increasing
  /// indices — but each callback runs *outside* the mutex, so a slow
  /// consumer never blocks the other workers from depositing results and
  /// pulling their next jobs.
  void deposit_and_flush(std::size_t i,
                         const BatchRunner::ResultCallback& on_result) {
    std::unique_lock<std::mutex> lock(mutex);
    done[i] = 1;
    if (delivering) return;  // the current deliverer will pick this up
    delivering = true;
    while (!stopped && cursor < done.size() && done[cursor] != 0) {
      if (errors[cursor]) {
        stopped = true;  // the prefix rule: nothing at or past a failure
        break;
      }
      const std::size_t idx = cursor++;
      RunResult result = std::move(results[idx]);
      lock.unlock();
      std::exception_ptr thrown;
      try {
        on_result(idx, std::move(result));
      } catch (...) {
        thrown = std::current_exception();
      }
      lock.lock();
      if (thrown) {
        delivery_error = thrown;
        stopped = true;
        break;
      }
    }
    delivering = false;
  }

  /// The post-drain rethrow: the callback's own failure wins (it is the
  /// earliest in delivery order by construction), else the lowest-indexed
  /// job failure.
  void rethrow_failures() const {
    if (delivery_error) std::rethrow_exception(delivery_error);
    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }
};

}  // namespace

BatchRunner::BatchRunner(unsigned threads) : pool_(threads) {}

BatchRunner::~BatchRunner() = default;

std::vector<RunResult> BatchRunner::run(
    const std::vector<BatchJob>& jobs) const {
  std::vector<RunResult> results(jobs.size());
  run_streaming(jobs, [&results](std::size_t i, RunResult&& result) {
    results[i] = std::move(result);
  });
  return results;
}

void BatchRunner::run_streaming(const std::vector<BatchJob>& jobs,
                                const ResultCallback& on_result) const {
  validate_jobs(jobs);
  ReorderBuffer buffer(jobs.size());
  pool_.run(jobs.size(), [&](std::size_t i) {
    buffer.execute(jobs[i], i);
    buffer.deposit_and_flush(i, on_result);
  });
  buffer.rethrow_failures();
}

struct BatchStream::Impl {
  Impl(std::vector<BatchJob> jobs_in, ThreadPool* pool)
      : jobs(std::move(jobs_in)), buffer(jobs.size()) {
    driver = std::thread([this, pool] {
      pool->run(jobs.size(), [this](std::size_t i) {
        buffer.execute(jobs[i], i);
        {
          const std::lock_guard<std::mutex> lock(buffer.mutex);
          buffer.done[i] = 1;
        }
        buffer.ready.notify_all();
      });
    });
  }

  ~Impl() {
    if (driver.joinable()) driver.join();
  }

  std::vector<BatchJob> jobs;
  ReorderBuffer buffer;
  std::thread driver;
};

BatchStream::BatchStream(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

BatchStream::~BatchStream() = default;

std::optional<BatchStream::Item> BatchStream::next() {
  ReorderBuffer& buffer = impl_->buffer;
  std::unique_lock<std::mutex> lock(buffer.mutex);
  if (buffer.stopped || buffer.cursor >= buffer.done.size()) {
    return std::nullopt;
  }
  const std::size_t i = buffer.cursor;
  buffer.ready.wait(lock, [&buffer, i] { return buffer.done[i] != 0; });
  if (buffer.errors[i]) {
    // The prefix rule: a failure ends the stream; drain the batch before
    // rethrowing so the pool is quiescent when the caller unwinds.
    buffer.stopped = true;
    const auto error = buffer.errors[i];
    lock.unlock();
    if (impl_->driver.joinable()) impl_->driver.join();
    std::rethrow_exception(error);
  }
  ++buffer.cursor;
  Item item{i, std::move(buffer.results[i])};
  return item;
}

std::unique_ptr<BatchStream> BatchRunner::stream(
    std::vector<BatchJob> jobs) const {
  validate_jobs(jobs);
  return std::unique_ptr<BatchStream>(new BatchStream(
      std::make_unique<BatchStream::Impl>(std::move(jobs), &pool_)));
}

}  // namespace eds::runtime
