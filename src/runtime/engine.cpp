#include "runtime/engine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "util/error.hpp"

namespace eds::runtime {

ExecutionPlan::ExecutionPlan(const port::PortGraph& g)
    : degrees_(g.degree_sequence()), partner_ref_(g.partner_table()) {
  constructed_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n = degrees_.size();
  offsets_.resize(n);
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    offsets_[v] = total;
    total += degrees_[v];
  }
  partner_flat_.resize(total);
  for (std::size_t q = 0; q < total; ++q) {
    const auto dst = partner_ref_[q];
    partner_flat_[q] =
        static_cast<std::uint32_t>(offsets_[dst.node] + dst.port - 1);
  }
}

bool ExecutionPlan::matches(const port::PortGraph& g) const {
  // Two contiguous scans: the flat degree sequence and the flat involution
  // table are exactly what the constructor consumed, in the same order.
  return degrees_ == g.degree_sequence() &&
         partner_ref_ == g.partner_table();
}

std::unique_ptr<ExecutionPolicy> make_policy(const ExecOptions& exec) {
  if (exec.threads == 1) return std::make_unique<SequentialPolicy>();
  return std::make_unique<ParallelPolicy>(exec.threads);
}

namespace {

#if defined(EDS_ENGINE_GATHER_PREFETCH)
/// Software-prefetch distance for the receive gather's permuted loads, in
/// ports.  Measured on BM_EngineDense (deg 16/64) and BM_Engine100k
/// (deg 3) and REJECTED as the default: the in-loop branch and extra
/// partner_flat load cost more than the prefetch recovers at every
/// measured degree (docs/BENCHMARKS.md records the deltas), so the hint
/// compiles only under -DEDS_ENGINE_GATHER_PREFETCH for re-evaluation on
/// wider machines.
constexpr Port kGatherPrefetchDistance = 8;
#endif

/// Per-shard accumulators; merged strictly in shard order so parallel runs
/// reproduce the sequential order bit for bit.  Cache-line aligned so
/// neighboring shards' counters never share a line.
struct alignas(64) ShardScratch {
  std::uint64_t ports_served = 0;
  std::vector<DeliveredMessage> log;
  std::vector<std::size_t> newly_halted;
  /// One node's inbound messages, gathered through the involution from the
  /// current outbox back into the contiguous form receive() promises.
  /// Max-degree sized and reused across nodes, rounds and runs.
  std::vector<Message> recv;
  /// Profiled runs only: per-stage wall time accumulated shard-locally and
  /// merged by the driver after the barrier.
  std::uint64_t receive_ns = 0;
  std::uint64_t exchange_ns = 0;
  std::uint64_t scatter_ns = 0;
  std::exception_ptr error;

  void reset() noexcept {
    ports_served = 0;
    log.clear();
    newly_halted.clear();
    receive_ns = 0;
    exchange_ns = 0;
    scatter_ns = 0;
    error = nullptr;
  }
};

void rethrow_first(const std::vector<ShardScratch>& scratch,
                   std::size_t shards) {
  for (std::size_t s = 0; s < shards; ++s) {
    if (scratch[s].error) std::rethrow_exception(scratch[s].error);
  }
}

std::atomic<std::uint64_t> g_ws_reuses{0};
std::atomic<std::uint64_t> g_ws_growths{0};
std::atomic<std::uint64_t> g_ws_bytes{0};

std::atomic<bool> g_stage_profile{false};
/// Bumped whenever the profiling flag may have changed
/// (engine_stage_profiling and engine_stage_stats_reset both bump it), so
/// every lane's cached sample is invalidated and re-read on its next run.
std::atomic<std::uint64_t> g_profile_epoch{1};
std::atomic<std::uint64_t> g_exchange_ns{0};
std::atomic<std::uint64_t> g_receive_ns{0};
std::atomic<std::uint64_t> g_scatter_ns{0};
std::atomic<std::uint64_t> g_scan_ns{0};
std::atomic<std::uint64_t> g_profiled_rounds{0};

/// Per-run sample of the profiling flag, cached per lane behind the epoch
/// counter: one relaxed epoch load per run on the steady path, a flag
/// re-sample only after a toggle or a stats reset.
bool stage_profiling_sample() noexcept {
  thread_local std::uint64_t seen_epoch = 0;
  thread_local bool cached = false;
  const auto epoch = g_profile_epoch.load(std::memory_order_acquire);
  if (epoch != seen_epoch) {
    cached = g_stage_profile.load(std::memory_order_relaxed);
    seen_epoch = epoch;
  }
  return cached;
}

/// One buffer of the double-buffered message transport: the round's
/// messages indexed by *sender* flat port (node v's sends occupy the
/// contiguous segment [offset(v), offset(v) + degree(v))), plus the
/// struct-of-arrays tag lane shadowing slot tags for branch-free sweeps.
/// Senders write only their own segment (trivially single-writer);
/// receivers gather through the involution, so delivery itself is free.
struct OutboxBuffer {
  std::vector<Message> slots;
  std::vector<std::int32_t> tag;  // tag[q] == slots[q].tag, always

  void assign_silence(std::size_t count) {
    slots.assign(count, kSilence);
    tag.assign(count, 0);
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return slots.capacity() * sizeof(Message) +
           tag.capacity() * sizeof(std::int32_t);
  }
};

/// The pooled message transport: every buffer the round loop writes lives
/// here and is *assigned* (size + contents reset, capacity retained) at the
/// start of each run instead of being reallocated.  One workspace exists
/// per thread, so sequential runs, BatchRunner jobs (one job per pool lane)
/// and BatchStream drivers each reuse their lane's arena run after run.
struct EngineWorkspace {
  /// The double buffer: one set of slots + tag lane holds round r's
  /// messages while round r + 1's sends land in the other; they swap after
  /// every round's single barrier.
  OutboxBuffer outbox[2];
  std::vector<char> halted;
  std::vector<std::size_t> active;
  std::vector<std::size_t> bounds;  // shard boundaries, shards + 1 entries
  std::vector<ShardScratch> scratch;
  bool in_use = false;       // re-entrancy guard (see acquire below)
  std::size_t bytes = 0;     // last accounted footprint

  EngineWorkspace() = default;
  EngineWorkspace(const EngineWorkspace&) = delete;
  EngineWorkspace& operator=(const EngineWorkspace&) = delete;
  ~EngineWorkspace() {
    // The lane (thread) is going away: return its bytes to the gauge, or
    // short-lived pools (one BatchRunner per run_batch call) would leak
    // dead bytes into the "currently pooled" statistic.
    g_ws_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t footprint() const noexcept {
    std::size_t scratch_bytes = 0;
    for (const auto& sc : scratch) {
      scratch_bytes += sc.log.capacity() * sizeof(DeliveredMessage) +
                       sc.newly_halted.capacity() * sizeof(std::size_t) +
                       sc.recv.capacity() * sizeof(Message);
    }
    return outbox[0].memory_bytes() + outbox[1].memory_bytes() +
           halted.capacity() + active.capacity() * sizeof(std::size_t) +
           bounds.capacity() * sizeof(std::size_t) +
           scratch.capacity() * sizeof(ShardScratch) + scratch_bytes;
  }

  /// Resets the buffers for a run over `n` nodes / `total_ports` ports with
  /// `lanes` shards, growing capacity only when this lane has never seen a
  /// graph this large.  Both buffers reset to silence: the double buffer is
  /// the workspace's deliberate second total_ports-sized allocation, bought
  /// to run each round behind a single barrier.
  void prepare(std::size_t n, std::size_t total_ports, unsigned lanes) {
    const bool grows = total_ports > outbox[0].slots.capacity() ||
                       n > halted.capacity() || n > active.capacity() ||
                       lanes > scratch.size();
    outbox[0].assign_silence(total_ports);
    outbox[1].assign_silence(total_ports);
    halted.assign(n, 0);
    active.clear();
    active.reserve(n);
    if (scratch.size() < lanes) scratch.resize(lanes);
    (grows ? g_ws_growths : g_ws_reuses).fetch_add(1,
                                                   std::memory_order_relaxed);
  }

  void account() noexcept {
    const std::size_t now = footprint();
    if (now >= bytes) {
      g_ws_bytes.fetch_add(now - bytes, std::memory_order_relaxed);
    } else {
      g_ws_bytes.fetch_sub(bytes - now, std::memory_order_relaxed);
    }
    bytes = now;
  }
};

/// The per-thread workspace, or null when the thread is already inside a
/// run (a NodeProgram that recursively calls run_synchronous must not
/// clobber its own caller's buffers — the recursive run falls back to a
/// private workspace).
EngineWorkspace* acquire_workspace() {
  thread_local EngineWorkspace workspace;
  if (workspace.in_use) return nullptr;
  workspace.in_use = true;
  return &workspace;
}

/// RAII over acquire_workspace(): releases the lane workspace (updating the
/// byte accounting) or owns the recursive-fallback workspace outright.
class WorkspaceLease {
 public:
  WorkspaceLease()
      : pooled_(acquire_workspace()),
        fallback_(pooled_ ? nullptr : std::make_unique<EngineWorkspace>()) {}
  ~WorkspaceLease() {
    if (pooled_) {
      pooled_->account();
      pooled_->in_use = false;
    }
  }
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  [[nodiscard]] EngineWorkspace& operator*() const noexcept {
    return pooled_ ? *pooled_ : *fallback_;
  }

 private:
  EngineWorkspace* pooled_;
  std::unique_ptr<EngineWorkspace> fallback_;
};

}  // namespace

EngineAllocStats engine_alloc_stats() noexcept {
  EngineAllocStats stats;
  stats.workspace_reuses = g_ws_reuses.load(std::memory_order_relaxed);
  stats.workspace_growths = g_ws_growths.load(std::memory_order_relaxed);
  stats.workspace_bytes = g_ws_bytes.load(std::memory_order_relaxed);
  return stats;
}

void engine_stage_profiling(bool enabled) noexcept {
  g_stage_profile.store(enabled, std::memory_order_relaxed);
  g_profile_epoch.fetch_add(1, std::memory_order_release);
}

EngineStageStats engine_stage_stats() noexcept {
  EngineStageStats stats;
  stats.exchange_ns = g_exchange_ns.load(std::memory_order_relaxed);
  stats.receive_ns = g_receive_ns.load(std::memory_order_relaxed);
  stats.scatter_ns = g_scatter_ns.load(std::memory_order_relaxed);
  stats.scan_ns = g_scan_ns.load(std::memory_order_relaxed);
  stats.profiled_rounds = g_profiled_rounds.load(std::memory_order_relaxed);
  return stats;
}

void engine_stage_stats_reset() noexcept {
  g_exchange_ns.store(0, std::memory_order_relaxed);
  g_receive_ns.store(0, std::memory_order_relaxed);
  g_scatter_ns.store(0, std::memory_order_relaxed);
  g_scan_ns.store(0, std::memory_order_relaxed);
  g_profiled_rounds.store(0, std::memory_order_relaxed);
  // Invalidate every lane's cached flag sample: a toggle that raced the
  // previous measurement window is picked up by the very next run.
  g_profile_epoch.fetch_add(1, std::memory_order_release);
}

RunResult run_plan(const ExecutionPlan& plan,
                   std::vector<std::unique_ptr<NodeProgram>>& programs,
                   const RunOptions& options, const std::string& name,
                   ExecutionPolicy& policy) {
  if (options.max_rounds == 0) {
    throw InvalidArgument(
        "run_synchronous: RunOptions::max_rounds must be positive");
  }
  const std::size_t n = plan.num_nodes();
  EDS_ENSURE(programs.size() == n, "run_plan: one program per node required");

  const unsigned lanes = std::max(1u, policy.lanes());
  const std::size_t total_ports = plan.total_ports();
  const WorkspaceLease lease;
  EngineWorkspace& ws = *lease;
  ws.prepare(n, total_ports, lanes);
  OutboxBuffer* cur = &ws.outbox[0];  // holds round r's messages
  OutboxBuffer* nxt = &ws.outbox[1];  // round r + 1's sends land here

  // The worklist: indices of non-halted nodes, always sorted ascending (it
  // only ever loses elements), so contiguous shard ranges visit nodes in
  // exactly the sequential order.
  std::vector<char>& halted = ws.halted;
  std::vector<std::size_t>& active = ws.active;
  for (std::size_t v = 0; v < n; ++v) {
    programs[v]->start(plan.degree(v));
    if (programs[v]->halted()) {
      // Degree-0 nodes (or trivial algorithms) may halt immediately.
      halted[v] = 1;
    } else {
      active.push_back(v);
    }
  }

  RunResult result;
  result.messages_collected = options.collect_messages;
  const bool collect = options.collect_messages;
  RunStats& stats = result.stats;

  std::vector<ShardScratch>& scratch = ws.scratch;
  std::vector<std::size_t>& bounds = ws.bounds;

  // Stage profiling: the flag is sampled once per run (epoch-cached per
  // lane), so a disabled run takes no timestamps at all.  Profiled runs
  // drive each shard as separate receive / send / tag-shadow sweeps so the
  // split can be timed at shard granularity — bit-identical results, since
  // programs only observe their own call sequence.
  const bool profile = stage_profiling_sample();
  using ProfileClock = std::chrono::steady_clock;
  const auto elapsed_ns = [](ProfileClock::time_point from,
                             ProfileClock::time_point to) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count());
  };
  std::uint64_t exchange_ns = 0;
  std::uint64_t receive_ns = 0;
  std::uint64_t scatter_ns = 0;
  std::uint64_t scan_ns = 0;

  // Stages node v's round-r sends: its contiguous outbox segment is reset
  // to silence (a program sends only by writing this round, so stale
  // messages never "ghost" into later ones) and the program writes message
  // structs straight into it — no intermediate staging buffer, all stores
  // sequential, and single-writer-per-slot holds trivially because every
  // slot belongs to exactly one sender.
  const auto send_node = [&](ShardScratch& sc, std::size_t v, Round r,
                             OutboxBuffer& to) {
    const Port deg = plan.degree(v);
    const std::size_t off = plan.offset(v);
    Message* const seg = to.slots.data() + off;
    std::fill_n(seg, deg, kSilence);
    programs[v]->send(r, std::span<Message>(seg, deg));
    sc.ports_served += deg;
    if (collect) {
      for (Port i = 0; i < deg; ++i) {
        if (!seg[i].is_silence()) {
          sc.log.push_back({r,
                            {static_cast<port::NodeId>(v),
                             static_cast<Port>(i + 1)},
                            plan.partner_ref(off + i),
                            seg[i]});
        }
      }
    }
  };

  // Mirrors v's freshly written segment tags into the buffer's flat
  // struct-of-arrays tag lane — a contiguous strided copy, so the
  // per-round traffic count and the silence accounting sweep a flat int32
  // lane branch-free instead of striding over 16-byte structs.
  const auto shadow_tags = [&](std::size_t v, OutboxBuffer& to) {
    const Port deg = plan.degree(v);
    const std::size_t off = plan.offset(v);
    const Message* const seg = to.slots.data() + off;
    std::int32_t* const tags = to.tag.data() + off;
    for (Port i = 0; i < deg; ++i) tags[i] = seg[i].tag;
  };

  // Gathers v's round-r inputs from the current buffer through the
  // involution — in[i] = cur[partner(offset(v) + i)] — and fires
  // receive().  Delivery IS this gather: messages are never copied between
  // send and receive, the permutation is applied on the read side where
  // loads pipeline (scattered stores pay a read-for-ownership per cache
  // line), and halted receivers never pay for it at all.
  const auto receive_node = [&](ShardScratch& sc, std::size_t v, Round r,
                                const OutboxBuffer& from) {
    const Port deg = plan.degree(v);
    const std::size_t off = plan.offset(v);
    if (sc.recv.size() < deg) sc.recv.resize(deg);
    Message* const in = sc.recv.data();
    const Message* const slots = from.slots.data();
    for (Port i = 0; i < deg; ++i) {
#if defined(EDS_ENGINE_GATHER_PREFETCH) && \
    (defined(__GNUC__) || defined(__clang__))
      // The partner permutation makes these loads data-dependent scatters
      // the hardware prefetcher cannot follow; starting the line a few
      // ports ahead overlaps the misses.  Measured a wash-to-regression
      // at every benchmarked degree (see kGatherPrefetchDistance), hence
      // opt-in only.
      if (i + kGatherPrefetchDistance < deg) {
        __builtin_prefetch(
            &slots[plan.partner_flat(off + i + kGatherPrefetchDistance)],
            /*rw=*/0, /*locality=*/0);
      }
#endif
      in[i] = slots[plan.partner_flat(off + i)];
    }
    programs[v]->receive(r, std::span<const Message>(in, deg));
  };

  // Computes this round's shard boundaries: port-count balanced, so a
  // power-law worklist cannot pile most of the traffic onto one lane.  Any
  // contiguous partition of the ascending worklist preserves the
  // shard-order merge, hence bit-identical results.
  const auto shard_bounds = [&](std::size_t shards) {
    balanced_shard_bounds(
        active.size(), shards,
        [&](std::size_t idx) {
          return static_cast<std::uint64_t>(plan.degree(active[idx]));
        },
        bounds);
  };

  // `pending` is the number of non-silence messages in the buffer the next
  // receive sweep will read: one branch-free sweep over its tag lane.
  // Exact because every slot either carries a fresh write from an active
  // sender or was zeroed when its owning node halted.
  std::uint64_t pending = 0;
  const auto scan_pending = [&](const OutboxBuffer& buf) {
    if (profile) {
      const auto t0 = ProfileClock::now();
      pending = count_nonsilence(buf.tag.data(), total_ports);
      scan_ns += elapsed_ns(t0, ProfileClock::now());
    } else {
      pending = count_nonsilence(buf.tag.data(), total_ports);
    }
    stats.messages_sent += pending;
  };

  // Initial exchange: round 1's sends land in `cur` before the loop, so
  // every later round can fuse "receive round r" and "send round r + 1"
  // behind one barrier.
  if (!active.empty()) {
    const std::size_t shards = std::min<std::size_t>(lanes, active.size());
    shard_bounds(shards);
    for (std::size_t s = 0; s < shards; ++s) scratch[s].reset();
    policy.for_each_shard(shards, [&](std::size_t s) {
      ShardScratch& sc = scratch[s];
      try {
        if (!profile) {
          for (std::size_t idx = bounds[s]; idx < bounds[s + 1]; ++idx) {
            send_node(sc, active[idx], 1, *cur);
            shadow_tags(active[idx], *cur);
          }
        } else {
          const auto t0 = ProfileClock::now();
          for (std::size_t idx = bounds[s]; idx < bounds[s + 1]; ++idx) {
            send_node(sc, active[idx], 1, *cur);
          }
          const auto t1 = ProfileClock::now();
          for (std::size_t idx = bounds[s]; idx < bounds[s + 1]; ++idx) {
            shadow_tags(active[idx], *cur);
          }
          const auto t2 = ProfileClock::now();
          sc.exchange_ns += elapsed_ns(t0, t2);
          sc.scatter_ns += elapsed_ns(t1, t2);
        }
      } catch (...) {
        sc.error = std::current_exception();
      }
    });
    rethrow_first(scratch, shards);
    for (std::size_t s = 0; s < shards; ++s) {
      const ShardScratch& sc = scratch[s];
      stats.ports_served += sc.ports_served;
      if (collect) {
        result.message_log.insert(result.message_log.end(), sc.log.begin(),
                                  sc.log.end());
      }
      exchange_ns += sc.exchange_ns;
      scatter_ns += sc.scatter_ns;
    }
    scan_pending(*cur);
  }

  Round round = 0;
  while (!active.empty()) {
    ++round;
    const Round next = round + 1;
    const bool send_next = next <= options.max_rounds;

    const std::size_t shards = std::min<std::size_t>(lanes, active.size());
    shard_bounds(shards);
    for (std::size_t s = 0; s < shards; ++s) scratch[s].reset();

    // The fused round stage, ONE barrier: every active node gathers and
    // receives its round-r input from `cur`, then — unless it halted, or
    // round r + 1 would exceed the cap — writes round r + 1 into its own
    // segment of `nxt`.  `cur` is read-only for the whole stage and every
    // `nxt` segment has exactly one writer (its owner), so shards never
    // contend; a directed self-loop reads its own `cur` segment and writes
    // `nxt`, never racing itself.  Halt flags are written only by the
    // shard that owns the node and read only by that shard until the
    // barrier.
    policy.for_each_shard(shards, [&](std::size_t s) {
      ShardScratch& sc = scratch[s];
      try {
        if (!profile) {
          for (std::size_t idx = bounds[s]; idx < bounds[s + 1]; ++idx) {
            const std::size_t v = active[idx];
            receive_node(sc, v, round, *cur);
            if (programs[v]->halted()) {
              halted[v] = 1;
              sc.newly_halted.push_back(v);
            } else if (send_next) {
              send_node(sc, v, next, *nxt);
              shadow_tags(v, *nxt);
            }
          }
        } else {
          // Profiled: the same work as separate receive / send / shadow
          // sweeps, timed at shard granularity.  Programs observe the same
          // per-node call sequence, logs are collected in the same
          // ascending node order — bit-identical to the fused path.
          const auto t0 = ProfileClock::now();
          for (std::size_t idx = bounds[s]; idx < bounds[s + 1]; ++idx) {
            const std::size_t v = active[idx];
            receive_node(sc, v, round, *cur);
            if (programs[v]->halted()) {
              halted[v] = 1;
              sc.newly_halted.push_back(v);
            }
          }
          const auto t1 = ProfileClock::now();
          if (send_next) {
            for (std::size_t idx = bounds[s]; idx < bounds[s + 1]; ++idx) {
              const std::size_t v = active[idx];
              if (!halted[v]) send_node(sc, v, next, *nxt);
            }
          }
          const auto t2 = ProfileClock::now();
          if (send_next) {
            for (std::size_t idx = bounds[s]; idx < bounds[s + 1]; ++idx) {
              const std::size_t v = active[idx];
              if (!halted[v]) shadow_tags(v, *nxt);
            }
          }
          const auto t3 = ProfileClock::now();
          sc.receive_ns += elapsed_ns(t0, t1);
          sc.exchange_ns += elapsed_ns(t1, t3);
          sc.scatter_ns += elapsed_ns(t2, t3);
        }
      } catch (...) {
        sc.error = std::current_exception();
      }
    });
    rethrow_first(scratch, shards);

    // Merge, strictly in shard order.  A halting node's *own* segment is
    // silenced in BOTH buffers — two contiguous fills, no scattered
    // writes: in `nxt` it holds stale round r - 1 sends (the node sent
    // nothing this stage), in `cur` its round-r sends — and `cur` becomes
    // the send target at round r + 1, so either copy would ghost into a
    // later round's gathers once the node stops overwriting it.  After
    // this, a halted node's partners read silence from it forever.
    ProfileClock::time_point merge_start;
    if (profile) merge_start = ProfileClock::now();
    bool any_halted = false;
    for (std::size_t s = 0; s < shards; ++s) {
      const ShardScratch& sc = scratch[s];
      stats.ports_served += sc.ports_served;
      if (collect) {
        result.message_log.insert(result.message_log.end(), sc.log.begin(),
                                  sc.log.end());
      }
      receive_ns += sc.receive_ns;
      exchange_ns += sc.exchange_ns;
      scatter_ns += sc.scatter_ns;
      for (const std::size_t v : sc.newly_halted) {
        any_halted = true;
        const Port deg = plan.degree(v);
        const std::size_t off = plan.offset(v);
        for (OutboxBuffer* buf : {cur, nxt}) {
          std::fill_n(buf->slots.data() + off, deg, kSilence);
          std::fill_n(buf->tag.data() + off, deg, std::int32_t{0});
        }
      }
    }
    if (any_halted) {
      std::erase_if(active, [&](std::size_t v) { return halted[v] != 0; });
    }

    if (options.collect_trace) {
      result.trace.push_back({round, pending, n - active.size()});
    }
    if (profile) {
      receive_ns += elapsed_ns(merge_start, ProfileClock::now());
    }

    if (active.empty()) break;
    if (!send_next) {
      std::ostringstream os;
      os << "run_synchronous: algorithm '" << name << "' did not halt within "
         << options.max_rounds << " rounds (" << active.size() << " of " << n
         << " nodes still running)";
      throw ExecutionError(os.str());
    }
    scan_pending(*nxt);
    std::swap(cur, nxt);
  }

  if (profile) {
    g_exchange_ns.fetch_add(exchange_ns, std::memory_order_relaxed);
    g_receive_ns.fetch_add(receive_ns, std::memory_order_relaxed);
    g_scatter_ns.fetch_add(scatter_ns, std::memory_order_relaxed);
    g_scan_ns.fetch_add(scan_ns, std::memory_order_relaxed);
    g_profiled_rounds.fetch_add(round, std::memory_order_relaxed);
  }

  stats.rounds = round;
  result.outputs.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    auto ports = programs[v]->output();
    std::sort(ports.begin(), ports.end());
    const Port deg = plan.degree(v);
    for (const Port p : ports) {
      if (p < 1 || p > deg) {
        throw ExecutionError(
            "run_synchronous: node output contains an invalid port number");
      }
    }
    if (std::adjacent_find(ports.begin(), ports.end()) != ports.end()) {
      throw ExecutionError(
          "run_synchronous: node output contains a duplicate port");
    }
    result.outputs[v] = std::move(ports);
  }
  return result;
}

}  // namespace eds::runtime
