#include "runtime/engine.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace eds::runtime {

ExecutionPlan::ExecutionPlan(const port::PortGraph& g)
    : degrees_(g.degree_sequence()), partner_ref_(g.partner_table()) {
  constructed_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n = degrees_.size();
  offsets_.resize(n);
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    offsets_[v] = total;
    total += degrees_[v];
  }
  partner_flat_.resize(total);
  for (std::size_t q = 0; q < total; ++q) {
    const auto dst = partner_ref_[q];
    partner_flat_[q] = offsets_[dst.node] + dst.port - 1;
  }
}

bool ExecutionPlan::matches(const port::PortGraph& g) const {
  // Two contiguous scans: the flat degree sequence and the flat involution
  // table are exactly what the constructor consumed, in the same order.
  return degrees_ == g.degree_sequence() &&
         partner_ref_ == g.partner_table();
}

std::unique_ptr<ExecutionPolicy> make_policy(const ExecOptions& exec) {
  if (exec.threads == 1) return std::make_unique<SequentialPolicy>();
  return std::make_unique<ParallelPolicy>(exec.threads);
}

namespace {

/// Per-shard accumulators; merged strictly in shard order so parallel runs
/// reproduce the sequential order bit for bit.  Cache-line aligned so
/// neighboring shards' counters never share a line (the stages additionally
/// accumulate in stack locals and store once per stage).
struct alignas(64) ShardScratch {
  std::uint64_t messages_sent = 0;
  std::uint64_t ports_served = 0;
  std::uint64_t round_messages = 0;
  std::vector<DeliveredMessage> log;
  std::vector<std::size_t> newly_halted;
  std::exception_ptr error;

  void reset() noexcept {
    messages_sent = 0;
    ports_served = 0;
    round_messages = 0;
    log.clear();
    newly_halted.clear();
    error = nullptr;
  }
};

void rethrow_first(const std::vector<ShardScratch>& scratch,
                   std::size_t shards) {
  for (std::size_t s = 0; s < shards; ++s) {
    if (scratch[s].error) std::rethrow_exception(scratch[s].error);
  }
}

std::atomic<std::uint64_t> g_ws_reuses{0};
std::atomic<std::uint64_t> g_ws_growths{0};
std::atomic<std::uint64_t> g_ws_bytes{0};

/// The pooled message transport: every buffer the round loop writes lives
/// here and is *assigned* (size + contents reset, capacity retained) at the
/// start of each run instead of being reallocated.  One workspace exists
/// per thread, so sequential runs, BatchRunner jobs (one job per pool lane)
/// and BatchStream drivers each reuse their lane's arena run after run.
struct EngineWorkspace {
  std::vector<Message> outbox;
  std::vector<Message> inbox;
  std::vector<char> halted;
  std::vector<std::size_t> active;
  std::vector<ShardScratch> scratch;
  bool in_use = false;       // re-entrancy guard (see acquire below)
  std::size_t bytes = 0;     // last accounted footprint

  EngineWorkspace() = default;
  EngineWorkspace(const EngineWorkspace&) = delete;
  EngineWorkspace& operator=(const EngineWorkspace&) = delete;
  ~EngineWorkspace() {
    // The lane (thread) is going away: return its bytes to the gauge, or
    // short-lived pools (one BatchRunner per run_batch call) would leak
    // dead bytes into the "currently pooled" statistic.
    g_ws_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t footprint() const noexcept {
    std::size_t log_bytes = 0;
    for (const auto& sc : scratch) {
      log_bytes += sc.log.capacity() * sizeof(DeliveredMessage) +
                   sc.newly_halted.capacity() * sizeof(std::size_t);
    }
    return outbox.capacity() * sizeof(Message) +
           inbox.capacity() * sizeof(Message) + halted.capacity() +
           active.capacity() * sizeof(std::size_t) +
           scratch.capacity() * sizeof(ShardScratch) + log_bytes;
  }

  /// Resets the buffers for a run over `n` nodes / `total_ports` ports with
  /// `lanes` shards, growing capacity only when this lane has never seen a
  /// graph this large.
  void prepare(std::size_t n, std::size_t total_ports, unsigned lanes) {
    const bool grows = total_ports > outbox.capacity() ||
                       n > halted.capacity() || n > active.capacity() ||
                       lanes > scratch.size();
    outbox.assign(total_ports, kSilence);
    inbox.assign(total_ports, kSilence);
    halted.assign(n, 0);
    active.clear();
    active.reserve(n);
    if (scratch.size() < lanes) scratch.resize(lanes);
    (grows ? g_ws_growths : g_ws_reuses).fetch_add(1,
                                                   std::memory_order_relaxed);
  }

  void account() noexcept {
    const std::size_t now = footprint();
    if (now >= bytes) {
      g_ws_bytes.fetch_add(now - bytes, std::memory_order_relaxed);
    } else {
      g_ws_bytes.fetch_sub(bytes - now, std::memory_order_relaxed);
    }
    bytes = now;
  }
};

/// The per-thread workspace, or null when the thread is already inside a
/// run (a NodeProgram that recursively calls run_synchronous must not
/// clobber its own caller's buffers — the recursive run falls back to a
/// private workspace).
EngineWorkspace* acquire_workspace() {
  thread_local EngineWorkspace workspace;
  if (workspace.in_use) return nullptr;
  workspace.in_use = true;
  return &workspace;
}

/// RAII over acquire_workspace(): releases the lane workspace (updating the
/// byte accounting) or owns the recursive-fallback workspace outright.
class WorkspaceLease {
 public:
  WorkspaceLease()
      : pooled_(acquire_workspace()),
        fallback_(pooled_ ? nullptr : std::make_unique<EngineWorkspace>()) {}
  ~WorkspaceLease() {
    if (pooled_) {
      pooled_->account();
      pooled_->in_use = false;
    }
  }
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  [[nodiscard]] EngineWorkspace& operator*() const noexcept {
    return pooled_ ? *pooled_ : *fallback_;
  }

 private:
  EngineWorkspace* pooled_;
  std::unique_ptr<EngineWorkspace> fallback_;
};

}  // namespace

EngineAllocStats engine_alloc_stats() noexcept {
  EngineAllocStats stats;
  stats.workspace_reuses = g_ws_reuses.load(std::memory_order_relaxed);
  stats.workspace_growths = g_ws_growths.load(std::memory_order_relaxed);
  stats.workspace_bytes = g_ws_bytes.load(std::memory_order_relaxed);
  return stats;
}

RunResult run_plan(const ExecutionPlan& plan,
                   std::vector<std::unique_ptr<NodeProgram>>& programs,
                   const RunOptions& options, const std::string& name,
                   ExecutionPolicy& policy) {
  if (options.max_rounds == 0) {
    throw InvalidArgument(
        "run_synchronous: RunOptions::max_rounds must be positive");
  }
  const std::size_t n = plan.num_nodes();
  EDS_ENSURE(programs.size() == n, "run_plan: one program per node required");

  const unsigned lanes = std::max(1u, policy.lanes());
  const WorkspaceLease lease;
  EngineWorkspace& ws = *lease;
  ws.prepare(n, plan.total_ports(), lanes);
  std::vector<Message>& outbox = ws.outbox;
  std::vector<Message>& inbox = ws.inbox;

  // The worklist: indices of non-halted nodes, always sorted ascending (it
  // only ever loses elements), so contiguous shard ranges visit nodes in
  // exactly the sequential order.
  std::vector<char>& halted = ws.halted;
  std::vector<std::size_t>& active = ws.active;
  for (std::size_t v = 0; v < n; ++v) {
    programs[v]->start(plan.degree(v));
    if (programs[v]->halted()) {
      // Degree-0 nodes (or trivial algorithms) may halt immediately.
      halted[v] = 1;
    } else {
      active.push_back(v);
    }
  }

  RunResult result;
  result.messages_collected = options.collect_messages;
  RunStats& stats = result.stats;

  std::vector<ShardScratch>& scratch = ws.scratch;

  Round round = 0;
  while (!active.empty()) {
    ++round;
    if (round > options.max_rounds) {
      std::ostringstream os;
      os << "run_synchronous: algorithm '" << name << "' did not halt within "
         << options.max_rounds << " rounds (" << active.size() << " of " << n
         << " nodes still running)";
      throw ExecutionError(os.str());
    }

    const std::size_t shards =
        std::min<std::size_t>(lanes, active.size());
    const auto shard_begin = [&](std::size_t s) {
      return active.size() * s / shards;
    };
    for (std::size_t s = 0; s < shards; ++s) scratch[s].reset();

    // Send: every active node's ports default to silence each round — a
    // program sends only by writing this round (stale messages must not
    // "ghost" into later ones).  Halted nodes' slots were silenced when
    // they halted and are never written again.
    policy.for_each_shard(shards, [&](std::size_t s) {
      ShardScratch& sc = scratch[s];
      try {
        std::uint64_t ports_served = 0;
        std::uint64_t messages_sent = 0;
        const std::size_t end = shard_begin(s + 1);
        for (std::size_t idx = shard_begin(s); idx < end; ++idx) {
          const std::size_t v = active[idx];
          const Port deg = plan.degree(v);
          const std::span<Message> out(&outbox[plan.offset(v)], deg);
          std::fill(out.begin(), out.end(), kSilence);
          programs[v]->send(round, out);
          ports_served += deg;
          for (const auto& m : out) {
            if (!m.is_silence()) ++messages_sent;
          }
        }
        sc.ports_served = ports_served;
        sc.messages_sent = messages_sent;
      } catch (...) {
        sc.error = std::current_exception();
      }
    });
    rethrow_first(scratch, shards);

    // Route: the message sent on port (v, i) is received from port (u, j)
    // where p(v, i) = (u, j); fixed points deliver to the sender itself.
    // Race-free under sharding: each inbox slot has exactly one partner
    // port (p is an involution), hence exactly one writer.  Inbox slots
    // whose partner is halted were silenced at halt time and stay silent.
    policy.for_each_shard(shards, [&](std::size_t s) {
      ShardScratch& sc = scratch[s];
      try {
        std::uint64_t round_messages = 0;
        const std::size_t end = shard_begin(s + 1);
        for (std::size_t idx = shard_begin(s); idx < end; ++idx) {
          const std::size_t v = active[idx];
          const Port deg = plan.degree(v);
          const std::size_t off = plan.offset(v);
          for (Port i = 1; i <= deg; ++i) {
            const std::size_t q = off + i - 1;
            const Message& m = outbox[q];
            inbox[plan.partner_flat(q)] = m;
            if (!m.is_silence()) {
              ++round_messages;
              if (options.collect_messages) {
                sc.log.push_back({round,
                                  {static_cast<port::NodeId>(v), i},
                                  plan.partner_ref(q),
                                  m});
              }
            }
          }
        }
        sc.round_messages = round_messages;
      } catch (...) {
        sc.error = std::current_exception();
      }
    });
    rethrow_first(scratch, shards);

    // Receive: may flip nodes to halted; the flips are recorded per shard
    // and applied after the barrier so the worklist is never mutated
    // concurrently.
    policy.for_each_shard(shards, [&](std::size_t s) {
      ShardScratch& sc = scratch[s];
      try {
        const std::size_t end = shard_begin(s + 1);
        for (std::size_t idx = shard_begin(s); idx < end; ++idx) {
          const std::size_t v = active[idx];
          const std::span<const Message> in(&inbox[plan.offset(v)],
                                            plan.degree(v));
          programs[v]->receive(round, in);
          if (programs[v]->halted()) sc.newly_halted.push_back(v);
        }
      } catch (...) {
        sc.error = std::current_exception();
      }
    });
    rethrow_first(scratch, shards);

    // Merge, strictly in shard order.
    std::uint64_t round_messages = 0;
    bool any_halted = false;
    for (std::size_t s = 0; s < shards; ++s) {
      const ShardScratch& sc = scratch[s];
      stats.messages_sent += sc.messages_sent;
      stats.ports_served += sc.ports_served;
      round_messages += sc.round_messages;
      if (options.collect_messages) {
        result.message_log.insert(result.message_log.end(), sc.log.begin(),
                                  sc.log.end());
      }
      for (const std::size_t v : sc.newly_halted) {
        any_halted = true;
        halted[v] = 1;
        // A halted node sends silence forever: silence its outbox slots
        // (never written again) and the inbox slots they feed (never
        // routed again — their sender left the worklist).
        const Port deg = plan.degree(v);
        const std::size_t off = plan.offset(v);
        for (Port i = 1; i <= deg; ++i) {
          const std::size_t q = off + i - 1;
          outbox[q] = kSilence;
          inbox[plan.partner_flat(q)] = kSilence;
        }
      }
    }
    if (any_halted) {
      std::erase_if(active, [&](std::size_t v) { return halted[v] != 0; });
    }

    if (options.collect_trace) {
      result.trace.push_back({round, round_messages, n - active.size()});
    }
  }

  stats.rounds = round;
  result.outputs.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    auto ports = programs[v]->output();
    std::sort(ports.begin(), ports.end());
    const Port deg = plan.degree(v);
    for (const Port p : ports) {
      if (p < 1 || p > deg) {
        throw ExecutionError(
            "run_synchronous: node output contains an invalid port number");
      }
    }
    if (std::adjacent_find(ports.begin(), ports.end()) != ports.end()) {
      throw ExecutionError(
          "run_synchronous: node output contains a duplicate port");
    }
    result.outputs[v] = std::move(ports);
  }
  return result;
}

}  // namespace eds::runtime
