#include "runtime/engine.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace eds::runtime {

ExecutionPlan::ExecutionPlan(const port::PortGraph& g) {
  const std::size_t n = g.num_nodes();
  degrees_.resize(n);
  offsets_.resize(n);
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    degrees_[v] = g.degree(static_cast<port::NodeId>(v));
    offsets_[v] = total;
    total += degrees_[v];
  }
  partner_flat_.resize(total);
  partner_ref_.resize(total);
  for (std::size_t v = 0; v < n; ++v) {
    for (Port i = 1; i <= degrees_[v]; ++i) {
      const auto q = offsets_[v] + i - 1;
      const auto dst = g.partner(static_cast<port::NodeId>(v), i);
      partner_ref_[q] = dst;
      partner_flat_[q] = offsets_[dst.node] + dst.port - 1;
    }
  }
}

std::unique_ptr<ExecutionPolicy> make_policy(const ExecOptions& exec) {
  if (exec.threads == 1) return std::make_unique<SequentialPolicy>();
  return std::make_unique<ParallelPolicy>(exec.threads);
}

namespace {

/// Per-shard accumulators; merged strictly in shard order so parallel runs
/// reproduce the sequential order bit for bit.  Cache-line aligned so
/// neighboring shards' counters never share a line (the stages additionally
/// accumulate in stack locals and store once per stage).
struct alignas(64) ShardScratch {
  std::uint64_t messages_sent = 0;
  std::uint64_t ports_served = 0;
  std::uint64_t round_messages = 0;
  std::vector<DeliveredMessage> log;
  std::vector<std::size_t> newly_halted;
  std::exception_ptr error;

  void reset() noexcept {
    messages_sent = 0;
    ports_served = 0;
    round_messages = 0;
    log.clear();
    newly_halted.clear();
    error = nullptr;
  }
};

void rethrow_first(const std::vector<ShardScratch>& scratch,
                   std::size_t shards) {
  for (std::size_t s = 0; s < shards; ++s) {
    if (scratch[s].error) std::rethrow_exception(scratch[s].error);
  }
}

}  // namespace

RunResult run_plan(const ExecutionPlan& plan,
                   std::vector<std::unique_ptr<NodeProgram>>& programs,
                   const RunOptions& options, const std::string& name,
                   ExecutionPolicy& policy) {
  if (options.max_rounds == 0) {
    throw InvalidArgument(
        "run_synchronous: RunOptions::max_rounds must be positive");
  }
  const std::size_t n = plan.num_nodes();
  EDS_ENSURE(programs.size() == n, "run_plan: one program per node required");

  std::vector<Message> outbox(plan.total_ports(), kSilence);
  std::vector<Message> inbox(plan.total_ports(), kSilence);

  // The worklist: indices of non-halted nodes, always sorted ascending (it
  // only ever loses elements), so contiguous shard ranges visit nodes in
  // exactly the sequential order.
  std::vector<char> halted(n, 0);
  std::vector<std::size_t> active;
  active.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    programs[v]->start(plan.degree(v));
    if (programs[v]->halted()) {
      // Degree-0 nodes (or trivial algorithms) may halt immediately.
      halted[v] = 1;
    } else {
      active.push_back(v);
    }
  }

  RunResult result;
  result.messages_collected = options.collect_messages;
  RunStats& stats = result.stats;

  const unsigned lanes = std::max(1u, policy.lanes());
  std::vector<ShardScratch> scratch(lanes);

  Round round = 0;
  while (!active.empty()) {
    ++round;
    if (round > options.max_rounds) {
      std::ostringstream os;
      os << "run_synchronous: algorithm '" << name << "' did not halt within "
         << options.max_rounds << " rounds (" << active.size() << " of " << n
         << " nodes still running)";
      throw ExecutionError(os.str());
    }

    const std::size_t shards =
        std::min<std::size_t>(lanes, active.size());
    const auto shard_begin = [&](std::size_t s) {
      return active.size() * s / shards;
    };
    for (std::size_t s = 0; s < shards; ++s) scratch[s].reset();

    // Send: every active node's ports default to silence each round — a
    // program sends only by writing this round (stale messages must not
    // "ghost" into later ones).  Halted nodes' slots were silenced when
    // they halted and are never written again.
    policy.for_each_shard(shards, [&](std::size_t s) {
      ShardScratch& sc = scratch[s];
      try {
        std::uint64_t ports_served = 0;
        std::uint64_t messages_sent = 0;
        const std::size_t end = shard_begin(s + 1);
        for (std::size_t idx = shard_begin(s); idx < end; ++idx) {
          const std::size_t v = active[idx];
          const Port deg = plan.degree(v);
          const std::span<Message> out(&outbox[plan.offset(v)], deg);
          std::fill(out.begin(), out.end(), kSilence);
          programs[v]->send(round, out);
          ports_served += deg;
          for (const auto& m : out) {
            if (!m.is_silence()) ++messages_sent;
          }
        }
        sc.ports_served = ports_served;
        sc.messages_sent = messages_sent;
      } catch (...) {
        sc.error = std::current_exception();
      }
    });
    rethrow_first(scratch, shards);

    // Route: the message sent on port (v, i) is received from port (u, j)
    // where p(v, i) = (u, j); fixed points deliver to the sender itself.
    // Race-free under sharding: each inbox slot has exactly one partner
    // port (p is an involution), hence exactly one writer.  Inbox slots
    // whose partner is halted were silenced at halt time and stay silent.
    policy.for_each_shard(shards, [&](std::size_t s) {
      ShardScratch& sc = scratch[s];
      try {
        std::uint64_t round_messages = 0;
        const std::size_t end = shard_begin(s + 1);
        for (std::size_t idx = shard_begin(s); idx < end; ++idx) {
          const std::size_t v = active[idx];
          const Port deg = plan.degree(v);
          const std::size_t off = plan.offset(v);
          for (Port i = 1; i <= deg; ++i) {
            const std::size_t q = off + i - 1;
            const Message& m = outbox[q];
            inbox[plan.partner_flat(q)] = m;
            if (!m.is_silence()) {
              ++round_messages;
              if (options.collect_messages) {
                sc.log.push_back({round,
                                  {static_cast<port::NodeId>(v), i},
                                  plan.partner_ref(q),
                                  m});
              }
            }
          }
        }
        sc.round_messages = round_messages;
      } catch (...) {
        sc.error = std::current_exception();
      }
    });
    rethrow_first(scratch, shards);

    // Receive: may flip nodes to halted; the flips are recorded per shard
    // and applied after the barrier so the worklist is never mutated
    // concurrently.
    policy.for_each_shard(shards, [&](std::size_t s) {
      ShardScratch& sc = scratch[s];
      try {
        const std::size_t end = shard_begin(s + 1);
        for (std::size_t idx = shard_begin(s); idx < end; ++idx) {
          const std::size_t v = active[idx];
          const std::span<const Message> in(&inbox[plan.offset(v)],
                                            plan.degree(v));
          programs[v]->receive(round, in);
          if (programs[v]->halted()) sc.newly_halted.push_back(v);
        }
      } catch (...) {
        sc.error = std::current_exception();
      }
    });
    rethrow_first(scratch, shards);

    // Merge, strictly in shard order.
    std::uint64_t round_messages = 0;
    bool any_halted = false;
    for (std::size_t s = 0; s < shards; ++s) {
      const ShardScratch& sc = scratch[s];
      stats.messages_sent += sc.messages_sent;
      stats.ports_served += sc.ports_served;
      round_messages += sc.round_messages;
      if (options.collect_messages) {
        result.message_log.insert(result.message_log.end(), sc.log.begin(),
                                  sc.log.end());
      }
      for (const std::size_t v : sc.newly_halted) {
        any_halted = true;
        halted[v] = 1;
        // A halted node sends silence forever: silence its outbox slots
        // (never written again) and the inbox slots they feed (never
        // routed again — their sender left the worklist).
        const Port deg = plan.degree(v);
        const std::size_t off = plan.offset(v);
        for (Port i = 1; i <= deg; ++i) {
          const std::size_t q = off + i - 1;
          outbox[q] = kSilence;
          inbox[plan.partner_flat(q)] = kSilence;
        }
      }
    }
    if (any_halted) {
      std::erase_if(active, [&](std::size_t v) { return halted[v] != 0; });
    }

    if (options.collect_trace) {
      result.trace.push_back({round, round_messages, n - active.size()});
    }
  }

  stats.rounds = round;
  result.outputs.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    auto ports = programs[v]->output();
    std::sort(ports.begin(), ports.end());
    const Port deg = plan.degree(v);
    for (const Port p : ports) {
      if (p < 1 || p > deg) {
        throw ExecutionError(
            "run_synchronous: node output contains an invalid port number");
      }
    }
    if (std::adjacent_find(ports.begin(), ports.end()) != ports.end()) {
      throw ExecutionError(
          "run_synchronous: node output contains a duplicate port");
    }
    result.outputs[v] = std::move(ports);
  }
  return result;
}

}  // namespace eds::runtime
