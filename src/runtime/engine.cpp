#include "runtime/engine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "util/error.hpp"

namespace eds::runtime {

ExecutionPlan::ExecutionPlan(const port::PortGraph& g)
    : degrees_(g.degree_sequence()), partner_ref_(g.partner_table()) {
  constructed_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n = degrees_.size();
  offsets_.resize(n);
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    offsets_[v] = total;
    total += degrees_[v];
  }
  partner_flat_.resize(total);
  for (std::size_t q = 0; q < total; ++q) {
    const auto dst = partner_ref_[q];
    partner_flat_[q] = offsets_[dst.node] + dst.port - 1;
  }
}

bool ExecutionPlan::matches(const port::PortGraph& g) const {
  // Two contiguous scans: the flat degree sequence and the flat involution
  // table are exactly what the constructor consumed, in the same order.
  return degrees_ == g.degree_sequence() &&
         partner_ref_ == g.partner_table();
}

std::unique_ptr<ExecutionPolicy> make_policy(const ExecOptions& exec) {
  if (exec.threads == 1) return std::make_unique<SequentialPolicy>();
  return std::make_unique<ParallelPolicy>(exec.threads);
}

namespace {

/// Per-shard accumulators; merged strictly in shard order so parallel runs
/// reproduce the sequential order bit for bit.  Cache-line aligned so
/// neighboring shards' counters never share a line (the stages additionally
/// accumulate in stack locals and store once per stage).
struct alignas(64) ShardScratch {
  std::uint64_t messages_sent = 0;
  std::uint64_t ports_served = 0;
  std::vector<DeliveredMessage> log;
  std::vector<std::size_t> newly_halted;
  /// One node's outgoing messages, staged here so the program sees the
  /// contiguous span the NodeProgram API promises, then scattered straight
  /// into the partners' inbox slots.  Max-degree sized and reused across
  /// nodes, rounds and runs — the only send-side buffer left after the
  /// outbox's elimination.
  std::vector<Message> stage;
  std::exception_ptr error;

  void reset() noexcept {
    messages_sent = 0;
    ports_served = 0;
    log.clear();
    newly_halted.clear();
    error = nullptr;
  }
};

void rethrow_first(const std::vector<ShardScratch>& scratch,
                   std::size_t shards) {
  for (std::size_t s = 0; s < shards; ++s) {
    if (scratch[s].error) std::rethrow_exception(scratch[s].error);
  }
}

std::atomic<std::uint64_t> g_ws_reuses{0};
std::atomic<std::uint64_t> g_ws_growths{0};
std::atomic<std::uint64_t> g_ws_bytes{0};

std::atomic<bool> g_stage_profile{false};
std::atomic<std::uint64_t> g_exchange_ns{0};
std::atomic<std::uint64_t> g_receive_ns{0};
std::atomic<std::uint64_t> g_profiled_rounds{0};

/// The pooled message transport: every buffer the round loop writes lives
/// here and is *assigned* (size + contents reset, capacity retained) at the
/// start of each run instead of being reallocated.  One workspace exists
/// per thread, so sequential runs, BatchRunner jobs (one job per pool lane)
/// and BatchStream drivers each reuse their lane's arena run after run.
struct EngineWorkspace {
  std::vector<Message> inbox;
  std::vector<char> halted;
  std::vector<std::size_t> active;
  std::vector<ShardScratch> scratch;
  bool in_use = false;       // re-entrancy guard (see acquire below)
  std::size_t bytes = 0;     // last accounted footprint

  EngineWorkspace() = default;
  EngineWorkspace(const EngineWorkspace&) = delete;
  EngineWorkspace& operator=(const EngineWorkspace&) = delete;
  ~EngineWorkspace() {
    // The lane (thread) is going away: return its bytes to the gauge, or
    // short-lived pools (one BatchRunner per run_batch call) would leak
    // dead bytes into the "currently pooled" statistic.
    g_ws_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t footprint() const noexcept {
    std::size_t scratch_bytes = 0;
    for (const auto& sc : scratch) {
      scratch_bytes += sc.log.capacity() * sizeof(DeliveredMessage) +
                       sc.newly_halted.capacity() * sizeof(std::size_t) +
                       sc.stage.capacity() * sizeof(Message);
    }
    return inbox.capacity() * sizeof(Message) + halted.capacity() +
           active.capacity() * sizeof(std::size_t) +
           scratch.capacity() * sizeof(ShardScratch) + scratch_bytes;
  }

  /// Resets the buffers for a run over `n` nodes / `total_ports` ports with
  /// `lanes` shards, growing capacity only when this lane has never seen a
  /// graph this large.  The fused exchange keeps a single message buffer:
  /// one inbox assign is the whole per-run message-lane reset (the old
  /// pipeline cleared an equally sized outbox as well).
  void prepare(std::size_t n, std::size_t total_ports, unsigned lanes) {
    const bool grows = total_ports > inbox.capacity() ||
                       n > halted.capacity() || n > active.capacity() ||
                       lanes > scratch.size();
    inbox.assign(total_ports, kSilence);
    halted.assign(n, 0);
    active.clear();
    active.reserve(n);
    if (scratch.size() < lanes) scratch.resize(lanes);
    (grows ? g_ws_growths : g_ws_reuses).fetch_add(1,
                                                   std::memory_order_relaxed);
  }

  void account() noexcept {
    const std::size_t now = footprint();
    if (now >= bytes) {
      g_ws_bytes.fetch_add(now - bytes, std::memory_order_relaxed);
    } else {
      g_ws_bytes.fetch_sub(bytes - now, std::memory_order_relaxed);
    }
    bytes = now;
  }
};

/// The per-thread workspace, or null when the thread is already inside a
/// run (a NodeProgram that recursively calls run_synchronous must not
/// clobber its own caller's buffers — the recursive run falls back to a
/// private workspace).
EngineWorkspace* acquire_workspace() {
  thread_local EngineWorkspace workspace;
  if (workspace.in_use) return nullptr;
  workspace.in_use = true;
  return &workspace;
}

/// RAII over acquire_workspace(): releases the lane workspace (updating the
/// byte accounting) or owns the recursive-fallback workspace outright.
class WorkspaceLease {
 public:
  WorkspaceLease()
      : pooled_(acquire_workspace()),
        fallback_(pooled_ ? nullptr : std::make_unique<EngineWorkspace>()) {}
  ~WorkspaceLease() {
    if (pooled_) {
      pooled_->account();
      pooled_->in_use = false;
    }
  }
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  [[nodiscard]] EngineWorkspace& operator*() const noexcept {
    return pooled_ ? *pooled_ : *fallback_;
  }

 private:
  EngineWorkspace* pooled_;
  std::unique_ptr<EngineWorkspace> fallback_;
};

}  // namespace

EngineAllocStats engine_alloc_stats() noexcept {
  EngineAllocStats stats;
  stats.workspace_reuses = g_ws_reuses.load(std::memory_order_relaxed);
  stats.workspace_growths = g_ws_growths.load(std::memory_order_relaxed);
  stats.workspace_bytes = g_ws_bytes.load(std::memory_order_relaxed);
  return stats;
}

void engine_stage_profiling(bool enabled) noexcept {
  g_stage_profile.store(enabled, std::memory_order_relaxed);
}

EngineStageStats engine_stage_stats() noexcept {
  EngineStageStats stats;
  stats.exchange_ns = g_exchange_ns.load(std::memory_order_relaxed);
  stats.receive_ns = g_receive_ns.load(std::memory_order_relaxed);
  stats.profiled_rounds = g_profiled_rounds.load(std::memory_order_relaxed);
  return stats;
}

void engine_stage_stats_reset() noexcept {
  g_exchange_ns.store(0, std::memory_order_relaxed);
  g_receive_ns.store(0, std::memory_order_relaxed);
  g_profiled_rounds.store(0, std::memory_order_relaxed);
}

RunResult run_plan(const ExecutionPlan& plan,
                   std::vector<std::unique_ptr<NodeProgram>>& programs,
                   const RunOptions& options, const std::string& name,
                   ExecutionPolicy& policy) {
  if (options.max_rounds == 0) {
    throw InvalidArgument(
        "run_synchronous: RunOptions::max_rounds must be positive");
  }
  const std::size_t n = plan.num_nodes();
  EDS_ENSURE(programs.size() == n, "run_plan: one program per node required");

  const unsigned lanes = std::max(1u, policy.lanes());
  const WorkspaceLease lease;
  EngineWorkspace& ws = *lease;
  ws.prepare(n, plan.total_ports(), lanes);
  std::vector<Message>& inbox = ws.inbox;

  // The worklist: indices of non-halted nodes, always sorted ascending (it
  // only ever loses elements), so contiguous shard ranges visit nodes in
  // exactly the sequential order.
  std::vector<char>& halted = ws.halted;
  std::vector<std::size_t>& active = ws.active;
  for (std::size_t v = 0; v < n; ++v) {
    programs[v]->start(plan.degree(v));
    if (programs[v]->halted()) {
      // Degree-0 nodes (or trivial algorithms) may halt immediately.
      halted[v] = 1;
    } else {
      active.push_back(v);
    }
  }

  RunResult result;
  result.messages_collected = options.collect_messages;
  RunStats& stats = result.stats;

  std::vector<ShardScratch>& scratch = ws.scratch;

  // Stage profiling: the flag is sampled once per run, so a disabled run
  // takes no timestamps at all (two clock reads per round otherwise).
  const bool profile = g_stage_profile.load(std::memory_order_relaxed);
  using ProfileClock = std::chrono::steady_clock;
  std::uint64_t exchange_ns = 0;
  std::uint64_t receive_ns = 0;

  Round round = 0;
  while (!active.empty()) {
    ++round;
    if (round > options.max_rounds) {
      std::ostringstream os;
      os << "run_synchronous: algorithm '" << name << "' did not halt within "
         << options.max_rounds << " rounds (" << active.size() << " of " << n
         << " nodes still running)";
      throw ExecutionError(os.str());
    }

    const std::size_t shards =
        std::min<std::size_t>(lanes, active.size());
    const auto shard_begin = [&](std::size_t s) {
      return active.size() * s / shards;
    };
    for (std::size_t s = 0; s < shards; ++s) scratch[s].reset();

    ProfileClock::time_point stage_start;
    if (profile) stage_start = ProfileClock::now();

    // Exchange (fused send + delivery): every active node stages its
    // outgoing messages in the shard-local buffer — defaulted to silence
    // each round, so a program sends only by writing this round and stale
    // messages never "ghost" into later ones — then writes each one
    // straight into its partner's inbox slot: the message sent on port
    // (v, i) is received from port (u, j) where p(v, i) = (u, j); fixed
    // points deliver to the sender itself.  Race-free under sharding:
    // each inbox slot has exactly one partner port (p is an involution),
    // hence exactly one writer, and no shard *reads* the inbox until the
    // barrier below.  Inbox slots whose feeding partner halted were
    // silenced at halt time and are never written again.
    policy.for_each_shard(shards, [&](std::size_t s) {
      ShardScratch& sc = scratch[s];
      try {
        std::uint64_t ports_served = 0;
        std::uint64_t messages_sent = 0;
        std::vector<Message>& stage = sc.stage;
        const std::size_t end = shard_begin(s + 1);
        for (std::size_t idx = shard_begin(s); idx < end; ++idx) {
          const std::size_t v = active[idx];
          const Port deg = plan.degree(v);
          stage.assign(deg, kSilence);
          programs[v]->send(round, std::span<Message>(stage.data(), deg));
          ports_served += deg;
          const std::size_t off = plan.offset(v);
          for (Port i = 1; i <= deg; ++i) {
            const std::size_t q = off + i - 1;
            const Message& m = stage[i - 1];
            inbox[plan.partner_flat(q)] = m;
            if (!m.is_silence()) {
              ++messages_sent;
              if (options.collect_messages) {
                sc.log.push_back({round,
                                  {static_cast<port::NodeId>(v), i},
                                  plan.partner_ref(q),
                                  m});
              }
            }
          }
        }
        sc.ports_served = ports_served;
        sc.messages_sent = messages_sent;
      } catch (...) {
        sc.error = std::current_exception();
      }
    });
    rethrow_first(scratch, shards);

    if (profile) {
      const auto now = ProfileClock::now();
      exchange_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - stage_start)
              .count());
      stage_start = now;
    }

    // Receive: may flip nodes to halted; the flips are recorded per shard
    // and applied after the barrier so the worklist is never mutated
    // concurrently.
    policy.for_each_shard(shards, [&](std::size_t s) {
      ShardScratch& sc = scratch[s];
      try {
        const std::size_t end = shard_begin(s + 1);
        for (std::size_t idx = shard_begin(s); idx < end; ++idx) {
          const std::size_t v = active[idx];
          const std::span<const Message> in(&inbox[plan.offset(v)],
                                            plan.degree(v));
          programs[v]->receive(round, in);
          if (programs[v]->halted()) sc.newly_halted.push_back(v);
        }
      } catch (...) {
        sc.error = std::current_exception();
      }
    });
    rethrow_first(scratch, shards);

    // Merge, strictly in shard order.  The exchange stage counts each
    // non-silence message exactly once, at the moment it is delivered, so
    // one per-shard counter feeds both the aggregate messages_sent and the
    // per-round trace (the old pipeline counted the same slots twice, once
    // in send and once in route).
    std::uint64_t round_messages = 0;
    bool any_halted = false;
    for (std::size_t s = 0; s < shards; ++s) {
      const ShardScratch& sc = scratch[s];
      stats.messages_sent += sc.messages_sent;
      stats.ports_served += sc.ports_served;
      round_messages += sc.messages_sent;
      if (options.collect_messages) {
        result.message_log.insert(result.message_log.end(), sc.log.begin(),
                                  sc.log.end());
      }
      for (const std::size_t v : sc.newly_halted) {
        any_halted = true;
        halted[v] = 1;
        // A halted node sends silence forever.  With no outbox to clear,
        // the whole bookkeeping is one write per port: silence the inbox
        // slots its ports feed — the node left the worklist, so the fused
        // exchange never writes them again and its partners keep reading
        // silence for the rest of the run.
        const Port deg = plan.degree(v);
        const std::size_t off = plan.offset(v);
        for (Port i = 1; i <= deg; ++i) {
          inbox[plan.partner_flat(off + i - 1)] = kSilence;
        }
      }
    }
    if (any_halted) {
      std::erase_if(active, [&](std::size_t v) { return halted[v] != 0; });
    }

    if (options.collect_trace) {
      result.trace.push_back({round, round_messages, n - active.size()});
    }

    if (profile) {
      receive_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              ProfileClock::now() - stage_start)
              .count());
    }
  }

  if (profile) {
    g_exchange_ns.fetch_add(exchange_ns, std::memory_order_relaxed);
    g_receive_ns.fetch_add(receive_ns, std::memory_order_relaxed);
    g_profiled_rounds.fetch_add(round, std::memory_order_relaxed);
  }

  stats.rounds = round;
  result.outputs.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    auto ports = programs[v]->output();
    std::sort(ports.begin(), ports.end());
    const Port deg = plan.degree(v);
    for (const Port p : ports) {
      if (p < 1 || p > deg) {
        throw ExecutionError(
            "run_synchronous: node output contains an invalid port number");
      }
    }
    if (std::adjacent_find(ports.begin(), ports.end()) != ports.end()) {
      throw ExecutionError(
          "run_synchronous: node output contains a duplicate port");
    }
    result.outputs[v] = std::move(ports);
  }
  return result;
}

}  // namespace eds::runtime
