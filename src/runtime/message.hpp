// Messages exchanged by node programs.
//
// In the synchronous port-numbering model a node sends exactly one message
// per port per round.  All algorithms in this library need only a small tag
// plus up to three integer arguments, so Message is a fixed-size value type;
// tag 0 ("silence") is the conventional empty message and is excluded from
// traffic statistics.
#pragma once

#include <array>
#include <cstdint>
#include <type_traits>

namespace eds::runtime {

struct Message {
  std::int32_t tag = 0;
  std::array<std::int32_t, 3> arg{0, 0, 0};

  [[nodiscard]] bool operator==(const Message&) const = default;
  [[nodiscard]] bool is_silence() const noexcept { return tag == 0; }
};

// The engine's fused exchange stage scatters Messages from concurrent
// shards into distinct slots of one shared inbox array (one writer per
// slot, by the port involution).  That is race-free for a trivially
// copyable value type whose assignment touches only its own bytes — keep
// Message that way, or the single-buffer transport loses its safety
// argument.
static_assert(std::is_trivially_copyable_v<Message>,
              "Message must stay trivially copyable: the engine writes "
              "Messages into shared inbox slots from concurrent shards");

/// The empty message.
inline constexpr Message kSilence{};

/// Builds a message from a tag and up to three arguments.
[[nodiscard]] constexpr Message msg(std::int32_t tag, std::int32_t a0 = 0,
                                    std::int32_t a1 = 0,
                                    std::int32_t a2 = 0) noexcept {
  return Message{tag, {a0, a1, a2}};
}

}  // namespace eds::runtime
