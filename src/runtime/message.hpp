// Messages exchanged by node programs.
//
// In the synchronous port-numbering model a node sends exactly one message
// per port per round.  All algorithms in this library need only a small tag
// plus up to three integer arguments, so Message is a fixed-size value type;
// tag 0 ("silence") is the conventional empty message and is excluded from
// traffic statistics.
#pragma once

#include <array>
#include <cstdint>

namespace eds::runtime {

struct Message {
  std::int32_t tag = 0;
  std::array<std::int32_t, 3> arg{0, 0, 0};

  [[nodiscard]] bool operator==(const Message&) const = default;
  [[nodiscard]] bool is_silence() const noexcept { return tag == 0; }
};

/// The empty message.
inline constexpr Message kSilence{};

/// Builds a message from a tag and up to three arguments.
[[nodiscard]] constexpr Message msg(std::int32_t tag, std::int32_t a0 = 0,
                                    std::int32_t a1 = 0,
                                    std::int32_t a2 = 0) noexcept {
  return Message{tag, {a0, a1, a2}};
}

}  // namespace eds::runtime
