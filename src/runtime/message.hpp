// Messages exchanged by node programs.
//
// In the synchronous port-numbering model a node sends exactly one message
// per port per round.  All algorithms in this library need only a small tag
// plus up to three integer arguments, so Message is a fixed-size value type;
// tag 0 ("silence") is the conventional empty message and is excluded from
// traffic statistics.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace eds::runtime {

struct Message {
  std::int32_t tag = 0;
  std::array<std::int32_t, 3> arg{0, 0, 0};

  [[nodiscard]] bool operator==(const Message&) const = default;
  [[nodiscard]] bool is_silence() const noexcept { return tag == 0; }
};

// The engine moves Messages through pooled flat buffers written by
// concurrent shards and read back across the round barrier, and the async
// runtime round-trips them through struct-of-arrays lanes field by field
// (MessageLanes below).  Both are value-exact only for a trivially
// copyable aggregate whose state is exactly its four int32 fields — keep
// Message that way, or the lane round trip stops being faithful and the
// engine's tag shadow (tag lane mirroring slots[q].tag) stops covering the
// whole message identity for silence detection.
static_assert(std::is_trivially_copyable_v<Message>,
              "Message must stay trivially copyable: the runtimes store it "
              "in shared flat buffers written from concurrent shards");
static_assert(sizeof(Message) == 4 * sizeof(std::int32_t),
              "Message must stay exactly {tag, arg[3]}: MessageLanes "
              "persists those four fields and nothing else");

/// The empty message.
inline constexpr Message kSilence{};

/// Builds a message from a tag and up to three arguments.
[[nodiscard]] constexpr Message msg(std::int32_t tag, std::int32_t a0 = 0,
                                    std::int32_t a1 = 0,
                                    std::int32_t a2 = 0) noexcept {
  return Message{tag, {a0, a1, a2}};
}

/// Struct-of-arrays message storage: the four Message fields held as
/// parallel flat std::int32_t lanes, so tag-only sweeps (silence scans,
/// traffic counts — see count_nonsilence) read a contiguous int32 lane
/// branch-free instead of striding over 16-byte structs.  The async
/// runtime's per-round assembly buffers use this layout (slots fill in
/// arrival order, one field set per store), and BM_SilenceScan measures
/// the sweep in isolation.
///
/// The synchronous engine deliberately does NOT use four-lane storage for
/// its port-indexed transport: routing messages through the port
/// involution is a random-access permutation, and in a four-lane layout
/// every permuted access touches four cache lines instead of one — ~4x
/// slower measured on dense graphs.  It keeps AoS slots plus a shadow copy
/// of this tag lane, getting the branch-free sweeps without the scattered
/// four-line traffic (see ARCHITECTURE.md).
///
/// Programs keep the span<Message> API; lane users gather slots back into
/// Message form before receive().
class MessageLanes {
 public:
  /// Resets to `count` slots, all silence (size + contents reset, capacity
  /// retained — the pooled-workspace discipline).
  void assign_silence(std::size_t count) {
    tag_.assign(count, 0);
    arg0_.assign(count, 0);
    arg1_.assign(count, 0);
    arg2_.assign(count, 0);
  }

  [[nodiscard]] std::size_t size() const noexcept { return tag_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return tag_.capacity();
  }

  /// Writes message `m` into slot q (unchecked): four lane stores.
  void store(std::size_t q, const Message& m) noexcept {
    tag_[q] = m.tag;
    arg0_[q] = m.arg[0];
    arg1_[q] = m.arg[1];
    arg2_[q] = m.arg[2];
  }

  /// Reads slot q back as a Message (unchecked).
  [[nodiscard]] Message load(std::size_t q) const noexcept {
    return Message{tag_[q], {arg0_[q], arg1_[q], arg2_[q]}};
  }

  /// Silences slot q — all four lanes zeroed, so a later load() is
  /// bit-identical to kSilence (programs may inspect a silent message's
  /// arguments).
  void silence(std::size_t q) noexcept {
    tag_[q] = 0;
    arg0_[q] = 0;
    arg1_[q] = 0;
    arg2_[q] = 0;
  }

  /// The contiguous tag lane, for count_nonsilence() sweeps.
  [[nodiscard]] const std::int32_t* tags() const noexcept {
    return tag_.data();
  }

  /// Transposes slots [offset, offset + count) back into AoS form at `dst`
  /// (unchecked).  Four contiguous streams in, one contiguous stream out —
  /// the autovectorization-friendly interleave the receive stage runs per
  /// node.
  void gather(std::size_t offset, std::size_t count,
              Message* dst) const noexcept {
    const std::int32_t* const t = tag_.data() + offset;
    const std::int32_t* const a0 = arg0_.data() + offset;
    const std::int32_t* const a1 = arg1_.data() + offset;
    const std::int32_t* const a2 = arg2_.data() + offset;
    for (std::size_t i = 0; i < count; ++i) {
      dst[i] = Message{t[i], {a0[i], a1[i], a2[i]}};
    }
  }

  /// Heap footprint of the four lanes, for workspace byte accounting.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return (tag_.capacity() + arg0_.capacity() + arg1_.capacity() +
            arg2_.capacity()) *
           sizeof(std::int32_t);
  }

 private:
  std::vector<std::int32_t> tag_;
  std::vector<std::int32_t> arg0_;
  std::vector<std::int32_t> arg1_;
  std::vector<std::int32_t> arg2_;
};

/// Number of non-silence slots in a tag lane: a branch-free sweep the
/// compiler turns into SIMD compares under -O2 (and wider under
/// EDS_NATIVE).  The engine's per-round traffic count is one call on the
/// whole inbox tag lane — every slot is either freshly written this round
/// or was silenced when its feeding node halted, so the count equals the
/// round's non-silence sends exactly.
[[nodiscard]] inline std::uint64_t count_nonsilence(
    const std::int32_t* tags, std::size_t count) noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < count; ++i) {
    total += static_cast<std::uint64_t>(tags[i] != 0);
  }
  return total;
}

}  // namespace eds::runtime
