// Timing and fault configuration for the asynchronous execution model.
//
// The synchronous engine (runtime/engine.hpp) executes Section 2.2 of the
// paper verbatim: one global round, every message delivered instantly.
// The asynchronous engine (runtime/async.hpp) replaces that single point in
// scenario space with an adversarial scheduler, and this header holds its
// *configuration*: how long each directed port-to-port link takes
// (DelayModel), which transmissions the adversary loses, duplicates or
// crashes (FaultPlan), and the umbrella AsyncOptions that selects the
// execution mode.  Everything here is plain data with value semantics and
// no dependency on the engine, so RunOptions can embed it without pulling
// the event loop into every translation unit.
//
// Determinism contract: every stochastic choice (per-edge delays, loss and
// duplication draws, crash schedules) is a pure function of
// AsyncOptions::seed and structural coordinates (flat port index, round
// number) — never of wall-clock time, thread interleaving or event-pop
// order.  Two runs with equal options are therefore byte-identical,
// including their fault event logs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "port/port_graph.hpp"
#include "runtime/program.hpp"

namespace eds::runtime {

/// Families of per-link delay distributions.  Delays are virtual-clock
/// ticks, always at least 1 (a zero-latency link would collapse back to the
/// synchronous model).
enum class DelayKind : std::uint8_t {
  kFixed,      ///< every link takes exactly `a` ticks
  kUniform,    ///< uniform integer in [a, b] per link
  kGeometric,  ///< 1 + Geometric(1/a) per link, truncated at `b`
};

/// A per-link delay distribution.  The asynchronous engine samples one
/// delay per *directed* port (the per-edge delay matrix) at run start, so a
/// link's latency is stable within a run but the two directions of an edge
/// are independent.
struct DelayModel {
  DelayKind kind = DelayKind::kFixed;
  std::uint64_t a = 1;  ///< fixed value / lower bound / mean, by kind
  std::uint64_t b = 1;  ///< upper bound (kUniform, kGeometric truncation)

  /// Largest delay this model can produce — the engine derives round
  /// timeouts from it.
  [[nodiscard]] std::uint64_t max_delay() const noexcept {
    return kind == DelayKind::kFixed ? a : b;
  }

  [[nodiscard]] bool operator==(const DelayModel&) const = default;
};

/// Parses a delay specification: "fixed:T", "uniform:LO:HI" or
/// "geometric:MEAN[:CAP]" (CAP defaults to 8×MEAN).  Throws InvalidArgument
/// on malformed specs, zero delays or inverted bounds.
[[nodiscard]] DelayModel parse_delay_model(const std::string& spec);

/// Renders a DelayModel back into its canonical specification string.
[[nodiscard]] std::string format_delay_model(const DelayModel& model);

/// A scheduled node crash: at virtual time `time` the node stops — it never
/// fires another round, and anything delivered to it afterwards is dropped.
struct CrashEvent {
  port::NodeId node = 0;
  std::uint64_t time = 0;

  [[nodiscard]] bool operator==(const CrashEvent&) const = default;
};

/// The adversary's fault schedule.  Loss and duplication are per-
/// transmission Bernoulli draws (deterministic in the run seed, see the
/// header comment); crashes are an explicit list so tests can script exact
/// scenarios and the CLI can derive one from a seed.
struct FaultPlan {
  double loss = 0.0;       ///< per-transmission loss probability in [0, 1]
  double duplicate = 0.0;  ///< per-transmission duplication probability
  std::vector<CrashEvent> crashes;

  /// True when the plan injects no faults at all — the only plans the
  /// α-synchronizer accepts (see AsyncOptions::synchronizer).
  [[nodiscard]] bool empty() const noexcept {
    return loss == 0.0 && duplicate == 0.0 && crashes.empty();
  }

  [[nodiscard]] bool operator==(const FaultPlan&) const = default;
};

/// Builds a seeded fault plan: the given loss/duplication rates plus
/// `crash_count` distinct nodes (clamped to `num_nodes`) crashing at
/// uniform times in [1, horizon].  Deterministic in `seed`.
[[nodiscard]] FaultPlan make_fault_plan(double loss, double duplicate,
                                        std::size_t crash_count,
                                        std::size_t num_nodes,
                                        std::uint64_t horizon,
                                        std::uint64_t seed);

/// Kinds of injected-fault events, as recorded in the fault log.
enum class FaultKind : std::uint8_t {
  kLoss,       ///< a transmission was dropped in flight
  kDuplicate,  ///< a transmission was delivered twice
  kCrash,      ///< a node stopped executing
};

/// One injected fault, recorded in AsyncResult::fault_log in deterministic
/// order.  For kLoss/kDuplicate, (node, port) identify the *sender* side of
/// the affected transmission and `round` its algorithm round; for kCrash,
/// `node` is the crashed node and port/round are zero.
struct FaultEvent {
  std::uint64_t time = 0;  ///< virtual time the fault took effect
  FaultKind kind = FaultKind::kLoss;
  port::NodeId node = 0;
  port::Port port = 0;
  Round round = 0;

  [[nodiscard]] bool operator==(const FaultEvent&) const = default;
};

/// Renders a fault log as one line per event ("t=12 loss (3,2) r4").
[[nodiscard]] std::string format_fault_log(
    const std::vector<FaultEvent>& log);

/// One forced entry of the per-link delay matrix: the directed link behind
/// flat port index `port` takes exactly `ticks` instead of its sampled
/// delay.  The adversarial scheduler (runtime/sched.hpp) perturbs runs by
/// overriding selected entries; the engine validates `port` against the
/// plan and rejects zero ticks (a zero-latency link would collapse the
/// model back to synchrony).
struct DelayOverride {
  std::uint32_t port = 0;   ///< flat directed-port index into the matrix
  std::uint64_t ticks = 1;  ///< forced latency, >= 1

  [[nodiscard]] bool operator==(const DelayOverride&) const = default;
};

/// An adversarial schedule: a deterministic perturbation of one async run.
/// Plain data with value semantics, embedded in AsyncOptions — results stay
/// a pure function of (options, schedule), which is what makes a serialized
/// schedule replay bit-identically (see ReplayFile).
///
/// Two perturbation lanes, composable:
///
///  * PCT-style priorities.  When `prio_seed` is non-zero every node gets a
///    random priority (a pure hash of prio_seed and the node id) that
///    breaks same-virtual-time ties in the timeline ahead of the structural
///    (node, port, seq) order.  `change_points` are event-pop counts: when
///    the k-th change point is crossed, the node whose event crossed it is
///    *demoted* — it drops below every initial priority and, crucially, all
///    of its subsequent transmissions take `demote_ticks` extra ticks, so a
///    demoted node's messages can slip past its partners' round deadlines.
///    This is the classic PCT scheduler mapped onto a virtual-time event
///    queue: d change points explore depth-d ordering bugs.
///
///  * Delay overrides.  `delay_overrides` force individual entries of the
///    per-link delay matrix after sampling (see DelayOverride).
struct Schedule {
  std::uint64_t prio_seed = 0;  ///< 0 = structural tie-break (no priorities)
  std::uint64_t demote_ticks = 0;  ///< extra send latency once demoted
  std::vector<std::uint64_t> change_points;  ///< event counts (PCT demotions)
  std::vector<DelayOverride> delay_overrides;

  /// True when the schedule perturbs nothing — the engine then behaves
  /// byte-identically to a build without schedules at all.
  [[nodiscard]] bool empty() const noexcept {
    return prio_seed == 0 && demote_ticks == 0 && change_points.empty() &&
           delay_overrides.empty();
  }

  [[nodiscard]] bool operator==(const Schedule&) const = default;
};

/// Configuration of one asynchronous run.  Embedded in ExecOptions::async;
/// when present there, run_synchronous routes the run through the
/// event-driven engine instead of the round loop.
struct AsyncOptions {
  /// With the α-synchronizer (default), every payload is acknowledged and a
  /// node enters round r+1 only after its round-r sends are acknowledged
  /// and its round-r inputs are complete — which makes the execution
  /// equivalent to the synchronous one for *any* delay matrix, and is the
  /// differential oracle this subsystem exists for.  Requires a fault-free
  /// FaultPlan (loss or crashes would deadlock the wait; the engine rejects
  /// the combination up front).  Without the synchronizer, nodes advance on
  /// a round timeout instead, missing inputs become silence, and faults are
  /// allowed — the degradation-measurement mode.
  bool synchronizer = true;

  /// Per-link delay distribution (the delay matrix is sampled from it once
  /// per run).
  DelayModel delay;

  /// Seed for the run's delay matrix, fault draws and crash times.
  std::uint64_t seed = 1;

  /// Injected faults; must be empty() while `synchronizer` is true.
  FaultPlan faults;

  /// Ticks a node waits for a round's inputs before declaring the missing
  /// ones silent (non-synchronizer mode only).  0 = auto: four round trips
  /// of the delay model's maximum (4 · 2 · max_delay), which no fault-free
  /// in-flight message can exceed.
  std::uint64_t round_timeout = 0;

  /// Adversarial perturbation of this run (empty = none).  Change points
  /// require a non-zero prio_seed and every delay override must name an
  /// in-range flat port with ticks >= 1; the engine rejects violations up
  /// front with InvalidArgument.
  Schedule schedule;

  [[nodiscard]] bool operator==(const AsyncOptions&) const = default;
};

/// A versioned, self-contained replay file: everything needed to re-execute
/// one adversarial async run bit-identically — the instance (embedded in
/// the portgraph text format), the algorithm, the full AsyncOptions
/// including the Schedule, and the worst metrics the search recorded so a
/// replay can verify the run still exhibits them.  The codec is line-based
/// ("edsched 1" header, `key value...` records, the graph after a `graph`
/// marker); decode_replay rejects unknown schema versions and malformed
/// records with InvalidArgument.
struct ReplayFile {
  std::string strategy = "random";  ///< adversary strategy token (bookkeeping)
  std::string algorithm;            ///< algo::algorithm_token vocabulary
  std::uint32_t param = 0;          ///< algorithm parameter (resolved)
  AsyncOptions options;             ///< full run configuration + schedule
  /// Recorded worst metrics, (name, value) in recording order — e.g.
  /// ("selected", 7).  A replay re-measures and compares exactly.
  std::vector<std::pair<std::string, std::uint64_t>> metrics;
  std::string graph_text;           ///< port::write_port_graph serialization

  [[nodiscard]] bool operator==(const ReplayFile&) const = default;
};

/// The replay-file format version encode_replay writes and decode_replay
/// accepts.  Bumped on any incompatible change; a mismatch is a clean
/// InvalidArgument, never a misparse.
inline constexpr std::uint32_t kReplaySchemaVersion = 1;

/// Serializes `replay` into the versioned text format.
[[nodiscard]] std::string encode_replay(const ReplayFile& replay);

/// Parses a replay file; throws InvalidArgument on a missing/mismatched
/// schema header, unknown records, malformed numbers or a missing graph
/// section.  Round-trips encode_replay exactly (including the loss and
/// duplication probabilities, written with max_digits10 precision).
[[nodiscard]] ReplayFile decode_replay(const std::string& text);

}  // namespace eds::runtime
