// Executor: the pluggable backend that actually runs a batch of jobs.
//
// BatchRunner (runtime/batch.hpp) is the *surface* of the batch layer — it
// owns the three consumption styles (run / run_streaming / stream) and the
// determinism contract.  An Executor is the *backend* behind that surface:
// it takes a job list and delivers RunResults through a callback, in strict
// job order, regardless of how or where the jobs physically execute.
//
//  * InProcessExecutor (this header) fans jobs across a ThreadPool inside
//    the current process — the engine's original behaviour, now extracted
//    so other backends can slot in behind the same contract.
//  * ProcessShardExecutor (runtime/shard.hpp) forks worker subprocesses and
//    streams jobs and results over NDJSON pipes.
//
// The backend contract, shared by every implementation:
//
//  1. Results are delivered through the callback in strictly increasing job
//     index order, each as soon as it *and every earlier job* has finished
//     (callbacks are serialized, never concurrent).
//  2. A failing job follows the prefix rule: results before the
//     lowest-indexed failure are delivered, nothing at or after it, the
//     whole batch drains, and the failure is rethrown afterwards.  An
//     exception thrown by the callback itself stops delivery the same way
//     and wins the rethrow.
//  3. The job list's graphs and factories are non-owning borrows; they must
//     stay alive for the duration of the call.
//
// Together with the engine's own guarantee (every ExecutionPolicy is
// bit-identical), this makes the choice of executor invisible in results —
// only wall-clock time and process topology change.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/runner.hpp"
#include "util/parallel.hpp"

namespace eds::runtime {

struct BatchJob;

/// Abstract batch backend.  Implementations are safe to share across
/// batches but not for concurrent run_streaming calls on one instance.
class Executor {
 public:
  /// Receives result `index` once jobs 0..index have all completed.  Calls
  /// are serialized and arrive in strictly increasing index order, but may
  /// come from any backend thread.
  using ResultCallback =
      std::function<void(std::size_t index, RunResult&& result)>;

  virtual ~Executor();

  /// Rejects (InvalidArgument) jobs this backend cannot run.  The base
  /// check — non-null graph and factory — applies to every backend;
  /// overrides add their own preconditions (e.g. the process-shard
  /// backend requires a JobSpec and no trace collection).  run_streaming
  /// calls this first, and BatchRunner::stream() calls it before the
  /// background driver starts, so misconfiguration always surfaces
  /// up front rather than from the first next().
  virtual void validate(const std::vector<BatchJob>& jobs) const;

  /// Executes every job, delivering results per the backend contract above.
  /// Throws InvalidArgument (via validate) before any job starts.
  virtual void run_streaming(const std::vector<BatchJob>& jobs,
                             const ResultCallback& on_result) const = 0;

  /// Barrier convenience on top of run_streaming: every job's result, in
  /// job order.
  [[nodiscard]] std::vector<RunResult> run(
      const std::vector<BatchJob>& jobs) const;
};

/// The original thread-pool fan-out: each job runs run_synchronous under
/// its own RunOptions on one of `threads` concurrent lanes (0 = one per
/// hardware thread).  The pool is created once and reused by every call.
class InProcessExecutor final : public Executor {
 public:
  explicit InProcessExecutor(unsigned threads = 0);
  ~InProcessExecutor() override;

  void run_streaming(const std::vector<BatchJob>& jobs,
                     const ResultCallback& on_result) const override;

 private:
  mutable ThreadPool pool_;
};

}  // namespace eds::runtime
