// WorkerPool: a long-lived fleet of `edsim worker` processes.
//
// PR 4's process backend forked a fresh fleet per batch and tore it down
// when the batch drained — correct, but every `sweep --shards N` paid
// fork/exec, allocator warmup and plan-cache compilation from zero.  The
// pool keeps the fleet alive between batches instead: ProcessShardExecutor
// checks workers out per batch over the schema-2 framed wire (shard.hpp)
// and returns them warm, so a worker's PlanCache and engine workspaces
// survive across batches and repeated structures become cache hits after
// the first batch that carried them.
//
// Lifecycle, per slot (one slot per shard):
//
//     empty --spawn (first batch that routes a job here)--> warm
//     warm  --batch checkout--> serving --summary--> warm
//     serving --EOF / protocol violation--> dead   (orphaned jobs retried
//                                                   on the next pass — or,
//                                                   with max_retries 0, the
//                                                   strict prefix rule; a
//                                                   respawn is counted in
//                                                   workers_respawned)
//     warm  --idle past the timeout / drain()--> empty  (clean EOF + reap,
//                                                   counted in
//                                                   workers_reaped)
//
// Health is checked at every checkout (waitpid WNOHANG): a worker that
// died while idle is respawned transparently before any job is written.
// Destruction drains every live worker with the PR-4 teardown guarantees —
// stdin closed first (EOF ends an idle worker), stdout closed (a worker
// somehow still writing dies on EPIPE instead of blocking), then a
// blocking reap: no zombies, no leaked descriptors, exception or not.
//
// Batches are serialized: run_batch holds the pool lock for the duration,
// so concurrent executors sharing one pool queue instead of interleaving
// frames on one pipe.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/batch.hpp"
#include "runtime/executor.hpp"
#include "runtime/reorder.hpp"
#include "runtime/shard.hpp"

namespace eds::runtime {

/// The warm fleet behind ProcessShardExecutor's pooled mode.  Usable on
/// its own (tests drive it directly); POSIX-only, like the executor.
class WorkerPool {
 public:
  /// Same shape as the executor's counters — the executor's stats() is
  /// the sum of its live pool and every pool it has already drained.
  using Stats = ProcessShardExecutor::Stats;

  /// Pool-level resilience knobs; the duration mirror of the
  /// ProcessShardExecutor::Options *_ms fields (see shard.hpp for the
  /// full semantics of each).
  struct Options {
    std::chrono::milliseconds idle_timeout{0};  ///< 0 = no idle reaping
    unsigned max_retries = 2;                   ///< 0 = strict prefix rule
    std::chrono::milliseconds retry_backoff{10};
    std::chrono::milliseconds job_timeout{0};   ///< 0 = no job deadline
    std::chrono::milliseconds batch_timeout{0}; ///< 0 = no batch deadline
    std::uint64_t breaker_deaths = 8;           ///< 0 = breaker off
    bool fallback_inprocess = false;
  };

  /// `worker_command` as in ProcessShardExecutor; `shards` must already be
  /// resolved (non-zero).
  WorkerPool(std::vector<std::string> worker_command, unsigned shards,
             Options options);
  /// Convenience: default resilience knobs with an explicit idle timeout.
  WorkerPool(std::vector<std::string> worker_command, unsigned shards,
             std::chrono::milliseconds idle_timeout);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs one batch with full Executor semantics: jobs routed by
  /// JobSpec::group, results delivered to `on_result` in strictly
  /// increasing index order.  Worker deaths trigger bounded retries of
  /// the orphaned jobs (Options::max_retries; 0 restores the strict
  /// prefix rule + residual failures).  Jobs must already be validated
  /// (ProcessShardExecutor::validate).  Expired idle workers are reaped
  /// and dead slots respawned before any job is written.
  void run_batch(const std::vector<BatchJob>& jobs,
                 const Executor::ResultCallback& on_result);

  /// Retires every worker idle past the timeout (no-op when the timeout
  /// is zero).  run_batch does this implicitly; exposed so a long-idle
  /// owner can release the processes without waiting for the next batch.
  void reap_idle();

  /// Retires every live worker now (clean EOF + reap) and lifts any
  /// quarantine.  The pool stays usable: the next batch respawns lazily.
  void drain();

  /// True after the crash-loop breaker tripped; run_batch then fails fast
  /// (or degrades to in-process execution when Options::fallback_inprocess
  /// is set) until drain() resets the pool.
  [[nodiscard]] bool quarantined() const;

  [[nodiscard]] unsigned shards() const noexcept { return shards_; }

  /// Worker processes currently alive and warm.
  [[nodiscard]] std::size_t live_workers() const;

  /// Monotone even across worker deaths: a worker's cumulative cache
  /// counters are credited from its last-seen per-batch summary, folded
  /// into the aggregates when the worker retires or is found dead, so a
  /// death before the final worker_summary loses at most one batch's
  /// delta (counted in summaries_lost), never the lifetime totals.
  [[nodiscard]] Stats stats() const;

 private:
  struct Slot {
    long pid = -1;    ///< pid_t, widened so the header stays POSIX-free
    int in_fd = -1;   ///< parent writes frames here (worker stdin)
    int out_fd = -1;  ///< parent reads result lines here (worker stdout)
    /// The previous occupant died in service (mid-batch death, protocol
    /// violation, or found dead at checkout) — the next spawn here is a
    /// *respawn*.  A clean idle reap does not set this.
    bool died_dirty = false;
    std::chrono::steady_clock::time_point last_used{};
    /// Last worker_summary seen from the current occupant, carrying its
    /// cumulative total_* counters (stats_mutex_; see stats()).
    WorkerSummary last_summary{};
    bool has_summary = false;  ///< stats_mutex_
  };

  /// Per-checkout state of one slot's service of one pass (worker_pool.cpp).
  struct PassTask;
  struct PassOutcome;

  void reap_idle_locked(std::chrono::steady_clock::time_point now);
  /// Clean EOF + blocking reap; `count_reaped` separates idle/drain
  /// retirements (visible in stats) from destructor teardown.
  void retire_locked(Slot& slot, bool count_reaped);
  void ensure_worker_locked(Slot& slot);
  /// Folds the slot's credited cumulative counters into stats_ and clears
  /// them; called whenever a worker process ends (retire, found dead at
  /// checkout, died in service).  batch_mutex_ must be held.
  void fold_slot_summary_locked(Slot& slot);
  /// Ships `runnable` (ascending job indices) as one framed wire batch
  /// per participating shard; results deposit into `buffer`.
  PassOutcome run_pass(const std::vector<BatchJob>& jobs,
                       const std::vector<std::size_t>& runnable,
                       detail::ReorderBuffer& buffer,
                       const Executor::ResultCallback& on_result,
                       std::chrono::steady_clock::time_point batch_start);
  /// Graceful degradation: runs `indices` in-process (same
  /// run_synchronous the workers call) and deposits into `buffer`.
  void run_fallback(const std::vector<BatchJob>& jobs,
                    const std::vector<std::size_t>& indices,
                    detail::ReorderBuffer& buffer,
                    const Executor::ResultCallback& on_result);

  std::vector<std::string> worker_command_;
  unsigned shards_;
  Options options_;
  mutable std::mutex batch_mutex_;  ///< serializes batches + lifecycle
  mutable std::mutex stats_mutex_;
  Stats stats_;
  std::vector<Slot> slots_;
  std::uint64_t next_batch_id_ = 0;
  bool quarantined_ = false;         ///< batch_mutex_
  std::string quarantine_reason_;    ///< batch_mutex_
};

}  // namespace eds::runtime
