// WorkerPool: a long-lived fleet of `edsim worker` processes.
//
// PR 4's process backend forked a fresh fleet per batch and tore it down
// when the batch drained — correct, but every `sweep --shards N` paid
// fork/exec, allocator warmup and plan-cache compilation from zero.  The
// pool keeps the fleet alive between batches instead: ProcessShardExecutor
// checks workers out per batch over the schema-2 framed wire (shard.hpp)
// and returns them warm, so a worker's PlanCache and engine workspaces
// survive across batches and repeated structures become cache hits after
// the first batch that carried them.
//
// Lifecycle, per slot (one slot per shard):
//
//     empty --spawn (first batch that routes a job here)--> warm
//     warm  --batch checkout--> serving --summary--> warm
//     serving --EOF / protocol violation--> dead   (batch fails by the
//                                                   prefix rule; the NEXT
//                                                   batch respawns: counted
//                                                   in workers_respawned)
//     warm  --idle past the timeout / drain()--> empty  (clean EOF + reap,
//                                                   counted in
//                                                   workers_reaped)
//
// Health is checked at every checkout (waitpid WNOHANG): a worker that
// died while idle is respawned transparently before any job is written.
// Destruction drains every live worker with the PR-4 teardown guarantees —
// stdin closed first (EOF ends an idle worker), stdout closed (a worker
// somehow still writing dies on EPIPE instead of blocking), then a
// blocking reap: no zombies, no leaked descriptors, exception or not.
//
// Batches are serialized: run_batch holds the pool lock for the duration,
// so concurrent executors sharing one pool queue instead of interleaving
// frames on one pipe.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/batch.hpp"
#include "runtime/executor.hpp"
#include "runtime/shard.hpp"

namespace eds::runtime {

/// The warm fleet behind ProcessShardExecutor's pooled mode.  Usable on
/// its own (tests drive it directly); POSIX-only, like the executor.
class WorkerPool {
 public:
  /// Same shape as the executor's counters — the executor's stats() is
  /// the sum of its live pool and every pool it has already drained.
  using Stats = ProcessShardExecutor::Stats;

  /// `worker_command` as in ProcessShardExecutor; `shards` must already be
  /// resolved (non-zero).  `idle_timeout` of zero disables idle reaping.
  WorkerPool(std::vector<std::string> worker_command, unsigned shards,
             std::chrono::milliseconds idle_timeout);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs one batch with full Executor semantics: jobs routed by
  /// JobSpec::group, results delivered to `on_result` in strictly
  /// increasing index order, prefix rule + residual failures on worker
  /// death or protocol violation.  Jobs must already be validated
  /// (ProcessShardExecutor::validate).  Expired idle workers are reaped
  /// and dead slots respawned before any job is written.
  void run_batch(const std::vector<BatchJob>& jobs,
                 const Executor::ResultCallback& on_result);

  /// Retires every worker idle past the timeout (no-op when the timeout
  /// is zero).  run_batch does this implicitly; exposed so a long-idle
  /// owner can release the processes without waiting for the next batch.
  void reap_idle();

  /// Retires every live worker now (clean EOF + reap).  The pool stays
  /// usable: the next batch respawns lazily.
  void drain();

  [[nodiscard]] unsigned shards() const noexcept { return shards_; }

  /// Worker processes currently alive and warm.
  [[nodiscard]] std::size_t live_workers() const;

  [[nodiscard]] Stats stats() const;

 private:
  struct Slot {
    long pid = -1;    ///< pid_t, widened so the header stays POSIX-free
    int in_fd = -1;   ///< parent writes frames here (worker stdin)
    int out_fd = -1;  ///< parent reads result lines here (worker stdout)
    /// The previous occupant died in service (mid-batch death, protocol
    /// violation, or found dead at checkout) — the next spawn here is a
    /// *respawn*.  A clean idle reap does not set this.
    bool died_dirty = false;
    std::chrono::steady_clock::time_point last_used{};
  };

  /// Per-checkout state of one slot's service of one batch (worker_pool.cpp).
  struct BatchTask;

  void reap_idle_locked(std::chrono::steady_clock::time_point now);
  /// Clean EOF + blocking reap; `count_reaped` separates idle/drain
  /// retirements (visible in stats) from destructor teardown.
  void retire_locked(Slot& slot, bool count_reaped);
  void ensure_worker_locked(Slot& slot);

  std::vector<std::string> worker_command_;
  unsigned shards_;
  std::chrono::milliseconds idle_timeout_;
  mutable std::mutex batch_mutex_;  ///< serializes batches + lifecycle
  mutable std::mutex stats_mutex_;
  Stats stats_;
  std::vector<Slot> slots_;
  std::uint64_t next_batch_id_ = 0;
};

}  // namespace eds::runtime
