// The synchronous executor for the port-numbering model.
//
// run_synchronous implements Section 2.2 of the paper exactly: in each round
// every non-halted node performs local computation, sends one message to each
// of its ports, and receives one message from each of its ports; the
// involution p routes traffic (including directed loops, where a node
// receives its own message).  Halted nodes emit silence and ignore input.
// The execution ends when every node has halted, or fails with
// ExecutionError when the round limit is exceeded (deterministic algorithms
// that do not halt would otherwise loop forever).
//
// The actual round loop lives in the engine layer (runtime/engine.hpp):
// run_synchronous compiles the graph into an ExecutionPlan and executes it
// under the policy selected by RunOptions::exec — SequentialPolicy by
// default, ParallelPolicy when more than one thread is requested.  Every
// policy produces bit-identical RunResults (outputs, stats, trace, message
// log order); the choice only affects wall-clock time.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "port/port_graph.hpp"
#include "runtime/fault.hpp"
#include "runtime/program.hpp"

namespace eds::runtime {

class PlanCache;
class Executor;

/// Execution-engine selection (scheduling, plan reuse, batch backend, and
/// the execution *model*).  Everything except `async` never affects
/// results — every scheduling combination is bit-identical by differential
/// test.  `async` selects a different semantics on purpose: with the
/// α-synchronizer it is bit-identical too (that equivalence is itself a
/// differential oracle), without it results may legitimately differ.
struct ExecOptions {
  /// Lanes to shard each round's fused gather/receive/send pass over
  /// (contiguous worklist ranges balanced by port count, one barrier per
  /// round): 1 = SequentialPolicy (default), >1 = ParallelPolicy with
  /// that many lanes, 0 = ParallelPolicy with one lane per hardware
  /// thread.  At the batch level (`algo::run_batch`) this is instead the
  /// number of concurrent jobs of the in-process backend.
  unsigned threads = 1;

  /// When set, the ExecutionPlan is fetched from (and shared through) this
  /// cache instead of being compiled per run; null compiles a fresh plan.
  /// `algo::run_algorithm` / `run_batch` default a null pointer to
  /// `PlanCache::global()` — pass a cache explicitly to isolate or
  /// observe its counters.  Plans are immutable, so sharing is invisible
  /// except in wall-clock time and the cache's statistics.
  PlanCache* plan_cache = nullptr;

  /// Batch-level backend override (non-owning): when set,
  /// `algo::run_batch` / `run_batch_streaming` route their jobs through
  /// this executor — e.g. a ProcessShardExecutor — instead of an
  /// in-process BatchRunner pool of `threads` lanes.  Ignored by
  /// run_synchronous: a single run has no batch to shard.
  const Executor* executor = nullptr;

  /// When set, run_synchronous routes the run through the event-driven
  /// asynchronous engine (runtime/async.hpp) configured by these options
  /// instead of the round loop; the returned RunResult is the async run's
  /// `AsyncResult::run` (call run_asynchronous directly for the fault log
  /// and async counters).  The event loop is sequential, so `threads` only
  /// parallelizes across batch jobs, never within a run.  Async runs never
  /// cross the process-shard wire: ProcessShardExecutor rejects them.
  std::optional<AsyncOptions> async = std::nullopt;

  [[nodiscard]] bool operator==(const ExecOptions&) const = default;
};

struct RunOptions {
  /// Hard cap on rounds; exceeding it throws ExecutionError.  Must be
  /// positive — a zero cap is rejected up front with InvalidArgument.
  Round max_rounds = 100000;

  /// Record a per-round trace (message counts, halts) in RunResult::trace.
  bool collect_trace = false;

  /// Record every delivered non-silence message in RunResult::message_log
  /// (for transcripts and debugging; memory grows with traffic).
  bool collect_messages = false;

  /// Execution policy (thread count); does not affect results.
  ExecOptions exec;
};

/// One delivered message, as recorded by RunOptions::collect_messages.
struct DeliveredMessage {
  Round round = 0;
  port::PortRef from;  ///< sender's (node, port)
  port::PortRef to;    ///< receiver's (node, port)
  Message payload;

  [[nodiscard]] bool operator==(const DeliveredMessage&) const = default;
};

/// Aggregate execution statistics.
struct RunStats {
  Round rounds = 0;                 ///< rounds until the last node halted
  std::uint64_t messages_sent = 0;  ///< non-silence messages over all rounds

  /// Total port-slots of *non-halted* nodes, summed over rounds: each round
  /// contributes the degree of every node that is still running.  Halted
  /// nodes neither send nor receive, so their ports are not "served" — this
  /// is the unit of simulator work the worklist scheduler actually performs
  /// (invariant: ports_served == Σ_v d(v) · halt_round(v)).
  std::uint64_t ports_served = 0;

  [[nodiscard]] bool operator==(const RunStats&) const = default;
};

/// Per-round trace entry (only with RunOptions::collect_trace).
struct RoundTrace {
  Round round = 0;
  std::uint64_t messages = 0;   ///< non-silence messages this round
  std::size_t halted_nodes = 0; ///< cumulative halted count after the round

  [[nodiscard]] bool operator==(const RoundTrace&) const = default;
};

/// Execution outcome: every node's announced output plus statistics.
struct RunResult {
  std::vector<std::vector<Port>> outputs;  ///< X(v), sorted, per node
  RunStats stats;
  std::vector<RoundTrace> trace;
  std::vector<DeliveredMessage> message_log;

  /// Whether RunOptions::collect_messages was on — distinguishes "no
  /// messages were recorded" from "recording was disabled".
  bool messages_collected = false;

  [[nodiscard]] bool operator==(const RunResult&) const = default;
};

/// Renders a recorded message log as a human-readable round-by-round
/// transcript ("r3  (5,2) -> (7,1)  tag=3 [1 0 0]").  When the run was
/// executed without RunOptions::collect_messages, says so explicitly
/// instead of printing an empty transcript.
[[nodiscard]] std::string format_transcript(const RunResult& result);

/// Runs `factory`'s program on every node of `g` until all halt.
[[nodiscard]] RunResult run_synchronous(const port::PortGraph& g,
                                        const ProgramFactory& factory,
                                        const RunOptions& options = {});

/// Runs caller-provided per-node programs (programs[v] runs on node v).
/// This is the entry point for *non-anonymous* models — e.g. the ID-model
/// baselines of Section 1.3, where each node's program is seeded with a
/// unique identifier.  The synchronous semantics are identical.
[[nodiscard]] RunResult run_synchronous_programs(
    const port::PortGraph& g,
    std::vector<std::unique_ptr<NodeProgram>> programs,
    const RunOptions& options = {}, const std::string& name = "custom");

}  // namespace eds::runtime
