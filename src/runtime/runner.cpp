#include "runtime/runner.hpp"

#include <sstream>

#include "runtime/engine.hpp"

namespace eds::runtime {

std::string format_transcript(const RunResult& result) {
  std::ostringstream os;
  if (!result.messages_collected) {
    os << "(no transcript: the run was executed without "
          "RunOptions::collect_messages)\n";
  } else if (result.message_log.empty()) {
    os << "(no messages were delivered)\n";
  }
  Round current = 0;
  for (const auto& m : result.message_log) {
    if (m.round != current) {
      current = m.round;
      os << "--- round " << current << " ---\n";
    }
    os << "  (" << m.from.node << ',' << m.from.port << ") -> (" << m.to.node
       << ',' << m.to.port << ")  tag=" << m.payload.tag << " ["
       << m.payload.arg[0] << ' ' << m.payload.arg[1] << ' '
       << m.payload.arg[2] << "]\n";
  }
  os << "rounds: " << result.stats.rounds
     << ", messages: " << result.stats.messages_sent << '\n';
  return os.str();
}

RunResult run_synchronous(const port::PortGraph& g,
                          const ProgramFactory& factory,
                          const RunOptions& options) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(g.num_nodes());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    programs.push_back(factory.create());
    if (!programs.back()) {
      throw ExecutionError("run_synchronous: factory returned null program");
    }
  }
  const ExecutionPlan plan(g);
  const auto policy = make_policy(options.exec);
  return run_plan(plan, programs, options, factory.name(), *policy);
}

RunResult run_synchronous_programs(
    const port::PortGraph& g,
    std::vector<std::unique_ptr<NodeProgram>> programs,
    const RunOptions& options, const std::string& name) {
  if (programs.size() != g.num_nodes()) {
    throw InvalidArgument(
        "run_synchronous_programs: one program per node required");
  }
  for (const auto& p : programs) {
    if (!p) {
      throw InvalidArgument("run_synchronous_programs: null program");
    }
  }
  const ExecutionPlan plan(g);
  const auto policy = make_policy(options.exec);
  return run_plan(plan, programs, options, name, *policy);
}

}  // namespace eds::runtime
