#include "runtime/runner.hpp"

#include <algorithm>
#include <sstream>

namespace eds::runtime {

namespace {

RunResult run_loop(const port::PortGraph& g,
                   std::vector<std::unique_ptr<NodeProgram>>& programs,
                   const RunOptions& options, const std::string& name) {
  const std::size_t n = g.num_nodes();

  // Flat mailboxes indexed by (node, port): `outbox` holds what each port
  // sends this round, `inbox` what it receives.
  std::vector<std::size_t> offset(n, 0);
  std::size_t total_ports = 0;
  for (std::size_t v = 0; v < n; ++v) {
    offset[v] = total_ports;
    total_ports += g.degree(static_cast<port::NodeId>(v));
  }
  std::vector<Message> outbox(total_ports, kSilence);
  std::vector<Message> inbox(total_ports, kSilence);

  std::vector<bool> halted(n, false);
  std::size_t halted_count = 0;

  for (std::size_t v = 0; v < n; ++v) {
    programs[v]->start(g.degree(static_cast<port::NodeId>(v)));
    if (programs[v]->halted()) {
      // Degree-0 nodes (or trivial algorithms) may halt immediately.
      halted[v] = true;
      ++halted_count;
    }
  }

  RunResult result;
  RunStats& stats = result.stats;

  Round round = 0;
  while (halted_count < n) {
    ++round;
    if (round > options.max_rounds) {
      std::ostringstream os;
      os << "run_synchronous: algorithm '" << name << "' did not halt within "
         << options.max_rounds << " rounds (" << (n - halted_count) << " of "
         << n << " nodes still running)";
      throw ExecutionError(os.str());
    }

    // Send: every port defaults to silence each round — a program sends a
    // message only by writing it this round (otherwise stale messages from
    // earlier rounds would "ghost" into later ones).  Halted nodes stay
    // silent.
    std::fill(outbox.begin(), outbox.end(), kSilence);
    for (std::size_t v = 0; v < n; ++v) {
      const auto deg = g.degree(static_cast<port::NodeId>(v));
      const std::span<Message> out(&outbox[offset[v]], deg);
      if (!halted[v]) {
        programs[v]->send(round, out);
      }
      stats.ports_served += deg;
      for (const auto& m : out) {
        if (!m.is_silence()) ++stats.messages_sent;
      }
    }

    // Route: the message sent on port (v, i) is received from port (u, j)
    // where p(v, i) = (u, j).  Fixed points deliver to the sender itself.
    std::uint64_t round_messages = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const auto deg = g.degree(static_cast<port::NodeId>(v));
      for (Port i = 1; i <= deg; ++i) {
        const auto dst = g.partner(static_cast<port::NodeId>(v), i);
        const Message& m = outbox[offset[v] + i - 1];
        inbox[offset[dst.node] + dst.port - 1] = m;
        if (!m.is_silence()) {
          ++round_messages;
          if (options.collect_messages) {
            result.message_log.push_back(
                {round, {static_cast<port::NodeId>(v), i}, dst, m});
          }
        }
      }
    }

    // Receive: halted nodes ignore input.
    for (std::size_t v = 0; v < n; ++v) {
      if (halted[v]) continue;
      const auto deg = g.degree(static_cast<port::NodeId>(v));
      const std::span<const Message> in(&inbox[offset[v]], deg);
      programs[v]->receive(round, in);
      if (programs[v]->halted()) {
        halted[v] = true;
        ++halted_count;
      }
    }

    if (options.collect_trace) {
      result.trace.push_back({round, round_messages, halted_count});
    }
  }

  stats.rounds = round;
  result.outputs.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    auto ports = programs[v]->output();
    std::sort(ports.begin(), ports.end());
    const auto deg = g.degree(static_cast<port::NodeId>(v));
    for (const Port p : ports) {
      if (p < 1 || p > deg) {
        throw ExecutionError(
            "run_synchronous: node output contains an invalid port number");
      }
    }
    if (std::adjacent_find(ports.begin(), ports.end()) != ports.end()) {
      throw ExecutionError(
          "run_synchronous: node output contains a duplicate port");
    }
    result.outputs[v] = std::move(ports);
  }
  return result;
}

}  // namespace

std::string format_transcript(const RunResult& result) {
  std::ostringstream os;
  Round current = 0;
  for (const auto& m : result.message_log) {
    if (m.round != current) {
      current = m.round;
      os << "--- round " << current << " ---\n";
    }
    os << "  (" << m.from.node << ',' << m.from.port << ") -> (" << m.to.node
       << ',' << m.to.port << ")  tag=" << m.payload.tag << " ["
       << m.payload.arg[0] << ' ' << m.payload.arg[1] << ' '
       << m.payload.arg[2] << "]\n";
  }
  os << "rounds: " << result.stats.rounds
     << ", messages: " << result.stats.messages_sent << '\n';
  return os.str();
}

RunResult run_synchronous(const port::PortGraph& g,
                          const ProgramFactory& factory,
                          const RunOptions& options) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(g.num_nodes());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    programs.push_back(factory.create());
    if (!programs.back()) {
      throw ExecutionError("run_synchronous: factory returned null program");
    }
  }
  return run_loop(g, programs, options, factory.name());
}

RunResult run_synchronous_programs(
    const port::PortGraph& g,
    std::vector<std::unique_ptr<NodeProgram>> programs,
    const RunOptions& options, const std::string& name) {
  if (programs.size() != g.num_nodes()) {
    throw InvalidArgument(
        "run_synchronous_programs: one program per node required");
  }
  for (const auto& p : programs) {
    if (!p) {
      throw InvalidArgument("run_synchronous_programs: null program");
    }
  }
  return run_loop(g, programs, options, name);
}

}  // namespace eds::runtime
