#include "runtime/runner.hpp"

#include <optional>
#include <sstream>

#include "runtime/async.hpp"
#include "runtime/engine.hpp"
#include "runtime/plan_cache.hpp"

namespace eds::runtime {

namespace {

/// The plan for this run: borrowed from the requested cache, or compiled
/// locally (into `local`) when no cache is configured.
const ExecutionPlan& resolve_plan(
    const port::PortGraph& g, const ExecOptions& exec,
    std::shared_ptr<const ExecutionPlan>& shared,
    std::optional<ExecutionPlan>& local) {
  if (exec.plan_cache != nullptr) {
    shared = exec.plan_cache->get(g);
    return *shared;
  }
  local.emplace(g);
  return *local;
}

}  // namespace

std::string format_transcript(const RunResult& result) {
  std::ostringstream os;
  if (!result.messages_collected) {
    os << "(no transcript: the run was executed without "
          "RunOptions::collect_messages)\n";
  } else if (result.message_log.empty()) {
    os << "(no messages were delivered)\n";
  }
  Round current = 0;
  for (const auto& m : result.message_log) {
    if (m.round != current) {
      current = m.round;
      os << "--- round " << current << " ---\n";
    }
    os << "  (" << m.from.node << ',' << m.from.port << ") -> (" << m.to.node
       << ',' << m.to.port << ")  tag=" << m.payload.tag << " ["
       << m.payload.arg[0] << ' ' << m.payload.arg[1] << ' '
       << m.payload.arg[2] << "]\n";
  }
  os << "rounds: " << result.stats.rounds
     << ", messages: " << result.stats.messages_sent << '\n';
  return os.str();
}

RunResult run_synchronous(const port::PortGraph& g,
                          const ProgramFactory& factory,
                          const RunOptions& options) {
  if (options.exec.async) {
    // Model dispatch: an ExecOptions::async turns this entry point into the
    // event-driven engine (see runtime/async.hpp for the full result).
    return run_asynchronous(g, factory, options, *options.exec.async).run;
  }
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(g.num_nodes());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    programs.push_back(factory.create());
    if (!programs.back()) {
      throw ExecutionError("run_synchronous: factory returned null program");
    }
  }
  std::shared_ptr<const ExecutionPlan> shared;
  std::optional<ExecutionPlan> local;
  const ExecutionPlan& plan = resolve_plan(g, options.exec, shared, local);
  const auto policy = make_policy(options.exec);
  return run_plan(plan, programs, options, factory.name(), *policy);
}

RunResult run_synchronous_programs(
    const port::PortGraph& g,
    std::vector<std::unique_ptr<NodeProgram>> programs,
    const RunOptions& options, const std::string& name) {
  if (options.exec.async) {
    return run_asynchronous_programs(g, std::move(programs), options,
                                     *options.exec.async, name)
        .run;
  }
  if (programs.size() != g.num_nodes()) {
    throw InvalidArgument(
        "run_synchronous_programs: one program per node required");
  }
  for (const auto& p : programs) {
    if (!p) {
      throw InvalidArgument("run_synchronous_programs: null program");
    }
  }
  std::shared_ptr<const ExecutionPlan> shared;
  std::optional<ExecutionPlan> local;
  const ExecutionPlan& plan = resolve_plan(g, options.exec, shared, local);
  const auto policy = make_policy(options.exec);
  return run_plan(plan, programs, options, name, *policy);
}

}  // namespace eds::runtime
