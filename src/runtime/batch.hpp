// BatchRunner: many independent synchronous executions over a thread pool.
//
// Sweeps, tables and benchmarks all share the same shape — run dozens to
// thousands of (graph, program-factory, options) jobs and fold the results.
// BatchRunner is the one engine entry point for that shape: jobs execute
// concurrently across the pool (each job itself running under the policy its
// options request, sequential by default), and results come back in job
// order, so output is deterministic regardless of the thread count.
//
// Factories are shared across jobs and threads; ProgramFactory::create()
// is const and every factory in this library is stateless, so concurrent
// create() calls are safe.  If a job throws, the batch completes the
// remaining jobs and then rethrows the failure of the *lowest-indexed*
// failed job — again independent of scheduling.
#pragma once

#include <cstddef>
#include <vector>

#include "port/port_graph.hpp"
#include "runtime/program.hpp"
#include "runtime/runner.hpp"
#include "util/parallel.hpp"

namespace eds::runtime {

/// One unit of batch work.  `graph` and `factory` are non-owning and must
/// outlive the run() call.
struct BatchJob {
  const port::PortGraph* graph = nullptr;
  const ProgramFactory* factory = nullptr;
  RunOptions options;
};

class BatchRunner {
 public:
  /// `threads` as in ExecOptions: number of concurrent jobs, 0 = one per
  /// hardware thread.  The pool is created once here and reused by every
  /// run() call.
  explicit BatchRunner(unsigned threads = 0);
  ~BatchRunner();

  /// Executes every job and returns their results in job order.  Throws
  /// InvalidArgument on a malformed job (null graph/factory) before any
  /// job starts; rethrows the lowest-indexed job failure after the batch
  /// drains.  Not safe for concurrent run() calls on one BatchRunner.
  [[nodiscard]] std::vector<RunResult> run(
      const std::vector<BatchJob>& jobs) const;

 private:
  mutable ThreadPool pool_;
};

}  // namespace eds::runtime
