// BatchRunner: many independent synchronous executions behind a pluggable
// Executor backend.
//
// Sweeps, tables and benchmarks all share the same shape — run dozens to
// thousands of (graph, program-factory, options) jobs and fold the results.
// BatchRunner is the one entry point for that shape.  *How* the jobs run is
// the backend's business (runtime/executor.hpp): the default backend fans
// them across an in-process thread pool; a ProcessShardExecutor
// (runtime/shard.hpp) ships them to worker subprocesses instead.  Either
// way results come back in job order, so output is deterministic regardless
// of thread count, shard count, or backend choice.
//
// Three consumption styles, all with identical per-job results:
//  * run()            — barrier on the whole batch, vector of results;
//  * run_streaming()  — a callback receives each result as soon as it *and
//    every earlier job* has finished (an in-order reorder buffer), so
//    long sweeps emit output incrementally instead of all at the end;
//  * stream()         — a pull-style BatchStream whose next() blocks for
//    the next in-order result while the batch keeps running behind it.
//
// Factories are shared across jobs and threads; ProgramFactory::create()
// is const and every factory in this library is stateless, so concurrent
// create() calls are safe.  If a job throws, the batch completes the
// remaining jobs and then rethrows the failure of the *lowest-indexed*
// failed job — again independent of scheduling.  Streaming delivers the
// result prefix before that failure and nothing at or after it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "port/port_graph.hpp"
#include "runtime/executor.hpp"
#include "runtime/program.hpp"
#include "runtime/runner.hpp"

namespace eds::runtime {

/// A serializable description of a job, for backends that execute outside
/// this process.  In-process backends ignore it entirely; the
/// ProcessShardExecutor *requires* it (the graph/factory pointers cannot
/// cross a process boundary, so a worker rebuilds the factory from the
/// algorithm token and the graph from its text form).
struct JobSpec {
  /// Opaque algorithm token a worker maps back to a factory (the runtime
  /// layer never interprets it; `edsim worker` resolves it through
  /// `algo::algorithm_from_token`).
  std::string algorithm;

  /// Fully resolved factory parameter (d or ∆; 0 only where the factory
  /// takes no parameter).  Defaults are resolved *before* serialization so
  /// every process computes from the same inputs.
  Port param = 0;

  /// Shard-affinity key: jobs with equal `group` are routed to the same
  /// worker process.  Callers set it to the graph's structural hash so
  /// repeated runs on one structure share a single per-worker plan cache
  /// entry, keeping aggregate plan counters identical to a one-process run.
  std::uint64_t group = 0;
};

/// One unit of batch work.  `graph` and `factory` are non-owning and must
/// outlive the run()/run_streaming()/stream() call.  `spec` is optional
/// and only consulted by out-of-process backends.
struct BatchJob {
  const port::PortGraph* graph = nullptr;
  const ProgramFactory* factory = nullptr;
  RunOptions options;
  std::optional<JobSpec> spec;
};

class BatchStream;

class BatchRunner {
 public:
  using ResultCallback = Executor::ResultCallback;

  /// `threads` as in ExecOptions: number of concurrent jobs, 0 = one per
  /// hardware thread.  Creates (and owns) an InProcessExecutor whose pool
  /// is reused by every run() call.
  explicit BatchRunner(unsigned threads = 0);

  /// Runs every batch through `executor` instead (non-owning; must outlive
  /// the runner).  This is how a sweep swaps thread-pool fan-out for
  /// process sharding without touching any consumption code.
  explicit BatchRunner(const Executor* executor);

  ~BatchRunner();

  /// Executes every job and returns their results in job order.  Throws
  /// InvalidArgument on a malformed job (null graph/factory) before any
  /// job starts; rethrows the lowest-indexed job failure after the batch
  /// drains.  Not safe for concurrent run() calls on one BatchRunner.
  [[nodiscard]] std::vector<RunResult> run(
      const std::vector<BatchJob>& jobs) const;

  /// Executes every job, delivering each result through `on_result` as
  /// soon as its whole prefix has completed — deterministic job order with
  /// no full-batch barrier.  Error handling as in run(): the batch drains,
  /// results from the lowest failure onward are withheld, and the failure
  /// (or the first exception thrown by `on_result` itself) is rethrown.
  void run_streaming(const std::vector<BatchJob>& jobs,
                     const ResultCallback& on_result) const;

  /// Starts the batch on a background driver and returns a pull-style
  /// stream of in-order results.  The BatchRunner (and every job's graph
  /// and factory) must outlive the stream; no other run()/run_streaming()
  /// /stream() call may execute on this runner until the stream is
  /// destroyed (the backend is single-batch).
  [[nodiscard]] std::unique_ptr<BatchStream> stream(
      std::vector<BatchJob> jobs) const;

  /// The backend batches execute on.
  [[nodiscard]] const Executor& executor() const noexcept {
    return *executor_;
  }

 private:
  std::unique_ptr<InProcessExecutor> owned_;  // null when borrowing
  const Executor* executor_;                  // owned_.get() or the borrow
};

/// Pull-side of BatchRunner::stream(): next() blocks until the next job in
/// index order has finished and yields its result, returning nullopt once
/// the batch is exhausted.  If the next job failed, next() rethrows its
/// exception and the stream ends (later results are discarded, matching
/// run_streaming's prefix rule).  Destroying the stream drains the batch:
/// undelivered jobs still execute, the backend's workers join, and only
/// then does the destructor return.  Not thread-safe: one consumer at a
/// time.
class BatchStream {
 public:
  /// One delivered result and the job index it belongs to.
  struct Item {
    std::size_t index = 0;
    RunResult result;
  };

  ~BatchStream();
  BatchStream(const BatchStream&) = delete;
  BatchStream& operator=(const BatchStream&) = delete;

  /// Blocks for the next in-order result; nullopt when the batch is done.
  [[nodiscard]] std::optional<Item> next();

 private:
  friend class BatchRunner;
  struct Impl;
  explicit BatchStream(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace eds::runtime
