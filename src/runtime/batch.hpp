// BatchRunner: many independent synchronous executions over a thread pool.
//
// Sweeps, tables and benchmarks all share the same shape — run dozens to
// thousands of (graph, program-factory, options) jobs and fold the results.
// BatchRunner is the one engine entry point for that shape: jobs execute
// concurrently across the pool (each job itself running under the policy its
// options request, sequential by default), and results come back in job
// order, so output is deterministic regardless of the thread count.
//
// Three consumption styles, all with identical per-job results:
//  * run()            — barrier on the whole batch, vector of results;
//  * run_streaming()  — a callback receives each result as soon as it *and
//    every earlier job* has finished (an in-order reorder buffer), so
//    long sweeps emit output incrementally instead of all at the end;
//  * stream()         — a pull-style BatchStream whose next() blocks for
//    the next in-order result while the batch keeps running behind it.
//
// Factories are shared across jobs and threads; ProgramFactory::create()
// is const and every factory in this library is stateless, so concurrent
// create() calls are safe.  If a job throws, the batch completes the
// remaining jobs and then rethrows the failure of the *lowest-indexed*
// failed job — again independent of scheduling.  Streaming delivers the
// result prefix before that failure and nothing at or after it.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "port/port_graph.hpp"
#include "runtime/program.hpp"
#include "runtime/runner.hpp"
#include "util/parallel.hpp"

namespace eds::runtime {

/// One unit of batch work.  `graph` and `factory` are non-owning and must
/// outlive the run()/run_streaming()/stream() call.
struct BatchJob {
  const port::PortGraph* graph = nullptr;
  const ProgramFactory* factory = nullptr;
  RunOptions options;
};

class BatchStream;

class BatchRunner {
 public:
  /// Receives result `index` once jobs 0..index have all completed.  Calls
  /// are serialized and arrive in strictly increasing index order, but may
  /// come from any pool thread.
  using ResultCallback =
      std::function<void(std::size_t index, RunResult&& result)>;

  /// `threads` as in ExecOptions: number of concurrent jobs, 0 = one per
  /// hardware thread.  The pool is created once here and reused by every
  /// run() call.
  explicit BatchRunner(unsigned threads = 0);
  ~BatchRunner();

  /// Executes every job and returns their results in job order.  Throws
  /// InvalidArgument on a malformed job (null graph/factory) before any
  /// job starts; rethrows the lowest-indexed job failure after the batch
  /// drains.  Not safe for concurrent run() calls on one BatchRunner.
  [[nodiscard]] std::vector<RunResult> run(
      const std::vector<BatchJob>& jobs) const;

  /// Executes every job, delivering each result through `on_result` as
  /// soon as its whole prefix has completed — deterministic job order with
  /// no full-batch barrier.  Error handling as in run(): the batch drains,
  /// results from the lowest failure onward are withheld, and the failure
  /// (or the first exception thrown by `on_result` itself) is rethrown.
  void run_streaming(const std::vector<BatchJob>& jobs,
                     const ResultCallback& on_result) const;

  /// Starts the batch on a background driver and returns a pull-style
  /// stream of in-order results.  The BatchRunner (and every job's graph
  /// and factory) must outlive the stream; no other run()/run_streaming()
  /// /stream() call may execute on this runner until the stream is
  /// destroyed (the pool is single-batch).
  [[nodiscard]] std::unique_ptr<BatchStream> stream(
      std::vector<BatchJob> jobs) const;

 private:
  mutable ThreadPool pool_;
};

/// Pull-side of BatchRunner::stream(): next() blocks until the next job in
/// index order has finished and yields its result, returning nullopt once
/// the batch is exhausted.  If the next job failed, next() rethrows its
/// exception and the stream ends (later results are discarded, matching
/// run_streaming's prefix rule).  Destroying the stream drains the batch.
/// Not thread-safe: one consumer at a time.
class BatchStream {
 public:
  /// One delivered result and the job index it belongs to.
  struct Item {
    std::size_t index = 0;
    RunResult result;
  };

  ~BatchStream();
  BatchStream(const BatchStream&) = delete;
  BatchStream& operator=(const BatchStream&) = delete;

  /// Blocks for the next in-order result; nullopt when the batch is done.
  [[nodiscard]] std::optional<Item> next();

 private:
  friend class BatchRunner;
  struct Impl;
  explicit BatchStream(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace eds::runtime
